// Benchmarks regenerating every table and figure of the paper. Each
// benchmark measures the corresponding analysis on the calibrated
// paper-scale dataset and prints the reproduced rows once, so that
//
//	go test -bench=. -benchmem | tee bench_output.txt
//
// yields both the performance profile and the full reproduction record
// that EXPERIMENTS.md is built from. The ablation benchmarks at the bottom
// isolate the design choices DESIGN.md calls out.
package failscope

import (
	"fmt"
	"sync"
	"testing"

	"failscope/internal/core"
	"failscope/internal/dcsim"
	"failscope/internal/dist"
	"failscope/internal/ftsim"
	"failscope/internal/ingest"
	"failscope/internal/model"
	"failscope/internal/predict"
	"failscope/internal/report"
	"failscope/internal/textmine"
	"failscope/internal/xrand"
)

// benchState generates the canonical paper-scale dataset once.
var (
	benchOnce sync.Once
	benchIn   core.Input
	benchErr  error
)

func benchInput(b *testing.B) core.Input {
	b.Helper()
	benchOnce.Do(func() {
		cfg := dcsim.PaperConfig()
		out, err := dcsim.Generate(cfg)
		if err != nil {
			benchErr = err
			return
		}
		opts := ingest.DefaultOptions(cfg.Observation, cfg.FineWindow)
		opts.SkipClassification = true
		col, err := ingest.Collect(out.Data, out.Tickets, out.Monitor, opts)
		if err != nil {
			benchErr = err
			return
		}
		benchIn = core.Input{Data: col.Data, Attrs: col.Attrs}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchIn
}

// printOnce guards the one-time table dump of each benchmark.
var printed sync.Map

func printSection(name, text string) {
	if _, loaded := printed.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n===== %s =====\n%s", name, text)
	}
}

func BenchmarkTableII_DatasetStats(b *testing.B) {
	in := benchInput(b)
	var rows []core.SystemStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = core.DatasetStats(in)
	}
	b.StopTimer()
	printSection("Table II (paper: 2759 crash tickets over 9421 machines)", report.DatasetStats(rows))
	b.ReportMetric(float64(rows[len(rows)-1].CrashTickets), "crash_tickets")
}

func BenchmarkFig1_ClassDistribution(b *testing.B) {
	in := benchInput(b)
	var rows []core.ClassShare
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = core.ClassDistribution(in)
	}
	b.StopTimer()
	printSection("Fig. 1 (paper: other 53%, SW+reboot dominate, Sys V power 29%)", report.ClassDistribution(rows))
	for _, r := range rows {
		if r.System == 0 && r.Class == model.ClassOther {
			b.ReportMetric(r.Share, "other_share")
		}
	}
}

func BenchmarkFig2_WeeklyFailureRates(b *testing.B) {
	in := benchInput(b)
	var rows []core.RateSummary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = core.WeeklyFailureRates(in)
	}
	b.StopTimer()
	printSection("Fig. 2 (paper: PM ≈ 0.005, VM ≈ 0.003, PM ≈ 40% higher)", report.WeeklyRates(rows))
	for _, r := range rows {
		if r.System == 0 {
			switch r.Kind {
			case model.PM:
				b.ReportMetric(r.Summary.Mean, "pm_weekly_rate")
			case model.VM:
				b.ReportMetric(r.Summary.Mean, "vm_weekly_rate")
			}
		}
	}
}

func BenchmarkFig3_InterFailureCDF(b *testing.B) {
	in := benchInput(b)
	var pm, vm core.InterFailureResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pm = core.InterFailure(in, model.PM)
		vm = core.InterFailure(in, model.VM)
	}
	b.StopTimer()
	printSection("Fig. 3 (paper: Gamma best for both; VM mean 37.22 d)",
		report.InterFailure(pm)+report.InterFailure(vm))
	b.ReportMetric(vm.Summary.Mean, "vm_gap_mean_days")
}

func BenchmarkTableIII_InterFailureByClass(b *testing.B) {
	in := benchInput(b)
	var rows []core.ClassGapStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = core.InterFailureByClass(in)
	}
	b.StopTimer()
	printSection("Table III (paper: SW shortest — operator 2.84 d, server 21.6 d; Net longest)",
		report.InterFailureByClass(rows))
}

func BenchmarkFig4_RepairTimeCDF(b *testing.B) {
	in := benchInput(b)
	var pm, vm core.RepairResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pm = core.RepairTimes(in, model.PM)
		vm = core.RepairTimes(in, model.VM)
	}
	b.StopTimer()
	printSection("Fig. 4 (paper: Log-normal best; PM 38.5 h vs VM 19.6 h)",
		report.Repair(pm)+report.Repair(vm))
	b.ReportMetric(pm.Summary.Mean, "pm_repair_mean_h")
	b.ReportMetric(vm.Summary.Mean, "vm_repair_mean_h")
}

func BenchmarkTableIV_RepairByClass(b *testing.B) {
	in := benchInput(b)
	var rows []core.ClassRepairStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = core.RepairByClass(in)
	}
	b.StopTimer()
	printSection("Table IV (paper: HW 80.1/8.28 h, Net 67.6/8.97, Power 12.17/0.83, Reboot 18.03/2.27, SW 30.0/22.37)",
		report.RepairByClass(rows))
}

func BenchmarkFig5_RecurrentProbabilities(b *testing.B) {
	in := benchInput(b)
	var pm, vm core.RecurrenceResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pm = core.Recurrence(in, model.PM, 0)
		vm = core.Recurrence(in, model.VM, 0)
	}
	b.StopTimer()
	printSection("Fig. 5 (paper: weekly recurrent ≈ .22 PM / .16 VM, sublinear in window)",
		report.Recurrence(pm, vm))
	b.ReportMetric(pm.WithinWeek, "pm_recurrent_week")
	b.ReportMetric(vm.WithinWeek, "vm_recurrent_week")
}

func BenchmarkTableV_RandomVsRecurrent(b *testing.B) {
	in := benchInput(b)
	var rows []core.RandomVsRecurrent
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = core.RandomVsRecurrentTable(in)
	}
	b.StopTimer()
	printSection("Table V (paper: ratios 35.5x PM / 42.1x VM overall)",
		report.RandomVsRecurrent(rows))
	for _, r := range rows {
		if r.System == 0 && r.Kind == model.PM {
			b.ReportMetric(r.Ratio, "pm_ratio")
		}
		if r.System == 0 && r.Kind == model.VM {
			b.ReportMetric(r.Ratio, "vm_ratio")
		}
	}
}

func BenchmarkTableVI_SpatialIncidents(b *testing.B) {
	in := benchInput(b)
	var res core.SpatialResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = core.Spatial(in)
	}
	b.StopTimer()
	printSection("Table VI (paper: 78% single-server; dependent VM 26% > PM 16%; max 34)",
		report.Spatial(res))
	b.ReportMetric(res.DependentVMShare, "dependent_vm_share")
	b.ReportMetric(res.DependentPMShare, "dependent_pm_share")
}

func BenchmarkTableVII_ServersPerIncident(b *testing.B) {
	in := benchInput(b)
	var rows []core.ClassSpatialStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = core.ServersPerIncidentByClass(in)
	}
	b.StopTimer()
	printSection("Table VII (paper: power mean 2.7/max 21; reboot 1.1/15; SW 1.7/10)",
		report.SpatialByClass(rows))
}

func BenchmarkFig6_AgeAnalysis(b *testing.B) {
	in := benchInput(b)
	var res core.AgeResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = core.AgeAnalysis(in, 24)
	}
	b.StopTimer()
	printSection("Fig. 6 (paper: CDF near diagonal, weak positive trend, no bathtub)", report.Age(res))
	b.ReportMetric(res.KSUniform, "ks_uniform")
	b.ReportMetric(res.BathtubScore, "bathtub_score")
}

// capacityPanel runs one Fig. 7 panel as its own benchmark.
func capacityPanel(b *testing.B, key, paper string) {
	b.Helper()
	in := benchInput(b)
	var panels map[string]core.BinnedRates
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		panels, err = core.CapacityStudy(in)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	br := panels[key]
	printSection("Fig. 7 "+key+" (paper: "+paper+")", report.BinnedRates("weekly failure rate vs "+key, br))
	b.ReportMetric(br.IncrementFactor, "increment_factor")
	b.ReportMetric(br.Spearman, "spearman")
}

func BenchmarkFig7a_CPUCounts(b *testing.B) {
	capacityPanel(b, "pm_cpu", "PM 5.5x rising to 24 CPUs then dropping; VM 2.5x")
}

func BenchmarkFig7a_CPUCountsVM(b *testing.B) {
	capacityPanel(b, "vm_cpu", "VM 2.5x over 1-8 vCPUs")
}

func BenchmarkFig7b_MemorySize(b *testing.B) {
	capacityPanel(b, "pm_mem", "bathtub, PM span 5x")
}

func BenchmarkFig7b_MemorySizeVM(b *testing.B) {
	capacityPanel(b, "vm_mem", "bathtub, VM span 3x, dip at 4-8 GB")
}

func BenchmarkFig7c_DiskCapacity(b *testing.B) {
	capacityPanel(b, "vm_diskcap", "rises to 32 GB then flat ≈0.0025 — weakest VM factor")
}

func BenchmarkFig7d_DiskCount(b *testing.B) {
	capacityPanel(b, "vm_diskcount", "~10x from 1 to 6 disks — strongest VM factor")
}

// usagePanel runs one Fig. 8 panel as its own benchmark.
func usagePanel(b *testing.B, key, paper string) {
	b.Helper()
	in := benchInput(b)
	var panels map[string]core.BinnedRates
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		panels, err = core.UsageStudy(in)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	br := panels[key]
	printSection("Fig. 8 "+key+" (paper: "+paper+")", report.BinnedRates("weekly failure rate vs "+key, br))
	b.ReportMetric(br.IncrementFactor, "increment_factor")
	b.ReportMetric(br.Spearman, "spearman")
}

func BenchmarkFig8a_CPUUsage(b *testing.B) {
	usagePanel(b, "vm_cpuutil", "VM rises ~10x over 0-30%; PM bathtub")
}

func BenchmarkFig8a_CPUUsagePM(b *testing.B) {
	usagePanel(b, "pm_cpuutil", "PM decreasing over the populated range, bathtub overall")
}

func BenchmarkFig8b_MemoryUsage(b *testing.B) {
	usagePanel(b, "pm_memutil", "inverted bathtub, stronger for PMs")
}

func BenchmarkFig8b_MemoryUsageVM(b *testing.B) {
	usagePanel(b, "vm_memutil", "inverted bathtub, milder")
}

func BenchmarkFig8c_DiskUsage(b *testing.B) {
	usagePanel(b, "vm_diskutil", "mild increase 0.001 → 0.003")
}

func BenchmarkFig8d_NetworkUsage(b *testing.B) {
	usagePanel(b, "vm_net", "rises to a knee at 64 Kbps then falls")
}

func BenchmarkFig9_Consolidation(b *testing.B) {
	in := benchInput(b)
	var br core.BinnedRates
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br, err = core.Consolidation(in)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printSection("Fig. 9 (paper: failure rate decreases significantly with consolidation)",
		report.BinnedRates("weekly failure rate vs consolidation level", br))
	b.ReportMetric(br.Spearman, "spearman")
}

func BenchmarkFig10_OnOffFrequency(b *testing.B) {
	in := benchInput(b)
	var br core.BinnedRates
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br, err = core.OnOff(in)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printSection("Fig. 10 (paper: rises to ~2 on/off per month, no clear trend beyond)",
		report.BinnedRates("weekly failure rate vs on/off per month", br))
}

// BenchmarkTicketClassification measures the §III.A k-means pipeline
// (paper: 87% accuracy).
func BenchmarkTicketClassification(b *testing.B) {
	cfg := dcsim.PaperConfig()
	out, err := dcsim.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	opts := ingest.DefaultOptions(cfg.Observation, cfg.FineWindow)
	var rep *ingest.ClassifierReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col, err := ingest.Collect(out.Data, out.Tickets, out.Monitor, opts)
		if err != nil {
			b.Fatal(err)
		}
		rep = col.Classifier
	}
	b.StopTimer()
	printSection("§III.A classification (paper: 87% accuracy)", fmt.Sprintf(
		"overall accuracy  %.1f%%\ncrash-class accuracy %.1f%% (paper: 87%%)\ncrash recall %.1f%% precision %.1f%%\n",
		100*rep.Accuracy, 100*rep.CrashClassAccuracy, 100*rep.CrashRecall, 100*rep.CrashPrecision))
	b.ReportMetric(rep.CrashClassAccuracy, "crash_class_accuracy")
}

// BenchmarkPrediction measures the failure-prediction extension: build the
// mid-year dataset, train the logistic model, evaluate against baselines.
func BenchmarkPrediction(b *testing.B) {
	in := benchInput(b)
	obs := in.Data.Observation
	split := obs.Start.Add(obs.Duration() / 2)
	var learned, history predict.Evaluation
	var m *predict.Model
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := predict.BuildDataset(in, split, 0.6)
		if err != nil {
			b.Fatal(err)
		}
		m, err = predict.TrainLogistic(ds.Train, predict.DefaultTrainOptions())
		if err != nil {
			b.Fatal(err)
		}
		learned = predict.Evaluate(m, ds.Test)
		history = predict.Evaluate(predict.HistoryBaseline(), ds.Test)
	}
	b.StopTimer()
	printSection("Extension: failure prediction (mid-year split)", fmt.Sprintf(
		"logistic: AUC %.3f precision@10%% %.3f lift %.1fx\nhistory:  AUC %.3f precision@10%% %.3f lift %.1fx\ntop factors: %v\n",
		learned.AUC, learned.PrecisionAt10, learned.Lift10,
		history.AUC, history.PrecisionAt10, history.Lift10,
		m.TopFactors(predict.FeatureNames)[:5]))
	b.ReportMetric(learned.AUC, "auc")
	b.ReportMetric(learned.Lift10, "lift10")
}

// BenchmarkCensoredInterFailureFit measures the right-censored fit that
// corrects the finite-window bias of Fig. 3.
func BenchmarkCensoredInterFailureFit(b *testing.B) {
	in := benchInput(b)
	var naiveMean, censMean, censoredShare float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sample, _ := core.InterFailureCensored(in, model.VM)
		naive, err := dist.FitGamma(sample.Observed)
		if err != nil {
			b.Fatal(err)
		}
		censored, err := dist.FitGammaCensored(sample)
		if err != nil {
			b.Fatal(err)
		}
		naiveMean = naive.Mean()
		censMean = censored.Mean()
		censoredShare = float64(len(sample.Censored)) / float64(sample.N())
	}
	b.StopTimer()
	printSection("Extension: censored inter-failure fit (finite-window bias correction)",
		fmt.Sprintf("Gamma fit to VM gaps: naive mean %.1f d; right-censored mean %.1f d (%.0f%% of spells censored)\n"+
			"the one-year window hides the long gaps; the censored likelihood recovers them.\n",
			naiveMean, censMean, 100*censoredShare))
	b.ReportMetric(censMean, "censored_mean_days")
}

// BenchmarkExtensionAgeHazard measures the exposure-normalized hazard
// curve — the statistically clean version of Fig. 6.
func BenchmarkExtensionAgeHazard(b *testing.B) {
	in := benchInput(b)
	var res core.HazardResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = core.AgeHazard(in, 60, 730)
	}
	b.StopTimer()
	printSection("Extension: exposure-normalized age hazard (no bathtub expected)",
		report.Hazard(res))
	b.ReportMetric(res.BathtubScore, "bathtub_score")
	b.ReportMetric(res.TrendSlope, "trend_slope")
}

// BenchmarkExtensionPlacement runs the fault-tolerance simulation: spread
// vs pack placement under the fitted failure models.
func BenchmarkExtensionPlacement(b *testing.B) {
	in := benchInput(b)
	vm := core.InterFailure(in, model.VM)
	repair := core.RepairTimes(in, model.VM)
	vmFit, ok1 := vm.Fits.Best()
	repairFit, ok2 := repair.Fits.Best()
	if !ok1 || !ok2 {
		b.Fatal("missing fits")
	}
	failHours, err := dist.NewScaled(vmFit.Dist, 24)
	if err != nil {
		b.Fatal(err)
	}
	cfg := ftsim.Config{
		Replicas: 3, Hosts: 8,
		VMFail: failHours, VMRepair: repairFit.Dist,
		HostFail: failHours, HostRepair: repairFit.Dist,
		HorizonHours: 5 * 365 * 24, Runs: 100, Seed: 7,
	}
	var results map[ftsim.Placement]ftsim.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err = ftsim.Compare(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	spread, pack := results[ftsim.Spread], results[ftsim.Pack]
	printSection("Extension: replica placement under correlated failures",
		fmt.Sprintf("spread: availability %.5f (%.1f h down / 5 yr)\npack:   availability %.5f (%.1f h down / 5 yr)\n",
			spread.Availability, spread.DowntimeHoursPerRun,
			pack.Availability, pack.DowntimeHoursPerRun))
	b.ReportMetric(spread.Availability, "spread_availability")
	b.ReportMetric(pack.Availability, "pack_availability")
}

// BenchmarkExtensionFleetBurstiness measures the fleet-level temporal
// clustering view (index of dispersion + autocorrelation) and the
// per-class recurrence table.
func BenchmarkExtensionFleetBurstiness(b *testing.B) {
	in := benchInput(b)
	var series core.WeeklySeries
	var classes []core.ClassRecurrence
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series = core.WeeklyFailureSeries(in, 0)
		classes = core.RecurrenceByClass(in, 0)
	}
	b.StopTimer()
	printSection("Extension: fleet-level burstiness and per-class recurrence",
		report.FleetSeries(series)+report.ClassRecurrences(classes))
	b.ReportMetric(series.IndexOfDispersion, "index_of_dispersion")
}

// --- Pipeline performance benchmarks -----------------------------------

func BenchmarkGenerate(b *testing.B) {
	cfg := dcsim.PaperConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dcsim.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel pipeline benchmarks ---------------------------------------
//
// Every stage produces byte-identical output at any worker count (see
// TestParallelStudyByteIdentical), so these measure pure speedup: the
// _Parallel1 variants are the sequential reference, _Parallel4 a fixed
// four-worker pool, _ParallelMax one worker per CPU.

func benchStudyRun(b *testing.B, parallelism int) {
	b.Helper()
	study := SmallStudy().WithParallelism(parallelism)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := study.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStudyRun_Parallel1(b *testing.B)   { benchStudyRun(b, 1) }
func BenchmarkStudyRun_Parallel4(b *testing.B)   { benchStudyRun(b, 4) }
func BenchmarkStudyRun_ParallelMax(b *testing.B) { benchStudyRun(b, 0) }

func benchGenerateParallel(b *testing.B, parallelism int) {
	b.Helper()
	cfg := dcsim.SmallConfig()
	cfg.Parallelism = parallelism
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dcsim.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerate_Parallel1(b *testing.B)   { benchGenerateParallel(b, 1) }
func BenchmarkGenerate_Parallel4(b *testing.B)   { benchGenerateParallel(b, 4) }
func BenchmarkGenerate_ParallelMax(b *testing.B) { benchGenerateParallel(b, 0) }

// smallField caches a small-scale field dataset for the stage benchmarks.
var (
	smallFieldOnce sync.Once
	smallFieldOut  *dcsim.Output
	smallFieldErr  error
)

func smallField(b *testing.B) *dcsim.Output {
	b.Helper()
	smallFieldOnce.Do(func() {
		smallFieldOut, smallFieldErr = dcsim.Generate(dcsim.SmallConfig())
	})
	if smallFieldErr != nil {
		b.Fatal(smallFieldErr)
	}
	return smallFieldOut
}

// benchKMeans measures the clustering kernel on the real ticket corpus.
func benchKMeans(b *testing.B, parallelism int) {
	b.Helper()
	out := smallField(b)
	cfg := dcsim.SmallConfig()
	tickets := out.Tickets.InWindow(cfg.Observation)
	docs := make([][]string, len(tickets))
	for i, t := range tickets {
		docs[i] = textmine.Tokenize(t.Description + " " + t.Resolution)
	}
	vocab := textmine.BuildVocabulary(docs, 2)
	vectors := make([]textmine.SparseVector, len(docs))
	for i, d := range docs {
		vectors[i] = vocab.Vectorize(d)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := textmine.KMeansParallel(vectors, vocab.Size(), 32, 20, xrand.New(1), parallelism); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeans_Parallel1(b *testing.B)   { benchKMeans(b, 1) }
func BenchmarkKMeans_Parallel4(b *testing.B)   { benchKMeans(b, 4) }
func BenchmarkKMeans_ParallelMax(b *testing.B) { benchKMeans(b, 0) }

// benchJoin measures the collection pipeline without classification — the
// monitoring join dominates.
func benchJoin(b *testing.B, parallelism int) {
	b.Helper()
	out := smallField(b)
	cfg := dcsim.SmallConfig()
	opts := ingest.DefaultOptions(cfg.Observation, cfg.FineWindow)
	opts.SkipClassification = true
	opts.Parallelism = parallelism
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ingest.Collect(out.Data, out.Tickets, out.Monitor, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoin_Parallel1(b *testing.B)   { benchJoin(b, 1) }
func BenchmarkJoin_Parallel4(b *testing.B)   { benchJoin(b, 4) }
func BenchmarkJoin_ParallelMax(b *testing.B) { benchJoin(b, 0) }

func BenchmarkCollect(b *testing.B) {
	cfg := dcsim.PaperConfig()
	out, err := dcsim.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	opts := ingest.DefaultOptions(cfg.Observation, cfg.FineWindow)
	opts.SkipClassification = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ingest.Collect(out.Data, out.Tickets, out.Monitor, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeFull(b *testing.B) {
	in := benchInput(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Analyze(in); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationClassifier compares the two-stage k-means pipeline with
// the rule-based keyword baseline on the same ticket stream.
func BenchmarkAblationClassifier(b *testing.B) {
	cfg := dcsim.PaperConfig()
	out, err := dcsim.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tickets := out.Tickets.InWindow(cfg.Observation)
	texts := make([]string, len(tickets))
	labels := make([]int, len(tickets))
	for i, t := range tickets {
		texts[i] = t.Description + " " + t.Resolution
		if t.IsCrash {
			labels[i] = int(t.Class)
		}
	}
	keyword := &textmine.KeywordClassifier{
		Default: 0,
		Rules: []textmine.KeywordRule{
			{Label: int(model.ClassHardware), Keywords: []string{"disk", "psu", "raid", "dimm", "motherboard", "chassis"}},
			{Label: int(model.ClassNetwork), Keywords: []string{"switch", "vlan", "nic", "uplink", "routing", "connectivity"}},
			{Label: int(model.ClassSoftware), Keywords: []string{"os", "kernel", "middleware", "deadlock", "hung", "panic"}},
			{Label: int(model.ClassPower), Keywords: []string{"pdu", "ups", "breaker", "outage", "electrical", "feeds"}},
			{Label: int(model.ClassReboot), Keywords: []string{"rebooted", "restarted", "unexpectedly", "bounced", "recycled"}},
			{Label: int(model.ClassOther), Keywords: []string{"unreachable", "down", "crashed", "unavailable"}},
		},
	}
	var cm *textmine.ConfusionMatrix
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm, err = keyword.Evaluate(texts, labels)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()

	// Crash-class accuracy of the keyword baseline.
	var crashTotal, crashHit int
	for key, n := range cm.Counts {
		if key[0] > 0 {
			crashTotal += n
			if key[0] == key[1] {
				crashHit += n
			}
		}
	}
	acc := float64(crashHit) / float64(crashTotal)
	printSection("Ablation: keyword baseline vs k-means (k-means reaches ~90%)",
		fmt.Sprintf("keyword baseline crash-class accuracy: %.1f%%\n", 100*acc))
	b.ReportMetric(acc, "keyword_crash_class_accuracy")
}

// BenchmarkAblationInterFailureFit reports the full model-selection table,
// the paper's Gamma-vs-Weibull-vs-Lognormal comparison, plus the
// exponential null model that "failures are not memoryless" rejects.
func BenchmarkAblationInterFailureFit(b *testing.B) {
	in := benchInput(b)
	var pm, vm core.InterFailureResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pm = core.InterFailure(in, model.PM)
		vm = core.InterFailure(in, model.VM)
	}
	b.StopTimer()
	text := ""
	for _, r := range []core.InterFailureResult{pm, vm} {
		text += fmt.Sprintf("%s inter-failure fits:\n", r.Kind)
		for _, fr := range r.Fits.Results {
			text += fmt.Sprintf("  %-12s logL=%9.1f AIC=%9.1f %v\n", fr.Dist.Name(), fr.LogLikelihood, fr.AIC, fr.Dist)
		}
	}
	printSection("Ablation: inter-failure model selection (paper: Gamma wins, exponential rejected)", text)
}

// BenchmarkAblationSpatialCoupling regenerates the dataset without spatial
// fan-out and shows that the multi-server incident mass and the VM spatial
// dependency disappear.
func BenchmarkAblationSpatialCoupling(b *testing.B) {
	cfg := dcsim.PaperConfig()
	cfg.Spatial.Enabled = false
	var sp core.SpatialResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := dcsim.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		opts := ingest.DefaultOptions(cfg.Observation, cfg.FineWindow)
		opts.SkipClassification = true
		col, err := ingest.Collect(out.Data, out.Tickets, out.Monitor, opts)
		if err != nil {
			b.Fatal(err)
		}
		sp = core.Spatial(core.Input{Data: col.Data, Attrs: col.Attrs})
	}
	b.StopTimer()
	printSection("Ablation: spatial coupling disabled (multi-server mass should vanish)",
		report.Spatial(sp))
	b.ReportMetric(sp.ShareTwoPlus, "two_plus_share")
}

// BenchmarkAblationFlatCurves regenerates with flat attribute curves: the
// Fig. 7/8 panels must lose their shape, showing the analysis is measuring
// real structure, not an artifact of the binning.
func BenchmarkAblationFlatCurves(b *testing.B) {
	cfg := dcsim.PaperConfig()
	cfg.Curves = dcsim.CurveSet{
		PMCPU: dcsim.Flat(), VMCPU: dcsim.Flat(),
		PMMem: dcsim.Flat(), VMMem: dcsim.Flat(),
		VMDiskCap: dcsim.Flat(), VMDiskCount: dcsim.Flat(),
		PMCPUUtil: dcsim.Flat(), VMCPUUtil: dcsim.Flat(),
		PMMemUtil: dcsim.Flat(), VMMemUtil: dcsim.Flat(),
		VMDiskUtil: dcsim.Flat(), VMNetKbps: dcsim.Flat(),
		Consolidation: dcsim.Flat(), OnOff: dcsim.Flat(),
	}
	var panels map[string]core.BinnedRates
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := dcsim.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		opts := ingest.DefaultOptions(cfg.Observation, cfg.FineWindow)
		opts.SkipClassification = true
		col, err := ingest.Collect(out.Data, out.Tickets, out.Monitor, opts)
		if err != nil {
			b.Fatal(err)
		}
		panels, err = core.CapacityStudy(core.Input{Data: col.Data, Attrs: col.Attrs})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printSection("Ablation: flat generator curves (increment factors should collapse toward 1)",
		fmt.Sprintf("pm_cpu factor %.2f (was ~4-5x)\nvm_diskcount factor %.2f (was ~4-5x)\n",
			panels["pm_cpu"].IncrementFactor, panels["vm_diskcount"].IncrementFactor))
	b.ReportMetric(panels["pm_cpu"].IncrementFactor, "pm_cpu_factor")
}

// BenchmarkAblationHomogeneousFleet regenerates with near-homogeneous
// machines: the recurrent/random ratio collapses, showing that failure
// clustering — not chance — drives Table V.
func BenchmarkAblationHomogeneousFleet(b *testing.B) {
	cfg := dcsim.PaperConfig()
	cfg.HeterogeneityShapePM = 50
	cfg.HeterogeneityShapeVM = 50
	cfg.Recurrence.PMProb = 0
	cfg.Recurrence.VMProb = 0
	var rows []core.RandomVsRecurrent
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := dcsim.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		opts := ingest.DefaultOptions(cfg.Observation, cfg.FineWindow)
		opts.SkipClassification = true
		col, err := ingest.Collect(out.Data, out.Tickets, out.Monitor, opts)
		if err != nil {
			b.Fatal(err)
		}
		rows = core.RandomVsRecurrentTable(core.Input{Data: col.Data, Attrs: col.Attrs})
	}
	b.StopTimer()
	text := ""
	for _, r := range rows {
		if r.System == 0 {
			text += fmt.Sprintf("%s: random %.4f recurrent %.3f ratio %.1fx (calibrated model: 35-45x)\n",
				r.Kind, r.Random, r.Recurrent, r.Ratio)
		}
	}
	printSection("Ablation: homogeneous fleet without recurrence chains", text)
}

// BenchmarkAblationLabelNoise reruns the headline analyses with the
// classifier's *predicted* labels instead of the manually verified ground
// truth: the end-to-end sensitivity of the study to its ~10%
// classification error.
func BenchmarkAblationLabelNoise(b *testing.B) {
	cfg := dcsim.PaperConfig()
	out, err := dcsim.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	opts := ingest.DefaultOptions(cfg.Observation, cfg.FineWindow)
	opts.UsePredictedLabels = true
	var noisy core.Input
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col, err := ingest.Collect(out.Data, out.Tickets, out.Monitor, opts)
		if err != nil {
			b.Fatal(err)
		}
		noisy = core.Input{Data: col.Data, Attrs: col.Attrs}
	}
	b.StopTimer()

	truth := benchInput(b)
	rate := func(in core.Input, kind model.MachineKind) float64 {
		return rateOf(in, kind)
	}
	pmT, vmT := rate(truth, model.PM), rate(truth, model.VM)
	pmN, vmN := rate(noisy, model.PM), rate(noisy, model.VM)
	recT := core.Recurrence(truth, model.PM, 0).WithinWeek
	recN := core.Recurrence(noisy, model.PM, 0).WithinWeek
	printSection("Ablation: predicted labels instead of manual verification",
		fmt.Sprintf("PM weekly rate: truth %.4f vs predicted-labels %.4f\nVM weekly rate: truth %.4f vs predicted-labels %.4f\nPM weekly recurrence: truth %.3f vs predicted-labels %.3f\n",
			pmT, pmN, vmT, vmN, recT, recN))
	b.ReportMetric(pmN/pmT, "pm_rate_ratio")
}

// rateOf returns the mean weekly failure rate of a kind across the fleet.
func rateOf(in core.Input, kind model.MachineKind) float64 {
	for _, r := range core.WeeklyFailureRates(in) {
		if r.System == 0 && r.Kind == kind {
			return r.Summary.Mean
		}
	}
	return 0
}

// BenchmarkDatasetCodec measures the JSONL round trip of the full dataset.
func BenchmarkDatasetCodec(b *testing.B) {
	in := benchInput(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf countingWriter
		if err := in.Data.Encode(&buf); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.n))
	}
}

type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// BenchmarkRNG keeps an eye on the generator's hot path.
func BenchmarkRNG(b *testing.B) {
	r := xrand.New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Gamma(0.5, 2)
	}
}
