// Package failscope reproduces "Failure Analysis of Virtual and Physical
// Machines: Patterns, Causes and Characteristics" (Birke et al., DSN 2014)
// end to end: a calibrated datacenter field-data simulator standing in for
// the five commercial subsystems the paper measured, the ticket-mining
// collection pipeline of §III, and the failure-analysis library of §IV–§VI
// that regenerates every table and figure of the paper.
//
// The typical flow is three calls:
//
//	study := failscope.PaperStudy()            // calibrated configuration
//	res, err := study.Run()                    // generate → collect → analyze
//	fmt.Print(res.RenderReport())              // all tables and figures
//
// Power users can drive the stages separately through Generate, Collect
// and Analyze, e.g. to persist a generated dataset, swap in their own
// field data, or run a single analysis on a custom fleet.
package failscope

import (
	"fmt"
	"io"
	"time"

	"failscope/internal/core"
	"failscope/internal/dcsim"
	"failscope/internal/detect"
	"failscope/internal/dist"
	"failscope/internal/fidelity"
	"failscope/internal/ftsim"
	"failscope/internal/ingest"
	"failscope/internal/model"
	"failscope/internal/monitordb"
	"failscope/internal/obs"
	"failscope/internal/predict"
	"failscope/internal/report"
	"failscope/internal/stream"
	"failscope/internal/textmine"
	"failscope/internal/ticketdb"
	"failscope/internal/xrand"
)

// Re-exported domain types, so that library users never need to import
// internal packages.
type (
	// Dataset is the assembled field data (machines, tickets, incidents).
	Dataset = model.Dataset
	// Machine is one server in the study.
	Machine = model.Machine
	// Ticket is one problem-ticket record.
	Ticket = model.Ticket
	// Incident is one (possibly multi-server) failure event.
	Incident = model.Incident
	// Attributes are the per-machine measurements of interest.
	Attributes = model.Attributes
	// MachineID identifies a machine.
	MachineID = model.MachineID
	// MachineKind distinguishes PMs, VMs and hosting boxes.
	MachineKind = model.MachineKind
	// System identifies a datacenter subsystem.
	System = model.System
	// FailureClass is the six-way crash classification.
	FailureClass = model.FailureClass
	// Window is an observation interval.
	Window = model.Window

	// GeneratorConfig is the full simulator configuration.
	GeneratorConfig = dcsim.Config
	// CollectOptions configures the ticket-mining pipeline.
	CollectOptions = ingest.Options
	// Collection is the pipeline output (dataset + attributes + report).
	Collection = ingest.Collection
	// ClassifierReport scores the k-means ticket classification.
	ClassifierReport = ingest.ClassifierReport
	// AnalysisInput feeds the analysis library.
	AnalysisInput = core.Input
	// AnalysisReport bundles every table and figure of the paper.
	AnalysisReport = core.Report
	// FieldData is the raw generated databases.
	FieldData = dcsim.Output

	// Per-analysis result types (one per table/figure).
	SystemStats        = core.SystemStats        // Table II
	ClassShare         = core.ClassShare         // Fig. 1
	RateSummary        = core.RateSummary        // Fig. 2
	InterFailureResult = core.InterFailureResult // Fig. 3
	ClassGapStats      = core.ClassGapStats      // Table III
	RepairResult       = core.RepairResult       // Fig. 4
	ClassRepairStats   = core.ClassRepairStats   // Table IV
	RecurrenceResult   = core.RecurrenceResult   // Fig. 5
	RandomVsRecurrent  = core.RandomVsRecurrent  // Table V
	SpatialResult      = core.SpatialResult      // Table VI
	ClassSpatialStats  = core.ClassSpatialStats  // Table VII
	AgeResult          = core.AgeResult          // Fig. 6
	BinnedRates        = core.BinnedRates        // Figs. 7-10
	AttrBin            = core.AttrBin

	// Failure-prediction extension: learn which servers will fail next
	// from the paper's factor set.
	PredictionDataset    = predict.Dataset
	PredictionExample    = predict.Example
	PredictionModel      = predict.Model
	PredictionEvaluation = predict.Evaluation
	PredictionScorer     = predict.Scorer

	// Fault-tolerance simulation extension: evaluate replica-placement
	// policies under the fitted failure models.
	FTConfig    = ftsim.Config
	FTResult    = ftsim.Result
	FTPlacement = ftsim.Placement
)

// Replica-placement policies for the fault-tolerance simulator.
const (
	PlacementSpread = ftsim.Spread
	PlacementPack   = ftsim.Pack
)

// Distribution is a fitted continuous distribution (Gamma, Weibull,
// Lognormal, Exponential or a scaled wrapper); obtained from the analysis
// report's fit selections.
type Distribution = dist.Distribution

// ScaleDistribution returns the distribution of factor·X — the unit-change
// wrapper (e.g. drive an hour-clock simulator with a gap model fitted in
// days using factor 24).
func ScaleDistribution(d Distribution, factor float64) (Distribution, error) {
	s, err := dist.NewScaled(d, factor)
	if err != nil {
		return nil, fmt.Errorf("failscope: scale distribution: %w", err)
	}
	return s, nil
}

// SimulateService runs the discrete-event fault-tolerance simulation.
func SimulateService(cfg FTConfig) (FTResult, error) {
	res, err := ftsim.Run(cfg)
	if err != nil {
		return FTResult{}, fmt.Errorf("failscope: simulate service: %w", err)
	}
	return res, nil
}

// ComparePlacements runs the same service under spread and pack placement.
func ComparePlacements(cfg FTConfig) (map[FTPlacement]FTResult, error) {
	out, err := ftsim.Compare(cfg)
	if err != nil {
		return nil, fmt.Errorf("failscope: compare placements: %w", err)
	}
	return out, nil
}

// SystemProfile is the per-subsystem operator one-pager.
type SystemProfile = core.SystemProfile

// ProfileSystem assembles the per-system deep dive: populations, rates by
// kind, class mix, repair picture, recurrence and the worst offenders.
func ProfileSystem(in AnalysisInput, sys System, topN int) SystemProfile {
	return core.Profile(in, sys, topN)
}

// PredictionFeatureNames lists the model inputs, in feature-vector order.
func PredictionFeatureNames() []string {
	return append([]string(nil), predict.FeatureNames...)
}

// BuildPredictionDataset derives a train/test failure-prediction dataset
// from an analysis input: features up to the split time, labels from the
// crash history after it.
func BuildPredictionDataset(in AnalysisInput, split time.Time, trainShare float64) (*PredictionDataset, error) {
	ds, err := predict.BuildDataset(in, split, trainShare)
	if err != nil {
		return nil, fmt.Errorf("failscope: build prediction dataset: %w", err)
	}
	return ds, nil
}

// TrainPredictor fits the logistic failure predictor.
func TrainPredictor(train []PredictionExample) (*PredictionModel, error) {
	m, err := predict.TrainLogistic(train, predict.DefaultTrainOptions())
	if err != nil {
		return nil, fmt.Errorf("failscope: train predictor: %w", err)
	}
	return m, nil
}

// EvaluatePredictor scores a predictor (or baseline) on test examples.
func EvaluatePredictor(s PredictionScorer, test []PredictionExample) PredictionEvaluation {
	return predict.Evaluate(s, test)
}

// HistoryBaseline is the past-failures-only scorer the learned model is
// compared against.
func HistoryBaseline() PredictionScorer { return predict.HistoryBaseline() }

// Machine kinds and failure classes, re-exported.
const (
	PM  = model.PM
	VM  = model.VM
	Box = model.Box

	ClassHardware = model.ClassHardware
	ClassNetwork  = model.ClassNetwork
	ClassSoftware = model.ClassSoftware
	ClassPower    = model.ClassPower
	ClassReboot   = model.ClassReboot
	ClassOther    = model.ClassOther
)

// Study is a reproducible experiment: a generator configuration plus
// collection options.
type Study struct {
	Generator GeneratorConfig
	Collect   CollectOptions

	// Parallelism, when non-zero, overrides the worker count of both the
	// generator and the collection pipeline for this run: 0 leaves the
	// per-stage settings alone, 1 forces the sequential reference path, and
	// any other value fans the per-machine/per-ticket work across that many
	// goroutines. Every setting produces byte-identical results — see the
	// "Concurrency model" section of DESIGN.md.
	Parallelism int

	// Observer, when non-nil, records stage spans and pipeline metrics for
	// the run — see the "Observability" section of DESIGN.md. Observation
	// never touches a random stream, so the result is byte-identical with
	// and without it, at any worker count.
	Observer *Observer
}

// WithParallelism returns a copy of the study with the worker count of
// every stage set to p (0 = GOMAXPROCS, 1 = sequential).
func (s Study) WithParallelism(p int) Study {
	s.Parallelism = p
	s.Generator.Parallelism = p
	s.Collect.Parallelism = p
	return s
}

// WithObserver returns a copy of the study instrumented with o.
func (s Study) WithObserver(o *Observer) Study {
	s.Observer = o
	return s
}

// PaperStudy returns the study calibrated to the paper's published
// statistics: five subsystems, ~10K machines, one year of tickets.
func PaperStudy() Study {
	gen := dcsim.PaperConfig()
	return Study{
		Generator: gen,
		Collect:   ingest.DefaultOptions(gen.Observation, gen.FineWindow),
	}
}

// SmallStudy returns a scaled-down study (~1/8 of the populations) for
// quick experiments and tests.
func SmallStudy() Study {
	gen := dcsim.SmallConfig()
	return Study{
		Generator: gen,
		Collect:   ingest.DefaultOptions(gen.Observation, gen.FineWindow),
	}
}

// FleetStudy returns the ~10⁶-machine stress study behind the BENCH_fleet
// baseline: the paper's subsystems scaled up 106×, an 8-week observation
// window, and text classification off (the fleet run benchmarks the
// generate/collect/analyze hot paths at fleet cardinality, not the miner).
func FleetStudy() Study {
	gen := dcsim.FleetConfig()
	opts := ingest.DefaultOptions(gen.Observation, gen.FineWindow)
	opts.SkipClassification = true
	return Study{
		Generator: gen,
		Collect:   opts,
	}
}

// Result is a completed study run.
type Result struct {
	Field      *FieldData
	Collection *Collection
	Report     *AnalysisReport
}

// Run executes the full pipeline: generate field data, run the collection
// pipeline, and analyze. With an Observer attached, each stage runs under
// its own span ("generate", "collect", "analyze") with the per-stage
// sub-stages nested beneath.
func (s Study) Run() (*Result, error) {
	if s.Parallelism != 0 {
		s.Generator.Parallelism = s.Parallelism
		s.Collect.Parallelism = s.Parallelism
	}
	o := s.Observer
	genSpan := o.Start("generate")
	s.Generator.Observer = o.Under(genSpan)
	field, err := Generate(s.Generator)
	genSpan.End()
	if err != nil {
		return nil, err
	}
	colSpan := o.Start("collect")
	s.Collect.Observer = o.Under(colSpan)
	col, err := Collect(field, s.Collect)
	colSpan.End()
	if err != nil {
		return nil, err
	}
	anaSpan := o.Start("analyze")
	rep, err := Analyze(AnalysisInput{Data: col.Data, Attrs: col.Attrs, Observer: o.Under(anaSpan)})
	anaSpan.End()
	if err != nil {
		return nil, err
	}
	return &Result{Field: field, Collection: col, Report: rep}, nil
}

// Generate runs the datacenter simulator, producing raw field data.
func Generate(cfg GeneratorConfig) (*FieldData, error) {
	out, err := dcsim.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("failscope: generate: %w", err)
	}
	return out, nil
}

// Collect runs the §III data-collection pipeline over field data.
func Collect(field *FieldData, opts CollectOptions) (*Collection, error) {
	col, err := ingest.Collect(field.Data, field.Tickets, field.Monitor, opts)
	if err != nil {
		return nil, fmt.Errorf("failscope: collect: %w", err)
	}
	return col, nil
}

// CollectDataset runs the pipeline over an externally supplied dataset and
// monitoring database (e.g. real field data decoded from disk).
func CollectDataset(data *Dataset, tickets []Ticket, monitor *monitordb.DB, opts CollectOptions) (*Collection, error) {
	store := ticketdb.NewStore()
	for _, t := range tickets {
		store.Append(t)
	}
	col, err := ingest.Collect(data, store, monitor, opts)
	if err != nil {
		return nil, fmt.Errorf("failscope: collect dataset: %w", err)
	}
	return col, nil
}

// Analyze runs the complete §IV–§VI analysis.
func Analyze(in AnalysisInput) (*AnalysisReport, error) {
	rep, err := core.Analyze(in)
	if err != nil {
		return nil, fmt.Errorf("failscope: analyze: %w", err)
	}
	return rep, nil
}

// RenderReport renders every table and figure of the paper as text.
func (r *Result) RenderReport() string {
	return report.Full(r.Report)
}

// WriteDataset persists the generated dataset as JSON Lines.
func WriteDataset(w io.Writer, d *Dataset) error { return d.Encode(w) }

// ReadDataset loads a dataset written with WriteDataset.
func ReadDataset(r io.Reader) (*Dataset, error) { return model.Decode(r) }

// MonitorDB is the resource-monitoring database (usage series, placements,
// power events).
type MonitorDB = monitordb.DB

// WriteMonitor persists a monitoring database as JSON Lines.
func WriteMonitor(w io.Writer, db *MonitorDB) error { return db.Encode(w) }

// ReadMonitor loads a monitoring database written with WriteMonitor (or an
// external telemetry export in the same format).
func ReadMonitor(r io.Reader) (*MonitorDB, error) { return monitordb.Decode(r) }

// NewEmptyMonitor returns an empty monitoring database (analyses needing
// usage/consolidation attributes will be restricted accordingly).
func NewEmptyMonitor(epoch time.Time, retention time.Duration) *MonitorDB {
	return monitordb.New(epoch, retention)
}

// RNG is the deterministic random number generator used across the
// library; exposed so callers can sample from fitted distributions (e.g.
// in reliability models built on top of the analysis).
type RNG = xrand.RNG

// NewRNG returns a seeded deterministic generator.
func NewRNG(seed uint64) *RNG { return xrand.New(seed) }

// Observability, re-exported from internal/obs. An Observer records a
// hierarchical span tree (wall time, summed worker busy time, allocation
// deltas, item counts per pipeline stage) and a registry of named metrics
// as the study runs; both export as a text tree, a plain-text metric dump,
// expvar variables, or a machine-readable RunReport. Every method is safe
// on a nil receiver, and observation never touches a random stream.
type (
	// Observer couples the active span with the run's metric registry.
	Observer = obs.Observer
	// Span is one timed stage of the pipeline.
	Span = obs.Span
	// Metrics is the named counter/gauge/histogram registry.
	Metrics = obs.Registry
	// RunReport is the machine-readable run summary (JSON).
	RunReport = obs.RunReport
	// SpanReport is one span in a RunReport.
	SpanReport = obs.SpanReport
)

// NewObserver returns an observer rooted at a run-level span named name.
func NewObserver(name string) *Observer { return obs.NewObserver(name) }

// Logger is the nil-safe structured pipeline logger (a log/slog wrapper);
// attach one to an Observer with WithLogger to get stage start/end, drop
// decision and data-quality log records as the study runs.
type Logger = obs.Logger

// NewLogger returns a structured logger writing to w. Level is one of
// "debug", "info", "warn", "error"; format is "text" or "json".
func NewLogger(w io.Writer, level, format string) (*Logger, error) {
	l, err := obs.NewLogger(w, level, format)
	if err != nil {
		return nil, fmt.Errorf("failscope: new logger: %w", err)
	}
	return l, nil
}

// Reproduction-fidelity scoreboard, re-exported from internal/fidelity.
// ScoreFidelity grades a completed run against the simulator's ground
// truth and the paper's headline numbers — see the "Observability" section
// of DESIGN.md.
type (
	// FidelityScoreboard is the full fidelity report of one run: the
	// ground-truth quality scores plus every evaluated paper band.
	FidelityScoreboard = fidelity.Scoreboard
	// FidelityBand is one evaluated paper-expected check.
	FidelityBand = fidelity.Band
	// FidelityQuality scores the pipeline against simulator ground truth.
	FidelityQuality = fidelity.Quality
	// FidelityVerdict is a band outcome: pass, warn, fail or skip.
	FidelityVerdict = fidelity.Verdict
)

// Fidelity band verdicts.
const (
	FidelityPass = fidelity.VerdictPass
	FidelityWarn = fidelity.VerdictWarn
	FidelityFail = fidelity.VerdictFail
	FidelitySkip = fidelity.VerdictSkip
)

// ScoreFidelity evaluates the reproduction-fidelity scoreboard for a
// completed run. The observer is optional: when non-nil its metrics
// snapshot feeds the drop-accounting and join-coverage scores; the
// registry-based checks skip otherwise. Scoring only reads the result, so
// study output is byte-identical with scoring on or off.
func ScoreFidelity(res *Result, o *Observer) *FidelityScoreboard {
	in := fidelity.Input{Metrics: o.Metrics().Snapshot()}
	if res != nil {
		in.Report = res.Report
		if res.Collection != nil {
			in.Classifier = res.Collection.Classifier
		}
	}
	return fidelity.Score(in)
}

// ServeDebug starts an HTTP server on addr exposing /debug/pprof and
// /debug/vars; it returns the bound address and a shutdown func.
func ServeDebug(addr string) (string, func(), error) { return obs.ServeDebug(addr) }

// Streaming, re-exported from internal/stream: the incremental engine that
// keeps the paper's statistics continuously up to date as events arrive,
// converging to the batch Analyze numbers on the same data. failscoped
// serves it over HTTP; library users embed it directly:
//
//	eng, _ := failscope.NewStreamEngine(failscope.StreamConfig{Observation: win})
//	eng.Apply(batch)                        // ordered ticket/sample events
//	snap := eng.Snapshot()                  // partial AnalysisReport, anytime
//	fmt.Println(snap.Fidelity().Passed)     // paper-band scoreboard
type (
	// StreamEngine is the incremental analysis engine.
	StreamEngine = stream.Engine
	// StreamConfig configures the engine (observation window, optional
	// online classifier, optional monitoring retention).
	StreamConfig = stream.Config
	// StreamEvent is one element of the input stream (JSONL on the wire).
	StreamEvent = stream.Event
	// Snapshot is the engine's queryable state at one point in the stream.
	Snapshot = stream.Snapshot

	// OnlineClassifier is the frozen two-stage crash-ticket model, safe for
	// concurrent streaming prediction.
	OnlineClassifier = textmine.OnlineClassifier

	// Detector is the online failure-detection layer: per-machine
	// recurrence and anomaly detectors over the live stream, raising and
	// clearing alerts scored against ground truth.
	Detector = detect.Detector
	// DetectorConfig parameterizes a Detector; zero fields take the
	// calibrated defaults.
	DetectorConfig = detect.Config
	// Alert is one raised (or recently cleared) detection.
	Alert = detect.Alert
	// DetectionSnapshot is the queryable detection state: active alerts,
	// cleared ring and confirmation accounting.
	DetectionSnapshot = detect.Snapshot
)

// NewDetector creates an online failure detector; wire it into a stream
// engine through StreamConfig.Detector.
func NewDetector(cfg DetectorConfig) *Detector { return detect.New(cfg) }

// ScoreDetection grades a detection snapshot's precision, lead-time and
// false-alarm accounting against the calibrated bands, in the same
// scoreboard shape FidelityScore uses; Err on the result drives the
// failanalyze -detect-gate exit code.
func ScoreDetection(s *DetectionSnapshot) *FidelityScoreboard { return detect.Score(s) }

// NewStreamEngine creates a streaming analysis engine.
func NewStreamEngine(cfg StreamConfig) (*StreamEngine, error) {
	eng, err := stream.NewEngine(cfg)
	if err != nil {
		return nil, fmt.Errorf("failscope: new stream engine: %w", err)
	}
	return eng, nil
}

// TrainOnlineClassifier trains the two-stage k-means ticket classifier for
// streaming use. The training draws are byte-for-byte those of the batch
// collection pipeline with the same options, so a frozen model predicts
// exactly what Collect would have.
func TrainOnlineClassifier(tickets []Ticket, opts CollectOptions) (*OnlineClassifier, error) {
	clf, err := ingest.TrainOnlineClassifier(tickets, opts)
	if err != nil {
		return nil, fmt.Errorf("failscope: %w", err)
	}
	return clf, nil
}

// StreamEventsFromField flattens generated (or ingested) field data into
// the ordered event stream a live deployment would have produced —
// inventory first, then every timed record in arrival order.
func StreamEventsFromField(field *FieldData) []StreamEvent {
	return stream.EventsFromField(field.Data, field.Tickets, field.Monitor)
}

// ReadStreamEvents decodes a JSONL event batch; errors name the 1-based
// offending line.
func ReadStreamEvents(r io.Reader) ([]StreamEvent, error) { return stream.DecodeJSONL(r) }

// WriteStreamEvents writes events one JSON object per line.
func WriteStreamEvents(w io.Writer, events []StreamEvent) error {
	return stream.EncodeJSONL(w, events)
}

// PaperConfig exposes the calibrated generator configuration for callers
// who want to tweak individual knobs (seeds, populations, curves).
func PaperConfig() GeneratorConfig { return dcsim.PaperConfig() }

// DefaultCollectOptions returns pipeline defaults for the given windows.
func DefaultCollectOptions(obs, fine Window) CollectOptions {
	return ingest.DefaultOptions(obs, fine)
}
