module failscope

go 1.22
