// Streaming analysis: the batch study as a live feed. This example
// generates the small-study field data, flattens it into the ordered
// event stream a real deployment would produce (inventory first, then
// tickets, monitoring samples and placements in arrival order), and
// replays it month by month through the incremental engine — printing the
// PM/VM weekly failure rates as they converge toward the batch numbers,
// and the paper-band scoreboard at the end.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"os"

	"failscope"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "streaming:", err)
		os.Exit(1)
	}
}

func run() error {
	study := failscope.SmallStudy()
	field, err := failscope.Generate(study.Generator)
	if err != nil {
		return err
	}
	events := failscope.StreamEventsFromField(field)
	fmt.Printf("replaying %d events through the streaming engine\n\n", len(events))

	eng, err := failscope.NewStreamEngine(failscope.StreamConfig{
		Observation:      study.Generator.Observation,
		FineWindow:       study.Generator.FineWindow,
		MonitorEpoch:     study.Generator.MonitorEpoch,
		MonitorRetention: study.Generator.MonitorRetention,
	})
	if err != nil {
		return err
	}

	// Feed the stream in twelve slices and snapshot after each: the
	// engine is queryable at any point, not just at the end.
	fmt.Printf("%-8s %10s %14s %14s\n", "batch", "tickets", "PM rate/week", "VM rate/week")
	const slices = 12
	for i := 0; i < slices; i++ {
		lo, hi := i*len(events)/slices, (i+1)*len(events)/slices
		if err := eng.Apply(events[lo:hi]); err != nil {
			return err
		}
		snap := eng.Snapshot()
		var pm, vm float64
		for _, r := range snap.Report.WeeklyRates {
			if r.System == 0 {
				switch r.Kind {
				case failscope.PM:
					pm = r.Summary.Mean
				case failscope.VM:
					vm = r.Summary.Mean
				}
			}
		}
		fmt.Printf("%-8d %10d %14.5f %14.5f\n", i+1, snap.Tickets, pm, vm)
	}

	// The final snapshot carries the partial paper report; score it
	// against the published bands.
	snap := eng.Snapshot()
	sb := snap.Fidelity()
	fmt.Printf("\nfinal snapshot: %d events, %d crash tickets, watermark %s\n",
		snap.Events, snap.CrashTickets, snap.Watermark.Format("2006-01-02"))
	fmt.Printf("fidelity: %d passed, %d warned, %d failed, %d skipped\n",
		sb.Passed, sb.Warned, sb.Failed, sb.Skipped)
	for _, b := range sb.Bands {
		if b.Verdict != failscope.FidelitySkip {
			fmt.Printf("  %-28s %-5s value %.4g\n", b.Name, b.Verdict, b.Value)
		}
	}
	return nil
}
