// Reliability modeling: the use case §IV.B motivates ("understanding the
// inter-failure times is crucial for reliability modeling and useful for
// the design of fault-tolerant systems"). This example fits the analytic
// distributions to a generated fleet and then uses the fitted model — not
// the raw data — to answer an operator's question: how many nines does a
// service replicated across k VMs get, and how much does the Gamma
// (bursty) failure structure matter versus the memoryless assumption?
//
//	go run ./examples/reliabilitymodel
package main

import (
	"fmt"
	"os"

	"failscope"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "reliabilitymodel:", err)
		os.Exit(1)
	}
}

func run() error {
	study := failscope.PaperStudy()
	study.Collect.SkipClassification = true
	res, err := study.Run()
	if err != nil {
		return err
	}

	vmFit, ok := res.Report.InterFailureVM.Fits.Best()
	if !ok {
		return fmt.Errorf("no inter-failure fit")
	}
	repFit, ok := res.Report.RepairVM.Fits.Best()
	if !ok {
		return fmt.Errorf("no repair fit")
	}
	fmt.Printf("fitted models from the field data:\n")
	fmt.Printf("  inter-failure: %v  (mean %.1f days)\n", vmFit.Dist, vmFit.Dist.Mean())
	fmt.Printf("  repair:        %v  (mean %.1f hours)\n\n", repFit.Dist, repFit.Dist.Mean())

	// Monte-Carlo a service on k replicas for one simulated year: the
	// service is down when ALL replicas are simultaneously down. Each
	// replica alternates between up (fitted inter-failure draw) and down
	// (fitted repair draw).
	rng := failscope.NewRNG(99)
	const years = 2000
	fmt.Println("service availability by replica count (fitted model, Monte Carlo):")
	for _, k := range []int{1, 2, 3} {
		down := simulate(rng, k, years, func() float64 {
			return vmFit.Dist.Sample(rng) * 24 // days -> hours
		}, func() float64 {
			return repFit.Dist.Sample(rng)
		})
		avail := 1 - down/(years*365*24)
		fmt.Printf("  %d replica(s): availability %.5f%%  (%.1f h downtime / yr)\n",
			k, 100*avail, down/years)
	}

	// The memoryless comparison: replace the Gamma gaps with an
	// exponential of the same mean and watch the tail change. Bursty
	// (Gamma) failures cluster, so simultaneous replica loss is MORE
	// likely than the exponential model predicts.
	var expFit failscope.InterFailureResult = res.Report.InterFailureVM
	var expDist interface {
		Sample(*failscope.RNG) float64
	}
	for _, fr := range expFit.Fits.Results {
		if fr.Dist.Name() == "exponential" {
			expDist = fr.Dist
		}
	}
	if expDist != nil {
		down := simulate(rng, 2, years, func() float64 {
			return expDist.Sample(rng) * 24
		}, func() float64 {
			return repFit.Dist.Sample(rng)
		})
		fmt.Printf("\nmemoryless (exponential) 2-replica model: %.1f h downtime / yr\n", down/years)
		fmt.Println("the gap versus the Gamma model is the cost of assuming independence —")
		fmt.Println("the paper's recurrent-failure finding, turned into an engineering margin.")
	}
	return nil
}

// simulate returns total service downtime (hours) across the given number
// of simulated years for k replicas; the service is down while all k are
// down simultaneously.
func simulate(rng *failscope.RNG, k, years int, gap, repair func() float64) float64 {
	const horizon = 365 * 24.0
	totalDown := 0.0
	for y := 0; y < years; y++ {
		// Build each replica's down intervals for one year.
		type interval struct{ start, end float64 }
		intervals := make([][]interval, k)
		for r := 0; r < k; r++ {
			t := gap()
			for t < horizon {
				d := repair()
				intervals[r] = append(intervals[r], interval{t, t + d})
				t += d + gap()
			}
		}
		// Sweep: accumulate time where every replica is inside a down
		// interval. A simple per-hour scan is plenty at this scale.
		const step = 0.25
		idx := make([]int, k)
		for t := 0.0; t < horizon; t += step {
			allDown := true
			for r := 0; r < k && allDown; r++ {
				for idx[r] < len(intervals[r]) && intervals[r][idx[r]].end <= t {
					idx[r]++
				}
				if idx[r] >= len(intervals[r]) || intervals[r][idx[r]].start > t {
					allDown = false
				}
			}
			if allDown {
				totalDown += step
			}
		}
	}
	return totalDown
}
