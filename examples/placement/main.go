// Replica placement under correlated failures: the paper's spatial-
// dependency finding (§IV.E — a dying host takes its co-hosted VMs down
// together) turned into a design experiment. We fit the failure and repair
// models from the generated field data, then drive a discrete-event
// simulation of a 3-replica service under two placement policies:
//
//	spread — every replica on a distinct host (anti-affinity)
//	pack   — all replicas on one host (naive consolidation)
//
//	go run ./examples/placement
package main

import (
	"fmt"
	"os"

	"failscope"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "placement:", err)
		os.Exit(1)
	}
}

func run() error {
	// Stage 1: field study — fit the models the simulator will use.
	study := failscope.PaperStudy()
	study.Collect.SkipClassification = true
	res, err := study.Run()
	if err != nil {
		return err
	}
	vmFit, ok := res.Report.InterFailureVM.Fits.Best()
	if !ok {
		return fmt.Errorf("no VM inter-failure fit")
	}
	repairFit, ok := res.Report.RepairVM.Fits.Best()
	if !ok {
		return fmt.Errorf("no VM repair fit")
	}
	fmt.Printf("fitted from field data: failures %v (days), repairs %v (hours)\n\n", vmFit.Dist, repairFit.Dist)

	// Stage 2: design experiment. VM gaps were fitted in days; the
	// simulator runs in hours, so rescale the fitted model.
	vmFailHours, err := failscope.ScaleDistribution(vmFit.Dist, 24)
	if err != nil {
		return err
	}
	cfg := failscope.FTConfig{
		Replicas:     3,
		Hosts:        8,
		VMFail:       vmFailHours,
		VMRepair:     repairFit.Dist,
		HostFail:     vmFailHours, // hosts fail on the same clock here
		HostRepair:   repairFit.Dist,
		HorizonHours: 5 * 365 * 24,
		Runs:         200,
		Seed:         7,
	}
	results, err := failscope.ComparePlacements(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("%-8s %14s %18s %10s %14s\n", "policy", "availability", "downtime h/5yr", "outages", "mean outage h")
	for _, p := range []failscope.FTPlacement{failscope.PlacementSpread, failscope.PlacementPack} {
		r := results[p]
		fmt.Printf("%-8s %13.5f%% %18.1f %10.1f %14.1f\n",
			p, 100*r.Availability, r.DowntimeHoursPerRun, r.Outages, r.MeanOutageHours)
	}
	spread, pack := results[failscope.PlacementSpread], results[failscope.PlacementPack]
	if pack.DowntimeHoursPerRun > 0 {
		fmt.Printf("\nanti-affinity cuts downtime by %.1f%% — the engineering value of\n",
			100*(1-spread.DowntimeHoursPerRun/pack.DowntimeHoursPerRun))
		fmt.Println("knowing that VM failures are spatially dependent (Table VI).")
	}
	return nil
}
