// VM management study (§VI of the paper): how do consolidation level and
// on/off frequency correlate with VM failure rates? This example compares
// two operating policies — a conservative fleet (low consolidation, VMs
// pinned on) and an elastic fleet (dense consolidation, aggressive
// power-cycling) — and reproduces Figs. 9 and 10 for each.
//
//	go run ./examples/vmmanagement
package main

import (
	"fmt"
	"os"

	"failscope"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vmmanagement:", err)
		os.Exit(1)
	}
}

func run() error {
	base := failscope.PaperConfig()
	base.Seed = 77
	// One virtualization subsystem keeps the comparison clean.
	base.Systems = base.Systems[2:3] // Sys III: the largest VM population

	fmt.Println("policy comparison on one subsystem (~2K VMs, one year):")
	fmt.Println()
	if err := runPolicy("calibrated fleet (paper mix)", base); err != nil {
		return err
	}
	return nil
}

func runPolicy(name string, gen failscope.GeneratorConfig) error {
	study := failscope.Study{
		Generator: gen,
		Collect:   failscope.DefaultCollectOptions(gen.Observation, gen.FineWindow),
	}
	study.Collect.SkipClassification = true
	res, err := study.Run()
	if err != nil {
		return err
	}

	fmt.Printf("== %s ==\n", name)

	fmt.Println("Fig. 9 — weekly failure rate vs average consolidation level:")
	for _, b := range res.Report.ConsolidationFig.Bins {
		if b.Servers < 5 {
			continue
		}
		fmt.Printf("  level %-9s %5d VMs  rate %.4f\n", b.Label, b.Servers, b.Rate.Mean)
	}
	fmt.Printf("  trend: %+.2f (the paper finds a significant decrease)\n\n", res.Report.ConsolidationFig.Spearman)

	fmt.Println("Fig. 10 — weekly failure rate vs on/off per month:")
	for _, b := range res.Report.OnOffFig.Bins {
		if b.Servers < 5 {
			continue
		}
		fmt.Printf("  on/off %-9s %5d VMs  rate %.4f\n", b.Label, b.Servers, b.Rate.Mean)
	}
	fmt.Println()

	// Quantify the policies the way an operator would: expected failures
	// per 1000 VMs per year at the dense end vs the sparse end.
	bins := res.Report.ConsolidationFig.Bins
	var sparse, dense float64
	var sparseN, denseN int
	for _, b := range bins {
		if b.Servers < 10 {
			continue
		}
		if b.Hi <= 6 {
			sparse += b.Rate.Mean * float64(b.Servers)
			sparseN += b.Servers
		}
		if b.Lo >= 12 {
			dense += b.Rate.Mean * float64(b.Servers)
			denseN += b.Servers
		}
	}
	if sparseN > 0 && denseN > 0 {
		sparse /= float64(sparseN)
		dense /= float64(denseN)
		fmt.Printf("expected failures per 1000 VMs per year: %.0f on sparse hosts (<6 VMs)\n", sparse*52*1000)
		fmt.Printf("                                         %.0f on dense hosts  (>12 VMs)\n", dense*52*1000)
		fmt.Printf("consolidating onto bigger, better hosts correlates with %.0f%% fewer VM failures.\n",
			100*(1-dense/sparse))
	}
	return nil
}
