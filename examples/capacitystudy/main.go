// Capacity study (§V of the paper) on a custom fleet: does buying bigger
// servers buy more failures? This example reconfigures the generator for a
// single dense virtualization cluster, then reproduces the Fig. 7 capacity
// panels and the Fig. 8 usage panels for it.
//
//	go run ./examples/capacitystudy
package main

import (
	"fmt"
	"os"

	"failscope"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "capacitystudy:", err)
		os.Exit(1)
	}
}

func run() error {
	// Start from the calibrated configuration and carve out a single
	// virtualization-heavy subsystem: few stand-alone PMs, many VMs.
	gen := failscope.PaperConfig()
	gen.Seed = 2024
	gen.Systems = gen.Systems[:1]
	gen.Systems[0].PMs = 400
	gen.Systems[0].VMs = 3600
	gen.Systems[0].AllTickets = 30000
	gen.Systems[0].CrashShare = 0.04
	gen.Systems[0].PMCrashShare = 0.35 // VM-dominated failure stream

	study := failscope.Study{
		Generator: gen,
		Collect:   failscope.DefaultCollectOptions(gen.Observation, gen.FineWindow),
	}
	study.Collect.SkipClassification = true

	res, err := study.Run()
	if err != nil {
		return err
	}

	fmt.Println("capacity panels (Fig. 7): weekly failure rate by configuration")
	fmt.Println()
	printPanel("vCPUs", res.Report.Capacity["vm_cpu"])
	printPanel("memory [GB]", res.Report.Capacity["vm_mem"])
	printPanel("disk capacity [GB]", res.Report.Capacity["vm_diskcap"])
	printPanel("number of disks", res.Report.Capacity["vm_diskcount"])

	fmt.Println("usage panels (Fig. 8): weekly failure rate by load")
	fmt.Println()
	printPanel("CPU utilization [%]", res.Report.Usage["vm_cpuutil"])
	printPanel("network demand [Kbps]", res.Report.Usage["vm_net"])

	// The paper's procurement take-away, recomputed for this fleet.
	dc := res.Report.Capacity["vm_diskcount"].IncrementFactor
	cap := res.Report.Capacity["vm_diskcap"].IncrementFactor
	fmt.Printf("take-away: disk COUNT moves the failure rate %.1fx across the fleet,\n", dc)
	fmt.Printf("while disk CAPACITY moves it only %.1fx — consolidate spindles, not bytes.\n", cap)
	return nil
}

func printPanel(title string, br failscope.BinnedRates) {
	fmt.Printf("  %s (increment factor %.1fx, trend %+.2f)\n", title, br.IncrementFactor, br.Spearman)
	for _, b := range br.Bins {
		if b.Servers == 0 {
			continue
		}
		fmt.Printf("    %-14s %5d servers  rate %.4f\n", b.Label, b.Servers, b.Rate.Mean)
	}
	fmt.Println()
}
