// Quickstart: generate a scaled-down datacenter field dataset, run the
// collection pipeline and print the headline findings of the study.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"failscope"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A Study bundles the generator configuration (the "datacenter") and
	// the collection options (the "ticket mining"). SmallStudy is ~1/8 of
	// the paper's populations so this example runs in well under a second.
	study := failscope.SmallStudy()
	study.Collect.SkipClassification = true // see examples for the k-means step

	res, err := study.Run()
	if err != nil {
		return err
	}

	fmt.Printf("machines: %d   tickets: %d   incidents: %d\n\n",
		len(res.Field.Data.Machines), len(res.Field.Data.Tickets), len(res.Field.Data.Incidents))

	// Finding 1: VMs have lower failure rates than PMs.
	var pm, vm float64
	for _, r := range res.Report.WeeklyRates {
		if r.System == 0 && r.Kind == failscope.PM {
			pm = r.Summary.Mean
		}
		if r.System == 0 && r.Kind == failscope.VM {
			vm = r.Summary.Mean
		}
	}
	fmt.Printf("weekly failure rate:  PM %.4f  vs  VM %.4f  (PM %.0f%% higher)\n",
		pm, vm, 100*(pm/vm-1))

	// Finding 2: inter-failure times are Gamma, not exponential — failures
	// are not memoryless.
	if best, ok := res.Report.InterFailureVM.Fits.Best(); ok {
		fmt.Printf("VM inter-failure times: best fit %v (mean %.1f days)\n",
			best.Dist, res.Report.InterFailureVM.Summary.Mean)
	}

	// Finding 3: repair is ~2x faster for VMs, Log-normal distributed.
	fmt.Printf("mean repair: PM %.1f h vs VM %.1f h (best fit: %s)\n",
		res.Report.RepairPM.Summary.Mean, res.Report.RepairVM.Summary.Mean,
		res.Report.RepairVM.Fits.BestName())

	// Finding 4: recurrent failures dwarf random ones.
	for _, r := range res.Report.RandomRecurrent {
		if r.System == 0 {
			fmt.Printf("%s: P(fail in a week) %.4f, but P(fail again within a week | just failed) %.3f — %.0fx\n",
				r.Kind, r.Random, r.Recurrent, r.Ratio)
		}
	}

	// The full paper-order report is one call away:
	fmt.Println("\nrun `go run ./cmd/failanalyze` for every table and figure")
	return nil
}
