// Failure prediction: the forward-looking extension of the study. The
// paper identifies the factors that correlate with server failures
// (capacity, usage, management, and above all failure history); this
// example uses them to predict — at mid-year — which machines will fail in
// the second half, and compares the learned model against the operator's
// "watch the machines that failed before" heuristic.
//
//	go run ./examples/failureprediction
package main

import (
	"fmt"
	"os"

	"failscope"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "failureprediction:", err)
		os.Exit(1)
	}
}

func run() error {
	study := failscope.PaperStudy()
	study.Collect.SkipClassification = true
	res, err := study.Run()
	if err != nil {
		return err
	}
	in := failscope.AnalysisInput{Data: res.Collection.Data, Attrs: res.Collection.Attrs}

	obs := res.Collection.Data.Observation
	split := obs.Start.Add(obs.Duration() / 2)
	ds, err := failscope.BuildPredictionDataset(in, split, 0.6)
	if err != nil {
		return err
	}
	fmt.Printf("task: features up to %s, predict failures in the following 6 months\n", split.Format("2006-01-02"))
	fmt.Printf("machines: %d train / %d test\n\n", len(ds.Train), len(ds.Test))

	model, err := failscope.TrainPredictor(ds.Train)
	if err != nil {
		return err
	}

	learned := failscope.EvaluatePredictor(model, ds.Test)
	history := failscope.EvaluatePredictor(failscope.HistoryBaseline(), ds.Test)

	fmt.Printf("%-22s %8s %14s %8s %10s\n", "scorer", "AUC", "precision@10%", "lift", "recall@10%")
	fmt.Printf("%-22s %8.3f %14.3f %7.1fx %10.3f\n", "logistic (all factors)",
		learned.AUC, learned.PrecisionAt10, learned.Lift10, learned.RecallAt10)
	fmt.Printf("%-22s %8.3f %14.3f %7.1fx %10.3f\n", "history only",
		history.AUC, history.PrecisionAt10, history.Lift10, history.RecallAt10)
	fmt.Printf("%-22s %8.3f\n\n", "random", 0.5)

	fmt.Println("most informative factors (by standardized weight):")
	for i, name := range model.TopFactors(failscope.PredictionFeatureNames()) {
		if i == 6 {
			break
		}
		fmt.Printf("  %d. %s\n", i+1, name)
	}
	fmt.Println("\nthe paper's §IV.D finding — failures repeat — is why 'past_failures'")
	fmt.Println("ranks at the top; the capacity/usage factors of §V add the rest.")
	return nil
}
