package failscope

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"

	"failscope/internal/mempool"
	"failscope/internal/model"
	"failscope/internal/monitordb"
)

// smallStudyFingerprint runs the scaled-down study end to end — simulate,
// mine, classify, join, analyze — at the given worker count and returns a
// byte-exact fingerprint of every stage's output: the encoded dataset, the
// encoded monitoring database, the classifier outcome (counts tabulated in
// sorted key order so the rendering itself cannot hide a difference) and
// the fully rendered analysis report.
func smallStudyFingerprint(t *testing.T, parallelism int) string {
	t.Helper()
	study := SmallStudy().WithParallelism(parallelism)
	// Trimmed clustering keeps the three runs of the determinism test fast
	// while still exercising seeding, Lloyd sweeps and both predict stages.
	study.Collect.Clusters = 32
	study.Collect.MaxIter = 20
	res, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteDataset(&buf, res.Field.Data); err != nil {
		t.Fatal(err)
	}
	if err := WriteMonitor(&buf, res.Field.Monitor); err != nil {
		t.Fatal(err)
	}

	// Windowed rollups over the monitoring store: this pins the columnar
	// grid's bucket index arithmetic and float accumulation order, which the
	// raw encode above cannot see.
	mon := res.Field.Monitor
	wStart, wEnd := mon.Window()
	rollWin := model.Window{Start: wStart, End: wEnd.Add(time.Nanosecond)}
	rollups := mon.RollupAll(monitordb.MetricCPUUtil, rollWin, 7*24*time.Hour, parallelism)
	ids := make([]string, 0, len(rollups))
	for id := range rollups {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(&buf, "rollup %s", id)
		for _, s := range rollups[model.MachineID(id)] {
			fmt.Fprintf(&buf, " %d:%v", s.Time.UnixNano(), s.Value)
		}
		buf.WriteByte('\n')
	}

	c := res.Collection.Classifier
	fmt.Fprintf(&buf, "classifier train=%d test=%d acc=%v crash=%v recall=%v prec=%v\n",
		c.TrainDocs, c.TestDocs, c.Accuracy, c.CrashClassAccuracy, c.CrashRecall, c.CrashPrecision)
	keys := make([][2]int, 0, len(c.Confusion.Counts))
	for k := range c.Confusion.Counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		fmt.Fprintf(&buf, "confusion %v=%d\n", k, c.Confusion.Counts[k])
	}

	buf.WriteString(res.RenderReport())
	return buf.String()
}

// TestParallelStudyByteIdentical is the end-to-end determinism regression
// test: the full pipeline must produce byte-identical output at worker
// counts 1 (the sequential reference), 2 and GOMAXPROCS.
func TestParallelStudyByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the small study three times")
	}
	ref := smallStudyFingerprint(t, 1)
	for _, p := range []int{2, runtime.GOMAXPROCS(0)} {
		got := smallStudyFingerprint(t, p)
		if got == ref {
			continue
		}
		i := 0
		for i < len(got) && i < len(ref) && got[i] == ref[i] {
			i++
		}
		lo := i - 100
		if lo < 0 {
			lo = 0
		}
		end := func(s string) int {
			if i+100 < len(s) {
				return i + 100
			}
			return len(s)
		}
		t.Fatalf("parallelism %d diverges from the sequential reference at byte %d:\nseq: …%q…\npar: …%q…",
			p, i, ref[lo:end(ref)], got[lo:end(got)])
	}
}

// TestPooledStudyByteIdentical proves buffer pooling is semantics-free: the
// full pipeline must produce byte-identical output with the mempool free
// lists disabled (every Get a miss, every Put a drop) at every worker
// count. Combined with TestParallelStudyByteIdentical (pooling on, the
// default), this pins the licensing invariant of the allocation-discipline
// work: pools may only ever change where memory comes from, never a byte
// of what the pipeline computes.
func TestPooledStudyByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the small study four times")
	}
	ref := smallStudyFingerprint(t, 1)
	obsRef := observedStudyFingerprint(t, 1, nil) // pools on, unobserved

	prev := mempool.SetEnabled(false)
	defer mempool.SetEnabled(prev)
	for _, p := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		if got := smallStudyFingerprint(t, p); got != ref {
			t.Fatalf("pooling disabled at parallelism %d diverges from the pooled sequential reference", p)
		}
	}

	// Pools off AND the telemetry layer attached (observer + history
	// sampler + exposition encode, via observedStudyFingerprint): still the
	// same bytes. This crosses the two orthogonal invariants — allocation
	// discipline and live telemetry are both semantics-free, together.
	o := NewObserver("pooled-telemetry-study")
	if got := observedStudyFingerprint(t, 2, o); got != obsRef {
		t.Fatal("pooling disabled with telemetry attached diverges from the pooled unobserved reference")
	}
}
