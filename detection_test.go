package failscope

import (
	"encoding/json"
	"runtime"
	"testing"
)

// detectionReplay generates the small study's field data at the given
// worker count, replays its event stream (closed by an advance to the
// observation end) through a streaming engine, and returns the engine
// snapshot JSON plus, when withDetector is set, the detector and its
// snapshot JSON.
func detectionReplay(t *testing.T, parallelism int, withDetector bool) (string, string, *Detector) {
	t.Helper()
	study := SmallStudy().WithParallelism(parallelism)
	field, err := Generate(study.Generator)
	if err != nil {
		t.Fatal(err)
	}
	cfg := StreamConfig{Observation: study.Generator.Observation}
	var det *Detector
	if withDetector {
		det = NewDetector(DetectorConfig{})
		cfg.Detector = det
	}
	eng, err := NewStreamEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	events := StreamEventsFromField(field)
	end := study.Generator.Observation.End
	events = append(events, StreamEvent{Type: "advance", Time: &end})
	if err := eng.Apply(events); err != nil {
		t.Fatal(err)
	}
	snapJSON, err := json.MarshalIndent(eng.Snapshot(), "", " ")
	if err != nil {
		t.Fatal(err)
	}
	detJSON := ""
	if det != nil {
		dj, err := json.MarshalIndent(det.Snapshot(), "", " ")
		if err != nil {
			t.Fatal(err)
		}
		detJSON = string(dj)
	}
	return string(snapJSON), detJSON, det
}

// TestDetectionByteIdentical enforces the detection layer's cardinal
// rule: attaching a Detector to the streaming engine must not change a
// byte of the engine snapshot, at any worker count — and the detector's
// own snapshot must be byte-identical across worker counts (the detector
// is deterministic and RNG-free).
func TestDetectionByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the small study several times")
	}
	refSnap, _, _ := detectionReplay(t, 1, false)
	refDet := ""
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		snap, detSnap, _ := detectionReplay(t, workers, true)
		if snap != refSnap {
			t.Errorf("engine snapshot changed with detection enabled at %d workers", workers)
		}
		if refDet == "" {
			refDet = detSnap
		} else if detSnap != refDet {
			t.Errorf("detector snapshot differs at %d workers", workers)
		}
	}
	if refDet == "" {
		t.Fatal("no detector snapshot captured")
	}
}

// TestDetectionScoreboardSmall pins the calibrated operating point on the
// canonical small study: the recurrence rule finds the heavy-tail
// machines with precision above the gate floor and positive lead time,
// and the CUSUM stays silent on the stationary usage series.
func TestDetectionScoreboardSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the small study")
	}
	_, _, det := detectionReplay(t, 0, true)
	snap := det.Snapshot()
	if snap.Raised == 0 {
		t.Fatal("detector raised no alerts on the small study")
	}
	if snap.RaisedAnomaly != 0 {
		t.Errorf("CUSUM raised %d anomaly alerts on stationary canonical series", snap.RaisedAnomaly)
	}
	if resolved := snap.Confirmed + snap.Expired; resolved > 0 {
		if p := float64(snap.Confirmed) / float64(resolved); p < 0.7 {
			t.Errorf("precision %.3f below the 0.7 gate floor", p)
		}
	} else {
		t.Error("no alerts resolved against ground truth")
	}
	if snap.Confirmed > 0 && snap.LeadDaysP50 <= 0 {
		t.Errorf("median lead time %.3f days not positive", snap.LeadDaysP50)
	}
	sb := ScoreDetection(snap)
	if err := sb.Err(); err != nil {
		t.Errorf("detection scoreboard gate failed on the canonical small study: %v", err)
	}
	if sb.Failed != 0 {
		t.Errorf("%d detection bands failed", sb.Failed)
	}
	for _, name := range []string{"detect_precision", "detect_median_lead_days", "detect_anomaly_alerts"} {
		if sb.Find(name) == nil {
			t.Errorf("band %q missing from the detection scoreboard", name)
		}
	}
}
