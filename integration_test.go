package failscope_test

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"

	"failscope"
	"failscope/internal/model"
)

// paperResult runs the full-scale study once and caches it for all
// integration tests (generation + collection ≈ 2 s).
var (
	paperOnce   sync.Once
	paperRes    *failscope.Result
	paperRunErr error
)

func paperResult(t *testing.T) *failscope.Result {
	t.Helper()
	paperOnce.Do(func() {
		study := failscope.PaperStudy()
		study.Collect.SkipClassification = true
		paperRes, paperRunErr = study.Run()
	})
	if paperRunErr != nil {
		t.Fatal(paperRunErr)
	}
	return paperRes
}

func TestStudyRunsEndToEnd(t *testing.T) {
	res := paperResult(t)
	if res.Field == nil || res.Collection == nil || res.Report == nil {
		t.Fatal("incomplete result")
	}
	if err := res.Field.Data.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestTableII asserts the dataset statistics against the published column
// values.
func TestTableII(t *testing.T) {
	res := paperResult(t)
	rows := res.Report.DatasetStats

	wantPMs := []int{463, 2025, 1114, 717, 810}
	wantVMs := []int{1320, 52, 1971, 313, 636}
	wantTickets := []int{7079, 27577, 50157, 8382, 25940}
	wantCrashShare := []float64{0.069, 0.0085, 0.02, 0.013, 0.033}
	for i := 0; i < 5; i++ {
		r := rows[i]
		if r.PMs != wantPMs[i] || r.VMs != wantVMs[i] {
			t.Errorf("%v populations %d/%d, want %d/%d", r.System, r.PMs, r.VMs, wantPMs[i], wantVMs[i])
		}
		if math.Abs(float64(r.AllTickets-wantTickets[i])) > 0.05*float64(wantTickets[i]) {
			t.Errorf("%v tickets %d, want ≈%d", r.System, r.AllTickets, wantTickets[i])
		}
		if math.Abs(r.CrashShare-wantCrashShare[i]) > 0.35*wantCrashShare[i] {
			t.Errorf("%v crash share %.4f, want ≈%.4f", r.System, r.CrashShare, wantCrashShare[i])
		}
	}
	// Sys II: all crash tickets on PMs (paper: 100% / 0%).
	if rows[1].VMShare != 0 {
		t.Errorf("Sys II VM crash share %.3f, want 0", rows[1].VMShare)
	}
	total := rows[5]
	if total.CrashTickets < 2000 || total.CrashTickets > 3500 {
		t.Errorf("total crash tickets %d, want ≈2759", total.CrashTickets)
	}
}

// TestFig1ClassMix asserts the headline class-mix findings of §III.A.
func TestFig1ClassMix(t *testing.T) {
	res := paperResult(t)
	shares := make(map[model.System]map[model.FailureClass]float64)
	for _, r := range res.Report.ClassDistribution {
		if shares[r.System] == nil {
			shares[r.System] = make(map[model.FailureClass]float64)
		}
		shares[r.System][r.Class] = r.Share
	}
	all := shares[0]
	// "other" ≈ 53% of all crash tickets.
	if all[model.ClassOther] < 0.40 || all[model.ClassOther] > 0.65 {
		t.Errorf("overall other share %.2f, want ≈0.53", all[model.ClassOther])
	}
	// Software + reboot dominate the classified failures.
	swReboot := all[model.ClassSoftware] + all[model.ClassReboot]
	hwNet := all[model.ClassHardware] + all[model.ClassNetwork]
	if swReboot <= hwNet {
		t.Errorf("software+reboot (%.2f) should dominate hardware+network (%.2f)", swReboot, hwNet)
	}
	// Sys III experiences no power outages; Sys V is power-heavy (≈29%).
	if shares[model.SysIII][model.ClassPower] != 0 {
		t.Errorf("Sys III power share %.3f, want 0", shares[model.SysIII][model.ClassPower])
	}
	if shares[model.SysV][model.ClassPower] < 0.15 {
		t.Errorf("Sys V power share %.3f, want ≈0.29", shares[model.SysV][model.ClassPower])
	}
}

// TestFig2PMvsVM asserts the headline finding: PMs fail more than VMs.
func TestFig2PMvsVM(t *testing.T) {
	res := paperResult(t)
	var pmAll, vmAll float64
	for _, r := range res.Report.WeeklyRates {
		if r.System != 0 {
			continue
		}
		switch r.Kind {
		case model.PM:
			pmAll = r.Summary.Mean
		case model.VM:
			vmAll = r.Summary.Mean
		}
	}
	if pmAll <= vmAll {
		t.Fatalf("PM weekly rate %.5f not above VM %.5f", pmAll, vmAll)
	}
	if pmAll < 1.1*vmAll {
		t.Errorf("PM/VM gap only %.2fx; the paper reports roughly 40%%", pmAll/vmAll)
	}
	if pmAll < 0.003 || pmAll > 0.010 {
		t.Errorf("PM weekly rate %.5f outside the plausible band around 0.006", pmAll)
	}
}

// TestFig3InterFailure asserts the Gamma best fit and that the exponential
// (memoryless) null model loses decisively.
func TestFig3InterFailure(t *testing.T) {
	res := paperResult(t)
	cases := []struct {
		name string
		r    failscope.InterFailureResult
	}{
		{"PM", res.Report.InterFailurePM},
		{"VM", res.Report.InterFailureVM},
	}
	for _, c := range cases {
		best, ok := c.r.Fits.Best()
		if !ok {
			t.Fatalf("%s: no fit", c.name)
		}
		if got := best.Dist.Name(); got != "gamma" {
			t.Errorf("%s: best fit %q, want gamma", c.name, got)
		}
		var gammaLL, expLL float64
		for _, fr := range c.r.Fits.Results {
			switch fr.Dist.Name() {
			case "gamma":
				gammaLL = fr.LogLikelihood
			case "exponential":
				expLL = fr.LogLikelihood
			}
		}
		if gammaLL-expLL < 10 {
			t.Errorf("%s: gamma beats exponential by only %.1f logL — failures look memoryless", c.name, gammaLL-expLL)
		}
		if c.r.Summary.Mean < 20 || c.r.Summary.Mean > 90 {
			t.Errorf("%s: mean inter-failure time %.1f d outside the plausible band (paper: ≈37 d for VMs)", c.name, c.r.Summary.Mean)
		}
	}
	// Roughly 60% of failing VMs fail only once (§IV.B).
	vm := res.Report.InterFailureVM
	single := float64(vm.SingleFailureServers) / float64(vm.FailingServers)
	if single < 0.45 || single > 0.85 {
		t.Errorf("single-failure VM share %.2f, want ≈0.60", single)
	}
}

// TestTableIII asserts the class ordering of inter-failure times.
func TestTableIII(t *testing.T) {
	res := paperResult(t)
	byClass := make(map[model.FailureClass]failscope.ClassGapStats)
	for _, r := range res.Report.InterFailureClass {
		byClass[r.Class] = r
	}
	// Operator view: software gaps are far shorter than hardware and
	// network gaps (§IV.B: "by a factor of 2-3 times").
	sw := byClass[model.ClassSoftware].OperatorMean
	hw := byClass[model.ClassHardware].OperatorMean
	net := byClass[model.ClassNetwork].OperatorMean
	if !(sw < hw && sw < net) {
		t.Errorf("operator-view SW gaps (%.1f d) should be the shortest of {HW %.1f, Net %.1f}", sw, hw, net)
	}
	if hw/sw < 2 {
		t.Errorf("HW/SW operator gap ratio %.1f, paper reports 2-3x", hw/sw)
	}
	// "Other" has the shortest operator-view gaps (largest volume).
	other := byClass[model.ClassOther].OperatorMean
	if other > sw {
		t.Errorf("other operator mean %.2f should be below software %.2f", other, sw)
	}
	// Server view: software is less reliable than hardware per server too.
	if byClass[model.ClassSoftware].ServerMean >= byClass[model.ClassHardware].ServerMean {
		t.Errorf("server-view SW mean %.1f should be below HW %.1f",
			byClass[model.ClassSoftware].ServerMean, byClass[model.ClassHardware].ServerMean)
	}
}

// TestFig4Repair asserts the Lognormal fit and the PM > VM repair gap.
func TestFig4Repair(t *testing.T) {
	res := paperResult(t)
	pm, vm := res.Report.RepairPM, res.Report.RepairVM
	if pm.Summary.Mean <= vm.Summary.Mean {
		t.Fatalf("PM repair mean %.1f h not above VM %.1f h", pm.Summary.Mean, vm.Summary.Mean)
	}
	if pm.Summary.Mean < 1.2*vm.Summary.Mean {
		t.Errorf("PM/VM repair ratio %.2f; paper reports ≈2x (38.5 vs 19.6 h)", pm.Summary.Mean/vm.Summary.Mean)
	}
	for _, c := range []struct {
		name string
		r    failscope.RepairResult
	}{{"PM", pm}, {"VM", vm}} {
		bestTwo := map[string]bool{}
		for i, fr := range c.r.Fits.Results {
			if i < 2 {
				bestTwo[fr.Dist.Name()] = true
			}
		}
		if !bestTwo["lognormal"] {
			t.Errorf("%s: lognormal not among the top-2 repair fits (%v)", c.name, bestTwo)
		}
	}
	// A large share of VM failures are unexpected reboots (§IV.C: ≈35%).
	if vm.RebootShare < 0.15 {
		t.Errorf("VM reboot share %.2f, want a substantial share (paper ≈0.35)", vm.RebootShare)
	}
	if vm.RebootShare <= pm.RebootShare {
		t.Errorf("VM reboot share %.2f should exceed PM %.2f", vm.RebootShare, pm.RebootShare)
	}
}

// TestTableIV asserts the repair-time ordering by class.
func TestTableIV(t *testing.T) {
	res := paperResult(t)
	byClass := make(map[model.FailureClass]failscope.ClassRepairStats)
	for _, r := range res.Report.RepairClass {
		byClass[r.Class] = r
	}
	hw, net := byClass[model.ClassHardware], byClass[model.ClassNetwork]
	power, reboot := byClass[model.ClassPower], byClass[model.ClassReboot]
	sw := byClass[model.ClassSoftware]

	// Power is the fastest repair (median 0.83 h), reboots second.
	if power.Median > reboot.Median {
		t.Errorf("power median %.2f h above reboot %.2f h", power.Median, reboot.Median)
	}
	if reboot.Median > sw.Median {
		t.Errorf("reboot median %.2f h above software %.2f h", reboot.Median, sw.Median)
	}
	// Hardware and network take longest (mean); each class's mean far
	// above its median (heavy tails), except software (low variation).
	if hw.Mean < power.Mean || net.Mean < power.Mean {
		t.Errorf("infrastructure repairs (HW %.1f, Net %.1f) should exceed power %.1f", hw.Mean, net.Mean, power.Mean)
	}
	if hw.Mean/hw.Median < 3 {
		t.Errorf("HW mean/median %.1f, want heavy skew", hw.Mean/hw.Median)
	}
	if sw.CoefficientOfVariation >= hw.CoefficientOfVariation {
		t.Errorf("software CoV %.2f should be below hardware %.2f", sw.CoefficientOfVariation, hw.CoefficientOfVariation)
	}
}

// TestFig5TableV asserts the recurrence findings.
func TestFig5TableV(t *testing.T) {
	res := paperResult(t)
	pm, vm := res.Report.RecurrencePM, res.Report.RecurrenceVM

	for _, c := range []struct {
		name string
		r    failscope.RecurrenceResult
	}{{"PM", pm}, {"VM", vm}} {
		if !(c.r.WithinDay < c.r.WithinWeek && c.r.WithinWeek < c.r.WithinMonth) {
			t.Errorf("%s: recurrence not increasing with window: %+v", c.name, c.r)
		}
		// Sub-linear growth: the weekly probability is far below 7× daily.
		if c.r.WithinWeek > 5*c.r.WithinDay {
			t.Errorf("%s: weekly recurrence %.3f vs daily %.3f — growth should be sublinear", c.name, c.r.WithinWeek, c.r.WithinDay)
		}
	}
	if vm.WithinWeek >= pm.WithinWeek {
		t.Errorf("VM weekly recurrence %.3f should be below PM %.3f", vm.WithinWeek, pm.WithinWeek)
	}

	// Table V: recurrent ≫ random, by tens of times.
	for _, r := range res.Report.RandomRecurrent {
		if r.System != 0 {
			continue
		}
		if r.Ratio < 10 {
			t.Errorf("%v recurrent/random ratio %.1f, paper reports 35-42x", r.Kind, r.Ratio)
		}
		if r.Ratio > 120 {
			t.Errorf("%v recurrent/random ratio %.1f implausibly high", r.Kind, r.Ratio)
		}
	}
}

// TestTablesVIVII asserts the spatial-dependency findings.
func TestTablesVIVII(t *testing.T) {
	res := paperResult(t)
	sp := res.Report.Spatial
	if sp.ShareOne < 0.65 || sp.ShareOne > 0.90 {
		t.Errorf("single-server incident share %.2f, paper reports 0.78", sp.ShareOne)
	}
	if sp.DependentVMShare <= sp.DependentPMShare {
		t.Errorf("VM dependent share %.2f should exceed PM %.2f (§IV.E)",
			sp.DependentVMShare, sp.DependentPMShare)
	}
	if sp.MaxServers < 15 || sp.MaxServers > 40 {
		t.Errorf("max incident size %d, paper reports 34", sp.MaxServers)
	}

	byClass := make(map[model.FailureClass]failscope.ClassSpatialStats)
	for _, r := range res.Report.SpatialClass {
		byClass[r.Class] = r
	}
	power := byClass[model.ClassPower]
	for _, class := range []model.FailureClass{model.ClassHardware, model.ClassNetwork, model.ClassReboot, model.ClassSoftware} {
		if byClass[class].Mean >= power.Mean {
			t.Errorf("%v mean fan-out %.2f should be below power %.2f", class, byClass[class].Mean, power.Mean)
		}
	}
	if power.Mean < 1.8 || power.Mean > 4 {
		t.Errorf("power mean fan-out %.2f, paper reports 2.7", power.Mean)
	}
	if byClass[model.ClassReboot].Mean > 1.6 {
		t.Errorf("reboot mean fan-out %.2f, paper reports 1.1", byClass[model.ClassReboot].Mean)
	}
}

// TestFig6Age asserts the age findings: no bathtub, near-uniform CDF.
func TestFig6Age(t *testing.T) {
	res := paperResult(t)
	age := res.Report.Age
	if len(age.AgesDays) < 100 {
		t.Fatalf("only %d aged failures", len(age.AgesDays))
	}
	// ~75% of VMs pass the age filter.
	frac := float64(age.EligibleVMs) / float64(age.TotalVMs)
	if frac < 0.55 || frac > 0.90 {
		t.Errorf("age-eligible VM fraction %.2f, paper reports ≈0.75", frac)
	}
	// CDF close to the diagonal.
	if age.KSUniform > 0.25 {
		t.Errorf("KS distance to uniform %.3f — CDF should be near-diagonal", age.KSUniform)
	}
	// Not a bathtub: edges must not dominate the middle.
	if age.BathtubScore > 1.5 {
		t.Errorf("bathtub score %.2f — VM age should NOT follow a bathtub", age.BathtubScore)
	}
}

// TestFig7Capacity asserts the capacity-study shapes.
func TestFig7Capacity(t *testing.T) {
	res := paperResult(t)
	cap := res.Report.Capacity

	// (a) Failure rates increase with CPU counts for both kinds.
	if tr := cap["pm_cpu"].Spearman; tr < 0.3 {
		t.Errorf("pm_cpu trend %.2f, want positive", tr)
	}
	if tr := cap["vm_cpu"].Spearman; tr < 0.3 {
		t.Errorf("vm_cpu trend %.2f, want positive", tr)
	}
	if f := cap["pm_cpu"].IncrementFactor; f < 2 {
		t.Errorf("pm_cpu increment factor %.1f, paper reports 5.5x", f)
	}

	// (b) Memory bathtub: the smallest-memory PM bin fails more than the
	// mid-size bins, and the largest bin rises again.
	pmMem := cap["pm_mem"].Bins
	first, last := pmMem[0], pmMem[len(pmMem)-1]
	var midMin float64 = math.Inf(1)
	for _, b := range pmMem[1 : len(pmMem)-1] {
		if b.Servers >= 50 && b.Rate.Mean < midMin {
			midMin = b.Rate.Mean
		}
	}
	if first.Rate.Mean < 1.3*midMin {
		t.Errorf("pm_mem low end %.4f not above mid minimum %.4f", first.Rate.Mean, midMin)
	}
	if last.Rate.Mean < 1.3*midMin {
		t.Errorf("pm_mem high end %.4f not above mid minimum %.4f", last.Rate.Mean, midMin)
	}

	// (c) Disk capacity: small disks fail least; ≥32 GB roughly flat, so
	// capacity has the weakest impact among VM attributes.
	dc := cap["vm_diskcap"].Bins
	if dc[0].Rate.Mean >= dc[len(dc)-1].Rate.Mean {
		t.Errorf("vm_diskcap smallest bin %.4f not below largest %.4f", dc[0].Rate.Mean, dc[len(dc)-1].Rate.Mean)
	}

	// (d) Disk count: strong increase; the strongest VM capacity factor.
	if tr := cap["vm_diskcount"].Spearman; tr < 0.5 {
		t.Errorf("vm_diskcount trend %.2f, want strongly positive", tr)
	}
	if f := cap["vm_diskcount"].IncrementFactor; f < 2.5 {
		t.Errorf("vm_diskcount increment factor %.1f, paper reports ~10x", f)
	}
	if cap["vm_diskcount"].IncrementFactor < cap["vm_diskcap"].IncrementFactor {
		t.Errorf("disk count (%.1fx) should have a stronger impact than disk capacity (%.1fx)",
			cap["vm_diskcount"].IncrementFactor, cap["vm_diskcap"].IncrementFactor)
	}
}

// TestFig8Usage asserts the usage-study shapes.
func TestFig8Usage(t *testing.T) {
	res := paperResult(t)
	usage := res.Report.Usage

	// (a) VM rates increase with CPU utilization over the populated 0-30%
	// range; PM rates decrease there.
	vmCPU := usage["vm_cpuutil"].Bins
	if !(vmCPU[0].Rate.Mean < vmCPU[1].Rate.Mean && vmCPU[1].Rate.Mean < vmCPU[2].Rate.Mean) {
		t.Errorf("vm_cpuutil not increasing over 0-30%%: %.4f %.4f %.4f",
			vmCPU[0].Rate.Mean, vmCPU[1].Rate.Mean, vmCPU[2].Rate.Mean)
	}
	pmCPU := usage["pm_cpuutil"].Bins
	if !(pmCPU[0].Rate.Mean > pmCPU[1].Rate.Mean && pmCPU[1].Rate.Mean > pmCPU[2].Rate.Mean) {
		t.Errorf("pm_cpuutil not decreasing over 0-30%%: %.4f %.4f %.4f",
			pmCPU[0].Rate.Mean, pmCPU[1].Rate.Mean, pmCPU[2].Rate.Mean)
	}

	// (b) Memory: inverted bathtub — a populated middle bin beats both ends.
	pmMem := usage["pm_memutil"].Bins
	peak := 0.0
	for _, b := range pmMem[2:7] {
		if b.Rate.Mean > peak {
			peak = b.Rate.Mean
		}
	}
	lastBin := pmMem[len(pmMem)-1]
	if peak <= pmMem[0].Rate.Mean || peak <= lastBin.Rate.Mean {
		t.Errorf("pm_memutil not an inverted bathtub: ends %.4f/%.4f peak %.4f",
			pmMem[0].Rate.Mean, lastBin.Rate.Mean, peak)
	}

	// (c) Disk utilization: mild positive trend.
	if tr := usage["vm_diskutil"].Spearman; tr < 0 {
		t.Errorf("vm_diskutil trend %.2f, want positive", tr)
	}

	// (d) Network: rises to the 16-64 Kbps knee from the lowest band.
	vmNet := usage["vm_net"].Bins
	if vmNet[2].Rate.Mean <= vmNet[0].Rate.Mean {
		t.Errorf("vm_net knee %.4f not above low band %.4f", vmNet[2].Rate.Mean, vmNet[0].Rate.Mean)
	}
	// And the top band falls back below the knee region.
	top := vmNet[len(vmNet)-1]
	if top.Rate.Mean >= vmNet[3].Rate.Mean+vmNet[2].Rate.Mean {
		t.Errorf("vm_net top band %.4f did not fall off", top.Rate.Mean)
	}
}

// TestFig9Consolidation asserts the decreasing consolidation trend.
func TestFig9Consolidation(t *testing.T) {
	res := paperResult(t)
	bins := res.Report.ConsolidationFig.Bins
	// Average of low-consolidation bins (levels < 6) vs high (≥ 12).
	var low, high float64
	var lowN, highN int
	for _, b := range bins {
		if b.Servers < 10 || b.Rate.N == 0 {
			continue
		}
		if b.Hi <= 6 {
			low += b.Rate.Mean
			lowN++
		}
		if b.Lo >= 12 {
			high += b.Rate.Mean
			highN++
		}
	}
	if lowN == 0 || highN == 0 {
		t.Fatal("consolidation bins too thin to compare")
	}
	low /= float64(lowN)
	high /= float64(highN)
	if low <= high {
		t.Fatalf("failure rate does not decrease with consolidation: low %.4f vs high %.4f", low, high)
	}
	if low < 1.3*high {
		t.Errorf("consolidation effect only %.2fx; the paper shows a significant decrease", low/high)
	}
}

// TestFig10OnOff asserts the rise up to ~2 on/off per month and no strong
// trend beyond.
func TestFig10OnOff(t *testing.T) {
	res := paperResult(t)
	bins := res.Report.OnOffFig.Bins
	// Bins: [0,0.5) [0.5,1.5) [1.5,3) [3,6) [6,12) [12,24). The screened
	// frequency is noisy (Poisson counts over two months), so compare
	// server-weighted averages of the rarely-cycled and cycled regions.
	weighted := func(sel []failscope.AttrBin) float64 {
		var sum, n float64
		for _, b := range sel {
			sum += b.Rate.Mean * float64(b.Servers)
			n += float64(b.Servers)
		}
		if n == 0 {
			return 0
		}
		return sum / n
	}
	rare := weighted(bins[:2])
	cycled := weighted(bins[2:4])
	if cycled <= rare {
		t.Errorf("cycled VMs (%.4f) not failing more than rarely-cycled ones (%.4f)", cycled, rare)
	}
	// Beyond the knee the rates vary but do not keep climbing strongly:
	// the high-frequency region stays within 2.5x of the knee region.
	high := weighted(bins[4:])
	if high > 2.5*cycled {
		t.Errorf("failure rate keeps climbing with on/off frequency (%.4f vs knee %.4f)", high, cycled)
	}
	// Most VMs are rarely power-cycled (§VI.B: 60% at most once a month).
	total, low := 0, 0
	for i, b := range bins {
		total += b.Servers
		if i < 2 {
			low += b.Servers
		}
	}
	if frac := float64(low) / float64(total); frac < 0.45 {
		t.Errorf("≤1 on/off per month population share %.2f, paper reports ≈0.60", frac)
	}
}

// TestDatasetRoundTripThroughFacade exercises WriteDataset/ReadDataset.
func TestDatasetRoundTripThroughFacade(t *testing.T) {
	study := failscope.SmallStudy()
	field, err := failscope.Generate(study.Generator)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := failscope.WriteDataset(&buf, field.Data); err != nil {
		t.Fatal(err)
	}
	got, err := failscope.ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Machines) != len(field.Data.Machines) || len(got.Tickets) != len(field.Data.Tickets) {
		t.Fatal("round trip lost records")
	}
}

// TestRenderReportMentionsEverything spot-checks the full text report.
func TestRenderReportMentionsEverything(t *testing.T) {
	res := paperResult(t)
	out := res.RenderReport()
	for _, want := range []string{
		"Table II", "Fig. 1", "Fig. 2", "Fig. 3", "Table III", "Fig. 4",
		"Table IV", "Fig. 5", "Table V", "Table VI", "Table VII", "Fig. 6",
		"Fig. 7", "Fig. 8", "Fig. 9", "Fig. 10", "gamma", "lognormal",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestClassification runs the §III.A k-means pipeline at full scale.
func TestClassification(t *testing.T) {
	if testing.Short() {
		t.Skip("classification is expensive")
	}
	study := failscope.PaperStudy()
	field, err := failscope.Generate(study.Generator)
	if err != nil {
		t.Fatal(err)
	}
	col, err := failscope.Collect(field, study.Collect)
	if err != nil {
		t.Fatal(err)
	}
	c := col.Classifier
	if c.CrashClassAccuracy < 0.75 || c.CrashClassAccuracy > 1.0 {
		t.Errorf("crash-class accuracy %.3f, paper reports 0.87", c.CrashClassAccuracy)
	}
	if c.CrashRecall < 0.9 {
		t.Errorf("crash recall %.3f", c.CrashRecall)
	}
}

// TestSeedRobustness re-runs the core shape findings on a different seed
// to guard against single-seed overfitting of the calibration.
func TestSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("extra full-scale run")
	}
	study := failscope.PaperStudy()
	study.Generator.Seed = 1234
	study.Collect.SkipClassification = true
	res, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	var pmAll, vmAll float64
	for _, r := range res.Report.WeeklyRates {
		if r.System == 0 && r.Kind == model.PM {
			pmAll = r.Summary.Mean
		}
		if r.System == 0 && r.Kind == model.VM {
			vmAll = r.Summary.Mean
		}
	}
	if pmAll <= vmAll {
		t.Errorf("seed 1234: PM rate %.5f not above VM %.5f", pmAll, vmAll)
	}
	if res.Report.Spatial.DependentVMShare <= res.Report.Spatial.DependentPMShare {
		t.Errorf("seed 1234: VM spatial dependency not above PM")
	}
	for _, r := range res.Report.RandomRecurrent {
		if r.System == 0 && r.Ratio < 10 {
			t.Errorf("seed 1234: %v ratio %.1f", r.Kind, r.Ratio)
		}
	}
}
