package failscope

import (
	"encoding/json"
	"testing"

	"failscope/internal/durable"
)

// durableStudyConfig builds the full-featured stream configuration for the
// small study — monitoring grid and online detector attached — so the
// durability cycle exercises every state component the checkpoint spills.
func durableStudyConfig(study Study) (StreamConfig, *Detector) {
	det := NewDetector(DetectorConfig{})
	return StreamConfig{
		Observation:      study.Generator.Observation,
		FineWindow:       study.Generator.FineWindow,
		MonitorEpoch:     study.Generator.MonitorEpoch,
		MonitorRetention: study.Generator.MonitorRetention,
		Detector:         det,
	}, det
}

func snapshotJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestDurableRecoveryPreservesStudy is the headline durability invariant
// at study scale: replay the small study into a durable engine, crash it
// mid-stream (checkpoint taken partway, store abandoned without a clean
// shutdown), recover into a fresh engine and finish the replay — the
// final engine snapshot and detector snapshot must be byte-identical to
// an uninterrupted run, and the recovered run must still pass the full
// fidelity scoreboard and the detection gate.
func TestDurableRecoveryPreservesStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the small study three times")
	}
	study := SmallStudy()
	field, err := Generate(study.Generator)
	if err != nil {
		t.Fatal(err)
	}
	events := StreamEventsFromField(field)
	end := study.Generator.Observation.End
	events = append(events, StreamEvent{Type: "advance", Time: &end})

	// Uninterrupted reference run.
	refCfg, refDet := durableStudyConfig(study)
	ref, err := NewStreamEngine(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Apply(events); err != nil {
		t.Fatal(err)
	}
	refSnap := snapshotJSON(t, ref.Snapshot())
	refDetSnap := snapshotJSON(t, refDet.Snapshot())

	// Durable run, crashed mid-stream: a checkpoint lands a third of the
	// way in, the WAL carries the batches after it, and the store is
	// abandoned mid-flight — no final checkpoint, no Close.
	dir := t.TempDir()
	crashAt := len(events) / 2
	{
		cfg, _ := durableStudyConfig(study)
		eng, err := NewStreamEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := durable.Open(dir, durable.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Recover(eng); err != nil {
			t.Fatal(err)
		}
		eng.SetJournal(st)
		ckptAt := len(events) / 3
		if err := eng.Apply(events[:ckptAt]); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Checkpoint(eng); err != nil {
			t.Fatal(err)
		}
		if err := eng.Apply(events[ckptAt:crashAt]); err != nil {
			t.Fatal(err)
		}
	}

	// Recover into a fresh engine and finish the stream.
	cfg, det := durableStudyConfig(study)
	eng, err := NewStreamEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	info, err := st.Recover(eng)
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != int64(crashAt) {
		t.Fatalf("recovered to seq %d, want %d", info.Seq, crashAt)
	}
	if info.CheckpointSeq == 0 || info.ReplayedEvents == 0 {
		t.Fatalf("recovery used neither checkpoint nor WAL: %+v", info)
	}
	eng.SetJournal(st)
	if err := eng.Apply(events[crashAt:]); err != nil {
		t.Fatal(err)
	}

	if got := snapshotJSON(t, eng.Snapshot()); got != refSnap {
		t.Error("engine snapshot after crash-recovery differs from the uninterrupted run")
	}
	if got := snapshotJSON(t, det.Snapshot()); got != refDetSnap {
		t.Error("detector snapshot after crash-recovery differs from the uninterrupted run")
	}

	// The recovered study still passes every fidelity band and the
	// detection gate — durability is invisible to the observed science.
	sb := eng.Snapshot().Fidelity()
	if err := sb.Err(); err != nil {
		t.Errorf("fidelity gate failed after recovery: %v", err)
	}
	if sb.Failed != 0 {
		t.Errorf("%d fidelity bands failed after recovery", sb.Failed)
	}
	dsb := ScoreDetection(det.Snapshot())
	if err := dsb.Err(); err != nil {
		t.Errorf("detection gate failed after recovery: %v", err)
	}
}
