package failscope

import (
	"strings"
	"testing"
)

// TestFidelitySmallStudyAllBandsPass is the acceptance check behind
// `failanalyze -fidelity-gate`: on the canonical small-study seed with
// classification enabled, every paper-expected band must land inside its
// pass range — no warns tolerated here, so a drifting statistic shows up
// before it reaches fail.
func TestFidelitySmallStudyAllBandsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full small study with classification")
	}
	study := SmallStudy()
	study.Collect.SkipClassification = false
	o := NewObserver("fidelity-small")
	study = study.WithObserver(o)
	res, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	o.Finish()

	sb := ScoreFidelity(res, o)
	if sb == nil || len(sb.Bands) == 0 {
		t.Fatal("empty fidelity scoreboard")
	}
	for _, b := range sb.Bands {
		if b.Verdict != FidelityPass {
			t.Errorf("band %s: verdict %s (value %g, pass %s, note %q)",
				b.Name, b.Verdict, b.Value, b.Pass, b.Note)
		}
	}
	if sb.Skipped != 0 {
		t.Errorf("%d bands skipped on a fully-classified run", sb.Skipped)
	}
	if err := sb.Err(); err != nil {
		t.Errorf("gate error on the canonical study: %v", err)
	}

	// Quality section sanity: the classifier ran, the join covered the
	// ticket population, and the sanitization drops reconcile.
	q := sb.Quality
	if q == nil || !q.ClassifierRan {
		t.Fatal("quality section missing classifier results")
	}
	if q.CrashClassAccuracy < 0.72 {
		t.Errorf("crash-class accuracy %.3f below the paper's 87%% band floor", q.CrashClassAccuracy)
	}
	if !q.Drops.Consistent {
		t.Errorf("sanitization drop accounting inconsistent: %+v", q.Drops)
	}
	if q.JoinCoverage < 0.92 {
		t.Errorf("monitoring-join coverage %.3f below band floor", q.JoinCoverage)
	}
}

// TestFidelityDeliberatelyBrokenBand proves the gate trips: feeding the
// scorer a report whose PM failure rate has been pushed far outside the
// paper's band must produce a failed band and a non-nil Err naming it.
func TestFidelityDeliberatelyBrokenBand(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the small study")
	}
	study := SmallStudy() // classification skipped: those bands skip, not fail
	o := NewObserver("fidelity-broken")
	study = study.WithObserver(o)
	res, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	o.Finish()

	// Break one ground statistic: a PM weekly failure rate of 5 is ~500×
	// the paper's Table II ceiling.
	for i := range res.Report.WeeklyRates {
		wr := &res.Report.WeeklyRates[i]
		if wr.Kind == PM && wr.System == 0 {
			wr.Summary.Mean = 5
		}
	}
	sb := ScoreFidelity(res, o)
	band := sb.Find("pm_weekly_rate")
	if band == nil {
		t.Fatal("pm_weekly_rate band missing")
	}
	if band.Verdict != FidelityFail {
		t.Fatalf("broken pm_weekly_rate verdict = %s, want fail (value %g)", band.Verdict, band.Value)
	}
	err = sb.Err()
	if err == nil {
		t.Fatal("Err() nil despite a deliberately broken band")
	}
	if !strings.Contains(err.Error(), "pm_weekly_rate") {
		t.Errorf("gate error %q does not name the broken band", err)
	}
	if sb.Failed < 1 {
		t.Errorf("Failed = %d, want >= 1", sb.Failed)
	}
}
