package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Series is one parsed sample: the full sample name (family name plus any
// _bucket/_sum/_count suffix), its label set and the value.
type Series struct {
	Name   string
	Labels []Label
	Value  float64
}

// Label returns the value of the named label ("" when absent).
func (s *Series) Label(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// Family is one parsed metric family: its TYPE, HELP and every sample that
// belongs to it.
type Family struct {
	Name   string
	Type   string
	Help   string
	Series []Series
}

// Gauge returns the value of the family's series matching the given label
// pairs exactly as a subset (kv alternates name, value). NaN when no
// series matches.
func (f *Family) Gauge(kv ...string) float64 {
	for i := range f.Series {
		s := &f.Series[i]
		ok := true
		for j := 0; j+1 < len(kv); j += 2 {
			if s.Label(kv[j]) != kv[j+1] {
				ok = false
				break
			}
		}
		if ok {
			return s.Value
		}
	}
	return math.NaN()
}

// Families is a parsed exposition page with name-indexed lookup.
type Families map[string]*Family

// Get returns the named family (nil when absent).
func (fs Families) Get(name string) *Family { return fs[name] }

// Value returns the first sample value of the named family whose labels
// match the given pairs (see Family.Gauge). NaN when the family or series
// is absent.
func (fs Families) Value(name string, kv ...string) float64 {
	f := fs[name]
	if f == nil {
		return math.NaN()
	}
	return f.Gauge(kv...)
}

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

// ParseMetrics parses and validates a Prometheus text-exposition page.
// Beyond syntax, it enforces the conformance rules the test suite and the
// CI scrape-smoke lean on:
//
//   - metric and label names match the exposition identifier grammar
//   - a family's TYPE line precedes its samples and appears exactly once
//   - no duplicate series (same sample name and label set)
//   - counters are finite and non-negative
//   - histogram buckets are cumulative (non-decreasing in le order), the
//     +Inf bucket exists and equals _count
func ParseMetrics(r io.Reader) (Families, error) {
	fams := Families{}
	typed := map[string]string{}
	seen := map[string]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if err := parseComment(text, fams, typed, lineNo); err != nil {
				return nil, err
			}
			continue
		}
		name, labels, value, err := parseSample(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if !validMetricName(name) {
			return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
		}
		for _, l := range labels {
			if !validLabelName(l.Name) {
				return nil, fmt.Errorf("line %d: invalid label name %q", lineNo, l.Name)
			}
		}
		famName := familyOf(name, typed)
		fam := fams[famName]
		if fam == nil {
			// Samples without a preceding TYPE are allowed by the format
			// (untyped), but our encoder always types its families.
			fam = &Family{Name: famName, Type: "untyped"}
			fams[famName] = fam
		}
		key := name + labelString(labels)
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true
		if fam.Type == "counter" && (math.IsNaN(value) || value < 0) {
			return nil, fmt.Errorf("line %d: counter %s has non-monotonic value %v", lineNo, name, value)
		}
		fam.Series = append(fam.Series, Series{Name: name, Labels: labels, Value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, fam := range fams {
		if fam.Type == "histogram" {
			if err := validateHistogram(fam); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// parseComment handles # HELP and # TYPE lines (other comments are
// ignored, per the format).
func parseComment(text string, fams Families, typed map[string]string, lineNo int) error {
	fields := strings.SplitN(text, " ", 4)
	if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil // free-form comment
	}
	name := fields[2]
	if !validMetricName(name) {
		return fmt.Errorf("line %d: invalid family name %q in %s", lineNo, name, fields[1])
	}
	rest := ""
	if len(fields) == 4 {
		rest = fields[3]
	}
	switch fields[1] {
	case "HELP":
		fam := fams[name]
		if fam == nil {
			fam = &Family{Name: name, Type: "untyped"}
			fams[name] = fam
		}
		fam.Help = unescapeHelp(rest)
	case "TYPE":
		if !validTypes[rest] {
			return fmt.Errorf("line %d: unknown TYPE %q for %s", lineNo, rest, name)
		}
		if prev, dup := typed[name]; dup {
			return fmt.Errorf("line %d: duplicate TYPE for %s (already %s)", lineNo, name, prev)
		}
		typed[name] = rest
		fam := fams[name]
		if fam == nil {
			fam = &Family{Name: name}
			fams[name] = fam
		}
		if len(fam.Series) > 0 {
			return fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
		}
		fam.Type = rest
	}
	return nil
}

// familyOf maps a sample name to its family: histogram (and summary)
// samples use the _bucket/_sum/_count suffixes of a typed family name.
func familyOf(name string, typed map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if t, ok := typed[base]; ok && (t == "histogram" || t == "summary") {
			return base
		}
	}
	return name
}

// parseSample splits "name{labels} value [timestamp]".
func parseSample(text string) (name string, labels []Label, value float64, err error) {
	rest := text
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		rest = rest[i+1:]
		labels, rest, err = parseLabels(rest)
		if err != nil {
			return "", nil, 0, err
		}
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("sample %q has no value", text)
		}
		name = rest[:sp]
		rest = rest[sp:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("sample %q: want value [timestamp], got %q", text, rest)
	}
	value, err = parseValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("sample %q: bad value: %w", text, err)
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", nil, 0, fmt.Errorf("sample %q: bad timestamp %q", text, fields[1])
		}
	}
	return name, labels, value, nil
}

// parseLabels consumes a label body up to and including the closing brace,
// returning the remainder of the line.
func parseLabels(body string) ([]Label, string, error) {
	var labels []Label
	for {
		body = strings.TrimLeft(body, " \t")
		if strings.HasPrefix(body, "}") {
			return labels, body[1:], nil
		}
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '=' near %q", body)
		}
		lname := strings.TrimSpace(body[:eq])
		body = body[eq+1:]
		if !strings.HasPrefix(body, `"`) {
			return nil, "", fmt.Errorf("label %s value is not quoted", lname)
		}
		body = body[1:]
		var val strings.Builder
		i := 0
		for ; i < len(body); i++ {
			c := body[i]
			if c == '\\' {
				if i+1 >= len(body) {
					return nil, "", fmt.Errorf("label %s: dangling escape", lname)
				}
				switch body[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %s: invalid escape \\%c", lname, body[i+1])
				}
				i++
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(body) {
			return nil, "", fmt.Errorf("label %s: unterminated value", lname)
		}
		labels = append(labels, Label{Name: lname, Value: val.String()})
		body = body[i+1:]
		body = strings.TrimLeft(body, " \t")
		if strings.HasPrefix(body, ",") {
			body = body[1:]
			continue
		}
		if strings.HasPrefix(body, "}") {
			return labels, body[1:], nil
		}
		return nil, "", fmt.Errorf("expected ',' or '}' near %q", body)
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

func unescapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\n`, "\n")
	return strings.ReplaceAll(s, `\\`, `\`)
}

// validateHistogram checks each label set's bucket ladder: cumulative
// counts non-decreasing in ascending le order, +Inf present, and equal to
// the _count sample for the same label set.
func validateHistogram(fam *Family) error {
	type group struct {
		les    []float64
		counts []float64
		inf    float64
		hasInf bool
		count  float64
		hasCnt bool
	}
	groups := map[string]*group{}
	keyOf := func(s *Series) string {
		kvs := make([]string, 0, len(s.Labels))
		for _, l := range s.Labels {
			if l.Name == "le" {
				continue
			}
			kvs = append(kvs, l.Name+"="+l.Value)
		}
		sort.Strings(kvs)
		return strings.Join(kvs, ",")
	}
	for i := range fam.Series {
		s := &fam.Series[i]
		g := groups[keyOf(s)]
		if g == nil {
			g = &group{}
			groups[keyOf(s)] = g
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			le := s.Label("le")
			if le == "+Inf" {
				g.inf, g.hasInf = s.Value, true
				continue
			}
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("histogram %s: bad le %q", fam.Name, le)
			}
			g.les = append(g.les, v)
			g.counts = append(g.counts, s.Value)
		case strings.HasSuffix(s.Name, "_count"):
			g.count, g.hasCnt = s.Value, true
		}
	}
	for key, g := range groups {
		if !g.hasInf {
			return fmt.Errorf("histogram %s{%s}: missing +Inf bucket", fam.Name, key)
		}
		if !g.hasCnt {
			return fmt.Errorf("histogram %s{%s}: missing _count", fam.Name, key)
		}
		if g.inf != g.count {
			return fmt.Errorf("histogram %s{%s}: +Inf bucket %v != count %v", fam.Name, key, g.inf, g.count)
		}
		order := make([]int, len(g.les))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return g.les[order[a]] < g.les[order[b]] })
		prev := math.Inf(-1)
		prevCount := 0.0
		for _, i := range order {
			if g.les[i] == prev {
				return fmt.Errorf("histogram %s{%s}: duplicate le %v", fam.Name, key, prev)
			}
			prev = g.les[i]
			if g.counts[i] < prevCount {
				return fmt.Errorf("histogram %s{%s}: bucket le=%v count %v below previous %v (not cumulative)",
					fam.Name, key, g.les[i], g.counts[i], prevCount)
			}
			prevCount = g.counts[i]
		}
		if g.inf < prevCount {
			return fmt.Errorf("histogram %s{%s}: +Inf bucket %v below last bucket %v", fam.Name, key, g.inf, prevCount)
		}
	}
	return nil
}
