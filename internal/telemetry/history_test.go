package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"failscope/internal/obs"
)

// TestHistoryRingEviction: the ring stays bounded under cadence churn —
// recording far more points than capacity, with the interval reconfigured
// mid-stream, keeps exactly the newest `capacity` points and counts every
// eviction.
func TestHistoryRingEviction(t *testing.T) {
	reg := obs.NewRegistry()
	h := NewHistory(reg.Snapshot, time.Second, 4)
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)

	for i := 0; i < 10; i++ {
		if i == 5 {
			h.SetInterval(10 * time.Millisecond) // cadence churn mid-stream
		}
		reg.Set("tick", float64(i))
		h.Record(base.Add(time.Duration(i) * time.Second))
	}

	if h.Len() != 4 {
		t.Fatalf("Len = %d, want 4", h.Len())
	}
	if h.Evicted() != 6 {
		t.Errorf("Evicted = %d, want 6", h.Evicted())
	}
	pts := h.Points(0, "")
	if len(pts) != 4 {
		t.Fatalf("Points = %d, want 4", len(pts))
	}
	for i, p := range pts {
		wantTick := float64(6 + i) // newest 4 of 10 are ticks 6..9
		if p.Metrics["tick"] != wantTick {
			t.Errorf("point %d tick = %v, want %v", i, p.Metrics["tick"], wantTick)
		}
		if want := base.Add(time.Duration(6+i) * time.Second); !p.Time.Equal(want) {
			t.Errorf("point %d time = %v, want %v", i, p.Time, want)
		}
	}
	if h.Interval() != 10*time.Millisecond {
		t.Errorf("Interval = %v after churn, want 10ms", h.Interval())
	}

	// last=N returns the newest N, oldest first.
	lastTwo := h.Points(2, "")
	if len(lastTwo) != 2 || lastTwo[0].Metrics["tick"] != 8 || lastTwo[1].Metrics["tick"] != 9 {
		t.Errorf("Points(2) = %+v", lastTwo)
	}
}

// TestHistorySamplerStartStop: the background sampler records on cadence
// and stops cleanly.
func TestHistorySamplerStartStop(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Add("alive", 1)
	h := NewHistory(reg.Snapshot, 5*time.Millisecond, 64)
	h.Start()
	h.Start() // double Start is a no-op, not a second goroutine
	deadline := time.Now().Add(5 * time.Second)
	for h.Len() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	h.Stop()
	n := h.Len()
	if n < 2 {
		t.Fatalf("sampler recorded %d points, want >= 2", n)
	}
	time.Sleep(20 * time.Millisecond)
	if h.Len() != n {
		t.Errorf("sampler still recording after Stop: %d -> %d", n, h.Len())
	}
	h.Stop() // idempotent
}

// TestHistoryHandler: windowed JSON with last/prefix filters and method
// enforcement.
func TestHistoryHandler(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Set("stream.events", 10)
	reg.Set("serve.requests", 3)
	h := NewHistory(reg.Snapshot, time.Second, 8)
	now := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		h.Record(now.Add(time.Duration(i) * time.Second))
	}

	rec := httptest.NewRecorder()
	h.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/metrics/history?last=2&prefix=stream.", nil))
	var resp struct {
		IntervalSeconds float64        `json:"interval_seconds"`
		Capacity        int            `json:"capacity"`
		Points          int            `json:"points"`
		Snapshots       []HistoryPoint `json:"snapshots"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("history JSON: %v\n%s", err, rec.Body.String())
	}
	if resp.Points != 2 || len(resp.Snapshots) != 2 || resp.Capacity != 8 || resp.IntervalSeconds != 1 {
		t.Fatalf("envelope = %+v", resp)
	}
	for _, p := range resp.Snapshots {
		if _, ok := p.Metrics["stream.events"]; !ok {
			t.Errorf("prefix filter dropped stream.events: %+v", p.Metrics)
		}
		if _, ok := p.Metrics["serve.requests"]; ok {
			t.Errorf("prefix filter kept serve.requests: %+v", p.Metrics)
		}
	}

	rec = httptest.NewRecorder()
	h.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/metrics/history", nil))
	if rec.Code != 405 {
		t.Errorf("POST status = %d, want 405", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/metrics/history?last=-1", nil))
	if rec.Code != 400 {
		t.Errorf("last=-1 status = %d, want 400", rec.Code)
	}

	// A nil history serves an empty window rather than panicking.
	rec = httptest.NewRecorder()
	(*History)(nil).Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/metrics/history", nil))
	if rec.Code != 200 {
		t.Errorf("nil history status = %d, want 200", rec.Code)
	}
}
