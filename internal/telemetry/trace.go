package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"failscope/internal/obs"
)

// SpanRecord is one timed step inside a request (decode, group-commit,
// engine-apply, ...).
type SpanRecord struct {
	Name       string  `json:"name"`
	DurationMS float64 `json:"duration_ms"`
}

// RequestRecord is one completed request as kept in the slow/errored ring.
type RequestRecord struct {
	ID         string       `json:"id"`
	Method     string       `json:"method"`
	Endpoint   string       `json:"endpoint"`
	Status     int          `json:"status"`
	Error      string       `json:"error,omitempty"`
	Start      time.Time    `json:"start"`
	DurationMS float64      `json:"duration_ms"`
	Spans      []SpanRecord `json:"spans,omitempty"`
	Items      int          `json:"items,omitempty"`
}

// Active is the in-flight request trace handed to handlers through the
// request context. All methods are nil-safe so un-traced code paths (unit
// tests hitting handlers directly) cost one pointer test.
type Active struct {
	mu  sync.Mutex
	rec RequestRecord
}

// StartSpan begins a named span and returns its end function. Spans are
// appended in end order.
func (a *Active) StartSpan(name string) func() {
	if a == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { a.AddSpan(name, time.Since(t0)) }
}

// AddSpan records an already-measured span (used when the duration comes
// from elsewhere, e.g. the engine's group-commit leader).
func (a *Active) AddSpan(name string, d time.Duration) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.rec.Spans = append(a.rec.Spans, SpanRecord{Name: name, DurationMS: float64(d) / float64(time.Millisecond)})
	a.mu.Unlock()
}

// SetError attaches the handler's error message to the trace.
func (a *Active) SetError(msg string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.rec.Error = msg
	a.mu.Unlock()
}

// SetItems records how many items (events, rows) the request carried.
func (a *Active) SetItems(n int) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.rec.Items = n
	a.mu.Unlock()
}

// ID returns the request's trace ID ("" on nil).
func (a *Active) ID() string {
	if a == nil {
		return ""
	}
	return a.rec.ID
}

type activeKey struct{}

// ActiveFrom returns the in-flight trace attached to the context (nil when
// the request was not routed through Tracer.Wrap — all Active methods
// no-op then).
func ActiveFrom(ctx context.Context) *Active {
	a, _ := ctx.Value(activeKey{}).(*Active)
	return a
}

// durationBucketsMS are the per-endpoint request-latency histogram bounds,
// in milliseconds.
var durationBucketsMS = []float64{0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}

// Tracer instruments an HTTP surface: it assigns monotonic (RNG-free)
// trace IDs, records per-endpoint RED metrics into the registry — request
// counters, labeled error counters, and a latency histogram whose
// sketch-backed p50/p95/p99 surface in /metrics — and keeps a bounded ring
// of slow or errored requests for /debug/requests. Nil-safe: a nil Tracer
// passes handlers through untouched.
type Tracer struct {
	reg    *obs.Registry
	slow   time.Duration // requests at or above enter the ring; 0 = all
	nextID atomic.Uint64

	mu      sync.Mutex
	ring    []RequestRecord
	head, n int
	total   int64
	errored int64
	slowN   int64
}

// NewTracer builds a tracer over the registry. capacity bounds the
// request ring (<= 0 takes 64); slow is the duration at or above which a
// successful request is retained (0 retains every request; errored
// requests are always retained).
func NewTracer(reg *obs.Registry, capacity int, slow time.Duration) *Tracer {
	if capacity <= 0 {
		capacity = 64
	}
	return &Tracer{reg: reg, slow: slow, ring: make([]RequestRecord, capacity)}
}

// statusWriter captures the status code a handler writes.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Wrap instruments one endpoint's handler. endpoint should be the route
// pattern (bounded cardinality), not the raw URL.
func (t *Tracer) Wrap(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	if t == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		a := &Active{rec: RequestRecord{
			ID:       fmt.Sprintf("req-%08x", t.nextID.Add(1)),
			Method:   r.Method,
			Endpoint: endpoint,
			Start:    time.Now(),
		}}
		w.Header().Set("X-Trace-Id", a.rec.ID)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r.WithContext(context.WithValue(r.Context(), activeKey{}, a)))
		t.finish(a, sw.status, time.Since(a.rec.Start))
	}
}

// finish closes the trace: RED metrics plus ring admission.
func (t *Tracer) finish(a *Active, status int, d time.Duration) {
	a.mu.Lock()
	rec := a.rec
	a.mu.Unlock()
	rec.Status = status
	rec.DurationMS = float64(d) / float64(time.Millisecond)

	t.reg.Add(Labeled("http.requests", "endpoint", rec.Endpoint), 1)
	t.reg.Histogram(Labeled("http.request_ms", "endpoint", rec.Endpoint), durationBucketsMS...).
		Observe(rec.DurationMS)
	errored := status >= 400
	if errored {
		t.reg.Add(Labeled("http.errors",
			"endpoint", rec.Endpoint, "code", fmt.Sprint(status)), 1)
	}

	t.mu.Lock()
	t.total++
	if errored {
		t.errored++
	}
	slow := d >= t.slow
	if slow && t.slow > 0 {
		t.slowN++
	}
	if errored || slow {
		t.ring[t.head] = rec
		t.head = (t.head + 1) % len(t.ring)
		if t.n < len(t.ring) {
			t.n++
		}
	}
	t.mu.Unlock()
}

// Records returns the retained requests, newest first.
func (t *Tracer) Records() []RequestRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]RequestRecord, 0, t.n)
	for i := 1; i <= t.n; i++ {
		out = append(out, t.ring[(t.head-i+len(t.ring))%len(t.ring)])
	}
	return out
}

// requestsResponse is the /debug/requests JSON envelope.
type requestsResponse struct {
	Total         int64           `json:"total"`
	Errored       int64           `json:"errored"`
	Slow          int64           `json:"slow"`
	SlowThreshold float64         `json:"slow_threshold_ms"`
	Capacity      int             `json:"capacity"`
	Requests      []RequestRecord `json:"requests"`
}

// Handler serves the slow/errored-request buffer as JSON, newest first.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, `{"error":"GET required"}`, http.StatusMethodNotAllowed)
			return
		}
		resp := requestsResponse{Requests: t.Records()}
		if resp.Requests == nil {
			resp.Requests = []RequestRecord{}
		}
		if t != nil {
			t.mu.Lock()
			resp.Total, resp.Errored, resp.Slow = t.total, t.errored, t.slowN
			resp.SlowThreshold = float64(t.slow) / float64(time.Millisecond)
			resp.Capacity = len(t.ring)
			t.mu.Unlock()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp) //nolint:errcheck // streaming response, nothing to do
	})
}
