// Package telemetry is the live-observability layer on top of
// internal/obs: a zero-dependency Prometheus text-exposition encoder (and
// the matching conformance parser), a bounded self-monitoring time-series
// ring over registry snapshots, and request-scoped tracing with
// per-endpoint RED metrics for the serving daemon.
//
// Like obs itself, everything here is pure observation: nil receivers are
// no-ops, nothing draws randomness (trace IDs come from an atomic
// counter), and nothing feeds back into the pipeline — so study output
// stays byte-identical with telemetry attached or detached at any worker
// count (enforced by TestObservedStudyByteIdentical and
// TestPooledStudyByteIdentical at the repo root).
package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"failscope/internal/obs"
)

// Label is one name="value" pair attached to a series.
type Label struct {
	Name, Value string
}

// Labeled builds a registry metric name carrying labels, e.g.
//
//	Labeled("http.requests", "endpoint", "/v1/events")
//	→ `http.requests{endpoint="/v1/events"}`
//
// The exposition encoder parses the suffix back into Prometheus labels, so
// flat obs.Registry names gain label dimensions without changing the
// registry. kv alternates name, value; an odd tail is ignored. Values are
// escaped, so any string is safe.
func Labeled(base string, kv ...string) string {
	if len(kv) < 2 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the exposition-format label escapes: backslash,
// double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp applies the HELP-line escapes: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// parseLabeledName splits a registry name with an optional {k="v",...}
// suffix into its base and labels. Values may contain escaped quotes and
// backslashes. Malformed suffixes are treated as part of the base name
// (they will then fail the identifier sanitizer, not crash the encoder).
func parseLabeledName(name string) (base string, labels []Label) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, nil
	}
	base = name[:i]
	body := name[i+1 : len(name)-1]
	for len(body) > 0 {
		eq := strings.Index(body, `="`)
		if eq < 0 {
			return name, nil
		}
		lname := body[:eq]
		rest := body[eq+2:]
		var val strings.Builder
		j := 0
		for ; j < len(rest); j++ {
			c := rest[j]
			if c == '\\' && j+1 < len(rest) {
				switch rest[j+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[j+1])
				}
				j++
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if j >= len(rest) {
			return name, nil
		}
		labels = append(labels, Label{Name: lname, Value: val.String()})
		rest = rest[j+1:]
		if rest == "" {
			break
		}
		if !strings.HasPrefix(rest, ",") {
			return name, nil
		}
		body = rest[1:]
	}
	return base, labels
}

// promIdent sanitizes a dotted registry name into a legal Prometheus
// metric identifier: dots (and anything else outside [a-zA-Z0-9_:]) become
// underscores, and a leading digit gains an underscore prefix.
func promIdent(s string) string {
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabelIdent sanitizes a label name ([a-zA-Z0-9_], no colons).
func promLabelIdent(s string) string {
	s = promIdent(s)
	return strings.ReplaceAll(s, ":", "_")
}

// formatValue renders a sample value the way Prometheus expects: shortest
// round-trip float, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// line is one encoded sample: an optional family-name suffix (_bucket,
// _sum, _count for histograms), the label set and the value.
type line struct {
	suffix string
	labels []Label
	value  float64
}

// family collects every sample line sharing one exposition family name.
type family struct {
	name  string
	kind  obs.MetricKind
	help  string
	lines []line
}

// labelString renders a label set as the {...} clause ("" when empty).
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, 0, len(labels))
	for _, l := range labels {
		parts = append(parts, promLabelIdent(l.Name)+`="`+escapeLabelValue(l.Value)+`"`)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// withLabel returns labels plus one more, without mutating the input.
func withLabel(labels []Label, name, value string) []Label {
	out := make([]Label, 0, len(labels)+1)
	out = append(out, labels...)
	return append(out, Label{Name: name, Value: value})
}

// WriteExport encodes typed metrics in the Prometheus text exposition
// format (version 0.0.4): one # HELP and # TYPE line per family, then its
// samples. Counters gain a _total suffix; histograms expand into
// cumulative _bucket{le=...} series plus _sum/_count, and their
// sketch-backed quantile estimates ride along as <name>_p50/_p95/_p99
// gauge families. help maps a metric's base (dotted, pre-label) name to
// its HELP text; absent entries get a generated line.
func WriteExport(w io.Writer, metrics []obs.Metric, help map[string]string) error {
	fams := make(map[string]*family)
	order := []string{}
	get := func(name, base string, kind obs.MetricKind) *family {
		f := fams[name]
		if f == nil {
			h := help[base]
			if h == "" {
				h = "failscope metric " + base
			}
			f = &family{name: name, kind: kind, help: h}
			fams[name] = f
			order = append(order, name)
		}
		if f.kind != kind {
			return nil // name collision across kinds: first writer wins
		}
		return f
	}
	add := func(name, base string, kind obs.MetricKind, suffix string, labels []Label, value float64) {
		if f := get(name, base, kind); f != nil {
			f.lines = append(f.lines, line{suffix: suffix, labels: labels, value: value})
		}
	}

	// obs.Registry.Export is sorted by full (labeled) name, so appending in
	// input order keeps each family's series deterministic without a second
	// sort — and keeps every histogram label set's buckets ascending,
	// because they are appended bound by bound here.
	for _, m := range metrics {
		base, labels := parseLabeledName(m.Name)
		name := promIdent(base)
		switch m.Kind {
		case obs.KindCounter:
			add(name+"_total", base, obs.KindCounter, "", labels, m.Value)
		case obs.KindGauge:
			add(name, base, obs.KindGauge, "", labels, m.Value)
		case obs.KindHistogram:
			if m.Hist == nil {
				continue
			}
			h := m.Hist
			var cum int64
			for i, b := range h.Bounds {
				cum += h.Counts[i]
				add(name, base, obs.KindHistogram, "_bucket",
					withLabel(labels, "le", formatValue(b)), float64(cum))
			}
			add(name, base, obs.KindHistogram, "_bucket",
				withLabel(labels, "le", "+Inf"), float64(h.Count))
			add(name, base, obs.KindHistogram, "_sum", labels, h.Sum)
			add(name, base, obs.KindHistogram, "_count", labels, float64(h.Count))
			add(name+"_p50", base, obs.KindGauge, "", labels, h.P50)
			add(name+"_p95", base, obs.KindGauge, "", labels, h.P95)
			add(name+"_p99", base, obs.KindGauge, "", labels, h.P99)
		}
	}

	sort.Strings(order)
	var b strings.Builder
	for _, name := range order {
		f := fams[name]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, kindName(f.kind))
		for _, l := range f.lines {
			fmt.Fprintf(&b, "%s%s%s %s\n", f.name, l.suffix, labelString(l.labels), formatValue(l.value))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func kindName(k obs.MetricKind) string {
	switch k {
	case obs.KindCounter:
		return "counter"
	case obs.KindGauge:
		return "gauge"
	case obs.KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// WriteMetrics encodes a registry's full export (see WriteExport). A nil
// registry writes nothing.
func WriteMetrics(w io.Writer, reg *obs.Registry, help map[string]string) error {
	return WriteExport(w, reg.Export(), help)
}

// processStart anchors process_uptime_seconds. Observation-only.
var processStart = time.Now()

// runtimeMetrics samples the Go runtime into extra exposition gauges, so
// every /metrics scrape carries the process's live memory footprint
// alongside the pipeline registry.
func runtimeMetrics() []obs.Metric {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return []obs.Metric{
		{Name: "go.goroutines", Kind: obs.KindGauge, Value: float64(runtime.NumGoroutine())},
		{Name: "go.memstats.heap_alloc_bytes", Kind: obs.KindGauge, Value: float64(ms.HeapAlloc)},
		{Name: "go.memstats.heap_inuse_bytes", Kind: obs.KindGauge, Value: float64(ms.HeapInuse)},
		{Name: "go.memstats.sys_bytes", Kind: obs.KindGauge, Value: float64(ms.Sys)},
		{Name: "go.gc_cycles", Kind: obs.KindCounter, Value: float64(ms.NumGC)},
		{Name: "process.uptime_seconds", Kind: obs.KindGauge, Value: time.Since(processStart).Seconds()},
	}
}

// Handler serves the registry (plus live Go runtime gauges) in the
// Prometheus text exposition format — the /metrics endpoint. help is
// optional (see WriteExport).
func Handler(reg *obs.Registry, help map[string]string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		metrics := append(reg.Export(), runtimeMetrics()...)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WriteExport(w, metrics, help); err != nil {
			// The response is already streaming; nothing recoverable.
			return
		}
	})
}
