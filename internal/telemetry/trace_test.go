package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"failscope/internal/obs"
)

// TestTracerREDMetricsAndRing drives a wrapped endpoint through success,
// error and slow paths and checks the RED metrics, the trace IDs and the
// ring admission policy.
func TestTracerREDMetricsAndRing(t *testing.T) {
	reg := obs.NewRegistry()
	tr := NewTracer(reg, 8, 20*time.Millisecond)

	handler := tr.Wrap("/v1/events", func(w http.ResponseWriter, r *http.Request) {
		a := ActiveFrom(r.Context())
		end := a.StartSpan("decode")
		end()
		switch r.URL.Query().Get("mode") {
		case "error":
			a.SetError("bad line")
			w.WriteHeader(http.StatusBadRequest)
		case "slow":
			time.Sleep(25 * time.Millisecond)
		}
	})

	for _, mode := range []string{"", "", "error", "slow"} {
		rec := httptest.NewRecorder()
		handler(rec, httptest.NewRequest("POST", "/v1/events?mode="+mode, nil))
		if rec.Header().Get("X-Trace-Id") == "" {
			t.Error("response missing X-Trace-Id")
		}
	}

	if got := reg.Counter(Labeled("http.requests", "endpoint", "/v1/events")).Value(); got != 4 {
		t.Errorf("request counter = %d, want 4", got)
	}
	if got := reg.Counter(Labeled("http.errors", "endpoint", "/v1/events", "code", "400")).Value(); got != 1 {
		t.Errorf("error counter = %d, want 1", got)
	}
	h := reg.Histogram(Labeled("http.request_ms", "endpoint", "/v1/events"))
	if h.Count() != 4 {
		t.Errorf("duration histogram count = %d, want 4", h.Count())
	}

	recs := tr.Records()
	if len(recs) != 2 {
		t.Fatalf("ring keeps %d records, want 2 (1 errored + 1 slow): %+v", len(recs), recs)
	}
	// Newest first: the slow one, then the errored one.
	if recs[0].DurationMS < 20 || recs[0].Status != 200 {
		t.Errorf("newest record = %+v, want slow 200", recs[0])
	}
	if recs[1].Status != 400 || recs[1].Error != "bad line" {
		t.Errorf("errored record = %+v", recs[1])
	}
	for _, r := range recs {
		if len(r.Spans) != 1 || r.Spans[0].Name != "decode" {
			t.Errorf("record spans = %+v, want [decode]", r.Spans)
		}
		if !strings.HasPrefix(r.ID, "req-") {
			t.Errorf("trace ID %q not counter-derived", r.ID)
		}
	}
}

// TestTracerRingBounded: capacity is a hard bound under overflow.
func TestTracerRingBounded(t *testing.T) {
	reg := obs.NewRegistry()
	tr := NewTracer(reg, 4, 0) // slow=0: every request is retained
	handler := tr.Wrap("/x", func(w http.ResponseWriter, r *http.Request) {})
	for i := 0; i < 10; i++ {
		handler(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	}
	recs := tr.Records()
	if len(recs) != 4 {
		t.Fatalf("ring length = %d, want 4", len(recs))
	}
	// Newest first and IDs monotonic.
	if recs[0].ID != "req-0000000a" || recs[3].ID != "req-00000007" {
		t.Errorf("ring kept %v .. %v, want req-0000000a .. req-00000007", recs[0].ID, recs[3].ID)
	}
}

// TestRequestsHandler: /debug/requests serves the envelope with counters.
func TestRequestsHandler(t *testing.T) {
	reg := obs.NewRegistry()
	tr := NewTracer(reg, 4, 0)
	handler := tr.Wrap("/x", func(w http.ResponseWriter, r *http.Request) {
		ActiveFrom(r.Context()).SetItems(7)
		ActiveFrom(r.Context()).AddSpan("engine-apply", 3*time.Millisecond)
	})
	handler(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests", nil))
	var resp requestsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if resp.Total != 1 || resp.Capacity != 4 || len(resp.Requests) != 1 {
		t.Fatalf("envelope = %+v", resp)
	}
	r0 := resp.Requests[0]
	if r0.Items != 7 || len(r0.Spans) != 1 || r0.Spans[0].Name != "engine-apply" {
		t.Errorf("record = %+v", r0)
	}

	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/debug/requests", nil))
	if rec.Code != 405 {
		t.Errorf("POST status = %d, want 405", rec.Code)
	}
}

// TestNilTracerAndActive: nil receivers are inert, and Wrap on a nil
// tracer returns the handler untouched.
func TestNilTracerAndActive(t *testing.T) {
	var tr *Tracer
	called := false
	h := tr.Wrap("/x", func(w http.ResponseWriter, r *http.Request) {
		called = true
		a := ActiveFrom(r.Context()) // nil: not wrapped
		a.StartSpan("decode")()
		a.AddSpan("x", time.Millisecond)
		a.SetError("e")
		a.SetItems(1)
		if a.ID() != "" {
			t.Error("nil Active has an ID")
		}
	})
	h(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	if !called {
		t.Fatal("nil tracer swallowed the handler")
	}
	if tr.Records() != nil {
		t.Error("nil tracer has records")
	}
}
