package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// HistoryPoint is one registry snapshot at one instant.
type HistoryPoint struct {
	Time    time.Time          `json:"time"`
	Metrics map[string]float64 `json:"metrics"`
}

// History is the self-monitoring time-series ring: the full metrics
// registry is snapshotted on a cadence into a bounded in-memory ring, so
// the monitoring system finally monitors itself — a live daemon can serve
// the last N snapshots of its own counters as a windowed series without
// any external scraper. All methods are nil-safe; sampling is pure
// observation (the snapshot function only reads).
type History struct {
	mu       sync.Mutex
	snapshot func() map[string]float64
	interval time.Duration
	points   []HistoryPoint // ring storage, len == capacity
	head     int            // next write slot
	n        int            // live points, <= len(points)
	evicted  int64
	stop     chan struct{}
	done     chan struct{}
}

// NewHistory builds a ring over the given snapshot function (typically
// (*obs.Registry).Snapshot). interval is the sampling cadence for Start
// (<= 0 takes 5s); capacity bounds the ring (<= 0 takes 720 — one hour of
// 5s samples).
func NewHistory(snapshot func() map[string]float64, interval time.Duration, capacity int) *History {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	if capacity <= 0 {
		capacity = 720
	}
	return &History{
		snapshot: snapshot,
		interval: interval,
		points:   make([]HistoryPoint, capacity),
	}
}

// Record takes one snapshot now, evicting the oldest point when the ring
// is full. Exposed so tests and non-daemon callers can sample manually.
func (h *History) Record(now time.Time) {
	if h == nil || h.snapshot == nil {
		return
	}
	snap := h.snapshot()
	h.mu.Lock()
	defer h.mu.Unlock()
	h.points[h.head] = HistoryPoint{Time: now, Metrics: snap}
	h.head = (h.head + 1) % len(h.points)
	if h.n < len(h.points) {
		h.n++
	} else {
		h.evicted++
	}
}

// SetInterval changes the sampling cadence; the running sampler picks the
// new value up on its next tick. No-op for d <= 0.
func (h *History) SetInterval(d time.Duration) {
	if h == nil || d <= 0 {
		return
	}
	h.mu.Lock()
	h.interval = d
	h.mu.Unlock()
}

// Interval returns the current sampling cadence (0 on nil).
func (h *History) Interval() time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.interval
}

// Start launches the background sampler. Safe to call on nil; calling
// Start twice without Stop is a no-op.
func (h *History) Start() {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.stop != nil {
		h.mu.Unlock()
		return
	}
	h.stop = make(chan struct{})
	h.done = make(chan struct{})
	stop, done := h.stop, h.done
	h.mu.Unlock()
	go func() {
		defer close(done)
		for {
			t := time.NewTimer(h.Interval())
			select {
			case <-stop:
				t.Stop()
				return
			case now := <-t.C:
				h.Record(now)
			}
		}
	}()
}

// Stop halts the background sampler and waits for it to exit. Recorded
// points stay queryable. Safe to call on nil or when never started.
func (h *History) Stop() {
	if h == nil {
		return
	}
	h.mu.Lock()
	stop, done := h.stop, h.done
	h.stop, h.done = nil, nil
	h.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Len returns the number of live points (0 on nil).
func (h *History) Len() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Evicted returns how many points the ring has dropped to stay bounded.
func (h *History) Evicted() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.evicted
}

// Points returns up to last points in oldest-to-newest order (last <= 0
// returns everything). When prefix is non-empty, each point's metric map
// is filtered to names with that prefix — the knob that keeps windowed
// JSON responses bounded when the registry is large.
func (h *History) Points(last int, prefix string) []HistoryPoint {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	n := h.n
	if last > 0 && last < n {
		n = last
	}
	out := make([]HistoryPoint, 0, n)
	for i := 0; i < n; i++ {
		// Oldest of the returned window first: walk backward from head.
		idx := (h.head - n + i + len(h.points)) % len(h.points)
		p := h.points[idx]
		if prefix != "" {
			filtered := make(map[string]float64)
			for k, v := range p.Metrics {
				if strings.HasPrefix(k, prefix) {
					filtered[k] = v
				}
			}
			p.Metrics = filtered
		}
		out = append(out, p)
	}
	return out
}

// historyResponse is the /v1/metrics/history JSON envelope.
type historyResponse struct {
	IntervalSeconds float64        `json:"interval_seconds"`
	Capacity        int            `json:"capacity"`
	Points          int            `json:"points"`
	Evicted         int64          `json:"evicted"`
	Snapshots       []HistoryPoint `json:"snapshots"`
}

// Handler serves the ring as windowed JSON: GET with optional ?last=N
// (newest N points) and ?prefix=stream. (metric-name filter). A nil
// History serves an empty window.
func (h *History) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, `{"error":"GET required"}`, http.StatusMethodNotAllowed)
			return
		}
		last := 0
		if s := r.URL.Query().Get("last"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, `{"error":"last must be a non-negative integer"}`, http.StatusBadRequest)
				return
			}
			last = v
		}
		prefix := r.URL.Query().Get("prefix")
		resp := historyResponse{Snapshots: h.Points(last, prefix)}
		if h != nil {
			h.mu.Lock()
			resp.IntervalSeconds = h.interval.Seconds()
			resp.Capacity = len(h.points)
			resp.Evicted = h.evicted
			h.mu.Unlock()
		}
		resp.Points = len(resp.Snapshots)
		if resp.Snapshots == nil {
			resp.Snapshots = []HistoryPoint{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp) //nolint:errcheck // streaming response, nothing to do
	})
}
