package telemetry

import (
	"bytes"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"failscope/internal/obs"
)

// encode runs the registry through the exposition encoder and fails the
// test on error.
func encode(t *testing.T, reg *obs.Registry, help map[string]string) string {
	t.Helper()
	var b bytes.Buffer
	if err := WriteMetrics(&b, reg, help); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// parse runs the conformance parser over an exposition page.
func parse(t *testing.T, page string) Families {
	t.Helper()
	fams, err := ParseMetrics(strings.NewReader(page))
	if err != nil {
		t.Fatalf("conformance parse failed:\n%s\nerror: %v", page, err)
	}
	return fams
}

// TestExpositionRoundTrip: counters, gauges and a labeled histogram must
// encode to a page the conformance parser accepts, with every value
// recoverable.
func TestExpositionRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Add("serve.events_ingested", 41)
	reg.Add(Labeled("http.requests", "endpoint", "/v1/events"), 3)
	reg.Add(Labeled("http.requests", "endpoint", "/healthz"), 2)
	reg.Add(Labeled("http.errors", "endpoint", "/v1/events", "code", "400"), 1)
	reg.Set("stream.watermark_unix_seconds", 1.5e9)
	h := reg.Histogram(Labeled("http.request_ms", "endpoint", "/v1/events"), 1, 5, 25)
	for _, v := range []float64{0.4, 0.6, 3, 7, 100} {
		h.Observe(v)
	}

	page := encode(t, reg, map[string]string{
		"serve.events_ingested": "events applied by the engine",
	})
	fams := parse(t, page)

	if got := fams.Value("serve_events_ingested_total"); got != 41 {
		t.Errorf("counter = %v, want 41", got)
	}
	if f := fams.Get("serve_events_ingested_total"); f == nil || f.Help != "events applied by the engine" {
		t.Errorf("help not carried: %+v", fams.Get("serve_events_ingested_total"))
	}
	if got := fams.Value("http_requests_total", "endpoint", "/v1/events"); got != 3 {
		t.Errorf("labeled counter = %v, want 3", got)
	}
	if got := fams.Value("http_errors_total", "endpoint", "/v1/events", "code", "400"); got != 1 {
		t.Errorf("error counter = %v, want 1", got)
	}
	if got := fams.Value("stream_watermark_unix_seconds"); got != 1.5e9 {
		t.Errorf("gauge = %v, want 1.5e9", got)
	}

	hist := fams.Get("http_request_ms")
	if hist == nil || hist.Type != "histogram" {
		t.Fatalf("histogram family missing or untyped: %+v", hist)
	}
	wantBuckets := map[string]float64{"1": 2, "5": 3, "25": 4, "+Inf": 5}
	for le, want := range wantBuckets {
		got := fams.Value("http_request_ms", "endpoint", "/v1/events", "le", le)
		if got != want {
			t.Errorf("bucket le=%s = %v, want %v", le, got, want)
		}
	}
	var sum, count float64 = math.NaN(), math.NaN()
	for _, s := range hist.Series {
		switch {
		case strings.HasSuffix(s.Name, "_sum"):
			sum = s.Value
		case strings.HasSuffix(s.Name, "_count"):
			count = s.Value
		}
	}
	if count != 5 || math.Abs(sum-111) > 1e-9 {
		t.Errorf("sum/count = %v/%v, want 111/5", sum, count)
	}
	for _, q := range []string{"p50", "p95", "p99"} {
		v := fams.Value("http_request_ms_"+q, "endpoint", "/v1/events")
		if math.IsNaN(v) {
			t.Errorf("quantile %s missing from exposition", q)
		}
	}
}

// TestExpositionEscaping: help text and label values with backslashes,
// quotes and newlines must survive an encode → parse round trip.
func TestExpositionEscaping(t *testing.T) {
	reg := obs.NewRegistry()
	tricky := "a\\b\"c\nd"
	reg.Add(Labeled("ingest.rejected", "reason", tricky), 7)
	help := map[string]string{"ingest.rejected": "first line\nsecond \\ line"}

	page := encode(t, reg, help)
	fams := parse(t, page)

	f := fams.Get("ingest_rejected_total")
	if f == nil {
		t.Fatalf("family missing:\n%s", page)
	}
	if f.Help != "first line\nsecond \\ line" {
		t.Errorf("help round-trip = %q", f.Help)
	}
	if got := f.Gauge("reason", tricky); got != 7 {
		t.Errorf("labeled value with escapes = %v, want 7 (labels %+v)", got, f.Series)
	}
}

// TestExpositionNameSanitization: dotted names become legal identifiers;
// hostile names cannot produce an invalid page.
func TestExpositionNameSanitization(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Add("dcsim.scratch.hits", 2)
	reg.Set("1weird-name.with spaces", 3)
	page := encode(t, reg, nil)
	fams := parse(t, page)
	if got := fams.Value("dcsim_scratch_hits_total"); got != 2 {
		t.Errorf("sanitized counter = %v, want 2", got)
	}
	if got := fams.Value("_1weird_name_with_spaces"); got != 3 {
		t.Errorf("sanitized gauge = %v, want 3\n%s", got, page)
	}
}

// TestEmptyHistogramSuppressed: a histogram that never observed a sample
// must not appear in the exposition at all.
func TestEmptyHistogramSuppressed(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Histogram("serve.batch_events", 10, 100) // created, never observed
	reg.Add("serve.requests", 1)
	page := encode(t, reg, nil)
	if strings.Contains(page, "serve_batch_events") {
		t.Errorf("empty histogram leaked into exposition:\n%s", page)
	}
	fams := parse(t, page)
	if fams.Get("serve_batch_events") != nil {
		t.Error("empty histogram family parsed back")
	}
}

// TestParserRejectsNonConformantPages: the conformance parser must catch
// the failure classes the test matrix names.
func TestParserRejectsNonConformantPages(t *testing.T) {
	cases := map[string]string{
		"bad metric name":    "bad-name 1\n",
		"bad label name":     `m{bad-label="x"} 1` + "\n",
		"duplicate series":   "# TYPE m gauge\nm{a=\"1\"} 1\nm{a=\"1\"} 2\n",
		"duplicate TYPE":     "# TYPE m gauge\nm 1\n# TYPE m counter\n",
		"TYPE after samples": "m 1\n# TYPE m gauge\n",
		"unknown TYPE":       "# TYPE m sketch\nm 1\n",
		"negative counter":   "# TYPE m counter\nm -1\n",
		"unquoted label":     "m{a=1} 1\n",
		"unterminated label": `m{a="1} 1` + "\n",
		"missing value":      "m\n",
		"bad value":          "m abc\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" +
			`h_bucket{le="2"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\n" +
			"h_sum 9\nh_count 5\n",
		"missing +Inf bucket": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" +
			"h_sum 9\nh_count 5\n",
		"+Inf != count": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 3` + "\n" +
			`h_bucket{le="+Inf"} 4` + "\n" +
			"h_sum 9\nh_count 5\n",
	}
	for name, page := range cases {
		if _, err := ParseMetrics(strings.NewReader(page)); err == nil {
			t.Errorf("%s: parser accepted invalid page:\n%s", name, page)
		}
	}
}

// TestParserAcceptsTimestampsAndComments: optional sample timestamps and
// free-form comments are part of the format.
func TestParserAcceptsTimestampsAndComments(t *testing.T) {
	page := "# a free-form comment\n# TYPE m gauge\nm{a=\"x\"} 1.5 1712345678901\n\nm2 +Inf\n"
	fams := parse(t, page)
	if got := fams.Value("m", "a", "x"); got != 1.5 {
		t.Errorf("timestamped sample = %v, want 1.5", got)
	}
	if got := fams.Value("m2"); !math.IsInf(got, 1) {
		t.Errorf("m2 = %v, want +Inf", got)
	}
}

// TestHandlerServesRuntimeMetrics: the HTTP handler adds live Go runtime
// gauges to the registry export and the page stays conformant.
func TestHandlerServesRuntimeMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Add("stream.events", 9)
	rec := httptest.NewRecorder()
	Handler(reg, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	fams := parse(t, rec.Body.String())
	if got := fams.Value("stream_events_total"); got != 9 {
		t.Errorf("registry metric = %v, want 9", got)
	}
	for _, name := range []string{"go_goroutines", "go_memstats_heap_alloc_bytes", "process_uptime_seconds"} {
		if v := fams.Value(name); math.IsNaN(v) || v <= 0 {
			t.Errorf("runtime metric %s = %v, want > 0", name, v)
		}
	}
}

// TestLabeledNameParsing pins the labels-in-name convention both ways.
func TestLabeledNameParsing(t *testing.T) {
	name := Labeled("http.requests", "endpoint", "/v1/events", "weird", `a"b\c`)
	base, labels := parseLabeledName(name)
	if base != "http.requests" || len(labels) != 2 {
		t.Fatalf("parseLabeledName(%q) = %q, %+v", name, base, labels)
	}
	if labels[0] != (Label{"endpoint", "/v1/events"}) || labels[1] != (Label{"weird", `a"b\c`}) {
		t.Errorf("labels = %+v", labels)
	}
	// Plain names pass through untouched.
	if base, labels := parseLabeledName("stream.events"); base != "stream.events" || labels != nil {
		t.Errorf("plain name mangled: %q %+v", base, labels)
	}
}
