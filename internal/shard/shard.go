// Package shard scales the stream engine across cores: a router that owns
// N independent stream.Engine instances, routes each event to a shard by a
// stable hash of its machine key, and serves reads by merging per-shard
// snapshots back into the single-engine shape.
//
// Routing invariants, which the equivalence suite at the repo root proves:
//
//   - Every machine is owned by exactly one shard (FNV-1a of its ID mod N),
//     so all of its tickets, samples, power events and placements land on
//     one engine and the per-server statistics (inter-failure gaps, weekly
//     failed sets, recurrence windows, detection state) never split.
//   - Machine inventory events are broadcast: the owner gets the primary
//     copy, every other shard a Ref replica that registers for incident
//     PM/VM kind lookups but counts nothing.
//   - Incidents route by their first server's hash; the replica inventory
//     makes the kind lookup of every listed server work on any shard.
//   - Placements are broadcast (primary on the VM's owner) so every
//     shard's detector sees the fleet-wide consolidation level its risk
//     scores read — co-resident VMs of one host live on many shards.
//   - Watermark advances are broadcast (primary on shard 0, replicas
//     elsewhere) so every shard's clock — and its detector's expiry scan —
//     moves together.
//   - Events with no machine key land on shard 0.
//
// Each shard is fed by its own bounded queue; a full queue blocks the
// poster (backpressure) rather than dropping. One Router call returns only
// after every shard has folded its slice in, so callers keep the POST
// semantics of the single engine: a 2xx response means the batch is
// applied.
package shard

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"failscope/internal/detect"
	"failscope/internal/mempool"
	"failscope/internal/model"
	"failscope/internal/obs"
	"failscope/internal/stream"
	"failscope/internal/telemetry"
)

// DefaultQueueLen is the per-shard ingest queue capacity, in batches.
const DefaultQueueLen = 64

// Options configures a Router.
type Options struct {
	// Engines are the shard engines, all built from the same observation
	// window. With more than one, each Config.GaugeLabel should be the
	// shard index so the shared registry's gauge families do not collide.
	Engines []*stream.Engine

	// Detectors, when detection is on, are the per-shard detection layers,
	// parallel to Engines (Detectors[i] is Engines[i]'s Config.Detector).
	// Nil when detection is off.
	Detectors []*detect.Detector

	// QueueLen is the per-shard ingest queue capacity in batches;
	// DefaultQueueLen when zero.
	QueueLen int

	// Registry, when non-nil, receives the shard.* families and — for
	// multi-shard routers — the fleet-aggregate stream.*, detect.* and
	// monitordb.* gauges at Publish time.
	Registry *obs.Registry
}

// job is one shard's slice of a routed batch, waiting on its queue.
type job struct {
	events  []stream.Event
	applied time.Duration
	err     error
	done    chan struct{}
}

var jobPool = mempool.New("shard.job", 256,
	func() *job { return &job{done: make(chan struct{}, 1)} },
	func(j *job) *job { j.events = nil; j.applied = 0; j.err = nil; return j },
)

// Router routes event batches across shard engines and merges their reads.
// A single-engine router is a pure passthrough: no queues, no workers, no
// labels — byte-for-byte the pre-sharding daemon.
type Router struct {
	engines   []*stream.Engine
	detectors []*detect.Detector
	queues    []chan *job
	reg       *obs.Registry
	wg        sync.WaitGroup

	// op guards enqueue against Close: appliers hold it shared, Close
	// exclusively, so no send can race a channel close.
	op     sync.RWMutex
	closed bool

	// scratch pools the per-call routing buffers ([][]Event + job list).
	scratch sync.Pool

	// pub guards the publish watermarks for counter families (monotone
	// deltas into the shared registry).
	pub       sync.Mutex
	pubEvents []int64
	pubRaised int64
	pubClear  int64

	// perShard caches the labeled shard.* metric names.
	perShard []shardNames
}

type shardNames struct {
	events, queueDepth string
}

// mergeBucketsMS are the shard.merge_ms histogram bounds: snapshot merges
// are O(weeks + classes + failing machines), well under a second.
var mergeBucketsMS = []float64{0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000}

// New builds a router over pre-built shard engines. The engines must share
// one observation window; Detectors, when given, must be parallel to
// Engines.
func New(opts Options) (*Router, error) {
	n := len(opts.Engines)
	if n == 0 {
		return nil, fmt.Errorf("shard: no engines")
	}
	if opts.Detectors != nil && len(opts.Detectors) != n {
		return nil, fmt.Errorf("shard: %d detectors for %d engines", len(opts.Detectors), n)
	}
	r := &Router{
		engines:   opts.Engines,
		detectors: opts.Detectors,
		reg:       opts.Registry,
		pubEvents: make([]int64, n),
		perShard:  make([]shardNames, n),
	}
	for i := range r.perShard {
		label := strconv.Itoa(i)
		r.perShard[i] = shardNames{
			events:     telemetry.Labeled("shard.events", "shard", label),
			queueDepth: telemetry.Labeled("shard.queue_depth", "shard", label),
		}
	}
	r.scratch.New = func() any {
		return &routeScratch{perShard: make([][]stream.Event, n), jobs: make([]*job, 0, n)}
	}
	if n > 1 {
		qlen := opts.QueueLen
		if qlen <= 0 {
			qlen = DefaultQueueLen
		}
		r.queues = make([]chan *job, n)
		for i := range r.queues {
			r.queues[i] = make(chan *job, qlen)
			r.wg.Add(1)
			go r.worker(i)
		}
	}
	return r, nil
}

// Single wraps one engine in a passthrough router — the unsharded daemon
// and the tests use it so every caller speaks one interface.
func Single(eng *stream.Engine) *Router {
	var ds []*detect.Detector
	if d := eng.Detector(); d != nil {
		ds = []*detect.Detector{d}
	}
	r, err := New(Options{Engines: []*stream.Engine{eng}, Detectors: ds})
	if err != nil {
		panic(err) // one engine can never fail validation
	}
	return r
}

// Shards returns the shard count.
func (r *Router) Shards() int { return len(r.engines) }

// Engines exposes the shard engines (read-mostly: tests and recovery).
func (r *Router) Engines() []*stream.Engine { return r.engines }

// worker drains one shard's queue; each batch slice applies through the
// engine's own group-commit path.
func (r *Router) worker(i int) {
	defer r.wg.Done()
	for j := range r.queues[i] {
		j.applied, j.err = r.engines[i].ApplyGroupedTimed(j.events)
		if j.err != nil {
			j.err = fmt.Errorf("shard %d: %w", i, j.err)
		}
		j.done <- struct{}{}
	}
}

// shardOf hashes a machine key to its owning shard (FNV-1a mod N). The
// empty key — events with no machine affinity — lands on shard 0.
func (r *Router) shardOf(key model.MachineID) int {
	if len(r.engines) == 1 || key == "" {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(len(r.engines)))
}

type routeScratch struct {
	perShard [][]stream.Event
	jobs     []*job
}

// Apply routes one batch and waits for every shard to fold its slice in.
func (r *Router) Apply(events []stream.Event) error {
	_, err := r.ApplyTimed(events)
	return err
}

// ApplyTimed is Apply returning the slowest shard's engine-apply time for
// the batch — the same engine-cost leg the single-engine daemon traces.
// Splitting walks the batch once in order, so each shard sees its events
// in the original arrival order; on error, the lowest-numbered failing
// shard's error is returned (other shards may still have applied their
// slices, matching the single engine's partial-apply-on-error semantics).
func (r *Router) ApplyTimed(events []stream.Event) (time.Duration, error) {
	if len(r.engines) == 1 {
		return r.engines[0].ApplyGroupedTimed(events)
	}
	r.op.RLock()
	defer r.op.RUnlock()
	if r.closed {
		return 0, fmt.Errorf("shard: router closed")
	}

	sc := r.scratch.Get().(*routeScratch)
	n := len(r.engines)
	for i := range events {
		ev := &events[i]
		switch ev.Type {
		case "machine":
			owner := 0
			if ev.Machine != nil {
				owner = r.shardOf(ev.Machine.ID)
			}
			for s := 0; s < n; s++ {
				cp := *ev
				cp.Ref = s != owner
				sc.perShard[s] = append(sc.perShard[s], cp)
			}
		case "advance":
			for s := 0; s < n; s++ {
				cp := *ev
				cp.Ref = s != 0
				sc.perShard[s] = append(sc.perShard[s], cp)
			}
		case "placement":
			// Broadcast like machine events: the owner stores the
			// placement, every other shard's detector folds the replica
			// into its fleet-wide consolidation count.
			owner := r.shardOf(ev.ServerID)
			for s := 0; s < n; s++ {
				cp := *ev
				cp.Ref = s != owner
				sc.perShard[s] = append(sc.perShard[s], cp)
			}
		default:
			s := r.shardOf(keyOf(ev))
			sc.perShard[s] = append(sc.perShard[s], *ev)
		}
	}

	for s := 0; s < n; s++ {
		if len(sc.perShard[s]) == 0 {
			continue
		}
		j := jobPool.Get()
		j.events = sc.perShard[s]
		r.queues[s] <- j // full queue blocks: backpressure, never drop
		sc.jobs = append(sc.jobs, j)
	}
	var applied time.Duration
	var err error
	for _, j := range sc.jobs {
		<-j.done
		if j.applied > applied {
			applied = j.applied
		}
		if err == nil && j.err != nil {
			err = j.err
		}
		jobPool.Put(j)
	}

	for s := range sc.perShard {
		sc.perShard[s] = sc.perShard[s][:0]
	}
	sc.jobs = sc.jobs[:0]
	r.scratch.Put(sc)
	return applied, err
}

// keyOf is the event's routing key: the machine whose per-server state the
// event feeds. Incidents key on their first listed server; the replica
// inventory makes every shard able to bucket the rest.
func keyOf(ev *stream.Event) model.MachineID {
	switch ev.Type {
	case "ticket":
		if ev.Ticket != nil {
			return ev.Ticket.ServerID
		}
	case "incident":
		if ev.Incident != nil && len(ev.Incident.Servers) > 0 {
			return ev.Incident.Servers[0]
		}
	default:
		return ev.ServerID
	}
	return ""
}

// Snapshot merges the per-shard snapshots into the single-engine shape,
// recording the merge cost in the shard.merge_ms histogram.
func (r *Router) Snapshot() *stream.Snapshot {
	if len(r.engines) == 1 {
		return r.engines[0].Snapshot()
	}
	t0 := time.Now()
	s := stream.MergeSnapshot(r.engines)
	r.reg.Histogram("shard.merge_ms", mergeBucketsMS...).
		Observe(float64(time.Since(t0)) / float64(time.Millisecond))
	return s
}

// Seq is the fleet apply generation: the sum of per-shard event counts,
// which — replicas being uncounted — equals the single-engine sequence for
// the same stream.
func (r *Router) Seq() int64 {
	var sum int64
	for _, e := range r.engines {
		sum += e.Seq()
	}
	return sum
}

// Alerts merges the per-shard detection snapshots (nil when detection is
// off).
func (r *Router) Alerts() *detect.Snapshot {
	if len(r.detectors) == 0 {
		return nil
	}
	for _, d := range r.detectors {
		if d == nil {
			return nil
		}
	}
	return detect.Merge(r.detectors)
}

// Detector returns the single shard's detector on a passthrough router and
// nil otherwise — merged reads go through Alerts.
func (r *Router) Detector() *detect.Detector {
	if len(r.detectors) == 1 {
		return r.detectors[0]
	}
	return nil
}

// Publish pushes the shard.* families and, for multi-shard routers, the
// fleet-aggregate gauges the shard engines leave to the coordinator.
// Called at scrape time; a passthrough router publishes nothing (its
// engine owns the whole surface, exactly as before sharding).
func (r *Router) Publish(reg *obs.Registry) {
	if len(r.engines) == 1 || reg == nil {
		return
	}
	r.pub.Lock()
	defer r.pub.Unlock()

	var tot stream.Totals
	for i, e := range r.engines {
		t := e.Totals()
		if delta := t.Events - r.pubEvents[i]; delta > 0 {
			reg.Add(r.perShard[i].events, delta)
			r.pubEvents[i] = t.Events
		}
		reg.Set(r.perShard[i].queueDepth, float64(len(r.queues[i])))
		tot.Events += t.Events
		tot.Tickets += t.Tickets
		tot.CrashTickets += t.CrashTickets
		tot.MonitorSamples += t.MonitorSamples
		tot.DroppedOutOfWindow += t.DroppedOutOfWindow
		tot.PredictDistances += t.PredictDistances
		tot.PredictPruned += t.PredictPruned
		tot.Machines += t.Machines
		tot.Incidents += t.Incidents
		if t.Watermark.After(tot.Watermark) {
			tot.Watermark = t.Watermark
		}
	}
	reg.Set("stream.events", float64(tot.Events))
	reg.Set("stream.tickets", float64(tot.Tickets))
	reg.Set("stream.crash_tickets", float64(tot.CrashTickets))
	reg.Set("stream.machines", float64(tot.Machines))
	reg.Set("stream.incidents", float64(tot.Incidents))
	reg.Set("stream.monitor_samples", float64(tot.MonitorSamples))
	reg.Set("stream.dropped_out_of_window", float64(tot.DroppedOutOfWindow))
	reg.Set("stream.predict_distances", float64(tot.PredictDistances))
	reg.Set("stream.predict_distances_pruned", float64(tot.PredictPruned))
	if !tot.Watermark.IsZero() {
		reg.Set("stream.watermark_unix_seconds", float64(tot.Watermark.UnixNano())/1e9)
	}

	var bytes, legacy, grid, rows int64
	monitored := false
	for _, e := range r.engines {
		db := e.Monitor()
		if db == nil {
			continue
		}
		monitored = true
		fp := db.Footprint()
		bytes += fp.Bytes
		legacy += fp.LegacyBytes
		grid += int64(fp.GridSamples)
		rows += int64(fp.RowSamples)
	}
	if monitored {
		reg.Set("monitordb.series_bytes", float64(bytes))
		reg.Set("monitordb.series_bytes_legacy", float64(legacy))
		reg.Set("monitordb.grid_samples", float64(grid))
		reg.Set("monitordb.row_samples", float64(rows))
	}

	if len(r.detectors) == len(r.engines) {
		var dt detect.Totals
		missing := false
		for _, d := range r.detectors {
			if d == nil {
				missing = true
				break
			}
			t := d.Totals()
			dt.Raised += t.Raised
			dt.RaisedAnomaly += t.RaisedAnomaly
			dt.Confirmed += t.Confirmed
			dt.Expired += t.Expired
			dt.Active += t.Active
			dt.Machines += t.Machines
		}
		if !missing {
			reg.Set("detect.alerts_active", float64(dt.Active))
			reg.Set("detect.machines", float64(dt.Machines))
			if delta := dt.Raised - r.pubRaised; delta > 0 {
				reg.Add("detect.alerts_raised", delta)
				r.pubRaised = dt.Raised
			}
			if delta := dt.Confirmed + dt.Expired - r.pubClear; delta > 0 {
				reg.Add("detect.alerts_cleared", delta)
				r.pubClear = dt.Confirmed + dt.Expired
			}
			reg.Set("detect.alerts_confirmed", float64(dt.Confirmed))
			reg.Set("detect.alerts_expired", float64(dt.Expired))
			reg.Set("detect.alerts_raised_anomaly", float64(dt.RaisedAnomaly))
		}
	}
}

// Close stops the workers after draining the queues. Applies issued after
// Close fail; Close is idempotent.
func (r *Router) Close() {
	r.op.Lock()
	if r.closed {
		r.op.Unlock()
		return
	}
	r.closed = true
	for _, q := range r.queues {
		close(q)
	}
	r.op.Unlock()
	r.wg.Wait()
}
