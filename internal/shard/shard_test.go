package shard

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"failscope/internal/model"
	"failscope/internal/obs"
	"failscope/internal/stream"
)

var testEpoch = time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)

func testWindow() model.Window {
	return model.Window{Start: testEpoch, End: testEpoch.Add(8 * 7 * 24 * time.Hour)}
}

// newEngines builds n shard engines over the shared test window, labeled
// the way the daemon labels them (so gauge families cannot collide even
// when the engines share a registry).
func newEngines(t *testing.T, n int) []*stream.Engine {
	t.Helper()
	engines := make([]*stream.Engine, n)
	for i := range engines {
		cfg := stream.Config{Observation: testWindow()}
		if n > 1 {
			cfg.GaugeLabel = fmt.Sprint(i)
		}
		eng, err := stream.NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = eng
	}
	return engines
}

func newRouter(t *testing.T, n int, opts Options) *Router {
	t.Helper()
	opts.Engines = newEngines(t, n)
	r, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func mkMachine(i int) stream.Event {
	kind := model.PM
	if i%2 == 1 {
		kind = model.VM
	}
	return stream.Event{Type: "machine", Machine: &model.Machine{
		ID:      model.MachineID(fmt.Sprintf("m-%03d", i)),
		Kind:    kind,
		System:  model.System(i%model.NumSystems + 1),
		Created: testEpoch,
	}}
}

func mkTicket(seq, machine int, at time.Time) stream.Event {
	return stream.Event{Type: "ticket", Ticket: &model.Ticket{
		ID:       fmt.Sprintf("t-%04d", seq),
		ServerID: model.MachineID(fmt.Sprintf("m-%03d", machine)),
		System:   model.System(machine%model.NumSystems + 1),
		Opened:   at,
		Closed:   at.Add(2 * time.Hour),
		IsCrash:  seq%3 == 0,
		Class:    model.FailureClass(seq%6 + 1),
	}}
}

func mkAdvance(at time.Time) stream.Event {
	t := at
	return stream.Event{Type: "advance", Time: &t}
}

// synthStream is a small deterministic fleet: nMachines inventory events
// followed by tickets sweeping the window in time order, with a trailing
// advance so every watermark lands on the same instant.
func synthStream(nMachines, nTickets int) []stream.Event {
	events := make([]stream.Event, 0, nMachines+nTickets+1)
	for i := 0; i < nMachines; i++ {
		events = append(events, mkMachine(i))
	}
	span := testWindow().Duration() - 48*time.Hour
	for s := 0; s < nTickets; s++ {
		at := testEpoch.Add(time.Duration(int64(span) / int64(nTickets) * int64(s)))
		events = append(events, mkTicket(s, s%nMachines, at))
	}
	events = append(events, mkAdvance(testWindow().End.Add(-time.Hour)))
	return events
}

func TestShardOfStableEmptyKeyAndSpread(t *testing.T) {
	r := newRouter(t, 4, Options{})
	if got := r.shardOf(""); got != 0 {
		t.Errorf("empty key routed to shard %d, want 0", got)
	}
	used := map[int]bool{}
	for i := 0; i < 100; i++ {
		key := model.MachineID(fmt.Sprintf("m-%03d", i))
		s := r.shardOf(key)
		if s < 0 || s >= 4 {
			t.Fatalf("shardOf(%q) = %d out of range", key, s)
		}
		if again := r.shardOf(key); again != s {
			t.Fatalf("shardOf(%q) unstable: %d then %d", key, s, again)
		}
		used[s] = true
	}
	if len(used) < 3 {
		t.Errorf("100 keys landed on only %d of 4 shards", len(used))
	}
}

// TestMachineOwnershipDisjoint proves the broadcast/ownership invariant:
// every machine is counted by exactly one shard, so the per-shard owned
// counts sum to the fleet size while every shard can still resolve every
// machine's kind (via its replica inventory).
func TestMachineOwnershipDisjoint(t *testing.T) {
	r := newRouter(t, 4, Options{})
	const fleet = 60
	events := make([]stream.Event, 0, fleet)
	for i := 0; i < fleet; i++ {
		events = append(events, mkMachine(i))
	}
	if err := r.Apply(events); err != nil {
		t.Fatal(err)
	}
	owned := 0
	for _, e := range r.Engines() {
		n := e.Totals().Machines
		if n == fleet {
			t.Errorf("one shard owns the whole fleet; broadcast should split ownership")
		}
		owned += n
	}
	if owned != fleet {
		t.Errorf("per-shard owned machines sum to %d, want %d", owned, fleet)
	}
	if snap := r.Snapshot(); snap.Machines != fleet {
		t.Errorf("merged snapshot Machines = %d, want %d", snap.Machines, fleet)
	}
}

// TestRouterMatchesSingleEngine applies the identical synthetic stream to
// a passthrough router and a 3-shard router, in the same uneven chunks,
// and requires the merged read surface to match the single engine: the
// sequence, the headline counters, and every count-derived report section
// bit for bit.
func TestRouterMatchesSingleEngine(t *testing.T) {
	events := synthStream(40, 600)
	single := Single(newEngines(t, 1)[0])
	sharded := newRouter(t, 3, Options{})

	sizes := []int{7, 150, 1, 300, len(events)} // uneven; last takes the rest
	lo := 0
	for _, size := range sizes {
		hi := lo + size
		if hi > len(events) {
			hi = len(events)
		}
		for _, r := range []*Router{single, sharded} {
			if err := r.Apply(events[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
		lo = hi
	}

	if single.Seq() != sharded.Seq() {
		t.Errorf("Seq: single %d, sharded %d", single.Seq(), sharded.Seq())
	}
	want, got := single.Snapshot(), sharded.Snapshot()
	if got.Events != want.Events || got.Tickets != want.Tickets ||
		got.CrashTickets != want.CrashTickets || got.Machines != want.Machines {
		t.Errorf("counters diverged: got {ev %d tk %d crash %d m %d}, want {ev %d tk %d crash %d m %d}",
			got.Events, got.Tickets, got.CrashTickets, got.Machines,
			want.Events, want.Tickets, want.CrashTickets, want.Machines)
	}
	if !got.Watermark.Equal(want.Watermark) {
		t.Errorf("watermark: got %v, want %v", got.Watermark, want.Watermark)
	}
	if !reflect.DeepEqual(got.Report.DatasetStats, want.Report.DatasetStats) {
		t.Errorf("DatasetStats diverged:\n got %+v\nwant %+v", got.Report.DatasetStats, want.Report.DatasetStats)
	}
	if !reflect.DeepEqual(got.Report.ClassDistribution, want.Report.ClassDistribution) {
		t.Errorf("ClassDistribution diverged:\n got %+v\nwant %+v",
			got.Report.ClassDistribution, want.Report.ClassDistribution)
	}
	if !reflect.DeepEqual(got.Report.WeeklyRates, want.Report.WeeklyRates) {
		t.Errorf("WeeklyRates diverged:\n got %+v\nwant %+v", got.Report.WeeklyRates, want.Report.WeeklyRates)
	}
	if !reflect.DeepEqual(got.Report.RecurrencePM, want.Report.RecurrencePM) {
		t.Errorf("RecurrencePM diverged:\n got %+v\nwant %+v", got.Report.RecurrencePM, want.Report.RecurrencePM)
	}
	if !reflect.DeepEqual(got.Report.RecurrenceVM, want.Report.RecurrenceVM) {
		t.Errorf("RecurrenceVM diverged:\n got %+v\nwant %+v", got.Report.RecurrenceVM, want.Report.RecurrenceVM)
	}
}

// TestConcurrentPostersWithTinyQueues drives a 4-shard router with
// QueueLen 1 from many goroutines at once: full queues must block (never
// drop, never panic), and the fleet totals must come out exact.
func TestConcurrentPostersWithTinyQueues(t *testing.T) {
	r := newRouter(t, 4, Options{QueueLen: 1})
	const fleet = 32
	inventory := make([]stream.Event, 0, fleet)
	for i := 0; i < fleet; i++ {
		inventory = append(inventory, mkMachine(i))
	}
	if err := r.Apply(inventory); err != nil {
		t.Fatal(err)
	}

	const posters, batches, perBatch = 8, 20, 25
	var wg sync.WaitGroup
	errs := make(chan error, posters)
	for p := 0; p < posters; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				events := make([]stream.Event, 0, perBatch)
				for k := 0; k < perBatch; k++ {
					seq := (p*batches+b)*perBatch + k
					at := testEpoch.Add(time.Duration(seq) * time.Minute)
					events = append(events, mkTicket(seq, seq%fleet, at))
				}
				if err := r.Apply(events); err != nil {
					errs <- err
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	wantEvents := int64(fleet + posters*batches*perBatch)
	if got := r.Seq(); got != wantEvents {
		t.Errorf("Seq = %d, want %d", got, wantEvents)
	}
	if snap := r.Snapshot(); snap.Tickets != int64(posters*batches*perBatch) {
		t.Errorf("Tickets = %d, want %d", snap.Tickets, posters*batches*perBatch)
	}
}

func TestApplyAfterCloseFails(t *testing.T) {
	r := newRouter(t, 2, Options{})
	r.Close()
	r.Close() // idempotent
	if err := r.Apply(synthStream(2, 2)); err == nil {
		t.Error("Apply after Close succeeded, want error")
	}
}

// TestPublishAggregates checks the scrape-time metric contract: per-shard
// labeled shard.events counters sum to the fleet event count, the
// unlabeled stream.* gauges carry the aggregate, and re-publishing without
// new traffic does not double-count the deltas.
func TestPublishAggregates(t *testing.T) {
	reg := obs.NewRegistry()
	r := newRouter(t, 4, Options{Registry: reg})
	events := synthStream(40, 400)
	if err := r.Apply(events); err != nil {
		t.Fatal(err)
	}

	r.Publish(reg)
	r.Publish(reg) // second scrape: deltas must be zero
	snap := reg.Snapshot()

	var perShard float64
	for i := 0; i < 4; i++ {
		perShard += snap[fmt.Sprintf(`shard.events{shard="%d"}`, i)]
		if _, ok := snap[fmt.Sprintf(`shard.queue_depth{shard="%d"}`, i)]; !ok {
			t.Errorf("missing shard.queue_depth gauge for shard %d", i)
		}
	}
	want := float64(len(events))
	if perShard != want {
		t.Errorf("sum of shard.events = %g, want %g", perShard, want)
	}
	if snap["stream.events"] != want {
		t.Errorf("stream.events aggregate = %g, want %g", snap["stream.events"], want)
	}
	if snap["stream.machines"] != 40 {
		t.Errorf("stream.machines aggregate = %g, want 40", snap["stream.machines"])
	}
}

// TestSinglePassthroughPublishesNothing pins the back-compat contract: a
// one-engine router adds no shard.* families and leaves the stream.*
// surface to its engine, exactly as before sharding.
func TestSinglePassthroughPublishesNothing(t *testing.T) {
	reg := obs.NewRegistry()
	r := Single(newEngines(t, 1)[0])
	if err := r.Apply(synthStream(4, 10)); err != nil {
		t.Fatal(err)
	}
	r.Publish(reg)
	if snap := reg.Snapshot(); len(snap) != 0 {
		t.Errorf("passthrough Publish wrote %d metrics, want 0: %v", len(snap), snap)
	}
	if r.Shards() != 1 {
		t.Errorf("Shards = %d, want 1", r.Shards())
	}
}
