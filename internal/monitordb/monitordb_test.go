package monitordb

import (
	"testing"
	"testing/quick"
	"time"

	"failscope/internal/model"
	"failscope/internal/xrand"
)

var (
	epoch  = time.Date(2011, 7, 1, 0, 0, 0, 0, time.UTC)
	obsWin = model.Window{
		Start: time.Date(2012, 7, 1, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2013, 7, 1, 0, 0, 0, 0, time.UTC),
	}
)

func newDB() *DB { return New(epoch, 2*365*24*time.Hour) }

func TestAddAndAverage(t *testing.T) {
	db := newDB()
	id := model.MachineID("m1")
	for i := 0; i < 10; i++ {
		db.Add(id, MetricCPUUtil, Sample{Time: obsWin.Start.Add(time.Duration(i) * 24 * time.Hour), Value: float64(i)})
	}
	avg, ok := db.Average(id, MetricCPUUtil, obsWin)
	if !ok || avg != 4.5 {
		t.Fatalf("Average = %v, %v", avg, ok)
	}
	if _, ok := db.Average(id, MetricMemUtil, obsWin); ok {
		t.Fatal("Average on empty series reported ok")
	}
	if _, ok := db.Average("nope", MetricCPUUtil, obsWin); ok {
		t.Fatal("Average on unknown machine reported ok")
	}
}

func TestRetentionDropsOutOfRange(t *testing.T) {
	db := newDB()
	id := model.MachineID("m1")
	db.Add(id, MetricCPUUtil, Sample{Time: epoch.Add(-time.Hour), Value: 1})
	db.Add(id, MetricCPUUtil, Sample{Time: epoch.Add(3 * 365 * 24 * time.Hour), Value: 1})
	if _, ok := db.FirstSeen(id); ok {
		t.Fatal("out-of-retention samples were stored")
	}
}

func TestFirstSeen(t *testing.T) {
	db := newDB()
	id := model.MachineID("m1")
	late := obsWin.Start.Add(100 * 24 * time.Hour)
	early := obsWin.Start.Add(10 * 24 * time.Hour)
	db.Add(id, MetricCPUUtil, Sample{Time: late, Value: 1})
	db.Add(id, MetricMemUtil, Sample{Time: early, Value: 1})
	first, ok := db.FirstSeen(id)
	if !ok || !first.Equal(early) {
		t.Fatalf("FirstSeen = %v, %v", first, ok)
	}
}

func TestRollupConsistency(t *testing.T) {
	// Property: the average of rollup-bucket means weighted by bucket
	// sample count equals the overall average.
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		db := newDB()
		id := model.MachineID("m")
		n := 50 + r.Intn(100)
		var sum float64
		for i := 0; i < n; i++ {
			v := r.Float64() * 100
			sum += v
			at := obsWin.Start.Add(time.Duration(r.Intn(90*24)) * time.Hour)
			db.Add(id, MetricCPUUtil, Sample{Time: at, Value: v})
		}
		want := sum / float64(n)
		buckets := db.Rollup(id, MetricCPUUtil, obsWin, 7*24*time.Hour)
		// Weighted mean of buckets: recompute weights via Samples.
		var wsum, wtotal float64
		for _, b := range buckets {
			w := model.Window{Start: b.Time, End: b.Time.Add(7 * 24 * time.Hour)}
			cnt := len(db.Samples(id, MetricCPUUtil, w))
			wsum += b.Value * float64(cnt)
			wtotal += float64(cnt)
		}
		if wtotal == 0 {
			return false
		}
		got := wsum / wtotal
		return got > want-1e-9 && got < want+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRollupEmptyAndInvalid(t *testing.T) {
	db := newDB()
	if got := db.Rollup("m", MetricCPUUtil, obsWin, time.Hour); got != nil {
		t.Errorf("rollup of empty series: %v", got)
	}
	db.Add("m", MetricCPUUtil, Sample{Time: obsWin.Start, Value: 1})
	if got := db.Rollup("m", MetricCPUUtil, obsWin, 0); got != nil {
		t.Errorf("rollup with zero bucket: %v", got)
	}
}

func TestSamplesSortedAndWindowed(t *testing.T) {
	db := newDB()
	id := model.MachineID("m")
	times := []time.Duration{72, 24, 48}
	for _, h := range times {
		db.Add(id, MetricNetKbps, Sample{Time: obsWin.Start.Add(h * time.Hour), Value: float64(h)})
	}
	db.Add(id, MetricNetKbps, Sample{Time: obsWin.End.Add(time.Hour), Value: 999})
	got := db.Samples(id, MetricNetKbps, obsWin)
	if len(got) != 3 {
		t.Fatalf("got %d samples", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time.Before(got[i-1].Time) {
			t.Fatal("samples not sorted")
		}
	}
}

func TestOnOffCount(t *testing.T) {
	db := newDB()
	id := model.MachineID("vm")
	base := obsWin.Start
	// off at +1h, on at +2h  -> one off→on transition
	db.AddPowerEvent(id, PowerEvent{Time: base.Add(1 * time.Hour), On: false})
	db.AddPowerEvent(id, PowerEvent{Time: base.Add(2 * time.Hour), On: true})
	// off at +3h, on at +3h05 (same 15-min slot as the off? different slots)
	db.AddPowerEvent(id, PowerEvent{Time: base.Add(3 * time.Hour), On: false})
	db.AddPowerEvent(id, PowerEvent{Time: base.Add(3*time.Hour + 5*time.Minute), On: true})
	if got := db.OnOffCount(id, obsWin); got != 2 {
		t.Fatalf("OnOffCount = %d, want 2", got)
	}
}

func TestOnOffCountQuantization(t *testing.T) {
	db := newDB()
	id := model.MachineID("vm")
	base := obsWin.Start.Add(10 * time.Hour)
	// Two full off/on cycles inside one 15-minute slot look like one.
	db.AddPowerEvent(id, PowerEvent{Time: base, On: false})
	db.AddPowerEvent(id, PowerEvent{Time: base.Add(2 * time.Minute), On: true})
	db.AddPowerEvent(id, PowerEvent{Time: base.Add(4 * time.Minute), On: false})
	db.AddPowerEvent(id, PowerEvent{Time: base.Add(6 * time.Minute), On: true})
	if got := db.OnOffCount(id, obsWin); got != 1 {
		t.Fatalf("OnOffCount = %d, want 1 (15-min screening)", got)
	}
}

func TestOnOffCountWindowEdges(t *testing.T) {
	db := newDB()
	id := model.MachineID("vm")
	// Transition before the window sets the state; the on inside counts.
	db.AddPowerEvent(id, PowerEvent{Time: obsWin.Start.Add(-24 * time.Hour), On: false})
	db.AddPowerEvent(id, PowerEvent{Time: obsWin.Start.Add(time.Hour), On: true})
	w := model.Window{Start: obsWin.Start, End: obsWin.Start.Add(48 * time.Hour)}
	if got := db.OnOffCount(id, w); got != 1 {
		t.Fatalf("OnOffCount = %d, want 1", got)
	}
	if got := db.OnOffCount("unknown", w); got != 0 {
		t.Fatalf("OnOffCount(unknown) = %d", got)
	}
}

func TestPlacementAndConsolidation(t *testing.T) {
	db := newDB()
	month := time.Date(2012, 9, 1, 0, 0, 0, 0, time.UTC)
	db.SetPlacement("vm-1", "box-1", month)
	db.SetPlacement("vm-2", "box-1", month)
	db.SetPlacement("vm-3", "box-2", month)

	if host, ok := db.HostOf("vm-1", month.Add(5*24*time.Hour)); !ok || host != "box-1" {
		t.Fatalf("HostOf = %v, %v", host, ok)
	}
	if lvl, ok := db.ConsolidationLevel("vm-1", month); !ok || lvl != 2 {
		t.Fatalf("ConsolidationLevel = %d, %v", lvl, ok)
	}
	if lvl, ok := db.ConsolidationLevel("vm-3", month); !ok || lvl != 1 {
		t.Fatalf("ConsolidationLevel(vm-3) = %d, %v", lvl, ok)
	}
	if _, ok := db.ConsolidationLevel("vm-1", month.AddDate(0, 1, 0)); ok {
		t.Fatal("consolidation for month without placement reported ok")
	}
}

func TestPlacementUpdateMaintainsCounts(t *testing.T) {
	db := newDB()
	month := time.Date(2012, 9, 15, 0, 0, 0, 0, time.UTC) // mid-month input
	db.SetPlacement("vm-1", "box-1", month)
	db.SetPlacement("vm-2", "box-1", month)
	// Migrate vm-1 within the same month: box-1 count must drop to 1.
	db.SetPlacement("vm-1", "box-2", month)
	if lvl, _ := db.ConsolidationLevel("vm-2", month); lvl != 1 {
		t.Fatalf("after migration box-1 level = %d, want 1", lvl)
	}
	if lvl, _ := db.ConsolidationLevel("vm-1", month); lvl != 1 {
		t.Fatalf("after migration box-2 level = %d, want 1", lvl)
	}
}

func TestAvgConsolidation(t *testing.T) {
	db := newDB()
	m1 := time.Date(2012, 8, 1, 0, 0, 0, 0, time.UTC)
	m2 := time.Date(2012, 9, 1, 0, 0, 0, 0, time.UTC)
	db.SetPlacement("vm-1", "box-1", m1)
	db.SetPlacement("vm-2", "box-1", m1)
	db.SetPlacement("vm-1", "box-1", m2) // alone in month 2
	avg, ok := db.AvgConsolidation("vm-1", obsWin)
	if !ok || avg != 1.5 {
		t.Fatalf("AvgConsolidation = %v, %v, want 1.5", avg, ok)
	}
	if _, ok := db.AvgConsolidation("vm-x", obsWin); ok {
		t.Fatal("AvgConsolidation for unknown VM reported ok")
	}
}

func TestMachinesList(t *testing.T) {
	db := newDB()
	db.Add("b", MetricCPUUtil, Sample{Time: obsWin.Start, Value: 1})
	db.Add("a", MetricCPUUtil, Sample{Time: obsWin.Start, Value: 1})
	got := db.Machines()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Machines = %v", got)
	}
}

func TestMetricStrings(t *testing.T) {
	if MetricCPUUtil.String() != "cpu_util" || Metric(99).String() == "" {
		t.Error("metric strings wrong")
	}
	if len(Metrics()) != 4 {
		t.Errorf("Metrics() = %d", len(Metrics()))
	}
}
