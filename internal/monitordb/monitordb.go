// Package monitordb simulates the server resource-monitoring database of
// §III.A: per-machine usage time series recorded at multiple granularities
// (15 min up to monthly) over a two-year retention window, VM placement
// snapshots (consolidation), and power-state transitions from which on/off
// frequencies are screened at 15-minute granularity.
//
// The store is deliberately shaped like the real systems the paper mined
// (HP OpenView / IBM Tivoli Monitoring): writers push samples at a native
// resolution; readers query averages and rollups over windows, the earliest
// record for a machine (which the paper uses as the VM creation date), and
// the placement table. Series are held columnar (see columnar.go): an
// implicit time grid plus value column instead of per-sample structs, so a
// paper-scale year of fixed-cadence telemetry fits in a quarter of the
// memory and window queries index arithmetically.
package monitordb

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"failscope/internal/model"
	"failscope/internal/obs"
	"failscope/internal/par"
)

// Metric identifies one monitored quantity.
type Metric int

// Monitored metrics. Utilizations are percentages in [0, 100]; network is
// in Kbps (the unit of Fig. 8(d)).
const (
	MetricCPUUtil Metric = iota + 1
	MetricMemUtil
	MetricDiskUtil
	MetricNetKbps
)

// Metrics lists all usage metrics.
func Metrics() []Metric {
	return []Metric{MetricCPUUtil, MetricMemUtil, MetricDiskUtil, MetricNetKbps}
}

func (m Metric) String() string {
	switch m {
	case MetricCPUUtil:
		return "cpu_util"
	case MetricMemUtil:
		return "mem_util"
	case MetricDiskUtil:
		return "disk_util"
	case MetricNetKbps:
		return "net_kbps"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Sample is one time-stamped measurement. It is the store's interchange
// view: the columnar layout materializes Samples on demand rather than
// holding them.
type Sample struct {
	Time  time.Time
	Value float64
}

type seriesKey struct {
	id     model.MachineID
	metric Metric
}

// PowerEvent is a power-state transition of a VM.
type PowerEvent struct {
	Time time.Time
	On   bool
}

// DB is the in-memory monitoring database. It is safe for concurrent use.
type DB struct {
	mu        sync.RWMutex
	retention time.Duration
	series    map[seriesKey]*colSeries
	power     map[model.MachineID][]PowerEvent
	placement map[model.MachineID][]placementRecord
	// hostLoad counts VMs per (host, month); kept in sync with placement
	// so consolidation queries are O(1).
	hostLoad  map[hostMonthKey]int
	firstSeen map[model.MachineID]time.Time
	epoch     time.Time // birth of the database (never moves)
	// The acceptance window. Batch runs never call Advance, so it stays
	// fixed at [epoch, epoch+retention] — the historical truncation the
	// paper's databases exhibit. A live consumer calls Advance(now) as its
	// clock moves, which slides the window to [now-retention, now] and
	// evicts records that fell off the trailing edge.
	windowStart time.Time
	windowEnd   time.Time

	// metrics, when instrumented, counts writes under "monitordb.*". A nil
	// registry (the default) makes every count a no-op; counters are
	// atomic, so workers increment without taking db.mu.
	metrics *obs.Registry
	// log, when instrumented, records drop decisions (samples and events
	// truncated outside the retention window). Nil is a full no-op.
	log *obs.Logger
}

// Instrument attaches a metrics registry: subsequent writes count samples
// (accepted and dropped), power events and placement steps, and rollup
// queries count bucket computations. Passing nil detaches.
func (db *DB) Instrument(reg *obs.Registry) {
	db.mu.Lock()
	db.metrics = reg
	db.mu.Unlock()
}

// SetLogger attaches a structured logger: subsequent writes log every
// retention-window drop decision at debug level. Passing nil detaches.
func (db *DB) SetLogger(l *obs.Logger) {
	db.mu.Lock()
	db.log = l
	db.mu.Unlock()
}

// registry returns the attached registry (possibly nil) without holding
// the caller to a lock ordering: reads of the field take the read lock.
func (db *DB) registry() *obs.Registry {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.metrics
}

type hostMonthKey struct {
	host  model.MachineID
	month time.Time
}

type placementRecord struct {
	month time.Time // first day of month, UTC
	host  model.MachineID
}

// New creates a database whose records begin at epoch and are retained for
// the given duration (the paper's monitoring DBs keep two years).
func New(epoch time.Time, retention time.Duration) *DB {
	return &DB{
		retention:   retention,
		series:      make(map[seriesKey]*colSeries),
		power:       make(map[model.MachineID][]PowerEvent),
		placement:   make(map[model.MachineID][]placementRecord),
		hostLoad:    make(map[hostMonthKey]int),
		firstSeen:   make(map[model.MachineID]time.Time),
		epoch:       epoch,
		windowStart: epoch,
		windowEnd:   epoch.Add(retention),
	}
}

// Epoch returns the earliest observable record time; a machine whose first
// record coincides with the epoch may predate the database (§III.B).
func (db *DB) Epoch() time.Time { return db.epoch }

// outsideWindowLocked reports whether a record at t falls outside the
// current acceptance window.
func (db *DB) outsideWindowLocked(t time.Time) bool {
	return t.Before(db.windowStart) || t.After(db.windowEnd)
}

// seriesLocked returns the series for k, creating it on first write.
func (db *DB) seriesLocked(k seriesKey) *colSeries {
	s := db.series[k]
	if s == nil {
		s = &colSeries{}
		db.series[k] = s
	}
	return s
}

// sampleTime materializes a grid or row timestamp. Stored instants are UTC
// wall-clock nanoseconds; the reconstructed time carries the UTC location
// the generators and codec write.
func sampleTime(nanos int64) time.Time {
	return time.Unix(0, nanos).UTC()
}

// Add appends a usage sample. Samples outside the acceptance window are
// silently dropped, mirroring the real databases' truncation.
func (db *DB) Add(id model.MachineID, metric Metric, s Sample) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.outsideWindowLocked(s.Time) {
		return
	}
	db.seriesLocked(seriesKey{id, metric}).add(s.Time.UnixNano(), s.Value)
	db.noteSeenLocked(id, s.Time)
	db.metrics.Add("monitordb.samples", 1)
}

func (db *DB) noteSeenLocked(id model.MachineID, t time.Time) {
	if first, ok := db.firstSeen[id]; !ok || t.Before(first) {
		db.firstSeen[id] = t
	}
}

// AddSeries appends a batch of usage samples to one series under a single
// lock acquisition — the bulk-write path for parallel generators. Samples
// outside the retention window are dropped exactly as Add drops them.
func (db *DB) AddSeries(id model.MachineID, metric Metric, samples []Sample) {
	if len(samples) == 0 {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	col := db.seriesLocked(seriesKey{id, metric})
	// Presize for the batch so the add loop lands in one backing array
	// instead of doubling through several. Both reservations are
	// capacity-only: sample routing (grid vs. rows) and detection timing
	// are byte-identical with or without them.
	if col.stride == 0 {
		col.reserveRows(len(samples))
	} else {
		maxT, n := int64(0), 0
		for _, s := range samples {
			if db.outsideWindowLocked(s.Time) {
				continue
			}
			if t := s.Time.UnixNano(); n == 0 || t > maxT {
				maxT = t
			}
			n++
		}
		if n > 0 {
			col.reserveGrid(maxT, n)
		}
	}
	accepted := 0
	for _, s := range samples {
		if db.outsideWindowLocked(s.Time) {
			continue
		}
		col.add(s.Time.UnixNano(), s.Value)
		db.noteSeenLocked(id, s.Time)
		accepted++
	}
	col.trim()
	db.metrics.Add("monitordb.samples", int64(accepted))
	if dropped := len(samples) - accepted; dropped > 0 {
		db.metrics.Add("monitordb.samples_dropped", int64(dropped))
		db.log.Debug("monitoring samples dropped outside retention",
			"machine", string(id), "metric", metric.String(), "dropped", dropped, "accepted", accepted)
	}
}

// AddPowerEvent records a power-state transition.
func (db *DB) AddPowerEvent(id model.MachineID, ev PowerEvent) {
	db.AddPowerEvents(id, []PowerEvent{ev})
}

// AddPowerEvents records a batch of power-state transitions under a single
// lock acquisition.
func (db *DB) AddPowerEvents(id model.MachineID, events []PowerEvent) {
	if len(events) == 0 {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	accepted := 0
	for _, ev := range events {
		if db.outsideWindowLocked(ev.Time) {
			continue
		}
		db.power[id] = append(db.power[id], ev)
		db.noteSeenLocked(id, ev.Time)
		accepted++
	}
	db.metrics.Add("monitordb.power_events", int64(accepted))
}

// PlacementStep is one month's placement of a VM, for batch writes.
type PlacementStep struct {
	Host model.MachineID
	Time time.Time
}

// SetPlacement records that the VM resided on host during the month
// containing t.
func (db *DB) SetPlacement(vm, host model.MachineID, t time.Time) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.setPlacementLocked(vm, host, t)
}

// SetPlacements records a VM's placement schedule under a single lock
// acquisition.
func (db *DB) SetPlacements(vm model.MachineID, steps []PlacementStep) {
	if len(steps) == 0 {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, s := range steps {
		db.setPlacementLocked(vm, s.Host, s.Time)
	}
	db.metrics.Add("monitordb.placements", int64(len(steps)))
}

func (db *DB) setPlacementLocked(vm, host model.MachineID, t time.Time) {
	m := monthStart(t)
	recs := db.placement[vm]
	for i := range recs {
		if recs[i].month.Equal(m) {
			db.hostLoad[hostMonthKey{recs[i].host, m}]--
			recs[i].host = host
			db.hostLoad[hostMonthKey{host, m}]++
			return
		}
	}
	db.placement[vm] = append(recs, placementRecord{month: m, host: host})
	db.hostLoad[hostMonthKey{host, m}]++
	db.noteSeenLocked(vm, m)
}

func monthStart(t time.Time) time.Time {
	y, m, _ := t.UTC().Date()
	return time.Date(y, m, 1, 0, 0, 0, 0, time.UTC)
}

// FirstSeen returns the earliest record for the machine; ok is false when
// the machine never appears in the database.
func (db *DB) FirstSeen(id model.MachineID) (time.Time, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.firstSeen[id]
	return t, ok
}

// Samples returns the samples of one series inside the window, time-sorted.
func (db *DB) Samples(id model.MachineID, metric Metric, w model.Window) []Sample {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := db.series[seriesKey{id, metric}]
	if s == nil {
		return nil
	}
	var out []Sample
	s.eachIn(w.Start.UnixNano(), w.End.UnixNano(), func(t int64, v float64) {
		out = append(out, Sample{Time: sampleTime(t), Value: v})
	})
	return out
}

// Average returns the mean of a series over the window; ok is false when
// the series has no samples there.
func (db *DB) Average(id model.MachineID, metric Metric, w model.Window) (float64, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := db.series[seriesKey{id, metric}]
	if s == nil {
		return 0, false
	}
	sum, n := 0.0, 0
	s.eachIn(w.Start.UnixNano(), w.End.UnixNano(), func(_ int64, v float64) {
		sum += v
		n++
	})
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// Rollup aggregates a series into buckets of the given width over the
// window, returning the per-bucket averages (empty buckets are skipped).
// This is the hourly/daily/weekly/monthly view of §III.A. Bucket membership
// is index arithmetic on the columnar grid — no per-sample search.
func (db *DB) Rollup(id model.MachineID, metric Metric, w model.Window, bucket time.Duration) []Sample {
	if bucket <= 0 {
		return nil
	}
	db.mu.RLock()
	s := db.series[seriesKey{id, metric}]
	if s == nil {
		db.mu.RUnlock()
		return nil
	}
	type acc struct {
		sum float64
		n   int
	}
	startN := w.Start.UnixNano()
	bucketN := int64(bucket)
	buckets := make(map[int64]*acc)
	s.eachIn(startN, w.End.UnixNano(), func(t int64, v float64) {
		idx := (t - startN) / bucketN
		a := buckets[idx]
		if a == nil {
			a = &acc{}
			buckets[idx] = a
		}
		a.sum += v
		a.n++
	})
	db.mu.RUnlock()
	if len(buckets) == 0 {
		return nil
	}
	idxs := make([]int64, 0, len(buckets))
	for i := range buckets {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	out := make([]Sample, 0, len(idxs))
	for _, i := range idxs {
		a := buckets[i]
		out = append(out, Sample{
			Time:  w.Start.Add(time.Duration(i) * bucket),
			Value: a.sum / float64(a.n),
		})
	}
	return out
}

// OnOffCount screens the power log at 15-minute granularity over the
// window and returns the number of off→on transitions detected, mimicking
// the paper's use of 15-min usage data to track VM on/off (§III.B). Two
// transitions inside one 15-minute slot are indistinguishable and count
// once, exactly as they would be in the sampled data.
func (db *DB) OnOffCount(id model.MachineID, w model.Window) int {
	db.mu.RLock()
	events := append([]PowerEvent(nil), db.power[id]...)
	db.mu.RUnlock()
	sort.Slice(events, func(i, j int) bool { return events[i].Time.Before(events[j].Time) })

	const slot = 15 * time.Minute
	count := 0
	lastState := true // machines start powered on unless the log says otherwise
	lastSlot := int64(-1)
	for _, ev := range events {
		if ev.Time.Before(w.Start) {
			lastState = ev.On
			continue
		}
		if !ev.Time.Before(w.End) {
			break
		}
		slotIdx := int64(ev.Time.Sub(w.Start) / slot)
		if ev.On && !lastState && slotIdx != lastSlot {
			count++
			lastSlot = slotIdx
		}
		lastState = ev.On
	}
	return count
}

// HostOf returns the VM's host during the month containing t.
func (db *DB) HostOf(vm model.MachineID, t time.Time) (model.MachineID, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	m := monthStart(t)
	for _, rec := range db.placement[vm] {
		if rec.month.Equal(m) {
			return rec.host, true
		}
	}
	return "", false
}

// ConsolidationLevel returns the number of VMs (including vm itself) that
// shared vm's host during the month containing t; ok is false when the VM
// has no placement record for that month.
func (db *DB) ConsolidationLevel(vm model.MachineID, t time.Time) (int, bool) {
	host, ok := db.HostOf(vm, t)
	if !ok {
		return 0, false
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.hostLoad[hostMonthKey{host, monthStart(t)}], true
}

// AvgConsolidation returns the VM's average monthly consolidation level
// over the window (§VI.A), and false when no placement records exist.
func (db *DB) AvgConsolidation(vm model.MachineID, w model.Window) (float64, bool) {
	db.mu.RLock()
	recs := append([]placementRecord(nil), db.placement[vm]...)
	db.mu.RUnlock()
	sum, n := 0.0, 0
	for _, rec := range recs {
		if rec.month.Before(w.Start) || !rec.month.Before(w.End) {
			continue
		}
		if lvl, ok := db.ConsolidationLevel(vm, rec.month); ok {
			sum += float64(lvl)
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// RollupAll computes the bucketed rollup of one metric for every machine in
// the database over the window, sharding machines across
// par.Workers(parallelism) goroutines (readers only take the shared read
// lock). Machines without samples in the window are omitted. This is the
// multi-granularity fleet view of §III.A at scale.
func (db *DB) RollupAll(metric Metric, w model.Window, bucket time.Duration, parallelism int) map[model.MachineID][]Sample {
	ids := db.Machines()
	rollups := make([][]Sample, len(ids))
	par.ForEach(parallelism, len(ids), func(i int) {
		rollups[i] = db.Rollup(ids[i], metric, w, bucket)
	})
	db.registry().Add("monitordb.rollups", int64(len(ids)))
	out := make(map[model.MachineID][]Sample, len(ids))
	for i, id := range ids {
		if len(rollups[i]) > 0 {
			out[id] = rollups[i]
		}
	}
	return out
}

// Window returns the current acceptance window: [start, end] inclusive.
// Fixed at [epoch, epoch+retention] until the first Advance call.
func (db *DB) Window() (start, end time.Time) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.windowStart, db.windowEnd
}

// Advance moves the live edge of the acceptance window to now and evicts
// every record that fell off the trailing edge (now - retention), so a
// long-running database holds at most one retention period of data instead
// of growing without bound. Returns the number of records evicted. Calls
// with now at or before the current window end are no-ops — the window
// only moves forward. First-seen times survive eviction: the paper reads
// them as machine creation dates, which outlive the samples they came from.
func (db *DB) Advance(now time.Time) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !now.After(db.windowEnd) {
		return 0
	}
	db.windowEnd = now
	start := now.Add(-db.retention)
	if start.Before(db.windowStart) {
		return 0 // window grew but nothing can have expired yet
	}
	db.windowStart = start
	startN := start.UnixNano()

	evicted := 0
	for k, s := range db.series {
		evicted += s.evictBefore(startN)
		if s.len() == 0 {
			delete(db.series, k)
		}
	}
	for id, events := range db.power {
		kept := events[:0]
		for _, ev := range events {
			if ev.Time.Before(start) {
				evicted++
			} else {
				kept = append(kept, ev)
			}
		}
		if len(kept) == 0 {
			delete(db.power, id)
		} else {
			db.power[id] = kept
		}
	}
	for vm, recs := range db.placement {
		kept := recs[:0]
		for _, rec := range recs {
			// A placement record covers its whole month; it expires only
			// once the month's last instant predates the window start.
			if rec.month.AddDate(0, 1, 0).Before(start) || rec.month.AddDate(0, 1, 0).Equal(start) {
				db.hostLoad[hostMonthKey{rec.host, rec.month}]--
				if db.hostLoad[hostMonthKey{rec.host, rec.month}] <= 0 {
					delete(db.hostLoad, hostMonthKey{rec.host, rec.month})
				}
				evicted++
			} else {
				kept = append(kept, rec)
			}
		}
		if len(kept) == 0 {
			delete(db.placement, vm)
		} else {
			db.placement[vm] = kept
		}
	}
	if evicted > 0 {
		db.metrics.Add("monitordb.evicted", int64(evicted))
		db.log.Debug("monitoring records evicted past retention",
			"window_start", start.Format(time.RFC3339), "evicted", evicted)
	}
	return evicted
}

// ForEachSeries calls fn for every (machine, metric) series in the same
// deterministic order Encode writes them (machines sorted, then metric,
// samples time-sorted). The slice passed to fn is a copy.
func (db *DB) ForEachSeries(fn func(id model.MachineID, metric Metric, samples []Sample)) {
	db.mu.RLock()
	keys := make([]seriesKey, 0, len(db.series))
	for k := range db.series {
		keys = append(keys, k)
	}
	db.mu.RUnlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].id != keys[j].id {
			return keys[i].id < keys[j].id
		}
		return keys[i].metric < keys[j].metric
	})
	for _, k := range keys {
		db.mu.RLock()
		var samples []Sample
		if s := db.series[k]; s != nil {
			samples = make([]Sample, 0, s.len())
			s.each(func(t int64, v float64) {
				samples = append(samples, Sample{Time: sampleTime(t), Value: v})
			})
		}
		db.mu.RUnlock()
		if len(samples) == 0 {
			continue
		}
		fn(k.id, k.metric, samples)
	}
}

// ForEachPower calls fn for every machine's power log, machines sorted and
// events time-sorted. The slice passed to fn is a copy.
func (db *DB) ForEachPower(fn func(id model.MachineID, events []PowerEvent)) {
	db.mu.RLock()
	ids := make([]model.MachineID, 0, len(db.power))
	for id := range db.power {
		ids = append(ids, id)
	}
	db.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		db.mu.RLock()
		events := append([]PowerEvent(nil), db.power[id]...)
		db.mu.RUnlock()
		sort.Slice(events, func(i, j int) bool { return events[i].Time.Before(events[j].Time) })
		fn(id, events)
	}
}

// ForEachPlacement calls fn for every VM's placement schedule, VMs sorted
// and months ascending.
func (db *DB) ForEachPlacement(fn func(vm model.MachineID, steps []PlacementStep)) {
	db.mu.RLock()
	vms := make([]model.MachineID, 0, len(db.placement))
	for id := range db.placement {
		vms = append(vms, id)
	}
	db.mu.RUnlock()
	sort.Slice(vms, func(i, j int) bool { return vms[i] < vms[j] })
	for _, id := range vms {
		db.mu.RLock()
		recs := append([]placementRecord(nil), db.placement[id]...)
		db.mu.RUnlock()
		sort.Slice(recs, func(i, j int) bool { return recs[i].month.Before(recs[j].month) })
		steps := make([]PlacementStep, len(recs))
		for i, rec := range recs {
			steps[i] = PlacementStep{Host: rec.host, Time: rec.month}
		}
		fn(id, steps)
	}
}

// Machines returns the IDs of all machines with at least one record.
func (db *DB) Machines() []model.MachineID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]model.MachineID, 0, len(db.firstSeen))
	for id := range db.firstSeen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
