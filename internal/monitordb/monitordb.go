// Package monitordb simulates the server resource-monitoring database of
// §III.A: per-machine usage time series recorded at multiple granularities
// (15 min up to monthly) over a two-year retention window, VM placement
// snapshots (consolidation), and power-state transitions from which on/off
// frequencies are screened at 15-minute granularity.
//
// The store is deliberately shaped like the real systems the paper mined
// (HP OpenView / IBM Tivoli Monitoring): writers push samples at a native
// resolution; readers query averages and rollups over windows, the earliest
// record for a machine (which the paper uses as the VM creation date), and
// the placement table.
package monitordb

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"failscope/internal/model"
	"failscope/internal/obs"
	"failscope/internal/par"
)

// Metric identifies one monitored quantity.
type Metric int

// Monitored metrics. Utilizations are percentages in [0, 100]; network is
// in Kbps (the unit of Fig. 8(d)).
const (
	MetricCPUUtil Metric = iota + 1
	MetricMemUtil
	MetricDiskUtil
	MetricNetKbps
)

// Metrics lists all usage metrics.
func Metrics() []Metric {
	return []Metric{MetricCPUUtil, MetricMemUtil, MetricDiskUtil, MetricNetKbps}
}

func (m Metric) String() string {
	switch m {
	case MetricCPUUtil:
		return "cpu_util"
	case MetricMemUtil:
		return "mem_util"
	case MetricDiskUtil:
		return "disk_util"
	case MetricNetKbps:
		return "net_kbps"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Sample is one time-stamped measurement.
type Sample struct {
	Time  time.Time
	Value float64
}

type seriesKey struct {
	id     model.MachineID
	metric Metric
}

// PowerEvent is a power-state transition of a VM.
type PowerEvent struct {
	Time time.Time
	On   bool
}

// DB is the in-memory monitoring database. It is safe for concurrent use.
type DB struct {
	mu        sync.RWMutex
	retention time.Duration
	series    map[seriesKey][]Sample
	power     map[model.MachineID][]PowerEvent
	placement map[model.MachineID][]placementRecord
	// hostLoad counts VMs per (host, month); kept in sync with placement
	// so consolidation queries are O(1).
	hostLoad  map[hostMonthKey]int
	firstSeen map[model.MachineID]time.Time
	epoch     time.Time // earliest observable record (start of retention)

	// metrics, when instrumented, counts writes under "monitordb.*". A nil
	// registry (the default) makes every count a no-op; counters are
	// atomic, so workers increment without taking db.mu.
	metrics *obs.Registry
	// log, when instrumented, records drop decisions (samples and events
	// truncated outside the retention window). Nil is a full no-op.
	log *obs.Logger
}

// Instrument attaches a metrics registry: subsequent writes count samples
// (accepted and dropped), power events and placement steps, and rollup
// queries count bucket computations. Passing nil detaches.
func (db *DB) Instrument(reg *obs.Registry) {
	db.mu.Lock()
	db.metrics = reg
	db.mu.Unlock()
}

// SetLogger attaches a structured logger: subsequent writes log every
// retention-window drop decision at debug level. Passing nil detaches.
func (db *DB) SetLogger(l *obs.Logger) {
	db.mu.Lock()
	db.log = l
	db.mu.Unlock()
}

// registry returns the attached registry (possibly nil) without holding
// the caller to a lock ordering: reads of the field take the read lock.
func (db *DB) registry() *obs.Registry {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.metrics
}

type hostMonthKey struct {
	host  model.MachineID
	month time.Time
}

type placementRecord struct {
	month time.Time // first day of month, UTC
	host  model.MachineID
}

// New creates a database whose records begin at epoch and are retained for
// the given duration (the paper's monitoring DBs keep two years).
func New(epoch time.Time, retention time.Duration) *DB {
	return &DB{
		retention: retention,
		series:    make(map[seriesKey][]Sample),
		power:     make(map[model.MachineID][]PowerEvent),
		placement: make(map[model.MachineID][]placementRecord),
		hostLoad:  make(map[hostMonthKey]int),
		firstSeen: make(map[model.MachineID]time.Time),
		epoch:     epoch,
	}
}

// Epoch returns the earliest observable record time; a machine whose first
// record coincides with the epoch may predate the database (§III.B).
func (db *DB) Epoch() time.Time { return db.epoch }

// Add appends a usage sample. Samples before the epoch or beyond retention
// are silently dropped, mirroring the real databases' truncation.
func (db *DB) Add(id model.MachineID, metric Metric, s Sample) {
	if s.Time.Before(db.epoch) || s.Time.After(db.epoch.Add(db.retention)) {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	k := seriesKey{id, metric}
	db.series[k] = append(db.series[k], s)
	db.noteSeenLocked(id, s.Time)
	db.metrics.Add("monitordb.samples", 1)
}

func (db *DB) noteSeenLocked(id model.MachineID, t time.Time) {
	if first, ok := db.firstSeen[id]; !ok || t.Before(first) {
		db.firstSeen[id] = t
	}
}

// AddSeries appends a batch of usage samples to one series under a single
// lock acquisition — the bulk-write path for parallel generators. Samples
// outside the retention window are dropped exactly as Add drops them.
func (db *DB) AddSeries(id model.MachineID, metric Metric, samples []Sample) {
	if len(samples) == 0 {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	k := seriesKey{id, metric}
	accepted := 0
	for _, s := range samples {
		if s.Time.Before(db.epoch) || s.Time.After(db.epoch.Add(db.retention)) {
			continue
		}
		db.series[k] = append(db.series[k], s)
		db.noteSeenLocked(id, s.Time)
		accepted++
	}
	db.metrics.Add("monitordb.samples", int64(accepted))
	if dropped := len(samples) - accepted; dropped > 0 {
		db.metrics.Add("monitordb.samples_dropped", int64(dropped))
		db.log.Debug("monitoring samples dropped outside retention",
			"machine", string(id), "metric", metric.String(), "dropped", dropped, "accepted", accepted)
	}
}

// AddPowerEvent records a power-state transition.
func (db *DB) AddPowerEvent(id model.MachineID, ev PowerEvent) {
	db.AddPowerEvents(id, []PowerEvent{ev})
}

// AddPowerEvents records a batch of power-state transitions under a single
// lock acquisition.
func (db *DB) AddPowerEvents(id model.MachineID, events []PowerEvent) {
	if len(events) == 0 {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	accepted := 0
	for _, ev := range events {
		if ev.Time.Before(db.epoch) || ev.Time.After(db.epoch.Add(db.retention)) {
			continue
		}
		db.power[id] = append(db.power[id], ev)
		db.noteSeenLocked(id, ev.Time)
		accepted++
	}
	db.metrics.Add("monitordb.power_events", int64(accepted))
}

// PlacementStep is one month's placement of a VM, for batch writes.
type PlacementStep struct {
	Host model.MachineID
	Time time.Time
}

// SetPlacement records that the VM resided on host during the month
// containing t.
func (db *DB) SetPlacement(vm, host model.MachineID, t time.Time) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.setPlacementLocked(vm, host, t)
}

// SetPlacements records a VM's placement schedule under a single lock
// acquisition.
func (db *DB) SetPlacements(vm model.MachineID, steps []PlacementStep) {
	if len(steps) == 0 {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, s := range steps {
		db.setPlacementLocked(vm, s.Host, s.Time)
	}
	db.metrics.Add("monitordb.placements", int64(len(steps)))
}

func (db *DB) setPlacementLocked(vm, host model.MachineID, t time.Time) {
	m := monthStart(t)
	recs := db.placement[vm]
	for i := range recs {
		if recs[i].month.Equal(m) {
			db.hostLoad[hostMonthKey{recs[i].host, m}]--
			recs[i].host = host
			db.hostLoad[hostMonthKey{host, m}]++
			return
		}
	}
	db.placement[vm] = append(recs, placementRecord{month: m, host: host})
	db.hostLoad[hostMonthKey{host, m}]++
	db.noteSeenLocked(vm, m)
}

func monthStart(t time.Time) time.Time {
	y, m, _ := t.UTC().Date()
	return time.Date(y, m, 1, 0, 0, 0, 0, time.UTC)
}

// FirstSeen returns the earliest record for the machine; ok is false when
// the machine never appears in the database.
func (db *DB) FirstSeen(id model.MachineID) (time.Time, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.firstSeen[id]
	return t, ok
}

// Samples returns the samples of one series inside the window, time-sorted.
func (db *DB) Samples(id model.MachineID, metric Metric, w model.Window) []Sample {
	db.mu.RLock()
	all := db.series[seriesKey{id, metric}]
	db.mu.RUnlock()
	sorted := append([]Sample(nil), all...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Time.Before(sorted[j].Time) })
	var out []Sample
	for _, s := range sorted {
		if w.Contains(s.Time) {
			out = append(out, s)
		}
	}
	return out
}

// Average returns the mean of a series over the window; ok is false when
// the series has no samples there.
func (db *DB) Average(id model.MachineID, metric Metric, w model.Window) (float64, bool) {
	samples := db.Samples(id, metric, w)
	if len(samples) == 0 {
		return 0, false
	}
	sum := 0.0
	for _, s := range samples {
		sum += s.Value
	}
	return sum / float64(len(samples)), true
}

// Rollup aggregates a series into buckets of the given width over the
// window, returning the per-bucket averages (empty buckets are skipped).
// This is the hourly/daily/weekly/monthly view of §III.A.
func (db *DB) Rollup(id model.MachineID, metric Metric, w model.Window, bucket time.Duration) []Sample {
	if bucket <= 0 {
		return nil
	}
	samples := db.Samples(id, metric, w)
	if len(samples) == 0 {
		return nil
	}
	type acc struct {
		sum float64
		n   int
	}
	buckets := make(map[int64]*acc)
	for _, s := range samples {
		idx := int64(s.Time.Sub(w.Start) / bucket)
		a := buckets[idx]
		if a == nil {
			a = &acc{}
			buckets[idx] = a
		}
		a.sum += s.Value
		a.n++
	}
	idxs := make([]int64, 0, len(buckets))
	for i := range buckets {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	out := make([]Sample, 0, len(idxs))
	for _, i := range idxs {
		a := buckets[i]
		out = append(out, Sample{
			Time:  w.Start.Add(time.Duration(i) * bucket),
			Value: a.sum / float64(a.n),
		})
	}
	return out
}

// OnOffCount screens the power log at 15-minute granularity over the
// window and returns the number of off→on transitions detected, mimicking
// the paper's use of 15-min usage data to track VM on/off (§III.B). Two
// transitions inside one 15-minute slot are indistinguishable and count
// once, exactly as they would be in the sampled data.
func (db *DB) OnOffCount(id model.MachineID, w model.Window) int {
	db.mu.RLock()
	events := append([]PowerEvent(nil), db.power[id]...)
	db.mu.RUnlock()
	sort.Slice(events, func(i, j int) bool { return events[i].Time.Before(events[j].Time) })

	const slot = 15 * time.Minute
	count := 0
	lastState := true // machines start powered on unless the log says otherwise
	lastSlot := int64(-1)
	for _, ev := range events {
		if ev.Time.Before(w.Start) {
			lastState = ev.On
			continue
		}
		if !ev.Time.Before(w.End) {
			break
		}
		slotIdx := int64(ev.Time.Sub(w.Start) / slot)
		if ev.On && !lastState && slotIdx != lastSlot {
			count++
			lastSlot = slotIdx
		}
		lastState = ev.On
	}
	return count
}

// HostOf returns the VM's host during the month containing t.
func (db *DB) HostOf(vm model.MachineID, t time.Time) (model.MachineID, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	m := monthStart(t)
	for _, rec := range db.placement[vm] {
		if rec.month.Equal(m) {
			return rec.host, true
		}
	}
	return "", false
}

// ConsolidationLevel returns the number of VMs (including vm itself) that
// shared vm's host during the month containing t; ok is false when the VM
// has no placement record for that month.
func (db *DB) ConsolidationLevel(vm model.MachineID, t time.Time) (int, bool) {
	host, ok := db.HostOf(vm, t)
	if !ok {
		return 0, false
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.hostLoad[hostMonthKey{host, monthStart(t)}], true
}

// AvgConsolidation returns the VM's average monthly consolidation level
// over the window (§VI.A), and false when no placement records exist.
func (db *DB) AvgConsolidation(vm model.MachineID, w model.Window) (float64, bool) {
	db.mu.RLock()
	recs := append([]placementRecord(nil), db.placement[vm]...)
	db.mu.RUnlock()
	sum, n := 0.0, 0
	for _, rec := range recs {
		if rec.month.Before(w.Start) || !rec.month.Before(w.End) {
			continue
		}
		if lvl, ok := db.ConsolidationLevel(vm, rec.month); ok {
			sum += float64(lvl)
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// RollupAll computes the bucketed rollup of one metric for every machine in
// the database over the window, sharding machines across
// par.Workers(parallelism) goroutines (readers only take the shared read
// lock). Machines without samples in the window are omitted. This is the
// multi-granularity fleet view of §III.A at scale.
func (db *DB) RollupAll(metric Metric, w model.Window, bucket time.Duration, parallelism int) map[model.MachineID][]Sample {
	ids := db.Machines()
	rollups := make([][]Sample, len(ids))
	par.ForEach(parallelism, len(ids), func(i int) {
		rollups[i] = db.Rollup(ids[i], metric, w, bucket)
	})
	db.registry().Add("monitordb.rollups", int64(len(ids)))
	out := make(map[model.MachineID][]Sample, len(ids))
	for i, id := range ids {
		if len(rollups[i]) > 0 {
			out[id] = rollups[i]
		}
	}
	return out
}

// Machines returns the IDs of all machines with at least one record.
func (db *DB) Machines() []model.MachineID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]model.MachineID, 0, len(db.firstSeen))
	for id := range db.firstSeen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
