package monitordb

import (
	"sync"
	"testing"
	"time"

	"failscope/internal/model"
)

// TestConcurrentUse exercises the database under parallel writers and
// readers; run with -race to verify the locking.
func TestConcurrentUse(t *testing.T) {
	db := newDB()
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := model.MachineID(string(rune('a' + w)))
			for i := 0; i < 200; i++ {
				at := obsWin.Start.Add(time.Duration(i) * time.Hour)
				db.Add(id, MetricCPUUtil, Sample{Time: at, Value: float64(i)})
				db.AddPowerEvent(id, PowerEvent{Time: at, On: i%2 == 0})
				db.SetPlacement(id, "box-1", at)
				db.Average(id, MetricCPUUtil, obsWin)
				db.OnOffCount(id, obsWin)
				db.ConsolidationLevel(id, at)
				db.FirstSeen(id)
			}
		}()
	}
	wg.Wait()
	if len(db.Machines()) != workers {
		t.Fatalf("machines = %d, want %d", len(db.Machines()), workers)
	}
	for _, id := range db.Machines() {
		if got := len(db.Samples(id, MetricCPUUtil, obsWin)); got != 200 {
			t.Fatalf("machine %s has %d samples", id, got)
		}
	}
}
