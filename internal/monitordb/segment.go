package monitordb

// Binary columnar segment codec — the durable checkpoint image of the
// store. Unlike the JSONL codec (codec.go), which re-ingests samples
// through the normal write path and therefore re-runs grid detection on
// whatever order it reads, the segment format serializes the columnar
// layout itself: grid base/stride, value column, validity bitmap, row
// section and the detection-backoff counter, per series. A store read back
// from a segment is field-for-field identical to the one that wrote it, so
// every future write and window advance behaves exactly as it would have
// without the round trip — the property the crash-recovery equivalence
// tests pin.
//
// Layout (all integers little-endian, strings length-prefixed):
//
//	magic "FSSEG001"
//	epoch, windowStart, windowEnd (unix nanos), retention (nanos)
//	series count, then per series (sorted by machine, then metric):
//	  id, metric, base, stride, nGrid, nextDetect
//	  vals  (count + float64 column)
//	  valid (count + uint64 bitmap words)
//	  rowT/rowV (count + parallel columns)
//	power count, then per machine (sorted): id, events (time, on)
//	placement count, then per VM (sorted): id, records (month, host)
//	firstSeen count, then per machine (sorted): id, time
//
// hostLoad is not stored: it is an index over placement and is rebuilt on
// read. (A live store can briefly hold zero-valued hostLoad entries where
// a placement was overwritten; reconstruction omits them. Absent and zero
// entries are indistinguishable through every query and through Advance's
// decrement-then-delete-at-zero path, so the difference is unobservable.)

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"failscope/internal/model"
)

const segmentMagic = "FSSEG001"

// maxSegmentStr bounds decoded string lengths so a corrupt length prefix
// cannot drive a giant allocation.
const maxSegmentStr = 1 << 20

type segWriter struct {
	w   *bufio.Writer
	err error
	buf [8]byte
}

func (sw *segWriter) u64(v uint64) {
	if sw.err != nil {
		return
	}
	binary.LittleEndian.PutUint64(sw.buf[:], v)
	_, sw.err = sw.w.Write(sw.buf[:])
}

func (sw *segWriter) i64(v int64)   { sw.u64(uint64(v)) }
func (sw *segWriter) f64(v float64) { sw.u64(math.Float64bits(v)) }

func (sw *segWriter) str(s string) {
	sw.u64(uint64(len(s)))
	if sw.err != nil {
		return
	}
	_, sw.err = sw.w.WriteString(s)
}

func (sw *segWriter) f64s(vals []float64) {
	sw.u64(uint64(len(vals)))
	for _, v := range vals {
		sw.f64(v)
	}
}

func (sw *segWriter) u64s(vals []uint64) {
	sw.u64(uint64(len(vals)))
	for _, v := range vals {
		sw.u64(v)
	}
}

func (sw *segWriter) i64s(vals []int64) {
	sw.u64(uint64(len(vals)))
	for _, v := range vals {
		sw.i64(v)
	}
}

// zeroTimeNanos marks a zero time.Time in the nanos encoding; a real
// instant can never produce it (it is outside time.Time's nano range).
const zeroTimeNanos = math.MinInt64

func (sw *segWriter) timeNanos(t time.Time) {
	if t.IsZero() {
		sw.i64(zeroTimeNanos)
		return
	}
	sw.i64(t.UnixNano())
}

type segReader struct {
	r   *bufio.Reader
	err error
	buf [8]byte
}

func (sr *segReader) u64() uint64 {
	if sr.err != nil {
		return 0
	}
	if _, sr.err = io.ReadFull(sr.r, sr.buf[:]); sr.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(sr.buf[:])
}

func (sr *segReader) i64() int64   { return int64(sr.u64()) }
func (sr *segReader) f64() float64 { return math.Float64frombits(sr.u64()) }

func (sr *segReader) count(what string) int {
	n := sr.u64()
	if sr.err == nil && n > maxSegmentStr*64 {
		sr.err = fmt.Errorf("monitordb: segment %s count %d implausible", what, n)
	}
	return int(n)
}

func (sr *segReader) str() string {
	n := sr.u64()
	if sr.err != nil {
		return ""
	}
	if n > maxSegmentStr {
		sr.err = fmt.Errorf("monitordb: segment string length %d implausible", n)
		return ""
	}
	b := make([]byte, n)
	if _, sr.err = io.ReadFull(sr.r, b); sr.err != nil {
		return ""
	}
	return string(b)
}

func (sr *segReader) f64s(what string) []float64 {
	n := sr.count(what)
	if sr.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = sr.f64()
	}
	return out
}

func (sr *segReader) u64s(what string) []uint64 {
	n := sr.count(what)
	if sr.err != nil || n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = sr.u64()
	}
	return out
}

func (sr *segReader) i64s(what string) []int64 {
	n := sr.count(what)
	if sr.err != nil || n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = sr.i64()
	}
	return out
}

func (sr *segReader) timeNanos() time.Time {
	n := sr.i64()
	if n == zeroTimeNanos {
		return time.Time{}
	}
	return sampleTime(n)
}

// WriteSegment serializes the store's complete state in the binary
// columnar segment format. Iteration orders are sorted, so the same store
// always produces the same bytes.
func (db *DB) WriteSegment(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()

	sw := &segWriter{w: bufio.NewWriterSize(w, 1<<16)}
	if _, err := sw.w.WriteString(segmentMagic); err != nil {
		return err
	}
	sw.timeNanos(db.epoch)
	sw.timeNanos(db.windowStart)
	sw.timeNanos(db.windowEnd)
	sw.i64(int64(db.retention))

	keys := make([]seriesKey, 0, len(db.series))
	for k := range db.series {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].id != keys[j].id {
			return keys[i].id < keys[j].id
		}
		return keys[i].metric < keys[j].metric
	})
	sw.u64(uint64(len(keys)))
	for _, k := range keys {
		s := db.series[k]
		sw.str(string(k.id))
		sw.i64(int64(k.metric))
		sw.i64(s.base)
		sw.i64(s.stride)
		sw.i64(int64(s.nGrid))
		sw.i64(int64(s.nextDetect))
		sw.f64s(s.vals)
		sw.u64s(s.valid)
		sw.i64s(s.rowT)
		sw.f64s(s.rowV)
	}

	powerIDs := make([]model.MachineID, 0, len(db.power))
	for id := range db.power {
		powerIDs = append(powerIDs, id)
	}
	sort.Slice(powerIDs, func(i, j int) bool { return powerIDs[i] < powerIDs[j] })
	sw.u64(uint64(len(powerIDs)))
	for _, id := range powerIDs {
		sw.str(string(id))
		events := db.power[id]
		sw.u64(uint64(len(events)))
		for _, ev := range events {
			sw.timeNanos(ev.Time)
			on := uint64(0)
			if ev.On {
				on = 1
			}
			sw.u64(on)
		}
	}

	vms := make([]model.MachineID, 0, len(db.placement))
	for id := range db.placement {
		vms = append(vms, id)
	}
	sort.Slice(vms, func(i, j int) bool { return vms[i] < vms[j] })
	sw.u64(uint64(len(vms)))
	for _, id := range vms {
		sw.str(string(id))
		recs := db.placement[id]
		sw.u64(uint64(len(recs)))
		for _, rec := range recs {
			sw.timeNanos(rec.month)
			sw.str(string(rec.host))
		}
	}

	seen := make([]model.MachineID, 0, len(db.firstSeen))
	for id := range db.firstSeen {
		seen = append(seen, id)
	}
	sort.Slice(seen, func(i, j int) bool { return seen[i] < seen[j] })
	sw.u64(uint64(len(seen)))
	for _, id := range seen {
		sw.str(string(id))
		sw.timeNanos(db.firstSeen[id])
	}

	if sw.err != nil {
		return fmt.Errorf("monitordb: write segment: %w", sw.err)
	}
	return sw.w.Flush()
}

// ReadSegment reconstructs a store from a segment stream. The returned DB
// carries no registry or logger; callers re-instrument it. The reader is
// consumed exactly through the segment's final byte, so segments can be
// embedded in larger streams.
func ReadSegment(r io.Reader) (*DB, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	sr := &segReader{r: br}
	magic := make([]byte, len(segmentMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("monitordb: read segment magic: %w", err)
	}
	if string(magic) != segmentMagic {
		return nil, fmt.Errorf("monitordb: bad segment magic %q", magic)
	}

	epoch := sr.timeNanos()
	windowStart := sr.timeNanos()
	windowEnd := sr.timeNanos()
	retention := time.Duration(sr.i64())
	db := New(epoch, retention)
	db.windowStart, db.windowEnd = windowStart, windowEnd

	nSeries := sr.count("series")
	for i := 0; i < nSeries && sr.err == nil; i++ {
		id := model.MachineID(sr.str())
		metric := Metric(sr.i64())
		s := &colSeries{
			base:       sr.i64(),
			stride:     sr.i64(),
			nGrid:      int(sr.i64()),
			nextDetect: int(sr.i64()),
		}
		s.vals = sr.f64s("vals")
		s.valid = sr.u64s("valid")
		s.rowT = sr.i64s("rowT")
		s.rowV = sr.f64s("rowV")
		if sr.err == nil {
			if len(s.rowT) != len(s.rowV) {
				return nil, fmt.Errorf("monitordb: segment series %s/%s: row columns misaligned (%d vs %d)",
					id, metric, len(s.rowT), len(s.rowV))
			}
			if want := (len(s.vals) + 63) / 64; len(s.valid) != want {
				return nil, fmt.Errorf("monitordb: segment series %s/%s: bitmap has %d words, want %d",
					id, metric, len(s.valid), want)
			}
			db.series[seriesKey{id, metric}] = s
		}
	}

	nPower := sr.count("power")
	for i := 0; i < nPower && sr.err == nil; i++ {
		id := model.MachineID(sr.str())
		n := sr.count("power events")
		events := make([]PowerEvent, 0, n)
		for j := 0; j < n && sr.err == nil; j++ {
			t := sr.timeNanos()
			events = append(events, PowerEvent{Time: t, On: sr.u64() != 0})
		}
		if sr.err == nil {
			db.power[id] = events
		}
	}

	nPlace := sr.count("placement")
	for i := 0; i < nPlace && sr.err == nil; i++ {
		id := model.MachineID(sr.str())
		n := sr.count("placement records")
		recs := make([]placementRecord, 0, n)
		for j := 0; j < n && sr.err == nil; j++ {
			month := sr.timeNanos()
			host := model.MachineID(sr.str())
			recs = append(recs, placementRecord{month: month, host: host})
			db.hostLoad[hostMonthKey{host, month}]++
		}
		if sr.err == nil {
			db.placement[id] = recs
		}
	}

	nSeen := sr.count("firstSeen")
	for i := 0; i < nSeen && sr.err == nil; i++ {
		id := model.MachineID(sr.str())
		db.firstSeen[id] = sr.timeNanos()
	}

	if sr.err != nil {
		return nil, fmt.Errorf("monitordb: read segment: %w", sr.err)
	}
	return db, nil
}
