package monitordb

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"failscope/internal/model"
)

// The on-disk format is JSON Lines: a header record (epoch + retention)
// followed by one record per sample, power event and placement. It lets a
// generated monitoring database be persisted next to the ticket dataset
// and re-ingested later — or replaced by real telemetry exports.

type monitorRecord struct {
	Kind string `json:"kind"` // "header" | "sample" | "power" | "placement"

	// header
	Epoch     *time.Time `json:"epoch,omitempty"`
	Retention int64      `json:"retentionHours,omitempty"`

	// common
	Machine model.MachineID `json:"machine,omitempty"`
	Time    *time.Time      `json:"time,omitempty"`

	// sample
	Metric Metric  `json:"metric,omitempty"`
	Value  float64 `json:"value,omitempty"`

	// power
	On *bool `json:"on,omitempty"`

	// placement
	Host model.MachineID `json:"host,omitempty"`
}

// Encode writes the database as JSON Lines. Records are emitted in a
// deterministic order (machines sorted, then series time-sorted).
func (db *DB) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)

	db.mu.RLock()
	defer db.mu.RUnlock()

	epoch := db.epoch
	if err := enc.Encode(monitorRecord{
		Kind:      "header",
		Epoch:     &epoch,
		Retention: int64(db.retention / time.Hour),
	}); err != nil {
		return fmt.Errorf("monitordb: encode header: %w", err)
	}

	keys := make([]seriesKey, 0, len(db.series))
	for k := range db.series {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].id != keys[j].id {
			return keys[i].id < keys[j].id
		}
		return keys[i].metric < keys[j].metric
	})
	for _, k := range keys {
		var encErr error
		db.series[k].each(func(t int64, v float64) {
			if encErr != nil {
				return
			}
			at := sampleTime(t)
			encErr = enc.Encode(monitorRecord{
				Kind: "sample", Machine: k.id, Metric: k.metric, Time: &at, Value: v,
			})
		})
		if encErr != nil {
			return fmt.Errorf("monitordb: encode sample: %w", encErr)
		}
	}

	ids := make([]model.MachineID, 0, len(db.power))
	for id := range db.power {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		events := append([]PowerEvent(nil), db.power[id]...)
		sort.Slice(events, func(i, j int) bool { return events[i].Time.Before(events[j].Time) })
		for _, ev := range events {
			at := ev.Time
			on := ev.On
			if err := enc.Encode(monitorRecord{Kind: "power", Machine: id, Time: &at, On: &on}); err != nil {
				return fmt.Errorf("monitordb: encode power event: %w", err)
			}
		}
	}

	vms := make([]model.MachineID, 0, len(db.placement))
	for id := range db.placement {
		vms = append(vms, id)
	}
	sort.Slice(vms, func(i, j int) bool { return vms[i] < vms[j] })
	for _, id := range vms {
		recs := append([]placementRecord(nil), db.placement[id]...)
		sort.Slice(recs, func(i, j int) bool { return recs[i].month.Before(recs[j].month) })
		for _, rec := range recs {
			at := rec.month
			if err := enc.Encode(monitorRecord{Kind: "placement", Machine: id, Time: &at, Host: rec.host}); err != nil {
				return fmt.Errorf("monitordb: encode placement: %w", err)
			}
		}
	}
	return bw.Flush()
}

// Decode reads a database written with Encode.
func Decode(r io.Reader) (*DB, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var db *DB
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec monitorRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("monitordb: decode line %d: %w", line, err)
		}
		switch rec.Kind {
		case "header":
			if rec.Epoch == nil {
				return nil, fmt.Errorf("monitordb: line %d: header without epoch", line)
			}
			db = New(*rec.Epoch, time.Duration(rec.Retention)*time.Hour)
		case "sample":
			if db == nil || rec.Time == nil {
				return nil, fmt.Errorf("monitordb: line %d: sample before header or without time", line)
			}
			db.Add(rec.Machine, rec.Metric, Sample{Time: *rec.Time, Value: rec.Value})
		case "power":
			if db == nil || rec.Time == nil || rec.On == nil {
				return nil, fmt.Errorf("monitordb: line %d: malformed power event", line)
			}
			db.AddPowerEvent(rec.Machine, PowerEvent{Time: *rec.Time, On: *rec.On})
		case "placement":
			if db == nil || rec.Time == nil || rec.Host == "" {
				return nil, fmt.Errorf("monitordb: line %d: malformed placement", line)
			}
			db.SetPlacement(rec.Machine, rec.Host, *rec.Time)
		default:
			return nil, fmt.Errorf("monitordb: line %d: unknown record kind %q", line, rec.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("monitordb: read: %w", err)
	}
	if db == nil {
		return nil, fmt.Errorf("monitordb: missing header record")
	}
	return db, nil
}
