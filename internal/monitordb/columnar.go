package monitordb

// Columnar series storage. A monitoring series is overwhelmingly a fixed-
// cadence sample grid — the paper's databases record every machine at 15-
// minute (and coarser) strides for a year — so storing a 24-byte time.Time
// next to every 8-byte value triples the footprint for information that is
// pure arithmetic. colSeries instead keeps an implicit time grid: a base
// instant, a stride, a dense []float64 value column and a validity bitmap
// for gaps. Slot i holds the sample at base + i*stride; timestamps are
// computed, never stored, and window/rollup indexing is O(1) arithmetic
// instead of binary search.
//
// Samples that do not fit the grid — irregular cadences, duplicates of an
// occupied slot, records written before the cadence is known — live in a
// small sorted row section (parallel time/value columns, 16 bytes each).
// The representation is transparent: every read path merges grid and rows
// into the same time-sorted sample sequence the previous slice-of-structs
// layout produced, so rollups, joins and the eviction behaviour are
// unchanged bit for bit while resident bytes drop ~4x on grid-shaped data.

import "sort"

const (
	// detectAfterRows is how many rows a series accumulates before the
	// store first tries to infer its grid cadence.
	detectAfterRows = 16
	// gridGapSlots bounds how many empty slots a single append may extend
	// the grid by; a sample further ahead goes to the row section instead,
	// so one far-future timestamp cannot balloon the value column.
	gridGapSlots = 256
	// legacySampleBytes is the per-sample footprint of the previous
	// {time.Time, float64} slice layout, kept for the resident-bytes
	// comparison the observability gauges report.
	legacySampleBytes = 32
	// colSeriesOverheadBytes approximates the fixed per-series struct cost
	// (slice headers + grid parameters) in Footprint accounting.
	colSeriesOverheadBytes = 112
)

// colSeries is one (machine, metric) series in columnar form. All methods
// assume the caller holds the DB lock.
type colSeries struct {
	base   int64     // unix nanos of grid slot 0
	stride int64     // grid step in nanos; 0 until a cadence is detected
	vals   []float64 // slot i holds the value at base + i*stride
	valid  []uint64  // validity bitmap over vals (gaps are zero bits)
	nGrid  int       // number of set bits in valid

	// Row section: off-grid samples in time order, ties in arrival order.
	rowT []int64
	rowV []float64

	// nextDetect is the row count at which cadence detection (re)runs;
	// doubled after a failed attempt so irregular series stop paying for
	// detection scans.
	nextDetect int
}

func (s *colSeries) bit(i int) bool {
	return s.valid[i>>6]&(1<<uint(i&63)) != 0
}

func (s *colSeries) setBit(i int) {
	s.valid[i>>6] |= 1 << uint(i&63)
}

func (s *colSeries) len() int { return s.nGrid + len(s.rowT) }

// extendTo grows the value column (and bitmap) to cover slot idx.
func (s *colSeries) extendTo(idx int) {
	if idx < len(s.vals) {
		return
	}
	if idx < cap(s.vals) {
		s.vals = s.vals[:idx+1]
	} else {
		grown := make([]float64, idx+1, growCap(idx+1, cap(s.vals)))
		copy(grown, s.vals)
		s.vals = grown[:idx+1]
	}
	words := (len(s.vals) + 63) / 64
	for len(s.valid) < words {
		s.valid = append(s.valid, 0)
	}
}

func growCap(need, have int) int {
	c := 2 * have
	if c < need {
		c = need
	}
	return c
}

// reserveRows grows the row-section capacity for n more samples so a bulk
// append lands in one backing array instead of doubling through several.
// Capacity-only: lengths, contents and detection timing are untouched.
func (s *colSeries) reserveRows(n int) {
	need := len(s.rowT) + n
	if cap(s.rowT) >= need {
		return
	}
	rowT := make([]int64, len(s.rowT), need)
	rowV := make([]float64, len(s.rowV), need)
	copy(rowT, s.rowT)
	copy(rowV, s.rowV)
	s.rowT, s.rowV = rowT, rowV
}

// reserveGrid grows the value-column capacity to cover the slot of maxT if
// it lies on the lattice, ahead of a batch of n samples. Capacity-only: the
// gridGapSlots admission check in add reads lengths, so pre-reserving never
// changes which samples reach the grid — it only removes the append
// doublings on the way there. The reservation is bounded by how far n
// accepted samples could legally extend the column (each moves the length
// by at most gridGapSlots+1), so one far-future timestamp that add would
// route to the rows cannot balloon the reservation either.
func (s *colSeries) reserveGrid(maxT int64, n int) {
	if s.stride <= 0 {
		return
	}
	off := maxT - s.base
	if off < 0 || off%s.stride != 0 {
		return
	}
	need64 := off/s.stride + 1
	if need64 <= int64(cap(s.vals)) || need64 > int64(len(s.vals))+int64(n)*(gridGapSlots+1) {
		return
	}
	need := int(need64)
	vals := make([]float64, len(s.vals), need)
	copy(vals, s.vals)
	s.vals = vals
	words := (need + 63) / 64
	if cap(s.valid) < words {
		valid := make([]uint64, len(s.valid), words)
		copy(valid, s.valid)
		s.valid = valid
	}
}

// insertRow places a sample into the sorted row section, after any existing
// rows with the same timestamp so arrival order is preserved for ties.
func (s *colSeries) insertRow(t int64, v float64) {
	n := len(s.rowT)
	if n == 0 || s.rowT[n-1] <= t { // common case: appends arrive in order
		s.rowT = append(s.rowT, t)
		s.rowV = append(s.rowV, v)
		return
	}
	i := sort.Search(n, func(i int) bool { return s.rowT[i] > t })
	s.rowT = append(s.rowT, 0)
	s.rowV = append(s.rowV, 0)
	copy(s.rowT[i+1:], s.rowT[i:])
	copy(s.rowV[i+1:], s.rowV[i:])
	s.rowT[i], s.rowV[i] = t, v
}

// add appends one sample, routing it to the grid when it fits the detected
// cadence and to the row section otherwise.
func (s *colSeries) add(t int64, v float64) {
	if s.stride > 0 {
		if off := t - s.base; off >= 0 && off%s.stride == 0 {
			idx64 := off / s.stride
			if idx64 < int64(len(s.vals)) {
				idx := int(idx64)
				if !s.bit(idx) {
					s.vals[idx] = v
					s.setBit(idx)
					s.nGrid++
					return
				}
				// Duplicate timestamp: the slot holder arrived first, the
				// newcomer joins the rows so both survive, in order.
			} else if idx64 <= int64(len(s.vals))+gridGapSlots {
				idx := int(idx64)
				s.extendTo(idx)
				s.vals[idx] = v
				s.setBit(idx)
				s.nGrid++
				return
			}
		}
		s.insertRow(t, v)
		return
	}
	s.insertRow(t, v)
	if s.nextDetect == 0 {
		s.nextDetect = detectAfterRows
	}
	if len(s.rowT) >= s.nextDetect {
		s.detectGrid()
	}
}

// trim releases append slack left by the doubling growth policy: bulk
// writers call it after a batch so resident capacity tracks the data
// actually present. The thresholds are deliberately small — the paper's
// series are weekly averages (~50 slots), where even a 12-slot tail of
// doubling slack or a detection buffer holding one leftover row costs a
// fifth of the series — and the copy runs once per bulk batch, not per
// sample. A word or two of slack is left alone.
func (s *colSeries) trim() {
	if cap(s.vals)-len(s.vals) >= 4 {
		vals := make([]float64, len(s.vals))
		copy(vals, s.vals)
		s.vals = vals
	}
	if cap(s.valid)-len(s.valid) >= 2 {
		valid := make([]uint64, len(s.valid))
		copy(valid, s.valid)
		s.valid = valid
	}
	if cap(s.rowT)-len(s.rowT) >= 4 {
		rowT := make([]int64, len(s.rowT))
		rowV := make([]float64, len(s.rowV))
		copy(rowT, s.rowT)
		copy(rowV, s.rowV)
		s.rowT, s.rowV = rowT, rowV
	}
}

// detectGrid infers the series cadence from the buffered rows: the modal
// positive delta between consecutive timestamps becomes the stride, the
// modal residue class modulo that stride anchors the base, and every row on
// the resulting lattice migrates into the value column. Rows that stay off
// the lattice (irregular cadences, duplicate timestamps) remain rows.
func (s *colSeries) detectGrid() {
	ts := s.rowT
	var stride int64
	bestN := 0
	// Counting runs over at most nextDetect rows, so the distinct-value
	// tallies live in small linear-scanned pair slices on fixed stack
	// buffers instead of maps — detection is on the bulk-write path and a
	// map costs several bucket allocations per series. The incremental
	// best-so-far updates are kept verbatim so tie-breaking (smallest delta
	// among equals; first residue to reach the modal count) is unchanged.
	var deltaBuf [detectAfterRows * 2]modeCount
	deltas := deltaBuf[:0]
	for i := 1; i < len(ts); i++ {
		d := ts[i] - ts[i-1]
		if d <= 0 {
			continue
		}
		n := bumpMode(&deltas, d)
		if n > bestN || (n == bestN && d < stride) {
			stride, bestN = d, n
		}
	}
	// Demand a clear majority cadence; otherwise back off exponentially so
	// genuinely irregular series stop re-scanning.
	if stride <= 0 || bestN*2 < len(ts)-1 {
		s.nextDetect = 2 * len(ts)
		return
	}
	// Modal residue class mod stride picks the lattice; the earliest row in
	// that class anchors slot 0.
	var residueBuf [detectAfterRows * 2]modeCount
	residues := residueBuf[:0]
	var base int64
	baseSet := false
	bestR, bestRN := int64(0), 0
	for _, t := range ts {
		r := ((t % stride) + stride) % stride
		n := bumpMode(&residues, r)
		if n > bestRN {
			bestR, bestRN = r, n
			baseSet = false
		}
	}
	for _, t := range ts {
		if ((t%stride)+stride)%stride == bestR {
			base, baseSet = t, true
			break
		}
	}
	if !baseSet || bestRN*2 < len(ts) {
		s.nextDetect = 2 * len(ts)
		return
	}

	maxIdx := (ts[len(ts)-1] - base) / stride
	if maxIdx < 0 {
		s.nextDetect = 2 * len(ts)
		return
	}
	s.base, s.stride = base, stride
	s.vals = make([]float64, maxIdx+1)
	s.valid = make([]uint64, (len(s.vals)+63)/64)

	keepT := s.rowT[:0]
	keepV := s.rowV[:0]
	for i, t := range s.rowT {
		if off := t - base; off >= 0 && off%stride == 0 {
			if idx := int(off / stride); !s.bit(idx) {
				s.vals[idx] = s.rowV[i]
				s.setBit(idx)
				s.nGrid++
				continue
			}
		}
		keepT = append(keepT, t)
		keepV = append(keepV, s.rowV[i])
	}
	s.rowT, s.rowV = keepT, keepV
}

// modeCount is one (value, count) tally for detectGrid's modal scans.
type modeCount struct {
	v int64
	n int
}

// bumpMode increments the tally for v, appending it on first sight, and
// returns the new count. Linear scan: the slices hold at most one entry per
// distinct delta/residue among the buffered rows, a few dozen at worst.
func bumpMode(m *[]modeCount, v int64) int {
	s := *m
	for i := range s {
		if s[i].v == v {
			s[i].n++
			return s[i].n
		}
	}
	*m = append(s, modeCount{v: v, n: 1})
	return 1
}

// gridEnd returns the number of leading grid slots whose timestamp is
// strictly before hi (unix nanos).
func (s *colSeries) gridEnd(hi int64) int {
	if s.stride <= 0 || len(s.vals) == 0 || hi <= s.base {
		return 0
	}
	end := (hi - s.base + s.stride - 1) / s.stride
	if end > int64(len(s.vals)) {
		return len(s.vals)
	}
	return int(end)
}

// gridStart returns the first grid slot whose timestamp is >= lo.
func (s *colSeries) gridStart(lo int64) int {
	if s.stride <= 0 || lo <= s.base {
		return 0
	}
	start := (lo - s.base + s.stride - 1) / s.stride
	if start > int64(len(s.vals)) {
		return len(s.vals)
	}
	return int(start)
}

// eachIn calls fn for every sample with lo <= t < hi (unix nanos) in time
// order; equal timestamps keep arrival order (grid slot holder first).
func (s *colSeries) eachIn(lo, hi int64, fn func(t int64, v float64)) {
	if hi <= lo {
		return
	}
	ri := sort.Search(len(s.rowT), func(i int) bool { return s.rowT[i] >= lo })
	for gi, gEnd := s.gridStart(lo), s.gridEnd(hi); gi < gEnd; gi++ {
		if !s.bit(gi) {
			continue
		}
		gt := s.base + int64(gi)*s.stride
		for ri < len(s.rowT) && s.rowT[ri] < gt {
			fn(s.rowT[ri], s.rowV[ri])
			ri++
		}
		fn(gt, s.vals[gi])
	}
	for ri < len(s.rowT) && s.rowT[ri] < hi {
		fn(s.rowT[ri], s.rowV[ri])
		ri++
	}
}

// each calls fn for every sample in time order (ties in arrival order).
func (s *colSeries) each(fn func(t int64, v float64)) {
	ri := 0
	for gi := 0; gi < len(s.vals); gi++ {
		if !s.bit(gi) {
			continue
		}
		gt := s.base + int64(gi)*s.stride
		for ri < len(s.rowT) && s.rowT[ri] < gt {
			fn(s.rowT[ri], s.rowV[ri])
			ri++
		}
		fn(gt, s.vals[gi])
	}
	for ; ri < len(s.rowT); ri++ {
		fn(s.rowT[ri], s.rowV[ri])
	}
}

// evictBefore drops every sample with t < start (unix nanos) and returns
// how many were removed. The grid re-anchors on the first surviving slot;
// surviving storage is reallocated tightly so eviction actually releases
// memory on a long-running store.
func (s *colSeries) evictBefore(start int64) int {
	evicted := 0
	if s.stride > 0 && len(s.vals) > 0 && s.base < start {
		drop := (start - s.base + s.stride - 1) / s.stride // slots with t < start
		if drop >= int64(len(s.vals)) {
			evicted += s.nGrid
			s.base += int64(len(s.vals)) * s.stride
			s.vals, s.valid, s.nGrid = nil, nil, 0
		} else {
			d := int(drop)
			for i := 0; i < d; i++ {
				if s.bit(i) {
					evicted++
				}
			}
			kept := make([]float64, len(s.vals)-d)
			copy(kept, s.vals[d:])
			bitmap := make([]uint64, (len(kept)+63)/64)
			n := 0
			for i := range kept {
				if s.bit(d + i) {
					bitmap[i>>6] |= 1 << uint(i&63)
					n++
				}
			}
			s.base += int64(d) * s.stride
			s.vals, s.valid, s.nGrid = kept, bitmap, n
		}
	}
	if i := sort.Search(len(s.rowT), func(i int) bool { return s.rowT[i] >= start }); i > 0 {
		evicted += i
		keptT := make([]int64, len(s.rowT)-i)
		keptV := make([]float64, len(s.rowV)-i)
		copy(keptT, s.rowT[i:])
		copy(keptV, s.rowV[i:])
		s.rowT, s.rowV = keptT, keptV
	}
	return evicted
}

// Footprint reports the store's resident sample memory: columnar bytes as
// allocated, split grid vs. row, next to what the previous 32-byte
// {time.Time, float64} slice layout would hold for the same sample count —
// the compression ratio the observability gauges track.
type Footprint struct {
	Series      int   // number of (machine, metric) series
	GridSamples int   // samples resident in value columns
	RowSamples  int   // samples resident in row sections
	GridBytes   int64 // value columns + validity bitmaps, as allocated
	RowBytes    int64 // row time/value columns, as allocated
	Bytes       int64 // total resident estimate incl. per-series overhead
	LegacyBytes int64 // the same samples at 32 bytes each (previous layout)
}

// Footprint computes the current series-storage footprint.
func (db *DB) Footprint() Footprint {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var fp Footprint
	for _, s := range db.series {
		fp.Series++
		fp.GridSamples += s.nGrid
		fp.RowSamples += len(s.rowT)
		fp.GridBytes += int64(cap(s.vals))*8 + int64(cap(s.valid))*8
		fp.RowBytes += int64(cap(s.rowT))*8 + int64(cap(s.rowV))*8
	}
	fp.Bytes = fp.GridBytes + fp.RowBytes + int64(fp.Series)*colSeriesOverheadBytes
	fp.LegacyBytes = int64(fp.GridSamples+fp.RowSamples) * legacySampleBytes
	return fp
}

// RecordFootprint publishes the footprint on the attached metrics registry
// ("monitordb.series_bytes", ".series_bytes_legacy", ".grid_samples",
// ".row_samples") and returns it. No-op gauges when uninstrumented.
func (db *DB) RecordFootprint() Footprint {
	fp := db.Footprint()
	reg := db.registry()
	reg.Gauge("monitordb.series_bytes").Set(float64(fp.Bytes))
	reg.Gauge("monitordb.series_bytes_legacy").Set(float64(fp.LegacyBytes))
	reg.Gauge("monitordb.grid_samples").Set(float64(fp.GridSamples))
	reg.Gauge("monitordb.row_samples").Set(float64(fp.RowSamples))
	return fp
}
