package monitordb

import (
	"testing"
	"time"

	"failscope/internal/model"
)

// TestAdvanceEvictsWithMovingClock drives a live database with a moving
// clock: samples land continuously, the window advances behind them, and
// records older than the retention horizon must be gone while everything
// inside it survives.
func TestAdvanceEvictsWithMovingClock(t *testing.T) {
	retention := 30 * 24 * time.Hour
	db := New(epoch, retention)
	id := model.MachineID("vm-live")

	// Fill the initial fixed window with one sample per day.
	day := 24 * time.Hour
	for i := 0; i < 30; i++ {
		db.Add(id, MetricCPUUtil, Sample{Time: epoch.Add(time.Duration(i) * day), Value: float64(i)})
	}
	db.AddPowerEvent(id, PowerEvent{Time: epoch.Add(2 * day), On: false})
	db.SetPlacement(id, "pm-1", epoch)
	all := model.Window{Start: epoch.Add(-365 * day), End: epoch.Add(10 * 365 * day)}
	if got := len(db.Samples(id, MetricCPUUtil, all)); got != 30 {
		t.Fatalf("seeded %d samples, want 30", got)
	}

	// Before the clock passes the window end, Advance is a no-op.
	if n := db.Advance(epoch.Add(10 * day)); n != 0 {
		t.Fatalf("early Advance evicted %d records, want 0", n)
	}

	// Move the clock forward day by day for two more months, adding a
	// sample each day. At every step the database must hold exactly the
	// samples inside [now-retention, now].
	for i := 30; i < 90; i++ {
		now := epoch.Add(time.Duration(i) * day)
		db.Advance(now)
		db.Add(id, MetricCPUUtil, Sample{Time: now, Value: float64(i)})

		start, end := db.Window()
		if !end.Equal(now) || !start.Equal(now.Add(-retention)) {
			t.Fatalf("day %d: window = [%v, %v], want [%v, %v]",
				i, start, end, now.Add(-retention), now)
		}
		samples := db.Samples(id, MetricCPUUtil, all)
		want := int(retention/day) + 1 // one per day, endpoints inclusive
		if len(samples) != want {
			t.Fatalf("day %d: %d samples retained, want %d", i, len(samples), want)
		}
		if first := samples[0].Time; first.Before(start) {
			t.Fatalf("day %d: expired sample at %v survived (window start %v)", i, first, start)
		}
	}

	// A sample that predates the advanced window must now be rejected.
	db.Add(id, MetricCPUUtil, Sample{Time: epoch, Value: 99})
	for _, s := range db.Samples(id, MetricCPUUtil, all) {
		if s.Time.Equal(epoch) {
			t.Fatal("sample before the advanced window start was accepted")
		}
	}

	// The expired power event is gone; first-seen survives eviction.
	if got := db.OnOffCount(id, all); got != 0 {
		t.Fatalf("OnOffCount = %d after power log eviction, want 0", got)
	}
	if _, ok := db.FirstSeen(id); !ok {
		t.Fatal("FirstSeen lost by eviction")
	}

	// The month-granular placement from the epoch expired too, and its
	// host-load accounting went with it.
	if _, ok := db.HostOf(id, epoch); ok {
		t.Fatal("expired placement record survived")
	}
	if lvl, ok := db.ConsolidationLevel(id, epoch); ok || lvl != 0 {
		t.Fatalf("ConsolidationLevel = %d, %v after placement eviction", lvl, ok)
	}
}

// TestAdvanceDropsEmptySeries verifies a machine whose records all expire
// disappears from the series and power maps (no unbounded key growth).
func TestAdvanceDropsEmptySeries(t *testing.T) {
	retention := 10 * 24 * time.Hour
	db := New(epoch, retention)
	day := 24 * time.Hour
	db.Add("vm-old", MetricCPUUtil, Sample{Time: epoch, Value: 1})
	db.AddPowerEvent("vm-old", PowerEvent{Time: epoch, On: true})
	db.Add("vm-new", MetricCPUUtil, Sample{Time: epoch.Add(9 * day), Value: 2})

	db.Advance(epoch.Add(25 * day))

	machines := db.Machines() // driven by firstSeen, which survives
	if len(machines) != 2 {
		t.Fatalf("Machines = %v, want both (first-seen outlives samples)", machines)
	}
	all := model.Window{Start: epoch.Add(-day), End: epoch.Add(100 * day)}
	if got := len(db.Samples("vm-old", MetricCPUUtil, all)); got != 0 {
		t.Fatalf("vm-old still has %d samples", got)
	}
	if got := len(db.Samples("vm-new", MetricCPUUtil, all)); got != 0 {
		t.Fatalf("vm-new still has %d samples (9d-old sample inside 25d clock, 10d retention)", got)
	}
	db.ForEachSeries(func(id model.MachineID, m Metric, s []Sample) {
		t.Fatalf("series %s/%s survived full eviction with %d samples", id, m, len(s))
	})
	db.ForEachPower(func(id model.MachineID, evs []PowerEvent) {
		t.Fatalf("power log %s survived full eviction with %d events", id, len(evs))
	})
}

// TestForEachIterationOrder checks the public iterators visit records in
// the same deterministic order the codec writes them.
func TestForEachIterationOrder(t *testing.T) {
	db := newDB()
	day := 24 * time.Hour
	db.Add("m2", MetricMemUtil, Sample{Time: epoch.Add(2 * day), Value: 2})
	db.Add("m1", MetricCPUUtil, Sample{Time: epoch.Add(day), Value: 1})
	db.Add("m1", MetricCPUUtil, Sample{Time: epoch, Value: 0})
	db.AddPowerEvent("m2", PowerEvent{Time: epoch.Add(day), On: false})
	db.SetPlacement("m1", "h1", epoch)

	var seen []string
	db.ForEachSeries(func(id model.MachineID, m Metric, samples []Sample) {
		seen = append(seen, string(id)+"/"+m.String())
		for i := 1; i < len(samples); i++ {
			if samples[i].Time.Before(samples[i-1].Time) {
				t.Fatalf("series %s/%s not time-sorted", id, m)
			}
		}
	})
	if len(seen) != 2 || seen[0] != "m1/cpu_util" || seen[1] != "m2/mem_util" {
		t.Fatalf("series order = %v", seen)
	}
	powerSeen := 0
	db.ForEachPower(func(id model.MachineID, evs []PowerEvent) {
		powerSeen += len(evs)
	})
	if powerSeen != 1 {
		t.Fatalf("power events seen = %d, want 1", powerSeen)
	}
	db.ForEachPlacement(func(vm model.MachineID, steps []PlacementStep) {
		if vm != "m1" || len(steps) != 1 || steps[0].Host != "h1" {
			t.Fatalf("placement iteration = %s %v", vm, steps)
		}
	})
}
