package monitordb

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

// buildSegmentDB assembles a store exercising every representational
// corner: grid-detected series, off-grid rows, duplicate timestamps,
// a series still below the detection threshold, power logs, placements
// (including an overwritten month) and an eviction.
func buildSegmentDB(t *testing.T) *DB {
	t.Helper()
	epoch := time.Date(2012, 7, 1, 0, 0, 0, 0, time.UTC)
	db := New(epoch, 2*365*24*time.Hour)

	// Grid series: 15-min cadence, enough rows to trigger detection.
	var grid []Sample
	for i := 0; i < 40; i++ {
		grid = append(grid, Sample{Time: epoch.Add(time.Duration(i) * 15 * time.Minute), Value: float64(i)})
	}
	db.AddSeries("S1-VM-0001", MetricCPUUtil, grid)
	// Duplicate of an occupied slot plus an off-grid straggler.
	db.Add("S1-VM-0001", MetricCPUUtil, Sample{Time: epoch.Add(15 * time.Minute), Value: 99})
	db.Add("S1-VM-0001", MetricCPUUtil, Sample{Time: epoch.Add(7 * time.Minute), Value: 42})

	// Irregular series that stays in the row section (below detection).
	for i := 0; i < 5; i++ {
		db.Add("S2-PM-0002", MetricNetKbps, Sample{
			Time:  epoch.Add(time.Duration(i*i) * time.Hour),
			Value: float64(100 + i),
		})
	}

	db.AddPowerEvents("S1-VM-0001", []PowerEvent{
		{Time: epoch.Add(2 * time.Hour), On: false},
		{Time: epoch.Add(3 * time.Hour), On: true},
	})
	db.SetPlacement("S1-VM-0001", "S1-PM-0009", epoch)
	db.SetPlacement("S1-VM-0001", "S1-PM-0010", epoch) // overwrite same month
	db.SetPlacement("S1-VM-0001", "S1-PM-0010", epoch.AddDate(0, 1, 0))
	return db
}

// seriesStateOf exposes the internal maps for equality checks; the mutex
// and observer fields are excluded by construction.
func dbState(db *DB) map[string]any {
	return map[string]any{
		"retention":   db.retention,
		"series":      db.series,
		"power":       db.power,
		"placement":   db.placement,
		"firstSeen":   db.firstSeen,
		"epoch":       db.epoch,
		"windowStart": db.windowStart,
		"windowEnd":   db.windowEnd,
	}
}

// TestSegmentRoundTripExact writes a segment and reads it back, requiring
// the reconstructed store to be field-for-field identical (hostLoad
// excepted — it is rebuilt from placement, dropping only unobservable
// zero-count entries).
func TestSegmentRoundTripExact(t *testing.T) {
	db := buildSegmentDB(t)

	var seg bytes.Buffer
	if err := db.WriteSegment(&seg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSegment(bytes.NewReader(seg.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want, have := dbState(db), dbState(got)
	for k := range want {
		if !reflect.DeepEqual(want[k], have[k]) {
			t.Errorf("%s differs after round trip:\nwant %#v\nhave %#v", k, want[k], have[k])
		}
	}
	// hostLoad must agree on every non-zero entry.
	for k, n := range db.hostLoad {
		if n != 0 && got.hostLoad[k] != n {
			t.Errorf("hostLoad[%v] = %d, want %d", k, got.hostLoad[k], n)
		}
	}
	for k, n := range got.hostLoad {
		if db.hostLoad[k] != n {
			t.Errorf("restored hostLoad[%v] = %d, want %d", k, n, db.hostLoad[k])
		}
	}

	// The JSONL codec is the behavioral oracle: both stores must export
	// identical bytes.
	var a, b bytes.Buffer
	if err := db.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := got.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("JSONL export differs after segment round trip")
	}
}

// TestSegmentRoundTripFutureWrites proves a restored store behaves
// identically under continued writes and window advances — grid routing,
// detection backoff and eviction all resume exactly where they left off.
func TestSegmentRoundTripFutureWrites(t *testing.T) {
	db := buildSegmentDB(t)
	var seg bytes.Buffer
	if err := db.WriteSegment(&seg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSegment(bytes.NewReader(seg.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	epoch := db.epoch
	apply := func(d *DB) {
		// More grid samples, another duplicate, irregular rows that push
		// the backed-off series over its next detection threshold, and an
		// eviction-triggering advance.
		var more []Sample
		for i := 40; i < 60; i++ {
			more = append(more, Sample{Time: epoch.Add(time.Duration(i) * 15 * time.Minute), Value: float64(i)})
		}
		d.AddSeries("S1-VM-0001", MetricCPUUtil, more)
		for i := 5; i < 30; i++ {
			d.Add("S2-PM-0002", MetricNetKbps, Sample{
				Time:  epoch.Add(time.Duration(i*i) * time.Hour),
				Value: float64(100 + i),
			})
		}
		d.Advance(epoch.Add(2*365*24*time.Hour + 31*24*time.Hour))
	}
	apply(db)
	apply(got)

	want, have := dbState(db), dbState(got)
	for k := range want {
		if !reflect.DeepEqual(want[k], have[k]) {
			t.Errorf("%s diverges after post-restore writes:\nwant %#v\nhave %#v", k, want[k], have[k])
		}
	}
}

// TestSegmentRejectsCorruption flips the magic and truncates the stream;
// both must error, never return a half-built store.
func TestSegmentRejectsCorruption(t *testing.T) {
	db := buildSegmentDB(t)
	var seg bytes.Buffer
	if err := db.WriteSegment(&seg); err != nil {
		t.Fatal(err)
	}
	raw := seg.Bytes()

	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xFF
	if _, err := ReadSegment(bytes.NewReader(bad)); err == nil {
		t.Error("corrupt magic accepted")
	}
	for _, cut := range []int{len(raw) / 3, len(raw) / 2, len(raw) - 1} {
		if _, err := ReadSegment(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}
