package monitordb

import (
	"bytes"
	"math"
	"sort"
	"testing"
	"time"

	"failscope/internal/model"
	"failscope/internal/xrand"
)

// refStore replays the pre-columnar layout: every accepted sample in a
// plain slice, reads filtered per window and stably sorted by time (which
// is what the old sort-on-read produced for the arrival orders the system
// generates). The columnar store must match it sample for sample, bit for
// bit.
type refStore struct {
	times []time.Time
	vals  []float64
}

func (r *refStore) add(t time.Time, v float64) {
	r.times = append(r.times, t)
	r.vals = append(r.vals, v)
}

func (r *refStore) samples(w model.Window) []Sample {
	idx := make([]int, len(r.times))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return r.times[idx[a]].Before(r.times[idx[b]]) })
	var out []Sample
	for _, i := range idx {
		if w.Contains(r.times[i]) {
			out = append(out, Sample{Time: r.times[i], Value: r.vals[i]})
		}
	}
	return out
}

func (r *refStore) average(w model.Window) (float64, bool) {
	s := r.samples(w)
	if len(s) == 0 {
		return 0, false
	}
	sum := 0.0
	for _, x := range s {
		sum += x.Value
	}
	return sum / float64(len(s)), true
}

func (r *refStore) rollup(w model.Window, bucket time.Duration) []Sample {
	type acc struct {
		sum float64
		n   int
	}
	buckets := make(map[int64]*acc)
	for _, s := range r.samples(w) {
		i := int64(s.Time.Sub(w.Start) / bucket)
		a := buckets[i]
		if a == nil {
			a = &acc{}
			buckets[i] = a
		}
		a.sum += s.Value
		a.n++
	}
	idxs := make([]int64, 0, len(buckets))
	for i := range buckets {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	out := make([]Sample, 0, len(idxs))
	for _, i := range idxs {
		a := buckets[i]
		out = append(out, Sample{Time: w.Start.Add(time.Duration(i) * bucket), Value: a.sum / float64(a.n)})
	}
	return out
}

func sameSamples(t *testing.T, what string, got, want []Sample) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d samples, want %d", what, len(got), len(want))
	}
	for i := range got {
		if !got[i].Time.Equal(want[i].Time) || got[i].Value != want[i].Value {
			t.Fatalf("%s: sample %d = (%v, %v), want (%v, %v)",
				what, i, got[i].Time, got[i].Value, want[i].Time, want[i].Value)
		}
	}
}

// checkAgainstRef compares every read path over a spread of windows,
// including windows whose edges land exactly on sample timestamps (the
// half-open boundary cases the validity bitmap must respect).
func checkAgainstRef(t *testing.T, db *DB, ref *refStore, id model.MachineID) {
	t.Helper()
	full := model.Window{Start: epoch.Add(-24 * time.Hour), End: epoch.Add(3 * 365 * 24 * time.Hour)}
	windows := []model.Window{full}
	if s := ref.samples(full); len(s) > 0 {
		first, last := s[0].Time, s[len(s)-1].Time
		windows = append(windows,
			model.Window{Start: first, End: last},                      // excludes the last sample
			model.Window{Start: first, End: last.Add(1)},               // includes it
			model.Window{Start: first.Add(1), End: last.Add(1)},        // excludes the first
			model.Window{Start: first.Add(-time.Hour), End: first},     // empty: ends at first
			model.Window{Start: last.Add(1), End: last.Add(time.Hour)}, // past the end
			model.Window{ // interior span with grid-aligned edges
				Start: first.Add(15 * time.Minute),
				End:   last.Add(-15 * time.Minute),
			},
		)
	}
	for wi, w := range windows {
		sameSamples(t, "Samples", db.Samples(id, MetricCPUUtil, w), ref.samples(w))
		gotAvg, gotOK := db.Average(id, MetricCPUUtil, w)
		wantAvg, wantOK := ref.average(w)
		if gotOK != wantOK || gotAvg != wantAvg {
			t.Fatalf("window %d: Average = (%v, %v), want (%v, %v)", wi, gotAvg, gotOK, wantAvg, wantOK)
		}
		for _, bucket := range []time.Duration{15 * time.Minute, time.Hour, 24 * time.Hour, 7 * 24 * time.Hour} {
			sameSamples(t, "Rollup", db.Rollup(id, MetricCPUUtil, w, bucket), ref.rollup(w, bucket))
		}
	}
}

// TestColumnarGridEquivalence drives the detected-grid fast path: a fixed
// 15-minute cadence with gaps, duplicate timestamps and a few off-grid
// stragglers, written once sample-at-a-time and once batched.
func TestColumnarGridEquivalence(t *testing.T) {
	for _, batch := range []bool{false, true} {
		db := newDB()
		ref := &refStore{}
		id := model.MachineID("m1")
		rng := xrand.New(7)
		start := obsWin.Start
		var all []Sample
		for i := 0; i < 400; i++ {
			if rng.Float64() < 0.15 {
				continue // gap: empty grid slot
			}
			at := start.Add(time.Duration(i) * 15 * time.Minute)
			all = append(all, Sample{Time: at, Value: float64(i)})
			if rng.Float64() < 0.05 {
				all = append(all, Sample{Time: at, Value: float64(i) + 0.5}) // duplicate
			}
			if rng.Float64() < 0.05 {
				all = append(all, Sample{Time: at.Add(37 * time.Second), Value: -float64(i)}) // off-grid
			}
		}
		if batch {
			db.AddSeries(id, MetricCPUUtil, all)
		} else {
			for _, s := range all {
				db.Add(id, MetricCPUUtil, s)
			}
		}
		for _, s := range all {
			ref.add(s.Time, s.Value)
		}
		if s := db.series[seriesKey{id, MetricCPUUtil}]; s.stride != int64(15*time.Minute) {
			t.Fatalf("stride = %v, want 15m (grid not detected)", time.Duration(s.stride))
		}
		checkAgainstRef(t, db, ref, id)
	}
}

// TestColumnarIrregularEquivalence drives the row-only fallback: timestamps
// with no dominant cadence, arriving out of order, must never detect a grid
// and still read back exactly like the reference.
func TestColumnarIrregularEquivalence(t *testing.T) {
	db := newDB()
	ref := &refStore{}
	id := model.MachineID("m1")
	rng := xrand.New(11)
	at := obsWin.Start
	for i := 0; i < 200; i++ {
		at = at.Add(time.Duration(1+rng.Intn(10_000_000)) * time.Microsecond)
		v := rng.Float64()
		db.Add(id, MetricCPUUtil, Sample{Time: at, Value: v})
		ref.add(at, v)
		if rng.Float64() < 0.2 { // out-of-order straggler
			back := at.Add(-time.Duration(1+rng.Intn(3600)) * time.Second)
			db.Add(id, MetricCPUUtil, Sample{Time: back, Value: -v})
			ref.add(back, -v)
		}
	}
	if s := db.series[seriesKey{id, MetricCPUUtil}]; s.stride != 0 {
		t.Fatalf("irregular series detected a grid with stride %v", time.Duration(s.stride))
	}
	checkAgainstRef(t, db, ref, id)
}

// TestColumnarEvictionEquivalence advances the retention window through a
// detected grid in uneven steps and checks every read against a reference
// evicted the same way, then keeps appending on the re-anchored base.
func TestColumnarEvictionEquivalence(t *testing.T) {
	retention := 30 * 24 * time.Hour
	db := New(epoch, retention)
	ref := &refStore{}
	id := model.MachineID("m1")
	rng := xrand.New(13)

	add := func(at time.Time, v float64) {
		db.Add(id, MetricCPUUtil, Sample{Time: at, Value: v})
		start, end := db.Window()
		if !at.Before(start) && !at.After(end) {
			ref.add(at, v)
		}
	}

	at := epoch
	for day := 0; day < 90; day++ {
		for i := 0; i < 24; i++ {
			if rng.Float64() < 0.1 {
				continue
			}
			add(at.Add(time.Duration(i)*time.Hour), float64(day*100+i))
		}
		at = at.Add(24 * time.Hour)
		if day%7 == 3 {
			evictStart := at.Add(-retention)
			db.Advance(at)
			keptT, keptV := ref.times[:0], ref.vals[:0]
			for i := range ref.times {
				if !ref.times[i].Before(evictStart) {
					keptT = append(keptT, ref.times[i])
					keptV = append(keptV, ref.vals[i])
				}
			}
			ref.times, ref.vals = keptT, keptV
			checkAgainstRef(t, db, ref, id)
		}
	}
	checkAgainstRef(t, db, ref, id)
}

// TestColumnarEncodeRoundTrip checks that encode → decode of a mixed
// grid/row store reproduces identical samples: the decode side re-detects
// its own grid, so this exercises the transparency of the representation.
func TestColumnarEncodeRoundTrip(t *testing.T) {
	db := newDB()
	id := model.MachineID("m1")
	var samples []Sample
	for i := 0; i < 60; i++ {
		at := obsWin.Start.Add(time.Duration(i) * 15 * time.Minute)
		samples = append(samples, Sample{Time: at, Value: float64(i)})
	}
	samples = append(samples, Sample{Time: obsWin.Start.Add(99 * time.Second), Value: -1})
	db.AddSeries(id, MetricCPUUtil, samples)

	var buf bytes.Buffer
	if err := db.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w := model.Window{Start: epoch, End: epoch.Add(3 * 365 * 24 * time.Hour)}
	sameSamples(t, "decoded", back.Samples(id, MetricCPUUtil, w), db.Samples(id, MetricCPUUtil, w))
}

// TestFootprintCompression checks the memory accounting and the headline
// claim: a grid-shaped series must report well under half the bytes of the
// legacy 32-byte-per-sample layout.
func TestFootprintCompression(t *testing.T) {
	db := newDB()
	id := model.MachineID("m1")
	var samples []Sample
	for i := 0; i < 5000; i++ {
		samples = append(samples, Sample{Time: obsWin.Start.Add(time.Duration(i) * 15 * time.Minute), Value: float64(i)})
	}
	db.AddSeries(id, MetricCPUUtil, samples)
	fp := db.Footprint()
	if fp.Series != 1 || fp.GridSamples+fp.RowSamples != len(samples) {
		t.Fatalf("footprint counts = %+v, want %d samples in 1 series", fp, len(samples))
	}
	if fp.LegacyBytes != int64(len(samples))*legacySampleBytes {
		t.Fatalf("LegacyBytes = %d, want %d", fp.LegacyBytes, len(samples)*legacySampleBytes)
	}
	if ratio := float64(fp.LegacyBytes) / float64(fp.Bytes); ratio < 2.5 {
		t.Fatalf("compression ratio = %.2fx (bytes=%d legacy=%d), want ≥ 2.5x", ratio, fp.Bytes, fp.LegacyBytes)
	}
	if math.Abs(float64(fp.GridBytes)-float64(fp.Bytes)) > float64(fp.Bytes) {
		t.Fatalf("inconsistent byte split: %+v", fp)
	}
}
