package monitordb

// Cadence re-detection backoff tests: a series that defeats grid
// detection must not re-scan on every append — nextDetect doubles each
// failed attempt — and a cadence that emerges later is still found on a
// subsequent attempt.

import "testing"

const hourNs = int64(3600 * 1e9)

// TestBackoffIrregularDeltas: rows with no modal delta fail the stride
// majority and back off exponentially (nextDetect = 2×rows at each
// failed attempt), leaving every sample in the row section.
func TestBackoffIrregularDeltas(t *testing.T) {
	var s colSeries
	// Strictly increasing, pairwise-distinct deltas: 1h, 2h, 3h, ... —
	// every delta is unique so the modal count is 1, never a majority.
	ts := int64(0)
	rows := 0
	addIrregular := func(n int) {
		for i := 0; i < n; i++ {
			rows++
			ts += int64(rows) * hourNs
			s.add(ts, float64(rows))
		}
	}
	addIrregular(detectAfterRows - 1)
	if s.nextDetect != detectAfterRows {
		t.Fatalf("nextDetect=%d before the first attempt, want %d", s.nextDetect, detectAfterRows)
	}
	addIrregular(1) // row 16: first detection attempt fails
	if s.stride != 0 {
		t.Fatalf("stride=%d inferred from irregular deltas, want 0", s.stride)
	}
	if s.nextDetect != 2*detectAfterRows {
		t.Fatalf("nextDetect=%d after first failed attempt, want %d", s.nextDetect, 2*detectAfterRows)
	}
	addIrregular(detectAfterRows) // rows 17..32: second attempt at 32
	if s.nextDetect != 4*detectAfterRows {
		t.Fatalf("nextDetect=%d after second failed attempt, want %d", s.nextDetect, 4*detectAfterRows)
	}
	if s.stride != 0 || s.nGrid != 0 || len(s.rowT) != rows {
		t.Errorf("irregular series leaked into the grid: stride=%d nGrid=%d rows=%d/%d",
			s.stride, s.nGrid, len(s.rowT), rows)
	}
}

// TestBackoffWeakResidueMajority: a clear modal delta whose rows split
// across three residue classes passes the stride vote but fails the
// residue vote, taking the same exponential backoff.
func TestBackoffWeakResidueMajority(t *testing.T) {
	var s colSeries
	w := 7 * 24 * hourNs
	third := w / 3
	// Three five-to-six-row blocks on a weekly cadence, each block phase-
	// shifted by w/3: 13 of 15 deltas are w (stride majority) but the
	// residue classes split 5/5/6 (no residue majority).
	ts := int64(0)
	n := 0
	for block := 0; block < 3; block++ {
		size := 5
		if block == 2 {
			size = 6
		}
		for i := 0; i < size; i++ {
			if n > 0 {
				ts += w
				if i == 0 {
					ts += third // phase shift between blocks
				}
			}
			n++
			s.add(ts, float64(n))
		}
	}
	if n != detectAfterRows {
		t.Fatalf("test feeds %d rows, want %d", n, detectAfterRows)
	}
	if s.stride != 0 {
		t.Fatalf("stride=%d accepted with a split residue vote, want 0", s.stride)
	}
	if s.nextDetect != 2*detectAfterRows {
		t.Fatalf("nextDetect=%d after the residue-vote failure, want %d", s.nextDetect, 2*detectAfterRows)
	}
}

// TestBackoffThenDetect: a series that is irregular for its first rows
// and then settles onto a weekly grid is detected at a later attempt, and
// the on-lattice rows migrate into the value column.
func TestBackoffThenDetect(t *testing.T) {
	var s colSeries
	w := 7 * 24 * hourNs
	ts := int64(0)
	// 16 irregular rows → first attempt fails, nextDetect = 32.
	for i := 1; i <= detectAfterRows; i++ {
		ts += int64(i) * hourNs
		s.add(ts, float64(i))
	}
	if s.stride != 0 || s.nextDetect != 2*detectAfterRows {
		t.Fatalf("setup: stride=%d nextDetect=%d", s.stride, s.nextDetect)
	}
	// Snap to the weekly lattice and stay there. At the second attempt
	// (32 rows) the 16 lattice deltas are still one short of a majority
	// against the 15 irregular ones, so it backs off again; at the third
	// attempt (64 rows) the 47 lattice deltas win the vote.
	ts = (ts/w + 1) * w
	for i := 0; i < 3*detectAfterRows; i++ {
		s.add(ts, float64(100+i))
		ts += w
	}
	if s.stride != w {
		t.Fatalf("stride=%d after the cadence settled, want %d", s.stride, w)
	}
	if s.nGrid < 3*detectAfterRows {
		t.Errorf("only %d rows migrated to the grid, want >= %d", s.nGrid, 3*detectAfterRows)
	}
	// Later on-cadence appends go straight to the grid.
	before := s.nGrid
	s.add(ts, 999)
	if s.nGrid != before+1 {
		t.Errorf("on-cadence append after detection landed in rows")
	}
}
