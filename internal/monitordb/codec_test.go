package monitordb

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestCodecRoundTrip(t *testing.T) {
	db := newDB()
	db.Add("m1", MetricCPUUtil, Sample{Time: obsWin.Start.Add(time.Hour), Value: 42.5})
	db.Add("m1", MetricNetKbps, Sample{Time: obsWin.Start.Add(2 * time.Hour), Value: 128})
	db.Add("m2", MetricCPUUtil, Sample{Time: obsWin.Start.Add(3 * time.Hour), Value: 7})
	db.AddPowerEvent("m1", PowerEvent{Time: obsWin.Start.Add(4 * time.Hour), On: false})
	db.AddPowerEvent("m1", PowerEvent{Time: obsWin.Start.Add(5 * time.Hour), On: true})
	db.SetPlacement("m1", "box-1", obsWin.Start)

	var buf bytes.Buffer
	if err := db.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if !got.Epoch().Equal(db.Epoch()) {
		t.Error("epoch not preserved")
	}
	avg, ok := got.Average("m1", MetricCPUUtil, obsWin)
	if !ok || avg != 42.5 {
		t.Errorf("sample lost: %v %v", avg, ok)
	}
	if got.OnOffCount("m1", obsWin) != 1 {
		t.Error("power events lost")
	}
	if lvl, ok := got.ConsolidationLevel("m1", obsWin.Start); !ok || lvl != 1 {
		t.Errorf("placement lost: %v %v", lvl, ok)
	}
	if len(got.Machines()) != 2 {
		t.Errorf("machines: %v", got.Machines())
	}
}

func TestCodecDeterministicOutput(t *testing.T) {
	build := func() *DB {
		db := newDB()
		db.Add("b", MetricCPUUtil, Sample{Time: obsWin.Start, Value: 1})
		db.Add("a", MetricMemUtil, Sample{Time: obsWin.Start, Value: 2})
		db.SetPlacement("a", "h", obsWin.Start)
		return db
	}
	var x, y bytes.Buffer
	if err := build().Encode(&x); err != nil {
		t.Fatal(err)
	}
	if err := build().Encode(&y); err != nil {
		t.Fatal(err)
	}
	if x.String() != y.String() {
		t.Fatal("encoding is not deterministic")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"",
		"not json\n",
		"{\"kind\":\"sample\",\"machine\":\"m\"}\n", // before header
		"{\"kind\":\"bogus\"}\n",                    // unknown kind
		"{\"kind\":\"header\"}\n",                   // header without epoch
		"{\"kind\":\"header\",\"epoch\":\"2011-07-01T00:00:00Z\",\"retentionHours\":17520}\n{\"kind\":\"power\",\"machine\":\"m\"}\n", // malformed power
	}
	for _, in := range cases {
		if _, err := Decode(strings.NewReader(in)); err == nil {
			t.Errorf("Decode(%q) accepted", in)
		}
	}
}
