package monitordb

import (
	"fmt"
	"testing"
	"time"

	"failscope/internal/model"
)

// benchSamples builds one year of 15-minute cadence samples with a birth
// marker — the shape dcsim writes for every machine.
func benchSamples(n int) []Sample {
	samples := make([]Sample, 0, n+1)
	samples = append(samples, Sample{Time: obsWin.Start.Add(-90 * 24 * time.Hour), Value: 1})
	for i := 0; i < n; i++ {
		samples = append(samples, Sample{
			Time:  obsWin.Start.Add(time.Duration(i) * 15 * time.Minute),
			Value: float64(i % 100),
		})
	}
	return samples
}

func benchStore(machines, perSeries int) *DB {
	db := newDB()
	samples := benchSamples(perSeries)
	for m := 0; m < machines; m++ {
		id := model.MachineID(fmt.Sprintf("vm%04d", m))
		for _, metric := range Metrics() {
			db.AddSeries(id, metric, samples)
		}
	}
	return db
}

// BenchmarkMonitorStore_Append measures the bulk write path: one machine's
// four metric series of grid-cadence samples, as the generator writes them.
func BenchmarkMonitorStore_Append(b *testing.B) {
	samples := benchSamples(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := newDB()
		id := model.MachineID("vm0")
		for _, metric := range Metrics() {
			db.AddSeries(id, metric, samples)
		}
	}
}

// BenchmarkMonitorStore_Rollup measures the bucketed aggregation path over
// a detected grid: daily buckets across a year of 15-minute samples.
func BenchmarkMonitorStore_Rollup(b *testing.B) {
	db := benchStore(8, 35000) // one year at 15 min
	w := model.Window{Start: obsWin.Start, End: obsWin.Start.Add(365 * 24 * time.Hour)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := db.Rollup("vm0003", MetricCPUUtil, w, 24*time.Hour); len(out) == 0 {
			b.Fatal("empty rollup")
		}
	}
}

// BenchmarkMonitorStore_Join measures the ingest-shaped monitoring join:
// per-machine window averages of all four usage metrics.
func BenchmarkMonitorStore_Join(b *testing.B) {
	db := benchStore(64, 5000)
	w := model.Window{Start: obsWin.Start, End: obsWin.Start.Add(60 * 24 * time.Hour)}
	ids := db.Machines()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hits := 0
		for _, id := range ids {
			for _, metric := range Metrics() {
				if _, ok := db.Average(id, metric, w); ok {
					hits++
				}
			}
		}
		if hits == 0 {
			b.Fatal("join found no series")
		}
	}
}
