package fidelity

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"failscope/internal/ingest"
	"failscope/internal/textmine"
)

func TestRangeContains(t *testing.T) {
	r := Range{Lo: 1, Hi: 2}
	for _, tc := range []struct {
		v    float64
		want bool
	}{
		{1, true}, {2, true}, {1.5, true},
		{0.999, false}, {2.001, false}, {math.NaN(), false},
	} {
		if got := r.Contains(tc.v); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

// classifierReport fabricates a ClassifierReport with a small confusion
// matrix: 2 background tickets (one misread as class 1), 3 crash tickets
// of class 1 (all correct) and 1 of class 2 (misread as class 1).
func classifierReport() *ingest.ClassifierReport {
	cm := &textmine.ConfusionMatrix{
		Labels: []int{0, 1, 2},
		Counts: map[[2]int]int{
			{0, 0}: 1, {0, 1}: 1,
			{1, 1}: 3,
			{2, 1}: 1,
		},
		Total: 6,
		Hits:  4,
	}
	return &ingest.ClassifierReport{
		TrainDocs:          10,
		TestDocs:           6,
		Accuracy:           4.0 / 6,
		CrashClassAccuracy: 3.0 / 4,
		CrashRecall:        1.0,
		CrashPrecision:     4.0 / 5,
		Confusion:          cm,
		Stage1Purity:       0.9,
		Stage2Purity:       0.8,
	}
}

func TestScoreQuality(t *testing.T) {
	in := Input{
		Classifier: classifierReport(),
		Metrics: map[string]float64{
			"dcsim.tickets":                 100,
			"ingest.tickets_in_window":      90,
			"ingest.tickets_window_dropped": 10,
			"monitordb.samples":             500,
			"monitordb.samples_dropped":     7,
			"ingest.join_hits":              95,
			"ingest.join_misses":            5,
		},
	}
	q := ScoreQuality(in)
	if !q.ClassifierRan {
		t.Fatal("ClassifierRan = false")
	}
	if q.CrashRecall != 1.0 || q.CrashPrecision != 0.8 {
		t.Errorf("crash P/R = %v/%v", q.CrashPrecision, q.CrashRecall)
	}
	wantF1 := 2 * 0.8 * 1.0 / 1.8
	if math.Abs(q.CrashF1-wantF1) > 1e-12 {
		t.Errorf("CrashF1 = %v, want %v", q.CrashF1, wantF1)
	}
	if len(q.PerClass) != 3 {
		t.Fatalf("PerClass rows = %d, want 3", len(q.PerClass))
	}
	if q.PerClass[0].Class != "background" || q.PerClass[1].Class != "HW" {
		t.Errorf("class names = %v, %v", q.PerClass[0].Class, q.PerClass[1].Class)
	}
	// Class 1 (HW): truth 3, predicted 5 (3 correct + 1 background + 1 class-2).
	hw := q.PerClass[1]
	if hw.Truth != 3 || hw.Predicted != 5 || hw.Recall != 1.0 || hw.Precision != 0.6 {
		t.Errorf("HW row = %+v", hw)
	}
	// Class 2 was never predicted: precision must be 0, not NaN.
	if q.PerClass[2].Predicted != 0 || q.PerClass[2].Precision != 0 {
		t.Errorf("class-2 row = %+v", q.PerClass[2])
	}

	if q.Drops == nil || !q.Drops.Consistent {
		t.Fatalf("drop accounting = %+v, want consistent", q.Drops)
	}
	if q.Drops.TicketsGenerated != 100 || q.Drops.MonitorSamplesDropped != 7 {
		t.Errorf("drop accounting = %+v", q.Drops)
	}
	if q.JoinCoverage != 0.95 {
		t.Errorf("JoinCoverage = %v, want 0.95", q.JoinCoverage)
	}
}

func TestScoreQualityInconsistentDrops(t *testing.T) {
	q := ScoreQuality(Input{Metrics: map[string]float64{
		"dcsim.tickets":            100,
		"ingest.tickets_in_window": 80, // 20 tickets unaccounted for
	}})
	if q.Drops == nil || q.Drops.Consistent {
		t.Fatalf("drop accounting = %+v, want inconsistent", q.Drops)
	}
	if q.ClassifierRan {
		t.Error("ClassifierRan = true without a classifier report")
	}
}

// TestScoreSkipsWithoutInputs verifies that every band skips (rather than
// fails) when the run carries no report, no classifier and no metrics —
// and that the gate stays green on a scoreboard of skips.
func TestScoreSkipsWithoutInputs(t *testing.T) {
	sb := Score(Input{})
	if sb.Failed != 0 || sb.Passed != 0 || sb.Warned != 0 {
		t.Fatalf("counts = %d/%d/%d/%d, want all skipped",
			sb.Passed, sb.Warned, sb.Failed, sb.Skipped)
	}
	if sb.Skipped != len(sb.Bands) || len(sb.Bands) == 0 {
		t.Fatalf("Skipped = %d of %d bands", sb.Skipped, len(sb.Bands))
	}
	for _, b := range sb.Bands {
		if b.Note == "" {
			t.Errorf("band %s skipped without a note", b.Name)
		}
	}
	if err := sb.Err(); err != nil {
		t.Errorf("Err() = %v on all-skip scoreboard", err)
	}
}

// TestScoreClassifierBands drives the three classification bands through
// pass, warn and fail with fabricated classifier reports.
func TestScoreClassifierBands(t *testing.T) {
	get := func(acc float64) *Band {
		cr := classifierReport()
		cr.CrashClassAccuracy = acc
		sb := Score(Input{Classifier: cr})
		b := sb.Find("crash_class_accuracy")
		if b == nil {
			t.Fatal("crash_class_accuracy band missing")
		}
		return b
	}
	if b := get(0.87); b.Verdict != VerdictPass {
		t.Errorf("accuracy 0.87: verdict %s, want pass", b.Verdict)
	}
	if b := get(0.65); b.Verdict != VerdictWarn {
		t.Errorf("accuracy 0.65: verdict %s, want warn", b.Verdict)
	}
	if b := get(0.30); b.Verdict != VerdictFail {
		t.Errorf("accuracy 0.30: verdict %s, want fail", b.Verdict)
	}
}

func TestErrNamesFailedBands(t *testing.T) {
	cr := classifierReport()
	cr.CrashClassAccuracy = 0.1
	cr.CrashRecall = 0.2
	sb := Score(Input{Classifier: cr})
	err := sb.Err()
	if err == nil {
		t.Fatal("Err() = nil with failing bands")
	}
	for _, name := range []string{"crash_class_accuracy", "crash_recall"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("Err() = %q does not name %s", err, name)
		}
	}
	var nilSB *Scoreboard
	if nilSB.Err() != nil || nilSB.Find("x") != nil {
		t.Error("nil scoreboard must be inert")
	}
}

// TestScoreboardJSONRoundTrip guards the serialized shape: no NaN/Inf
// values (encoding/json would reject them) and stable band names.
func TestScoreboardJSONRoundTrip(t *testing.T) {
	sb := Score(Input{Classifier: classifierReport()})
	raw, err := json.Marshal(sb)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Scoreboard
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back.Bands) != len(sb.Bands) {
		t.Fatalf("bands %d != %d", len(back.Bands), len(sb.Bands))
	}
	seen := make(map[string]bool)
	for _, b := range back.Bands {
		if seen[b.Name] {
			t.Errorf("duplicate band name %s", b.Name)
		}
		seen[b.Name] = true
	}
}
