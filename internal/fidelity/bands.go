package fidelity

import (
	"failscope/internal/core"
	"failscope/internal/dist"
	"failscope/internal/model"
)

// bandSpec declares one paper-expected check. value returns the measured
// number, whether it was measurable in this run (false → skip), and an
// optional note. Pass ranges mirror what integration_test.go asserts at
// paper scale, widened only where the canonical small study legitimately
// sits elsewhere; warn ranges add headroom so a marginal run degrades to a
// visible warning before it turns the gate red.
type bandSpec struct {
	name  string
	paper string
	unit  string
	pass  Range
	warn  Range
	value func(in Input) (v float64, ok bool, note string)
}

// boolVal encodes a yes/no check as 1/0 with pass = [1,1].
func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// yes is the pass/warn range for boolean bands.
var yes = Range{Lo: 1, Hi: 1}

func withReport(f func(r *core.Report) (float64, bool, string)) func(Input) (float64, bool, string) {
	return func(in Input) (float64, bool, string) {
		if in.Report == nil {
			return 0, false, "no analysis report"
		}
		return f(in.Report)
	}
}

// weeklyRateMean returns the all-systems weekly failure rate per server
// for one machine kind.
func weeklyRateMean(r *core.Report, kind model.MachineKind) (float64, bool) {
	for _, rs := range r.WeeklyRates {
		if rs.Kind == kind && rs.System == 0 && rs.Servers > 0 {
			return rs.Summary.Mean, true
		}
	}
	return 0, false
}

// logLikelihoodOf returns the log-likelihood of the named family in a fit
// selection.
func logLikelihoodOf(s dist.Selection, name string) (float64, bool) {
	for _, fr := range s.Results {
		if fr.Dist.Name() == name {
			return fr.LogLikelihood, true
		}
	}
	return 0, false
}

// gammaMargin is the log-likelihood margin of the Gamma fit over the
// Exponential null model — the paper's model-selection evidence that
// inter-failure times are *not* memoryless.
func gammaMargin(s dist.Selection) (float64, bool, string) {
	g, okG := logLikelihoodOf(s, "gamma")
	e, okE := logLikelihoodOf(s, "exponential")
	if !okG || !okE {
		return 0, false, "gamma or exponential fit unavailable"
	}
	return g - e, true, ""
}

// lognormalDeficit returns the per-observation log-likelihood deficit of
// the Lognormal fit relative to the best-fitting family (0 when Lognormal
// itself wins). A small deficit means Lognormal describes the sample
// (nearly) as well as the winner — the scale-robust form of the paper's
// "repair times follow a Lognormal" claim, since family *rankings* on a
// few hundred points are decided by noise.
func lognormalDeficit(s dist.Selection, n int) (float64, bool, string) {
	ln, ok := logLikelihoodOf(s, "lognormal")
	if !ok || n == 0 {
		return 0, false, "lognormal fit unavailable"
	}
	best, _ := s.Best()
	return (best.LogLikelihood - ln) / float64(n), true, "best fit: " + s.BestName()
}

// recurrentRatio returns the Table V recurrent/random ratio for one kind
// over all systems.
func recurrentRatio(r *core.Report, kind model.MachineKind) (float64, bool) {
	for _, rr := range r.RandomRecurrent {
		if rr.Kind == kind && rr.System == 0 && rr.Ratio > 0 {
			return rr.Ratio, true
		}
	}
	return 0, false
}

// paperBands is the declarative table of the study's headline numbers.
// Order is presentation order: classification first (§III.A), then the
// paper's section order (§IV.A rates … §IV.F age), then the pipeline
// bookkeeping checks.
var paperBands = []bandSpec{
	{
		name:  "crash_class_accuracy",
		paper: "§III.A: ≈87% of crash tickets get the right resolution class",
		pass:  Range{0.72, 1}, warn: Range{0.60, 1},
		value: func(in Input) (float64, bool, string) {
			if in.Classifier == nil {
				return 0, false, "classification did not run"
			}
			return in.Classifier.CrashClassAccuracy, true, ""
		},
	},
	{
		name:  "crash_recall",
		paper: "§III.A: crash-ticket mining must recover (nearly) all true crashes",
		pass:  Range{0.85, 1}, warn: Range{0.70, 1},
		value: func(in Input) (float64, bool, string) {
			if in.Classifier == nil {
				return 0, false, "classification did not run"
			}
			return in.Classifier.CrashRecall, true, ""
		},
	},
	{
		name:  "crash_precision",
		paper: "§III.A: mined crash set not swamped by background tickets",
		pass:  Range{0.50, 1}, warn: Range{0.35, 1},
		value: func(in Input) (float64, bool, string) {
			if in.Classifier == nil {
				return 0, false, "classification did not run"
			}
			return in.Classifier.CrashPrecision, true, ""
		},
	},
	{
		name:  "pm_weekly_rate",
		paper: "§IV.A: ≈0.006 failures per PM per week",
		unit:  "failures/server/week",
		pass:  Range{0.003, 0.010}, warn: Range{0.002, 0.013},
		value: withReport(func(r *core.Report) (float64, bool, string) {
			v, ok := weeklyRateMean(r, model.PM)
			return v, ok, ""
		}),
	},
	{
		name:  "pm_vm_rate_ratio",
		paper: "§IV.A: PMs fail ≈40% more often than VMs",
		pass:  Range{1.1, 3.0}, warn: Range{1.02, 4.0},
		value: withReport(func(r *core.Report) (float64, bool, string) {
			pm, okP := weeklyRateMean(r, model.PM)
			vm, okV := weeklyRateMean(r, model.VM)
			if !okP || !okV || vm == 0 {
				return 0, false, "rate for a machine kind unavailable"
			}
			return pm / vm, true, ""
		}),
	},
	{
		name:  "interfailure_best_fit_pm",
		paper: "§IV.B: Gamma is the best-fitting family for PM inter-failure times",
		pass:  yes, warn: yes,
		value: withReport(func(r *core.Report) (float64, bool, string) {
			name := r.InterFailurePM.Fits.BestName()
			if name == "" {
				return 0, false, "no family could be fitted"
			}
			return boolVal(name == "gamma"), true, "best fit: " + name
		}),
	},
	{
		name:  "interfailure_best_fit_vm",
		paper: "§IV.B: Gamma is the best-fitting family for VM inter-failure times",
		pass:  yes, warn: yes,
		value: withReport(func(r *core.Report) (float64, bool, string) {
			name := r.InterFailureVM.Fits.BestName()
			if name == "" {
				return 0, false, "no family could be fitted"
			}
			return boolVal(name == "gamma"), true, "best fit: " + name
		}),
	},
	{
		name:  "gamma_shape_vm",
		paper: "§IV.B: Gamma shape < 1 — failures burst, then long quiet gaps",
		pass:  Range{0.05, 1.0}, warn: Range{0.05, 1.2},
		value: withReport(func(r *core.Report) (float64, bool, string) {
			for _, fr := range r.InterFailureVM.Fits.Results {
				if g, ok := fr.Dist.(dist.Gamma); ok {
					return g.Shape, true, ""
				}
			}
			return 0, false, "gamma fit unavailable"
		}),
	},
	{
		name:  "gamma_margin_pm",
		paper: "§IV.B: Gamma beats the memoryless Exponential by a clear LL margin (PM)",
		unit:  "nats",
		pass:  Range{3, 1e7}, warn: Range{0.5, 1e7},
		value: withReport(func(r *core.Report) (float64, bool, string) {
			return gammaMargin(r.InterFailurePM.Fits)
		}),
	},
	{
		name:  "gamma_margin_vm",
		paper: "§IV.B: Gamma beats the memoryless Exponential by a clear LL margin (VM)",
		unit:  "nats",
		pass:  Range{10, 1e7}, warn: Range{2, 1e7},
		value: withReport(func(r *core.Report) (float64, bool, string) {
			return gammaMargin(r.InterFailureVM.Fits)
		}),
	},
	{
		name:  "vm_interfailure_mean",
		paper: "§IV.B: mean VM inter-failure time ≈37 days",
		unit:  "days",
		pass:  Range{20, 90}, warn: Range{12, 120},
		value: withReport(func(r *core.Report) (float64, bool, string) {
			if r.InterFailureVM.Summary.N == 0 {
				return 0, false, "no VM inter-failure gaps"
			}
			return r.InterFailureVM.Summary.Mean, true, ""
		}),
	},
	{
		name:  "vm_single_failure_share",
		paper: "§IV.B: ≈60% of failing VMs fail exactly once",
		pass:  Range{0.45, 0.85}, warn: Range{0.35, 0.92},
		value: withReport(func(r *core.Report) (float64, bool, string) {
			f := r.InterFailureVM
			if f.FailingServers == 0 {
				return 0, false, "no failing VMs"
			}
			return float64(f.SingleFailureServers) / float64(f.FailingServers), true, ""
		}),
	},
	{
		name:  "repair_lognormal_deficit_pm",
		paper: "§IV.C: PM repair times follow a Lognormal (within noise of the best fit)",
		unit:  "nats/obs",
		pass:  Range{0, 0.10}, warn: Range{0, 0.25},
		value: withReport(func(r *core.Report) (float64, bool, string) {
			return lognormalDeficit(r.RepairPM.Fits, r.RepairPM.Summary.N)
		}),
	},
	{
		name:  "repair_lognormal_deficit_vm",
		paper: "§IV.C: VM repair times follow a Lognormal (within noise of the best fit)",
		unit:  "nats/obs",
		pass:  Range{0, 0.10}, warn: Range{0, 0.25},
		value: withReport(func(r *core.Report) (float64, bool, string) {
			return lognormalDeficit(r.RepairVM.Fits, r.RepairVM.Summary.N)
		}),
	},
	{
		name:  "pm_vm_repair_ratio",
		paper: "§IV.C: PM repairs take ≈2× longer than VM repairs (38.5 h vs 19.6 h)",
		pass:  Range{1.2, 4.0}, warn: Range{1.05, 6.0},
		value: withReport(func(r *core.Report) (float64, bool, string) {
			if r.RepairPM.Summary.N == 0 || r.RepairVM.Summary.N == 0 || r.RepairVM.Summary.Mean == 0 {
				return 0, false, "repair sample for a machine kind unavailable"
			}
			return r.RepairPM.Summary.Mean / r.RepairVM.Summary.Mean, true, ""
		}),
	},
	{
		name:  "vm_reboot_share",
		paper: "§IV.C: ≈35% of VM failures are unexpected reboots (quick repairs)",
		pass:  Range{0.15, 0.60}, warn: Range{0.08, 0.70},
		value: withReport(func(r *core.Report) (float64, bool, string) {
			if r.RepairVM.Summary.N == 0 {
				return 0, false, "no VM repairs"
			}
			return r.RepairVM.RebootShare, true, ""
		}),
	},
	{
		name:  "recurrent_random_ratio_pm",
		paper: "§IV.D: a just-failed PM is 35–42× likelier to fail again within a week",
		pass:  Range{10, 120}, warn: Range{5, 200},
		value: withReport(func(r *core.Report) (float64, bool, string) {
			v, ok := recurrentRatio(r, model.PM)
			if !ok {
				return 0, false, "ratio undefined (no recurrences)"
			}
			return v, true, ""
		}),
	},
	{
		name:  "recurrent_random_ratio_vm",
		paper: "§IV.D: a just-failed VM is 35–42× likelier to fail again within a week",
		pass:  Range{10, 120}, warn: Range{5, 200},
		value: withReport(func(r *core.Report) (float64, bool, string) {
			v, ok := recurrentRatio(r, model.VM)
			if !ok {
				return 0, false, "ratio undefined (no recurrences)"
			}
			return v, true, ""
		}),
	},
	{
		name:  "incident_share_one",
		paper: "§IV.E: 78% of incidents involve exactly one server",
		pass:  Range{0.65, 0.90}, warn: Range{0.55, 0.95},
		value: withReport(func(r *core.Report) (float64, bool, string) {
			if r.Spatial.Incidents == 0 {
				return 0, false, "no incidents"
			}
			return r.Spatial.ShareOne, true, ""
		}),
	},
	{
		name:  "dependent_vm_gt_pm",
		paper: "§IV.E: multi-server incidents are more common among VMs than PMs",
		pass:  yes, warn: yes,
		value: withReport(func(r *core.Report) (float64, bool, string) {
			if r.Spatial.Incidents == 0 {
				return 0, false, "no incidents"
			}
			return boolVal(r.Spatial.DependentVMShare > r.Spatial.DependentPMShare), true, ""
		}),
	},
	{
		name:  "max_incident_servers",
		paper: "§IV.E: the largest incident spans tens of servers (power outage)",
		unit:  "servers",
		pass:  Range{15, 40}, warn: Range{8, 80},
		value: withReport(func(r *core.Report) (float64, bool, string) {
			if r.Spatial.Incidents == 0 {
				return 0, false, "no incidents"
			}
			return float64(r.Spatial.MaxServers), true, ""
		}),
	},
	{
		name:  "power_fanout_mean",
		paper: "§IV.E Table VII: power incidents hit ≈2.7 servers on average",
		unit:  "servers/incident",
		pass:  Range{1.4, 4.0}, warn: Range{1.1, 5.0},
		value: withReport(func(r *core.Report) (float64, bool, string) {
			for _, cs := range r.SpatialClass {
				if cs.Class == model.ClassPower {
					if cs.Incidents == 0 {
						return 0, false, "no power incidents"
					}
					return cs.Mean, true, ""
				}
			}
			return 0, false, "no power incidents"
		}),
	},
	{
		name:  "bathtub_score",
		paper: "§IV.F: VM failures do NOT follow a bathtub curve over age",
		pass:  Range{0, 1.5}, warn: Range{0, 2.0},
		value: withReport(func(r *core.Report) (float64, bool, string) {
			if len(r.Age.AgesDays) == 0 {
				return 0, false, "no age-eligible failures"
			}
			return r.Age.BathtubScore, true, ""
		}),
	},
	{
		name:  "age_ks_uniform",
		paper: "§IV.F: failure-age CDF stays close to the uniform diagonal",
		pass:  Range{0, 0.25}, warn: Range{0, 0.35},
		value: withReport(func(r *core.Report) (float64, bool, string) {
			if len(r.Age.AgesDays) == 0 {
				return 0, false, "no age-eligible failures"
			}
			return r.Age.KSUniform, true, ""
		}),
	},
	{
		name:  "age_eligible_fraction",
		paper: "§IV.F: the creation-date filter keeps ≈75% of VMs",
		pass:  Range{0.55, 0.90}, warn: Range{0.45, 0.95},
		value: withReport(func(r *core.Report) (float64, bool, string) {
			if r.Age.TotalVMs == 0 {
				return 0, false, "no VMs"
			}
			return float64(r.Age.EligibleVMs) / float64(r.Age.TotalVMs), true, ""
		}),
	},
	{
		name:  "sanitization_accounting",
		paper: "§III.A: every generated ticket is either kept or accounted as dropped",
		pass:  yes, warn: yes,
		value: func(in Input) (float64, bool, string) {
			m := in.Metrics
			gen := m["dcsim.tickets"]
			if gen == 0 {
				return 0, false, "run not observed (no metrics snapshot)"
			}
			kept := m["ingest.tickets_in_window"]
			dropped := m["ingest.tickets_window_dropped"]
			return boolVal(gen == kept+dropped), true, ""
		},
	},
	{
		name:  "join_coverage",
		paper: "§III.A: monitoring join finds usage series for (nearly) every machine",
		pass:  Range{0.92, 1}, warn: Range{0.82, 1},
		value: func(in Input) (float64, bool, string) {
			m := in.Metrics
			hits := m["ingest.join_hits"]
			misses := m["ingest.join_misses"]
			if hits+misses == 0 {
				return 0, false, "run not observed (no metrics snapshot)"
			}
			return hits / (hits + misses), true, ""
		},
	},
}
