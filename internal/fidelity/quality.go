package fidelity

import (
	"math"
	"sort"

	"failscope/internal/model"
)

// ClassScore is one row of the six-class confusion summary: how well one
// resolution class (or the background pseudo-class) was recovered.
type ClassScore struct {
	Class     string  `json:"class"`
	Truth     int     `json:"truth"`     // ground-truth tickets in the test set
	Predicted int     `json:"predicted"` // tickets the classifier assigned here
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
}

// DropAccounting reconciles what the simulator produced against what the
// sanitized pipeline kept — the §III.A "data sanitization" bookkeeping.
// Counts are read from the run's metrics registry and are zero when the
// run was unobserved.
type DropAccounting struct {
	TicketsGenerated      int64 `json:"tickets_generated"`
	TicketsInWindow       int64 `json:"tickets_in_window"`
	TicketsWindowDropped  int64 `json:"tickets_window_dropped"`
	MonitorSamples        int64 `json:"monitor_samples"`
	MonitorSamplesDropped int64 `json:"monitor_samples_dropped"`
	// Consistent is true when generated = kept + dropped held for every
	// accounted stream that had data.
	Consistent bool `json:"consistent"`
}

// Quality scores the collection pipeline against the simulator's ground
// truth. Classifier-derived fields are present only when classification
// ran; registry-derived fields (drops, join coverage) only when the run
// was observed.
type Quality struct {
	ClassifierRan bool `json:"classifier_ran"`
	TrainDocs     int  `json:"train_docs,omitempty"`
	TestDocs      int  `json:"test_docs,omitempty"`

	// Crash-ticket mining: the binary crash-vs-background decision.
	CrashPrecision float64 `json:"crash_precision,omitempty"`
	CrashRecall    float64 `json:"crash_recall,omitempty"`
	CrashF1        float64 `json:"crash_f1,omitempty"`

	// Six-class resolution accuracy over true crash tickets (the paper's
	// ≈87%), plus the per-class confusion summary.
	CrashClassAccuracy float64      `json:"crash_class_accuracy,omitempty"`
	OverallAccuracy    float64      `json:"overall_accuracy,omitempty"`
	PerClass           []ClassScore `json:"per_class,omitempty"`

	// k-means cluster purity of the two training stages.
	Stage1Purity float64 `json:"stage1_purity,omitempty"`
	Stage2Purity float64 `json:"stage2_purity,omitempty"`

	Drops *DropAccounting `json:"drops,omitempty"`

	// Monitoring-join coverage: fraction of machines whose usage series
	// were found in the monitoring DB.
	JoinHits     int64   `json:"join_hits,omitempty"`
	JoinMisses   int64   `json:"join_misses,omitempty"`
	JoinCoverage float64 `json:"join_coverage,omitempty"`
}

// classLabelName maps a confusion-matrix label to its display name.
func classLabelName(l int) string {
	if l == 0 {
		return "background"
	}
	return model.FailureClass(l).String()
}

// ScoreQuality computes the ground-truth quality report for a run.
func ScoreQuality(in Input) *Quality {
	q := &Quality{}
	if cr := in.Classifier; cr != nil {
		q.ClassifierRan = true
		q.TrainDocs = cr.TrainDocs
		q.TestDocs = cr.TestDocs
		q.CrashPrecision = cr.CrashPrecision
		q.CrashRecall = cr.CrashRecall
		if s := cr.CrashPrecision + cr.CrashRecall; s > 0 {
			q.CrashF1 = 2 * cr.CrashPrecision * cr.CrashRecall / s
		}
		q.CrashClassAccuracy = cr.CrashClassAccuracy
		q.OverallAccuracy = cr.Accuracy
		q.Stage1Purity = cr.Stage1Purity
		q.Stage2Purity = cr.Stage2Purity
		if cm := cr.Confusion; cm != nil {
			labels := append([]int(nil), cm.Labels...)
			sort.Ints(labels)
			for _, l := range labels {
				cs := ClassScore{Class: classLabelName(l)}
				for key, n := range cm.Counts {
					if key[0] == l {
						cs.Truth += n
					}
					if key[1] == l {
						cs.Predicted += n
					}
				}
				cs.Precision = nanToZero(cm.Precision(l))
				cs.Recall = nanToZero(cm.Recall(l))
				if s := cs.Precision + cs.Recall; s > 0 {
					cs.F1 = 2 * cs.Precision * cs.Recall / s
				}
				q.PerClass = append(q.PerClass, cs)
			}
		}
	}

	if m := in.Metrics; len(m) > 0 {
		d := &DropAccounting{
			TicketsGenerated:      int64(m["dcsim.tickets"]),
			TicketsInWindow:       int64(m["ingest.tickets_in_window"]),
			TicketsWindowDropped:  int64(m["ingest.tickets_window_dropped"]),
			MonitorSamples:        int64(m["monitordb.samples"]),
			MonitorSamplesDropped: int64(m["monitordb.samples_dropped"]),
		}
		d.Consistent = d.TicketsGenerated == 0 ||
			d.TicketsGenerated == d.TicketsInWindow+d.TicketsWindowDropped
		q.Drops = d

		q.JoinHits = int64(m["ingest.join_hits"])
		q.JoinMisses = int64(m["ingest.join_misses"])
		if total := q.JoinHits + q.JoinMisses; total > 0 {
			q.JoinCoverage = float64(q.JoinHits) / float64(total)
		}
	}
	return q
}

func nanToZero(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	return v
}
