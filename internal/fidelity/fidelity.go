// Package fidelity is the reproduction-quality scoreboard: it observes
// whether a pipeline run is a *good reproduction*, the counterpart to
// internal/obs which observes whether it is a *fast run*.
//
// Two layers:
//
//   - Quality scores the collection pipeline against the simulator's
//     ground truth (crash-ticket mining precision/recall, six-class
//     confusion summary, k-means cluster purity, sanitization-drop
//     accounting, monitoring-join coverage).
//   - The paper bands are a declarative table of the study's headline
//     numbers (≈87% classification accuracy, the PM>VM failure-rate gap,
//     Gamma inter-failure and Lognormal repair fits, no-bathtub age
//     profile, ...) evaluated against the run's analysis report with
//     pass/warn/fail verdicts.
//
// Everything here is a pure function of the run's outputs — scoring never
// touches a random stream or feeds back into the pipeline, so study
// output is byte-identical with scoring on or off (enforced by
// TestObservedStudyByteIdentical at the repo root). A failing band turns
// reproduction drift into a red build via Scoreboard.Err, which the
// failanalyze -fidelity-gate mode maps to a non-zero exit.
package fidelity

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"failscope/internal/core"
	"failscope/internal/ingest"
)

// Verdict is a band's outcome.
type Verdict string

// Band verdicts. Skip marks a band whose input was unavailable in this
// run (e.g. classification bands when -classify was off); skipped bands
// never fail the gate.
const (
	VerdictPass Verdict = "pass"
	VerdictWarn Verdict = "warn"
	VerdictFail Verdict = "fail"
	VerdictSkip Verdict = "skip"
)

// Range is a closed interval [Lo, Hi]. Bounds are always finite so the
// scoreboard serializes cleanly as JSON (encoding/json rejects ±Inf);
// effectively-unbounded sides use generous sentinels instead.
type Range struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// Contains reports whether v lies in the interval.
func (r Range) Contains(v float64) bool {
	return !math.IsNaN(v) && v >= r.Lo && v <= r.Hi
}

func (r Range) String() string { return fmt.Sprintf("[%g, %g]", r.Lo, r.Hi) }

// Band is one evaluated paper-expected check: the measured value, the
// pass band, the wider warn band and the resulting verdict.
type Band struct {
	// Name is the stable machine-readable identifier ("pm_weekly_rate").
	Name string `json:"name"`
	// Paper cites what the paper reports ("§IV.A: PMs fail ≈40% more").
	Paper   string  `json:"paper"`
	Unit    string  `json:"unit,omitempty"`
	Value   float64 `json:"value"`
	Pass    Range   `json:"pass"`
	Warn    Range   `json:"warn"`
	Verdict Verdict `json:"verdict"`
	// Note explains a skip (missing input) or carries extra context.
	Note string `json:"note,omitempty"`
}

// Scoreboard is the full fidelity report of one run.
type Scoreboard struct {
	Quality *Quality `json:"quality,omitempty"`
	Bands   []Band   `json:"bands"`
	Passed  int      `json:"passed"`
	Warned  int      `json:"warned"`
	Failed  int      `json:"failed"`
	Skipped int      `json:"skipped"`
}

// Input bundles everything the scoreboard reads: the analysis report, the
// classifier report when classification ran (nil otherwise), and a
// snapshot of the run's metrics registry (empty map when unobserved) for
// the drop-accounting and join-coverage scores.
type Input struct {
	Report     *core.Report
	Classifier *ingest.ClassifierReport
	Metrics    map[string]float64
}

// NewBand grades one measured value against its pass and warn ranges.
// ok=false marks the band skipped (input unavailable); a NaN value is
// zeroed so the band serializes cleanly. Scorers outside this package
// (e.g. the detection scoreboard) build bands through this so their gate
// semantics stay identical to the paper bands'.
func NewBand(name, paper, unit string, pass, warn Range, v float64, ok bool, note string) Band {
	b := Band{
		Name:  name,
		Paper: paper,
		Unit:  unit,
		Pass:  pass,
		Warn:  warn,
		Note:  note,
	}
	switch {
	case !ok:
		b.Verdict = VerdictSkip
	default:
		b.Value = v
		switch {
		case pass.Contains(v):
			b.Verdict = VerdictPass
		case warn.Contains(v):
			b.Verdict = VerdictWarn
		default:
			b.Verdict = VerdictFail
		}
	}
	if math.IsNaN(b.Value) {
		b.Value = 0
	}
	return b
}

// Tally assembles graded bands into a scoreboard, counting verdicts.
func Tally(bands []Band) *Scoreboard {
	sb := &Scoreboard{Bands: bands}
	for _, b := range bands {
		switch b.Verdict {
		case VerdictPass:
			sb.Passed++
		case VerdictWarn:
			sb.Warned++
		case VerdictFail:
			sb.Failed++
		case VerdictSkip:
			sb.Skipped++
		}
	}
	return sb
}

// Score evaluates the full scoreboard: ground-truth quality plus every
// paper band.
func Score(in Input) *Scoreboard {
	bands := make([]Band, 0, len(paperBands))
	for _, spec := range paperBands {
		v, ok, note := spec.value(in)
		bands = append(bands, NewBand(spec.name, spec.paper, spec.unit, spec.pass, spec.warn, v, ok, note))
	}
	sb := Tally(bands)
	sb.Quality = ScoreQuality(in)
	return sb
}

// Err returns a non-nil error naming every failed band, or nil when the
// scoreboard is gate-clean (warn and skip do not trip the gate). This is
// what -fidelity-gate maps to the process exit code.
func (s *Scoreboard) Err() error {
	if s == nil {
		return nil
	}
	var failed []string
	for _, b := range s.Bands {
		if b.Verdict == VerdictFail {
			failed = append(failed, fmt.Sprintf("%s=%.4g pass %s", b.Name, b.Value, b.Pass))
		}
	}
	if len(failed) == 0 {
		return nil
	}
	sort.Strings(failed)
	return fmt.Errorf("fidelity: %d band(s) outside their paper-expected range: %s",
		len(failed), strings.Join(failed, "; "))
}

// Find returns the band with the given name, or nil.
func (s *Scoreboard) Find(name string) *Band {
	if s == nil {
		return nil
	}
	for i := range s.Bands {
		if s.Bands[i].Name == name {
			return &s.Bands[i]
		}
	}
	return nil
}
