package stream

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"failscope/internal/mempool"
	"failscope/internal/model"
	"failscope/internal/monitordb"
)

// groupedTestConfig builds an engine config over the small-study window.
func groupedTestConfig(t *testing.T) Config {
	t.Helper()
	start, err := time.Parse(time.RFC3339, "2012-07-01T00:00:00Z")
	if err != nil {
		t.Fatal(err)
	}
	return Config{Observation: model.Window{Start: start, End: start.AddDate(1, 0, 0)}}
}

// TestApplyGroupedMatchesApply replays the same event stream through Apply
// and single-threaded ApplyGrouped and requires identical snapshots: with
// no concurrent callers, group commit must be a plain Apply.
func TestApplyGroupedMatchesApply(t *testing.T) {
	field, _, _ := smallBatch(t)
	events := EventsFromField(field.Data, field.Tickets, field.Monitor)

	run := func(apply func(e *Engine, batch []Event) error) *Snapshot {
		eng, err := NewEngine(groupedTestConfig(t))
		if err != nil {
			t.Fatal(err)
		}
		const batch = 512
		for lo := 0; lo < len(events); lo += batch {
			hi := lo + batch
			if hi > len(events) {
				hi = len(events)
			}
			if err := apply(eng, events[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
		return eng.Snapshot()
	}

	plain := run(func(e *Engine, b []Event) error { return e.Apply(b) })
	grouped := run(func(e *Engine, b []Event) error { return e.ApplyGrouped(b) })
	if !reflect.DeepEqual(plain, grouped) {
		pj, _ := json.Marshal(plain)
		gj, _ := json.Marshal(grouped)
		t.Fatalf("snapshots diverge:\napply:   %s\ngrouped: %s", pj, gj)
	}
}

// TestApplyGroupedConcurrent hammers ApplyGrouped from many goroutines
// (the -race regression test for the leader/follower handoff) and checks
// nothing is lost or double-applied: every batch's events are counted
// exactly once and per-server ticket order is preserved within a batch.
func TestApplyGroupedConcurrent(t *testing.T) {
	eng, err := NewEngine(groupedTestConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	base, _ := time.Parse(time.RFC3339, "2012-07-02T00:00:00Z")

	const workers = 8
	const batches = 20
	const perBatch = 5
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := model.MachineID(fmt.Sprintf("S1-PM-%04d", w))
			mach := &model.Machine{ID: id, Kind: model.PM, System: 1, Created: base}
			if err := eng.ApplyGrouped([]Event{{Type: "machine", Machine: mach}}); err != nil {
				t.Error(err)
				return
			}
			for b := 0; b < batches; b++ {
				evs := make([]Event, 0, perBatch)
				for i := 0; i < perBatch; i++ {
					seq := b*perBatch + i
					opened := base.Add(time.Duration(seq) * time.Hour)
					evs = append(evs, Event{Type: "ticket", Ticket: &model.Ticket{
						ID: fmt.Sprintf("T%d-%d", w, seq), ServerID: id, System: 1,
						Opened: opened, Closed: opened.Add(30 * time.Minute),
						Description: "x", Resolution: "y", IsCrash: true,
					}})
				}
				if err := eng.ApplyGrouped(evs); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	snap := eng.Snapshot()
	wantEvents := int64(workers * (1 + batches*perBatch))
	if snap.Events != wantEvents {
		t.Errorf("events = %d, want %d", snap.Events, wantEvents)
	}
	if want := int64(workers * batches * perBatch); snap.Tickets != want {
		t.Errorf("tickets = %d, want %d", snap.Tickets, want)
	}
	if snap.Machines != workers {
		t.Errorf("machines = %d, want %d", snap.Machines, workers)
	}
	// Tickets within each server arrive in order inside their batches and
	// batches are applied whole, so nothing may be flagged out of order.
	if snap.OutOfOrder != 0 {
		t.Errorf("outOfOrder = %d, want 0", snap.OutOfOrder)
	}
}

// TestIngestSteadyStateAllocs pins the server ingestion path — pooled wire
// decode plus group-commit apply — at its steady-state allocation cost.
// The legacy path (DecodeJSONL + Apply) pays ~14 decoder allocations per
// event before the engine even sees the batch; the pooled path must stay
// under 4 per event end to end once pools are warm.
func TestIngestSteadyStateAllocs(t *testing.T) {
	if !mempool.Enabled() {
		t.Skip("pooling disabled")
	}
	eng, err := NewEngine(groupedTestConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	base, _ := time.Parse(time.RFC3339, "2012-07-02T00:00:00Z")
	id := model.MachineID("S1-PM-0001")
	if err := eng.ApplyGrouped([]Event{{Type: "machine", Machine: &model.Machine{
		ID: id, Kind: model.PM, System: 1, Created: base,
	}}}); err != nil {
		t.Fatal(err)
	}

	const perBatch = 64
	events := make([]Event, 0, perBatch)
	for i := 0; i < perBatch; i++ {
		at := base.Add(time.Duration(i) * 15 * time.Minute)
		events = append(events, Event{
			Type: "sample", ServerID: id,
			Metric: monitordb.MetricCPUUtil, Time: &at, Value: float64(i),
		})
	}
	var wire bytes.Buffer
	if err := EncodeJSONL(&wire, events); err != nil {
		t.Fatal(err)
	}
	raw := wire.Bytes()

	// Warm the pools and the engine's series state outside measurement.
	var rd bytes.Reader
	ingest := func() {
		rd.Reset(raw)
		b := GetBatch()
		defer b.Release()
		if _, err := b.DecodeJSONLInto(&rd); err != nil {
			t.Fatal(err)
		}
		if err := eng.ApplyGrouped(b.Events); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		ingest()
	}

	perEvent := testing.AllocsPerRun(100, ingest) / perBatch
	if perEvent > 4 {
		t.Errorf("ingest path allocates %.2f per event, want <= 4", perEvent)
	}
}
