package stream

// Engine checkpoint persistence — the state image the durable subsystem
// writes at checkpoint time and the WAL replays on top of after a crash.
// The blob is self-delimiting so it can be embedded in larger streams:
//
//	magic "FSENG001"
//	gob engineImage      (counters, distributions, machine roster; its
//	                      HasMonitor/HasDetector fields say what follows)
//	monitordb binary segment   (iff HasMonitor)
//	detect gob image           (iff HasDetector)
//
// Every statistic-bearing field is captured exactly: the headline
// invariant is that an engine restored at sequence k and fed events[k:]
// produces snapshots, reports, alerts and monitor exports DeepEqual to an
// engine that applied the whole stream uninterrupted. Fields that are
// pure observation (Observer registry, classifier scratch counters) are
// not part of the image; they repopulate as the restored engine runs.

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"failscope/internal/model"
	"failscope/internal/monitordb"
	"failscope/internal/sketch"
)

const (
	engineStateMagic   = "FSENG001"
	engineStateVersion = 1
)

type distImage struct {
	M sketch.MomentsState
	Q sketch.QuantileState
}

type recImage struct {
	Failures                  int
	UncDay, UncWeek, UncMonth int
	HitDay, HitWeek, HitMonth int
}

type spatialImage struct {
	Incidents, Servers, Max int
}

type engineImage struct {
	Version int

	// Win is the observation window the image was produced under; an
	// engine configured with a different window would recompute every
	// censored denominator differently, so restore refuses a mismatch.
	Win model.Window

	Events    int64
	Watermark time.Time

	Machines    []model.Machine // machineList order (arrival order)
	ServerCount [2][model.NumSystems + 1]int

	Tickets, CrashTickets int64
	DroppedOutOfWindow    int64
	OutOfOrder            int64

	SysAll, SysCrash [model.NumSystems + 1]int
	SysKindCrash     [2][model.NumSystems + 1]int

	Weekly       [2][model.NumSystems + 1][]int
	WeeklyFailed [2][model.NumSystems + 1][]map[model.MachineID]bool

	ClassCounts map[model.System]map[model.FailureClass]int
	ClassTotals map[model.System]int

	LastCrash  map[model.MachineID]time.Time
	CrashCount map[model.MachineID]int

	Gaps, Repairs [2]distImage
	KindCrashes   [2]int
	Reboots       [2]int
	Failing       [2]int
	Singles       [2]int

	Rec [2][model.NumSystems + 1]recImage

	Incidents       int
	IncidentOne     int
	IncidentTwoPlus int
	IncidentServers int
	MaxIncident     int
	MaxIncidentCls  model.FailureClass
	PMBuckets       [3]int
	VMBuckets       [3]int
	ClassSpatial    map[model.FailureClass]spatialImage

	MonitorSamples int64

	Confusion         map[[2]int]int
	Scored, ScoredHit int64

	HasMonitor, HasDetector bool
}

// WriteState serializes the engine's complete statistical state, returning
// the sequence number (event count) the image captures. Safe to call
// concurrently with appliers; the image is a consistent cut between
// commit groups.
func (e *Engine) WriteState(w io.Writer) (int64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(engineStateMagic); err != nil {
		return 0, err
	}

	img := engineImage{
		Version:            engineStateVersion,
		Win:                e.win,
		Events:             e.events,
		Watermark:          e.watermark,
		ServerCount:        e.serverCount,
		Tickets:            e.tickets,
		CrashTickets:       e.crashTickets,
		DroppedOutOfWindow: e.droppedOutOfWindow,
		OutOfOrder:         e.outOfOrder,
		SysAll:             e.sysAll,
		SysCrash:           e.sysCrash,
		SysKindCrash:       e.sysKindCrash,
		Weekly:             e.weekly,
		WeeklyFailed:       e.weeklyFailed,
		ClassCounts:        e.classCounts,
		ClassTotals:        e.classTotals,
		LastCrash:          e.lastCrash,
		CrashCount:         e.crashCount,
		KindCrashes:        e.kindCrashes,
		Reboots:            e.reboots,
		Failing:            e.failing,
		Singles:            e.singles,
		Incidents:          e.incidents,
		IncidentOne:        e.incidentOne,
		IncidentTwoPlus:    e.incidentTwoPlus,
		IncidentServers:    e.incidentServers,
		MaxIncident:        e.maxIncident,
		MaxIncidentCls:     e.maxIncidentCls,
		PMBuckets:          e.pmBuckets,
		VMBuckets:          e.vmBuckets,
		MonitorSamples:     e.monitorSamples,
		Confusion:          e.confusion,
		Scored:             e.scored,
		ScoredHit:          e.scoredHit,
		HasMonitor:         e.monitor != nil,
		HasDetector:        e.cfg.Detector != nil,
	}
	img.Machines = make([]model.Machine, len(e.machineList))
	for i, m := range e.machineList {
		img.Machines[i] = *m
	}
	for k := 0; k < 2; k++ {
		img.Gaps[k] = distImage{M: e.gaps[k].m.State(), Q: e.gaps[k].q.State()}
		img.Repairs[k] = distImage{M: e.repairs[k].m.State(), Q: e.repairs[k].q.State()}
		for s := 0; s <= model.NumSystems; s++ {
			rc := e.rec[k][s]
			img.Rec[k][s] = recImage{
				Failures: rc.failures,
				UncDay:   rc.uncDay, UncWeek: rc.uncWeek, UncMonth: rc.uncMonth,
				HitDay: rc.hitDay, HitWeek: rc.hitWeek, HitMonth: rc.hitMonth,
			}
		}
	}
	img.ClassSpatial = make(map[model.FailureClass]spatialImage, len(e.classSpatial))
	for cls, cs := range e.classSpatial {
		img.ClassSpatial[cls] = spatialImage{Incidents: cs.incidents, Servers: cs.servers, Max: cs.max}
	}
	if err := gob.NewEncoder(bw).Encode(&img); err != nil {
		return 0, fmt.Errorf("stream: write state: %w", err)
	}

	if e.monitor != nil {
		if err := e.monitor.WriteSegment(bw); err != nil {
			return 0, err
		}
	}
	if e.cfg.Detector != nil {
		if err := e.cfg.Detector.WriteState(bw); err != nil {
			return 0, err
		}
	}
	return e.events, bw.Flush()
}

// RestoreState overwrites the engine's statistical state with a previously
// written image. The engine must be freshly configured with the same
// observation window, monitoring and detection settings as the writer;
// mismatches are refused rather than silently diverging. The journal, if
// any, must be attached only after restore (and any WAL replay) completes.
func (e *Engine) RestoreState(r io.Reader) error {
	e.mu.Lock()
	defer e.mu.Unlock()

	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	magic := make([]byte, len(engineStateMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("stream: read state magic: %w", err)
	}
	if string(magic) != engineStateMagic {
		return fmt.Errorf("stream: bad state magic %q", magic)
	}
	var img engineImage
	if err := gob.NewDecoder(br).Decode(&img); err != nil {
		return fmt.Errorf("stream: read state: %w", err)
	}
	if img.Version != engineStateVersion {
		return fmt.Errorf("stream: state version %d, want %d", img.Version, engineStateVersion)
	}
	if !img.Win.Start.Equal(e.win.Start) || !img.Win.End.Equal(e.win.End) {
		return fmt.Errorf("stream: state window %v–%v, engine configured with %v–%v",
			img.Win.Start, img.Win.End, e.win.Start, e.win.End)
	}
	if img.HasMonitor != (e.monitor != nil) {
		return fmt.Errorf("stream: state monitor=%v, engine monitor=%v", img.HasMonitor, e.monitor != nil)
	}
	if img.HasDetector != (e.cfg.Detector != nil) {
		return fmt.Errorf("stream: state detector=%v, engine detector=%v", img.HasDetector, e.cfg.Detector != nil)
	}

	e.events = img.Events
	e.watermark = img.Watermark
	e.machines = make(map[model.MachineID]*model.Machine, len(img.Machines))
	e.machineList = make([]*model.Machine, len(img.Machines))
	for i := range img.Machines {
		m := img.Machines[i]
		e.machineList[i] = &m
		e.machines[m.ID] = &m
	}
	e.serverCount = img.ServerCount
	e.tickets, e.crashTickets = img.Tickets, img.CrashTickets
	e.droppedOutOfWindow = img.DroppedOutOfWindow
	e.outOfOrder = img.OutOfOrder
	e.sysAll, e.sysCrash = img.SysAll, img.SysCrash
	e.sysKindCrash = img.SysKindCrash
	e.weekly = img.Weekly
	e.weeklyFailed = img.WeeklyFailed
	e.classCounts = img.ClassCounts
	if e.classCounts == nil {
		e.classCounts = make(map[model.System]map[model.FailureClass]int)
	}
	e.classTotals = img.ClassTotals
	if e.classTotals == nil {
		e.classTotals = make(map[model.System]int)
	}
	e.lastCrash = img.LastCrash
	if e.lastCrash == nil {
		e.lastCrash = make(map[model.MachineID]time.Time)
	}
	e.crashCount = img.CrashCount
	if e.crashCount == nil {
		e.crashCount = make(map[model.MachineID]int)
	}
	for k := 0; k < 2; k++ {
		e.gaps[k].m.Restore(img.Gaps[k].M)
		e.gaps[k].q = sketch.RestoreQuantile(img.Gaps[k].Q)
		e.repairs[k].m.Restore(img.Repairs[k].M)
		e.repairs[k].q = sketch.RestoreQuantile(img.Repairs[k].Q)
		for s := 0; s <= model.NumSystems; s++ {
			ri := img.Rec[k][s]
			e.rec[k][s] = recCounters{
				failures: ri.Failures,
				uncDay:   ri.UncDay, uncWeek: ri.UncWeek, uncMonth: ri.UncMonth,
				hitDay: ri.HitDay, hitWeek: ri.HitWeek, hitMonth: ri.HitMonth,
			}
		}
	}
	e.kindCrashes, e.reboots = img.KindCrashes, img.Reboots
	e.failing, e.singles = img.Failing, img.Singles
	e.incidents = img.Incidents
	e.incidentOne, e.incidentTwoPlus = img.IncidentOne, img.IncidentTwoPlus
	e.incidentServers = img.IncidentServers
	e.maxIncident, e.maxIncidentCls = img.MaxIncident, img.MaxIncidentCls
	e.pmBuckets, e.vmBuckets = img.PMBuckets, img.VMBuckets
	e.classSpatial = make(map[model.FailureClass]*classSpatialAcc, len(img.ClassSpatial))
	for cls, cs := range img.ClassSpatial {
		e.classSpatial[cls] = &classSpatialAcc{incidents: cs.Incidents, servers: cs.Servers, max: cs.Max}
	}
	e.monitorSamples = img.MonitorSamples
	e.confusion = img.Confusion
	if e.confusion == nil {
		e.confusion = make(map[[2]int]int)
	}
	e.scored, e.scoredHit = img.Scored, img.ScoredHit

	if img.HasMonitor {
		db, err := monitordb.ReadSegment(br)
		if err != nil {
			return err
		}
		db.Instrument(e.cfg.Observer.Metrics())
		db.SetLogger(e.cfg.Observer.Log())
		e.monitor = db
		_, e.monitorEnd = db.Window()
	}
	if img.HasDetector {
		if err := e.cfg.Detector.RestoreState(br); err != nil {
			return err
		}
	}
	return nil
}
