package stream

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
	"unicode/utf16"
	"unicode/utf8"
	"unsafe"

	"failscope/internal/mempool"
	"failscope/internal/model"
	"failscope/internal/monitordb"
)

// This file is the zero-copy JSONL event decoder: it scans the known Event
// schema directly out of the raw line buffer — no intermediate maps, no
// reflection, no per-field boxing — and lands the decoded payloads in a
// pooled Batch whose arenas are recycled across requests. The contract
// mirrors PR5's tokenizer rewrite: the fast path only accepts input it can
// decode bit-for-bit the way encoding/json would; anything it is not
// certain about (non-UTC timezones, duplicate struct keys, surrogate
// escapes, malformed syntax) falls back to json.Unmarshal for that line,
// so observable behavior — values and error text alike — is unchanged.
// TestDecodeJSONLMatchesLegacy holds the two decoders equal.

// decodeFastLines / decodeFallbackLines count, process-wide, how many
// lines the scanner decoded itself versus delegated. The equivalence tests
// use them to prove canonical encoder output never falls back.
var decodeFastLines, decodeFallbackLines atomic.Int64

// DecodeStats reports how many JSONL lines were decoded by the fast
// scanner and how many fell back to encoding/json since process start.
func DecodeStats() (fast, fallback int64) {
	return decodeFastLines.Load(), decodeFallbackLines.Load()
}

// Batch is a decoded event batch backed by pooled arenas: the Event slice
// plus the time/bool/machine/ticket/incident values its pointer fields
// reference. A Batch obtained from GetBatch is owned by the caller until
// Release; the engine copies everything it keeps (see DESIGN.md §11), so
// releasing after Apply is safe.
type Batch struct {
	Events []Event

	times     []time.Time
	bools     []bool
	machines  []model.Machine
	tickets   []model.Ticket
	incidents []model.Incident

	scratch []byte // string-unescape scratch
	readBuf []byte // initial bufio.Scanner buffer
}

const batchReadBufSize = 1 << 20

var batchPool = mempool.New("stream.batch", 32,
	func() *Batch { return &Batch{readBuf: make([]byte, 0, batchReadBufSize)} },
	func(b *Batch) *Batch { b.reset(); return b },
)

// GetBatch returns an empty batch from the pool.
func GetBatch() *Batch { return batchPool.Get() }

// Release recycles the batch. The caller must not touch the batch, its
// events, or anything its events point to afterwards.
func (b *Batch) Release() { batchPool.Put(b) }

// reset empties the batch for reuse, keeping arena capacity. The
// string-bearing arenas are cleared so recycled batches do not pin the
// previous request's ticket text.
func (b *Batch) reset() {
	clearSlice(b.Events)
	clearSlice(b.machines)
	clearSlice(b.tickets)
	clearSlice(b.incidents)
	b.Events = b.Events[:0]
	b.times = b.times[:0]
	b.bools = b.bools[:0]
	b.machines = b.machines[:0]
	b.tickets = b.tickets[:0]
	b.incidents = b.incidents[:0]
	b.scratch = b.scratch[:0]
}

func clearSlice[T any](s []T) {
	var zero T
	for i := range s {
		s[i] = zero
	}
}

// DecodeJSONLInto appends a JSONL event batch to b. Errors name the
// 1-based line number of the offending record, exactly as DecodeJSONL
// does. Returns the number of events appended.
func (b *Batch) DecodeJSONLInto(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	buf := b.readBuf
	if cap(buf) == 0 {
		buf = make([]byte, 0, batchReadBufSize)
	}
	sc.Buffer(buf, 1<<24)
	start := len(b.Events)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		b.Events = append(b.Events, Event{})
		ev := &b.Events[len(b.Events)-1]
		if b.fastParseEvent(raw, ev) {
			decodeFastLines.Add(1)
		} else {
			decodeFallbackLines.Add(1)
			*ev = Event{}
			if err := json.Unmarshal(raw, ev); err != nil {
				b.Events = b.Events[:len(b.Events)-1]
				return len(b.Events) - start, fmt.Errorf("stream: line %d: %w", line, err)
			}
		}
		if ev.Type == "" {
			b.Events = b.Events[:len(b.Events)-1]
			return len(b.Events) - start, fmt.Errorf("stream: line %d: event without type", line)
		}
	}
	if err := sc.Err(); err != nil {
		return len(b.Events) - start, fmt.Errorf("stream: read: %w", err)
	}
	return len(b.Events) - start, nil
}

// bytesString views b as a string without copying. The result must not
// outlive b or be retained; it is only handed to non-retaining stdlib
// parsers (strconv) and comparisons.
func bytesString(b []byte) string {
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// fastParser scans one line. pos is the cursor; fail() marks the line for
// fallback.
type fastParser struct {
	b   *Batch
	in  []byte
	pos int
	bad bool
}

func (p *fastParser) fail() bool { p.bad = true; return false }

func (p *fastParser) skipWS() {
	for p.pos < len(p.in) {
		switch p.in[p.pos] {
		case ' ', '\t', '\r', '\n':
			p.pos++
		default:
			return
		}
	}
}

// eat consumes c or fails.
func (p *fastParser) eat(c byte) bool {
	if p.pos < len(p.in) && p.in[p.pos] == c {
		p.pos++
		return true
	}
	return p.fail()
}

func (p *fastParser) peek() (byte, bool) {
	if p.pos < len(p.in) {
		return p.in[p.pos], true
	}
	return 0, false
}

// literal consumes the exact bytes of s or fails.
func (p *fastParser) literal(s string) bool {
	if len(p.in)-p.pos < len(s) || bytesString(p.in[p.pos:p.pos+len(s)]) != s {
		return p.fail()
	}
	p.pos += len(s)
	return true
}

// tryNull consumes "null" if present, reporting whether it did.
func (p *fastParser) tryNull() bool {
	if len(p.in)-p.pos >= 4 && bytesString(p.in[p.pos:p.pos+4]) == "null" {
		p.pos += 4
		return true
	}
	return false
}

// scanRawString consumes a quoted string, returning the bytes between the
// quotes and whether any escape sequence is present. It validates that raw
// control characters do not appear (encoding/json rejects them) but leaves
// escape decoding to the caller.
func (p *fastParser) scanRawString() (raw []byte, hasEsc, ok bool) {
	if !p.eat('"') {
		return nil, false, false
	}
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		switch {
		case c == '"':
			raw = p.in[start:p.pos]
			p.pos++
			return raw, hasEsc, true
		case c == '\\':
			hasEsc = true
			p.pos++
			if p.pos >= len(p.in) {
				return nil, false, p.fail()
			}
			p.pos++
		case c < 0x20:
			return nil, false, p.fail()
		default:
			p.pos++
		}
	}
	return nil, false, p.fail()
}

// unescape decodes raw (a string body containing at least one escape) into
// the batch scratch buffer. Surrogate escapes fall back — pairing rules
// are encoding/json's business.
func (p *fastParser) unescape(raw []byte) ([]byte, bool) {
	out := p.b.scratch[:0]
	for i := 0; i < len(raw); {
		c := raw[i]
		if c != '\\' {
			out = append(out, c)
			i++
			continue
		}
		i++
		if i >= len(raw) {
			return nil, p.fail()
		}
		switch raw[i] {
		case '"':
			out = append(out, '"')
		case '\\':
			out = append(out, '\\')
		case '/':
			out = append(out, '/')
		case 'b':
			out = append(out, '\b')
		case 'f':
			out = append(out, '\f')
		case 'n':
			out = append(out, '\n')
		case 'r':
			out = append(out, '\r')
		case 't':
			out = append(out, '\t')
		case 'u':
			if len(raw)-i < 5 {
				return nil, p.fail()
			}
			r := 0
			for _, h := range raw[i+1 : i+5] {
				d := hexVal(h)
				if d < 0 {
					return nil, p.fail()
				}
				r = r<<4 | d
			}
			if utf16.IsSurrogate(rune(r)) {
				return nil, p.fail()
			}
			out = utf8.AppendRune(out, rune(r))
			i += 4
		default:
			return nil, p.fail()
		}
		i++
	}
	p.b.scratch = out[:0]
	return out, true
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

// validBody reports whether a string body is valid UTF-8 (encoding/json
// substitutes U+FFFD for invalid sequences — the fast path delegates those
// lines instead of reimplementing the substitution).
func validBody(b []byte) bool {
	for _, c := range b {
		if c >= utf8.RuneSelf {
			return utf8.Valid(b)
		}
	}
	return true
}

// parseStringValue decodes a JSON string into a freshly allocated Go
// string — the one unavoidable allocation for retained text.
func (p *fastParser) parseStringValue() (string, bool) {
	raw, hasEsc, ok := p.scanRawString()
	if !ok {
		return "", false
	}
	if hasEsc {
		dec, ok := p.unescape(raw)
		if !ok {
			return "", false
		}
		raw = dec
	}
	if !validBody(raw) {
		return "", p.fail()
	}
	return string(raw), true
}

// parseKey decodes an object key without allocating (escaped keys land in
// scratch).
func (p *fastParser) parseKey() ([]byte, bool) {
	raw, hasEsc, ok := p.scanRawString()
	if !ok {
		return nil, false
	}
	if hasEsc {
		return p.unescape(raw)
	}
	return raw, true
}

// scanNumber consumes a JSON number token, reporting whether it is an
// integer (no fraction or exponent).
func (p *fastParser) scanNumber() (tok []byte, isInt bool, ok bool) {
	start := p.pos
	isInt = true
	if c, ok := p.peek(); ok && c == '-' {
		p.pos++
	}
	// Integer part: 0 | [1-9][0-9]*
	c, have := p.peek()
	if !have || c < '0' || c > '9' {
		return nil, false, p.fail()
	}
	if c == '0' {
		p.pos++
	} else {
		for p.pos < len(p.in) && p.in[p.pos] >= '0' && p.in[p.pos] <= '9' {
			p.pos++
		}
	}
	if p.pos < len(p.in) && p.in[p.pos] == '.' {
		isInt = false
		p.pos++
		n := 0
		for p.pos < len(p.in) && p.in[p.pos] >= '0' && p.in[p.pos] <= '9' {
			p.pos++
			n++
		}
		if n == 0 {
			return nil, false, p.fail()
		}
	}
	if p.pos < len(p.in) && (p.in[p.pos] == 'e' || p.in[p.pos] == 'E') {
		isInt = false
		p.pos++
		if p.pos < len(p.in) && (p.in[p.pos] == '+' || p.in[p.pos] == '-') {
			p.pos++
		}
		n := 0
		for p.pos < len(p.in) && p.in[p.pos] >= '0' && p.in[p.pos] <= '9' {
			p.pos++
			n++
		}
		if n == 0 {
			return nil, false, p.fail()
		}
	}
	return p.in[start:p.pos], isInt, true
}

// parseInt parses an integer-typed field. Numbers with a fraction or
// exponent fall back (encoding/json rejects them for int fields, and the
// fallback produces its exact error); null falls back too, since json
// no-ops it rather than assigning zero.
func (p *fastParser) parseInt() (int, bool) {
	if p.tryNull() {
		return 0, p.fail()
	}
	tok, isInt, ok := p.scanNumber()
	if !ok || !isInt {
		return 0, p.fail()
	}
	v, err := strconv.ParseInt(bytesString(tok), 10, 64)
	if err != nil || int64(int(v)) != v {
		return 0, p.fail()
	}
	return int(v), true
}

// parseFloat parses a float64 field via strconv on a no-copy string view —
// bit-exact with encoding/json, which uses the same parser.
func (p *fastParser) parseFloat() (float64, bool) {
	if p.tryNull() {
		return 0, p.fail()
	}
	tok, _, ok := p.scanNumber()
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseFloat(bytesString(tok), 64)
	if err != nil {
		return 0, p.fail()
	}
	return v, true
}

func (p *fastParser) parseBool() (v, null, ok bool) {
	if p.tryNull() {
		return false, true, true
	}
	if c, have := p.peek(); have && c == 't' {
		return true, false, p.literal("true")
	}
	return false, false, p.literal("false")
}

// parseTime parses a quoted RFC3339 UTC timestamp ("...Z", optionally with
// a fractional second) the way time.Time.UnmarshalJSON does. Offsets other
// than Z fall back: time.Parse resolves them against the local zone
// database and the fast path refuses to guess.
func (p *fastParser) parseTime() (time.Time, bool) {
	raw, hasEsc, ok := p.scanRawString()
	if !ok || hasEsc {
		return time.Time{}, p.fail()
	}
	// Minimum form: 2006-01-02T15:04:05Z (20 bytes).
	if len(raw) < 20 || raw[len(raw)-1] != 'Z' {
		return time.Time{}, p.fail()
	}
	digits := func(b []byte) (int, bool) {
		v := 0
		for _, c := range b {
			if c < '0' || c > '9' {
				return 0, false
			}
			v = v*10 + int(c-'0')
		}
		return v, true
	}
	if raw[4] != '-' || raw[7] != '-' || raw[10] != 'T' || raw[13] != ':' || raw[16] != ':' {
		return time.Time{}, p.fail()
	}
	y, ok1 := digits(raw[0:4])
	mo, ok2 := digits(raw[5:7])
	d, ok3 := digits(raw[8:10])
	h, ok4 := digits(raw[11:13])
	mi, ok5 := digits(raw[14:16])
	s, ok6 := digits(raw[17:19])
	if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6) {
		return time.Time{}, p.fail()
	}
	if mo < 1 || mo > 12 || d < 1 || d > daysIn(y, mo) || h > 23 || mi > 59 || s > 59 {
		return time.Time{}, p.fail()
	}
	ns := 0
	if frac := raw[19 : len(raw)-1]; len(frac) > 0 {
		if frac[0] != '.' || len(frac) < 2 || len(frac) > 10 {
			return time.Time{}, p.fail()
		}
		v, ok := digits(frac[1:])
		if !ok {
			return time.Time{}, p.fail()
		}
		for n := len(frac) - 1; n < 9; n++ {
			v *= 10
		}
		ns = v
	}
	return time.Date(y, time.Month(mo), d, h, mi, s, ns, time.UTC), true
}

func daysIn(y, m int) int {
	switch m {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	}
	if y%4 == 0 && (y%100 != 0 || y%400 == 0) {
		return 29
	}
	return 28
}

// skipValue consumes any JSON value (an unknown field's payload),
// validating just enough syntax that acceptance matches encoding/json.
func (p *fastParser) skipValue() bool {
	p.skipWS()
	c, have := p.peek()
	if !have {
		return p.fail()
	}
	switch c {
	case '"':
		_, _, ok := p.scanRawString()
		return ok
	case '{':
		p.pos++
		p.skipWS()
		if c, _ := p.peek(); c == '}' {
			p.pos++
			return true
		}
		for {
			p.skipWS()
			if _, ok := p.parseKey(); !ok {
				return false
			}
			p.skipWS()
			if !p.eat(':') {
				return false
			}
			if !p.skipValue() {
				return false
			}
			p.skipWS()
			c, have := p.peek()
			if !have {
				return p.fail()
			}
			p.pos++
			if c == '}' {
				return true
			}
			if c != ',' {
				return p.fail()
			}
		}
	case '[':
		p.pos++
		p.skipWS()
		if c, _ := p.peek(); c == ']' {
			p.pos++
			return true
		}
		for {
			if !p.skipValue() {
				return false
			}
			p.skipWS()
			c, have := p.peek()
			if !have {
				return p.fail()
			}
			p.pos++
			if c == ']' {
				return true
			}
			if c != ',' {
				return p.fail()
			}
		}
	case 't':
		return p.literal("true")
	case 'f':
		return p.literal("false")
	case 'n':
		return p.literal("null")
	default:
		_, _, ok := p.scanNumber()
		return ok
	}
}

// eventKeys / machineKeys / ticketKeys / incidentKeys / capacityKeys list
// each struct's JSON keys for the case-insensitive-match check: a key that
// is not an exact match but case-folds to a known one would be assigned by
// encoding/json, so the fast path delegates.
var (
	eventKeys    = []string{"type", "machine", "ticket", "incident", "serverID", "metric", "time", "value", "on", "host", "ref"}
	machineKeys  = []string{"id", "kind", "system", "capacity", "hostID", "created"}
	ticketKeys   = []string{"id", "serverID", "incidentID", "system", "opened", "closed", "description", "resolution", "isCrash", "class"}
	incidentKeys = []string{"id", "class", "time", "servers"}
	capacityKeys = []string{"cpus", "memoryGB", "diskGB", "disks"}
)

// unknownKey decides what to do with a key that matched no case: skip its
// value if encoding/json would ignore it too, fall back if json's
// case-insensitive field matching would have assigned it.
func (p *fastParser) unknownKey(key []byte, known []string) bool {
	for _, k := range known {
		if strings.EqualFold(bytesString(key), k) {
			return p.fail()
		}
	}
	return p.skipValue()
}

// objectEach drives one object: fn receives each key with the cursor on
// its value and must consume it.
func (p *fastParser) objectEach(fn func(key []byte) bool) bool {
	p.skipWS()
	if !p.eat('{') {
		return false
	}
	p.skipWS()
	if c, _ := p.peek(); c == '}' {
		p.pos++
		return true
	}
	for {
		p.skipWS()
		key, ok := p.parseKey()
		if !ok {
			return false
		}
		p.skipWS()
		if !p.eat(':') {
			return false
		}
		p.skipWS()
		if !fn(key) {
			return false
		}
		p.skipWS()
		c, have := p.peek()
		if !have {
			return p.fail()
		}
		p.pos++
		if c == '}' {
			return true
		}
		if c != ',' {
			return p.fail()
		}
	}
}

func (p *fastParser) parseCapacityInto(c *model.Capacity) bool {
	if p.tryNull() {
		return true
	}
	return p.objectEach(func(key []byte) bool {
		var ok bool
		switch string(key) {
		case "cpus":
			c.CPUs, ok = p.parseInt()
		case "memoryGB":
			c.MemoryGB, ok = p.parseFloat()
		case "diskGB":
			c.DiskGB, ok = p.parseFloat()
		case "disks":
			c.Disks, ok = p.parseInt()
		default:
			ok = p.unknownKey(key, capacityKeys)
		}
		return ok
	})
}

func (p *fastParser) parseMachineInto(m *model.Machine) bool {
	return p.objectEach(func(key []byte) bool {
		var ok bool
		switch string(key) {
		case "id":
			var s string
			if s, ok = p.parseStringValue(); ok {
				m.ID = model.MachineID(s)
			}
		case "kind":
			var v int
			if v, ok = p.parseInt(); ok {
				m.Kind = model.MachineKind(v)
			}
		case "system":
			var v int
			if v, ok = p.parseInt(); ok {
				m.System = model.System(v)
			}
		case "capacity":
			ok = p.parseCapacityInto(&m.Capacity)
		case "hostID":
			var s string
			if s, ok = p.parseStringValue(); ok {
				m.HostID = model.MachineID(s)
			}
		case "created":
			ok = p.parseTimeField(&m.Created)
		default:
			ok = p.unknownKey(key, machineKeys)
		}
		return ok
	})
}

// parseTimeField handles a time.Time value field: null is a no-op, exactly
// as time.Time.UnmarshalJSON treats it.
func (p *fastParser) parseTimeField(dst *time.Time) bool {
	if p.tryNull() {
		return true
	}
	t, ok := p.parseTime()
	if ok {
		*dst = t
	}
	return ok
}

func (p *fastParser) parseTicketInto(t *model.Ticket) bool {
	return p.objectEach(func(key []byte) bool {
		var ok bool
		switch string(key) {
		case "id":
			t.ID, ok = p.parseStringValue()
		case "serverID":
			var s string
			if s, ok = p.parseStringValue(); ok {
				t.ServerID = model.MachineID(s)
			}
		case "incidentID":
			t.IncidentID, ok = p.parseStringValue()
		case "system":
			var v int
			if v, ok = p.parseInt(); ok {
				t.System = model.System(v)
			}
		case "opened":
			ok = p.parseTimeField(&t.Opened)
		case "closed":
			ok = p.parseTimeField(&t.Closed)
		case "description":
			t.Description, ok = p.parseStringValue()
		case "resolution":
			t.Resolution, ok = p.parseStringValue()
		case "isCrash":
			var v, null bool
			if v, null, ok = p.parseBool(); ok && !null {
				t.IsCrash = v
			}
		case "class":
			var v int
			if v, ok = p.parseInt(); ok {
				t.Class = model.FailureClass(v)
			}
		default:
			ok = p.unknownKey(key, ticketKeys)
		}
		return ok
	})
}

func (p *fastParser) parseIncidentInto(inc *model.Incident) bool {
	return p.objectEach(func(key []byte) bool {
		var ok bool
		switch string(key) {
		case "id":
			inc.ID, ok = p.parseStringValue()
		case "class":
			var v int
			if v, ok = p.parseInt(); ok {
				inc.Class = model.FailureClass(v)
			}
		case "time":
			ok = p.parseTimeField(&inc.Time)
		case "servers":
			ok = p.parseServers(&inc.Servers)
		default:
			ok = p.unknownKey(key, incidentKeys)
		}
		return ok
	})
}

func (p *fastParser) parseServers(dst *[]model.MachineID) bool {
	if p.tryNull() {
		*dst = nil
		return true
	}
	if !p.eat('[') {
		return false
	}
	p.skipWS()
	out := (*dst)[:0]
	if out == nil {
		// json replaces a nil slice with an empty non-nil one even for [].
		out = make([]model.MachineID, 0)
	}
	if c, _ := p.peek(); c == ']' {
		p.pos++
		*dst = out
		return true
	}
	for {
		p.skipWS()
		s, ok := p.parseStringValue()
		if !ok {
			return false
		}
		out = append(out, model.MachineID(s))
		p.skipWS()
		c, have := p.peek()
		if !have {
			return p.fail()
		}
		p.pos++
		if c == ']' {
			*dst = out
			return true
		}
		if c != ',' {
			return p.fail()
		}
	}
}

// fastParseEvent parses one line into ev, using the batch arenas for the
// pointer payloads. Returns false (leaving ev in an undefined state the
// caller must reset) when the line needs the encoding/json fallback.
func (b *Batch) fastParseEvent(line []byte, ev *Event) bool {
	p := fastParser{b: b, in: line}
	ok := p.objectEach(func(key []byte) bool {
		var ok bool
		switch string(key) {
		case "type":
			ev.Type, ok = p.parseStringValue()
		case "machine":
			if p.tryNull() {
				ev.Machine = nil
				return true
			}
			if ev.Machine == nil {
				b.machines = append(b.machines, model.Machine{})
				ev.Machine = &b.machines[len(b.machines)-1]
			}
			ok = p.parseMachineInto(ev.Machine)
		case "ticket":
			if p.tryNull() {
				ev.Ticket = nil
				return true
			}
			if ev.Ticket == nil {
				b.tickets = append(b.tickets, model.Ticket{})
				ev.Ticket = &b.tickets[len(b.tickets)-1]
			}
			ok = p.parseTicketInto(ev.Ticket)
		case "incident":
			if p.tryNull() {
				ev.Incident = nil
				return true
			}
			if ev.Incident == nil {
				b.incidents = append(b.incidents, model.Incident{})
				ev.Incident = &b.incidents[len(b.incidents)-1]
			}
			ok = p.parseIncidentInto(ev.Incident)
		case "serverID":
			var s string
			if s, ok = p.parseStringValue(); ok {
				ev.ServerID = model.MachineID(s)
			}
		case "metric":
			var v int
			if v, ok = p.parseInt(); ok {
				ev.Metric = monitordb.Metric(v)
			}
		case "time":
			if p.tryNull() {
				ev.Time = nil
				return true
			}
			t, tok := p.parseTime()
			if !tok {
				return false
			}
			if ev.Time == nil {
				b.times = append(b.times, t)
				ev.Time = &b.times[len(b.times)-1]
			} else {
				*ev.Time = t
			}
			ok = true
		case "value":
			ev.Value, ok = p.parseFloat()
		case "host":
			var s string
			if s, ok = p.parseStringValue(); ok {
				ev.Host = model.MachineID(s)
			}
		case "on":
			if p.tryNull() {
				ev.On = nil
				return true
			}
			v, null, bok := p.parseBool()
			if !bok || null {
				return false
			}
			if ev.On == nil {
				b.bools = append(b.bools, v)
				ev.On = &b.bools[len(b.bools)-1]
			} else {
				*ev.On = v
			}
			ok = true
		case "ref":
			v, null, bok := p.parseBool()
			if !bok || null {
				return false
			}
			ev.Ref = v
			ok = true
		default:
			ok = p.unknownKey(key, eventKeys)
		}
		return ok
	})
	if !ok {
		return false
	}
	p.skipWS()
	if p.pos != len(p.in) {
		return false // trailing bytes: json errors, let it
	}
	return true
}
