package stream

import (
	"fmt"
	"io"
	"sync"
	"time"

	"failscope/internal/detect"
	"failscope/internal/mempool"
	"failscope/internal/model"
	"failscope/internal/monitordb"
	"failscope/internal/obs"
	"failscope/internal/sketch"
	"failscope/internal/telemetry"
	"failscope/internal/textmine"
)

// Config configures the incremental engine.
type Config struct {
	// Observation is the study window (weekly buckets, censoring horizon).
	// Required: the engine exploits knowing the window end up front to keep
	// recurrence denominators incremental.
	Observation model.Window

	// FineWindow is where 15-minute data exists (kept for parity with the
	// batch options; the streaming statistics do not consume it yet).
	FineWindow model.Window

	// MonitorEpoch/MonitorRetention configure the live monitoring store.
	// Zero values disable monitoring ingestion.
	MonitorEpoch     time.Time
	MonitorRetention time.Duration

	// Classifier, when set, classifies every ticket text online
	// (nearest-centroid on the frozen model) and scores the predictions
	// against the tickets' ground-truth labels.
	Classifier *textmine.OnlineClassifier

	// UsePredictions makes the engine trust the online classifier's
	// crash/class decision instead of the tickets' ground-truth labels —
	// the live-operation mode, where tickets arrive unlabeled. Requires
	// Classifier.
	UsePredictions bool

	// Observer, when non-nil, counts stream metrics under "stream.*". It
	// never affects the statistics.
	Observer *obs.Observer

	// Detector, when non-nil, is the online failure-detection layer: the
	// engine feeds it machines, effective crash tickets, monitoring
	// samples, placements and watermark advances as they apply. Like
	// Observer it is pure observation — snapshots and reports are
	// byte-identical with detection on or off (enforced by
	// TestDetectionByteIdentical at the repo root).
	Detector *detect.Detector

	// GaugeLabel, when non-empty, makes the engine publish its stream.*
	// gauges under a {shard="<label>"} Prometheus label and leave the
	// unlabeled families, the monitordb footprint gauges and the detect.*
	// families to the coordinator — N shard engines can then share one
	// registry without stomping each other's point-in-time values, while
	// counters and histograms (which aggregate by addition) stay shared and
	// unlabeled. Empty (the default, every single-engine deployment) keeps
	// the metric surface exactly as before.
	GaugeLabel string
}

// kindIndex maps PM/VM to the engine's dense array index; -1 otherwise.
func kindIndex(k model.MachineKind) int {
	switch k {
	case model.PM:
		return 0
	case model.VM:
		return 1
	}
	return -1
}

// distAcc accumulates one empirical distribution: exact moments plus a
// quantile sketch for the order statistics.
type distAcc struct {
	m sketch.Moments
	q *sketch.Quantile
}

// distAccK sizes the engine's quantile sketches: a few thousand gap/repair
// observations per kind, so a deeper level capacity than the obs-histogram
// default keeps the quartiles within the convergence test's 5% band.
const distAccK = 1024

func (d *distAcc) add(v float64) {
	if d.q == nil {
		d.q = sketch.NewQuantile(distAccK)
	}
	d.m.Add(v)
	d.q.Add(v)
}

// recCounters tracks the §IV.D recurrence probabilities incrementally.
// Because the observation end is known up front, a trigger failure's
// membership in each window's denominator (trigger + window ≤ end) is
// decided at arrival; the numerator increments when the server's next
// failure arrives inside the window — exactly the batch censoring rule.
type recCounters struct {
	failures                  int
	uncDay, uncWeek, uncMonth int
	hitDay, hitWeek, hitMonth int
}

// classSpatialAcc aggregates Table VII for one class.
type classSpatialAcc struct {
	incidents, servers, max int
}

// Journal is the engine's durability hook. Append is called under the
// engine's apply lock, immediately before a batch is folded in, with the
// sequence number the batch's first event will take (the engine's event
// count plus one); appends therefore land in exactly apply order. Sync is
// called once per commit group, after every batch in the group has been
// appended and applied, and before any of the group's callers observe
// success — a batch whose caller saw a nil error is on stable storage.
type Journal interface {
	Append(startSeq int64, events []Event) error
	Sync() error
}

// Engine is the incremental analysis engine. All methods are safe for
// concurrent use; Apply batches are serialized internally.
type Engine struct {
	mu  sync.Mutex
	cfg Config
	win model.Window

	// journal, when non-nil, receives every applied batch (under mu).
	journal Journal

	// Group-commit queue (ApplyGrouped): qmu guards the waiter list and
	// the leader flag; it is never held while e.mu is being acquired.
	qmu     sync.Mutex
	queue   []*applyReq
	leading bool

	events    int64
	watermark time.Time

	machines    map[model.MachineID]*model.Machine
	machineList []*model.Machine
	// refMachines marks entries of e.machines that are replicas of machines
	// owned by another shard (Event.Ref): registered for incident kind
	// lookups but excluded from every count, so per-shard counters sum to
	// the single-engine numbers. Always empty outside sharded deployments.
	refMachines map[model.MachineID]bool
	// serverCount[kind][sys] with sys index 0 = all systems, 1..5 = Sys I–V.
	serverCount [2][model.NumSystems + 1]int

	tickets, crashTickets int64
	droppedOutOfWindow    int64
	outOfOrder            int64

	// Table II counters, indexed by the ticket's subsystem (1..5).
	sysAll, sysCrash [model.NumSystems + 1]int
	sysKindCrash     [2][model.NumSystems + 1]int

	// weekly[kind][sys] is the per-week crash count (Fig. 2 numerators);
	// weeklyFailed the distinct failing servers per week (Table V random
	// probability).
	weekly       [2][model.NumSystems + 1][]int
	weeklyFailed [2][model.NumSystems + 1][]map[model.MachineID]bool

	// classCounts[sys][class] with sys 0 = all (Fig. 1).
	classCounts map[model.System]map[model.FailureClass]int
	classTotals map[model.System]int

	// Per-server crash history for gaps and recurrence.
	lastCrash  map[model.MachineID]time.Time
	crashCount map[model.MachineID]int

	gaps        [2]distAcc // inter-failure gaps, days
	repairs     [2]distAcc // repair times, hours
	kindCrashes [2]int
	reboots     [2]int
	failing     [2]int // servers with ≥1 crash
	singles     [2]int // servers with exactly 1 crash

	rec [2][model.NumSystems + 1]recCounters

	// Spatial (§IV.E) counters.
	incidents       int
	incidentOne     int
	incidentTwoPlus int
	incidentServers int
	maxIncident     int
	maxIncidentCls  model.FailureClass
	pmBuckets       [3]int // 0 / 1 / 2+ PMs per incident
	vmBuckets       [3]int
	classSpatial    map[model.FailureClass]*classSpatialAcc

	monitor        *monitordb.DB
	monitorEnd     time.Time // cached acceptance-window end
	monitorSamples int64

	// Online classification scoring (when cfg.Classifier is set).
	// predScratch holds the classifier's reusable token/vector buffers —
	// the engine is serialized under mu, so one scratch serves every
	// ticket.
	confusion   map[[2]int]int
	scored      int64
	scoredHit   int64
	predScratch textmine.PredictScratch

	// gauges caches the (possibly shard-labeled) metric names so the
	// per-batch flush never rebuilds labeled strings.
	gauges gaugeNames
}

// gaugeNames holds the engine's gauge family names, pre-labeled with
// Config.GaugeLabel when one is set.
type gaugeNames struct {
	events, tickets, crashTickets, machines, incidents    string
	monitorSamples, dropped, distances, pruned, watermark string
}

func buildGaugeNames(label string) gaugeNames {
	name := func(base string) string {
		if label == "" {
			return base
		}
		return telemetry.Labeled(base, "shard", label)
	}
	return gaugeNames{
		events:         name("stream.events"),
		tickets:        name("stream.tickets"),
		crashTickets:   name("stream.crash_tickets"),
		machines:       name("stream.machines"),
		incidents:      name("stream.incidents"),
		monitorSamples: name("stream.monitor_samples"),
		dropped:        name("stream.dropped_out_of_window"),
		distances:      name("stream.predict_distances"),
		pruned:         name("stream.predict_distances_pruned"),
		watermark:      name("stream.watermark_unix_seconds"),
	}
}

// NewEngine creates an engine for the given configuration.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Observation.Duration() <= 0 {
		return nil, fmt.Errorf("stream: empty observation window")
	}
	if cfg.UsePredictions && cfg.Classifier == nil {
		return nil, fmt.Errorf("stream: UsePredictions requires a Classifier")
	}
	e := &Engine{
		cfg:          cfg,
		win:          cfg.Observation,
		machines:     make(map[model.MachineID]*model.Machine),
		classCounts:  make(map[model.System]map[model.FailureClass]int),
		classTotals:  make(map[model.System]int),
		lastCrash:    make(map[model.MachineID]time.Time),
		crashCount:   make(map[model.MachineID]int),
		classSpatial: make(map[model.FailureClass]*classSpatialAcc),
		confusion:    make(map[[2]int]int),
		gauges:       buildGaugeNames(cfg.GaugeLabel),
	}
	weeks := cfg.Observation.NumWeeks()
	for k := 0; k < 2; k++ {
		for s := 0; s <= model.NumSystems; s++ {
			e.weekly[k][s] = make([]int, weeks)
			e.weeklyFailed[k][s] = make([]map[model.MachineID]bool, weeks)
		}
	}
	if cfg.MonitorRetention > 0 {
		e.monitor = monitordb.New(cfg.MonitorEpoch, cfg.MonitorRetention)
		e.monitor.Instrument(cfg.Observer.Metrics())
		e.monitor.SetLogger(cfg.Observer.Log())
		_, e.monitorEnd = e.monitor.Window()
	}
	if cfg.Detector != nil {
		cfg.Detector.Instrument(cfg.Observer.Metrics())
	}
	return e, nil
}

// SetJournal attaches (or, with nil, detaches) the engine's write-ahead
// journal. Attach only at a quiescent point — after recovery replay and
// before serving ingest — so the journal never re-records replayed events.
func (e *Engine) SetJournal(j Journal) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.journal = j
}

// journalBatchLocked appends a non-empty batch to the journal (when one is
// attached) at the sequence its first event will take. A failed append
// poisons the batch: it is not applied, so the journal never lags behind
// the applied state.
func (e *Engine) journalBatchLocked(events []Event) error {
	if e.journal == nil || len(events) == 0 {
		return nil
	}
	if err := e.journal.Append(e.events+1, events); err != nil {
		return fmt.Errorf("stream: journal append: %w", err)
	}
	return nil
}

// syncJournalLocked makes the group's appends durable before any caller
// observes success.
func (e *Engine) syncJournalLocked() error {
	if e.journal == nil {
		return nil
	}
	if err := e.journal.Sync(); err != nil {
		return fmt.Errorf("stream: journal sync: %w", err)
	}
	return nil
}

// Apply folds one ordered event batch into the engine's state.
func (e *Engine) Apply(events []Event) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	err := e.journalBatchLocked(events)
	if err == nil {
		err = e.applyBatchLocked(events)
	}
	e.advanceLocked()
	e.flushMetricsLocked(e.cfg.Observer.Metrics())
	if serr := e.syncJournalLocked(); serr != nil && err == nil {
		err = serr
	}
	return err
}

// ApplyJSONL decodes a JSONL batch and applies it, returning the number of
// events applied. Decode errors name the offending line. The decode runs
// through a pooled zero-copy batch; the engine copies what it keeps, so
// recycling after Apply is safe.
func (e *Engine) ApplyJSONL(r io.Reader) (int, error) {
	b := GetBatch()
	defer b.Release()
	n, err := b.DecodeJSONLInto(r)
	if err != nil {
		return 0, err
	}
	if err := e.Apply(b.Events); err != nil {
		return 0, err
	}
	return n, nil
}

// applyReq is one caller's batch waiting in the group-commit queue. The
// leader records how long the engine spent inside applyBatchLocked for the
// batch (applied) so the request's trace can show engine time separately
// from queue wait.
type applyReq struct {
	events  []Event
	applied time.Duration
	err     error // leader-stashed result while durability is pending
	done    chan error
}

var applyReqPool = mempool.New("stream.applyreq", 64,
	func() *applyReq { return &applyReq{done: make(chan error, 1)} },
	func(r *applyReq) *applyReq { r.events = nil; r.applied = 0; r.err = nil; return r },
)

// applyBucketsMS are the engine-apply latency histogram bounds, in
// milliseconds.
var applyBucketsMS = []float64{0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000}

// applyBatchLocked applies one batch under e.mu with Apply's exact event
// semantics and error format.
func (e *Engine) applyBatchLocked(events []Event) error {
	for i := range events {
		if err := e.applyLocked(&events[i]); err != nil {
			return fmt.Errorf("stream: event %d: %w", i, err)
		}
	}
	return nil
}

// ApplyGrouped applies a batch with leader-based group commit: the first
// caller to arrive takes e.mu once, applies its own batch plus every batch
// that concurrent callers enqueue while it holds the lock, then runs one
// watermark advance and one metrics flush for the whole group. Under
// concurrent ingest this amortizes the per-batch fixed costs (lock
// handoff, eviction scan, metric stores) across the group; with a single
// caller it degenerates to Apply. Statistics are identical either way —
// applyLocked runs per event in arrival order regardless of grouping.
func (e *Engine) ApplyGrouped(events []Event) error {
	_, err := e.ApplyGroupedTimed(events)
	return err
}

// ApplyGroupedTimed is ApplyGrouped returning, in addition, the wall time
// the engine spent inside applyBatchLocked for this caller's batch —
// engine-apply cost with the group-commit queue wait excluded, the third
// leg of the request trace's decode → group-commit → engine-apply span
// chain. The timing feeds metrics and traces only; statistics are
// untouched.
func (e *Engine) ApplyGroupedTimed(events []Event) (time.Duration, error) {
	req := applyReqPool.Get()
	e.qmu.Lock()
	if e.leading {
		req.events = events
		e.queue = append(e.queue, req)
		e.qmu.Unlock()
		err := <-req.done
		applied := req.applied
		applyReqPool.Put(req)
		return applied, err
	}
	e.leading = true
	e.qmu.Unlock()
	applyReqPool.Put(req) // the leader never parks, it doesn't need one

	m := e.cfg.Observer.Metrics()
	applyHist := m.Histogram("stream.apply_ms", applyBucketsMS...)
	e.mu.Lock()
	t0 := time.Now()
	err := e.journalBatchLocked(events)
	if err == nil {
		err = e.applyBatchLocked(events)
	}
	own := time.Since(t0)
	applyHist.Observe(float64(own) / float64(time.Millisecond))
	batches := 1
	// With a journal attached, follower results are withheld until the
	// group's single Sync lands; without one they release immediately,
	// keeping the journal-off hot path unchanged.
	var group []*applyReq
	for {
		e.qmu.Lock()
		pending := e.queue
		e.queue = nil
		if len(pending) == 0 {
			// Atomically with the empty-queue observation: any later
			// arrival becomes the next leader, so no request is stranded.
			e.leading = false
			e.qmu.Unlock()
			break
		}
		e.qmu.Unlock()
		for _, r := range pending {
			t0 = time.Now()
			rerr := e.journalBatchLocked(r.events)
			if rerr == nil {
				rerr = e.applyBatchLocked(r.events)
			}
			r.applied = time.Since(t0)
			applyHist.Observe(float64(r.applied) / float64(time.Millisecond))
			if e.journal != nil {
				r.err = rerr
				group = append(group, r)
			} else {
				r.done <- rerr
			}
			batches++
		}
	}
	e.advanceLocked()
	e.flushMetricsLocked(m)
	m.Add("stream.apply_groups", 1)
	m.Add("stream.apply_grouped_batches", int64(batches))
	if serr := e.syncJournalLocked(); serr != nil {
		if err == nil {
			err = serr
		}
		for _, r := range group {
			if r.err == nil {
				r.err = serr
			}
		}
	}
	for _, r := range group {
		r.done <- r.err
	}
	e.mu.Unlock()
	return own, err
}

// flushMetricsLocked publishes the engine's headline gauges. Called under
// e.mu after every apply/advance; pure observation.
func (e *Engine) flushMetricsLocked(m *obs.Registry) {
	m.Set(e.gauges.events, float64(e.events))
	m.Set(e.gauges.tickets, float64(e.tickets))
	m.Set(e.gauges.crashTickets, float64(e.crashTickets))
	m.Set(e.gauges.machines, float64(e.ownedLocked()))
	m.Set(e.gauges.incidents, float64(e.incidents))
	m.Set(e.gauges.monitorSamples, float64(e.monitorSamples))
	m.Set(e.gauges.dropped, float64(e.droppedOutOfWindow))
	m.Set(e.gauges.distances, float64(e.predScratch.Distances))
	m.Set(e.gauges.pruned, float64(e.predScratch.Pruned))
	if !e.watermark.IsZero() {
		m.Set(e.gauges.watermark, float64(e.watermark.UnixNano())/1e9)
	}
	// Sharded engines leave the detect.* families to the coordinator, which
	// publishes fleet-wide aggregates at scrape time.
	if e.cfg.Detector != nil && e.cfg.GaugeLabel == "" {
		e.cfg.Detector.Publish(m)
	}
}

// ownedLocked is the count of machines this engine owns: inventory entries
// minus replicas of other shards' machines.
func (e *Engine) ownedLocked() int { return len(e.machines) - len(e.refMachines) }

// monitorAdvanceStep is how far ahead of a record's timestamp the engine
// moves the monitor acceptance window. Advancing in week-granular steps
// amortizes the eviction scan (O(records) per advance) over many writes
// instead of paying it once per time-ordered sample.
const monitorAdvanceStep = 7 * 24 * time.Hour

// ensureMonitorWindowLocked opens the monitor acceptance window up to t
// before a write that would otherwise fall past its live edge and be
// dropped. The trailing edge follows retention behind, so eviction runs at
// most step-early relative to the record clock.
func (e *Engine) ensureMonitorWindowLocked(t time.Time) {
	if !t.After(e.monitorEnd) {
		return
	}
	if n := e.monitor.Advance(t.Add(monitorAdvanceStep)); n > 0 {
		e.cfg.Observer.Metrics().Add("stream.monitor_evicted", int64(n))
	}
	_, e.monitorEnd = e.monitor.Window()
}

// advanceLocked slides the monitoring store's retention window up to the
// stream watermark, evicting expired records, and refreshes the
// resident-bytes gauges so a long-running daemon exposes its live store
// footprint.
func (e *Engine) advanceLocked() {
	if e.cfg.Detector != nil && !e.watermark.IsZero() {
		e.cfg.Detector.Advance(e.watermark)
	}
	if e.monitor == nil || e.watermark.IsZero() {
		return
	}
	if n := e.monitor.Advance(e.watermark); n > 0 {
		e.cfg.Observer.Metrics().Add("stream.monitor_evicted", int64(n))
	}
	_, e.monitorEnd = e.monitor.Window()
	// Shard engines share one registry; the monitordb footprint gauges are
	// point-in-time values, so the coordinator publishes the fleet sum at
	// scrape time instead of letting N engines stomp each other's writes.
	if e.cfg.GaugeLabel == "" {
		e.monitor.RecordFootprint()
	}
}

func (e *Engine) applyLocked(ev *Event) error {
	if ev.Ref && ev.Type != "machine" && ev.Type != "advance" && ev.Type != "placement" {
		return fmt.Errorf("ref event with type %q (only machine, advance and placement replicas are defined)", ev.Type)
	}
	if !ev.Ref {
		// Replicas are uncounted: their primary copy is counted on the
		// owning shard, so per-shard event counts sum to the single-engine
		// sequence number.
		e.events++
	}
	if t := ev.When(); t.After(e.watermark) {
		e.watermark = t
	}
	switch ev.Type {
	case "machine":
		if ev.Machine == nil {
			return fmt.Errorf("machine event without machine")
		}
		return e.addMachineLocked(ev.Machine, ev.Ref)
	case "ticket":
		if ev.Ticket == nil {
			return fmt.Errorf("ticket event without ticket")
		}
		e.addTicketLocked(*ev.Ticket)
		return nil
	case "incident":
		if ev.Incident == nil {
			return fmt.Errorf("incident event without incident")
		}
		e.addIncidentLocked(*ev.Incident)
		return nil
	case "sample":
		if ev.Time != nil {
			if e.monitor != nil {
				e.ensureMonitorWindowLocked(*ev.Time)
				e.monitor.Add(ev.ServerID, ev.Metric, monitordb.Sample{Time: *ev.Time, Value: ev.Value})
				e.monitorSamples++
			}
			if e.cfg.Detector != nil {
				e.cfg.Detector.ObserveSample(ev.ServerID, ev.Metric, *ev.Time, ev.Value)
			}
		}
		return nil
	case "power":
		if e.monitor != nil && ev.Time != nil && ev.On != nil {
			e.ensureMonitorWindowLocked(*ev.Time)
			e.monitor.AddPowerEvent(ev.ServerID, monitordb.PowerEvent{Time: *ev.Time, On: *ev.On})
		}
		return nil
	case "placement":
		if ev.Time != nil && ev.Host != "" {
			if ev.Ref {
				// A replica placement only feeds the detector's fleet-wide
				// consolidation count; the owning shard stores it.
				if e.cfg.Detector != nil {
					e.cfg.Detector.ObservePlacementRef(ev.ServerID, ev.Host, *ev.Time)
				}
				return nil
			}
			if e.monitor != nil {
				e.ensureMonitorWindowLocked(*ev.Time)
				e.monitor.SetPlacement(ev.ServerID, ev.Host, *ev.Time)
			}
			if e.cfg.Detector != nil {
				e.cfg.Detector.ObservePlacement(ev.ServerID, ev.Host, *ev.Time)
			}
		}
		return nil
	case "advance":
		return nil // watermark already taken above
	default:
		return fmt.Errorf("unknown event type %q", ev.Type)
	}
}

func (e *Engine) addMachineLocked(m *model.Machine, ref bool) error {
	if m.ID == "" {
		return fmt.Errorf("machine with empty ID")
	}
	if prev, dup := e.machines[m.ID]; dup {
		if !ref && e.refMachines[m.ID] {
			// The primary copy reached an engine that had only seen the
			// replica (never happens under the router's deterministic
			// ownership, handled for direct users): promote and count it.
			delete(e.refMachines, m.ID)
			e.machineList = append(e.machineList, prev)
			e.countMachineLocked(prev)
		}
		return nil // idempotent re-registration
	}
	cp := *m
	e.machines[cp.ID] = &cp
	if ref {
		if e.refMachines == nil {
			e.refMachines = make(map[model.MachineID]bool)
		}
		e.refMachines[cp.ID] = true
		if e.cfg.Detector != nil {
			// A replica VM still occupies a slot on its host: the
			// detector's consolidation count must see the whole fleet.
			e.cfg.Detector.ObserveMachineRef(&cp)
		}
		return nil
	}
	e.machineList = append(e.machineList, &cp)
	e.countMachineLocked(&cp)
	return nil
}

// countMachineLocked folds an owned machine into the inventory counters
// and the detection layer. Replicas never reach it.
func (e *Engine) countMachineLocked(cp *model.Machine) {
	if e.cfg.Detector != nil {
		e.cfg.Detector.ObserveMachine(cp)
	}
	if k := kindIndex(cp.Kind); k >= 0 {
		e.serverCount[k][0]++
		if cp.System >= 1 && cp.System <= model.NumSystems {
			e.serverCount[k][int(cp.System)]++
		}
	}
}

// labelOf mirrors the batch pipeline's classification label: 0 for
// background tickets, otherwise the failure class.
func labelOf(isCrash bool, class model.FailureClass) int {
	if !isCrash {
		return 0
	}
	return int(class)
}

func (e *Engine) addTicketLocked(t model.Ticket) {
	if !e.win.Contains(t.Opened) {
		e.droppedOutOfWindow++
		return
	}
	e.tickets++
	if t.System >= 1 && t.System <= model.NumSystems {
		e.sysAll[t.System]++
	}

	isCrash, class := t.IsCrash, t.Class
	if e.cfg.Classifier != nil {
		pred := e.cfg.Classifier.PredictWith(&e.predScratch, t.Description+" "+t.Resolution)
		truth := labelOf(t.IsCrash, t.Class)
		e.confusion[[2]int{truth, pred}]++
		e.scored++
		if pred == truth {
			e.scoredHit++
		}
		if e.cfg.UsePredictions {
			isCrash = pred > 0
			class = model.FailureClass(pred)
			if pred == 0 {
				class = 0
			}
		}
	}
	if !isCrash {
		return
	}
	e.crashTickets++
	if e.cfg.Detector != nil {
		e.cfg.Detector.ObserveTicket(&t, class)
	}
	if t.System >= 1 && t.System <= model.NumSystems {
		e.sysCrash[t.System]++
	}

	// Fig. 1 class mix, keyed by the ticket's subsystem plus the
	// system-0 "all" row — the same double increment core.ClassDistribution
	// performs.
	if e.classCounts[t.System] == nil {
		e.classCounts[t.System] = make(map[model.FailureClass]int)
	}
	e.classCounts[t.System][class]++
	e.classTotals[t.System]++
	if e.classCounts[0] == nil {
		e.classCounts[0] = make(map[model.FailureClass]int)
	}
	e.classCounts[0][class]++
	e.classTotals[0]++

	m := e.machines[t.ServerID]
	k := -1
	if m != nil {
		k = kindIndex(m.Kind)
	}
	if k >= 0 && t.System >= 1 && t.System <= model.NumSystems {
		e.sysKindCrash[k][t.System]++
	}
	if k < 0 {
		// Unknown server or box: the batch analyses skip these tickets in
		// every kind-keyed statistic; the class mix above still counts them.
		return
	}
	sysIdx := 0
	if m.System >= 1 && m.System <= model.NumSystems {
		sysIdx = int(m.System)
	}

	// Fig. 2 weekly rate numerators + Table V distinct failing servers.
	if wi := e.win.WeekIndex(t.Opened); wi >= 0 && wi < len(e.weekly[k][0]) {
		for _, s := range []int{0, sysIdx} {
			e.weekly[k][s][wi]++
			if e.weeklyFailed[k][s][wi] == nil {
				e.weeklyFailed[k][s][wi] = make(map[model.MachineID]bool)
			}
			e.weeklyFailed[k][s][wi][t.ServerID] = true
			if sysIdx == 0 {
				break
			}
		}
	}

	// Fig. 4 repair hours and reboot share.
	e.kindCrashes[k]++
	if class == model.ClassReboot {
		e.reboots[k]++
	}
	if h := t.RepairTime().Hours(); h > 0 {
		e.repairs[k].add(h)
	}

	// Fig. 3 inter-failure gaps + Fig. 5 recurrence, driven by the
	// server's previous crash.
	prev, seen := e.lastCrash[t.ServerID]
	if seen {
		if t.Opened.Before(prev) {
			e.outOfOrder++
			e.cfg.Observer.Metrics().Add("stream.out_of_order", 1)
		}
		if gap := t.Opened.Sub(prev).Hours() / 24; gap > 0 {
			e.gaps[k].add(gap)
		}
		// The previous crash's recurrence windows resolve now: a hit in
		// each window whose full extent fit inside the observation.
		d := t.Opened.Sub(prev)
		for _, s := range []int{0, sysIdx} {
			rc := &e.rec[k][s]
			if !prev.Add(day).After(e.win.End) && d <= day {
				rc.hitDay++
			}
			if !prev.Add(week).After(e.win.End) && d <= week {
				rc.hitWeek++
			}
			if !prev.Add(month).After(e.win.End) && d <= month {
				rc.hitMonth++
			}
			if sysIdx == 0 {
				break
			}
		}
	}
	// This crash becomes a trigger: denominators are decided immediately
	// because the observation end is known.
	for _, s := range []int{0, sysIdx} {
		rc := &e.rec[k][s]
		rc.failures++
		if !t.Opened.Add(day).After(e.win.End) {
			rc.uncDay++
		}
		if !t.Opened.Add(week).After(e.win.End) {
			rc.uncWeek++
		}
		if !t.Opened.Add(month).After(e.win.End) {
			rc.uncMonth++
		}
		if sysIdx == 0 {
			break
		}
	}

	// Single-failure share (§IV.B).
	e.crashCount[t.ServerID]++
	switch e.crashCount[t.ServerID] {
	case 1:
		e.failing[k]++
		e.singles[k]++
	case 2:
		e.singles[k]--
	}
	if !seen || t.Opened.After(prev) {
		e.lastCrash[t.ServerID] = t.Opened
	}
}

func (e *Engine) addIncidentLocked(inc model.Incident) {
	e.incidents++
	n := len(inc.Servers)
	e.incidentServers += n
	if n == 1 {
		e.incidentOne++
	} else if n >= 2 {
		e.incidentTwoPlus++
	}
	if n > e.maxIncident {
		e.maxIncident = n
		e.maxIncidentCls = inc.Class
	}
	pms, vms := 0, 0
	for _, id := range inc.Servers {
		if m := e.machines[id]; m != nil {
			switch m.Kind {
			case model.PM:
				pms++
			case model.VM:
				vms++
			}
		}
	}
	e.pmBuckets[bucketOf(pms)]++
	e.vmBuckets[bucketOf(vms)]++

	cs := e.classSpatial[inc.Class]
	if cs == nil {
		cs = &classSpatialAcc{}
		e.classSpatial[inc.Class] = cs
	}
	cs.incidents++
	cs.servers += n
	if n > cs.max {
		cs.max = n
	}
}

func bucketOf(n int) int {
	switch {
	case n == 0:
		return 0
	case n == 1:
		return 1
	default:
		return 2
	}
}

// recurrence windows, identical to the batch definitions.
var (
	day   = 24 * time.Hour
	week  = 7 * day
	month = 30 * day
)

// Monitor returns the engine's live monitoring store (nil when monitoring
// ingestion is disabled).
func (e *Engine) Monitor() *monitordb.DB { return e.monitor }

// Detector returns the engine's online detection layer (nil when
// detection is disabled).
func (e *Engine) Detector() *detect.Detector { return e.cfg.Detector }

// Seq returns the engine's apply generation: the count of events folded
// in so far. It is deterministic for a given event stream regardless of
// how callers batched it or how many appliers raced, so scrapes of
// /metrics, /v1/alerts and /v1/report that report the same Seq observed
// the same state.
func (e *Engine) Seq() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.events
}

// Totals is a cheap counter snapshot for cross-shard aggregation: the
// values the coordinator sums (or maxes, for the watermark) to publish
// fleet-wide gauges without assembling a full Snapshot.
type Totals struct {
	Events             int64
	Tickets            int64
	CrashTickets       int64
	MonitorSamples     int64
	DroppedOutOfWindow int64
	PredictDistances   int64
	PredictPruned      int64
	Machines           int
	Incidents          int
	Watermark          time.Time
}

// Totals returns the engine's headline counters under the apply lock.
func (e *Engine) Totals() Totals {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Totals{
		Events:             e.events,
		Tickets:            e.tickets,
		CrashTickets:       e.crashTickets,
		MonitorSamples:     e.monitorSamples,
		DroppedOutOfWindow: e.droppedOutOfWindow,
		PredictDistances:   int64(e.predScratch.Distances),
		PredictPruned:      int64(e.predScratch.Pruned),
		Machines:           e.ownedLocked(),
		Incidents:          e.incidents,
		Watermark:          e.watermark,
	}
}
