package stream

import (
	"failscope/internal/model"
	"failscope/internal/sketch"
)

// MergeSnapshot assembles one Snapshot from N shard engines as if every
// event had been applied to a single engine. The Table II / Fig. 1 / Fig. 2
// / §IV.D / §IV.E statistics are count-based: the raw integer accumulators
// sum across shards (machines are disjoint by the router's hash ownership,
// so per-server state like weekly failed sets and recurrence counters never
// overlaps), and the merged derived floats are computed by the exact same
// assembly code Snapshot uses, so they are bit-identical to the
// single-engine values. The inter-failure and repair Summary blocks ride on
// sketch.Moments.Merge / sketch.Quantile.Merge, which are
// accumulation-order sensitive in the last ulp — equal within the
// convergence suite's 1e-9/5% tolerances, not byte-equal.
//
// Engines must share one Config.Observation window (the router guarantees
// it). Locks are taken in slice order; MergeSnapshot is the only path that
// holds more than one engine lock, so the order cannot deadlock.
func MergeSnapshot(engines []*Engine) *Snapshot {
	if len(engines) == 0 {
		return nil
	}
	if len(engines) == 1 {
		return engines[0].Snapshot()
	}
	for _, e := range engines {
		e.mu.Lock()
	}
	defer func() {
		for _, e := range engines {
			e.mu.Unlock()
		}
	}()

	weeks := len(engines[0].weekly[0][0])
	m := &Engine{
		win:          engines[0].win,
		classCounts:  make(map[model.System]map[model.FailureClass]int),
		classTotals:  make(map[model.System]int),
		classSpatial: make(map[model.FailureClass]*classSpatialAcc),
		confusion:    make(map[[2]int]int),
	}
	for k := 0; k < 2; k++ {
		for s := 0; s <= model.NumSystems; s++ {
			m.weekly[k][s] = make([]int, weeks)
			m.weeklyFailed[k][s] = make([]map[model.MachineID]bool, weeks)
		}
	}

	owned := 0
	for _, e := range engines {
		if len(e.weekly[0][0]) != weeks {
			panic("stream: MergeSnapshot requires engines with identical observation windows")
		}
		if m.cfg.Classifier == nil {
			m.cfg.Classifier = e.cfg.Classifier
		}
		m.events += e.events
		m.tickets += e.tickets
		m.crashTickets += e.crashTickets
		m.droppedOutOfWindow += e.droppedOutOfWindow
		m.outOfOrder += e.outOfOrder
		m.monitorSamples += e.monitorSamples
		owned += e.ownedLocked()
		if e.watermark.After(m.watermark) {
			m.watermark = e.watermark
		}

		for k := 0; k < 2; k++ {
			for s := 0; s <= model.NumSystems; s++ {
				m.serverCount[k][s] += e.serverCount[k][s]
				m.sysKindCrash[k][s] += e.sysKindCrash[k][s]
				for wi, c := range e.weekly[k][s] {
					m.weekly[k][s][wi] += c
				}
				for wi, failed := range e.weeklyFailed[k][s] {
					if len(failed) == 0 {
						continue
					}
					dst := m.weeklyFailed[k][s][wi]
					if dst == nil {
						dst = make(map[model.MachineID]bool, len(failed))
						m.weeklyFailed[k][s][wi] = dst
					}
					for id := range failed {
						dst[id] = true
					}
				}
				rc, src := &m.rec[k][s], e.rec[k][s]
				rc.failures += src.failures
				rc.uncDay += src.uncDay
				rc.uncWeek += src.uncWeek
				rc.uncMonth += src.uncMonth
				rc.hitDay += src.hitDay
				rc.hitWeek += src.hitWeek
				rc.hitMonth += src.hitMonth
			}
			m.gaps[k].merge(&e.gaps[k])
			m.repairs[k].merge(&e.repairs[k])
			m.kindCrashes[k] += e.kindCrashes[k]
			m.reboots[k] += e.reboots[k]
			m.failing[k] += e.failing[k]
			m.singles[k] += e.singles[k]
		}
		for s := 0; s <= model.NumSystems; s++ {
			m.sysAll[s] += e.sysAll[s]
			m.sysCrash[s] += e.sysCrash[s]
		}

		for sys, counts := range e.classCounts {
			dst := m.classCounts[sys]
			if dst == nil {
				dst = make(map[model.FailureClass]int, len(counts))
				m.classCounts[sys] = dst
			}
			for class, n := range counts {
				dst[class] += n
			}
		}
		for sys, n := range e.classTotals {
			m.classTotals[sys] += n
		}

		m.incidents += e.incidents
		m.incidentOne += e.incidentOne
		m.incidentTwoPlus += e.incidentTwoPlus
		m.incidentServers += e.incidentServers
		// Strict > keeps the earliest shard's class on size ties, matching
		// the single engine's first-encountered rule only up to incident
		// placement — the convergence tests carry the same tie caveat.
		if e.maxIncident > m.maxIncident {
			m.maxIncident = e.maxIncident
			m.maxIncidentCls = e.maxIncidentCls
		}
		for i := 0; i < 3; i++ {
			m.pmBuckets[i] += e.pmBuckets[i]
			m.vmBuckets[i] += e.vmBuckets[i]
		}
		for class, cs := range e.classSpatial {
			dst := m.classSpatial[class]
			if dst == nil {
				dst = &classSpatialAcc{}
				m.classSpatial[class] = dst
			}
			dst.incidents += cs.incidents
			dst.servers += cs.servers
			if cs.max > dst.max {
				dst.max = cs.max
			}
		}

		for key, n := range e.confusion {
			m.confusion[key] += n
		}
		m.scored += e.scored
		m.scoredHit += e.scoredHit
	}

	s := m.snapshotLocked()
	s.Machines = owned // the scratch engine has no inventory map
	return s
}

// merge folds another accumulator's distribution in: exact moments via
// Chan's pairwise update, order statistics via the sketch's level-wise
// merge. Deterministic for a fixed shard order.
func (d *distAcc) merge(o *distAcc) {
	d.m.Merge(o.m)
	if o.q != nil {
		if d.q == nil {
			d.q = sketch.NewQuantile(distAccK)
		}
		d.q.Merge(o.q)
	}
}
