// Package stream is the incremental counterpart of the batch pipeline: an
// engine that consumes ordered event batches — tickets, monitoring
// samples, placement changes, incidents — and keeps the paper's §IV
// statistics continuously up to date. Every snapshot is queryable at any
// point and converges to the batch core.Analyze numbers on the same data
// (asserted by the convergence tests): weekly failure rates and class
// mixes are maintained exactly, inter-failure and repair distributions
// through streaming moment accumulators and a mergeable quantile sketch,
// and recurrence/spatial probabilities through incremental counters that
// replicate the batch censoring rules.
package stream

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"failscope/internal/model"
	"failscope/internal/monitordb"
	"failscope/internal/ticketdb"
)

// Event is one element of the input stream. Type selects which payload
// fields are meaningful; the JSON form is one object per line (JSONL).
type Event struct {
	// Type is one of "machine", "ticket", "incident", "sample", "power",
	// "placement", "advance".
	Type string `json:"type"`

	// machine: a server joins the inventory (must precede its tickets for
	// kind/system attribution, exactly as a CMDB precedes the ticket queue).
	Machine *model.Machine `json:"machine,omitempty"`

	// ticket: one ticketing-system record.
	Ticket *model.Ticket `json:"ticket,omitempty"`

	// incident: one failure incident (possibly spanning servers).
	Incident *model.Incident `json:"incident,omitempty"`

	// sample / power / placement: monitoring-database records. Time also
	// drives "advance" (an explicit watermark heartbeat with no payload).
	ServerID model.MachineID  `json:"serverID,omitempty"`
	Metric   monitordb.Metric `json:"metric,omitempty"`
	Time     *time.Time       `json:"time,omitempty"`
	Value    float64          `json:"value,omitempty"`
	On       *bool            `json:"on,omitempty"`
	Host     model.MachineID  `json:"host,omitempty"`

	// Ref marks a replica of an event whose primary copy lives on another
	// shard: the receiving engine applies its side effects (machine refs
	// register for incident kind lookups, advance refs move the watermark,
	// placement refs feed the detector's fleet-wide consolidation count)
	// but counts nothing — not the event itself, not the machine, not the
	// detector's inventory — so summing per-shard counters over a sharded
	// fleet equals the single-engine numbers. The shard router sets it when
	// broadcasting machine, advance and placement events; it never crosses
	// the wire.
	Ref bool `json:"ref,omitempty"`
}

// When returns the event's timestamp: ticket open, incident time, sample /
// power / placement / advance time; zero for inventory events.
func (e Event) When() time.Time {
	switch {
	case e.Ticket != nil:
		return e.Ticket.Opened
	case e.Incident != nil:
		return e.Incident.Time
	case e.Time != nil:
		return *e.Time
	}
	return time.Time{}
}

// DecodeJSONL parses a JSONL event batch. Errors name the 1-based line
// number of the offending record — the daemon surfaces them verbatim in
// its 400 responses. Blank lines are skipped.
func DecodeJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("stream: line %d: %w", line, err)
		}
		if ev.Type == "" {
			return nil, fmt.Errorf("stream: line %d: event without type", line)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("stream: read: %w", err)
	}
	return events, nil
}

// EncodeJSONL writes events one JSON object per line.
func EncodeJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("stream: encode event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// EventsFromField flattens a generated (or ingested) field dataset into
// the ordered event stream a live deployment would have produced: the
// machine inventory first (the CMDB predates the ticket queue), then every
// timed record — tickets, incidents, monitoring samples, power events,
// placements — sorted by timestamp with arrival order as the deterministic
// tie-break. This is what -replay feeds the daemon and what the
// convergence tests replay through the engine.
func EventsFromField(data *model.Dataset, tickets *ticketdb.Store, monitor *monitordb.DB) []Event {
	var timed []Event
	if tickets != nil {
		for _, t := range tickets.All() {
			tk := t
			timed = append(timed, Event{Type: "ticket", Ticket: &tk})
		}
	} else if data != nil {
		for _, t := range data.Tickets {
			tk := t
			timed = append(timed, Event{Type: "ticket", Ticket: &tk})
		}
	}
	if data != nil {
		for _, inc := range data.Incidents {
			ic := inc
			timed = append(timed, Event{Type: "incident", Incident: &ic})
		}
	}
	if monitor != nil {
		monitor.ForEachSeries(func(id model.MachineID, metric monitordb.Metric, samples []monitordb.Sample) {
			for _, s := range samples {
				at := s.Time
				timed = append(timed, Event{Type: "sample", ServerID: id, Metric: metric, Time: &at, Value: s.Value})
			}
		})
		monitor.ForEachPower(func(id model.MachineID, events []monitordb.PowerEvent) {
			for _, ev := range events {
				at := ev.Time
				on := ev.On
				timed = append(timed, Event{Type: "power", ServerID: id, Time: &at, On: &on})
			}
		})
		monitor.ForEachPlacement(func(vm model.MachineID, steps []monitordb.PlacementStep) {
			for _, st := range steps {
				at := st.Time
				timed = append(timed, Event{Type: "placement", ServerID: vm, Host: st.Host, Time: &at})
			}
		})
	}
	sort.SliceStable(timed, func(i, j int) bool { return timed[i].When().Before(timed[j].When()) })

	var out []Event
	if data != nil {
		for _, m := range data.Machines {
			out = append(out, Event{Type: "machine", Machine: m})
		}
	}
	return append(out, timed...)
}
