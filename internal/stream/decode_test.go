package stream

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"failscope/internal/mempool"
	"failscope/internal/model"
	"failscope/internal/monitordb"
)

// decodeTestEvents builds a representative batch covering every event type
// and payload field the canonical encoder can emit.
func decodeTestEvents() []Event {
	at := func(s string) *time.Time {
		t, err := time.Parse(time.RFC3339Nano, s)
		if err != nil {
			panic(err)
		}
		return &t
	}
	on := true
	off := false
	return []Event{
		{Type: "machine", Machine: &model.Machine{
			ID: "S1-PM-0001", Kind: model.PM, System: model.System(1),
			Capacity: model.Capacity{CPUs: 16, MemoryGB: 96.5, DiskGB: 1863.0, Disks: 12},
			Created:  at("2011-07-01T00:00:00Z").UTC(),
		}},
		{Type: "machine", Machine: &model.Machine{
			ID: "S1-VM-0001", Kind: model.VM, System: model.System(1),
			Capacity: model.Capacity{CPUs: 4, MemoryGB: 8, DiskGB: 128.25, Disks: 1},
			HostID:   "S1-PM-0001", Created: at("2012-03-15T09:30:00.25Z").UTC(),
		}},
		{Type: "ticket", Ticket: &model.Ticket{
			ID: "T0000001", ServerID: "S1-PM-0001", IncidentID: "I000042",
			System: model.System(1), Opened: at("2012-08-01T10:00:00Z").UTC(),
			Closed:      at("2012-08-01T14:45:30Z").UTC(),
			Description: "RAID controller reports degraded array \"dm-3\"",
			Resolution:  "replaced disk\nrebuilt array", IsCrash: true,
			Class: model.FailureClass(3),
		}},
		{Type: "incident", Incident: &model.Incident{
			ID: "I000042", Class: model.FailureClass(3),
			Time:    at("2012-08-01T09:58:12Z").UTC(),
			Servers: []model.MachineID{"S1-PM-0001", "S1-VM-0001"},
		}},
		{Type: "sample", ServerID: "S1-VM-0001", Metric: monitordb.MetricCPUUtil,
			Time: at("2012-08-05T00:00:00Z"), Value: 37.25},
		{Type: "sample", ServerID: "S1-VM-0001", Metric: monitordb.MetricNetKbps,
			Time: at("2012-08-05T00:15:00Z"), Value: 1.0e-7},
		{Type: "power", ServerID: "S1-PM-0001", Time: at("2012-08-06T03:00:00Z"), On: &off},
		{Type: "power", ServerID: "S1-PM-0001", Time: at("2012-08-06T04:00:00Z"), On: &on},
		{Type: "placement", ServerID: "S1-VM-0001", Host: "S1-PM-0001",
			Time: at("2012-08-07T12:00:00Z")},
		{Type: "advance", Time: at("2012-09-01T00:00:00Z")},
	}
}

// TestDecodeJSONLIntoMatchesLegacy round-trips the canonical encoder's
// output through both decoders and requires identical events — and that
// every canonical line took the fast path.
func TestDecodeJSONLIntoMatchesLegacy(t *testing.T) {
	events := decodeTestEvents()
	var buf bytes.Buffer
	if err := EncodeJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	legacy, err := DecodeJSONL(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}

	fast0, fb0 := DecodeStats()
	b := GetBatch()
	defer b.Release()
	n, err := b.DecodeJSONLInto(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	fast1, fb1 := DecodeStats()
	if fb1 != fb0 {
		t.Fatalf("canonical lines fell back to encoding/json: %d", fb1-fb0)
	}
	if fast1-fast0 != int64(len(events)) {
		t.Fatalf("fast-path lines = %d, want %d", fast1-fast0, len(events))
	}
	if n != len(legacy) {
		t.Fatalf("decoded %d events, legacy %d", n, len(legacy))
	}
	for i := range legacy {
		if !reflect.DeepEqual(b.Events[i], legacy[i]) {
			t.Errorf("event %d:\nfast:   %#v\nlegacy: %#v", i, b.Events[i], legacy[i])
			if b.Events[i].Time != nil && legacy[i].Time != nil && !b.Events[i].Time.Equal(*legacy[i].Time) {
				t.Errorf("event %d time: fast %v legacy %v", i, *b.Events[i].Time, *legacy[i].Time)
			}
		}
	}
}

// TestDecodeJSONLIntoTrickyLines feeds both decoders hand-written lines a
// canonical encoder would never produce — reordered keys, whitespace,
// escapes, unicode, nulls, unknown fields, exponents, duplicate keys,
// non-Z timezones — and requires bit-identical events and errors. Lines
// the fast path cannot certify fall back; either way the two decoders must
// agree.
func TestDecodeJSONLIntoTrickyLines(t *testing.T) {
	lines := []string{
		// Whitespace and key reorder.
		`  { "value" : 3.5 , "type" : "sample" , "serverID" : "a" , "metric" : 1 , "time" : "2012-08-05T00:00:00Z" }  `,
		// Escapes, unicode, \u escape (non-surrogate).
		`{"type":"ticket","ticket":{"id":"T1","serverID":"s","system":1,"opened":"2012-08-01T10:00:00Z","closed":"2012-08-01T11:00:00Z","description":"tab\there \"quoted\" caf\u00e9 naïve","resolution":"done\\","isCrash":false}}`,
		// Nulls for pointers and unknown fields with nested payloads.
		`{"type":"advance","time":"2012-09-01T00:00:00Z","machine":null,"on":null,"future":{"a":[1,2,{"b":null}],"c":"x"}}`,
		// Exponent and negative floats, int zero.
		`{"type":"sample","serverID":"s","metric":0,"time":"2012-08-05T00:00:00Z","value":-1.25e+2}`,
		`{"type":"sample","serverID":"s","metric":2,"time":"2012-08-05T00:00:00Z","value":5e-324}`,
		// Duplicate scalar key: last one wins in both decoders.
		`{"type":"sample","serverID":"a","serverID":"b","metric":1,"time":"2012-08-05T00:00:00Z","value":1}`,
		// Duplicate struct key: encoding/json merges — fast path must defer.
		`{"type":"machine","machine":{"id":"a"},"machine":{"kind":2}}`,
		// Non-Z timezone: fast path defers to time.Parse via the fallback.
		`{"type":"advance","time":"2012-09-01T02:00:00+02:00"}`,
		// Fractional seconds at full precision.
		`{"type":"advance","time":"2012-09-01T00:00:00.123456789Z"}`,
		// Case-insensitive key match: json assigns it, fast path defers.
		`{"Type":"advance","TIME":"2012-09-01T00:00:00Z"}`,
		// Incident with empty and null servers.
		`{"type":"incident","incident":{"id":"i1","class":1,"time":"2012-08-01T00:00:00Z","servers":[]}}`,
		`{"type":"incident","incident":{"id":"i2","class":1,"time":"2012-08-01T00:00:00Z","servers":null}}`,
		// Empty object payloads.
		`{"type":"machine","machine":{}}`,
		`{"type":"machine","machine":{"id":"m","capacity":{}}}`,
	}
	for i, line := range lines {
		legacy, lerr := DecodeJSONL(strings.NewReader(line))
		b := GetBatch()
		n, ferr := b.DecodeJSONLInto(strings.NewReader(line))
		if (lerr == nil) != (ferr == nil) || (lerr != nil && lerr.Error() != ferr.Error()) {
			t.Errorf("line %d error mismatch:\nfast:   %v\nlegacy: %v", i, ferr, lerr)
			b.Release()
			continue
		}
		if lerr != nil {
			b.Release()
			continue
		}
		if n != len(legacy) {
			t.Errorf("line %d: decoded %d events, legacy %d", i, n, len(legacy))
			b.Release()
			continue
		}
		for j := range legacy {
			if !reflect.DeepEqual(b.Events[j], legacy[j]) {
				t.Errorf("line %d event %d:\nfast:   %#v\nlegacy: %#v", i, j, b.Events[j], legacy[j])
			}
		}
		b.Release()
	}
}

// TestDecodeJSONLIntoErrors pins error parity on malformed input: both
// decoders must fail with the same message and line number.
func TestDecodeJSONLIntoErrors(t *testing.T) {
	inputs := []string{
		"{\"type\":\"advance\"}\nnot json",
		`{"type":""}`,
		`{}`,
		`{"type":"sample","metric":1.5}`,
		`{"type":"sample","value":"nope"}`,
		`{"type":"advance","time":"2012-13-40T00:00:00Z"}`,
		`{"type":"advance"} trailing`,
		`{"type":"adv` + "\x01" + `ance"}`,
		`{"type":"machine","machine":{"capacity":{"cpus":01}}}`,
	}
	for i, in := range inputs {
		_, lerr := DecodeJSONL(strings.NewReader(in))
		b := GetBatch()
		_, ferr := b.DecodeJSONLInto(strings.NewReader(in))
		b.Release()
		if lerr == nil && ferr == nil {
			continue
		}
		if (lerr == nil) != (ferr == nil) || lerr.Error() != ferr.Error() {
			t.Errorf("input %d error mismatch:\nfast:   %v\nlegacy: %v", i, ferr, lerr)
		}
	}
}

// TestDecodeJSONLIntoInvalidUTF8 pins the U+FFFD substitution parity:
// encoding/json replaces invalid UTF-8 rather than erroring, so those
// lines must fall back and come out identical.
func TestDecodeJSONLIntoInvalidUTF8(t *testing.T) {
	line := "{\"type\":\"ticket\",\"ticket\":{\"id\":\"T1\",\"serverID\":\"s\",\"system\":1,\"opened\":\"2012-08-01T10:00:00Z\",\"closed\":\"2012-08-01T11:00:00Z\",\"description\":\"bad \xff byte\",\"resolution\":\"r\",\"isCrash\":false}}"
	legacy, lerr := DecodeJSONL(strings.NewReader(line))
	b := GetBatch()
	defer b.Release()
	_, ferr := b.DecodeJSONLInto(strings.NewReader(line))
	if (lerr == nil) != (ferr == nil) {
		t.Fatalf("error mismatch: fast %v legacy %v", ferr, lerr)
	}
	if lerr == nil && !reflect.DeepEqual(b.Events[0], legacy[0]) {
		t.Fatalf("event mismatch:\nfast:   %#v\nlegacy: %#v", b.Events[0], legacy[0])
	}
}

// TestBatchReuse verifies a released batch comes back empty and is
// actually recycled by the pool.
func TestBatchReuse(t *testing.T) {
	if !mempool.Enabled() {
		t.Skip("pooling disabled")
	}
	b := GetBatch()
	if _, err := b.DecodeJSONLInto(strings.NewReader(`{"type":"advance","time":"2012-09-01T00:00:00Z"}`)); err != nil {
		t.Fatal(err)
	}
	if len(b.Events) != 1 {
		t.Fatalf("decoded %d events", len(b.Events))
	}
	b.Release()
	b2 := GetBatch()
	defer b2.Release()
	if b2 != b {
		t.Fatalf("pool did not recycle the batch")
	}
	if len(b2.Events) != 0 || len(b2.times) != 0 {
		t.Fatalf("recycled batch not reset: %d events, %d times", len(b2.Events), len(b2.times))
	}
}

// TestDecodeSteadyStateAllocs pins the allocation count of the pooled
// decode path at steady state: one retained string per event payload field
// is the budget; maps, intermediate strings and boxed fields are not.
func TestDecodeSteadyStateAllocs(t *testing.T) {
	if !mempool.Enabled() {
		t.Skip("pooling disabled")
	}
	var lines bytes.Buffer
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&lines, `{"type":"sample","serverID":"S1-VM-%04d","metric":1,"time":"2012-08-05T00:00:00Z","value":%d.25}`, i, i)
		lines.WriteByte('\n')
	}
	raw := lines.Bytes()

	// Warm the pool so the batch and its arenas exist.
	warm := GetBatch()
	if _, err := warm.DecodeJSONLInto(bytes.NewReader(raw)); err != nil {
		t.Fatal(err)
	}
	warm.Release()

	rd := bytes.NewReader(raw)
	avg := testing.AllocsPerRun(20, func() {
		rd.Reset(raw)
		b := GetBatch()
		if _, err := b.DecodeJSONLInto(rd); err != nil {
			t.Fatal(err)
		}
		b.Release()
	})
	// Budget: 64 serverID strings + bufio.Scanner + small constant slack.
	// The legacy decoder spends ~14 allocs per event on the same input;
	// regressing past 2/event means boxing crept back in.
	perEvent := avg / 64
	if perEvent > 2 {
		t.Fatalf("pooled decode allocates %.2f allocs/event (%.0f total), budget 2/event", perEvent, avg)
	}
}
