package stream

import (
	"sort"
	"time"

	"failscope/internal/core"
	"failscope/internal/fidelity"
	"failscope/internal/ingest"
	"failscope/internal/model"
	"failscope/internal/stats"
	"failscope/internal/textmine"
)

// Snapshot is the engine's state at one point in the stream: ingestion
// counters plus the partial core.Report the streaming statistics support.
// Distribution-valued analyses (sample slices, ECDFs, model fits, age and
// capacity studies) stay empty — the fidelity scoreboard skips their bands
// rather than failing them.
type Snapshot struct {
	// Seq is the apply generation (events folded in when the snapshot was
	// taken) — the same number /healthz and the X-Failscope-Seq response
	// header report, for correlating scrapes.
	Seq                int64     `json:"seq"`
	Events             int64     `json:"events"`
	Tickets            int64     `json:"tickets"`
	CrashTickets       int64     `json:"crashTickets"`
	DroppedOutOfWindow int64     `json:"droppedOutOfWindow"`
	OutOfOrder         int64     `json:"outOfOrder"`
	Machines           int       `json:"machines"`
	Incidents          int       `json:"incidents"`
	MonitorSamples     int64     `json:"monitorSamples"`
	Watermark          time.Time `json:"watermark"`

	Report     *core.Report             `json:"report"`
	Classifier *ingest.ClassifierReport `json:"classifier,omitempty"`
}

// Fidelity scores the snapshot's report against the paper bands.
func (s *Snapshot) Fidelity() *fidelity.Scoreboard {
	return fidelity.Score(fidelity.Input{Report: s.Report, Classifier: s.Classifier})
}

// summary converts the accumulator into the batch stats.Summary shape:
// count, mean, extremes and standard deviation are exact; the quartiles
// come from the sketch.
func (d *distAcc) summary() stats.Summary {
	n := int(d.m.N())
	if n == 0 {
		return stats.Summary{}
	}
	s := stats.Summary{
		N:    n,
		Mean: d.m.Mean(),
		Min:  d.m.Min(),
		Max:  d.m.Max(),
	}
	if n >= 2 {
		s.StdDev = d.m.StdDev()
	}
	s.Median = d.q.Query(0.5)
	s.P25 = d.q.Query(0.25)
	s.P75 = d.q.Query(0.75)
	return s
}

var kinds = [2]model.MachineKind{model.PM, model.VM}

// Snapshot assembles the queryable state. It holds the engine lock for the
// duration; all the analyses below are O(weeks + classes), never O(events).
func (e *Engine) Snapshot() *Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.snapshotLocked()
}

// snapshotLocked is the assembly body, shared between Snapshot and the
// cross-shard merge (which assembles from a scratch engine holding the
// combined accumulators, so every derived float comes from the exact same
// expressions).
func (e *Engine) snapshotLocked() *Snapshot {
	s := &Snapshot{
		Seq:                e.events,
		Events:             e.events,
		Tickets:            e.tickets,
		CrashTickets:       e.crashTickets,
		DroppedOutOfWindow: e.droppedOutOfWindow,
		OutOfOrder:         e.outOfOrder,
		Machines:           e.ownedLocked(),
		Incidents:          e.incidents,
		MonitorSamples:     e.monitorSamples,
		Watermark:          e.watermark,
	}

	r := &core.Report{}
	r.DatasetStats = e.datasetStatsLocked()
	r.ClassDistribution = e.classDistributionLocked()
	r.WeeklyRates = e.weeklyRatesLocked()
	r.InterFailurePM = e.interFailureLocked(0)
	r.InterFailureVM = e.interFailureLocked(1)
	r.RepairPM = e.repairLocked(0)
	r.RepairVM = e.repairLocked(1)
	r.RecurrencePM = e.recurrenceLocked(0, 0)
	r.RecurrenceVM = e.recurrenceLocked(1, 0)
	r.RandomRecurrent = e.randomRecurrentLocked()
	r.Spatial = e.spatialLocked()
	r.SpatialClass = e.spatialClassLocked()
	s.Report = r

	if e.cfg.Classifier != nil {
		s.Classifier = e.classifierReportLocked()
	}
	return s
}

func (e *Engine) datasetStatsLocked() []core.SystemStats {
	out := make([]core.SystemStats, 0, model.NumSystems+1)
	var total core.SystemStats
	var totalPM, totalVM int
	for _, sys := range model.Systems() {
		i := int(sys)
		s := core.SystemStats{
			System:       sys,
			PMs:          e.serverCount[0][i],
			VMs:          e.serverCount[1][i],
			AllTickets:   e.sysAll[i],
			CrashTickets: e.sysCrash[i],
		}
		if s.AllTickets > 0 {
			s.CrashShare = float64(s.CrashTickets) / float64(s.AllTickets)
		}
		if s.CrashTickets > 0 {
			s.PMShare = float64(e.sysKindCrash[0][i]) / float64(s.CrashTickets)
			s.VMShare = float64(e.sysKindCrash[1][i]) / float64(s.CrashTickets)
		}
		total.PMs += s.PMs
		total.VMs += s.VMs
		total.AllTickets += s.AllTickets
		total.CrashTickets += s.CrashTickets
		totalPM += e.sysKindCrash[0][i]
		totalVM += e.sysKindCrash[1][i]
		out = append(out, s)
	}
	if total.AllTickets > 0 {
		total.CrashShare = float64(total.CrashTickets) / float64(total.AllTickets)
	}
	if total.CrashTickets > 0 {
		total.PMShare = float64(totalPM) / float64(total.CrashTickets)
		total.VMShare = float64(totalVM) / float64(total.CrashTickets)
	}
	return append(out, total)
}

func (e *Engine) classDistributionLocked() []core.ClassShare {
	var out []core.ClassShare
	systems := append([]model.System{0}, model.Systems()...)
	for _, sys := range systems {
		for _, class := range model.Classes() {
			n := e.classCounts[sys][class]
			share := 0.0
			if t := e.classTotals[sys]; t > 0 {
				share = float64(n) / float64(t)
			}
			out = append(out, core.ClassShare{System: sys, Class: class, Count: n, Share: share})
		}
	}
	return out
}

func (e *Engine) weeklyRatesLocked() []core.RateSummary {
	var out []core.RateSummary
	for k := range kinds {
		for s := 0; s <= model.NumSystems; s++ {
			rs := core.RateSummary{Kind: kinds[k], System: model.System(s), Servers: e.serverCount[k][s]}
			if rs.Servers > 0 {
				rates := make([]float64, len(e.weekly[k][s]))
				for i, c := range e.weekly[k][s] {
					rates[i] = float64(c) / float64(rs.Servers)
				}
				rs.Summary = stats.Summarize(rates)
			}
			out = append(out, rs)
		}
	}
	return out
}

func (e *Engine) interFailureLocked(k int) core.InterFailureResult {
	return core.InterFailureResult{
		Kind:                 kinds[k],
		Summary:              e.gaps[k].summary(),
		SingleFailureServers: e.singles[k],
		FailingServers:       e.failing[k],
	}
}

func (e *Engine) repairLocked(k int) core.RepairResult {
	res := core.RepairResult{Kind: kinds[k], Summary: e.repairs[k].summary()}
	if e.kindCrashes[k] > 0 {
		res.RebootShare = float64(e.reboots[k]) / float64(e.kindCrashes[k])
	}
	return res
}

func (e *Engine) recurrenceLocked(k, sys int) core.RecurrenceResult {
	rc := e.rec[k][sys]
	res := core.RecurrenceResult{
		Kind:               kinds[k],
		Failures:           rc.failures,
		UncensoredForDay:   rc.uncDay,
		UncensoredForWeek:  rc.uncWeek,
		UncensoredForMonth: rc.uncMonth,
	}
	if rc.uncDay > 0 {
		res.WithinDay = float64(rc.hitDay) / float64(rc.uncDay)
	}
	if rc.uncWeek > 0 {
		res.WithinWeek = float64(rc.hitWeek) / float64(rc.uncWeek)
	}
	if rc.uncMonth > 0 {
		res.WithinMonth = float64(rc.hitMonth) / float64(rc.uncMonth)
	}
	return res
}

func (e *Engine) randomRecurrentLocked() []core.RandomVsRecurrent {
	var out []core.RandomVsRecurrent
	for k := range kinds {
		for s := 0; s <= model.NumSystems; s++ {
			row := core.RandomVsRecurrent{
				Kind:      kinds[k],
				System:    model.System(s),
				Recurrent: e.recurrenceLocked(k, s).WithinWeek,
			}
			if servers := e.serverCount[k][s]; servers > 0 {
				sum := 0.0
				for _, f := range e.weeklyFailed[k][s] {
					sum += float64(len(f)) / float64(servers)
				}
				row.Random = sum / float64(len(e.weeklyFailed[k][s]))
			}
			if row.Random > 0 {
				row.Ratio = row.Recurrent / row.Random
			}
			out = append(out, row)
		}
	}
	return out
}

func (e *Engine) spatialLocked() core.SpatialResult {
	res := core.SpatialResult{
		Incidents:       e.incidents,
		MaxServers:      e.maxIncident,
		MaxServersClass: e.maxIncidentCls,
	}
	if e.incidents == 0 {
		return res
	}
	total := float64(e.incidents)
	res.ShareOne = float64(e.incidentOne) / total
	res.ShareTwoPlus = float64(e.incidentTwoPlus) / total
	res.PMZero = float64(e.pmBuckets[0]) / total
	res.PMOne = float64(e.pmBuckets[1]) / total
	res.PMTwoPlus = float64(e.pmBuckets[2]) / total
	res.VMZero = float64(e.vmBuckets[0]) / total
	res.VMOne = float64(e.vmBuckets[1]) / total
	res.VMTwoPlus = float64(e.vmBuckets[2]) / total
	if n := e.pmBuckets[1] + e.pmBuckets[2]; n > 0 {
		res.DependentPMShare = float64(e.pmBuckets[2]) / float64(n)
	}
	if n := e.vmBuckets[1] + e.vmBuckets[2]; n > 0 {
		res.DependentVMShare = float64(e.vmBuckets[2]) / float64(n)
	}
	res.MeanServers = float64(e.incidentServers) / total
	return res
}

func (e *Engine) spatialClassLocked() []core.ClassSpatialStats {
	var out []core.ClassSpatialStats
	for _, class := range model.Classes() {
		cs := e.classSpatial[class]
		if cs == nil {
			out = append(out, core.ClassSpatialStats{Class: class})
			continue
		}
		out = append(out, core.ClassSpatialStats{
			Class:     class,
			Incidents: cs.incidents,
			Mean:      float64(cs.servers) / float64(cs.incidents),
			Max:       cs.max,
		})
	}
	return out
}

// classifierReportLocked scores the online predictions against the tickets'
// ground-truth labels, in the same shape the batch ingest pipeline reports.
// TrainDocs stays zero: the engine never trains, it applies a frozen model
// to every in-window ticket.
func (e *Engine) classifierReportLocked() *ingest.ClassifierReport {
	cm := &textmine.ConfusionMatrix{Counts: make(map[[2]int]int), Total: int(e.scored), Hits: int(e.scoredHit)}
	seen := make(map[int]bool)
	for key, n := range e.confusion {
		cm.Counts[key] = n
		for _, l := range key {
			if !seen[l] {
				seen[l] = true
				cm.Labels = append(cm.Labels, l)
			}
		}
	}
	sort.Ints(cm.Labels)

	var crashTotal, crashHit, predCrash, predCrashHit, crashClassHit int
	for key, n := range cm.Counts {
		truthCrash := key[0] > 0
		predIsCrash := key[1] > 0
		if truthCrash {
			crashTotal += n
			if predIsCrash {
				crashHit += n
			}
			if key[0] == key[1] {
				crashClassHit += n
			}
		}
		if predIsCrash {
			predCrash += n
			if truthCrash {
				predCrashHit += n
			}
		}
	}
	rep := &ingest.ClassifierReport{
		TestDocs:  int(e.scored),
		Confusion: cm,
	}
	if cm.Total > 0 {
		rep.Accuracy = cm.Accuracy()
	}
	if s1 := e.cfg.Classifier.Stage1(); s1 != nil {
		rep.Stage1Purity = s1.Purity()
	}
	if s2 := e.cfg.Classifier.Stage2(); s2 != nil {
		rep.Stage2Purity = s2.Purity()
	}
	if crashTotal > 0 {
		rep.CrashRecall = float64(crashHit) / float64(crashTotal)
		rep.CrashClassAccuracy = float64(crashClassHit) / float64(crashTotal)
	}
	if predCrash > 0 {
		rep.CrashPrecision = float64(predCrashHit) / float64(predCrash)
	}
	return rep
}
