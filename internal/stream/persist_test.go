package stream

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"failscope/internal/dcsim"
	"failscope/internal/detect"
	"failscope/internal/ingest"
)

// fullEvents generates the small study's complete event stream (machines,
// tickets, incidents, monitoring, placements, trailing advance) plus a
// factory for identically-configured engines with monitoring and
// detection enabled — the richest configuration persistence must cover.
func fullEvents(t *testing.T) ([]Event, func(t *testing.T) *Engine) {
	t.Helper()
	cfg := dcsim.SmallConfig()
	field, err := dcsim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := ingest.DefaultOptions(cfg.Observation, cfg.FineWindow)
	opts.SkipClassification = true
	col, err := ingest.Collect(field.Data, field.Tickets, field.Monitor, opts)
	if err != nil {
		t.Fatal(err)
	}
	events := EventsFromField(col.Data, nil, field.Monitor)
	end := cfg.Observation.End
	events = append(events, Event{Type: "advance", Time: &end})

	mk := func(t *testing.T) *Engine {
		t.Helper()
		eng, err := NewEngine(Config{
			Observation:      cfg.Observation,
			FineWindow:       cfg.FineWindow,
			MonitorEpoch:     cfg.MonitorEpoch,
			MonitorRetention: cfg.MonitorRetention,
			Detector:         detect.New(detect.Config{}),
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	return events, mk
}

// engineFingerprint reduces an engine to the externally observable state
// the crash-recovery invariant protects: the snapshot (report included),
// the detector snapshot and the monitor store's canonical export.
func engineFingerprint(t *testing.T, e *Engine) string {
	t.Helper()
	snap, err := json.Marshal(e.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	det, err := json.Marshal(e.Detector().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var mon bytes.Buffer
	if err := e.Monitor().Encode(&mon); err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%s\n%s\n%s", snap, det, mon.Bytes())
}

// TestEngineStateRoundTripEquivalence is the headline recovery invariant
// at the engine layer: for any split point k, applying events[:k], writing
// state, restoring it into a fresh engine and applying events[k:] must be
// observationally identical to one uninterrupted run — snapshot, report,
// detector and monitor store alike.
func TestEngineStateRoundTripEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the small study several times")
	}
	events, mk := fullEvents(t)

	ref := mk(t)
	if err := ref.Apply(events); err != nil {
		t.Fatal(err)
	}
	want := engineFingerprint(t, ref)

	n := len(events)
	for _, k := range []int{0, 1, n / 3, n / 2, n - 1, n} {
		a := mk(t)
		if err := a.Apply(events[:k]); err != nil {
			t.Fatalf("split %d: %v", k, err)
		}
		var blob bytes.Buffer
		seq, err := a.WriteState(&blob)
		if err != nil {
			t.Fatalf("split %d: write state: %v", k, err)
		}
		if seq != int64(k) {
			t.Fatalf("split %d: WriteState returned seq %d", k, seq)
		}

		b := mk(t)
		if err := b.RestoreState(bytes.NewReader(blob.Bytes())); err != nil {
			t.Fatalf("split %d: restore: %v", k, err)
		}
		if got := b.Seq(); got != int64(k) {
			t.Fatalf("split %d: restored engine at seq %d", k, got)
		}
		if err := b.Apply(events[k:]); err != nil {
			t.Fatalf("split %d: %v", k, err)
		}
		if got := engineFingerprint(t, b); got != want {
			t.Errorf("split %d: recovered run diverges from uninterrupted run", k)
		}
	}
}

// TestEngineRestoreRefusesMismatch: images must only load into engines
// configured identically — window, monitoring and detection.
func TestEngineRestoreRefusesMismatch(t *testing.T) {
	events, mk := fullEvents(t)
	a := mk(t)
	if err := a.Apply(events[:100]); err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	if _, err := a.WriteState(&blob); err != nil {
		t.Fatal(err)
	}

	cfg := dcsim.SmallConfig()
	shifted := cfg.Observation
	shifted.End = shifted.End.AddDate(0, 0, 7)
	cases := map[string]Config{
		"window": {Observation: shifted, FineWindow: cfg.FineWindow,
			MonitorEpoch: cfg.MonitorEpoch, MonitorRetention: cfg.MonitorRetention,
			Detector: detect.New(detect.Config{})},
		"no monitor": {Observation: cfg.Observation, FineWindow: cfg.FineWindow,
			Detector: detect.New(detect.Config{})},
		"no detector": {Observation: cfg.Observation, FineWindow: cfg.FineWindow,
			MonitorEpoch: cfg.MonitorEpoch, MonitorRetention: cfg.MonitorRetention},
	}
	for name, c := range cases {
		eng, err := NewEngine(c)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.RestoreState(bytes.NewReader(blob.Bytes())); err == nil {
			t.Errorf("%s mismatch accepted", name)
		}
	}
}

// recordingJournal captures appended batches (deep copies — callers may
// recycle the slices) and counts syncs.
type recordingJournal struct {
	mu      sync.Mutex
	records []journalRecord
	syncs   int
}

type journalRecord struct {
	startSeq int64
	events   []Event
}

func (j *recordingJournal) Append(startSeq int64, events []Event) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.records = append(j.records, journalRecord{startSeq, append([]Event(nil), events...)})
	return nil
}

func (j *recordingJournal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.syncs++
	return nil
}

// TestJournalCapturesApplyOrder hammers ApplyGrouped from many goroutines
// and proves the journal's cardinal property: records are contiguous in
// sequence, cover every applied event, and replaying them in append order
// into a fresh engine reproduces the original state exactly.
func TestJournalCapturesApplyOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the small study")
	}
	events, mk := fullEvents(t)
	eng := mk(t)
	j := &recordingJournal{}
	eng.SetJournal(j)

	const workers = 8
	batches := make(chan []Event, 64)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range batches {
				if err := eng.ApplyGrouped(b); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	const batchSize = 100
	for lo := 0; lo < len(events); lo += batchSize {
		hi := lo + batchSize
		if hi > len(events) {
			hi = len(events)
		}
		batches <- events[lo:hi]
	}
	close(batches)
	wg.Wait()

	j.mu.Lock()
	records, syncs := j.records, j.syncs
	j.mu.Unlock()
	if syncs == 0 {
		t.Fatal("journal never synced")
	}

	// Contiguity: each record starts where the previous one ended.
	next := int64(1)
	total := 0
	for i, r := range records {
		if r.startSeq != next {
			t.Fatalf("record %d starts at seq %d, want %d", i, r.startSeq, next)
		}
		next += int64(len(r.events))
		total += len(r.events)
	}
	if int64(total) != eng.Seq() {
		t.Fatalf("journal holds %d events, engine applied %d", total, eng.Seq())
	}

	// Replaying the journal reproduces the engine bit for bit.
	replayed := mk(t)
	for _, r := range records {
		if err := replayed.Apply(r.events); err != nil {
			t.Fatal(err)
		}
	}
	if engineFingerprint(t, replayed) != engineFingerprint(t, eng) {
		t.Error("journal replay diverges from the journaled engine")
	}
}
