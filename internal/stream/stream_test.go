package stream

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"failscope/internal/core"
	"failscope/internal/dcsim"
	"failscope/internal/ingest"
	"failscope/internal/model"
)

// small runs the small-study generator + ground-truth collection once per
// test binary.
func smallBatch(t *testing.T) (*dcsim.Output, *ingest.Collection, *core.Report) {
	t.Helper()
	cfg := dcsim.SmallConfig()
	field, err := dcsim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := ingest.DefaultOptions(cfg.Observation, cfg.FineWindow)
	opts.SkipClassification = true
	col, err := ingest.Collect(field.Data, field.Tickets, field.Monitor, opts)
	if err != nil {
		t.Fatal(err)
	}
	report, err := core.Analyze(core.Input{Data: col.Data, Attrs: col.Attrs})
	if err != nil {
		t.Fatal(err)
	}
	return field, col, report
}

// closeTo fails unless got is within relative tolerance of want (NaN
// matches NaN).
func closeTo(t *testing.T, name string, got, want, rel float64) {
	t.Helper()
	if math.IsNaN(want) {
		if !math.IsNaN(got) {
			t.Errorf("%s = %g, want NaN", name, got)
		}
		return
	}
	tol := rel * math.Abs(want)
	if tol == 0 {
		tol = rel
	}
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", name, got, want, tol)
	}
}

func checkInterFailure(t *testing.T, name string, got, want core.InterFailureResult) {
	t.Helper()
	if got.Kind != want.Kind || got.FailingServers != want.FailingServers ||
		got.SingleFailureServers != want.SingleFailureServers {
		t.Errorf("%s counters = {kind %v failing %d single %d}, want {kind %v failing %d single %d}",
			name, got.Kind, got.FailingServers, got.SingleFailureServers,
			want.Kind, want.FailingServers, want.SingleFailureServers)
	}
	if got.Summary.N != want.Summary.N {
		t.Errorf("%s N = %d, want %d", name, got.Summary.N, want.Summary.N)
	}
	closeTo(t, name+" mean", got.Summary.Mean, want.Summary.Mean, 1e-9)
	closeTo(t, name+" stddev", got.Summary.StdDev, want.Summary.StdDev, 1e-9)
	closeTo(t, name+" min", got.Summary.Min, want.Summary.Min, 0)
	closeTo(t, name+" max", got.Summary.Max, want.Summary.Max, 0)
	closeTo(t, name+" median", got.Summary.Median, want.Summary.Median, 0.05)
	closeTo(t, name+" p25", got.Summary.P25, want.Summary.P25, 0.05)
	closeTo(t, name+" p75", got.Summary.P75, want.Summary.P75, 0.05)
}

func checkRepair(t *testing.T, name string, got, want core.RepairResult) {
	t.Helper()
	if got.Kind != want.Kind {
		t.Errorf("%s kind = %v, want %v", name, got.Kind, want.Kind)
	}
	closeTo(t, name+" reboot share", got.RebootShare, want.RebootShare, 0)
	if got.Summary.N != want.Summary.N {
		t.Errorf("%s N = %d, want %d", name, got.Summary.N, want.Summary.N)
	}
	closeTo(t, name+" mean", got.Summary.Mean, want.Summary.Mean, 1e-9)
	closeTo(t, name+" stddev", got.Summary.StdDev, want.Summary.StdDev, 1e-9)
	closeTo(t, name+" min", got.Summary.Min, want.Summary.Min, 0)
	closeTo(t, name+" max", got.Summary.Max, want.Summary.Max, 0)
	closeTo(t, name+" median", got.Summary.Median, want.Summary.Median, 0.05)
	closeTo(t, name+" p25", got.Summary.P25, want.Summary.P25, 0.05)
	closeTo(t, name+" p75", got.Summary.P75, want.Summary.P75, 0.05)
}

// TestEngineConvergesToBatch is the tentpole acceptance check: replaying
// the collected small-study field data through the streaming engine in
// many batches must land on the batch core.Analyze numbers — exactly for
// every count-based statistic, within tight tolerances for the
// sketch-backed distribution summaries.
func TestEngineConvergesToBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the full small study")
	}
	field, col, batch := smallBatch(t)
	cfg := dcsim.SmallConfig()

	eng, err := NewEngine(Config{
		Observation:      cfg.Observation,
		FineWindow:       cfg.FineWindow,
		MonitorEpoch:     cfg.MonitorEpoch,
		MonitorRetention: cfg.MonitorRetention,
	})
	if err != nil {
		t.Fatal(err)
	}

	events := EventsFromField(col.Data, nil, field.Monitor)
	if len(events) == 0 {
		t.Fatal("no events from field data")
	}
	// Apply in many batches, snapshotting between them: snapshots must be
	// available at any point and never regress.
	const chunks = 16
	var lastTickets int64
	for i := 0; i < chunks; i++ {
		lo, hi := i*len(events)/chunks, (i+1)*len(events)/chunks
		if err := eng.Apply(events[lo:hi]); err != nil {
			t.Fatal(err)
		}
		snap := eng.Snapshot()
		if snap.Tickets < lastTickets {
			t.Fatalf("chunk %d: ticket counter went backwards (%d -> %d)", i, lastTickets, snap.Tickets)
		}
		lastTickets = snap.Tickets
		if snap.Report == nil {
			t.Fatalf("chunk %d: snapshot without report", i)
		}
	}

	snap := eng.Snapshot()
	if snap.DroppedOutOfWindow != 0 {
		t.Errorf("%d collected tickets dropped as out-of-window", snap.DroppedOutOfWindow)
	}
	if snap.OutOfOrder != 0 {
		t.Errorf("%d tickets arrived out of order from a time-sorted replay", snap.OutOfOrder)
	}
	got := snap.Report

	// Exact convergence: every statistic that is a pure function of counts.
	if !reflect.DeepEqual(got.DatasetStats, batch.DatasetStats) {
		t.Errorf("DatasetStats diverged:\n got %+v\nwant %+v", got.DatasetStats, batch.DatasetStats)
	}
	if !reflect.DeepEqual(got.ClassDistribution, batch.ClassDistribution) {
		t.Errorf("ClassDistribution diverged:\n got %+v\nwant %+v", got.ClassDistribution, batch.ClassDistribution)
	}
	if !reflect.DeepEqual(got.WeeklyRates, batch.WeeklyRates) {
		t.Errorf("WeeklyRates diverged:\n got %+v\nwant %+v", got.WeeklyRates, batch.WeeklyRates)
	}
	if !reflect.DeepEqual(got.RecurrencePM, batch.RecurrencePM) {
		t.Errorf("RecurrencePM diverged:\n got %+v\nwant %+v", got.RecurrencePM, batch.RecurrencePM)
	}
	if !reflect.DeepEqual(got.RecurrenceVM, batch.RecurrenceVM) {
		t.Errorf("RecurrenceVM diverged:\n got %+v\nwant %+v", got.RecurrenceVM, batch.RecurrenceVM)
	}
	if !reflect.DeepEqual(got.RandomRecurrent, batch.RandomRecurrent) {
		t.Errorf("RandomRecurrent diverged:\n got %+v\nwant %+v", got.RandomRecurrent, batch.RandomRecurrent)
	}
	if !reflect.DeepEqual(got.SpatialClass, batch.SpatialClass) {
		t.Errorf("SpatialClass diverged:\n got %+v\nwant %+v", got.SpatialClass, batch.SpatialClass)
	}
	// Spatial: everything except the max-incident class (ties between
	// equal-sized incidents resolve by arrival order, which differs between
	// slice order and time order).
	gs, ws := got.Spatial, batch.Spatial
	gs.MaxServersClass, ws.MaxServersClass = 0, 0
	if !reflect.DeepEqual(gs, ws) {
		t.Errorf("Spatial diverged:\n got %+v\nwant %+v", gs, ws)
	}
	if got.Spatial.MaxServers != batch.Spatial.MaxServers {
		t.Errorf("Spatial.MaxServers = %d, want %d", got.Spatial.MaxServers, batch.Spatial.MaxServers)
	}

	// Sketch-backed distributions: exact counts and extremes, 1e-9 moments,
	// 5%% quartiles.
	checkInterFailure(t, "InterFailurePM", got.InterFailurePM, batch.InterFailurePM)
	checkInterFailure(t, "InterFailureVM", got.InterFailureVM, batch.InterFailureVM)
	checkRepair(t, "RepairPM", got.RepairPM, batch.RepairPM)
	checkRepair(t, "RepairVM", got.RepairVM, batch.RepairVM)

	// The final snapshot clears the fidelity gate: the bands the streaming
	// report supports all pass, none fail.
	sb := snap.Fidelity()
	if sb == nil || len(sb.Bands) == 0 {
		t.Fatal("empty fidelity scoreboard from snapshot")
	}
	if err := sb.Err(); err != nil {
		t.Errorf("fidelity gate on final snapshot: %v", err)
	}
	for _, name := range []string{
		"pm_weekly_rate", "pm_vm_rate_ratio", "vm_interfailure_mean",
		"vm_single_failure_share", "vm_reboot_share",
		"recurrent_random_ratio_pm", "recurrent_random_ratio_vm",
		"incident_share_one", "max_incident_servers",
	} {
		b := sb.Find(name)
		if b == nil {
			t.Fatalf("band %s missing", name)
		}
		if b.Verdict != "pass" {
			t.Errorf("band %s verdict = %s (value %g), want pass", name, b.Verdict, b.Value)
		}
	}
}

// TestEngineOnlineClassification trains the two-stage model once and lets
// the engine classify the replayed ticket stream online, scoring against
// ground truth.
func TestEngineOnlineClassification(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the classifier and replays the small study")
	}
	field, col, _ := smallBatch(t)
	cfg := dcsim.SmallConfig()

	opts := ingest.DefaultOptions(cfg.Observation, cfg.FineWindow)
	opts.Clusters = 32
	opts.MaxIter = 20
	clf, err := ingest.TrainOnlineClassifier(col.Data.Tickets, opts)
	if err != nil {
		t.Fatal(err)
	}

	eng, err := NewEngine(Config{
		Observation: cfg.Observation,
		FineWindow:  cfg.FineWindow,
		Classifier:  clf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Apply(EventsFromField(col.Data, nil, field.Monitor)); err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	rep := snap.Classifier
	if rep == nil {
		t.Fatal("snapshot without classifier report")
	}
	if rep.TestDocs != int(snap.Tickets) {
		t.Errorf("scored %d tickets, want every in-window ticket (%d)", rep.TestDocs, snap.Tickets)
	}
	if rep.Accuracy < 0.80 {
		t.Errorf("online accuracy = %.3f, want >= 0.80", rep.Accuracy)
	}
	if rep.CrashRecall < 0.75 {
		t.Errorf("online crash recall = %.3f, want >= 0.75", rep.CrashRecall)
	}
	if rep.Confusion == nil || rep.Confusion.Total != int(snap.Tickets) {
		t.Error("confusion matrix missing or incomplete")
	}
}

func TestDecodeJSONLErrorsNameTheLine(t *testing.T) {
	in := `{"type":"advance","time":"2012-07-01T00:00:00Z"}
{not json}
`
	_, err := DecodeJSONL(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-2 decode error", err)
	}

	_, err = DecodeJSONL(strings.NewReader(`{"value":3}`))
	if err == nil || !strings.Contains(err.Error(), "line 1") || !strings.Contains(err.Error(), "without type") {
		t.Fatalf("err = %v, want line-1 missing-type error", err)
	}
}

func TestEncodeDecodeJSONLRoundTrip(t *testing.T) {
	at := time.Date(2012, 8, 1, 12, 0, 0, 0, time.UTC)
	on := true
	events := []Event{
		{Type: "machine", Machine: &model.Machine{ID: "pm-1", Kind: model.PM, System: model.SysI}},
		{Type: "ticket", Ticket: &model.Ticket{ID: "t1", ServerID: "pm-1", Opened: at, IsCrash: true, Class: model.ClassSoftware, System: model.SysI}},
		{Type: "power", ServerID: "pm-1", Time: &at, On: &on},
	}
	var buf strings.Builder
	if err := EncodeJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSONL(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, back) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", back, events)
	}
}

func TestEngineRejectsBadConfigAndEvents(t *testing.T) {
	if _, err := NewEngine(Config{}); err == nil {
		t.Error("NewEngine accepted an empty observation window")
	}
	win := model.Window{
		Start: time.Date(2012, 7, 1, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2013, 7, 1, 0, 0, 0, 0, time.UTC),
	}
	if _, err := NewEngine(Config{Observation: win, UsePredictions: true}); err == nil {
		t.Error("NewEngine accepted UsePredictions without a classifier")
	}

	eng, err := NewEngine(Config{Observation: win})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Apply([]Event{{Type: "warp"}}); err == nil || !strings.Contains(err.Error(), "warp") {
		t.Errorf("Apply(unknown type) err = %v, want type error", err)
	}
	if err := eng.Apply([]Event{{Type: "ticket"}}); err == nil {
		t.Error("Apply accepted a ticket event without a ticket")
	}

	// Out-of-window tickets are dropped and counted, never analyzed.
	before := win.Start.Add(-time.Hour)
	err = eng.Apply([]Event{
		{Type: "machine", Machine: &model.Machine{ID: "pm-1", Kind: model.PM, System: model.SysI}},
		{Type: "ticket", Ticket: &model.Ticket{ID: "t0", ServerID: "pm-1", Opened: before, IsCrash: true, Class: model.ClassSoftware, System: model.SysI}},
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	if snap.Tickets != 0 || snap.DroppedOutOfWindow != 1 {
		t.Errorf("tickets = %d dropped = %d, want 0 and 1", snap.Tickets, snap.DroppedOutOfWindow)
	}
	if snap.Machines != 1 {
		t.Errorf("machines = %d, want 1", snap.Machines)
	}
}

// TestEngineTinyFleetExactStats hand-checks the incremental recurrence and
// gap logic on a fleet small enough to verify by eye, including the
// censoring of triggers too close to the window end.
func TestEngineTinyFleetExactStats(t *testing.T) {
	start := time.Date(2012, 7, 1, 0, 0, 0, 0, time.UTC)
	win := model.Window{Start: start, End: start.Add(60 * 24 * time.Hour)}
	eng, err := NewEngine(Config{Observation: win})
	if err != nil {
		t.Fatal(err)
	}
	tick := func(id string, opened time.Time, class model.FailureClass) Event {
		return Event{Type: "ticket", Ticket: &model.Ticket{
			ID: id + opened.String(), ServerID: model.MachineID(id), Opened: opened,
			Closed: opened.Add(2 * time.Hour), IsCrash: true, Class: class, System: model.SysI,
		}}
	}
	d := 24 * time.Hour
	err = eng.Apply([]Event{
		{Type: "machine", Machine: &model.Machine{ID: "pm-1", Kind: model.PM, System: model.SysI}},
		{Type: "machine", Machine: &model.Machine{ID: "pm-2", Kind: model.PM, System: model.SysI}},
		// pm-1 fails on days 0, 3, 40; pm-2 fails once on day 55 (its
		// day-window fits, week/month windows are censored).
		tick("pm-1", start, model.ClassSoftware),
		tick("pm-1", start.Add(3*d), model.ClassSoftware),
		tick("pm-1", start.Add(40*d), model.ClassReboot),
		tick("pm-2", start.Add(55*d), model.ClassHardware),
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	r := snap.Report.RecurrencePM
	// Triggers: day windows uncensored for all 4; week windows for all 4
	// (55+7 > 60 censors pm-2's => 3); month windows: only days 0 and 3.
	if r.Failures != 4 || r.UncensoredForDay != 4 || r.UncensoredForWeek != 3 || r.UncensoredForMonth != 2 {
		t.Fatalf("recurrence counters = %+v", r)
	}
	// Hits: within a day none; within a week the 0->3 gap; within a month
	// the 0->3 gap (3->40 misses every window).
	if r.WithinDay != 0 {
		t.Errorf("WithinDay = %g, want 0", r.WithinDay)
	}
	closeTo(t, "WithinWeek", r.WithinWeek, 1.0/3, 1e-12)
	closeTo(t, "WithinMonth", r.WithinMonth, 0.5, 1e-12)

	inf := snap.Report.InterFailurePM
	if inf.FailingServers != 2 || inf.SingleFailureServers != 1 {
		t.Fatalf("failing = %d single = %d, want 2 and 1", inf.FailingServers, inf.SingleFailureServers)
	}
	if inf.Summary.N != 2 { // gaps 3 and 37 days
		t.Fatalf("gap N = %d, want 2", inf.Summary.N)
	}
	closeTo(t, "gap mean", inf.Summary.Mean, 20, 1e-12)

	rep := snap.Report.RepairPM
	if rep.Summary.N != 4 {
		t.Fatalf("repair N = %d, want 4", rep.Summary.N)
	}
	closeTo(t, "repair mean", rep.Summary.Mean, 2, 1e-12)
	closeTo(t, "reboot share", rep.RebootShare, 0.25, 1e-12)
}
