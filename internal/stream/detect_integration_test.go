package stream

import (
	"encoding/json"
	"testing"
	"time"

	"failscope/internal/dcsim"
	"failscope/internal/detect"
)

// detectorReplay replays the collected small-study event stream (closed by
// an advance to the observation end) through an engine configured with the
// given monitor retention and a fresh detector, returning the detector's
// snapshot JSON.
func detectorReplay(t *testing.T, retention time.Duration) string {
	t.Helper()
	field, col, _ := smallBatch(t)
	cfg := dcsim.SmallConfig()

	det := detect.New(detect.Config{})
	ecfg := Config{
		Observation: cfg.Observation,
		FineWindow:  cfg.FineWindow,
		Detector:    det,
	}
	if retention > 0 {
		ecfg.MonitorEpoch = cfg.MonitorEpoch
		ecfg.MonitorRetention = retention
	}
	eng, err := NewEngine(ecfg)
	if err != nil {
		t.Fatal(err)
	}
	events := EventsFromField(col.Data, nil, field.Monitor)
	end := cfg.Observation.End
	events = append(events, Event{Type: "advance", Time: &end})
	if err := eng.Apply(events); err != nil {
		t.Fatal(err)
	}
	snap, err := json.MarshalIndent(det.Snapshot(), "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(snap)
}

// TestDetectorUnaffectedByMonitorEviction proves the detector keeps its own
// per-machine state rather than leaning on the columnar monitoring store: a
// detector attached to an engine whose monitor evicts aggressively (short
// retention) must produce a byte-identical snapshot to one attached to an
// engine with monitoring disabled entirely.
func TestDetectorUnaffectedByMonitorEviction(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the small study twice")
	}
	noMonitor := detectorReplay(t, 0)
	shortRetention := detectorReplay(t, 14*24*time.Hour)
	if noMonitor != shortRetention {
		t.Error("detector snapshot changed when the monitoring store evicted aggressively")
	}
	// Sanity: the replay actually exercised the detector.
	var snap detect.Snapshot
	if err := json.Unmarshal([]byte(noMonitor), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Raised == 0 {
		t.Error("detector raised no alerts on the small study")
	}
	if snap.Machines == 0 {
		t.Error("detector observed no machines")
	}
}
