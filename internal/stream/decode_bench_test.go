package stream

// BenchmarkWireDecode{Legacy,Pooled} pit the two JSONL decode paths against
// each other on a real small-study event mix (tickets, machines, samples,
// placements): the legacy per-line json.Unmarshal path that ApplyJSONL used
// before pooling, and the pooled zero-copy fast parser behind
// Batch.DecodeJSONLInto. Outputs are proven identical by the parity tests
// in decode_test.go; these benchmarks track the cost gap.

import (
	"bytes"
	"testing"

	"failscope/internal/dcsim"
)

func benchWire(b *testing.B) []byte {
	b.Helper()
	field, err := dcsim.Generate(dcsim.SmallConfig())
	if err != nil {
		b.Fatal(err)
	}
	events := EventsFromField(field.Data, field.Tickets, field.Monitor)[:20000]
	var wire bytes.Buffer
	if err := EncodeJSONL(&wire, events); err != nil {
		b.Fatal(err)
	}
	return wire.Bytes()
}

func BenchmarkWireDecodeLegacy(b *testing.B) {
	raw := benchWire(b)
	var rd bytes.Reader
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(raw)
		if _, err := DecodeJSONL(&rd); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecodePooled(b *testing.B) {
	raw := benchWire(b)
	var rd bytes.Reader
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(raw)
		batch := GetBatch()
		if _, err := batch.DecodeJSONLInto(&rd); err != nil {
			b.Fatal(err)
		}
		batch.Release()
	}
}
