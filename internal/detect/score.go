package detect

import (
	"math"
	"time"

	"failscope/internal/fidelity"
	"failscope/internal/model"
)

// riskLocked computes the §IV feature-based risk score for a machine at
// the moment an alert rises. It reuses the factor *directions* the
// paper's joined analysis reports — failure probability grows with age
// (no infant-mortality bathtub), peaks at mid-range utilization
// (inverted bathtub), grows with spindle count, and falls with
// consolidation (VMs packed densely on a host fail less) — combined
// through a logistic squash into [0, 1]. The score annotates alerts for
// triage; it never gates raising, so miscalibration cannot suppress a
// detection. Deliberately excluded: crash history, which is already the
// recurrence rule's evidence.
func (d *Detector) riskLocked(st *machineState, at time.Time) float64 {
	var z float64

	// Age: +0.4 per year of machine age (paper §IV.C: failure rate climbs
	// monotonically with age over the observed range).
	if !st.created.IsZero() && at.After(st.created) {
		years := at.Sub(st.created).Hours() / (24 * 365)
		if years > 6 {
			years = 6
		}
		z += 0.4 * years
	}

	// Usage: inverted bathtub over mean utilization (§IV.B) — the bump
	// peaks at 50% and fades toward idle or saturated machines. Uses the
	// live EWMA level of the three utilization series.
	var util, nu float64
	for mi := 0; mi < 3; mi++ {
		if s := &st.series[mi]; s.n > 0 {
			util += s.mean
			nu++
		}
	}
	if nu > 0 {
		u := util / nu / 100 // series are percentages
		if u > 1 {
			u = 1
		} else if u < 0 {
			u = 0
		}
		z += 1.2 * (1 - 4*(u-0.5)*(u-0.5)) // 1 at u=0.5, 0 at the extremes
	}

	// Capacity: +0.1 per disk beyond the first (§IV.B: more spindles,
	// more failures).
	if st.cap.Disks > 1 {
		disks := float64(st.cap.Disks - 1)
		if disks > 10 {
			disks = 10
		}
		z += 0.1 * disks
	}

	// Consolidation: −0.15 per co-resident VM beyond this one (§IV.D:
	// densely consolidated VMs fail less often).
	if st.kind == model.VM && st.host != "" {
		if n := d.hostVMs[st.host]; n > 1 {
			co := float64(n - 1)
			if co > 10 {
				co = 10
			}
			z -= 0.15 * co
		}
	}

	return 1 / (1 + math.Exp(-(z - 1.5))) // centered so a typical machine scores near 0.5
}

// Score grades a detection snapshot the way fidelity.Score grades a
// report: calibrated bands with pass/warn/fail verdicts, gate-mapped by
// Scoreboard.Err. Alerts whose horizon extends past the stream watermark
// are censored — still active, in no band's numerator or denominator —
// so precision is only over resolved (confirmed or expired) alerts.
//
// The detect_resolved floor makes the gate fail closed: a broken
// detector that never raises has 0 resolved alerts, which skips the
// ratio bands but fails detect_resolved, so -detect-gate still exits
// non-zero.
func Score(s *Snapshot) *fidelity.Scoreboard {
	resolved := s.Confirmed + s.Expired

	precision := math.NaN()
	if resolved > 0 {
		precision = float64(s.Confirmed) / float64(resolved)
	}
	recall := math.NaN()
	if s.CrashTickets > 0 {
		recall = float64(s.Confirmed) / float64(s.CrashTickets)
	}
	faRate := math.NaN()
	if s.MachineWeeks > 0 {
		faRate = float64(s.Expired) / s.MachineWeeks
	}

	bands := []fidelity.Band{
		fidelity.NewBand("detect_resolved",
			"ground truth resolves alerts; a silent detector is a broken one",
			"alerts", fidelity.Range{Lo: 3, Hi: 1e7}, fidelity.Range{Lo: 1, Hi: 1e7},
			float64(resolved), true, ""),
		fidelity.NewBand("detect_precision",
			"§IV.D recurrence: a crash burst predicts the next crash within the horizon",
			"", fidelity.Range{Lo: 0.70, Hi: 1}, fidelity.Range{Lo: 0.55, Hi: 1},
			precision, resolved > 0, skipNote(resolved > 0, "no resolved alerts")),
		fidelity.NewBand("detect_median_lead_days",
			"alerts must lead the failure, not trail it",
			"days", fidelity.Range{Lo: 0.25, Hi: 60}, fidelity.Range{Lo: 0.04, Hi: 120},
			s.LeadDaysP50, s.Confirmed > 0, skipNote(s.Confirmed > 0, "no confirmed alerts")),
		fidelity.NewBand("detect_recall",
			"§II.B: most failures are one-offs — burst detection covers only the recurrent heavy tail",
			"", fidelity.Range{Lo: 0.004, Hi: 0.5}, fidelity.Range{Lo: 0.001, Hi: 0.9},
			recall, s.CrashTickets > 0, skipNote(s.CrashTickets > 0, "no crash tickets seen")),
		fidelity.NewBand("detect_false_alarms_per_machine_week",
			"alert budget: expired alerts per machine-week of observation",
			"1/machine-week", fidelity.Range{Lo: 0, Hi: 0.001}, fidelity.Range{Lo: 0, Hi: 0.01},
			faRate, s.MachineWeeks > 0, skipNote(s.MachineWeeks > 0, "no machine-weeks observed")),
		fidelity.NewBand("detect_anomaly_alerts",
			"canonical usage series are stationary — the CUSUM must stay silent on them",
			"alerts", fidelity.Range{Lo: 0, Hi: 0}, fidelity.Range{Lo: 0, Hi: 3},
			float64(s.RaisedAnomaly), true, ""),
	}
	return fidelity.Tally(bands)
}

func skipNote(ok bool, note string) string {
	if ok {
		return ""
	}
	return note
}
