package detect

import (
	"math"
	"testing"
	"time"

	"failscope/internal/model"
	"failscope/internal/monitordb"
	"failscope/internal/obs"
)

var t0 = time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)

func day(n int) time.Time { return t0.Add(time.Duration(n) * 24 * time.Hour) }

func crash(d *Detector, id model.MachineID, at time.Time) {
	d.ObserveTicket(&model.Ticket{ServerID: id, Opened: at, IsCrash: true, Class: model.FailureClass(1)}, 1)
}

func newTestDetector() *Detector {
	d := New(Config{})
	d.ObserveMachine(&model.Machine{ID: "m1", Kind: model.PM, System: 1, Created: t0.AddDate(-2, 0, 0)})
	return d
}

// TestRecurrenceRaiseConfirm walks the core alert lifecycle: a burst of
// MinCrashes crashes inside BurstWindow raises, the next crash inside the
// horizon confirms with the right lead time.
func TestRecurrenceRaiseConfirm(t *testing.T) {
	d := newTestDetector()
	for i := 0; i < DefaultMinCrashes; i++ {
		crash(d, "m1", day(i*7)) // days 0,7,14,21 — span 21d ≤ 30d
	}
	s := d.Snapshot()
	if s.Raised != 1 || s.ActiveCount != 1 {
		t.Fatalf("raised=%d active=%d after a 4-in-21d burst, want 1/1", s.Raised, s.ActiveCount)
	}
	a := s.Active[0]
	if a.Source != SourceRecurrence || a.Machine != "m1" || !a.RaisedAt.Equal(day(21)) {
		t.Errorf("unexpected alert %+v", a)
	}
	if a.Crashes != DefaultMinCrashes {
		t.Errorf("alert crashes=%d, want %d", a.Crashes, DefaultMinCrashes)
	}
	if a.Risk < 0 || a.Risk > 1 {
		t.Errorf("risk %v outside [0,1]", a.Risk)
	}

	// Next crash 10 days later: confirms, lead 10 days, and immediately
	// re-raises (the last 4 crashes now span days 7..31 ≤ 30d).
	crash(d, "m1", day(31))
	s = d.Snapshot()
	if s.Confirmed != 1 {
		t.Fatalf("confirmed=%d, want 1", s.Confirmed)
	}
	if len(s.Recent) != 1 || s.Recent[0].Outcome != OutcomeConfirmed {
		t.Fatalf("cleared ring %+v, want one confirmed alert", s.Recent)
	}
	if got := s.Recent[0].LeadDays; math.Abs(got-10) > 1e-9 {
		t.Errorf("lead %.4f days, want 10", got)
	}
	if s.ActiveCount != 1 {
		t.Errorf("active=%d after confirm, want 1 (re-raised on the confirming crash)", s.ActiveCount)
	}
}

// TestRecurrenceNoRaiseSpreadOut: the same number of crashes spread past
// the burst window never raises.
func TestRecurrenceNoRaiseSpreadOut(t *testing.T) {
	d := newTestDetector()
	for i := 0; i < 6; i++ {
		crash(d, "m1", day(i*45))
	}
	if s := d.Snapshot(); s.Raised != 0 {
		t.Errorf("raised=%d for crashes 45 days apart, want 0", s.Raised)
	}
}

// TestAlertExpiry: an unconfirmed alert expires when the watermark passes
// its deadline, and a later crash past the deadline expires (not
// confirms) a still-active alert.
func TestAlertExpiry(t *testing.T) {
	d := newTestDetector()
	for i := 0; i < DefaultMinCrashes; i++ {
		crash(d, "m1", day(i))
	}
	if s := d.Snapshot(); s.ActiveCount != 1 {
		t.Fatalf("active=%d, want 1", s.ActiveCount)
	}
	d.Advance(day(3).Add(DefaultHorizon - time.Hour))
	if s := d.Snapshot(); s.ActiveCount != 1 {
		t.Fatal("alert expired before its deadline")
	}
	d.Advance(day(3).Add(DefaultHorizon + time.Hour))
	s := d.Snapshot()
	if s.ActiveCount != 0 || s.Expired != 1 {
		t.Fatalf("active=%d expired=%d after the horizon elapsed, want 0/1", s.ActiveCount, s.Expired)
	}
	if s.Recent[0].Outcome != OutcomeExpired {
		t.Errorf("outcome %q, want expired", s.Recent[0].Outcome)
	}
	if !s.Recent[0].ClearedAt.Equal(day(3).Add(DefaultHorizon)) {
		t.Errorf("expired alert cleared at %v, want its deadline", s.Recent[0].ClearedAt)
	}
}

// TestLateCrashExpiresFirst: a crash arriving after the active alert's
// deadline resolves it as expired, then counts toward a fresh burst.
func TestLateCrashExpiresFirst(t *testing.T) {
	d := newTestDetector()
	for i := 0; i < DefaultMinCrashes; i++ {
		crash(d, "m1", day(i))
	}
	crash(d, "m1", day(3).Add(DefaultHorizon+24*time.Hour))
	s := d.Snapshot()
	if s.Confirmed != 0 || s.Expired != 1 {
		t.Fatalf("confirmed=%d expired=%d for a past-deadline crash, want 0/1", s.Confirmed, s.Expired)
	}
}

// TestAnomalyTrip: a stationary series stays silent; a sustained level
// shift trips the CUSUM and raises an anomaly alert naming the metric.
func TestAnomalyTrip(t *testing.T) {
	d := newTestDetector()
	// Deterministic stationary wiggle around 40 for 3x warmup.
	for i := 0; i < 3*DefaultWarmup; i++ {
		v := 40.0
		if i%2 == 0 {
			v = 42
		}
		d.ObserveSample("m1", monitordb.MetricCPUUtil, day(i), v)
	}
	if s := d.Snapshot(); s.Raised != 0 {
		t.Fatalf("raised=%d on a stationary series, want 0", s.Raised)
	}
	// Sustained shift far beyond the clamp: trips within a few samples.
	for i := 0; i < 6; i++ {
		d.ObserveSample("m1", monitordb.MetricCPUUtil, day(100+i), 95)
	}
	s := d.Snapshot()
	if s.RaisedAnomaly != 1 {
		t.Fatalf("anomaly alerts=%d after a sustained spike, want 1", s.RaisedAnomaly)
	}
	if a := s.Active[0]; a.Source != SourceAnomaly || a.Metric != "cpu_util" {
		t.Errorf("alert %+v, want anomaly on cpu_util", a)
	}
}

// TestAnomalyStateSurvivesGaps: the per-series state is O(1), so a long
// sample gap (the columnar store would have evicted the window) neither
// resets nor trips the detector.
func TestAnomalyStateSurvivesGaps(t *testing.T) {
	d := newTestDetector()
	for i := 0; i < 2*DefaultWarmup; i++ {
		d.ObserveSample("m1", monitordb.MetricMemUtil, day(i), 50+float64(i%3))
	}
	// Two-year gap, then the same regime: still silent.
	for i := 0; i < 2*DefaultWarmup; i++ {
		d.ObserveSample("m1", monitordb.MetricMemUtil, day(800+i), 50+float64(i%3))
	}
	if s := d.Snapshot(); s.Raised != 0 {
		t.Errorf("raised=%d across a sample gap in a stationary series, want 0", s.Raised)
	}
}

// TestDeterministicExpiryOrder: alerts expiring in the same Advance land
// in the cleared ring in (raise time, machine) order regardless of map
// iteration.
func TestDeterministicExpiryOrder(t *testing.T) {
	d := New(Config{})
	ids := []model.MachineID{"z", "a", "m", "b", "q"}
	for _, id := range ids {
		d.ObserveMachine(&model.Machine{ID: id, Kind: model.VM})
		for i := 0; i < DefaultMinCrashes; i++ {
			crash(d, id, day(i))
		}
	}
	d.Advance(day(3).Add(DefaultHorizon + time.Hour))
	s := d.Snapshot()
	if s.Expired != int64(len(ids)) {
		t.Fatalf("expired=%d, want %d", s.Expired, len(ids))
	}
	// Same raise time everywhere → clear order is machine ID ascending;
	// Snapshot.Recent is most-recent-first, so the listing reverses it.
	want := []model.MachineID{"z", "q", "m", "b", "a"}
	for i, a := range s.Recent {
		if a.Machine != want[i] {
			t.Fatalf("recent[%d]=%s, want %s (ring %v)", i, a.Machine, want[i], s.Recent)
		}
	}
}

// TestClearedRingBounded: the recently-cleared ring holds the newest
// RingSize alerts.
func TestClearedRingBounded(t *testing.T) {
	d := New(Config{RingSize: 4})
	d.ObserveMachine(&model.Machine{ID: "m1", Kind: model.PM})
	for i := 0; i < 10*DefaultMinCrashes; i++ {
		crash(d, "m1", day(i)) // every crash after the 4th confirms + re-raises
	}
	s := d.Snapshot()
	if len(s.Recent) != 4 {
		t.Fatalf("ring holds %d alerts, want 4", len(s.Recent))
	}
	for i := 1; i < len(s.Recent); i++ {
		if s.Recent[i].ID > s.Recent[i-1].ID {
			t.Fatal("ring not most-recent-first")
		}
	}
}

// TestPublishMetrics: the detect.* families land in the registry with
// delta-correct counters across repeated publishes.
func TestPublishMetrics(t *testing.T) {
	d := newTestDetector()
	reg := obs.NewObserver("test").Metrics()
	d.Instrument(reg)
	for i := 0; i < DefaultMinCrashes; i++ {
		crash(d, "m1", day(i))
	}
	d.Publish(reg)
	d.Publish(reg) // second publish must not double-count the counters
	snap := reg.Snapshot()
	if got := snap["detect.alerts_active"]; got != 1 {
		t.Errorf("detect.alerts_active=%v, want 1", got)
	}
	if got := snap["detect.alerts_raised"]; got != 1 {
		t.Errorf("detect.alerts_raised=%v, want 1", got)
	}
	crash(d, "m1", day(10)) // confirm + re-raise
	d.Publish(reg)
	snap = reg.Snapshot()
	if got := snap["detect.alerts_raised"]; got != 2 {
		t.Errorf("detect.alerts_raised=%v after re-raise, want 2", got)
	}
	if got := snap["detect.alerts_cleared"]; got != 1 {
		t.Errorf("detect.alerts_cleared=%v, want 1", got)
	}
	if got := snap["detect.lead_time_ms.count"]; got != 1 {
		t.Errorf("detect.lead_time_ms.count=%v, want 1", got)
	}
}

// TestScoreBrokenDetector: a detector that never raises fails the
// detect_resolved band, so the -detect-gate exits non-zero instead of
// passing vacuously on 0/0 precision.
func TestScoreBrokenDetector(t *testing.T) {
	d := New(Config{MinCrashes: 1000}) // effectively never raises
	d.ObserveMachine(&model.Machine{ID: "m1", Kind: model.PM})
	for i := 0; i < 20; i++ {
		crash(d, "m1", day(i))
	}
	sb := Score(d.Snapshot())
	if err := sb.Err(); err == nil {
		t.Fatal("scoreboard gate passed a detector that never raised")
	}
	if b := sb.Find("detect_resolved"); b == nil || b.Verdict != "fail" {
		t.Errorf("detect_resolved band %+v, want fail", b)
	}
	if b := sb.Find("detect_precision"); b == nil || b.Verdict != "skip" {
		t.Errorf("detect_precision band %+v, want skip with no resolved alerts", b)
	}
}

// TestScoreHealthy: a snapshot shaped like the canonical studies' passes
// every band.
func TestScoreHealthy(t *testing.T) {
	s := &Snapshot{
		Machines:     1000,
		MachineWeeks: 52000,
		CrashTickets: 500,
		Raised:       8,
		Confirmed:    6,
		Expired:      1,
		ActiveCount:  1,
		LeadDaysP50:  10,
	}
	sb := Score(s)
	if err := sb.Err(); err != nil {
		t.Fatalf("healthy snapshot failed the gate: %v", err)
	}
	if sb.Failed != 0 || sb.Skipped != 0 {
		t.Errorf("failed=%d skipped=%d, want 0/0", sb.Failed, sb.Skipped)
	}
}

// TestConfigDefaults: the zero config takes every calibrated default.
func TestConfigDefaults(t *testing.T) {
	cfg := New(Config{}).Config()
	if cfg.MinCrashes != DefaultMinCrashes || cfg.BurstWindow != DefaultBurstWindow ||
		cfg.Horizon != DefaultHorizon || cfg.CUSUMThreshold != DefaultCUSUMThreshold {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	custom := New(Config{Horizon: 24 * time.Hour}).Config()
	if custom.Horizon != 24*time.Hour || custom.MinCrashes != DefaultMinCrashes {
		t.Errorf("override not preserved: %+v", custom)
	}
}
