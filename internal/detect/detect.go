// Package detect is the online failure-detection layer over the live
// stream: per-machine detectors that observe the same events the engine
// ingests and raise/clear machine-level alerts before the next ticket
// arrives. Three signal sources combine:
//
//   - Recurrence evidence — the paper's §IV.D result that failures recur:
//     a machine whose recent crash history shows a burst (MinCrashes
//     crash tickets within BurstWindow) is alerted, because its next
//     failure is far more likely than the fleet base rate suggests.
//   - Usage anomalies — an EWMA residual + CUSUM change-point detector
//     over every monitoring series (cpu/mem/disk utilization, network),
//     O(1) state per series with a cold-start warmup. The thresholds are
//     calibrated to stay silent on the simulator's stationary usage noise
//     and trip on sustained level shifts.
//   - A feature-based risk score reusing the §IV join's capacity, usage,
//     age and consolidation factor directions, attached to every alert.
//
// Every raised alert is scored against ground truth as the stream plays
// out: the next crash ticket on the machine within Horizon confirms the
// alert (recording its lead time), an alert whose horizon elapses without
// one expires as a false alarm, and an alert whose horizon extends past
// the stream watermark at shutdown stays active — censored, excluded from
// precision, mirroring the engine's §IV.D recurrence censoring rule.
//
// The detector is deterministic and RNG-free, and it never feeds back
// into the engine's statistics: snapshots are byte-identical with
// detection on or off (enforced at the repo root by
// TestDetectionByteIdentical).
package detect

import (
	"sync"
	"time"

	"failscope/internal/model"
	"failscope/internal/monitordb"
	"failscope/internal/obs"
	"failscope/internal/sketch"
	"failscope/internal/textmine"
)

// Alert sources.
const (
	SourceRecurrence = "recurrence"
	SourceAnomaly    = "anomaly"
)

// Outcomes of cleared alerts.
const (
	OutcomeConfirmed = "confirmed"
	OutcomeExpired   = "expired"
)

// Calibrated defaults. MinCrashes/BurstWindow/Horizon were fitted against
// dcsim ground truth on the canonical small and paper studies: 4 crashes
// inside 30 days marks the heavy-tail "lemon" machines (per-machine Gamma
// intensity multipliers) whose next failure lands inside the 120-day
// horizon in >70% of uncensored cases on both studies, the detection
// scoreboard's precision pass band.
const (
	DefaultMinCrashes  = 4
	DefaultBurstWindow = 30 * 24 * time.Hour
	DefaultHorizon     = 120 * 24 * time.Hour

	// Anomaly-detector defaults: EWMA level/scale smoothing, cold-start
	// warmup in samples, and the CUSUM drift/threshold in σ-normalized
	// residual units. The canonical studies' usage series are stationary
	// noise, and at k=1/h=16 the CUSUM stays silent across all ~3M
	// canonical samples (the detect_anomaly_alerts band enforces this)
	// while a sustained clamped-scale level shift still trips within two
	// or three samples.
	DefaultEWMAAlpha      = 0.25
	DefaultWarmup         = 12
	DefaultCUSUMDrift     = 1.0
	DefaultCUSUMThreshold = 16
	DefaultResidualClamp  = 8
	DefaultRingSize       = 64
)

// Config parameterizes a Detector. The zero value takes every default.
type Config struct {
	// MinCrashes and BurstWindow define the recurrence alert rule: raise
	// when a machine's MinCrashes most recent crash tickets all fall
	// within BurstWindow of each other.
	MinCrashes  int
	BurstWindow time.Duration

	// Horizon bounds an alert's life: the next crash inside it confirms,
	// its elapse without one expires the alert as a false alarm.
	Horizon time.Duration

	// Anomaly-detector knobs (EWMA residual + CUSUM change-point).
	EWMAAlpha      float64
	Warmup         int
	CUSUMDrift     float64
	CUSUMThreshold float64
	ResidualClamp  float64

	// RingSize caps the recently-cleared alert ring.
	RingSize int

	// Classifier, when set, attributes a failure class to every raised
	// alert from the triggering ticket's text (the frozen online model);
	// otherwise the ticket's own label is used.
	Classifier *textmine.OnlineClassifier
}

func (c Config) withDefaults() Config {
	if c.MinCrashes <= 0 {
		c.MinCrashes = DefaultMinCrashes
	}
	if c.BurstWindow <= 0 {
		c.BurstWindow = DefaultBurstWindow
	}
	if c.Horizon <= 0 {
		c.Horizon = DefaultHorizon
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = DefaultEWMAAlpha
	}
	if c.Warmup <= 0 {
		c.Warmup = DefaultWarmup
	}
	if c.CUSUMDrift <= 0 {
		c.CUSUMDrift = DefaultCUSUMDrift
	}
	if c.CUSUMThreshold <= 0 {
		c.CUSUMThreshold = DefaultCUSUMThreshold
	}
	if c.ResidualClamp <= 0 {
		c.ResidualClamp = DefaultResidualClamp
	}
	if c.RingSize <= 0 {
		c.RingSize = DefaultRingSize
	}
	return c
}

// Alert is one raised detection. Cleared alerts additionally carry the
// outcome, clear time and (when confirmed) the lead time to the crash
// that confirmed them.
type Alert struct {
	ID      int64             `json:"id"`
	Machine model.MachineID   `json:"machine"`
	Kind    model.MachineKind `json:"kind"`
	System  model.System      `json:"system"`
	// Source is "recurrence" (crash-burst rule) or "anomaly" (CUSUM trip).
	Source string `json:"source"`
	// Metric names the series that tripped an anomaly alert.
	Metric   string    `json:"metric,omitempty"`
	RaisedAt time.Time `json:"raisedAt"`
	// Deadline is RaisedAt + Horizon: unconfirmed alerts expire here.
	Deadline time.Time `json:"deadline"`
	// Crashes is the machine's crash-ticket count when the alert rose.
	Crashes int `json:"crashes"`
	// Risk is the §IV feature-based risk score in [0, 1].
	Risk float64 `json:"risk"`
	// Cause is the attributed failure class (classifier prediction when a
	// classifier is configured, the ticket label otherwise); zero for
	// anomaly alerts with no triggering ticket.
	Cause model.FailureClass `json:"cause,omitempty"`

	Outcome   string    `json:"outcome,omitempty"`
	ClearedAt time.Time `json:"clearedAt,omitempty"`
	LeadDays  float64   `json:"leadDays,omitempty"`
}

// seriesState is the O(1) anomaly-detector state for one monitoring
// series: an EWMA level, an EWMA absolute-residual scale and a two-sided
// CUSUM. It needs no history, so the columnar store's window eviction and
// sample gaps cannot invalidate it.
type seriesState struct {
	n         int
	mean, dev float64
	pos, neg  float64
}

// machineState is one machine's detector state.
type machineState struct {
	id      model.MachineID
	kind    model.MachineKind
	system  model.System
	cap     model.Capacity
	created time.Time
	host    model.MachineID

	// recent holds the machine's most recent MinCrashes crash times.
	recent  []time.Time
	crashes int

	series [4]seriesState // indexed by monitordb.Metric - 1

	active *Alert
}

// Detector is the online detection layer. The engine calls the Observe*
// hooks under its own lock; the HTTP surface calls Snapshot concurrently
// — the detector serializes internally.
type Detector struct {
	mu  sync.Mutex
	cfg Config
	reg *obs.Registry

	machines map[model.MachineID]*machineState
	hostVMs  map[model.MachineID]int
	// refHosts tracks the host assignments of replica VMs — machines a
	// shard router owns elsewhere — so hostVMs counts consolidation over
	// the whole fleet while the machine inventory (and every per-machine
	// statistic) stays shard-disjoint.
	refHosts map[model.MachineID]model.MachineID

	firstEvent time.Time
	watermark  time.Time

	nextID       int64
	activeCount  int
	crashTickets int64

	raisedBySource map[string]int64
	confirmed      int64
	expired        int64

	leadDays  sketch.Moments
	leadQ     *sketch.Quantile
	pubRaised int64 // counter value already pushed to the registry
	pubClear  int64

	recent  []Alert // cleared ring, oldest first
	scratch textmine.PredictScratch
}

// New creates a detector; zero-value config fields take the calibrated
// defaults.
func New(cfg Config) *Detector {
	return &Detector{
		cfg:            cfg.withDefaults(),
		machines:       make(map[model.MachineID]*machineState),
		hostVMs:        make(map[model.MachineID]int),
		raisedBySource: make(map[string]int64),
		leadQ:          sketch.NewQuantile(sketch.DefaultK),
	}
}

// Config returns the detector's effective (defaulted) configuration.
func (d *Detector) Config() Config { return d.cfg }

// leadBucketsMS are the detect.lead_time_ms histogram bounds: one hour
// through the default horizon.
var leadBucketsMS = []float64{
	3.6e6,     // 1h
	2.16e7,    // 6h
	8.64e7,    // 1d
	1.728e8,   // 2d
	3.456e8,   // 4d
	6.048e8,   // 7d
	1.2096e9,  // 14d
	2.592e9,   // 30d
	5.184e9,   // 60d
	1.0368e10, // 120d
}

// Instrument attaches a metrics registry; confirmation lead times feed
// its detect.lead_time_ms histogram as they happen.
func (d *Detector) Instrument(r *obs.Registry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reg = r
}

func (d *Detector) stateLocked(id model.MachineID) *machineState {
	st := d.machines[id]
	if st == nil {
		st = &machineState{id: id}
		d.machines[id] = st
	}
	return st
}

func (d *Detector) noteTimeLocked(t time.Time) {
	if t.IsZero() {
		return
	}
	if d.firstEvent.IsZero() || t.Before(d.firstEvent) {
		d.firstEvent = t
	}
	if t.After(d.watermark) {
		d.watermark = t
	}
}

// ObserveMachine records a machine's inventory facts (kind, capacity,
// creation date) for the risk scorer and alert payloads.
func (d *Detector) ObserveMachine(m *model.Machine) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dropRefHostLocked(m.ID)
	st := d.stateLocked(m.ID)
	st.kind = m.Kind
	st.system = m.System
	st.cap = m.Capacity
	st.created = m.Created
	if m.HostID != "" {
		st.host = m.HostID
		d.hostVMs[m.HostID]++
	}
}

// ObserveMachineRef records a replica machine's host assignment: the
// machine lives on another shard, but its contribution to the host's
// consolidation count must still be visible to this shard's risk scorer.
// No machine state is created — replicas stay out of the inventory, the
// machine-weeks denominator and every per-machine rule.
func (d *Detector) ObserveMachineRef(m *model.Machine) {
	if m.HostID == "" {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if prev, ok := d.refHosts[m.ID]; ok {
		if prev == m.HostID {
			return
		}
		d.hostVMs[prev]--
	}
	if d.refHosts == nil {
		d.refHosts = make(map[model.MachineID]model.MachineID)
	}
	d.refHosts[m.ID] = m.HostID
	d.hostVMs[m.HostID]++
}

// ObservePlacementRef is ObservePlacement for a replica VM: it applies the
// same host transition to hostVMs through the refHosts ledger instead of
// the machine's own state.
func (d *Detector) ObservePlacementRef(vm, host model.MachineID, at time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.noteTimeLocked(at)
	if prev, ok := d.refHosts[vm]; ok {
		if prev == host {
			return
		}
		if prev != "" {
			d.hostVMs[prev]--
		}
	}
	if d.refHosts == nil {
		d.refHosts = make(map[model.MachineID]model.MachineID)
	}
	d.refHosts[vm] = host
	if host != "" {
		d.hostVMs[host]++
	}
}

// dropRefHostLocked clears any replica-side host accounting for a machine
// the detector is about to observe as a primary — the promotion case a
// direct (router-less) user can produce.
func (d *Detector) dropRefHostLocked(id model.MachineID) {
	if prev, ok := d.refHosts[id]; ok {
		if prev != "" {
			d.hostVMs[prev]--
		}
		delete(d.refHosts, id)
	}
}

// ObservePlacement tracks a VM's current host so the risk scorer can read
// the live consolidation level.
func (d *Detector) ObservePlacement(vm, host model.MachineID, at time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.noteTimeLocked(at)
	d.dropRefHostLocked(vm)
	st := d.stateLocked(vm)
	if st.host == host {
		return
	}
	if st.host != "" {
		d.hostVMs[st.host]--
	}
	st.host = host
	if host != "" {
		d.hostVMs[host]++
	}
}

// ObserveTicket folds one in-window crash ticket: it resolves the
// machine's active alert (confirm inside the horizon, expire past it) and
// then applies the recurrence raise rule to the machine's updated crash
// history. isCrash/class are the engine's effective labels (classifier
// predictions in live mode, ticket truth otherwise); non-crash tickets
// must not be passed.
func (d *Detector) ObserveTicket(t *model.Ticket, class model.FailureClass) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.noteTimeLocked(t.Opened)
	d.crashTickets++
	st := d.stateLocked(t.ServerID)

	if a := st.active; a != nil {
		if t.Opened.After(a.Deadline) {
			d.clearLocked(st, OutcomeExpired, a.Deadline)
		} else {
			d.clearLocked(st, OutcomeConfirmed, t.Opened)
		}
	}

	st.crashes++
	st.recent = append(st.recent, t.Opened)
	if len(st.recent) > d.cfg.MinCrashes {
		copy(st.recent, st.recent[1:])
		st.recent = st.recent[:d.cfg.MinCrashes]
	}
	if st.active == nil && len(st.recent) >= d.cfg.MinCrashes &&
		!t.Opened.Before(st.recent[0]) && t.Opened.Sub(st.recent[0]) <= d.cfg.BurstWindow {
		cause := class
		if d.cfg.Classifier != nil {
			if pred := d.cfg.Classifier.PredictWith(&d.scratch, t.Description+" "+t.Resolution); pred > 0 {
				cause = model.FailureClass(pred)
			}
		}
		d.raiseLocked(st, t.Opened, SourceRecurrence, "", cause)
	}
}

// ObserveSample folds one monitoring sample into the machine's per-series
// EWMA/CUSUM state, raising an anomaly alert on a CUSUM trip.
func (d *Detector) ObserveSample(id model.MachineID, metric monitordb.Metric, at time.Time, v float64) {
	mi := int(metric) - 1
	if mi < 0 || mi >= 4 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.noteTimeLocked(at)
	st := d.stateLocked(id)
	s := &st.series[mi]

	if s.n == 0 {
		s.mean = v
		s.n = 1
		return
	}
	resid := v - s.mean
	if s.n >= d.cfg.Warmup {
		// The EWMA tracks mean absolute deviation; 1.2533 = √(π/2)
		// rescales it to σ units for a Gaussian so the CUSUM drift and
		// threshold read in standard deviations.
		scale := s.dev * 1.2533
		if scale < 1e-9 {
			scale = 1e-9
		}
		r := resid / scale
		if r > d.cfg.ResidualClamp {
			r = d.cfg.ResidualClamp
		} else if r < -d.cfg.ResidualClamp {
			r = -d.cfg.ResidualClamp
		}
		s.pos += r - d.cfg.CUSUMDrift
		if s.pos < 0 {
			s.pos = 0
		}
		s.neg += -r - d.cfg.CUSUMDrift
		if s.neg < 0 {
			s.neg = 0
		}
		if s.pos > d.cfg.CUSUMThreshold || s.neg > d.cfg.CUSUMThreshold {
			s.pos, s.neg = 0, 0
			if st.active == nil {
				d.raiseLocked(st, at, SourceAnomaly, metric.String(), 0)
			}
		}
		// Winsorize the smoothing update at the clamp: a shift far beyond
		// the current scale must not be swallowed into the level/scale
		// estimates faster than the CUSUM can accumulate it. On in-band
		// residuals the cap never binds.
		if lim := d.cfg.ResidualClamp * scale; resid > lim {
			resid = lim
		} else if resid < -lim {
			resid = -lim
		}
	}
	// Update level and scale after the residual so a genuine shift must
	// out-run the smoothing to trip.
	abs := resid
	if abs < 0 {
		abs = -abs
	}
	s.mean += d.cfg.EWMAAlpha * resid
	s.dev += d.cfg.EWMAAlpha * (abs - s.dev)
	s.n++
}

// Advance moves the detector's watermark, expiring active alerts whose
// horizon has fully elapsed. Expiry order is deterministic (by raise
// time, then machine ID) regardless of map iteration.
func (d *Detector) Advance(watermark time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.noteTimeLocked(watermark)
	if d.activeCount == 0 {
		return
	}
	var due []*machineState
	for _, st := range d.machines {
		if st.active != nil && st.active.Deadline.Before(d.watermark) {
			due = append(due, st)
		}
	}
	sortStates(due)
	for _, st := range due {
		d.clearLocked(st, OutcomeExpired, st.active.Deadline)
	}
}

// sortStates orders machine states by their active alert's raise time,
// breaking ties on machine ID.
func sortStates(sts []*machineState) {
	for i := 1; i < len(sts); i++ {
		for j := i; j > 0 && alertBefore(sts[j].active, sts[j-1].active); j-- {
			sts[j], sts[j-1] = sts[j-1], sts[j]
		}
	}
}

func alertBefore(a, b *Alert) bool {
	if !a.RaisedAt.Equal(b.RaisedAt) {
		return a.RaisedAt.Before(b.RaisedAt)
	}
	return a.Machine < b.Machine
}

func (d *Detector) raiseLocked(st *machineState, at time.Time, source, metric string, cause model.FailureClass) {
	d.nextID++
	a := &Alert{
		ID:       d.nextID,
		Machine:  st.id,
		Kind:     st.kind,
		System:   st.system,
		Source:   source,
		Metric:   metric,
		RaisedAt: at,
		Deadline: at.Add(d.cfg.Horizon),
		Crashes:  st.crashes,
		Risk:     d.riskLocked(st, at),
		Cause:    cause,
	}
	st.active = a
	d.activeCount++
	d.raisedBySource[source]++
}

func (d *Detector) clearLocked(st *machineState, outcome string, at time.Time) {
	a := st.active
	st.active = nil
	d.activeCount--
	a.Outcome = outcome
	a.ClearedAt = at
	if outcome == OutcomeConfirmed {
		d.confirmed++
		lead := at.Sub(a.RaisedAt)
		a.LeadDays = lead.Hours() / 24
		d.leadDays.Add(a.LeadDays)
		d.leadQ.Add(a.LeadDays)
		if d.reg != nil {
			d.reg.Histogram("detect.lead_time_ms", leadBucketsMS...).
				Observe(float64(lead) / float64(time.Millisecond))
		}
	} else {
		d.expired++
	}
	d.recent = append(d.recent, *a)
	if over := len(d.recent) - d.cfg.RingSize; over > 0 {
		copy(d.recent, d.recent[over:])
		d.recent = d.recent[:d.cfg.RingSize]
	}
}

// Publish pushes the detector's gauge and counter families into the
// registry; the engine calls it from its per-batch metrics flush.
func (d *Detector) Publish(r *obs.Registry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	r.Set("detect.alerts_active", float64(d.activeCount))
	r.Set("detect.machines", float64(len(d.machines)))
	raised := d.raisedBySource[SourceRecurrence] + d.raisedBySource[SourceAnomaly]
	if delta := raised - d.pubRaised; delta > 0 {
		r.Add("detect.alerts_raised", delta)
		d.pubRaised = raised
	}
	cleared := d.confirmed + d.expired
	if delta := cleared - d.pubClear; delta > 0 {
		r.Add("detect.alerts_cleared", delta)
		d.pubClear = cleared
	}
	r.Set("detect.alerts_confirmed", float64(d.confirmed))
	r.Set("detect.alerts_expired", float64(d.expired))
	r.Set("detect.alerts_raised_anomaly", float64(d.raisedBySource[SourceAnomaly]))
}

// Snapshot is the queryable detection state: the active alerts, the
// recently-cleared ring (most recent first) and the confirmation
// accounting the scoreboard grades.
type Snapshot struct {
	Watermark    time.Time `json:"watermark"`
	HorizonDays  float64   `json:"horizonDays"`
	Machines     int       `json:"machines"`
	MachineWeeks float64   `json:"machineWeeks"`
	CrashTickets int64     `json:"crashTickets"`

	Raised        int64 `json:"raised"`
	RaisedAnomaly int64 `json:"raisedAnomaly"`
	Confirmed     int64 `json:"confirmed"`
	Expired       int64 `json:"expired"`
	ActiveCount   int   `json:"activeCount"`

	LeadDaysMean float64 `json:"leadDaysMean"`
	LeadDaysP50  float64 `json:"leadDaysP50"`
	LeadDaysP95  float64 `json:"leadDaysP95"`

	Active []Alert `json:"active"`
	Recent []Alert `json:"recent"`
}

// Snapshot assembles the current detection state. Safe to call
// concurrently with the engine's Observe* hooks.
func (d *Detector) Snapshot() *Snapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := &Snapshot{
		Watermark:     d.watermark,
		HorizonDays:   d.cfg.Horizon.Hours() / 24,
		Machines:      len(d.machines),
		CrashTickets:  d.crashTickets,
		Raised:        d.raisedBySource[SourceRecurrence] + d.raisedBySource[SourceAnomaly],
		RaisedAnomaly: d.raisedBySource[SourceAnomaly],
		Confirmed:     d.confirmed,
		Expired:       d.expired,
		ActiveCount:   d.activeCount,
	}
	if !d.firstEvent.IsZero() && d.watermark.After(d.firstEvent) {
		s.MachineWeeks = float64(len(d.machines)) * d.watermark.Sub(d.firstEvent).Hours() / (24 * 7)
	}
	if d.leadDays.N() > 0 {
		s.LeadDaysMean = d.leadDays.Mean()
		s.LeadDaysP50 = d.leadQ.Query(0.5)
		s.LeadDaysP95 = d.leadQ.Query(0.95)
	}
	var active []*machineState
	for _, st := range d.machines {
		if st.active != nil {
			active = append(active, st)
		}
	}
	sortStates(active)
	s.Active = make([]Alert, 0, len(active))
	for _, st := range active {
		s.Active = append(s.Active, *st.active)
	}
	s.Recent = make([]Alert, 0, len(d.recent))
	for i := len(d.recent) - 1; i >= 0; i-- {
		s.Recent = append(s.Recent, d.recent[i])
	}
	return s
}
