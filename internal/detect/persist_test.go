package detect

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"failscope/internal/model"
	"failscope/internal/monitordb"
	"failscope/internal/obs"
)

// buildPersistDetector drives a detector through every state-bearing code
// path: machines of both kinds, placements (hostVMs), a crash burst that
// raises, a confirmation (leadDays/leadQ), an expiry, monitoring samples
// far enough along to pass warmup, and a still-active alert.
func buildPersistDetector(t *testing.T) *Detector {
	t.Helper()
	d := New(Config{})
	d.ObserveMachine(&model.Machine{ID: "m1", Kind: model.PM, System: 1, Created: t0.AddDate(-2, 0, 0), Capacity: model.Capacity{CPUs: 8, Disks: 4}})
	d.ObserveMachine(&model.Machine{ID: "v1", Kind: model.VM, System: 2, Created: t0.AddDate(-1, 0, 0), HostID: "m1"})
	d.ObserveMachine(&model.Machine{ID: "v2", Kind: model.VM, System: 2, Created: t0})
	d.ObservePlacement("v1", "m1", t0)
	d.ObservePlacement("v2", "m1", t0.AddDate(0, 1, 0))

	// m1: raise + confirm (populates leadDays/leadQ and the cleared ring).
	for i := 0; i < DefaultMinCrashes; i++ {
		crash(d, "m1", day(i*7))
	}
	crash(d, "m1", day(31))

	// v1: raise then expire.
	for i := 0; i < DefaultMinCrashes; i++ {
		crash(d, "v1", day(40+i))
	}
	d.Advance(day(43).Add(DefaultHorizon + time.Hour))

	// v2: EWMA/CUSUM series state past warmup, plus a mid-burst crash
	// count that has not raised yet.
	for i := 0; i < 80; i++ {
		at := day(50).Add(time.Duration(i) * time.Hour)
		d.ObserveSample("v2", monitordb.MetricCPUUtil, at, 50+float64(i%7))
		d.ObserveSample("v2", monitordb.MetricNetKbps, at, 900)
	}
	crash(d, "v2", day(55))
	crash(d, "v2", day(56))
	return d
}

// TestDetectorStateRoundTrip pins exact restoration: identical bytes on
// re-serialization, identical snapshots, and identical behavior under a
// continued event stream.
func TestDetectorStateRoundTrip(t *testing.T) {
	d := buildPersistDetector(t)

	var img bytes.Buffer
	if err := d.WriteState(&img); err != nil {
		t.Fatal(err)
	}
	r := New(Config{})
	if err := r.RestoreState(bytes.NewReader(img.Bytes())); err != nil {
		t.Fatal(err)
	}

	// Serialization is deterministic, so byte equality of a re-written
	// image is full state equality (modulo the publish watermarks, which
	// WriteState does not include).
	var img2 bytes.Buffer
	if err := r.WriteState(&img2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img.Bytes(), img2.Bytes()) {
		t.Fatal("re-serialized state differs from original image")
	}
	if !reflect.DeepEqual(d.Snapshot(), r.Snapshot()) {
		t.Fatalf("snapshots differ after restore:\n%+v\nvs\n%+v", d.Snapshot(), r.Snapshot())
	}

	// Continue both under an identical stream: anomaly samples, a raise,
	// a confirm and an expiry sweep must land identically.
	apply := func(x *Detector) {
		for i := 0; i < 120; i++ {
			at := day(60).Add(time.Duration(i) * time.Hour)
			v := 50 + float64(i%7)
			if i > 60 {
				v += 40 // sustained shift the CUSUM should flag
			}
			x.ObserveSample("v2", monitordb.MetricCPUUtil, at, v)
		}
		crash(x, "v2", day(66))
		for i := 0; i < DefaultMinCrashes; i++ {
			crash(x, "m1", day(70+i*3))
		}
		x.Advance(day(200))
	}
	apply(d)
	apply(r)
	if !reflect.DeepEqual(d.Snapshot(), r.Snapshot()) {
		t.Fatalf("snapshots diverge after post-restore events:\n%+v\nvs\n%+v", d.Snapshot(), r.Snapshot())
	}
}

// TestDetectorRestorePublishConverges: the restored detector starts with
// zeroed publish watermarks, so its first Publish into a fresh registry
// reproduces the cumulative raised/cleared counters of the original.
func TestDetectorRestorePublishConverges(t *testing.T) {
	d := buildPersistDetector(t)
	orig := obs.NewRegistry()
	d.Publish(orig)

	var img bytes.Buffer
	if err := d.WriteState(&img); err != nil {
		t.Fatal(err)
	}
	r := New(Config{})
	if err := r.RestoreState(bytes.NewReader(img.Bytes())); err != nil {
		t.Fatal(err)
	}
	fresh := obs.NewRegistry()
	r.Publish(fresh)

	a, b := orig.Snapshot(), fresh.Snapshot()
	for _, name := range []string{
		"detect.alerts_active", "detect.machines",
		"detect.alerts_raised", "detect.alerts_cleared",
		"detect.alerts_confirmed", "detect.alerts_expired",
		"detect.alerts_raised_anomaly",
	} {
		if a[name] != b[name] {
			t.Errorf("%s: original registry %v, post-restore registry %v", name, a[name], b[name])
		}
	}
}

// TestDetectorRestoreRefusesConfigMismatch: an image written under one
// raise rule must not load into a detector configured with another.
func TestDetectorRestoreRefusesConfigMismatch(t *testing.T) {
	d := buildPersistDetector(t)
	var img bytes.Buffer
	if err := d.WriteState(&img); err != nil {
		t.Fatal(err)
	}
	r := New(Config{Horizon: DefaultHorizon * 2})
	if err := r.RestoreState(bytes.NewReader(img.Bytes())); err == nil {
		t.Fatal("restore accepted an image written under a different horizon")
	}
}
