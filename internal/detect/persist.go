package detect

// Checkpoint persistence for the online detector. The detector's alert
// decisions depend on exact per-machine state — crash-burst windows, EWMA
// levels, CUSUM accumulators, active alert deadlines — so recovery must
// restore every field bit-for-bit: a recovered detector continuing the
// stream has to raise, confirm and expire the same alerts at the same
// instants as one that never crashed (the crash-recovery equivalence
// tests replay both and DeepEqual the snapshots).
//
// The image is gob-encoded through exported mirror structs. The publish
// watermarks (pubRaised/pubClear) are deliberately reset to zero on
// restore: the restarted process has a fresh metrics registry, and a zero
// watermark makes the next Publish re-add the full historical counts so
// the detect_* counters converge to an uninterrupted run's values.

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"time"

	"failscope/internal/model"
	"failscope/internal/sketch"
)

// detectorStateVersion stamps the gob image; bump on layout changes.
const detectorStateVersion = 1

// seriesImage mirrors seriesState.
type seriesImage struct {
	N         int
	Mean, Dev float64
	Pos, Neg  float64
}

// machineImage mirrors machineState.
type machineImage struct {
	ID      model.MachineID
	Kind    model.MachineKind
	System  model.System
	Cap     model.Capacity
	Created time.Time
	Host    model.MachineID
	Recent  []time.Time
	Crashes int
	Series  [4]seriesImage
	Active  *Alert
}

// detectorImage is the full serialized detector.
type detectorImage struct {
	Version int

	// Raise-rule parameters the image was produced under; restoring into
	// a detector configured differently would silently change every
	// pending deadline, so it is refused instead.
	MinCrashes  int
	BurstWindow time.Duration
	Horizon     time.Duration

	Machines []machineImage // sorted by ID
	HostVMs  map[model.MachineID]int

	FirstEvent time.Time
	Watermark  time.Time

	NextID       int64
	ActiveCount  int
	CrashTickets int64

	RaisedBySource map[string]int64
	Confirmed      int64
	Expired        int64

	LeadDays sketch.MomentsState
	LeadQ    sketch.QuantileState

	Recent []Alert
}

// WriteState serializes the detector. Machine order is sorted, so the
// same detector always produces the same bytes.
func (d *Detector) WriteState(w io.Writer) error {
	d.mu.Lock()
	defer d.mu.Unlock()

	img := detectorImage{
		Version:        detectorStateVersion,
		MinCrashes:     d.cfg.MinCrashes,
		BurstWindow:    d.cfg.BurstWindow,
		Horizon:        d.cfg.Horizon,
		HostVMs:        d.hostVMs,
		FirstEvent:     d.firstEvent,
		Watermark:      d.watermark,
		NextID:         d.nextID,
		ActiveCount:    d.activeCount,
		CrashTickets:   d.crashTickets,
		RaisedBySource: d.raisedBySource,
		Confirmed:      d.confirmed,
		Expired:        d.expired,
		LeadDays:       d.leadDays.State(),
		LeadQ:          d.leadQ.State(),
		Recent:         d.recent,
	}
	ids := make([]model.MachineID, 0, len(d.machines))
	for id := range d.machines {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	img.Machines = make([]machineImage, 0, len(ids))
	for _, id := range ids {
		st := d.machines[id]
		mi := machineImage{
			ID:      st.id,
			Kind:    st.kind,
			System:  st.system,
			Cap:     st.cap,
			Created: st.created,
			Host:    st.host,
			Recent:  st.recent,
			Crashes: st.crashes,
			Active:  st.active,
		}
		for i, s := range st.series {
			mi.Series[i] = seriesImage{N: s.n, Mean: s.mean, Dev: s.dev, Pos: s.pos, Neg: s.neg}
		}
		img.Machines = append(img.Machines, mi)
	}
	if err := gob.NewEncoder(w).Encode(&img); err != nil {
		return fmt.Errorf("detect: write state: %w", err)
	}
	return nil
}

// RestoreState overwrites the detector's tracking state with a previously
// written image. The receiver keeps its configuration and registry; the
// image's raise-rule parameters must match the configuration or the
// restore is refused.
func (d *Detector) RestoreState(r io.Reader) error {
	var img detectorImage
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return fmt.Errorf("detect: read state: %w", err)
	}
	if img.Version != detectorStateVersion {
		return fmt.Errorf("detect: state version %d, want %d", img.Version, detectorStateVersion)
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if img.MinCrashes != d.cfg.MinCrashes || img.BurstWindow != d.cfg.BurstWindow || img.Horizon != d.cfg.Horizon {
		return fmt.Errorf("detect: state written under minCrashes=%d burst=%s horizon=%s, detector configured with %d/%s/%s",
			img.MinCrashes, img.BurstWindow, img.Horizon,
			d.cfg.MinCrashes, d.cfg.BurstWindow, d.cfg.Horizon)
	}

	d.machines = make(map[model.MachineID]*machineState, len(img.Machines))
	for _, mi := range img.Machines {
		st := &machineState{
			id:      mi.ID,
			kind:    mi.Kind,
			system:  mi.System,
			cap:     mi.Cap,
			created: mi.Created,
			host:    mi.Host,
			recent:  mi.Recent,
			crashes: mi.Crashes,
			active:  mi.Active,
		}
		for i, s := range mi.Series {
			st.series[i] = seriesState{n: s.N, mean: s.Mean, dev: s.Dev, pos: s.Pos, neg: s.Neg}
		}
		d.machines[mi.ID] = st
	}
	d.hostVMs = img.HostVMs
	if d.hostVMs == nil {
		d.hostVMs = make(map[model.MachineID]int)
	}
	d.firstEvent = img.FirstEvent
	d.watermark = img.Watermark
	d.nextID = img.NextID
	d.activeCount = img.ActiveCount
	d.crashTickets = img.CrashTickets
	d.raisedBySource = img.RaisedBySource
	if d.raisedBySource == nil {
		d.raisedBySource = make(map[string]int64)
	}
	d.confirmed = img.Confirmed
	d.expired = img.Expired
	d.leadDays.Restore(img.LeadDays)
	if q := sketch.RestoreQuantile(img.LeadQ); q != nil {
		d.leadQ = q
	} else {
		d.leadQ = sketch.NewQuantile(sketch.DefaultK)
	}
	d.pubRaised, d.pubClear = 0, 0
	d.recent = img.Recent
	return nil
}
