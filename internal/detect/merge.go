package detect

import (
	"sort"

	"failscope/internal/sketch"
)

// Totals is a cheap counter snapshot for cross-shard aggregation — the
// values a sharded coordinator sums to publish fleet-wide detect.* gauges
// without assembling full Snapshots.
type Totals struct {
	Raised        int64
	RaisedAnomaly int64
	Confirmed     int64
	Expired       int64
	CrashTickets  int64
	Active        int
	Machines      int
}

// Totals returns the detector's headline counters.
func (d *Detector) Totals() Totals {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Totals{
		Raised:        d.raisedBySource[SourceRecurrence] + d.raisedBySource[SourceAnomaly],
		RaisedAnomaly: d.raisedBySource[SourceAnomaly],
		Confirmed:     d.confirmed,
		Expired:       d.expired,
		CrashTickets:  d.crashTickets,
		Active:        d.activeCount,
		Machines:      len(d.machines),
	}
}

// Merge assembles one Snapshot from N shard detectors as if a single
// detector had observed the whole stream. Counters sum exactly (the
// router's hash ownership keeps machines disjoint, so no alert is ever
// double-observed); machine-weeks come from the fleet-wide machine count,
// earliest first event and latest watermark through the same expression
// Snapshot uses; the lead-time summary rides on the mergeable sketches and
// is tolerance-equal, not byte-equal, to sequential accumulation. Two
// fields are deliberately weaker than a single detector's: alert IDs are
// per-shard sequences (unique within a shard only), and the recent ring is
// ordered by clear time with (RaisedAt, Machine) tie-breaks rather than by
// one engine's clear-processing order.
func Merge(ds []*Detector) *Snapshot {
	if len(ds) == 0 {
		return nil
	}
	if len(ds) == 1 {
		return ds[0].Snapshot()
	}
	for _, d := range ds {
		d.mu.Lock()
	}
	defer func() {
		for _, d := range ds {
			d.mu.Unlock()
		}
	}()

	s := &Snapshot{HorizonDays: ds[0].cfg.Horizon.Hours() / 24}
	var lead sketch.Moments
	leadQ := sketch.NewQuantile(sketch.DefaultK)
	var firstEvent = ds[0].firstEvent
	var active []*machineState
	var recent []Alert
	for _, d := range ds {
		s.Machines += len(d.machines)
		s.CrashTickets += d.crashTickets
		s.Raised += d.raisedBySource[SourceRecurrence] + d.raisedBySource[SourceAnomaly]
		s.RaisedAnomaly += d.raisedBySource[SourceAnomaly]
		s.Confirmed += d.confirmed
		s.Expired += d.expired
		s.ActiveCount += d.activeCount
		if d.watermark.After(s.Watermark) {
			s.Watermark = d.watermark
		}
		if firstEvent.IsZero() || (!d.firstEvent.IsZero() && d.firstEvent.Before(firstEvent)) {
			firstEvent = d.firstEvent
		}
		lead.Merge(d.leadDays)
		leadQ.Merge(d.leadQ)
		for _, st := range d.machines {
			if st.active != nil {
				active = append(active, st)
			}
		}
		recent = append(recent, d.recent...)
	}
	if !firstEvent.IsZero() && s.Watermark.After(firstEvent) {
		s.MachineWeeks = float64(s.Machines) * s.Watermark.Sub(firstEvent).Hours() / (24 * 7)
	}
	if lead.N() > 0 {
		s.LeadDaysMean = lead.Mean()
		s.LeadDaysP50 = leadQ.Query(0.5)
		s.LeadDaysP95 = leadQ.Query(0.95)
	}
	sortStates(active)
	s.Active = make([]Alert, 0, len(active))
	for _, st := range active {
		s.Active = append(s.Active, *st.active)
	}
	// Newest first by clear time, with the raise ordering as tie-break;
	// capped at one ring's worth so the merged surface matches the
	// single-detector shape.
	sort.SliceStable(recent, func(i, j int) bool {
		if !recent[i].ClearedAt.Equal(recent[j].ClearedAt) {
			return recent[i].ClearedAt.After(recent[j].ClearedAt)
		}
		return alertBefore(&recent[j], &recent[i])
	})
	if cap := ds[0].cfg.RingSize; len(recent) > cap {
		recent = recent[:cap]
	}
	s.Recent = recent
	return s
}
