package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != 1 {
		t.Fatalf("Workers(-3) = %d, want 1", got)
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d, want 7", got)
	}
}

// TestForEachVisitsEachIndexOnce checks the exactly-once contract at several
// worker counts and sizes that straddle grain boundaries.
func TestForEachVisitsEachIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, grain - 1, grain, grain + 1, 5*grain + 3, 1000} {
			visits := make([]int32, n)
			ForEach(workers, n, func(i int) {
				atomic.AddInt32(&visits[i], 1)
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, v)
				}
			}
		}
	}
}

// TestForEachBlockBoundariesFixed asserts the block decomposition is a
// function of n only: the same (b, lo, hi) triples at every worker count.
func TestForEachBlockBoundariesFixed(t *testing.T) {
	const n = 3*BlockSize + 17
	collect := func(workers int) [][3]int {
		out := make([][3]int, Blocks(n))
		ForEachBlock(workers, n, func(b, lo, hi int) {
			out[b] = [3]int{b, lo, hi}
		})
		return out
	}
	ref := collect(1)
	for _, workers := range []int{2, 4, 16} {
		got := collect(workers)
		for b := range ref {
			if got[b] != ref[b] {
				t.Fatalf("workers=%d: block %d = %v, want %v", workers, b, got[b], ref[b])
			}
		}
	}
	last := ref[len(ref)-1]
	if last[2] != n {
		t.Fatalf("last block ends at %d, want %d", last[2], n)
	}
}

// TestForEachBlockOrderedSum demonstrates the deterministic float reduction
// pattern: per-block partials merged in block order give bit-identical
// totals at every parallelism level.
func TestForEachBlockOrderedSum(t *testing.T) {
	const n = 10_000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 1.0 / float64(i+3)
	}
	sum := func(workers int) float64 {
		partial := make([]float64, Blocks(n))
		ForEachBlock(workers, n, func(b, lo, hi int) {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += xs[i]
			}
			partial[b] = s
		})
		total := 0.0
		for _, p := range partial {
			total += p
		}
		return total
	}
	ref := sum(1)
	for _, workers := range []int{2, 3, 8} {
		if got := sum(workers); got != ref {
			t.Fatalf("workers=%d: sum %v differs from sequential %v", workers, got, ref)
		}
	}
}

// TestForEachPanicPropagates verifies a worker panic is re-raised on the
// caller after the pool drains, not lost in a goroutine.
func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Fatalf("workers=%d: recovered %v, want \"boom\"", workers, r)
				}
			}()
			ForEach(workers, 100, func(i int) {
				if i == 37 {
					panic("boom")
				}
			})
			t.Fatalf("workers=%d: ForEach returned without panicking", workers)
		}()
	}
}

func TestForEachSequentialInline(t *testing.T) {
	// With one worker the loop must run on the calling goroutine so that
	// callers may use non-thread-safe state in fn.
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential path visited %v, want ascending order", order)
		}
	}
}
