package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != 1 {
		t.Fatalf("Workers(-3) = %d, want 1", got)
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d, want 7", got)
	}
}

// TestForEachVisitsEachIndexOnce checks the exactly-once contract at several
// worker counts and sizes that straddle grain boundaries.
func TestForEachVisitsEachIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, grain - 1, grain, grain + 1, 5*grain + 3, 1000} {
			visits := make([]int32, n)
			ForEach(workers, n, func(i int) {
				atomic.AddInt32(&visits[i], 1)
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, v)
				}
			}
		}
	}
}

// TestForEachBlockBoundariesFixed asserts the block decomposition is a
// function of n only: the same (b, lo, hi) triples at every worker count.
func TestForEachBlockBoundariesFixed(t *testing.T) {
	const n = 3*BlockSize + 17
	collect := func(workers int) [][3]int {
		out := make([][3]int, Blocks(n))
		ForEachBlock(workers, n, func(b, lo, hi int) {
			out[b] = [3]int{b, lo, hi}
		})
		return out
	}
	ref := collect(1)
	for _, workers := range []int{2, 4, 16} {
		got := collect(workers)
		for b := range ref {
			if got[b] != ref[b] {
				t.Fatalf("workers=%d: block %d = %v, want %v", workers, b, got[b], ref[b])
			}
		}
	}
	last := ref[len(ref)-1]
	if last[2] != n {
		t.Fatalf("last block ends at %d, want %d", last[2], n)
	}
}

// TestForEachBlockOrderedSum demonstrates the deterministic float reduction
// pattern: per-block partials merged in block order give bit-identical
// totals at every parallelism level.
func TestForEachBlockOrderedSum(t *testing.T) {
	const n = 10_000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 1.0 / float64(i+3)
	}
	sum := func(workers int) float64 {
		partial := make([]float64, Blocks(n))
		ForEachBlock(workers, n, func(b, lo, hi int) {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += xs[i]
			}
			partial[b] = s
		})
		total := 0.0
		for _, p := range partial {
			total += p
		}
		return total
	}
	ref := sum(1)
	for _, workers := range []int{2, 3, 8} {
		if got := sum(workers); got != ref {
			t.Fatalf("workers=%d: sum %v differs from sequential %v", workers, got, ref)
		}
	}
}

// TestForEachPanicPropagates verifies a worker panic is re-raised on the
// caller after the pool drains, not lost in a goroutine.
func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Fatalf("workers=%d: recovered %v, want \"boom\"", workers, r)
				}
			}()
			ForEach(workers, 100, func(i int) {
				if i == 37 {
					panic("boom")
				}
			})
			t.Fatalf("workers=%d: ForEach returned without panicking", workers)
		}()
	}
}

// TestForEachDegenerate pins the degenerate-input contract: an empty index
// space spawns nothing, a single item runs inline, and a worker request
// larger than n is clamped so no idle goroutines are ever launched.
func TestForEachDegenerate(t *testing.T) {
	cases := []struct {
		name        string
		workers, n  int
		wantWorkers int
	}{
		{"n=0", 8, 0, 0},
		{"n=0 sequential", 1, 0, 0},
		{"n negative", 4, -3, 0},
		{"n=1", 8, 1, 1},
		{"n=1 sequential", 1, 1, 1},
		{"workers>n", 64, 5, 5},
		{"workers=n", 3, 3, 3},
		{"workers<n", 2, 100, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var visited atomic.Int64
			st := ForEach(tc.workers, tc.n, func(i int) {
				if i < 0 || i >= tc.n {
					t.Errorf("index %d outside [0,%d)", i, tc.n)
				}
				visited.Add(1)
			})
			wantItems := tc.n
			if wantItems < 0 {
				wantItems = 0
			}
			if int(visited.Load()) != wantItems {
				t.Fatalf("visited %d indices, want %d", visited.Load(), wantItems)
			}
			if st.Workers != tc.wantWorkers {
				t.Fatalf("Stats.Workers = %d, want %d", st.Workers, tc.wantWorkers)
			}
			if st.Items != wantItems {
				t.Fatalf("Stats.Items = %d, want %d", st.Items, wantItems)
			}
			if wantItems == 0 && (st.Busy != 0 || st.MaxBusy != 0) {
				t.Fatalf("empty pool reported busy time %v/%v", st.Busy, st.MaxBusy)
			}
		})
	}
}

// TestForEachBlockDegenerate mirrors the degenerate cases for the block
// decomposition: no blocks for n<=0, one block for n=1, clamped workers.
func TestForEachBlockDegenerate(t *testing.T) {
	cases := []struct {
		name       string
		workers, n int
		wantBlocks int
	}{
		{"n=0", 8, 0, 0},
		{"n=1", 8, 1, 1},
		{"workers>blocks", 64, BlockSize + 1, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var blocks atomic.Int64
			st := ForEachBlock(tc.workers, tc.n, func(b, lo, hi int) {
				blocks.Add(1)
				if lo >= hi {
					t.Errorf("block %d empty: [%d,%d)", b, lo, hi)
				}
			})
			if int(blocks.Load()) != tc.wantBlocks {
				t.Fatalf("ran %d blocks, want %d", blocks.Load(), tc.wantBlocks)
			}
			if st.Items != tc.n {
				t.Fatalf("Stats.Items = %d, want %d", st.Items, tc.n)
			}
			if st.Workers > tc.wantBlocks {
				t.Fatalf("Stats.Workers = %d exceeds block count %d", st.Workers, tc.wantBlocks)
			}
		})
	}
}

// TestForEachStatsBusy sanity-checks the busy-time accounting: a parallel
// pool's summed busy time covers its workers and MaxBusy never exceeds it.
func TestForEachStatsBusy(t *testing.T) {
	st := ForEach(4, 1000, func(i int) {
		_ = make([]byte, 64) // do a sliver of real work
	})
	if st.Workers < 1 {
		t.Fatalf("Stats.Workers = %d, want >= 1", st.Workers)
	}
	if st.Busy <= 0 {
		t.Fatalf("Stats.Busy = %v, want > 0", st.Busy)
	}
	if st.MaxBusy > st.Busy {
		t.Fatalf("MaxBusy %v exceeds summed Busy %v", st.MaxBusy, st.Busy)
	}
}

func TestForEachSequentialInline(t *testing.T) {
	// With one worker the loop must run on the calling goroutine so that
	// callers may use non-thread-safe state in fn.
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential path visited %v, want ascending order", order)
		}
	}
}
