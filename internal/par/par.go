// Package par provides the deterministic worker-pool primitives used to
// parallelize the study pipeline (simulate → mine → classify → join).
//
// Every helper here preserves a single invariant: the set of work items and
// the decomposition of the index space are functions of the input size only,
// never of the worker count. Callers that combine floating-point partial
// results do so per fixed-size block and merge the blocks in index order, so
// the reduction tree — and therefore every bit of the output — is identical
// at Parallelism 1, 2, or GOMAXPROCS.
//
// Concurrency guarantees: the package is data-race free under the Go memory
// model (verified with go test -race); workers communicate only through an
// atomic work counter and a WaitGroup, and each index is visited exactly
// once by exactly one worker. No sync.Pool is used anywhere — scratch
// buffers are owned by their worker for the duration of a call (callers
// that recycle scratch across calls use internal/mempool, whose free lists
// are deterministic and explicitly bounded, unlike sync.Pool's GC-coupled
// emptying), so there is no cross-call aliasing within a call. A panic
// in a worker is captured and re-raised on the calling goroutine after the
// pool drains.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Workers resolves a Parallelism option to a concrete worker count:
// 0 means GOMAXPROCS, anything below 1 is clamped to 1 (the sequential
// reference path).
func Workers(parallelism int) int {
	if parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if parallelism < 1 {
		return 1
	}
	return parallelism
}

// grain is the number of consecutive indices a worker claims per fetch of
// the shared counter. Contiguous claims keep cache locality for slice-shaped
// work while amortizing the atomic over many items.
const grain = 16

// Stats is the accounting of one pool invocation, consumed by the
// observability layer (obs.Span.AddPool) to attribute cost per stage.
// Timing never feeds back into the work itself, so it cannot perturb
// determinism.
type Stats struct {
	// Workers is the number of goroutines that ran fn: 0 for an empty
	// index space, 1 for the inline sequential path.
	Workers int
	// Items is the number of indices visited.
	Items int
	// Busy is the summed per-worker busy time — the CPU-time estimate of
	// the pool (equal to wall time on the sequential path).
	Busy time.Duration
	// MaxBusy is the busy time of the slowest worker: the pool's
	// wall-clock residency, whose gap to Busy/Workers measures imbalance.
	MaxBusy time.Duration
}

// add accumulates another pool invocation (used by ForEachBlock and by
// spans aggregating repeated sweeps).
func (s *Stats) add(o Stats) {
	if o.Workers > s.Workers {
		s.Workers = o.Workers
	}
	s.Items += o.Items
	s.Busy += o.Busy
	s.MaxBusy += o.MaxBusy
}

// ForEach calls fn(i) exactly once for every i in [0, n), using up to
// Workers(parallelism) goroutines. With an effective worker count of one it
// runs inline on the caller with zero goroutines — this is the sequential
// reference path — and with n <= 0 it returns immediately without spawning
// anything. The worker count is clamped to n, so no idle goroutines are
// ever launched. fn must not assume any visiting order; for order-sensitive
// reductions use ForEachBlock and merge per-block results in block order.
//
// The returned Stats may be ignored (instrumented call sites feed it to an
// obs.Span); collecting it costs two clock reads per worker.
func ForEach(parallelism, n int, fn func(i int)) Stats {
	if n <= 0 {
		return Stats{}
	}
	w := Workers(parallelism)
	if w > n {
		w = n
	}
	if w <= 1 {
		start := time.Now()
		for i := 0; i < n; i++ {
			fn(i)
		}
		busy := time.Since(start)
		return Stats{Workers: 1, Items: n, Busy: busy, MaxBusy: busy}
	}
	var next atomic.Int64
	var panicked atomic.Pointer[panicValue]
	var wg sync.WaitGroup
	busy := make([]time.Duration, w)
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func(k int) {
			defer wg.Done()
			start := time.Now()
			defer func() { busy[k] = time.Since(start) }()
			defer capturePanic(&panicked)
			for {
				lo := int(next.Add(grain)) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}(k)
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p.v)
	}
	st := Stats{Workers: w, Items: n}
	for _, b := range busy {
		st.Busy += b
		if b > st.MaxBusy {
			st.MaxBusy = b
		}
	}
	return st
}

// BlockSize is the fixed block width used by Blocks/ForEachBlock. It is a
// property of the index space, not of the worker count, so block boundaries
// — and any per-block floating-point partial sums merged in block order —
// are identical at every parallelism level.
const BlockSize = 256

// Blocks returns the number of fixed-size blocks covering [0, n).
func Blocks(n int) int {
	return (n + BlockSize - 1) / BlockSize
}

// ForEachBlock calls fn(b, lo, hi) exactly once for every block b covering
// [lo, hi) ⊂ [0, n), with block boundaries determined solely by n. Callers
// accumulate per-block partials indexed by b and fold them sequentially in
// increasing b afterwards, which fixes the floating-point reduction order
// independent of how blocks were scheduled across workers. The returned
// Stats counts the n underlying items, not the blocks.
func ForEachBlock(parallelism, n int, fn func(b, lo, hi int)) Stats {
	st := ForEach(parallelism, Blocks(n), func(b int) {
		lo := b * BlockSize
		hi := lo + BlockSize
		if hi > n {
			hi = n
		}
		fn(b, lo, hi)
	})
	st.Items = n
	return st
}

type panicValue struct{ v any }

func capturePanic(slot *atomic.Pointer[panicValue]) {
	if v := recover(); v != nil {
		slot.CompareAndSwap(nil, &panicValue{v: v})
	}
}
