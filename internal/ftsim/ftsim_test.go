package ftsim

import (
	"math"
	"testing"

	"failscope/internal/dist"
)

// fastConfig is a quick single-replica baseline: exponential up/down with
// known availability mean_up / (mean_up + mean_down).
func fastConfig() Config {
	return Config{
		Replicas:     1,
		Hosts:        4,
		Placement:    Spread,
		VMFail:       dist.Exponential{Rate: 1.0 / 100}, // mean 100 h up
		VMRepair:     dist.Exponential{Rate: 1.0 / 10},  // mean 10 h down
		HorizonHours: 365 * 24,
		Runs:         60,
		Seed:         1,
	}
}

func TestValidate(t *testing.T) {
	good := fastConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no replicas", func(c *Config) { c.Replicas = 0 }},
		{"no hosts", func(c *Config) { c.Hosts = 0 }},
		{"spread too wide", func(c *Config) { c.Replicas = 10; c.Hosts = 3 }},
		{"no vm fail", func(c *Config) { c.VMFail = nil }},
		{"no vm repair", func(c *Config) { c.VMRepair = nil }},
		{"host fail without repair", func(c *Config) { c.HostFail = dist.Exponential{Rate: 1} }},
		{"no horizon", func(c *Config) { c.HorizonHours = 0 }},
		{"no runs", func(c *Config) { c.Runs = 0 }},
	}
	for _, c := range cases {
		cfg := fastConfig()
		c.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestSingleReplicaAvailabilityMatchesTheory(t *testing.T) {
	cfg := fastConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 100.0 / 110.0 // alternating renewal process
	if math.Abs(res.Availability-want) > 0.01 {
		t.Fatalf("availability %.4f, want %.4f", res.Availability, want)
	}
	if res.Outages < 50 { // ≈ horizon / (up + down) ≈ 80 per run
		t.Errorf("outages per run %.1f implausibly low", res.Outages)
	}
	if math.Abs(res.MeanOutageHours-10) > 1.5 {
		t.Errorf("mean outage %.2f h, want ≈10", res.MeanOutageHours)
	}
}

func TestMoreReplicasMoreAvailability(t *testing.T) {
	prev := -1.0
	for _, k := range []int{1, 2, 3} {
		cfg := fastConfig()
		cfg.Replicas = k
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Availability <= prev {
			t.Fatalf("availability not increasing in replicas: %v at k=%d", res.Availability, k)
		}
		prev = res.Availability
	}
}

func TestDeterminism(t *testing.T) {
	cfg := fastConfig()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Availability != b.Availability || a.Outages != b.Outages {
		t.Fatal("same seed produced different results")
	}
}

func TestSpreadBeatsPackUnderHostFailures(t *testing.T) {
	cfg := fastConfig()
	cfg.Replicas = 3
	cfg.VMFail = dist.Exponential{Rate: 1.0 / 2000}
	cfg.HostFail = dist.Exponential{Rate: 1.0 / 500}
	cfg.HostRepair = dist.Exponential{Rate: 1.0 / 12}
	cfg.Runs = 100
	results, err := Compare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spread, pack := results[Spread], results[Pack]
	if spread.Availability <= pack.Availability {
		t.Fatalf("spread availability %.5f not above pack %.5f under host-correlated failures",
			spread.Availability, pack.Availability)
	}
	// Packing makes a single host outage a full service outage, so the
	// gap should be substantial.
	if pack.DowntimeHoursPerRun < 2*spread.DowntimeHoursPerRun {
		t.Errorf("pack downtime %.2f h vs spread %.2f h — correlation penalty too small",
			pack.DowntimeHoursPerRun, spread.DowntimeHoursPerRun)
	}
}

func TestPlacementsEquivalentWithoutHostFailures(t *testing.T) {
	cfg := fastConfig()
	cfg.Replicas = 2
	cfg.Runs = 150
	results, err := Compare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spread, pack := results[Spread], results[Pack]
	// Without host failures, placement must not matter (beyond noise).
	if math.Abs(spread.Availability-pack.Availability) > 0.002 {
		t.Fatalf("placement changed availability without host failures: %.5f vs %.5f",
			spread.Availability, pack.Availability)
	}
}

func TestPlacementString(t *testing.T) {
	if Spread.String() != "spread" || Pack.String() != "pack" {
		t.Error("placement strings wrong")
	}
	if Placement(9).String() == "" {
		t.Error("unknown placement should render")
	}
}

func TestRunRejectsInvalid(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}
