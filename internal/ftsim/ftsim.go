// Package ftsim is a discrete-event fault-tolerance simulator built on the
// study's fitted failure models — the "design of fault-tolerant systems"
// use the paper motivates in §IV.B. A service runs replicas on VMs placed
// across hypervisor hosts; VMs fail individually (fitted inter-failure
// distribution) and hosts fail collectively (taking every resident VM down
// at once — the spatial dependency of §IV.E). The simulator measures the
// availability of the service under different replica-placement policies,
// quantifying how much host-correlated failures punish co-location.
package ftsim

import (
	"container/heap"
	"errors"
	"fmt"

	"failscope/internal/dist"
	"failscope/internal/xrand"
)

// Placement decides how replicas map to hosts.
type Placement int

// Placement policies.
const (
	// Spread places every replica on a distinct host (anti-affinity).
	Spread Placement = iota + 1
	// Pack places all replicas on the same host (affinity — what naive
	// bin-packing consolidation does).
	Pack
)

func (p Placement) String() string {
	switch p {
	case Spread:
		return "spread"
	case Pack:
		return "pack"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// Config parameterizes one simulation.
type Config struct {
	// Replicas is the service's replica count; the service is down when
	// every replica is down simultaneously.
	Replicas int
	// Hosts is the number of hypervisor hosts available for placement.
	Hosts int
	// Placement is the replica-placement policy.
	Placement Placement

	// VMFail and VMRepair are the per-replica failure/repair models in
	// HOURS (convert fitted day-based gap distributions before passing).
	VMFail   dist.Distribution
	VMRepair dist.Distribution
	// HostFail and HostRepair drive whole-host outages in hours; a host
	// failure downs every replica placed on it until the host repairs.
	// Nil HostFail disables host failures (the independence assumption).
	HostFail   dist.Distribution
	HostRepair dist.Distribution

	// HorizonHours is the simulated time per run; Runs is the number of
	// independent replications.
	HorizonHours float64
	Runs         int
	Seed         uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Replicas < 1 {
		return errors.New("ftsim: need at least one replica")
	}
	if c.Hosts < 1 {
		return errors.New("ftsim: need at least one host")
	}
	if c.Placement == Spread && c.Replicas > c.Hosts {
		return fmt.Errorf("ftsim: cannot spread %d replicas over %d hosts", c.Replicas, c.Hosts)
	}
	if c.VMFail == nil || c.VMRepair == nil {
		return errors.New("ftsim: VM failure and repair distributions are required")
	}
	if c.HostFail != nil && c.HostRepair == nil {
		return errors.New("ftsim: host failures configured without a host repair distribution")
	}
	if c.HorizonHours <= 0 || c.Runs < 1 {
		return errors.New("ftsim: horizon and runs must be positive")
	}
	return nil
}

// Result summarizes the simulation.
type Result struct {
	Config Config
	// Availability is the fraction of time the service was up, averaged
	// over runs.
	Availability float64
	// DowntimeHoursPerRun is the mean service downtime per horizon.
	DowntimeHoursPerRun float64
	// Outages is the mean number of distinct service outages per run.
	Outages float64
	// MeanOutageHours is the mean duration of one outage.
	MeanOutageHours float64
}

// event kinds for the simulation queue.
type eventKind int

const (
	vmFail eventKind = iota + 1
	vmRepair
	hostFail
	hostRepair
)

// event is one scheduled state change.
type event struct {
	at   float64
	kind eventKind
	idx  int // replica or host index
	seq  int // tie-breaker for determinism
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Run executes the simulation.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	rng := xrand.New(cfg.Seed)

	// Replica → host assignment.
	hostOf := make([]int, cfg.Replicas)
	for r := range hostOf {
		switch cfg.Placement {
		case Pack:
			hostOf[r] = 0
		default:
			hostOf[r] = r % cfg.Hosts
		}
	}

	res := Result{Config: cfg}
	var totalDown, totalOutage float64
	var outageCount int
	for run := 0; run < cfg.Runs; run++ {
		down, outages, outageHours := simulateOnce(cfg, hostOf, rng.Split(uint64(run)))
		totalDown += down
		outageCount += outages
		totalOutage += outageHours
	}
	runs := float64(cfg.Runs)
	res.DowntimeHoursPerRun = totalDown / runs
	res.Availability = 1 - res.DowntimeHoursPerRun/cfg.HorizonHours
	res.Outages = float64(outageCount) / runs
	if outageCount > 0 {
		res.MeanOutageHours = totalOutage / float64(outageCount)
	}
	return res, nil
}

// simulateOnce runs one horizon and returns service downtime, outage count
// and total outage duration.
func simulateOnce(cfg Config, hostOf []int, rng *xrand.RNG) (downtime float64, outages int, outageHours float64) {
	vmDown := make([]bool, cfg.Replicas) // replica down by its own fault
	hostDown := make([]bool, cfg.Hosts)  // host down
	seq := 0

	var q eventQueue
	push := func(at float64, kind eventKind, idx int) {
		if at <= cfg.HorizonHours {
			seq++
			heap.Push(&q, event{at: at, kind: kind, idx: idx, seq: seq})
		}
	}
	for r := 0; r < cfg.Replicas; r++ {
		push(cfg.VMFail.Sample(rng), vmFail, r)
	}
	if cfg.HostFail != nil {
		for h := 0; h < cfg.Hosts; h++ {
			push(cfg.HostFail.Sample(rng), hostFail, h)
		}
	}

	replicaUp := func(r int) bool { return !vmDown[r] && !hostDown[hostOf[r]] }
	serviceUp := func() bool {
		for r := 0; r < cfg.Replicas; r++ {
			if replicaUp(r) {
				return true
			}
		}
		return false
	}

	up := true
	lastChange := 0.0
	for q.Len() > 0 {
		ev := heap.Pop(&q).(event)
		switch ev.kind {
		case vmFail:
			vmDown[ev.idx] = true
			push(ev.at+cfg.VMRepair.Sample(rng), vmRepair, ev.idx)
		case vmRepair:
			vmDown[ev.idx] = false
			push(ev.at+cfg.VMFail.Sample(rng), vmFail, ev.idx)
		case hostFail:
			hostDown[ev.idx] = true
			push(ev.at+cfg.HostRepair.Sample(rng), hostRepair, ev.idx)
		case hostRepair:
			hostDown[ev.idx] = false
			push(ev.at+cfg.HostFail.Sample(rng), hostFail, ev.idx)
		}
		nowUp := serviceUp()
		if nowUp != up {
			if !nowUp {
				lastChange = ev.at
			} else {
				downtime += ev.at - lastChange
				outages++
				outageHours += ev.at - lastChange
			}
			up = nowUp
		}
	}
	if !up {
		downtime += cfg.HorizonHours - lastChange
		outages++
		outageHours += cfg.HorizonHours - lastChange
	}
	return downtime, outages, outageHours
}

// Compare runs the same workload under both placements and returns the
// results keyed by policy — the headline "does anti-affinity matter under
// correlated failures" experiment.
func Compare(cfg Config) (map[Placement]Result, error) {
	out := make(map[Placement]Result, 2)
	for _, p := range []Placement{Spread, Pack} {
		c := cfg
		c.Placement = p
		r, err := Run(c)
		if err != nil {
			return nil, err
		}
		out[p] = r
	}
	return out, nil
}
