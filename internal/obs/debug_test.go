package obs

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// getBody fetches one debug-server path and returns the body.
func getBody(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestServeDebugVarsJSON verifies that /debug/vars serves valid JSON
// carrying an observer's published metrics snapshot.
func TestServeDebugVarsJSON(t *testing.T) {
	o := NewObserver("debug-vars-test")
	o.Metrics().Add("debugvars.test_counter", 41)
	o.Metrics().Gauge("debugvars.test_gauge").Set(2.5)
	o.Publish("failscope-debugvars-test")

	addr, closeFn, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()

	raw := getBody(t, addr, "/debug/vars")
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(raw), &vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v\n%s", err, raw)
	}
	var snap map[string]float64
	if err := json.Unmarshal(vars["failscope-debugvars-test"], &snap); err != nil {
		t.Fatalf("published registry is not a metric map: %v", err)
	}
	if snap["debugvars.test_counter"] != 41 || snap["debugvars.test_gauge"] != 2.5 {
		t.Errorf("snapshot = %v, want counter 41 and gauge 2.5", snap)
	}
}

// TestServeDebugPprofProfiles exercises the wired pprof handlers beyond
// the index page.
func TestServeDebugPprofProfiles(t *testing.T) {
	addr, closeFn, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()

	if idx := getBody(t, addr, "/debug/pprof/"); !strings.Contains(idx, "heap") {
		t.Errorf("/debug/pprof/ index missing heap profile:\n%s", idx)
	}
	if prof := getBody(t, addr, "/debug/pprof/goroutine?debug=1"); !strings.Contains(prof, "goroutine") {
		t.Errorf("goroutine profile unexpected:\n%s", prof)
	}
	if cmdline := getBody(t, addr, "/debug/pprof/cmdline"); cmdline == "" {
		t.Error("empty /debug/pprof/cmdline")
	}
}

// TestServeDebugShutdown verifies the returned close func actually stops
// the listener (new connections are refused) and is safe to call twice.
func TestServeDebugShutdown(t *testing.T) {
	addr, closeFn, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// The server must be up before we tear it down.
	if body := getBody(t, addr, "/debug/vars"); body == "" {
		t.Fatal("empty /debug/vars before shutdown")
	}

	closeFn()
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 250*time.Millisecond)
		if err != nil {
			break // listener is gone
		}
		conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("debug server still accepting connections after close")
		}
		time.Sleep(10 * time.Millisecond)
	}

	closeFn() // double close must not panic

	// The port is free again: a fresh debug server can bind to it.
	addr2, closeFn2, err := ServeDebug(addr)
	if err != nil {
		t.Fatalf("rebind %s after shutdown: %v", addr, err)
	}
	defer closeFn2()
	if body := getBody(t, addr2, "/debug/vars"); body == "" {
		t.Fatal("empty /debug/vars from rebound server")
	}
}
