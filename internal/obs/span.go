package obs

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"failscope/internal/par"
)

// Span is one node of the stage trace: a named interval of the pipeline
// recording wall time, a CPU-time estimate (summed worker busy time from
// the pools that ran under it), the allocation delta across its lifetime
// and the peak worker count. Spans nest — Child starts a sub-span — and a
// finished tree renders as an indented text breakdown (Tree) or as a JSON
// run report (Report).
//
// Every method is a no-op on a nil receiver, so library code instruments
// unconditionally and un-observed callers pay a single pointer test. Spans
// never touch any random stream: attaching, detaching or re-parenting
// observation cannot change a single byte of pipeline output.
type Span struct {
	name string

	mu       sync.Mutex
	start    time.Time
	end      time.Time
	allocs   uint64 // allocation-count delta (approximate under siblings)
	bytes    uint64 // allocated-bytes delta
	busy     time.Duration
	maxBusy  time.Duration
	workers  int
	items    int64
	procs    int // GOMAXPROCS at span close (0 until End)
	children []*Span
	log      *Logger // optional; End emits a debug record when set

	startMallocs, startBytes uint64
}

// Root starts a top-level span. Observers create one per run; tests and
// standalone tools may start their own.
func Root(name string) *Span {
	s := &Span{name: name, start: time.Now()}
	s.startMallocs, s.startBytes = memCounters()
	return s
}

// memCounters samples the global allocation counters. ReadMemStats is a
// brief stop-the-world, which is why spans mark stage boundaries (dozens
// per run), never per-item work.
func memCounters() (mallocs, bytes uint64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs, ms.TotalAlloc
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Child starts a sub-span. On a nil receiver it returns nil, so a whole
// instrumented subtree collapses to no-ops when observation is off.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	c.startMallocs, c.startBytes = memCounters()
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// setLogger attaches the run logger so End can emit a stage-end record.
func (s *Span) setLogger(l *Logger) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.log = l
	s.mu.Unlock()
}

// End closes the span, freezing its wall time and allocation delta.
// Ending twice keeps the first measurement. With a logger attached the
// close emits one debug record (stage name, wall time, item count).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.end.IsZero() {
		s.mu.Unlock()
		return
	}
	s.end = time.Now()
	// GOMAXPROCS at close time rides along in the report: span wall times
	// are only comparable across runs that had the same parallelism
	// available, and the setting can change mid-process (GOMAXPROCS calls,
	// runtime defaults), so the run-level meta alone is not enough.
	s.procs = runtime.GOMAXPROCS(0)
	mallocs, bytes := memCounters()
	if mallocs >= s.startMallocs {
		s.allocs = mallocs - s.startMallocs
	}
	if bytes >= s.startBytes {
		s.bytes = bytes - s.startBytes
	}
	log, name, wall, items := s.log, s.name, s.end.Sub(s.start), s.items
	s.mu.Unlock()
	log.Debug("stage end", "stage", name, "wall_ms", ms(wall), "items", items)
}

// AddPool folds one worker-pool invocation into the span: busy time
// accumulates (the CPU-time estimate), residency accumulates, items count,
// and the worker count keeps its observed maximum. Stages that sweep
// repeatedly (e.g. one pool per Lloyd iteration) call this once per sweep.
func (s *Span) AddPool(st par.Stats) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.busy += st.Busy
	s.maxBusy += st.MaxBusy
	s.items += int64(st.Items)
	if st.Workers > s.workers {
		s.workers = st.Workers
	}
	s.mu.Unlock()
}

// AddItems counts work items attributed to the span (tickets rendered,
// documents vectorized, iterations run, ...).
func (s *Span) AddItems(n int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.items += int64(n)
	s.mu.Unlock()
}

// SetWorkers records the worker count of a stage that does not route its
// concurrency through par (keeps the observed maximum).
func (s *Span) SetWorkers(n int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if n > s.workers {
		s.workers = n
	}
	s.mu.Unlock()
}

// Wall returns the span's wall-clock duration (through now if unfinished;
// 0 on nil).
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// Busy returns the accumulated worker busy time (0 on nil).
func (s *Span) Busy() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.busy
}

// Children returns the direct sub-spans in start order (nil on nil).
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// NumSpans counts the spans in the subtree, the root included (0 on nil).
func (s *Span) NumSpans() int {
	if s == nil {
		return 0
	}
	n := 1
	for _, c := range s.Children() {
		n += c.NumSpans()
	}
	return n
}

// Find returns the first span in the subtree with the given name, by
// depth-first pre-order, or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.name == name {
		return s
	}
	for _, c := range s.Children() {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// Tree renders the span tree as an indented text breakdown, one line per
// span: wall time, busy (CPU-estimate) time, peak workers, item and
// allocation counts. Empty string on nil.
func (s *Span) Tree() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.writeTree(&b, 0)
	return b.String()
}

func (s *Span) writeTree(b *strings.Builder, depth int) {
	s.mu.Lock()
	name := s.name
	wall := s.end.Sub(s.start)
	if s.end.IsZero() {
		wall = time.Since(s.start)
	}
	busy, workers, items, allocs, bytes := s.busy, s.workers, s.items, s.allocs, s.bytes
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()

	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%-36s %10s", indent+name, fmtDur(wall))
	if busy > 0 {
		fmt.Fprintf(b, "  busy %9s", fmtDur(busy))
	}
	if workers > 1 {
		fmt.Fprintf(b, "  x%d", workers)
	}
	if items > 0 {
		fmt.Fprintf(b, "  %d items", items)
	}
	if allocs > 0 {
		fmt.Fprintf(b, "  %s allocs (%s)", fmtCount(allocs), fmtBytes(bytes))
	}
	b.WriteByte('\n')
	for _, c := range children {
		c.writeTree(b, depth+1)
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

func fmtCount(n uint64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.1fG", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// Report converts the span tree into its JSON-serializable form.
func (s *Span) Report() *SpanReport {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	wall := s.end.Sub(s.start)
	if s.end.IsZero() {
		wall = time.Since(s.start)
	}
	r := &SpanReport{
		Name:       s.name,
		WallMS:     ms(wall),
		BusyMS:     ms(s.busy),
		MaxBusyMS:  ms(s.maxBusy),
		Workers:    s.workers,
		Items:      s.items,
		Allocs:     s.allocs,
		AllocBytes: s.bytes,
		GOMAXPROCS: s.procs,
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		r.Children = append(r.Children, c.Report())
	}
	return r
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// spanKey is the context key for the ambient span.
type spanKey struct{}

// NewContext returns a context carrying the span; stages that receive a
// context rather than an explicit parent start children via StartSpan.
func NewContext(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// FromContext returns the ambient span, or nil when the context carries
// none — the returned span is safe to use either way.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan starts a child of the context's ambient span and returns the
// derived context plus the child. Without an ambient span both returns are
// no-ops (the original context and a nil span).
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	c := parent.Child(name)
	return NewContext(ctx, c), c
}
