package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Route is an extra handler mounted on the debug server — the hook that
// lets higher layers (which obs cannot import without a cycle) attach
// endpoints like the Prometheus exposition or the metrics-history window
// to every -debug-addr listener.
type Route struct {
	Pattern string
	Handler http.Handler
}

// ServeDebug starts the opt-in profiling endpoint on addr (e.g.
// "localhost:6060", or ":0" to pick a free port): net/http/pprof under
// /debug/pprof/ and expvar under /debug/vars, plus any extra routes, on a
// private mux so importing this package never pollutes
// http.DefaultServeMux routing. It returns the bound address and a
// shutdown function; the server runs until the process exits or close is
// called.
func ServeDebug(addr string, extra ...Route) (boundAddr string, close func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen debug addr %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	for _, rt := range extra {
		if rt.Pattern != "" && rt.Handler != nil {
			mux.Handle(rt.Pattern, rt.Handler)
		}
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // Serve returns on close; nothing to report
	return ln.Addr().String(), func() { srv.Close() }, nil
}
