package obs

import (
	"bytes"
	"context"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"failscope/internal/par"
)

// TestNilReceiversNoOp exercises every method on nil spans, registries,
// metrics and observers: the library contract is that un-observed callers
// pay nothing and never panic.
func TestNilReceiversNoOp(t *testing.T) {
	var s *Span
	if c := s.Child("x"); c != nil {
		t.Fatalf("nil span Child = %v, want nil", c)
	}
	s.End()
	s.AddPool(par.Stats{Workers: 3, Busy: time.Second})
	s.AddItems(10)
	s.SetWorkers(4)
	if s.Name() != "" || s.Wall() != 0 || s.Busy() != 0 || s.NumSpans() != 0 {
		t.Fatal("nil span leaked state")
	}
	if s.Tree() != "" || s.Report() != nil || s.Find("x") != nil || s.Children() != nil {
		t.Fatal("nil span rendered something")
	}

	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	var g *Gauge
	g.Set(3.14)
	if g.Value() != 0 {
		t.Fatal("nil gauge holds a value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || !math.IsNaN(h.Mean()) {
		t.Fatal("nil histogram holds samples")
	}

	var r *Registry
	if r.Counter("a") != nil || r.Gauge("b") != nil || r.Histogram("c", 1, 2) != nil {
		t.Fatal("nil registry returned live metrics")
	}
	r.Add("a", 1)
	r.Set("b", 2)
	r.Publish("nil-registry-test")
	if len(r.Snapshot()) != 0 || r.Dump() != "" {
		t.Fatal("nil registry snapshot not empty")
	}

	var o *Observer
	if o.Start("s") != nil || o.Span() != nil || o.Metrics() != nil || o.Under(nil) != nil {
		t.Fatal("nil observer returned live handles")
	}
	o.Finish()
	o.Publish("nil-observer-test")
	if o.Tree() != "" || o.RunReport() != nil {
		t.Fatal("nil observer rendered something")
	}
}

// TestSpanNesting checks the tree structure, accounting accumulation and
// the rendered breakdown.
func TestSpanNesting(t *testing.T) {
	root := Root("run")
	gen := root.Child("generate")
	topo := gen.Child("topology")
	topo.AddPool(par.Stats{Workers: 4, Items: 100, Busy: 40 * time.Millisecond, MaxBusy: 12 * time.Millisecond})
	topo.AddPool(par.Stats{Workers: 2, Items: 50, Busy: 10 * time.Millisecond, MaxBusy: 6 * time.Millisecond})
	topo.AddItems(7)
	topo.End()
	events := gen.Child("events")
	events.AddItems(7)
	events.End()
	gen.End()
	an := root.Child("analyze")
	an.End()
	root.End()

	if got := root.NumSpans(); got != 5 {
		t.Fatalf("NumSpans = %d, want 5", got)
	}
	if root.Find("topology") != topo {
		t.Fatal("Find(topology) missed")
	}
	if root.Find("nope") != nil {
		t.Fatal("Find(nope) hit something")
	}
	if topo.Busy() != 50*time.Millisecond {
		t.Fatalf("topology busy = %v, want 50ms", topo.Busy())
	}

	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "generate" || kids[1].Name() != "analyze" {
		t.Fatalf("children = %v, want [generate analyze]", kids)
	}

	tree := root.Tree()
	for _, want := range []string{"run", "  generate", "    topology", "    events", "  analyze", "x4", "157 items"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}

	rep := topo.Report()
	if rep.Workers != 4 || rep.Items != 157 || rep.BusyMS != 50 {
		t.Fatalf("span report = %+v", rep)
	}
	// Ending twice keeps the first wall time.
	wall := gen.Wall()
	time.Sleep(time.Millisecond)
	gen.End()
	if gen.Wall() != wall {
		t.Fatal("second End moved the wall clock")
	}
}

// TestRunReportJSONRoundTrip writes a report and reads it back.
func TestRunReportJSONRoundTrip(t *testing.T) {
	o := NewObserver("roundtrip")
	sp := o.Start("stage")
	sp.AddPool(par.Stats{Workers: 2, Items: 10, Busy: time.Millisecond, MaxBusy: time.Millisecond})
	sp.End()
	o.Metrics().Add("tickets", 42)
	o.Metrics().Set("rate", 1.5)
	o.Metrics().Histogram("lat", 1, 10).Observe(3)
	o.Finish()

	rep := o.RunReport()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(buf.Bytes(), []byte("\n")) {
		t.Fatal("report file does not end in newline")
	}
	back, err := ReadRunReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "roundtrip" || back.Meta.GOMAXPROCS != rep.Meta.GOMAXPROCS {
		t.Fatalf("round-trip header mismatch: %+v", back)
	}
	if back.Meta.GoVersion == "" || back.Meta.NumCPU < 1 {
		t.Fatalf("round-trip meta incomplete: %+v", back.Meta)
	}
	if back.Spans.NumSpans() != 2 || back.Spans.Find("stage") == nil {
		t.Fatalf("round-trip spans mismatch: %+v", back.Spans)
	}
	if back.Metrics["tickets"] != 42 || back.Metrics["rate"] != 1.5 {
		t.Fatalf("round-trip metrics mismatch: %v", back.Metrics)
	}
	if back.Metrics["lat.count"] != 1 || back.Metrics["lat.le_10"] != 1 {
		t.Fatalf("round-trip histogram mismatch: %v", back.Metrics)
	}
	if _, err := ReadRunReport(strings.NewReader("{broken")); err == nil {
		t.Fatal("ReadRunReport accepted broken JSON")
	}
}

// TestConcurrentCounters hammers one registry from many goroutines; run
// under -race this is the data-race certification of the metric types.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Add("shared", 1)
				r.Counter("shared2").Inc()
				r.Set("gauge", float64(i))
				r.Histogram("hist", 250, 500, 750).Observe(float64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Fatalf("shared = %d, want %d", got, workers*perWorker)
	}
	if got := r.Counter("shared2").Value(); got != workers*perWorker {
		t.Fatalf("shared2 = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("hist").Count(); got != workers*perWorker {
		t.Fatalf("hist count = %d, want %d", got, workers*perWorker)
	}
	snap := r.Snapshot()
	if snap["hist.le_250"] != workers*251 { // observations 0..250 inclusive
		t.Fatalf("hist.le_250 = %v, want %d", snap["hist.le_250"], workers*251)
	}
	dump := r.Dump()
	if !strings.Contains(dump, "shared 8000\n") {
		t.Fatalf("dump missing counter line:\n%s", dump)
	}
}

// TestContextSpans covers the context plumbing: ambient span present,
// absent, and nil context values.
func TestContextSpans(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context produced a span")
	}
	ctx, sp := StartSpan(context.Background(), "orphan")
	if sp != nil || ctx != context.Background() {
		t.Fatal("StartSpan without ambient span was not a no-op")
	}

	root := Root("ctx")
	ctx = NewContext(context.Background(), root)
	if FromContext(ctx) != root {
		t.Fatal("FromContext lost the span")
	}
	ctx2, child := StartSpan(ctx, "stage")
	if child == nil || FromContext(ctx2) != child {
		t.Fatal("StartSpan did not nest")
	}
	child.End()
	root.End()
	if root.Find("stage") != child {
		t.Fatal("context child missing from tree")
	}
}

// TestServeDebug boots the debug endpoint on a free port and fetches
// /debug/vars and the pprof index.
func TestServeDebug(t *testing.T) {
	r := NewRegistry()
	r.Add("debug_test_metric", 7)
	r.Publish("failscope-test")
	r.Publish("failscope-test") // duplicate publish must not panic

	addr, closeFn, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if vars := get("/debug/vars"); !strings.Contains(vars, "debug_test_metric") {
		t.Fatalf("/debug/vars missing published registry:\n%s", vars)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Fatalf("/debug/pprof/ index unexpected:\n%s", idx)
	}
}

// TestHistogramQuantiles covers the sketch-backed percentile estimates:
// snapshot entries, the Quantile accessor, and empty/nil behavior.
func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 10, 100)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	snap := r.Snapshot()
	for _, tc := range []struct {
		key  string
		want float64
	}{
		{"lat.p50", 500}, {"lat.p95", 950}, {"lat.p99", 990},
	} {
		got, ok := snap[tc.key]
		if !ok {
			t.Fatalf("snapshot missing %s:\n%v", tc.key, snap)
		}
		if math.Abs(got-tc.want) > 25 { // 2.5% rank tolerance
			t.Errorf("%s = %v, want ≈%v", tc.key, got, tc.want)
		}
	}
	if got := h.Quantile(0.5); math.Abs(got-500) > 25 {
		t.Errorf("Quantile(0.5) = %v, want ≈500", got)
	}
	if !strings.Contains(r.Dump(), "lat.p50") {
		t.Error("Dump output missing percentile line")
	}

	// Empty histograms emit no entries at all — not even zero-valued
	// count/sum/bucket lines — and report NaN.
	empty := r.Histogram("empty", 1)
	for key := range r.Snapshot() {
		if strings.HasPrefix(key, "empty.") {
			t.Errorf("empty histogram emitted snapshot entry %s", key)
		}
	}
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty histogram Quantile should be NaN")
	}
	var nilH *Histogram
	if !math.IsNaN(nilH.Quantile(0.5)) {
		t.Error("nil histogram Quantile should be NaN")
	}
}
