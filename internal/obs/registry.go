package obs

import (
	"expvar"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"failscope/internal/sketch"
)

// Counter is a monotonically increasing integer metric. All methods are
// no-ops on a nil receiver and safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float metric. Nil-safe and concurrent-safe.
type Gauge struct{ bits atomic.Uint64 }

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last value set (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution metric: counts per upper bound
// plus one overflow bucket, with total count and sum for mean queries, and
// a quantile sketch for p50/p95/p99 estimates independent of the bucket
// layout. Nil-safe and concurrent-safe.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds; counts has len(bounds)+1
	counts []int64
	sum    float64
	n      int64
	q      *sketch.Quantile // created on first Observe
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
	if h.q == nil {
		h.q = sketch.NewQuantile(0)
	}
	h.q.Add(v)
	h.mu.Unlock()
}

// Quantile returns the estimated p-quantile of observed samples (NaN when
// empty, nil, or p outside [0, 1]).
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return math.NaN()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.q.Query(p)
}

// Count returns the number of samples observed (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Mean returns the mean of observed samples (NaN when empty or nil).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return math.NaN()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.n)
}

// export copies the histogram's typed state for exposition encoders. A
// histogram that never observed a sample returns nil, mirroring snapshot's
// empty-histogram suppression.
func (h *Histogram) export() *HistogramData {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return nil
	}
	return &HistogramData{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Count:  h.n,
		Sum:    h.sum,
		P50:    h.q.Query(0.5),
		P95:    h.q.Query(0.95),
		P99:    h.q.Query(0.99),
	}
}

// snapshot flattens the histogram into metric entries under its name. A
// histogram that never observed a sample emits nothing: zero-valued
// count/sum/bucket/quantile entries would only pollute RunReport diffs.
func (h *Histogram) snapshot(name string, out map[string]float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return
	}
	out[name+".count"] = float64(h.n)
	out[name+".sum"] = h.sum
	for i, b := range h.bounds {
		out[fmt.Sprintf("%s.le_%g", name, b)] = float64(h.counts[i])
	}
	out[name+".le_inf"] = float64(h.counts[len(h.bounds)])
	out[name+".p50"] = h.q.Query(0.5)
	out[name+".p95"] = h.q.Query(0.95)
	out[name+".p99"] = h.q.Query(0.99)
}

// Registry is a named metric store: counters, gauges and histograms keyed
// by dotted names ("ingest.join_hits"). The zero value is not usable; call
// NewRegistry. A nil *Registry is a full no-op — every lookup returns a
// nil metric whose methods do nothing — so un-instrumented callers pay one
// pointer test per metric touch.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use (nil on a
// nil registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (later calls reuse the first bounds).
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]int64, len(bs)+1)}
		r.hists[name] = h
	}
	return h
}

// Add increments the named counter (convenience for one-shot call sites).
func (r *Registry) Add(name string, d int64) { r.Counter(name).Add(d) }

// Set sets the named gauge.
func (r *Registry) Set(name string, v float64) { r.Gauge(name).Set(v) }

// Snapshot returns every metric flattened to name → value. Counters map
// directly, gauges map directly, histograms expand to .count/.sum/.le_*
// entries. Empty (non-nil) map on a nil registry.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		h.snapshot(name, out)
	}
	return out
}

// MetricKind distinguishes the registry's three metric shapes in Export.
type MetricKind int

const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

// HistogramData is a histogram's typed export: per-bucket (non-cumulative)
// counts aligned with the sorted upper Bounds plus one overflow bucket,
// exact Count/Sum, and the sketch-backed quantile estimates.
type HistogramData struct {
	Bounds        []float64 // sorted upper bounds; Counts has len(Bounds)+1
	Counts        []int64
	Count         int64
	Sum           float64
	P50, P95, P99 float64
}

// Metric is one registry entry in typed form. Value carries the counter or
// gauge reading; Hist is set only for KindHistogram.
type Metric struct {
	Name  string
	Kind  MetricKind
	Value float64
	Hist  *HistogramData
}

// Export returns every metric in typed form, sorted by name — the feed for
// exposition encoders that need bucket structure the flat Snapshot loses.
// Histograms that never observed a sample are suppressed, matching
// Snapshot. Nil slice on a nil registry.
func (r *Registry) Export() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: KindCounter, Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: KindGauge, Value: g.Value()})
	}
	for name, h := range r.hists {
		if hd := h.export(); hd != nil {
			out = append(out, Metric{Name: name, Kind: KindHistogram, Hist: hd})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Dump renders the snapshot as sorted "name value" lines, one per metric.
func (r *Registry) Dump() string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		v := snap[name]
		if v == math.Trunc(v) && math.Abs(v) < 1e15 {
			fmt.Fprintf(&b, "%s %d\n", name, int64(v))
		} else {
			fmt.Fprintf(&b, "%s %g\n", name, v)
		}
	}
	return b.String()
}

// Publish exposes the registry under the given expvar name as a live JSON
// map (visible at /debug/vars once ServeDebug or any HTTP server with the
// expvar handler is up). Publishing the same name twice, or publishing
// from a nil registry, is a no-op — expvar itself panics on duplicates, so
// the guard makes republishing after flag re-parsing safe.
func (r *Registry) Publish(name string) {
	if r == nil || name == "" {
		return
	}
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// publishMu serializes the check-then-publish against concurrent callers;
// expvar has no TryPublish.
var publishMu sync.Mutex
