package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Logger is the pipeline's structured logger: a thin wrapper over
// log/slog that follows the package's cardinal rule — every method is a
// no-op on a nil receiver, so library code logs unconditionally and
// un-instrumented runs pay a single pointer test per call site. Like
// spans and metrics, logging never touches a random stream or feeds back
// into the pipeline, so output is byte-identical with logging on or off.
type Logger struct {
	s   *slog.Logger
	lvl slog.Level
}

// Log levels accepted by NewLogger, in increasing severity.
const (
	LevelDebug = "debug"
	LevelInfo  = "info"
	LevelWarn  = "warn"
	LevelError = "error"
)

// Log formats accepted by NewLogger.
const (
	FormatText = "text"
	FormatJSON = "json"
)

// ParseLevel maps a -log-level flag value to its slog level.
func ParseLevel(level string) (slog.Level, error) {
	switch strings.ToLower(level) {
	case LevelDebug:
		return slog.LevelDebug, nil
	case LevelInfo:
		return slog.LevelInfo, nil
	case LevelWarn:
		return slog.LevelWarn, nil
	case LevelError:
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (want %s|%s|%s|%s)",
			level, LevelDebug, LevelInfo, LevelWarn, LevelError)
	}
}

// NewLogger returns a logger writing structured records to w at the given
// minimum level ("debug", "info", "warn", "error") and format ("text" or
// "json" — one JSON object per line, the CI-friendly form).
func NewLogger(w io.Writer, level, format string) (*Logger, error) {
	lvl, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(format) {
	case FormatText:
		h = slog.NewTextHandler(w, opts)
	case FormatJSON:
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want %s|%s)", format, FormatText, FormatJSON)
	}
	return &Logger{s: slog.New(h), lvl: lvl}, nil
}

// Enabled reports whether records at the given level would be emitted
// (false on nil).
func (l *Logger) Enabled(level slog.Level) bool {
	return l != nil && level >= l.lvl
}

// With returns a derived logger carrying the attributes on every record
// (nil on nil).
func (l *Logger) With(args ...any) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{s: l.s.With(args...), lvl: l.lvl}
}

// Debug emits a debug-level record.
func (l *Logger) Debug(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Debug(msg, args...)
}

// Info emits an info-level record.
func (l *Logger) Info(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Info(msg, args...)
}

// Warn emits a warn-level record.
func (l *Logger) Warn(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Warn(msg, args...)
}

// Error emits an error-level record.
func (l *Logger) Error(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Error(msg, args...)
}
