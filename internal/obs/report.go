package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// SpanReport is the JSON form of one span.
type SpanReport struct {
	Name       string  `json:"name"`
	WallMS     float64 `json:"wall_ms"`
	BusyMS     float64 `json:"busy_ms,omitempty"`
	MaxBusyMS  float64 `json:"max_busy_ms,omitempty"`
	Workers    int     `json:"workers,omitempty"`
	Items      int64   `json:"items,omitempty"`
	Allocs     uint64  `json:"allocs,omitempty"`
	AllocBytes uint64  `json:"alloc_bytes,omitempty"`
	// GOMAXPROCS is the parallelism available when the span closed. Tools
	// comparing wall times across reports (cmd/benchdiff) refuse spans that
	// ran with different parallelism; 0 means the span never ended.
	GOMAXPROCS int           `json:"gomaxprocs,omitempty"`
	Children   []*SpanReport `json:"children,omitempty"`
}

// NumSpans counts the report's spans, itself included (0 on nil).
func (r *SpanReport) NumSpans() int {
	if r == nil {
		return 0
	}
	n := 1
	for _, c := range r.Children {
		n += c.NumSpans()
	}
	return n
}

// Find returns the first span named name by depth-first pre-order, or nil.
func (r *SpanReport) Find(name string) *SpanReport {
	if r == nil {
		return nil
	}
	if r.Name == name {
		return r
	}
	for _, c := range r.Children {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// RunMeta is the report's environment + reproducibility block, recorded
// so committed BENCH_*.json files are comparable across machines: wall
// times only mean something next to the core count, and deterministic
// sections only reproduce under the same seed and scale.
type RunMeta struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// MemoryMB is the machine's total physical memory in MiB (0 when the
	// platform offers no cheap way to read it). A comparability hint: wall
	// times and allocation behaviour from a memory-starved machine are not
	// commensurable with a roomy one, so benchdiff treats a large mismatch
	// like a core-count mismatch.
	MemoryMB int `json:"memory_mb,omitempty"`
	// Seed, Parallelism and Config come from SetMeta — the run's knobs as
	// the CLI resolved them (Config is a one-line summary, e.g.
	// "scale=small classify=true").
	Seed        uint64 `json:"seed,omitempty"`
	Parallelism int    `json:"parallelism,omitempty"`
	Config      string `json:"config,omitempty"`
	// Shards is the stream-engine shard count the run drove (0 = unsharded,
	// equivalent to 1). Like GOMAXPROCS it is a comparability boundary:
	// wall-time verdicts across differing shard counts are meaningless.
	Shards int `json:"shards,omitempty"`
}

// RunReport is the machine-readable record of one pipeline run — the
// format committed as BENCH_*.json to track the perf trajectory across
// PRs. Wall times vary run to run; span structure, item counts, metric
// totals and the quality/fidelity sections are deterministic.
type RunReport struct {
	Name    string             `json:"name"`
	Meta    RunMeta            `json:"meta"`
	Spans   *SpanReport        `json:"spans,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Quality carries the run's ground-truth quality scores and Fidelity
	// the paper-band scoreboard (both produced by internal/fidelity, which
	// sits above this package — hence the loose typing; they round-trip
	// through JSON as generic maps).
	Quality  any `json:"quality,omitempty"`
	Fidelity any `json:"fidelity,omitempty"`
}

// WriteJSON writes the report as indented JSON (trailing newline included,
// so the file is commit-friendly).
func (r *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("obs: encode run report: %w", err)
	}
	return nil
}

// ReadRunReport parses a report written by WriteJSON.
func ReadRunReport(rd io.Reader) (*RunReport, error) {
	var r RunReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("obs: decode run report: %w", err)
	}
	return &r, nil
}
