// Package obs is the pipeline's zero-dependency observability layer:
// hierarchical stage spans (wall time, worker busy time, allocation
// deltas), a named metrics registry with expvar publication, pprof/expvar
// debug serving and machine-readable run reports.
//
// The cardinal rule is that observation is free to turn off and inert when
// on: a nil *Span, *Registry or *Observer is a no-op on every method, and
// nothing in this package touches a random stream or feeds back into the
// pipeline, so output is byte-identical with observability attached,
// detached, and at any worker count (enforced by
// TestObservedStudyByteIdentical at the repo root).
package obs

import (
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
)

// Observer bundles the tracing position (a current span under which a
// stage records its sub-stages) with the run's metrics registry. Pipeline
// configs carry an optional *Observer, mirroring how Parallelism is
// threaded: the zero value of a config observes nothing.
//
// All methods are nil-safe; a nil Observer yields nil spans and nil
// metrics, which are themselves no-ops.
type Observer struct {
	span *Span
	reg  *Registry
	root *Span    // the run's root, retained for reports
	log  *Logger  // optional structured logger, shared by derived observers
	meta *RunMeta // run metadata, shared by derived observers
}

// NewObserver starts a run: a root span named after the run plus a fresh
// registry.
func NewObserver(runName string) *Observer {
	root := Root(runName)
	return &Observer{span: root, root: root, reg: NewRegistry(), meta: &RunMeta{}}
}

// WithLogger attaches a structured logger to the run: stage starts/ends
// and pipeline decisions (drops, low-purity warnings) are logged as the
// run proceeds. Derived observers share the logger. Returns o for
// chaining; a nil observer stays nil.
func (o *Observer) WithLogger(l *Logger) *Observer {
	if o == nil {
		return nil
	}
	o.log = l
	o.root.setLogger(l)
	return o
}

// Log returns the run's structured logger (nil on nil, and nil when no
// logger was attached — both are safe to call).
func (o *Observer) Log() *Logger {
	if o == nil {
		return nil
	}
	return o.log
}

// SetMeta records the run's reproducibility knobs — generator seed, worker
// count and a one-line config summary — for the RunReport's meta block.
func (o *Observer) SetMeta(seed uint64, parallelism int, config string) {
	if o == nil {
		return
	}
	o.meta.Seed = seed
	o.meta.Parallelism = parallelism
	o.meta.Config = config
}

// Start begins a sub-stage span under the observer's current span.
func (o *Observer) Start(name string) *Span {
	if o == nil {
		return nil
	}
	o.log.Debug("stage start", "stage", name)
	sp := o.span.Child(name)
	sp.setLogger(o.log)
	return sp
}

// Under returns a derived observer whose current span is sp (sharing the
// registry, root, logger and meta) — the handle passed down to a nested
// pipeline stage so its sub-stages land under the right parent.
func (o *Observer) Under(sp *Span) *Observer {
	if o == nil {
		return nil
	}
	return &Observer{span: sp, reg: o.reg, root: o.root, log: o.log, meta: o.meta}
}

// Span returns the observer's current span (nil on nil).
func (o *Observer) Span() *Span {
	if o == nil {
		return nil
	}
	return o.span
}

// Metrics returns the run's registry (nil on nil).
func (o *Observer) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Finish ends the run's root span. Safe to call more than once.
func (o *Observer) Finish() {
	if o == nil {
		return
	}
	o.root.End()
}

// Tree renders the run's stage breakdown from the root ("" on nil).
func (o *Observer) Tree() string {
	if o == nil {
		return ""
	}
	return o.root.Tree()
}

// RunReport assembles the machine-readable report of the whole run:
// environment + reproducibility meta, span tree and metric snapshot. Nil
// on a nil observer.
func (o *Observer) RunReport() *RunReport {
	if o == nil {
		return nil
	}
	meta := *o.meta
	meta.GoVersion = runtime.Version()
	meta.GOOS = runtime.GOOS
	meta.GOARCH = runtime.GOARCH
	meta.GOMAXPROCS = runtime.GOMAXPROCS(0)
	meta.NumCPU = runtime.NumCPU()
	meta.MemoryMB = totalMemoryMB()
	return &RunReport{
		Name:    o.root.Name(),
		Meta:    meta,
		Spans:   o.root.Report(),
		Metrics: o.reg.Snapshot(),
	}
}

var memoryOnce struct {
	sync.Once
	mb int
}

// totalMemoryMB reads the machine's physical memory from /proc/meminfo
// (MemTotal, reported in KiB) and caches the answer. Returns 0 when the
// file is missing or unparseable — e.g. off Linux — which RunMeta encodes
// as an absent field rather than a lie.
func totalMemoryMB() int {
	memoryOnce.Do(func() {
		data, err := os.ReadFile("/proc/meminfo")
		if err != nil {
			return
		}
		for _, line := range strings.Split(string(data), "\n") {
			rest, ok := strings.CutPrefix(line, "MemTotal:")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) < 1 {
				return
			}
			kb, err := strconv.ParseInt(fields[0], 10, 64)
			if err != nil {
				return
			}
			memoryOnce.mb = int(kb / 1024)
			return
		}
	})
	return memoryOnce.mb
}

// Publish exposes the run's metrics registry under the expvar name.
func (o *Observer) Publish(name string) {
	if o == nil {
		return
	}
	o.reg.Publish(name)
}
