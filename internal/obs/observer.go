// Package obs is the pipeline's zero-dependency observability layer:
// hierarchical stage spans (wall time, worker busy time, allocation
// deltas), a named metrics registry with expvar publication, pprof/expvar
// debug serving and machine-readable run reports.
//
// The cardinal rule is that observation is free to turn off and inert when
// on: a nil *Span, *Registry or *Observer is a no-op on every method, and
// nothing in this package touches a random stream or feeds back into the
// pipeline, so output is byte-identical with observability attached,
// detached, and at any worker count (enforced by
// TestObservedStudyByteIdentical at the repo root).
package obs

import "runtime"

// Observer bundles the tracing position (a current span under which a
// stage records its sub-stages) with the run's metrics registry. Pipeline
// configs carry an optional *Observer, mirroring how Parallelism is
// threaded: the zero value of a config observes nothing.
//
// All methods are nil-safe; a nil Observer yields nil spans and nil
// metrics, which are themselves no-ops.
type Observer struct {
	span *Span
	reg  *Registry
	root *Span // the run's root, retained for reports
}

// NewObserver starts a run: a root span named after the run plus a fresh
// registry.
func NewObserver(runName string) *Observer {
	root := Root(runName)
	return &Observer{span: root, root: root, reg: NewRegistry()}
}

// Start begins a sub-stage span under the observer's current span.
func (o *Observer) Start(name string) *Span {
	if o == nil {
		return nil
	}
	return o.span.Child(name)
}

// Under returns a derived observer whose current span is sp (sharing the
// registry and root) — the handle passed down to a nested pipeline stage
// so its sub-stages land under the right parent.
func (o *Observer) Under(sp *Span) *Observer {
	if o == nil {
		return nil
	}
	return &Observer{span: sp, reg: o.reg, root: o.root}
}

// Span returns the observer's current span (nil on nil).
func (o *Observer) Span() *Span {
	if o == nil {
		return nil
	}
	return o.span
}

// Metrics returns the run's registry (nil on nil).
func (o *Observer) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Finish ends the run's root span. Safe to call more than once.
func (o *Observer) Finish() {
	if o == nil {
		return
	}
	o.root.End()
}

// Tree renders the run's stage breakdown from the root ("" on nil).
func (o *Observer) Tree() string {
	if o == nil {
		return ""
	}
	return o.root.Tree()
}

// RunReport assembles the machine-readable report of the whole run:
// environment, span tree and metric snapshot. Nil on a nil observer.
func (o *Observer) RunReport() *RunReport {
	if o == nil {
		return nil
	}
	return &RunReport{
		Name:       o.root.Name(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Spans:      o.root.Report(),
		Metrics:    o.reg.Snapshot(),
	}
}

// Publish exposes the run's metrics registry under the expvar name.
func (o *Observer) Publish(name string) {
	if o == nil {
		return
	}
	o.reg.Publish(name)
}
