// Package mempool provides the typed free lists behind the pipeline's
// allocation discipline: hot paths (dcsim generation scratch, the stream
// JSONL batch decoder, the failscoped ingest path) recycle their buffers
// through a Pool instead of allocating per event.
//
// The pools are deliberately not sync.Pool: a bounded, mutex-guarded stack
// keeps reuse deterministic (a Put followed by a Get returns the same
// object, which the reuse tests pin) and lets every pool keep exact
// hit/miss/put/drop counters. The stack is bounded so a burst cannot pin
// memory forever; overflowing Puts drop their buffer to the GC.
//
// Pooling is an optimization, never a semantic: every caller must produce
// byte-identical output with pooling disabled (SetEnabled(false) makes Get
// allocate fresh and Put drop), which is what the repo-root
// TestParallelStudyByteIdentical pins. The ownership rules are in
// DESIGN.md §11: a buffer obtained from Get is owned exclusively by the
// getter until Put, Put transfers ownership back to the pool, and nothing
// reachable from a pooled buffer may be retained by a consumer (consumers
// copy, as monitordb's bulk writers and the stream engine do).
package mempool

import (
	"sync"
	"sync/atomic"

	"failscope/internal/obs"
)

// enabled gates every pool in the process. On by default; the byte-identity
// tests flip it off to prove pooling is semantics-free.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns pooling on or off process-wide and returns the previous
// setting. With pooling off, Get always constructs a fresh value and Put
// discards, so behavior is identical to the pre-pool code paths.
func SetEnabled(on bool) bool { return enabled.Swap(on) }

// Enabled reports whether pooling is on.
func Enabled() bool { return enabled.Load() }

// Stats is a point-in-time snapshot of one pool's counters.
type Stats struct {
	Name   string
	Hits   int64 // Gets served from the free list
	Misses int64 // Gets that constructed a fresh value
	Puts   int64 // Puts accepted onto the free list
	Drops  int64 // Puts discarded (pool full or pooling disabled)
}

// counters is the registry-facing face of a pool; the generic Pool[T]
// cannot itself live in a heterogeneous registry slice.
type counters interface {
	Stats() Stats
}

var (
	regMu    sync.Mutex
	registry []counters
)

func register(c counters) {
	regMu.Lock()
	registry = append(registry, c)
	regMu.Unlock()
}

// Snapshot returns the stats of every pool constructed so far, in
// construction order.
func Snapshot() []Stats {
	regMu.Lock()
	pools := append([]counters(nil), registry...)
	regMu.Unlock()
	out := make([]Stats, len(pools))
	for i, p := range pools {
		out[i] = p.Stats()
	}
	return out
}

// Publish writes every pool's counters into the metrics registry as
// "mempool.<name>.hits" / ".misses" / ".puts" / ".drops" gauges. Safe on a
// nil registry (the gauges are no-ops). clikit calls this once at
// end-of-run so RunReports carry the pool hit rates.
func Publish(reg *obs.Registry) {
	for _, st := range Snapshot() {
		reg.Gauge("mempool." + st.Name + ".hits").Set(float64(st.Hits))
		reg.Gauge("mempool." + st.Name + ".misses").Set(float64(st.Misses))
		reg.Gauge("mempool." + st.Name + ".puts").Set(float64(st.Puts))
		reg.Gauge("mempool." + st.Name + ".drops").Set(float64(st.Drops))
	}
}

// Pool is a bounded free list of T values. The zero value is not usable;
// construct with New.
type Pool[T any] struct {
	name    string
	newFn   func() T
	resetFn func(T) T

	mu   sync.Mutex
	free []T

	hits, misses, puts, drops atomic.Int64
}

// New returns a pool named name holding at most capacity free values.
// newFn constructs a value on a miss; resetFn (optional) prepares a
// recycled value on Put — truncating slices, clearing state — and its
// return value is what the free list stores.
func New[T any](name string, capacity int, newFn func() T, resetFn func(T) T) *Pool[T] {
	if capacity < 1 {
		capacity = 1
	}
	p := &Pool[T]{name: name, newFn: newFn, resetFn: resetFn}
	p.free = make([]T, 0, capacity)
	register(p)
	return p
}

// Get returns a value from the free list, or a freshly constructed one.
// The caller owns the value exclusively until it calls Put.
func (p *Pool[T]) Get() T {
	if enabled.Load() {
		p.mu.Lock()
		if n := len(p.free); n > 0 {
			v := p.free[n-1]
			var zero T
			p.free[n-1] = zero // do not pin the value if the slot is never refilled
			p.free = p.free[:n-1]
			p.mu.Unlock()
			p.hits.Add(1)
			return v
		}
		p.mu.Unlock()
	}
	p.misses.Add(1)
	return p.newFn()
}

// Put returns a value to the pool. The caller must not touch v (or
// anything reachable from it) afterwards. Puts beyond the pool's capacity,
// or while pooling is disabled, drop the value.
func (p *Pool[T]) Put(v T) {
	if p.resetFn != nil {
		v = p.resetFn(v)
	}
	if enabled.Load() {
		p.mu.Lock()
		if len(p.free) < cap(p.free) {
			p.free = append(p.free, v)
			p.mu.Unlock()
			p.puts.Add(1)
			return
		}
		p.mu.Unlock()
	}
	p.drops.Add(1)
}

// Stats snapshots the pool's counters.
func (p *Pool[T]) Stats() Stats {
	return Stats{
		Name:   p.name,
		Hits:   p.hits.Load(),
		Misses: p.misses.Load(),
		Puts:   p.puts.Load(),
		Drops:  p.drops.Load(),
	}
}

// SlicePool pools []T buffers. Get returns a zero-length slice (retaining
// whatever capacity its last user grew it to); Put truncates. Elements are
// NOT zeroed — callers must treat a recycled buffer as uninitialized
// beyond its length.
type SlicePool[T any] struct{ p *Pool[[]T] }

// NewSlice returns a slice pool holding at most capacity free buffers,
// each born with the given initial capacity.
func NewSlice[T any](name string, capacity, bufCap int) *SlicePool[T] {
	return &SlicePool[T]{p: New(name, capacity,
		func() []T { return make([]T, 0, bufCap) },
		func(buf []T) []T { return buf[:0] },
	)}
}

// Get returns an empty buffer ready to append into.
func (p *SlicePool[T]) Get() []T { return p.p.Get() }

// Put recycles a buffer. The caller must not use buf afterwards.
func (p *SlicePool[T]) Put(buf []T) { p.p.Put(buf) }

// Stats snapshots the pool's counters.
func (p *SlicePool[T]) Stats() Stats { return p.p.Stats() }
