package mempool

import (
	"sync"
	"testing"

	"failscope/internal/obs"
)

// TestReuse pins the deterministic recycle contract: a Put followed by a
// Get returns the very same object, and the counters account for it.
func TestReuse(t *testing.T) {
	p := New("test.reuse", 4, func() *[8]int { return new([8]int) }, nil)
	a := p.Get()
	if st := p.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("after first Get: %+v", st)
	}
	p.Put(a)
	b := p.Get()
	if a != b {
		t.Fatalf("Get after Put returned a different object")
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Drops != 0 {
		t.Fatalf("counters: %+v", st)
	}
}

// TestCapacityBound verifies overflowing Puts drop instead of growing the
// free list without bound.
func TestCapacityBound(t *testing.T) {
	p := New("test.bound", 2, func() int { return 7 }, nil)
	p.Put(1)
	p.Put(2)
	p.Put(3) // over capacity: dropped
	st := p.Stats()
	if st.Puts != 2 || st.Drops != 1 {
		t.Fatalf("counters: %+v", st)
	}
	// LIFO order: last accepted Put comes back first.
	if got := p.Get(); got != 2 {
		t.Fatalf("Get = %d, want 2", got)
	}
}

// TestDisabled verifies SetEnabled(false) turns every pool into a plain
// allocator: Get constructs fresh, Put drops.
func TestDisabled(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)

	p := New("test.disabled", 4, func() *int { return new(int) }, nil)
	a := p.Get()
	p.Put(a)
	b := p.Get()
	if a == b {
		t.Fatalf("disabled pool recycled an object")
	}
	st := p.Stats()
	if st.Hits != 0 || st.Misses != 2 || st.Puts != 0 || st.Drops != 1 {
		t.Fatalf("counters: %+v", st)
	}
}

// TestSlicePoolResets verifies recycled buffers come back empty but keep
// their grown capacity.
func TestSlicePoolResets(t *testing.T) {
	p := NewSlice[int]("test.slice", 2, 4)
	buf := p.Get()
	for i := 0; i < 100; i++ {
		buf = append(buf, i)
	}
	p.Put(buf)
	got := p.Get()
	if len(got) != 0 {
		t.Fatalf("recycled buffer has len %d, want 0", len(got))
	}
	if cap(got) < 100 {
		t.Fatalf("recycled buffer lost its capacity: cap %d", cap(got))
	}
}

// TestConcurrentGetPut exercises the pool from many goroutines; run under
// -race this is the pool's data-race regression test.
func TestConcurrentGetPut(t *testing.T) {
	p := NewSlice[byte]("test.race", 8, 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				buf := p.Get()
				buf = append(buf, byte(g), byte(i))
				if len(buf) != 2 {
					t.Errorf("buffer not reset: len %d", len(buf))
					return
				}
				p.Put(buf)
			}
		}(g)
	}
	wg.Wait()
	st := p.Stats()
	if st.Hits+st.Misses != 8*500 {
		t.Fatalf("lost Gets: %+v", st)
	}
}

// TestPublish verifies the counters land in the metrics registry under the
// mempool.<name>.* gauges.
func TestPublish(t *testing.T) {
	p := New("test.publish", 2, func() int { return 0 }, nil)
	p.Put(p.Get())
	p.Get()
	reg := obs.NewRegistry()
	Publish(reg)
	snap := reg.Snapshot()
	if snap["mempool.test.publish.hits"] != 1 {
		t.Fatalf("hits gauge = %v, want 1", snap["mempool.test.publish.hits"])
	}
	if snap["mempool.test.publish.misses"] != 1 {
		t.Fatalf("misses gauge = %v, want 1", snap["mempool.test.publish.misses"])
	}
	if snap["mempool.test.publish.puts"] != 1 {
		t.Fatalf("puts gauge = %v, want 1", snap["mempool.test.publish.puts"])
	}
}
