// Package benchdiff compares two machine-readable run reports
// (BENCH_*.json) span by span and flags performance regressions. It is the
// engine behind cmd/benchdiff and the CI perf gate.
//
// Two kinds of numbers live in a report, with very different trust levels.
// Allocation counts are deterministic for a deterministic pipeline — the
// same study at the same scale mallocs the same number of times wherever
// it runs — so they are always compared, and a growth past the tolerance
// is a regression no matter what machines produced the files. Wall times
// are only commensurable between runs that had the same parallelism and a
// comparable machine underneath, so they are checked only when the run
// metadata matches (core count, GOMAXPROCS, memory within a factor of
// two) and, per span, when both spans closed under the same GOMAXPROCS.
package benchdiff

import (
	"fmt"
	"sort"
	"strings"

	"failscope/internal/obs"
)

// Options tunes a comparison.
type Options struct {
	// TimeTol is the allowed fractional wall-time growth per span (0.15 =
	// +15%) before it counts as a regression.
	TimeTol float64
	// AllocTol is the allowed fractional allocation-count growth per span.
	AllocTol float64
	// MinWallMS is the noise floor: spans whose baseline wall time is below
	// it are never time-checked (scheduling jitter dominates sub-noise
	// spans), though their allocations still are.
	MinWallMS float64
	// NewAllocFloor guards spans absent from the baseline alloc-wise or with
	// zero baseline allocations, where no ratio exists: a current count at
	// or under the floor passes, above it regresses.
	NewAllocFloor uint64
}

// DefaultOptions is the CI gate configuration: 15% tolerance both ways,
// 50ms noise floor, 10k allocations allowed for spans without a baseline.
func DefaultOptions() Options {
	return Options{TimeTol: 0.15, AllocTol: 0.15, MinWallMS: 50, NewAllocFloor: 10_000}
}

// Row is the comparison of one span path.
type Row struct {
	Path string // span names joined with "/", root first

	BaseWallMS, CurWallMS float64
	BaseAllocs, CurAllocs uint64

	// TimeChecked reports whether the wall-time comparison ran for this
	// span (meta comparable, both sides present, baseline above the noise
	// floor, same span-level GOMAXPROCS).
	TimeChecked    bool
	TimeRegressed  bool
	AllocRegressed bool
}

// Result is one full report comparison.
type Result struct {
	// Comparable reports whether the two runs' metadata allows wall-time
	// comparison at all; Reason says why not.
	Comparable bool
	Reason     string
	Rows       []Row
	// Regressions counts rows with any regression flag set.
	Regressions int
}

// Regressed reports whether any span regressed.
func (r *Result) Regressed() bool { return r.Regressions > 0 }

// MetaComparable decides whether wall times from the two runs may be
// compared: same core count, same GOMAXPROCS, same stream-engine shard
// count (0 normalizes to 1 — old reports predate the field), and — when
// both report it — physical memory within a factor of two. Shard count is
// a parallelism knob exactly like GOMAXPROCS: a 4-shard daemon spreads
// apply work across four queues, so its wall times say nothing about a
// 1-shard baseline. Allocation gates do not go through this check — a
// per-event allocation regression is real at any shard count.
func MetaComparable(base, cur obs.RunMeta) (bool, string) {
	if base.NumCPU != cur.NumCPU {
		return false, fmt.Sprintf("num_cpu differs: baseline %d vs current %d", base.NumCPU, cur.NumCPU)
	}
	if base.GOMAXPROCS != cur.GOMAXPROCS {
		return false, fmt.Sprintf("gomaxprocs differs: baseline %d vs current %d", base.GOMAXPROCS, cur.GOMAXPROCS)
	}
	if bs, cs := normShards(base.Shards), normShards(cur.Shards); bs != cs {
		return false, fmt.Sprintf("shard count differs: baseline %d vs current %d", bs, cs)
	}
	if base.MemoryMB > 0 && cur.MemoryMB > 0 {
		lo, hi := base.MemoryMB, cur.MemoryMB
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi > 2*lo {
			return false, fmt.Sprintf("memory differs beyond 2x: baseline %d MiB vs current %d MiB", base.MemoryMB, cur.MemoryMB)
		}
	}
	return true, ""
}

// normShards folds the zero value onto 1: reports written before the
// shards field existed all came from single-engine runs.
func normShards(n int) int {
	if n <= 0 {
		return 1
	}
	return n
}

type spanAt struct {
	r *obs.SpanReport
}

// flatten indexes a span tree by path. Duplicate paths (repeated child
// names) keep the first occurrence, matching Find's pre-order semantics.
func flatten(root *obs.SpanReport) map[string]spanAt {
	out := make(map[string]spanAt)
	var walk func(prefix string, s *obs.SpanReport)
	walk = func(prefix string, s *obs.SpanReport) {
		if s == nil {
			return
		}
		path := s.Name
		if prefix != "" {
			path = prefix + "/" + s.Name
		}
		if _, dup := out[path]; !dup {
			out[path] = spanAt{r: s}
		}
		for _, c := range s.Children {
			walk(path, c)
		}
	}
	walk("", root)
	return out
}

// Compare diffs the current report against the baseline.
func Compare(base, cur *obs.RunReport, opts Options) *Result {
	res := &Result{}
	res.Comparable, res.Reason = MetaComparable(base.Meta, cur.Meta)

	baseSpans := flatten(base.Spans)
	curSpans := flatten(cur.Spans)
	paths := make([]string, 0, len(curSpans))
	for p := range curSpans {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	for _, path := range paths {
		c := curSpans[path].r
		b, inBase := baseSpans[path]
		row := Row{Path: path, CurWallMS: c.WallMS, CurAllocs: c.Allocs}
		if inBase {
			row.BaseWallMS = b.r.WallMS
			row.BaseAllocs = b.r.Allocs
		}

		// Allocation check: deterministic, always on.
		if inBase && b.r.Allocs > 0 {
			limit := float64(b.r.Allocs) * (1 + opts.AllocTol)
			row.AllocRegressed = float64(c.Allocs) > limit
		} else {
			row.AllocRegressed = c.Allocs > opts.NewAllocFloor
		}

		// Wall-time check: only when everything lines up.
		if res.Comparable && inBase && b.r.WallMS >= opts.MinWallMS &&
			b.r.GOMAXPROCS == c.GOMAXPROCS {
			row.TimeChecked = true
			limit := b.r.WallMS * (1 + opts.TimeTol)
			row.TimeRegressed = c.WallMS > limit
		}

		if row.TimeRegressed || row.AllocRegressed {
			res.Regressions++
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Format renders the comparison as an aligned text table: one line per
// span, deltas as signed percentages, regression flags in the last column.
func Format(res *Result) string {
	var sb strings.Builder
	if !res.Comparable {
		fmt.Fprintf(&sb, "wall times not compared: %s\n", res.Reason)
	}
	fmt.Fprintf(&sb, "%-40s %12s %12s %8s %12s %12s %8s %s\n",
		"span", "base ms", "cur ms", "Δtime", "base allocs", "cur allocs", "Δalloc", "flags")
	for _, row := range res.Rows {
		flags := make([]string, 0, 2)
		if row.TimeRegressed {
			flags = append(flags, "TIME-REGRESSED")
		}
		if row.AllocRegressed {
			flags = append(flags, "ALLOC-REGRESSED")
		}
		timeCol := "-"
		if row.TimeChecked {
			timeCol = pct(row.BaseWallMS, row.CurWallMS)
		}
		allocCol := "-"
		if row.BaseAllocs > 0 {
			allocCol = pct(float64(row.BaseAllocs), float64(row.CurAllocs))
		}
		fmt.Fprintf(&sb, "%-40s %12.1f %12.1f %8s %12d %12d %8s %s\n",
			row.Path, row.BaseWallMS, row.CurWallMS, timeCol,
			row.BaseAllocs, row.CurAllocs, allocCol, strings.Join(flags, ","))
	}
	fmt.Fprintf(&sb, "%d span(s), %d regression(s)\n", len(res.Rows), res.Regressions)
	return sb.String()
}

func pct(base, cur float64) string {
	if base == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", 100*(cur-base)/base)
}
