package benchdiff

import (
	"strings"
	"testing"

	"failscope/internal/obs"
)

func report(meta obs.RunMeta, spans *obs.SpanReport) *obs.RunReport {
	return &obs.RunReport{Name: "test", Meta: meta, Spans: spans}
}

func meta(cpus, procs, memMB int) obs.RunMeta {
	return obs.RunMeta{NumCPU: cpus, GOMAXPROCS: procs, MemoryMB: memMB}
}

func span(name string, wallMS float64, allocs uint64, procs int, children ...*obs.SpanReport) *obs.SpanReport {
	return &obs.SpanReport{Name: name, WallMS: wallMS, Allocs: allocs, GOMAXPROCS: procs, Children: children}
}

func TestCompareClean(t *testing.T) {
	m := meta(8, 8, 64_000)
	base := report(m, span("run", 1000, 500_000, 8, span("generate", 600, 300_000, 8)))
	cur := report(m, span("run", 1050, 490_000, 8, span("generate", 610, 250_000, 8)))
	res := Compare(base, cur, DefaultOptions())
	if !res.Comparable {
		t.Fatalf("comparable = false: %s", res.Reason)
	}
	if res.Regressed() {
		t.Fatalf("unexpected regression: %s", Format(res))
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.TimeChecked {
			t.Errorf("span %s: time not checked on comparable reports", row.Path)
		}
	}
}

func TestCompareAllocRegression(t *testing.T) {
	m := meta(8, 8, 64_000)
	base := report(m, span("run", 1000, 100_000, 8))
	cur := report(m, span("run", 1000, 120_000, 8)) // +20% > 15% tolerance
	res := Compare(base, cur, DefaultOptions())
	if !res.Regressed() {
		t.Fatalf("alloc regression not flagged: %s", Format(res))
	}
	if !res.Rows[0].AllocRegressed || res.Rows[0].TimeRegressed {
		t.Fatalf("wrong flags: %+v", res.Rows[0])
	}
}

func TestCompareTimeRegression(t *testing.T) {
	m := meta(8, 8, 64_000)
	base := report(m, span("run", 1000, 100_000, 8))
	cur := report(m, span("run", 1300, 100_000, 8)) // +30% > 15% tolerance
	res := Compare(base, cur, DefaultOptions())
	if !res.Regressed() || !res.Rows[0].TimeRegressed {
		t.Fatalf("time regression not flagged: %s", Format(res))
	}
}

func TestCompareSkipsTimeOnMetaMismatch(t *testing.T) {
	base := report(meta(8, 8, 64_000), span("run", 1000, 100_000, 8))
	cur := report(meta(4, 4, 64_000), span("run", 2000, 100_000, 4))
	res := Compare(base, cur, DefaultOptions())
	if res.Comparable {
		t.Fatal("4-core vs 8-core reports marked comparable")
	}
	if res.Reason == "" || !strings.Contains(res.Reason, "num_cpu") {
		t.Fatalf("reason = %q, want num_cpu mismatch", res.Reason)
	}
	if res.Regressed() {
		t.Fatalf("wall-time doubled on incomparable machines should not regress: %s", Format(res))
	}
	if res.Rows[0].TimeChecked {
		t.Fatal("time checked despite meta mismatch")
	}
}

func TestCompareMemoryMismatch(t *testing.T) {
	base := report(meta(8, 8, 8_000), span("run", 1000, 100_000, 8))
	cur := report(meta(8, 8, 64_000), span("run", 1000, 100_000, 8))
	if ok, reason := MetaComparable(base.Meta, cur.Meta); ok || !strings.Contains(reason, "memory") {
		t.Fatalf("8GB vs 64GB comparable = %v (%q)", ok, reason)
	}
	// Memory hint absent on one side: comparable (no evidence of mismatch).
	if ok, _ := MetaComparable(meta(8, 8, 0), meta(8, 8, 64_000)); !ok {
		t.Fatal("absent memory hint should not block comparison")
	}
}

func TestCompareSkipsTimeOnSpanProcsMismatch(t *testing.T) {
	// Run meta matches, but one span closed under a different GOMAXPROCS
	// (e.g. the process adjusted it mid-run): its time must not be judged.
	m := meta(8, 8, 64_000)
	base := report(m, span("run", 1000, 100_000, 8, span("analyze", 400, 10_000, 2)))
	cur := report(m, span("run", 1000, 100_000, 8, span("analyze", 900, 10_000, 8)))
	res := Compare(base, cur, DefaultOptions())
	for _, row := range res.Rows {
		if row.Path == "run/analyze" {
			if row.TimeChecked || row.TimeRegressed {
				t.Fatalf("span with mismatched GOMAXPROCS judged: %+v", row)
			}
		}
	}
}

func TestCompareNoiseFloor(t *testing.T) {
	m := meta(8, 8, 64_000)
	base := report(m, span("run", 1000, 100_000, 8, span("tiny", 5, 100, 8)))
	cur := report(m, span("run", 1000, 100_000, 8, span("tiny", 40, 100, 8)))
	res := Compare(base, cur, DefaultOptions())
	for _, row := range res.Rows {
		if row.Path == "run/tiny" && (row.TimeChecked || row.TimeRegressed) {
			t.Fatalf("sub-noise span judged on time: %+v", row)
		}
	}
}

func TestCompareNewSpanAllocFloor(t *testing.T) {
	m := meta(8, 8, 64_000)
	base := report(m, span("run", 1000, 100_000, 8))
	cur := report(m, span("run", 1000, 100_000, 8, span("extra", 10, 50_000, 8)))
	res := Compare(base, cur, DefaultOptions())
	if !res.Regressed() {
		t.Fatalf("new span with 50k allocs (floor 10k) not flagged: %s", Format(res))
	}
	cur2 := report(m, span("run", 1000, 100_000, 8, span("extra", 10, 2_000, 8)))
	if res2 := Compare(base, cur2, DefaultOptions()); res2.Regressed() {
		t.Fatalf("new span under the alloc floor flagged: %s", Format(res2))
	}
}

func TestCompareAllocsGateWithoutComparableMeta(t *testing.T) {
	// The whole point of the deterministic gate: a laptop and CI machine
	// still agree on allocation counts.
	base := report(meta(16, 16, 128_000), span("run", 100, 100_000, 16))
	cur := report(meta(2, 2, 4_000), span("run", 900, 150_000, 2))
	res := Compare(base, cur, DefaultOptions())
	if !res.Regressed() || !res.Rows[0].AllocRegressed {
		t.Fatalf("alloc regression must gate across machines: %s", Format(res))
	}
}

func TestShardCountComparability(t *testing.T) {
	// Shard count is a parallelism boundary like GOMAXPROCS: wall-time
	// verdicts across differing counts are refused outright.
	m1, m4 := meta(8, 8, 64_000), meta(8, 8, 64_000)
	m1.Shards, m4.Shards = 1, 4
	if ok, reason := MetaComparable(m1, m4); ok || !strings.Contains(reason, "shard") {
		t.Fatalf("1-vs-4 shards comparable = %v (%q), want refusal naming shards", ok, reason)
	}
	// Zero normalizes to one: reports that predate the field are
	// single-engine runs and stay comparable with explicit -shards 1.
	m0 := meta(8, 8, 64_000)
	if ok, reason := MetaComparable(m0, m1); !ok {
		t.Fatalf("0-vs-1 shards not comparable: %s", reason)
	}
	if ok, reason := MetaComparable(m4, m4); !ok {
		t.Fatalf("4-vs-4 shards not comparable: %s", reason)
	}
}

func TestShardMismatchSkipsTimeKeepsAllocGate(t *testing.T) {
	m1, m4 := meta(8, 8, 64_000), meta(8, 8, 64_000)
	m1.Shards, m4.Shards = 1, 4
	base := report(m1, span("run", 1000, 100_000, 8))
	// Current run is 3x faster on 4 shards — no wall-time verdict either
	// way — but allocates 3x more, which must still be flagged.
	cur := report(m4, span("run", 333, 300_000, 8))
	res := Compare(base, cur, DefaultOptions())
	if res.Comparable {
		t.Fatal("runs with differing shard counts judged comparable")
	}
	if res.Rows[0].TimeChecked {
		t.Fatal("wall time judged across differing shard counts")
	}
	if !res.Rows[0].AllocRegressed {
		t.Fatalf("alloc regression not flagged across shard counts: %s", Format(res))
	}
}
