package ticketdb

import (
	"fmt"
	"testing"
)

// TestFormatTicketID pins the manual zero-padded renderer against the
// fmt.Sprintf("T%07d") contract it replaced.
func TestFormatTicketID(t *testing.T) {
	for _, n := range []int{1, 9, 10, 999, 1234567, 9999999, 10000000, 123456789} {
		want := fmt.Sprintf("T%07d", n)
		if got := formatTicketID(n); got != want {
			t.Errorf("formatTicketID(%d) = %q, want %q", n, got, want)
		}
	}
}
