package ticketdb

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"failscope/internal/model"
)

// Store is an in-memory ticket database with the query surface the
// collection pipeline needs: by server, by time range, by crash flag.
// It is safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	tickets []model.Ticket
	nextID  int
}

// NewStore returns an empty ticket store.
func NewStore() *Store { return &Store{} }

// Append adds a ticket, assigning it a sequential ID if it has none, and
// returns the stored ticket.
func (s *Store) Append(t model.Ticket) model.Ticket {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.ID == "" {
		s.nextID++
		t.ID = fmt.Sprintf("T%07d", s.nextID)
	}
	s.tickets = append(s.tickets, t)
	return t
}

// Len returns the number of stored tickets.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.tickets)
}

// All returns every ticket, time-sorted. The slice is a copy.
func (s *Store) All() []model.Ticket {
	s.mu.RLock()
	out := append([]model.Ticket(nil), s.tickets...)
	s.mu.RUnlock()
	sortByOpen(out)
	return out
}

// InWindow returns tickets opened within the window, time-sorted.
func (s *Store) InWindow(w model.Window) []model.Ticket {
	s.mu.RLock()
	var out []model.Ticket
	for _, t := range s.tickets {
		if w.Contains(t.Opened) {
			out = append(out, t)
		}
	}
	s.mu.RUnlock()
	sortByOpen(out)
	return out
}

// ForServer returns the tickets of one server, time-sorted.
func (s *Store) ForServer(id model.MachineID) []model.Ticket {
	s.mu.RLock()
	var out []model.Ticket
	for _, t := range s.tickets {
		if t.ServerID == id {
			out = append(out, t)
		}
	}
	s.mu.RUnlock()
	sortByOpen(out)
	return out
}

// Crashes returns the crash tickets (ground truth flag), time-sorted.
func (s *Store) Crashes() []model.Ticket {
	s.mu.RLock()
	var out []model.Ticket
	for _, t := range s.tickets {
		if t.IsCrash {
			out = append(out, t)
		}
	}
	s.mu.RUnlock()
	sortByOpen(out)
	return out
}

func sortByOpen(ts []model.Ticket) {
	sort.Slice(ts, func(i, j int) bool {
		if !ts[i].Opened.Equal(ts[j].Opened) {
			return ts[i].Opened.Before(ts[j].Opened)
		}
		return ts[i].ID < ts[j].ID
	})
}

// CountOpenedBetween returns how many tickets opened in [from, to).
func (s *Store) CountOpenedBetween(from, to time.Time) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, t := range s.tickets {
		if !t.Opened.Before(from) && t.Opened.Before(to) {
			n++
		}
	}
	return n
}
