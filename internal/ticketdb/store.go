package ticketdb

import (
	"sort"
	"strconv"
	"sync"
	"time"

	"failscope/internal/model"
)

// Store is an in-memory ticket database with the query surface the
// collection pipeline needs: by server, by time range, by crash flag.
// It is safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	tickets []model.Ticket
	nextID  int
}

// NewStore returns an empty ticket store.
func NewStore() *Store { return &Store{} }

// Append adds a ticket, assigning it a sequential ID if it has none, and
// returns the stored ticket.
func (s *Store) Append(t model.Ticket) model.Ticket {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.ID == "" {
		s.nextID++
		t.ID = formatTicketID(s.nextID)
	}
	s.tickets = append(s.tickets, t)
	return t
}

// Reserve pre-grows the store for n more tickets, so a bulk Append loop
// lands in one backing array instead of doubling through several.
func (s *Store) Reserve(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if free := cap(s.tickets) - len(s.tickets); free < n {
		grown := make([]model.Ticket, len(s.tickets), len(s.tickets)+n)
		copy(grown, s.tickets)
		s.tickets = grown
	}
}

// formatTicketID renders "T%07d" with a single retained allocation — the
// assemble stage stamps every generated ticket through here, so the
// fmt.Sprintf boxing (~2 extra allocs each) is worth avoiding.
func formatTicketID(n int) string {
	var digBuf [20]byte
	digits := strconv.AppendInt(digBuf[:0], int64(n), 10)
	var out [28]byte
	b := append(out[:0], 'T')
	for pad := 7 - len(digits); pad > 0; pad-- {
		b = append(b, '0')
	}
	b = append(b, digits...)
	return string(b)
}

// Len returns the number of stored tickets.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.tickets)
}

// All returns every ticket, time-sorted. The slice is a copy.
func (s *Store) All() []model.Ticket {
	s.mu.RLock()
	out := append([]model.Ticket(nil), s.tickets...)
	s.mu.RUnlock()
	sortByOpen(out)
	return out
}

// InWindow returns tickets opened within the window, time-sorted.
func (s *Store) InWindow(w model.Window) []model.Ticket {
	s.mu.RLock()
	var out []model.Ticket
	for _, t := range s.tickets {
		if w.Contains(t.Opened) {
			out = append(out, t)
		}
	}
	s.mu.RUnlock()
	sortByOpen(out)
	return out
}

// ForServer returns the tickets of one server, time-sorted.
func (s *Store) ForServer(id model.MachineID) []model.Ticket {
	s.mu.RLock()
	var out []model.Ticket
	for _, t := range s.tickets {
		if t.ServerID == id {
			out = append(out, t)
		}
	}
	s.mu.RUnlock()
	sortByOpen(out)
	return out
}

// Crashes returns the crash tickets (ground truth flag), time-sorted.
func (s *Store) Crashes() []model.Ticket {
	s.mu.RLock()
	var out []model.Ticket
	for _, t := range s.tickets {
		if t.IsCrash {
			out = append(out, t)
		}
	}
	s.mu.RUnlock()
	sortByOpen(out)
	return out
}

func sortByOpen(ts []model.Ticket) {
	sort.Slice(ts, func(i, j int) bool {
		if !ts[i].Opened.Equal(ts[j].Opened) {
			return ts[i].Opened.Before(ts[j].Opened)
		}
		return ts[i].ID < ts[j].ID
	})
}

// CountOpenedBetween returns how many tickets opened in [from, to).
func (s *Store) CountOpenedBetween(from, to time.Time) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, t := range s.tickets {
		if !t.Opened.Before(from) && t.Opened.Before(to) {
			n++
		}
	}
	return n
}
