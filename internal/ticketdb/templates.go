// Package ticketdb simulates the ticketing system of §III: it synthesizes
// human-style problem-ticket text (description + resolution) for crash
// tickets of each failure class and for the large background population of
// non-crash tickets, and provides a queryable ticket store.
//
// The text generator is intentionally noisy: classes share vocabulary
// ("server", "reboot", "unresponsive" appear across classes and in routine
// maintenance tickets) and a fraction of tickets is written vaguely, so the
// downstream k-means classification is a genuinely hard problem with
// accuracy in the ~87% regime the paper reports — not a toy.
package ticketdb

import (
	"strings"

	"failscope/internal/model"
	"failscope/internal/xrand"
)

// template is a set of alternative phrasings; Render picks one of each
// slot and substitutes {host}.
type template struct {
	desc []string
	res  []string
}

var crashTemplates = map[model.FailureClass]template{
	model.ClassHardware: {
		desc: []string{
			"server {host} unresponsive, hardware fault suspected on primary controller",
			"{host} down hard, amber fault led on chassis, disk array offline",
			"host {host} crashed, raid battery failure alarm raised by management module",
			"{host} not reachable, predictive disk failure escalated to outage",
			"machine {host} powered itself off, psu failure code logged",
			"{host} unreachable after memory dimm error storm, system halted",
		},
		res: []string{
			"replaced faulty disk drive and rebuilt array, server restored",
			"swapped failed power supply unit, verified redundant psu, host back online",
			"replaced raid controller battery, storage online, closing",
			"faulty memory module replaced, diagnostics clean, returned to service",
			"motherboard replaced under vendor contract, server rebuilt and restored",
		},
	},
	model.ClassNetwork: {
		desc: []string{
			"server {host} unreachable over network, interface errors on uplink",
			"{host} lost connectivity, switch port flapping reported by monitoring",
			"host {host} isolated, vlan misconfiguration after change window",
			"{host} not responding to ping, nic link down on both adapters",
			"network outage affecting {host}, routing table inconsistent",
		},
		res: []string{
			"replaced faulty network cable and reset switch port, connectivity restored",
			"corrected vlan assignment on access switch, host reachable again",
			"nic firmware updated and link renegotiated, network fix applied",
			"switch linecard replaced by network team, uplink stable",
			"restored routing configuration, verified reachability, closing",
		},
	},
	model.ClassSoftware: {
		desc: []string{
			"server {host} hung, operating system not responding to console",
			"{host} unresponsive, critical service agent crashed and wedged the os",
			"application fault on {host}, kernel panic recorded in system log",
			"{host} frozen, middleware process leak exhausted system memory",
			"os on {host} stuck at high load, scheduler hung, no login possible",
			"{host} down, database service deadlock cascaded to system hang",
		},
		res: []string{
			"restarted hung service agent and applied software patch, os stable",
			"applied os hotfix for kernel panic, monitoring for recurrence",
			"killed leaking process, upgraded middleware to fixed level",
			"software fix deployed, application service restored and validated",
			"reconfigured service dependencies and restarted stack, resolved",
		},
	},
	model.ClassPower: {
		desc: []string{
			"power outage in rack row, server {host} lost both feeds",
			"{host} down due to pdu failure, breaker tripped in distribution panel",
			"ups failure caused power loss on {host} and neighbouring hosts",
			"scheduled electrical maintenance overran, {host} powered down",
			"{host} offline after facility power event, generator transfer failed",
		},
		res: []string{
			"electrical fix applied to pdu, power restored, servers brought up",
			"breaker reset by facilities, verified dual feed, host online",
			"ups battery string replaced, power stable, closing incident",
			"facility power restored after electrical repair, all hosts up",
		},
	},
	model.ClassReboot: {
		desc: []string{
			"server {host} rebooted unexpectedly, no operator action recorded",
			"{host} restarted without change record, uptime counter reset",
			"unexpected reboot of {host} detected by monitoring agent",
			"{host} bounced, spontaneous restart, came back by itself",
			"virtual machine {host} restarted when underlying host recycled",
		},
		res: []string{
			"server resumed service after reboot, no further action required",
			"verified system healthy post restart, cause logged as unexpected reboot",
			"host came back online automatically, watching for recurrence",
			"confirmed hypervisor recycle caused restart, service restored",
		},
	},
	// ClassOther tickets are deliberately vague — the paper attributes its
	// 53% "other" share to tickets whose description and resolution lack
	// the detail needed for classification.
	model.ClassOther: {
		desc: []string{
			"server {host} down",
			"{host} not responding, user reported outage",
			"host {host} unreachable, details not available",
			"{host} crashed, cause unknown",
			"monitoring alert, {host} unavailable",
			"{host} outage reported, escalated by service desk",
		},
		res: []string{
			"restored",
			"server back online, closing",
			"issue no longer present, resolved",
			"fixed by support team",
			"service restored, root cause not determined",
		},
	},
}

// nonCrashTemplates is the background traffic: the >94% of problem tickets
// that are not server failures.
var nonCrashTemplates = []template{
	{ // capacity / disk space
		desc: []string{
			"filesystem on {host} above 90 percent, disk space warning",
			"{host} low on disk space, cleanup requested",
			"database archive volume filling up on {host}",
		},
		res: []string{
			"cleaned old log files, space reclaimed",
			"extended filesystem, utilization normal",
			"archived historical data, closing",
		},
	},
	{ // access / account
		desc: []string{
			"access request for application account on {host}",
			"password reset needed for service account on {host}",
			"user cannot login to application on {host}, permission denied",
		},
		res: []string{
			"account created and access granted",
			"password reset completed, user verified login",
			"group membership corrected, access working",
		},
	},
	{ // batch / backup
		desc: []string{
			"nightly backup failed on {host}, media error reported",
			"batch job overrun on {host}, schedule delayed",
			"backup agent on {host} reports incomplete save set",
		},
		res: []string{
			"backup rerun successfully, media rotated",
			"job rescheduled, completed within window",
			"agent reconfigured, full backup verified",
		},
	},
	{ // monitoring noise / thresholds
		desc: []string{
			"cpu utilization threshold exceeded on {host}, performance alert",
			"memory usage high on {host}, monitoring threshold breached",
			"paging activity alert on {host}, response time degraded",
		},
		res: []string{
			"threshold adjusted after review, no impact",
			"workload rebalanced, utilization normal",
			"false alarm, monitoring profile tuned",
		},
	},
	{ // maintenance / patching (shares "reboot" vocabulary with crashes)
		desc: []string{
			"scheduled patch window for {host}, reboot planned",
			"firmware update requested on {host} during maintenance",
			"os patching on {host}, controlled restart required",
		},
		res: []string{
			"patches applied and server rebooted as scheduled",
			"firmware updated, planned restart completed",
			"maintenance completed successfully in window",
		},
	},
	{ // certificates / middleware config
		desc: []string{
			"ssl certificate expiring on {host}, renewal required",
			"application configuration change request for {host}",
			"queue manager channel down on {host}, messages backing up",
		},
		res: []string{
			"certificate renewed and deployed",
			"configuration change implemented and validated",
			"channel restarted, queue drained",
		},
	},
}

// Renderer produces ticket text deterministically from its own RNG stream.
type Renderer struct {
	rng *xrand.RNG
	// vagueProb is the chance a *classified* crash ticket is nevertheless
	// written vaguely, which is what caps classifier accuracy below 100%.
	vagueProb float64
}

// NewRenderer returns a text renderer. vagueProb in [0,1] controls how
// often classified crash tickets get uninformative text.
func NewRenderer(rng *xrand.RNG, vagueProb float64) *Renderer {
	return &Renderer{rng: rng, vagueProb: vagueProb}
}

func pick(r *xrand.RNG, opts []string) string { return opts[r.Intn(len(opts))] }

func fill(s string, host model.MachineID) string {
	return strings.ReplaceAll(s, "{host}", string(host))
}

// Crash renders description and resolution text for a crash ticket of the
// given class on the given server, drawing from the renderer's own stream.
func (rd *Renderer) Crash(class model.FailureClass, host model.MachineID) (desc, res string) {
	return rd.CrashWith(rd.rng, class, host)
}

// CrashWith is Crash drawing from a caller-supplied stream instead of the
// renderer's own. It keeps no renderer state, so callers holding
// independent per-ticket streams may render concurrently.
func (rd *Renderer) CrashWith(r *xrand.RNG, class model.FailureClass, host model.MachineID) (desc, res string) {
	t, ok := crashTemplates[class]
	if !ok {
		t = crashTemplates[model.ClassOther]
	}
	if class != model.ClassOther && r.Bool(rd.vagueProb) {
		// A sloppy writer: informative class, vague text.
		vague := crashTemplates[model.ClassOther]
		return fill(pick(r, vague.desc), host), fill(pick(r, vague.res), host)
	}
	return fill(pick(r, t.desc), host), fill(pick(r, t.res), host)
}

// NonCrash renders text for a background (non-failure) ticket.
func (rd *Renderer) NonCrash(host model.MachineID) (desc, res string) {
	return rd.NonCrashWith(rd.rng, host)
}

// NonCrashWith is NonCrash drawing from a caller-supplied stream.
func (rd *Renderer) NonCrashWith(r *xrand.RNG, host model.MachineID) (desc, res string) {
	t := nonCrashTemplates[r.Intn(len(nonCrashTemplates))]
	return fill(pick(r, t.desc), host), fill(pick(r, t.res), host)
}
