package ticketdb

import (
	"strings"
	"testing"
	"time"

	"failscope/internal/model"
	"failscope/internal/xrand"
)

var (
	t0  = time.Date(2012, 7, 1, 0, 0, 0, 0, time.UTC)
	obs = model.Window{Start: t0, End: t0.AddDate(1, 0, 0)}
)

func TestRendererCrashMentionsHost(t *testing.T) {
	rd := NewRenderer(xrand.New(1), 0)
	for _, class := range model.Classes() {
		desc, res := rd.Crash(class, "srv-042")
		if !strings.Contains(desc, "srv-042") {
			t.Errorf("%v description lacks host: %q", class, desc)
		}
		if desc == "" || res == "" {
			t.Errorf("%v produced empty text", class)
		}
	}
}

func TestRendererVagueProbability(t *testing.T) {
	rd := NewRenderer(xrand.New(2), 1.0) // always vague
	desc, res := rd.Crash(model.ClassHardware, "h1")
	// With vagueProb=1 a hardware ticket must use the vague templates,
	// which never mention hardware-specific vocabulary.
	for _, word := range []string{"disk", "psu", "raid", "dimm"} {
		if strings.Contains(desc, word) || strings.Contains(res, word) {
			t.Errorf("vague ticket leaked class vocabulary: %q / %q", desc, res)
		}
	}
}

func TestRendererUnknownClassFallsBack(t *testing.T) {
	rd := NewRenderer(xrand.New(3), 0)
	desc, res := rd.Crash(model.FailureClass(99), "h1")
	if desc == "" || res == "" {
		t.Fatal("unknown class produced empty text")
	}
}

func TestRendererNonCrash(t *testing.T) {
	rd := NewRenderer(xrand.New(4), 0)
	seen := make(map[string]bool)
	for i := 0; i < 50; i++ {
		desc, res := rd.NonCrash("m9")
		if !strings.Contains(desc, "m9") {
			t.Errorf("non-crash description lacks host: %q", desc)
		}
		if res == "" {
			t.Error("empty resolution")
		}
		seen[desc] = true
	}
	if len(seen) < 5 {
		t.Errorf("non-crash text not varied: %d distinct of 50", len(seen))
	}
}

func TestRendererDeterminism(t *testing.T) {
	a := NewRenderer(xrand.New(7), 0.2)
	b := NewRenderer(xrand.New(7), 0.2)
	for i := 0; i < 100; i++ {
		da, ra := a.Crash(model.ClassSoftware, "x")
		db, rb := b.Crash(model.ClassSoftware, "x")
		if da != db || ra != rb {
			t.Fatal("renderer not deterministic")
		}
	}
}

func mkTicket(id string, server model.MachineID, at time.Time, crash bool) model.Ticket {
	return model.Ticket{
		ID: id, ServerID: server, Opened: at, Closed: at.Add(time.Hour), IsCrash: crash,
	}
}

func TestStoreAppendAssignsIDs(t *testing.T) {
	s := NewStore()
	got := s.Append(model.Ticket{ServerID: "m", Opened: t0, Closed: t0.Add(time.Hour)})
	if got.ID == "" {
		t.Fatal("no ID assigned")
	}
	kept := s.Append(model.Ticket{ID: "CUSTOM", ServerID: "m", Opened: t0, Closed: t0.Add(time.Hour)})
	if kept.ID != "CUSTOM" {
		t.Fatalf("custom ID overwritten: %q", kept.ID)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestStoreQueries(t *testing.T) {
	s := NewStore()
	s.Append(mkTicket("c", "m1", t0.Add(72*time.Hour), true))
	s.Append(mkTicket("a", "m1", t0.Add(24*time.Hour), false))
	s.Append(mkTicket("b", "m2", t0.Add(48*time.Hour), true))
	s.Append(mkTicket("late", "m2", obs.End.Add(time.Hour), true))

	all := s.All()
	if len(all) != 4 {
		t.Fatalf("All = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Opened.Before(all[i-1].Opened) {
			t.Fatal("All not sorted")
		}
	}
	if got := s.InWindow(obs); len(got) != 3 {
		t.Fatalf("InWindow = %d", len(got))
	}
	if got := s.ForServer("m1"); len(got) != 2 || got[0].ID != "a" {
		t.Fatalf("ForServer = %v", got)
	}
	if got := s.Crashes(); len(got) != 3 {
		t.Fatalf("Crashes = %d", len(got))
	}
	if got := s.CountOpenedBetween(t0, t0.Add(50*time.Hour)); got != 2 {
		t.Fatalf("CountOpenedBetween = %d", got)
	}
}

func TestStoreAllReturnsCopy(t *testing.T) {
	s := NewStore()
	s.Append(mkTicket("a", "m", t0.Add(time.Hour), false))
	out := s.All()
	out[0].ServerID = "mutated"
	if s.All()[0].ServerID == "mutated" {
		t.Fatal("All exposed internal state")
	}
}

// TestStoreConcurrentUse exercises the store under parallel writers and
// readers; run with -race to verify the locking.
func TestStoreConcurrentUse(t *testing.T) {
	s := NewStore()
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		w := w
		go func() {
			defer func() { done <- struct{}{} }()
			id := model.MachineID(string(rune('a' + w)))
			for i := 0; i < 200; i++ {
				s.Append(mkTicket("", id, t0.Add(time.Duration(i)*time.Hour), i%7 == 0))
				s.ForServer(id)
				s.Len()
			}
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if s.Len() != 8*200 {
		t.Fatalf("Len = %d", s.Len())
	}
	seen := make(map[string]bool)
	for _, tk := range s.All() {
		if tk.ID == "" || seen[tk.ID] {
			t.Fatal("duplicate or empty ticket ID under concurrency")
		}
		seen[tk.ID] = true
	}
}
