package xrand

import "testing"

// TestDerivePure asserts Derive is a pure function: same (seed, labels)
// always yields the same stream, with no hidden parent state.
func TestDerivePure(t *testing.T) {
	a := Derive(3, 10, 20)
	b := Derive(3, 10, 20)
	for i := 0; i < 500; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("derived streams diverge at step %d", i)
		}
	}
}

// TestDeriveOrderIndependent is the property Split lacks: deriving stream A
// before or after stream B must not change either stream. This is what makes
// concurrent per-machine derivation safe.
func TestDeriveOrderIndependent(t *testing.T) {
	first := func(r *RNG) uint64 { return r.Uint64() }
	// Derive (seed,1) then (seed,2) versus the opposite order.
	a1 := first(Derive(9, 1))
	a2 := first(Derive(9, 2))
	b2 := first(Derive(9, 2))
	b1 := first(Derive(9, 1))
	if a1 != b1 || a2 != b2 {
		t.Fatal("derivation order perturbed the streams")
	}
}

// TestDeriveLabelSensitivity checks that distinct label vectors — including
// permutations and prefix-extensions — give unrelated streams.
func TestDeriveLabelSensitivity(t *testing.T) {
	cases := [][]uint64{
		{}, {0}, {1}, {2}, {1, 2}, {2, 1}, {1, 0}, {1, 2, 0}, {1, 2, 3},
	}
	seen := make(map[uint64][]uint64)
	for _, labels := range cases {
		v := Derive(42, labels...).Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("labels %v and %v derived identical streams", prev, labels)
		}
		seen[v] = labels
	}
}

// TestDeriveStreamsIndependent spot-checks pairwise output collisions
// between sibling streams.
func TestDeriveStreamsIndependent(t *testing.T) {
	s1 := Derive(7, 100, 1)
	s2 := Derive(7, 100, 2)
	same := 0
	for i := 0; i < 200; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("sibling derived streams collide %d times", same)
	}
}

func TestHashString(t *testing.T) {
	if HashString("pm-0-0001") == HashString("pm-0-0002") {
		t.Fatal("distinct IDs hash identically")
	}
	if HashString("vm-3-0042") != HashString("vm-3-0042") {
		t.Fatal("HashString is not stable")
	}
	// FNV-1a of the empty string is the offset basis.
	if HashString("") != 14695981039346656037 {
		t.Fatalf("HashString(\"\") = %d, want FNV-1a offset basis", HashString(""))
	}
}
