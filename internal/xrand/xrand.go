// Package xrand provides a deterministic, seedable pseudo-random number
// generator together with the distribution samplers the failure simulator
// needs. Every experiment in this repository is reproducible from a single
// 64-bit seed: the generator is xoshiro256** seeded through SplitMix64, and
// independent substreams are derived with Split so that adding samples to
// one component of the simulation does not perturb another.
//
// The package deliberately does not use math/rand: the simulator needs
// stable streams across Go releases and cheap, collision-free substream
// derivation, neither of which math/rand guarantees.
package xrand

import "math"

// mix64 is the SplitMix64 finalizer: a bijective avalanche function whose
// output bits are decorrelated from its input bits.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Derive returns a generator that is a pure function of (seed, labels...).
// Unlike Split it consumes no state from any parent generator, so streams
// for different entities can be derived concurrently, in any order, and on
// any number of goroutines while producing identical sequences. Each label
// is passed through a full SplitMix64 finalization round before being
// folded in, so (1,2) and (2,1) — or (1) and (1,0) — yield unrelated
// streams.
func Derive(seed uint64, labels ...uint64) *RNG {
	s := mix64(seed ^ 0x6a09e667f3bcc909)
	for _, l := range labels {
		s = mix64(s ^ mix64(l+0x9e3779b97f4a7c15))
	}
	return New(s)
}

// HashString folds a string into a 64-bit label for Derive using FNV-1a.
// Machine and ticket identifiers are hashed this way so per-entity streams
// depend only on the entity's stable ID, never on slice positions.
func HashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// RNG is a xoshiro256** pseudo-random number generator. The zero value is
// not usable; construct one with New.
type RNG struct {
	s [4]uint64

	// spare/hasSpare cache the second variate produced by the polar
	// normal sampler in Norm.
	spare    float64
	hasSpare bool
}

// New returns a generator seeded from seed via SplitMix64, which guarantees
// a well-mixed non-zero internal state for any seed, including zero.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent substream labeled by label. Two substreams
// with different labels (or derived from generators in different states)
// produce statistically independent sequences.
func (r *RNG) Split(label uint64) *RNG {
	return New(r.Uint64() ^ (label * 0xd1342543de82ef95))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// OpenFloat64 returns a uniform value in (0, 1), never exactly zero, which
// is what logarithm-based samplers require.
func (r *RNG) OpenFloat64() float64 {
	for {
		v := r.Float64()
		if v > 0 {
			return v
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0, mirroring
// math/rand semantics, because a non-positive bound is a programming error.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := (-bound) % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aHi * bLo
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Norm returns a standard normal variate using the Marsaglia polar method.
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		m := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * m
		r.hasSpare = true
		return u * m
	}
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
func (r *RNG) Exp(rate float64) float64 {
	return -math.Log(r.OpenFloat64()) / rate
}

// Gamma returns a Gamma(shape, scale) variate (mean shape*scale) using the
// Marsaglia–Tsang squeeze method, with the Ahrens boost for shape < 1.
func (r *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("xrand: Gamma with non-positive parameter")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.OpenFloat64()
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.Norm()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.OpenFloat64()
		if u < 1-0.0331*x*x*x*x {
			return scale * d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return scale * d * v
		}
	}
}

// Weibull returns a Weibull(shape, scale) variate by inversion.
func (r *RNG) Weibull(shape, scale float64) float64 {
	return scale * math.Pow(-math.Log(r.OpenFloat64()), 1/shape)
}

// LogNormal returns exp(N(mu, sigma)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Norm())
}

// Poisson returns a Poisson(lambda) variate. Knuth multiplication for small
// lambda; normal approximation with continuity correction for large lambda,
// which is ample for event-count generation in the simulator.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	for {
		v := math.Round(lambda + math.Sqrt(lambda)*r.Norm())
		if v >= 0 {
			return int(v)
		}
	}
}

// Categorical returns an index sampled according to the given non-negative
// weights. It panics if all weights are zero or any is negative.
func (r *RNG) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("xrand: Categorical with negative or NaN weight")
		}
		total += w
	}
	if total <= 0 {
		panic("xrand: Categorical with zero total weight")
	}
	target := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Pareto returns a Pareto(xm, alpha) variate; used for long-tailed incident
// fan-out sizes.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	return xm / math.Pow(r.OpenFloat64(), 1/alpha)
}
