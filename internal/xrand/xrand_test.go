package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero-seeded generator produced duplicates: %d distinct", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	s1 := root.Split(1)
	s2 := root.Split(2)
	same := 0
	for i := 0; i < 200; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("substreams collide %d times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpenFloat64Positive(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		if v := r.OpenFloat64(); v <= 0 || v >= 1 {
			t.Fatalf("OpenFloat64 out of (0,1): %v", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(5)
	const n, iters = 10, 100000
	counts := make([]int, n)
	for i := 0; i < iters; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(iters) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d far from %f", i, c, want)
		}
	}
}

// moments checks a sampler's empirical mean and variance against theory.
func moments(t *testing.T, name string, sample func(*RNG) float64, wantMean, wantVar float64) {
	t.Helper()
	r := New(99)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := sample(r)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-wantMean) > 0.05*math.Max(1, math.Abs(wantMean)) {
		t.Errorf("%s: mean %.4f, want %.4f", name, mean, wantMean)
	}
	if math.Abs(variance-wantVar) > 0.10*math.Max(1, wantVar) {
		t.Errorf("%s: var %.4f, want %.4f", name, variance, wantVar)
	}
}

func TestNormMoments(t *testing.T) {
	moments(t, "norm", func(r *RNG) float64 { return r.Norm() }, 0, 1)
}

func TestExpMoments(t *testing.T) {
	moments(t, "exp", func(r *RNG) float64 { return r.Exp(2) }, 0.5, 0.25)
}

func TestGammaMoments(t *testing.T) {
	moments(t, "gamma(3,2)", func(r *RNG) float64 { return r.Gamma(3, 2) }, 6, 12)
	moments(t, "gamma(0.5,1)", func(r *RNG) float64 { return r.Gamma(0.5, 1) }, 0.5, 0.5)
}

func TestWeibullMoments(t *testing.T) {
	// Weibull(2, 1): mean = Γ(1.5) ≈ 0.8862, var = Γ(2) − Γ(1.5)² ≈ 0.2146.
	moments(t, "weibull(2,1)", func(r *RNG) float64 { return r.Weibull(2, 1) }, 0.8862, 0.2146)
}

func TestLogNormalMoments(t *testing.T) {
	// LogNormal(0, 0.5): mean = e^{0.125} ≈ 1.1331.
	mean := math.Exp(0.125)
	variance := (math.Exp(0.25) - 1) * math.Exp(0.25)
	moments(t, "lognormal(0,0.5)", func(r *RNG) float64 { return r.LogNormal(0, 0.5) }, mean, variance)
}

func TestPoissonMoments(t *testing.T) {
	moments(t, "poisson(4)", func(r *RNG) float64 { return float64(r.Poisson(4)) }, 4, 4)
	moments(t, "poisson(50)", func(r *RNG) float64 { return float64(r.Poisson(50)) }, 50, 50)
}

func TestPoissonZeroLambda(t *testing.T) {
	if got := New(1).Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
}

func TestGammaPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gamma(0, 1) did not panic")
		}
	}()
	New(1).Gamma(0, 1)
}

func TestCategorical(t *testing.T) {
	r := New(3)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const iters = 40000
	for i := 0; i < iters; i++ {
		counts[r.Categorical(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight category sampled %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("weight-3 vs weight-1 ratio %.2f, want ~3", ratio)
	}
}

func TestCategoricalPanics(t *testing.T) {
	for _, weights := range [][]float64{{0, 0}, {-1, 2}, {}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Categorical(%v) did not panic", weights)
				}
			}()
			New(1).Categorical(weights)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%50) + 1
		p := New(seed).Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(9)
	data := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	r.Shuffle(len(data), func(i, j int) { data[i], data[j] = data[j], data[i] })
	for _, v := range data {
		sum += v
	}
	if sum != 28 {
		t.Fatalf("shuffle lost elements: sum %d", sum)
	}
}

func TestParetoAboveMinimum(t *testing.T) {
	r := New(4)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto(2, 1.5) produced %v < xm", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(17)
	hits := 0
	const iters = 100000
	for i := 0; i < iters; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / iters
	if p < 0.29 || p > 0.31 {
		t.Fatalf("Bool(0.3) hit rate %.4f", p)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkGamma(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Gamma(0.5, 2)
	}
}
