// Package report renders the analysis results as the paper's tables and
// figure series: fixed-width ASCII tables for Tables II–VII and CSV-like
// series for the figures, suitable for terminals, logs and regression
// records (EXPERIMENTS.md).
package report

import (
	"fmt"
	"strings"
)

// Table is a generic fixed-width table builder.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := len(t.header)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float compactly (4 significant digits).
func F(v float64) string { return fmt.Sprintf("%.4g", v) }

// Pct formats a fraction as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// D formats an integer.
func D(v int) string { return fmt.Sprintf("%d", v) }
