package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"failscope/internal/core"
	"failscope/internal/stats"
)

// CSV export for the figure panels, so the series can be re-plotted with
// external tooling.

// WriteBinnedRatesCSV writes one Fig. 7/8/9/10 panel as CSV: one row per
// bin with lo, hi, servers, failures, mean/p25/p75 rates.
func WriteBinnedRatesCSV(w io.Writer, br core.BinnedRates) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"lo", "hi", "servers", "failures", "rate_mean", "rate_p25", "rate_p75"}); err != nil {
		return fmt.Errorf("report: csv header: %w", err)
	}
	for _, b := range br.Bins {
		rec := []string{
			formatFloat(b.Lo), formatFloat(b.Hi),
			strconv.Itoa(b.Servers), strconv.Itoa(b.Failures),
			formatFloat(b.Rate.Mean), formatFloat(b.Rate.P25), formatFloat(b.Rate.P75),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("report: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCDFCSV writes ECDF points (x, F(x)) as CSV, for Figs. 3/4/6 curves.
func WriteCDFCSV(w io.Writer, points []stats.Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"x", "cdf"}); err != nil {
		return fmt.Errorf("report: csv header: %w", err)
	}
	for _, p := range points {
		if err := cw.Write([]string{formatFloat(p.X), formatFloat(p.Y)}); err != nil {
			return fmt.Errorf("report: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteHazardCSV writes the age-hazard series as CSV.
func WriteHazardCSV(w io.Writer, res core.HazardResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"age_lo_days", "age_hi_days", "failures", "exposure_vm_years", "hazard_per_vm_year"}); err != nil {
		return fmt.Errorf("report: csv header: %w", err)
	}
	for _, b := range res.Bins {
		rec := []string{
			formatFloat(b.LoDays), formatFloat(b.HiDays),
			strconv.Itoa(b.Failures), formatFloat(b.ExposureYears), formatFloat(b.Rate),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("report: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
