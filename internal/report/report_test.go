package report

import (
	"strings"
	"testing"

	"failscope/internal/core"
	"failscope/internal/model"
	"failscope/internal/stats"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "a", "bb", "ccc")
	tb.AddRow("1", "2", "3")
	tb.AddRow("longer") // short row padded
	out := tb.String()
	if !strings.Contains(out, "Title") || !strings.Contains(out, "bb") {
		t.Fatalf("missing header content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestFormatters(t *testing.T) {
	if F(0.00123456) != "0.001235" {
		t.Errorf("F = %q", F(0.00123456))
	}
	if Pct(0.5) != "50.0%" {
		t.Errorf("Pct = %q", Pct(0.5))
	}
	if D(42) != "42" {
		t.Errorf("D = %q", D(42))
	}
}

func TestDatasetStatsRender(t *testing.T) {
	rows := []core.SystemStats{
		{System: model.SysI, PMs: 10, VMs: 20, AllTickets: 100, CrashTickets: 5, CrashShare: 0.05, PMShare: 0.6, VMShare: 0.4},
		{PMs: 10, VMs: 20, AllTickets: 100, CrashTickets: 5, CrashShare: 0.05},
	}
	out := DatasetStats(rows)
	for _, want := range []string{"Table II", "Sys I", "Total", "5.0%", "60.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWeeklyRatesRender(t *testing.T) {
	rows := []core.RateSummary{
		{Kind: model.PM, System: 0, Servers: 100, Summary: stats.Summary{Mean: 0.005, P25: 0.003, P75: 0.007, N: 52}},
	}
	out := WeeklyRates(rows)
	if !strings.Contains(out, "PM All") || !strings.Contains(out, "0.005") {
		t.Errorf("bad render:\n%s", out)
	}
}

func TestSpatialRender(t *testing.T) {
	out := Spatial(core.SpatialResult{
		Incidents: 100, ShareOne: 0.78, ShareTwoPlus: 0.22,
		PMZero: 0.62, PMOne: 0.30, PMTwoPlus: 0.08, DependentPMShare: 0.16,
		VMZero: 0.32, VMOne: 0.57, VMTwoPlus: 0.11, DependentVMShare: 0.26,
		MaxServers: 34, MaxServersClass: model.ClassOther,
	})
	for _, want := range []string{"Table VI", "78.0%", "VM only", "26.0%", "34"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestBinnedRatesRender(t *testing.T) {
	br := core.BinnedRates{
		Kind: model.VM, Attribute: "cpu",
		Bins: []core.AttrBin{
			{Label: "[1,2)", Lo: 1, Hi: 2, Servers: 10, Failures: 3, Rate: stats.Summary{Mean: 0.002, N: 52}},
		},
		IncrementFactor: 2.5, Spearman: 0.8,
	}
	out := BinnedRates("Fig. 7 — cpu", br)
	for _, want := range []string{"Fig. 7", "[1,2)", "2.5x", "+0.80"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSysNameAll(t *testing.T) {
	if sysName(0) != "All" || sysName(model.SysIII) != "Sys III" {
		t.Error("sysName wrong")
	}
}

func TestWriteBinnedRatesCSV(t *testing.T) {
	br := core.BinnedRates{Bins: []core.AttrBin{
		{Lo: 1, Hi: 2, Servers: 10, Failures: 3, Rate: stats.Summary{Mean: 0.002, P25: 0.001, P75: 0.003}},
	}}
	var buf strings.Builder
	if err := WriteBinnedRatesCSV(&buf, br); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"lo,hi,servers", "1,2,10,3,0.002"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}

func TestWriteCDFCSV(t *testing.T) {
	var buf strings.Builder
	if err := WriteCDFCSV(&buf, []stats.Point{{X: 1, Y: 0.5}, {X: 2, Y: 1}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1,0.5") {
		t.Errorf("bad CSV: %q", buf.String())
	}
}

func TestWriteHazardCSV(t *testing.T) {
	res := core.HazardResult{Bins: []core.HazardBin{
		{LoDays: 0, HiDays: 30, Failures: 2, ExposureYears: 10, Rate: 0.2},
	}}
	var buf strings.Builder
	if err := WriteHazardCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0,30,2,10,0.2") {
		t.Errorf("bad CSV: %q", buf.String())
	}
}

func TestHazardRender(t *testing.T) {
	res := core.HazardResult{
		EligibleVMs: 5,
		Bins: []core.HazardBin{
			{LoDays: 0, HiDays: 30, Failures: 2, ExposureYears: 10, Rate: 0.2},
		},
		TrendSlope: 0.01, BathtubScore: 0.9,
	}
	out := Hazard(res)
	for _, want := range []string{"Age hazard", "[0,30)", "0.2", "bathtub score"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
