package report

import (
	"strings"
	"testing"

	"failscope/internal/core"
	"failscope/internal/dist"
	"failscope/internal/model"
	"failscope/internal/stats"
)

// sampleReport builds a minimal but fully populated analysis report so
// every renderer can be exercised directly.
func sampleReport(t *testing.T) *core.Report {
	t.Helper()
	gaps := []float64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89}
	ecdf, err := stats.NewECDF(gaps)
	if err != nil {
		t.Fatal(err)
	}
	fits := dist.FitAll(gaps)
	ifr := core.InterFailureResult{
		Kind: model.PM, GapsDays: gaps, Summary: stats.Summarize(gaps),
		ECDF: ecdf, Fits: fits, FailingServers: 12, SingleFailureServers: 7,
	}
	if best, ok := fits.Best(); ok {
		ifr.KS = dist.KSTest(best.Dist, gaps)
	}
	rep := core.RepairResult{
		Kind: model.VM, Hours: gaps, Summary: stats.Summarize(gaps),
		ECDF: ecdf, Fits: fits, RebootShare: 0.3,
	}
	br := core.BinnedRates{
		Kind: model.VM, Attribute: "cpu",
		Bins: []core.AttrBin{{Label: "[1,2)", Lo: 1, Hi: 2, Servers: 9, Failures: 2,
			Rate: stats.Summary{Mean: 0.004, N: 52}}},
		IncrementFactor: 2, Spearman: 0.5,
	}
	return &core.Report{
		DatasetStats: []core.SystemStats{
			{System: model.SysI, PMs: 5, VMs: 9, AllTickets: 70, CrashTickets: 7, CrashShare: 0.1, PMShare: 0.6, VMShare: 0.4},
			{PMs: 5, VMs: 9, AllTickets: 70, CrashTickets: 7, CrashShare: 0.1, PMShare: 0.6, VMShare: 0.4},
		},
		ClassDistribution: []core.ClassShare{
			{System: 0, Class: model.ClassSoftware, Count: 4, Share: 0.55},
			{System: model.SysI, Class: model.ClassSoftware, Count: 4, Share: 0.55},
		},
		WeeklyRates: []core.RateSummary{
			{Kind: model.PM, System: 0, Servers: 5, Summary: stats.Summary{Mean: 0.005, N: 52}},
		},
		InterFailurePM: ifr,
		InterFailureVM: ifr,
		InterFailureClass: []core.ClassGapStats{
			{Class: model.ClassSoftware, OperatorMean: 2.8, OperatorMedian: 0.3, ServerMean: 21.6, ServerMedian: 8},
		},
		RepairPM: rep,
		RepairVM: rep,
		RepairClass: []core.ClassRepairStats{
			{Class: model.ClassPower, Mean: 12.2, Median: 0.83, CoefficientOfVariation: 2.5, N: 10},
		},
		RecurrencePM:    core.RecurrenceResult{Kind: model.PM, WithinDay: 0.1, WithinWeek: 0.2, WithinMonth: 0.3},
		RecurrenceVM:    core.RecurrenceResult{Kind: model.VM, WithinDay: 0.05, WithinWeek: 0.15, WithinMonth: 0.25},
		RandomRecurrent: []core.RandomVsRecurrent{{Kind: model.PM, System: 0, Random: 0.006, Recurrent: 0.22, Ratio: 36.7}},
		Spatial: core.SpatialResult{
			Incidents: 100, ShareOne: 0.78, ShareTwoPlus: 0.22,
			MaxServers: 34, MaxServersClass: model.ClassOther,
		},
		SpatialClass: []core.ClassSpatialStats{{Class: model.ClassPower, Incidents: 9, Mean: 2.7, Max: 21}},
		Age: core.AgeResult{
			AgesDays: gaps, ECDF: ecdf, KSUniform: 0.12, MaxAgeDays: 89,
			TrendSlope: 0.001, BathtubScore: 0.8, EligibleVMs: 9, TotalVMs: 12,
		},
		AgeHazard: core.HazardResult{
			Bins:        []core.HazardBin{{LoDays: 0, HiDays: 60, Failures: 3, ExposureYears: 12, Rate: 0.25}},
			EligibleVMs: 9,
		},
		FleetSeries: core.WeeklySeries{
			Counts: []int{1, 2, 3}, IndexOfDispersion: 2.5,
			Autocorrelation: []float64{0.3, 0.1},
		},
		ClassRecurrences: []core.ClassRecurrence{
			{Class: model.ClassSoftware, Triggers: 40, AnyWithinWeek: 0.2, SameWithinWeek: 0.1},
		},
		Capacity:         map[string]core.BinnedRates{"vm_cpu": br},
		Usage:            map[string]core.BinnedRates{"vm_cpuutil": br},
		ConsolidationFig: br,
		OnOffFig:         br,
	}
}

func TestAllRenderersProduceOutput(t *testing.T) {
	r := sampleReport(t)
	sections := map[string]string{
		"ClassDistribution":   ClassDistribution(r.ClassDistribution),
		"InterFailure":        InterFailure(r.InterFailurePM),
		"InterFailureByClass": InterFailureByClass(r.InterFailureClass),
		"Repair":              Repair(r.RepairPM),
		"RepairByClass":       RepairByClass(r.RepairClass),
		"Recurrence":          Recurrence(r.RecurrencePM, r.RecurrenceVM),
		"RandomVsRecurrent":   RandomVsRecurrent(r.RandomRecurrent),
		"SpatialByClass":      SpatialByClass(r.SpatialClass),
		"Age":                 Age(r.Age),
		"FleetSeries":         FleetSeries(r.FleetSeries),
		"ClassRecurrences":    ClassRecurrences(r.ClassRecurrences),
	}
	for name, out := range sections {
		if len(strings.TrimSpace(out)) == 0 {
			t.Errorf("%s produced empty output", name)
		}
	}
	if !strings.Contains(sections["InterFailure"], "KS vs best fit") {
		t.Error("InterFailure missing the KS line")
	}
	if !strings.Contains(sections["Recurrence"], "within week") {
		t.Error("Recurrence missing columns")
	}
	if !strings.Contains(sections["RandomVsRecurrent"], "36.7x") {
		t.Error("RandomVsRecurrent missing the ratio")
	}
	if !strings.Contains(sections["FleetSeries"], "lag1=+0.30") {
		t.Errorf("FleetSeries missing autocorrelation:\n%s", sections["FleetSeries"])
	}
}

func TestRandomVsRecurrentNA(t *testing.T) {
	out := RandomVsRecurrent([]core.RandomVsRecurrent{
		{Kind: model.VM, System: model.SysII, Random: 0, Recurrent: 0, Ratio: 0},
	})
	if !strings.Contains(out, "N.A.") {
		t.Errorf("zero ratio should render as N.A.:\n%s", out)
	}
}

func TestFullReportContainsAllSections(t *testing.T) {
	out := Full(sampleReport(t))
	for _, want := range []string{
		"Table II", "Fig. 1", "Fig. 2", "Fig. 3", "Table III", "Fig. 4",
		"Table IV", "Fig. 5", "Table V", "Table VI", "Table VII", "Fig. 6",
		"Age hazard", "Fleet-level", "Per-class recurrence",
		"Fig. 7", "Fig. 8", "Fig. 9", "Fig. 10",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Full report missing %q", want)
		}
	}
}

func TestProfileRender(t *testing.T) {
	p := core.SystemProfile{
		System: model.SysIII, PMs: 10, VMs: 20, AllTickets: 500, CrashTickets: 12,
		PMRate: stats.Summary{Mean: 0.01, N: 52}, VMRate: stats.Summary{Mean: 0.004, N: 52},
		ClassShares:   map[model.FailureClass]float64{model.ClassSoftware: 0.4, model.ClassOther: 0.6},
		DominantClass: model.ClassSoftware,
		PMRepair:      stats.Summary{Mean: 30, N: 5}, VMRepair: stats.Summary{Mean: 15, N: 7},
		PMRecurrence: 0.2, VMRecurrence: 0.1,
		TopFailingServers: []core.ServerFailures{{ID: "vm-1", Kind: model.VM, Failures: 4}},
	}
	out := Profile(p)
	for _, want := range []string{"Sys III", "dominant named failure class: SW", "vm-1", "4 failures", "worst offenders"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
