package report

import (
	"fmt"
	"strings"

	"failscope/internal/fidelity"
)

// Fidelity renders the reproduction-fidelity scoreboard: the ground-truth
// quality scores followed by the paper-band verdict table.
func Fidelity(sb *fidelity.Scoreboard) string {
	if sb == nil {
		return "Fidelity scoreboard: not computed\n"
	}
	var b strings.Builder
	b.WriteString(fidelityQuality(sb.Quality))

	t := NewTable(
		fmt.Sprintf("Fidelity — paper-expected bands (%d pass, %d warn, %d fail, %d skip)",
			sb.Passed, sb.Warned, sb.Failed, sb.Skipped),
		"band", "verdict", "value", "pass range", "paper expectation")
	for _, band := range sb.Bands {
		value := F(band.Value)
		if band.Unit != "" {
			value += " " + band.Unit
		}
		if band.Verdict == fidelity.VerdictSkip {
			value = "-"
			if band.Note != "" {
				value = band.Note
			}
		}
		t.AddRow(band.Name, strings.ToUpper(string(band.Verdict)), value,
			band.Pass.String(), band.Paper)
	}
	b.WriteString(t.String())
	return b.String()
}

// fidelityQuality renders the ground-truth quality block.
func fidelityQuality(q *fidelity.Quality) string {
	if q == nil {
		return ""
	}
	var b strings.Builder
	if q.ClassifierRan {
		t := NewTable("Fidelity — ground-truth quality (§III.A pipeline vs simulator truth)",
			"score", "value")
		t.AddRow("crash-ticket precision", Pct(q.CrashPrecision))
		t.AddRow("crash-ticket recall", Pct(q.CrashRecall))
		t.AddRow("crash-ticket F1", Pct(q.CrashF1))
		t.AddRow("crash-class accuracy", Pct(q.CrashClassAccuracy))
		t.AddRow("overall test accuracy", Pct(q.OverallAccuracy))
		t.AddRow("stage-1 cluster purity", Pct(q.Stage1Purity))
		t.AddRow("stage-2 cluster purity", Pct(q.Stage2Purity))
		t.AddRow("train / test docs", fmt.Sprintf("%d / %d", q.TrainDocs, q.TestDocs))
		b.WriteString(t.String())

		if len(q.PerClass) > 0 {
			ct := NewTable("Fidelity — six-class confusion summary (test set)",
				"class", "truth", "predicted", "precision", "recall", "F1")
			for _, cs := range q.PerClass {
				ct.AddRow(cs.Class, D(cs.Truth), D(cs.Predicted),
					Pct(cs.Precision), Pct(cs.Recall), Pct(cs.F1))
			}
			b.WriteString(ct.String())
		}
	} else {
		b.WriteString("Fidelity — classification did not run (no ground-truth classifier scores)\n\n")
	}

	if q.Drops != nil {
		d := q.Drops
		t := NewTable("Fidelity — sanitization-drop accounting", "stream", "value")
		t.AddRow("tickets generated", fmt.Sprintf("%d", d.TicketsGenerated))
		t.AddRow("tickets in window", fmt.Sprintf("%d", d.TicketsInWindow))
		t.AddRow("tickets window-dropped", fmt.Sprintf("%d", d.TicketsWindowDropped))
		t.AddRow("monitor samples kept", fmt.Sprintf("%d", d.MonitorSamples))
		t.AddRow("monitor samples dropped", fmt.Sprintf("%d", d.MonitorSamplesDropped))
		t.AddRow("accounting consistent", fmt.Sprintf("%v", d.Consistent))
		if total := q.JoinHits + q.JoinMisses; total > 0 {
			t.AddRow("monitoring-join coverage",
				fmt.Sprintf("%s (%d/%d machines)", Pct(q.JoinCoverage), q.JoinHits, total))
		}
		b.WriteString(t.String())
	}
	return b.String()
}
