package report

import (
	"fmt"
	"sort"
	"strings"

	"failscope/internal/core"
	"failscope/internal/model"
)

// sysName renders the "All" pseudo-system.
func sysName(s model.System) string {
	if s == 0 {
		return "All"
	}
	return s.String()
}

// DatasetStats renders Table II.
func DatasetStats(rows []core.SystemStats) string {
	t := NewTable("Table II — dataset statistics",
		"", "PMs", "VMs", "All tickets", "% crash", "% crash (PMs)", "% crash (VMs)")
	for _, s := range rows {
		name := sysName(s.System)
		if s.System == 0 {
			name = "Total"
		}
		t.AddRow(name, D(s.PMs), D(s.VMs), D(s.AllTickets),
			Pct(s.CrashShare), Pct(s.PMShare), Pct(s.VMShare))
	}
	return t.String()
}

// ClassDistribution renders Fig. 1 as a table of per-system class shares.
func ClassDistribution(rows []core.ClassShare) string {
	bySystem := make(map[model.System]map[model.FailureClass]core.ClassShare)
	var systems []model.System
	for _, r := range rows {
		if bySystem[r.System] == nil {
			bySystem[r.System] = make(map[model.FailureClass]core.ClassShare)
			systems = append(systems, r.System)
		}
		bySystem[r.System][r.Class] = r
	}
	sort.Slice(systems, func(i, j int) bool { return systems[i] < systems[j] })
	header := []string{""}
	for _, c := range model.Classes() {
		header = append(header, c.String())
	}
	t := NewTable("Fig. 1 — ticket distribution across failure classes (share of crash tickets)", header...)
	for _, sys := range systems {
		row := []string{sysName(sys)}
		for _, c := range model.Classes() {
			row = append(row, Pct(bySystem[sys][c].Share))
		}
		t.AddRow(row...)
	}
	return t.String()
}

// WeeklyRates renders Fig. 2.
func WeeklyRates(rows []core.RateSummary) string {
	t := NewTable("Fig. 2 — weekly failure rates (mean [p25, p75])",
		"population", "servers", "mean", "p25", "p75")
	for _, r := range rows {
		label := fmt.Sprintf("%s %s", r.Kind, sysName(r.System))
		t.AddRow(label, D(r.Servers), F(r.Summary.Mean), F(r.Summary.P25), F(r.Summary.P75))
	}
	return t.String()
}

// InterFailure renders Fig. 3 for one kind: summary, fit ranking and a
// compact CDF.
func InterFailure(res core.InterFailureResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3 — inter-failure times (%s): n=%d mean=%.1f d median=%.1f d\n",
		res.Kind, res.Summary.N, res.Summary.Mean, res.Summary.Median)
	fmt.Fprintf(&b, "  servers failing once: %d of %d failing servers\n",
		res.SingleFailureServers, res.FailingServers)
	if res.KS.N > 0 {
		fmt.Fprintf(&b, "  KS vs best fit: D=%.3f p=%.3f\n", res.KS.Statistic, res.KS.PValue)
	}
	for i, fr := range res.Fits.Results {
		marker := "  "
		if i == 0 {
			marker = "* "
		}
		fmt.Fprintf(&b, "  %s%-12s logL=%.1f AIC=%.1f %v\n", marker, fr.Dist.Name(), fr.LogLikelihood, fr.AIC, fr.Dist)
	}
	if res.ECDF != nil {
		b.WriteString("  CDF: ")
		for _, p := range res.ECDF.Points(9) {
			fmt.Fprintf(&b, "(%.1fd, %.2f) ", p.X, p.Y)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// InterFailureByClass renders Table III.
func InterFailureByClass(rows []core.ClassGapStats) string {
	header := []string{""}
	for _, r := range rows {
		header = append(header, r.Class.String())
	}
	t := NewTable("Table III — inter-failure times by class [days]", header...)
	add := func(label string, get func(core.ClassGapStats) float64) {
		row := []string{label}
		for _, r := range rows {
			row = append(row, F(get(r)))
		}
		t.AddRow(row...)
	}
	add("operator mean", func(r core.ClassGapStats) float64 { return r.OperatorMean })
	add("operator median", func(r core.ClassGapStats) float64 { return r.OperatorMedian })
	add("server mean", func(r core.ClassGapStats) float64 { return r.ServerMean })
	add("server median", func(r core.ClassGapStats) float64 { return r.ServerMedian })
	return t.String()
}

// Repair renders Fig. 4 for one kind.
func Repair(res core.RepairResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4 — repair times (%s): n=%d mean=%.1f h median=%.1f h reboot share=%.0f%%\n",
		res.Kind, res.Summary.N, res.Summary.Mean, res.Summary.Median, 100*res.RebootShare)
	if res.KS.N > 0 {
		fmt.Fprintf(&b, "  KS vs best fit: D=%.3f p=%.3f\n", res.KS.Statistic, res.KS.PValue)
	}
	for i, fr := range res.Fits.Results {
		marker := "  "
		if i == 0 {
			marker = "* "
		}
		fmt.Fprintf(&b, "  %s%-12s logL=%.1f AIC=%.1f %v\n", marker, fr.Dist.Name(), fr.LogLikelihood, fr.AIC, fr.Dist)
	}
	return b.String()
}

// RepairByClass renders Table IV.
func RepairByClass(rows []core.ClassRepairStats) string {
	header := []string{""}
	for _, r := range rows {
		header = append(header, r.Class.String())
	}
	t := NewTable("Table IV — repair times by class [hours]", header...)
	addF := func(label string, get func(core.ClassRepairStats) float64) {
		row := []string{label}
		for _, r := range rows {
			row = append(row, F(get(r)))
		}
		t.AddRow(row...)
	}
	addF("mean", func(r core.ClassRepairStats) float64 { return r.Mean })
	addF("median", func(r core.ClassRepairStats) float64 { return r.Median })
	addF("CoV", func(r core.ClassRepairStats) float64 { return r.CoefficientOfVariation })
	return t.String()
}

// Recurrence renders Fig. 5 for both kinds.
func Recurrence(pm, vm core.RecurrenceResult) string {
	t := NewTable("Fig. 5 — recurrent failure probabilities",
		"kind", "within day", "within week", "within month")
	t.AddRow("PM", F(pm.WithinDay), F(pm.WithinWeek), F(pm.WithinMonth))
	t.AddRow("VM", F(vm.WithinDay), F(vm.WithinWeek), F(vm.WithinMonth))
	return t.String()
}

// RandomVsRecurrent renders Table V.
func RandomVsRecurrent(rows []core.RandomVsRecurrent) string {
	var b strings.Builder
	for _, kind := range []model.MachineKind{model.PM, model.VM} {
		t := NewTable(fmt.Sprintf("Table V — weekly random vs recurrent (%ss)", kind),
			"", "random", "recurrent", "ratio")
		for _, r := range rows {
			if r.Kind != kind {
				continue
			}
			ratio := "N.A."
			if r.Ratio > 0 {
				ratio = fmt.Sprintf("%.1fx", r.Ratio)
			}
			t.AddRow(sysName(r.System), F(r.Random), F(r.Recurrent), ratio)
		}
		b.WriteString(t.String())
	}
	return b.String()
}

// Spatial renders Table VI.
func Spatial(res core.SpatialResult) string {
	t := NewTable(fmt.Sprintf("Table VI — incident fan-out (%d incidents, max %d servers in one %v incident)",
		res.Incidents, res.MaxServers, res.MaxServersClass),
		"view", "0", "1", ">=2", "dependent share")
	t.AddRow("PM and VM", Pct(0), Pct(res.ShareOne), Pct(res.ShareTwoPlus), "")
	t.AddRow("PM only", Pct(res.PMZero), Pct(res.PMOne), Pct(res.PMTwoPlus), Pct(res.DependentPMShare))
	t.AddRow("VM only", Pct(res.VMZero), Pct(res.VMOne), Pct(res.VMTwoPlus), Pct(res.DependentVMShare))
	return t.String()
}

// SpatialByClass renders Table VII.
func SpatialByClass(rows []core.ClassSpatialStats) string {
	header := []string{""}
	for _, r := range rows {
		header = append(header, r.Class.String())
	}
	t := NewTable("Table VII — servers involved per incident, by class", header...)
	meanRow := []string{"mean"}
	maxRow := []string{"max"}
	for _, r := range rows {
		meanRow = append(meanRow, F(r.Mean))
		maxRow = append(maxRow, D(r.Max))
	}
	t.AddRow(meanRow...)
	t.AddRow(maxRow...)
	return t.String()
}

// Age renders Fig. 6.
func Age(res core.AgeResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6 — VM failures vs age: n=%d failures on %d/%d age-eligible VMs\n",
		len(res.AgesDays), res.EligibleVMs, res.TotalVMs)
	fmt.Fprintf(&b, "  KS distance to uniform: %.3f (diagonal CDF when small)\n", res.KSUniform)
	fmt.Fprintf(&b, "  density trend slope: %+.5f per bin; bathtub score: %.2f (bathtub if >> 1)\n",
		res.TrendSlope, res.BathtubScore)
	if res.Histogram != nil {
		b.WriteString("  PDF: ")
		for _, d := range res.Histogram.Densities() {
			fmt.Fprintf(&b, "%.3f ", d)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Hazard renders the exposure-normalized age-hazard extension.
func Hazard(res core.HazardResult) string {
	t := NewTable(fmt.Sprintf("Age hazard — failures per VM-year of exposure (%d age-known VMs)", res.EligibleVMs),
		"age [days]", "failures", "exposure [VM-yr]", "hazard")
	for _, b := range res.Bins {
		t.AddRow(fmt.Sprintf("[%g,%g)", b.LoDays, b.HiDays),
			D(b.Failures), F(b.ExposureYears), F(b.Rate))
	}
	return t.String() + fmt.Sprintf("trend slope: %+.4f per bin; bathtub score: %.2f\n",
		res.TrendSlope, res.BathtubScore)
}

// Profile renders a per-system operator one-pager.
func Profile(p core.SystemProfile) string {
	var b strings.Builder
	fmt.Fprintf(&b, "System profile — %s\n", p.System)
	fmt.Fprintf(&b, "  machines: %d PMs, %d VMs; tickets: %d (%d crashes)\n",
		p.PMs, p.VMs, p.AllTickets, p.CrashTickets)
	fmt.Fprintf(&b, "  weekly failure rate: PM %s, VM %s\n", F(p.PMRate.Mean), F(p.VMRate.Mean))
	fmt.Fprintf(&b, "  mean repair: PM %.1f h, VM %.1f h\n", p.PMRepair.Mean, p.VMRepair.Mean)
	fmt.Fprintf(&b, "  weekly recurrence: PM %s, VM %s\n", F(p.PMRecurrence), F(p.VMRecurrence))
	if p.DominantClass != 0 {
		fmt.Fprintf(&b, "  dominant named failure class: %v (%.0f%% of crashes)\n",
			p.DominantClass, 100*p.ClassShares[p.DominantClass])
	}
	b.WriteString("  class mix:")
	for _, class := range model.Classes() {
		fmt.Fprintf(&b, " %v=%s", class, Pct(p.ClassShares[class]))
	}
	b.WriteByte('\n')
	if len(p.TopFailingServers) > 0 {
		b.WriteString("  worst offenders:\n")
		for _, s := range p.TopFailingServers {
			fmt.Fprintf(&b, "    %-14s %-3s %d failures\n", s.ID, s.Kind, s.Failures)
		}
	}
	return b.String()
}

// FleetSeries renders the fleet-level burstiness extension.
func FleetSeries(res core.WeeklySeries) string {
	var b strings.Builder
	b.WriteString("Fleet-level weekly failure counts — temporal clustering beyond single servers\n")
	fmt.Fprintf(&b, "  index of dispersion (Var/Mean; Poisson = 1): %.2f\n", res.IndexOfDispersion)
	b.WriteString("  autocorrelation:")
	for lag, ac := range res.Autocorrelation {
		fmt.Fprintf(&b, " lag%d=%+.2f", lag+1, ac)
	}
	b.WriteByte('\n')
	return b.String()
}

// ClassRecurrences renders the per-class recurrence extension.
func ClassRecurrences(rows []core.ClassRecurrence) string {
	t := NewTable("Per-class recurrence — P(follow-up within a week | failure of class)",
		"class", "triggers", "any class", "same class")
	for _, r := range rows {
		t.AddRow(r.Class.String(), D(r.Triggers), F(r.AnyWithinWeek), F(r.SameWithinWeek))
	}
	return t.String()
}

// BinnedRates renders one Fig. 7/8/9/10 panel.
func BinnedRates(title string, br core.BinnedRates) string {
	t := NewTable(title, "bin", "servers", "failures", "rate mean", "p25", "p75")
	for _, b := range br.Bins {
		t.AddRow(b.Label, D(b.Servers), D(b.Failures), F(b.Rate.Mean), F(b.Rate.P25), F(b.Rate.P75))
	}
	s := t.String()
	return s + fmt.Sprintf("increment factor: %.1fx; Spearman trend: %+.2f\n", br.IncrementFactor, br.Spearman)
}

// Full renders the complete report in paper order.
func Full(r *core.Report) string {
	var b strings.Builder
	sections := []string{
		DatasetStats(r.DatasetStats),
		ClassDistribution(r.ClassDistribution),
		WeeklyRates(r.WeeklyRates),
		InterFailure(r.InterFailurePM),
		InterFailure(r.InterFailureVM),
		InterFailureByClass(r.InterFailureClass),
		Repair(r.RepairPM),
		Repair(r.RepairVM),
		RepairByClass(r.RepairClass),
		Recurrence(r.RecurrencePM, r.RecurrenceVM),
		RandomVsRecurrent(r.RandomRecurrent),
		Spatial(r.Spatial),
		SpatialByClass(r.SpatialClass),
		Age(r.Age),
		Hazard(r.AgeHazard),
		FleetSeries(r.FleetSeries),
		ClassRecurrences(r.ClassRecurrences),
	}
	for _, key := range []string{"pm_cpu", "vm_cpu", "pm_mem", "vm_mem", "vm_diskcap", "vm_diskcount"} {
		if br, ok := r.Capacity[key]; ok {
			sections = append(sections, BinnedRates("Fig. 7 — weekly failure rate vs "+key, br))
		}
	}
	for _, key := range []string{"pm_cpuutil", "vm_cpuutil", "pm_memutil", "vm_memutil", "vm_diskutil", "vm_net"} {
		if br, ok := r.Usage[key]; ok {
			sections = append(sections, BinnedRates("Fig. 8 — weekly failure rate vs "+key, br))
		}
	}
	sections = append(sections,
		BinnedRates("Fig. 9 — weekly failure rate vs consolidation level", r.ConsolidationFig),
		BinnedRates("Fig. 10 — weekly failure rate vs on/off per month", r.OnOffFig),
	)
	for _, s := range sections {
		b.WriteString(s)
		b.WriteByte('\n')
	}
	return b.String()
}
