package report

import (
	"fmt"
	"strings"

	"failscope/internal/detect"
	"failscope/internal/fidelity"
)

// Detection renders the online-detection scoreboard: the detector's
// confirmation accounting, the lead-time distribution and the calibrated
// band verdicts, in the Fidelity table style.
func Detection(snap *detect.Snapshot, sb *fidelity.Scoreboard) string {
	if snap == nil {
		return "Detection scoreboard: not computed\n"
	}
	var b strings.Builder

	t := NewTable("Online detection — alerts vs ground truth", "measure", "value")
	t.AddRow("machines tracked", D(snap.Machines))
	t.AddRow("crash tickets seen", fmt.Sprintf("%d", snap.CrashTickets))
	t.AddRow("alerts raised", fmt.Sprintf("%d (%d anomaly)", snap.Raised, snap.RaisedAnomaly))
	t.AddRow("confirmed (crash within horizon)", fmt.Sprintf("%d", snap.Confirmed))
	t.AddRow("expired (false alarms)", fmt.Sprintf("%d", snap.Expired))
	t.AddRow("still active (censored)", D(snap.ActiveCount))
	t.AddRow("horizon", fmt.Sprintf("%s days", F(snap.HorizonDays)))
	if snap.Confirmed > 0 {
		t.AddRow("lead time mean / p50 / p95",
			fmt.Sprintf("%s / %s / %s days", F(snap.LeadDaysMean), F(snap.LeadDaysP50), F(snap.LeadDaysP95)))
	}
	b.WriteString(t.String())

	if sb != nil {
		bt := NewTable(
			fmt.Sprintf("Detection — calibrated bands (%d pass, %d warn, %d fail, %d skip)",
				sb.Passed, sb.Warned, sb.Failed, sb.Skipped),
			"band", "verdict", "value", "pass range", "expectation")
		for _, band := range sb.Bands {
			value := F(band.Value)
			if band.Unit != "" {
				value += " " + band.Unit
			}
			if band.Verdict == fidelity.VerdictSkip {
				value = "-"
				if band.Note != "" {
					value = band.Note
				}
			}
			bt.AddRow(band.Name, strings.ToUpper(string(band.Verdict)), value,
				band.Pass.String(), band.Paper)
		}
		b.WriteString(bt.String())
	}
	return b.String()
}
