package durable

import (
	"testing"

	"failscope/internal/stream"
)

// benchBatch is a representative ingest batch: 5 tickets, as testBatches
// produces them.
func benchBatch() []stream.Event {
	return testBatches(2)[1]
}

// BenchmarkWALAppend measures the journal hot path: encode + frame +
// buffered write, with the group-commit fsync amortized every 64 batches
// (a plausible group size under concurrent ingest).
func BenchmarkWALAppend(b *testing.B) {
	st, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	batch := benchBatch()
	seq := int64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Append(seq, batch); err != nil {
			b.Fatal(err)
		}
		seq += int64(len(batch))
		if i%64 == 63 {
			if err := st.Sync(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRecovery measures a full boot-time recovery: checkpoint
// restore plus WAL tail replay over a directory holding 200 batches with
// a checkpoint at the midpoint.
func BenchmarkRecovery(b *testing.B) {
	dir := b.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := stream.NewEngine(testConfig())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := st.Recover(eng); err != nil {
		b.Fatal(err)
	}
	eng.SetJournal(st)
	for i, batch := range testBatches(200) {
		if err := eng.Apply(batch); err != nil {
			b.Fatal(err)
		}
		if i == 100 {
			if _, err := st.Checkpoint(eng); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		fresh, err := stream.NewEngine(testConfig())
		if err != nil {
			b.Fatal(err)
		}
		info, err := st.Recover(fresh)
		if err != nil {
			b.Fatal(err)
		}
		if info.Seq == 0 {
			b.Fatal("recovered nothing")
		}
	}
}
