package durable

import (
	"bytes"
	"testing"
)

// FuzzWALRecordRoundTrip pins the frame codec's two obligations: a clean
// frame decodes back to exactly what was encoded, and a frame with any
// single byte corrupted — or any trailing truncation — must error, never
// misparse into different-but-plausible record contents.
func FuzzWALRecordRoundTrip(f *testing.F) {
	f.Add(int64(1), uint16(0), []byte{}, uint16(0))
	f.Add(int64(1), uint16(1), []byte(`{"type":"advance"}`+"\n"), uint16(3))
	f.Add(int64(1<<40), uint16(512), bytes.Repeat([]byte("x"), 300), uint16(25))

	f.Fuzz(func(t *testing.T, seq int64, count uint16, payload []byte, pos uint16) {
		if seq < 1 {
			seq = 1 - seq
		}
		if seq < 1 { // int64 overflow corner
			seq = 1
		}
		frame := appendRecord(nil, seq, int(count), payload)

		gotSeq, gotCount, gotPayload, err := readRecord(bytes.NewReader(frame), nil)
		if err != nil {
			t.Fatalf("clean frame failed to decode: %v", err)
		}
		if gotSeq != seq || gotCount != int(count) || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("clean frame mangled: seq %d→%d count %d→%d", seq, gotSeq, count, gotCount)
		}

		// Single-byte corruption anywhere in the frame.
		corrupt := append([]byte(nil), frame...)
		idx := int(pos) % len(corrupt)
		corrupt[idx] ^= 0xA5
		cSeq, cCount, cPayload, err := readRecord(bytes.NewReader(corrupt), nil)
		if err == nil {
			t.Fatalf("corrupted byte %d decoded cleanly: seq=%d count=%d payload=%q",
				idx, cSeq, cCount, cPayload)
		}

		// Truncation at any interior boundary must also error.
		cut := 1 + int(pos)%(len(frame))
		if cut < len(frame) {
			if _, _, _, err := readRecord(bytes.NewReader(frame[:cut]), nil); err == nil {
				t.Fatalf("truncation at %d decoded cleanly", cut)
			}
		}
	})
}
