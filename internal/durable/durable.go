package durable

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"failscope/internal/mempool"
	"failscope/internal/obs"
	"failscope/internal/stream"
)

// Options configures a Store. Zero values take the defaults.
type Options struct {
	// SegmentBytes is the WAL rotation threshold: a segment that has
	// reached it is sealed (flushed, synced, closed) and the next append
	// opens a fresh one. Default 8 MiB.
	SegmentBytes int64

	// CheckpointRetain is how many completed checkpoints to keep; older
	// ones are pruned after each new checkpoint lands. Default 2.
	CheckpointRetain int

	// Registry receives the durable.* metrics (nil-safe).
	Registry *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.CheckpointRetain <= 0 {
		o.CheckpointRetain = 2
	}
	return o
}

// RecoveryInfo summarizes what Recover did; failscoped surfaces it on
// /healthz so operators can see how a boot reconstructed its state.
type RecoveryInfo struct {
	CheckpointSeq   int64         `json:"checkpointSeq"`   // seq of the restored checkpoint (0 = none)
	ReplayedRecords int64         `json:"replayedRecords"` // WAL records applied (fully or partially)
	ReplayedEvents  int64         `json:"replayedEvents"`  // events fed back into the engine
	SkippedRecords  int64         `json:"skippedRecords"`  // records entirely covered by the checkpoint
	ApplyErrors     int64         `json:"applyErrors"`     // replayed batches the engine rejected (mirrors live 400s)
	TruncatedBytes  int64         `json:"truncatedBytes"`  // torn tail removed from the last segment
	WALBytes        int64         `json:"walBytes"`        // WAL bytes scanned during replay
	Seq             int64         `json:"seq"`             // engine seq after recovery
	Duration        time.Duration `json:"-"`
	DurationMS      float64       `json:"replayMS"`
}

// segment is one on-disk WAL file.
type segment struct {
	firstSeq int64
	path     string
}

// Store is the durable storage engine for one data directory: the WAL
// writer (it implements stream.Journal) plus checkpoint management and
// crash recovery. A Store is safe for concurrent use; in practice the
// engine serializes Append/Sync under its apply lock while Checkpoint
// runs from the daemon's ticker.
type Store struct {
	dir string
	opt Options
	reg *obs.Registry

	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	segSize int64
	segs    []segment // sorted by firstSeq; the last one is open when f != nil
	dirty   bool

	walBytes   int64 // cumulative bytes appended this process
	walRecords int64
	ckptSeq    int64
}

// walEncPool recycles the JSONL encode buffers the WAL appends through;
// steady-state appends stay allocation-free above the encoder itself.
var walEncPool = mempool.New("durable.walenc", 16,
	func() *bytes.Buffer { return new(bytes.Buffer) },
	func(b *bytes.Buffer) *bytes.Buffer { b.Reset(); return b },
)

// fsyncBucketsMS / checkpointBucketsMS are the latency histogram bounds.
var (
	fsyncBucketsMS      = []float64{0.1, 0.5, 1, 5, 10, 50, 100, 500}
	checkpointBucketsMS = []float64{1, 5, 10, 50, 100, 500, 1000, 5000}
)

// Open prepares the data directory: creates it if needed, removes
// leftovers of interrupted checkpoints and indexes the existing WAL
// segments. It does not touch the engine; call Recover next.
func Open(dir string, opt Options) (*Store, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: open %s: %w", dir, err)
	}
	s := &Store{dir: dir, opt: opt, reg: opt.Registry}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: open %s: %w", dir, err)
	}
	for _, ent := range entries {
		name := ent.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// An interrupted checkpoint never renamed into place; it is
			// garbage by construction.
			if err := os.RemoveAll(filepath.Join(dir, name)); err != nil {
				return nil, fmt.Errorf("durable: clean %s: %w", name, err)
			}
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			seq, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 16, 64)
			if err != nil {
				return nil, fmt.Errorf("durable: unparseable wal segment name %q", name)
			}
			s.segs = append(s.segs, segment{firstSeq: seq, path: filepath.Join(dir, name)})
		}
	}
	sort.Slice(s.segs, func(i, j int) bool { return s.segs[i].firstSeq < s.segs[j].firstSeq })
	if seqs := s.checkpointSeqs(); len(seqs) > 0 {
		s.ckptSeq = seqs[len(seqs)-1]
	}
	s.publishLocked()
	return s, nil
}

// checkpointSeqs lists completed checkpoint sequences, ascending.
func (s *Store) checkpointSeqs() []int64 {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var seqs []int64
	for _, ent := range entries {
		name := ent.Name()
		if !ent.IsDir() || !strings.HasPrefix(name, "checkpoint-") {
			continue
		}
		seq, err := strconv.ParseInt(strings.TrimPrefix(name, "checkpoint-"), 16, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs
}

func (s *Store) checkpointDir(seq int64) string {
	return filepath.Join(s.dir, fmt.Sprintf("checkpoint-%016x", seq))
}

func (s *Store) segmentPath(firstSeq int64) string {
	return filepath.Join(s.dir, fmt.Sprintf("wal-%016x.log", firstSeq))
}

// manifest is the checkpoint's integrity record.
type manifest struct {
	Seq        int64  `json:"seq"`
	StateBytes int64  `json:"stateBytes"`
	StateCRC32 uint32 `json:"stateCRC32"`
}

// Append implements stream.Journal: frame the batch and buffer it into the
// current segment, rotating first when the segment is full. Called by the
// engine under its apply lock, immediately before the batch is applied.
func (s *Store) Append(startSeq int64, events []stream.Event) error {
	enc := walEncPool.Get()
	defer walEncPool.Put(enc)
	if err := stream.EncodeJSONL(enc, events); err != nil {
		return err
	}
	payload := enc.Bytes()
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("durable: batch of %d bytes exceeds the record bound", len(payload))
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f != nil && s.segSize >= s.opt.SegmentBytes {
		if err := s.sealSegmentLocked(); err != nil {
			return err
		}
	}
	if s.f == nil {
		if err := s.openSegmentLocked(startSeq); err != nil {
			return err
		}
	}

	var hdr [recHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(startSeq))
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(len(events)))
	crc := crc32.ChecksumIEEE(hdr[8:20])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	if _, err := s.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("durable: wal append: %w", err)
	}
	if _, err := s.w.Write(payload); err != nil {
		return fmt.Errorf("durable: wal append: %w", err)
	}
	n := int64(recHeaderSize + len(payload))
	s.segSize += n
	s.walBytes += n
	s.walRecords++
	s.dirty = true
	return nil
}

// Sync implements stream.Journal: one fsync per commit group, called by
// the group leader before any caller in the group observes success.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.dirty || s.f == nil {
		return nil
	}
	if err := s.syncLocked(); err != nil {
		return err
	}
	s.publishLocked()
	return nil
}

func (s *Store) syncLocked() error {
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("durable: wal flush: %w", err)
	}
	t0 := time.Now()
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("durable: wal fsync: %w", err)
	}
	s.reg.Histogram("durable.fsync_ms", fsyncBucketsMS...).
		Observe(float64(time.Since(t0)) / float64(time.Millisecond))
	s.dirty = false
	return nil
}

// openSegmentLocked starts a fresh segment named by the first sequence it
// will hold.
func (s *Store) openSegmentLocked(firstSeq int64) error {
	path := s.segmentPath(firstSeq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: open wal segment: %w", err)
	}
	if _, err := f.WriteString(walMagic); err != nil {
		f.Close()
		return fmt.Errorf("durable: write wal magic: %w", err)
	}
	s.f = f
	if s.w == nil {
		s.w = bufio.NewWriterSize(f, 1<<16)
	} else {
		s.w.Reset(f)
	}
	s.segSize = int64(len(walMagic))
	s.walBytes += int64(len(walMagic))
	// O_TRUNC may be reusing the name of a tail segment recovery emptied
	// (its only record was torn away); don't index it twice.
	if n := len(s.segs); n == 0 || s.segs[n-1].path != path {
		s.segs = append(s.segs, segment{firstSeq: firstSeq, path: path})
	}
	s.dirty = true
	return nil
}

// sealSegmentLocked flushes, syncs and closes the current segment. Sealed
// segments are immutable, which is what lets recovery treat a torn record
// anywhere but the final segment as corruption.
func (s *Store) sealSegmentLocked() error {
	if s.f == nil {
		return nil
	}
	if err := s.syncLocked(); err != nil {
		return err
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("durable: close wal segment: %w", err)
	}
	s.f = nil
	s.segSize = 0
	return nil
}

// Close seals the current segment and publishes final gauges. It does not
// checkpoint; callers wanting a clean restart checkpoint first.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.sealSegmentLocked()
	s.publishLocked()
	return err
}

func (s *Store) publishLocked() {
	s.reg.Set("durable.wal_bytes", float64(s.walBytes))
	s.reg.Set("durable.wal_records", float64(s.walRecords))
	s.reg.Set("durable.segments_live", float64(len(s.segs)))
	s.reg.Set("durable.checkpoint_seq", float64(s.ckptSeq))
}

// Checkpoint writes the engine's current state as a new checkpoint
// directory, prunes old checkpoints past the retention count, and deletes
// WAL segments the checkpoint fully covers. Returns the checkpointed
// sequence. A checkpoint at the current latest sequence is a no-op.
func (s *Store) Checkpoint(eng *stream.Engine) (int64, error) {
	t0 := time.Now()
	tmp := filepath.Join(s.dir, "checkpoint.tmp")
	if err := os.RemoveAll(tmp); err != nil {
		return 0, fmt.Errorf("durable: checkpoint: %w", err)
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return 0, fmt.Errorf("durable: checkpoint: %w", err)
	}
	f, err := os.Create(filepath.Join(tmp, "state.bin"))
	if err != nil {
		return 0, fmt.Errorf("durable: checkpoint: %w", err)
	}
	h := crc32.NewIEEE()
	cw := &countWriter{w: io.MultiWriter(f, h)}
	seq, err := eng.WriteState(cw)
	if err != nil {
		f.Close()
		os.RemoveAll(tmp)
		return 0, fmt.Errorf("durable: checkpoint: %w", err)
	}
	s.mu.Lock()
	last := s.ckptSeq
	s.mu.Unlock()
	if seq == last {
		f.Close()
		os.RemoveAll(tmp)
		return seq, nil
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.RemoveAll(tmp)
		return 0, fmt.Errorf("durable: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.RemoveAll(tmp)
		return 0, fmt.Errorf("durable: checkpoint: %w", err)
	}
	man, err := json.Marshal(manifest{Seq: seq, StateBytes: cw.n, StateCRC32: h.Sum32()})
	if err != nil {
		os.RemoveAll(tmp)
		return 0, err
	}
	if err := writeFileSync(filepath.Join(tmp, "MANIFEST.json"), man); err != nil {
		os.RemoveAll(tmp)
		return 0, fmt.Errorf("durable: checkpoint: %w", err)
	}
	final := s.checkpointDir(seq)
	if err := os.RemoveAll(final); err != nil {
		os.RemoveAll(tmp)
		return 0, fmt.Errorf("durable: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.RemoveAll(tmp)
		return 0, fmt.Errorf("durable: checkpoint: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return 0, fmt.Errorf("durable: checkpoint: %w", err)
	}

	s.mu.Lock()
	s.ckptSeq = seq
	s.pruneLocked(seq)
	s.publishLocked()
	s.mu.Unlock()
	s.reg.Histogram("durable.checkpoint_ms", checkpointBucketsMS...).
		Observe(float64(time.Since(t0)) / float64(time.Millisecond))
	return seq, nil
}

// pruneLocked deletes checkpoints beyond the retention count and WAL
// segments whose every record is covered by the checkpoint at seq — a
// segment is disposable when its successor starts at or before seq+1. The
// open segment is never deleted.
func (s *Store) pruneLocked(seq int64) {
	seqs := s.checkpointSeqs()
	for len(seqs) > s.opt.CheckpointRetain {
		os.RemoveAll(s.checkpointDir(seqs[0]))
		seqs = seqs[1:]
	}
	for len(s.segs) >= 2 && s.segs[1].firstSeq <= seq+1 {
		if err := os.Remove(s.segs[0].path); err != nil && !os.IsNotExist(err) {
			break
		}
		s.segs = s.segs[1:]
	}
}

// Recover restores the freshest valid checkpoint into the engine and
// replays the WAL tail past it. The engine must be freshly constructed
// with the same configuration the store's state was written under, and
// its journal must not be attached until Recover returns. A torn record
// at the tail of the final segment is truncated away; corruption anywhere
// else aborts recovery.
func (s *Store) Recover(eng *stream.Engine) (RecoveryInfo, error) {
	t0 := time.Now()
	var info RecoveryInfo

	seqs := s.checkpointSeqs()
	for i := len(seqs) - 1; i >= 0; i-- {
		dir := s.checkpointDir(seqs[i])
		if err := validateCheckpoint(dir, seqs[i]); err != nil {
			// A checkpoint that fails integrity is dead weight; fall back
			// to the previous one (the WAL still covers the gap because
			// segments are pruned only after a checkpoint completes).
			s.reg.Add("durable.checkpoints_invalid", 1)
			continue
		}
		f, err := os.Open(filepath.Join(dir, "state.bin"))
		if err != nil {
			return info, fmt.Errorf("durable: recover: %w", err)
		}
		err = eng.RestoreState(bufio.NewReaderSize(f, 1<<16))
		f.Close()
		if err != nil {
			// Not an integrity failure — the image is sound but does not
			// fit this engine's configuration. Refuse loudly.
			return info, fmt.Errorf("durable: recover: %w", err)
		}
		info.CheckpointSeq = seqs[i]
		break
	}

	if err := s.replayWAL(eng, &info); err != nil {
		return info, err
	}
	info.Seq = eng.Seq()
	info.Duration = time.Since(t0)
	info.DurationMS = float64(info.Duration) / float64(time.Millisecond)

	s.reg.Set("durable.recovery_checkpoint_seq", float64(info.CheckpointSeq))
	s.reg.Set("durable.recovery_replayed_records", float64(info.ReplayedRecords))
	s.reg.Set("durable.recovery_replayed_events", float64(info.ReplayedEvents))
	s.reg.Set("durable.recovery_replay_ms", info.DurationMS)
	s.mu.Lock()
	s.publishLocked()
	s.mu.Unlock()
	return info, nil
}

// replayWAL feeds every segment's surviving records into the engine,
// skipping what the checkpoint already covers.
func (s *Store) replayWAL(eng *stream.Engine, info *RecoveryInfo) error {
	s.mu.Lock()
	segs := append([]segment(nil), s.segs...)
	s.mu.Unlock()

	var scratch []byte
	for i, seg := range segs {
		last := i == len(segs)-1
		if err := s.replaySegment(eng, seg, last, &scratch, info); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) replaySegment(eng *stream.Engine, seg segment, last bool, scratch *[]byte, info *RecoveryInfo) error {
	f, err := os.Open(seg.path)
	if err != nil {
		return fmt.Errorf("durable: replay %s: %w", filepath.Base(seg.path), err)
	}
	defer f.Close()

	br := bufio.NewReaderSize(f, 1<<16)
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != walMagic {
		if last && err != nil {
			// The segment file was created but the magic never reached
			// disk: an empty shell from a crash at open. Discard it.
			return s.truncateTail(seg, 0, info)
		}
		return fmt.Errorf("durable: segment %s: bad magic", filepath.Base(seg.path))
	}

	offset := int64(len(walMagic))
	for {
		startSeq, count, payload, err := readRecord(br, *scratch)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			if last {
				return s.truncateTail(seg, offset, info)
			}
			return fmt.Errorf("durable: segment %s at offset %d: %w", filepath.Base(seg.path), offset, err)
		}
		if cap(payload) > cap(*scratch) {
			*scratch = payload[:0]
		}
		recBytes := int64(recHeaderSize + len(payload))
		info.WALBytes += recBytes

		cur := eng.Seq()
		if startSeq > cur+1 {
			return fmt.Errorf("durable: segment %s: wal gap (record seq %d, engine at %d)",
				filepath.Base(seg.path), startSeq, cur)
		}
		skip := cur - startSeq + 1 // events in this record the checkpoint already covers
		if skip >= int64(count) {
			info.SkippedRecords++
			offset += recBytes
			continue
		}

		b := stream.GetBatch()
		n, derr := b.DecodeJSONLInto(bytes.NewReader(payload))
		if derr != nil || n != count {
			b.Release()
			if last {
				// The checksum matched, so this is not media corruption —
				// but a record that no longer decodes to its own framing
				// cannot be replayed. At the tail, treat like a torn write.
				return s.truncateTail(seg, offset, info)
			}
			if derr == nil {
				derr = fmt.Errorf("decoded %d events, header says %d", n, count)
			}
			return fmt.Errorf("durable: segment %s record at %d: %w", filepath.Base(seg.path), offset, derr)
		}
		if err := eng.Apply(b.Events[skip:]); err != nil {
			// Live ingest surfaced this as a 400 and carried on with the
			// partial prefix applied; replay mirrors that exactly.
			info.ApplyErrors++
		}
		b.Release()
		info.ReplayedRecords++
		info.ReplayedEvents += int64(count) - skip
		offset += recBytes
	}
}

// truncateTail cuts the final segment at offset, discarding a torn tail.
func (s *Store) truncateTail(seg segment, offset int64, info *RecoveryInfo) error {
	st, err := os.Stat(seg.path)
	if err != nil {
		return fmt.Errorf("durable: truncate %s: %w", filepath.Base(seg.path), err)
	}
	info.TruncatedBytes += st.Size() - offset
	if offset == 0 {
		// Nothing valid in the file at all; remove it entirely so the
		// next append names a fresh segment.
		if err := os.Remove(seg.path); err != nil {
			return fmt.Errorf("durable: truncate %s: %w", filepath.Base(seg.path), err)
		}
		s.mu.Lock()
		for i := range s.segs {
			if s.segs[i].path == seg.path {
				s.segs = append(s.segs[:i], s.segs[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		return nil
	}
	if err := os.Truncate(seg.path, offset); err != nil {
		return fmt.Errorf("durable: truncate %s: %w", filepath.Base(seg.path), err)
	}
	return syncPath(seg.path)
}

// validateCheckpoint verifies a checkpoint directory's manifest and the
// state file's length and checksum.
func validateCheckpoint(dir string, seq int64) error {
	raw, err := os.ReadFile(filepath.Join(dir, "MANIFEST.json"))
	if err != nil {
		return err
	}
	var man manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return err
	}
	if man.Seq != seq {
		return fmt.Errorf("manifest seq %d, directory says %d", man.Seq, seq)
	}
	f, err := os.Open(filepath.Join(dir, "state.bin"))
	if err != nil {
		return err
	}
	defer f.Close()
	h := crc32.NewIEEE()
	n, err := io.Copy(h, f)
	if err != nil {
		return err
	}
	if n != man.StateBytes {
		return fmt.Errorf("state.bin is %d bytes, manifest says %d", n, man.StateBytes)
	}
	if h.Sum32() != man.StateCRC32 {
		return fmt.Errorf("state.bin checksum mismatch")
	}
	return nil
}

// CheckpointSeq returns the newest completed checkpoint's sequence.
func (s *Store) CheckpointSeq() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ckptSeq
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeFileSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func syncDir(dir string) error { return syncPath(dir) }

func syncPath(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	err = f.Sync()
	f.Close()
	return err
}
