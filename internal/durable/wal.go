// Package durable is failscoped's storage engine: a write-ahead event log
// plus checkpointed engine-state segments, giving the streaming daemon
// crash recovery with exact replay semantics.
//
// The contract is the one the engine's group commit provides: every batch
// is appended to the WAL (in apply order, under the engine lock)
// immediately before it is applied, and a single fsync per commit group
// lands before any caller observes success. Recovery restores the newest
// valid checkpoint and replays the WAL tail past the checkpoint sequence;
// the recovered engine is observationally identical to one that never
// crashed — the equivalence is enforced record-for-record by the tests in
// this package and end to end by the repo's crash-recovery suite.
package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// WAL segment file layout:
//
//	magic "FSWAL001" (8 bytes)
//	records until EOF, each:
//	  u32 payload length   (little-endian)
//	  u32 CRC32-IEEE       (over the 12 seq/count bytes + payload)
//	  u64 start sequence   (engine seq the record's first event takes)
//	  u32 event count
//	  payload              (JSONL via the stream wire codec)
//
// Segments are named wal-%016x.log by the start sequence of their first
// record. A torn record at the tail of the *last* segment is the expected
// signature of a crash between write and fsync and is truncated away;
// anywhere else it is corruption and recovery refuses.

const (
	walMagic      = "FSWAL001"
	recHeaderSize = 4 + 4 + 8 + 4

	// maxRecordBytes bounds a decoded record's payload so a corrupt
	// length prefix cannot drive a giant allocation.
	maxRecordBytes = 64 << 20
)

// appendRecord appends the framed record to dst and returns the extended
// slice.
func appendRecord(dst []byte, startSeq int64, count int, payload []byte) []byte {
	var hdr [recHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(startSeq))
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(count))
	crc := crc32.ChecksumIEEE(hdr[8:20])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// errTornRecord marks a record that ends before its framing says it
// should — the signature of a crash mid-write. Recovery truncates these
// at the tail of the last segment and refuses them anywhere else.
var errTornRecord = fmt.Errorf("durable: torn wal record")

// readRecord reads one record from r. It returns (0, 0, nil, io.EOF) at a
// clean end, errTornRecord when the stream ends inside a record, and a
// corruption error when the framing is implausible or the checksum fails.
// buf is the scratch payload buffer, reused when large enough.
func readRecord(r io.Reader, buf []byte) (startSeq int64, count int, payload []byte, err error) {
	var hdr [recHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, 0, nil, io.EOF // clean record boundary
		}
		return 0, 0, nil, errTornRecord
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxRecordBytes {
		return 0, 0, nil, fmt.Errorf("durable: wal record length %d implausible", n)
	}
	wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
	startSeq = int64(binary.LittleEndian.Uint64(hdr[8:16]))
	count = int(binary.LittleEndian.Uint32(hdr[16:20]))
	if cap(buf) >= int(n) {
		payload = buf[:n]
	} else {
		payload = make([]byte, n)
	}
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, errTornRecord
	}
	crc := crc32.ChecksumIEEE(hdr[8:20])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if crc != wantCRC {
		return 0, 0, nil, fmt.Errorf("durable: wal record crc mismatch (seq %d)", startSeq)
	}
	if startSeq < 1 || count < 0 {
		return 0, 0, nil, fmt.Errorf("durable: wal record header implausible (seq %d, count %d)", startSeq, count)
	}
	return startSeq, count, payload, nil
}
