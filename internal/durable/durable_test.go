package durable

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"failscope/internal/model"
	"failscope/internal/stream"
)

var testStart = time.Date(2012, 7, 1, 0, 0, 0, 0, time.UTC)

func testConfig() stream.Config {
	return stream.Config{Observation: model.Window{Start: testStart, End: testStart.AddDate(1, 0, 0)}}
}

func newEngine(t *testing.T) *stream.Engine {
	t.Helper()
	eng, err := stream.NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// testBatches builds n deterministic event batches: a machine roster
// first, then crash tickets marching through the observation window.
func testBatches(n int) [][]stream.Event {
	var batches [][]stream.Event
	var roster []stream.Event
	for i := 0; i < 8; i++ {
		kind, prefix := model.PM, "PM"
		if i%2 == 1 {
			kind, prefix = model.VM, "VM"
		}
		roster = append(roster, stream.Event{Type: "machine", Machine: &model.Machine{
			ID:      model.MachineID(fmt.Sprintf("S1-%s-%04d", prefix, i)),
			Kind:    kind,
			System:  1,
			Created: testStart.AddDate(-1, 0, 0),
		}})
	}
	batches = append(batches, roster)
	for b := 1; b < n; b++ {
		var evs []stream.Event
		for j := 0; j < 5; j++ {
			i := (b*5 + j) % 8
			prefix := "PM"
			if i%2 == 1 {
				prefix = "VM"
			}
			opened := testStart.Add(time.Duration(b*24+j) * time.Hour)
			closed := opened.Add(3 * time.Hour)
			evs = append(evs, stream.Event{Type: "ticket", Ticket: &model.Ticket{
				ID:       fmt.Sprintf("T-%d-%d", b, j),
				ServerID: model.MachineID(fmt.Sprintf("S1-%s-%04d", prefix, i)),
				System:   1,
				Opened:   opened,
				Closed:   closed,
				IsCrash:  j%2 == 0,
				Class:    model.FailureClass(1 + j%3),
			}})
		}
		batches = append(batches, evs)
	}
	return batches
}

func snapJSON(t *testing.T, eng *stream.Engine) string {
	t.Helper()
	b, err := json.Marshal(eng.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// runWithStore applies the batches through an engine journaled into dir,
// optionally checkpointing after batch checkpointAt (-1 = never), and
// abandons the store without closing — the unit-level crash: everything a
// caller saw succeed is on disk, nothing graceful happened after.
func runWithStore(t *testing.T, dir string, batches [][]stream.Event, checkpointAt int) *stream.Engine {
	t.Helper()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := newEngine(t)
	if _, err := st.Recover(eng); err != nil {
		t.Fatal(err)
	}
	eng.SetJournal(st)
	for i, b := range batches {
		if err := eng.Apply(b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if i == checkpointAt {
			if _, err := st.Checkpoint(eng); err != nil {
				t.Fatal(err)
			}
		}
	}
	return eng
}

// recoverDir opens dir and recovers into a fresh engine.
func recoverDir(t *testing.T, dir string) (*stream.Engine, RecoveryInfo) {
	t.Helper()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := newEngine(t)
	info, err := st.Recover(eng)
	if err != nil {
		t.Fatal(err)
	}
	return eng, info
}

// TestRecoverEmptyDir: a fresh data directory recovers to a pristine
// engine with zeroed recovery info.
func TestRecoverEmptyDir(t *testing.T) {
	eng, info := recoverDir(t, t.TempDir())
	if info != (RecoveryInfo{Duration: info.Duration, DurationMS: info.DurationMS}) {
		t.Errorf("non-zero recovery info on empty dir: %+v", info)
	}
	if eng.Seq() != 0 {
		t.Errorf("fresh engine at seq %d", eng.Seq())
	}
}

// TestCrashRecoveryEquivalence is the unit-level headline invariant:
// abandon the store at assorted points — before any checkpoint, right
// after one, and with a WAL tail past one — and recovery must rebuild an
// engine whose snapshot equals an uninterrupted run's.
func TestCrashRecoveryEquivalence(t *testing.T) {
	batches := testBatches(40)
	ref := newEngine(t)
	for _, b := range batches {
		if err := ref.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	want := snapJSON(t, ref)

	for _, ckptAt := range []int{-1, 0, 20, 39} {
		dir := t.TempDir()
		crashed := runWithStore(t, dir, batches, ckptAt)
		if got := snapJSON(t, crashed); got != want {
			t.Fatalf("ckpt@%d: journaled run diverges before crash", ckptAt)
		}
		eng, info := recoverDir(t, dir)
		if got := snapJSON(t, eng); got != want {
			t.Errorf("ckpt@%d: recovered snapshot diverges (info %+v)", ckptAt, info)
		}
		if eng.Seq() != ref.Seq() {
			t.Errorf("ckpt@%d: recovered seq %d, want %d", ckptAt, eng.Seq(), ref.Seq())
		}
		if ckptAt >= 0 && info.CheckpointSeq == 0 {
			t.Errorf("ckpt@%d: recovery used no checkpoint", ckptAt)
		}
	}
}

// TestRecoverySkipsCheckpointedRecords: records at or before the
// checkpoint replay as skips, the tail as applies.
func TestRecoverySkipsCheckpointedRecords(t *testing.T) {
	batches := testBatches(20)
	dir := t.TempDir()
	runWithStore(t, dir, batches, 9)
	_, info := recoverDir(t, dir)
	if info.SkippedRecords == 0 {
		t.Error("no records skipped despite a covering checkpoint")
	}
	if info.ReplayedRecords == 0 {
		t.Error("no records replayed despite a WAL tail past the checkpoint")
	}
	if info.ReplayedEvents != 50 { // batches 10..19, 5 events each
		t.Errorf("replayed %d events, want 50", info.ReplayedEvents)
	}
}

// TestCheckpointPrunesWAL: after a checkpoint, fully covered sealed
// segments are deleted; recovery afterwards still lands on the reference
// state.
func TestCheckpointPrunesWAL(t *testing.T) {
	batches := testBatches(60)
	dir := t.TempDir()

	st, err := Open(dir, Options{SegmentBytes: 4 << 10}) // force rotations
	if err != nil {
		t.Fatal(err)
	}
	eng := newEngine(t)
	if _, err := st.Recover(eng); err != nil {
		t.Fatal(err)
	}
	eng.SetJournal(st)
	for _, b := range batches {
		if err := eng.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	before := countGlob(t, dir, "wal-*.log")
	if before < 3 {
		t.Fatalf("rotation produced only %d segments; test needs several", before)
	}
	if _, err := st.Checkpoint(eng); err != nil {
		t.Fatal(err)
	}
	after := countGlob(t, dir, "wal-*.log")
	if after >= before {
		t.Errorf("checkpoint pruned nothing (%d -> %d segments)", before, after)
	}

	rec, _ := recoverDir(t, dir)
	if snapJSON(t, rec) != snapJSON(t, eng) {
		t.Error("recovery after pruning diverges")
	}
}

// TestCheckpointRetention: only CheckpointRetain checkpoint directories
// survive repeated checkpointing.
func TestCheckpointRetention(t *testing.T) {
	batches := testBatches(10)
	dir := t.TempDir()
	st, err := Open(dir, Options{CheckpointRetain: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := newEngine(t)
	if _, err := st.Recover(eng); err != nil {
		t.Fatal(err)
	}
	eng.SetJournal(st)
	for _, b := range batches {
		if err := eng.Apply(b); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Checkpoint(eng); err != nil {
			t.Fatal(err)
		}
	}
	if n := countGlob(t, dir, "checkpoint-*"); n != 2 {
		t.Errorf("%d checkpoints on disk, want 2", n)
	}
}

// TestShutdownCheckpointZeroReplay: a final checkpoint before shutdown
// means the next boot replays nothing from the WAL.
func TestShutdownCheckpointZeroReplay(t *testing.T) {
	batches := testBatches(15)
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := newEngine(t)
	if _, err := st.Recover(eng); err != nil {
		t.Fatal(err)
	}
	eng.SetJournal(st)
	for _, b := range batches {
		if err := eng.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Checkpoint(eng); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	rec, info := recoverDir(t, dir)
	if info.ReplayedRecords != 0 || info.ReplayedEvents != 0 {
		t.Errorf("replayed %d records / %d events after a clean shutdown checkpoint",
			info.ReplayedRecords, info.ReplayedEvents)
	}
	if snapJSON(t, rec) != snapJSON(t, eng) {
		t.Error("post-shutdown recovery diverges")
	}
}

// TestTornTailEveryOffset truncates the final WAL record at every byte
// offset: recovery must always succeed, dropping exactly the torn record
// and landing on the state of the stream without its final batch.
func TestTornTailEveryOffset(t *testing.T) {
	batches := testBatches(6)
	master := t.TempDir()
	runWithStore(t, master, batches, -1)

	// Reference: everything but the last batch.
	refShort := newEngine(t)
	for _, b := range batches[:len(batches)-1] {
		if err := refShort.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	wantShort := snapJSON(t, refShort)

	segs, err := filepath.Glob(filepath.Join(master, "wal-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want one segment, have %v (%v)", segs, err)
	}
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	lastStart := recordOffsets(t, raw)
	base := filepath.Base(segs[0])

	for cut := lastStart; cut < int64(len(raw)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, base), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		eng, info := recoverDir(t, dir)
		if cut == lastStart {
			if info.TruncatedBytes != 0 {
				t.Errorf("cut %d: clean boundary reported %d truncated bytes", cut, info.TruncatedBytes)
			}
		} else if info.TruncatedBytes != cut-lastStart {
			t.Errorf("cut %d: truncated %d bytes, want %d", cut, info.TruncatedBytes, cut-lastStart)
		}
		if got := snapJSON(t, eng); got != wantShort {
			t.Fatalf("cut %d: recovered state diverges from stream minus final batch", cut)
		}
	}
}

// recordOffsets walks raw's records and returns the offset of the final
// record's first byte.
func recordOffsets(t *testing.T, raw []byte) int64 {
	t.Helper()
	r := bytes.NewReader(raw[len(walMagic):])
	offset := int64(len(walMagic))
	last := offset
	for {
		_, _, payload, err := readRecord(r, nil)
		if err != nil {
			break
		}
		last = offset
		offset += int64(recHeaderSize + len(payload))
	}
	return last
}

// TestCorruptionInSealedSegmentRefused: a flipped byte anywhere but the
// final segment's tail is corruption, not a torn write — recovery must
// refuse rather than silently drop records.
func TestCorruptionInSealedSegmentRefused(t *testing.T) {
	batches := testBatches(60)
	dir := t.TempDir()
	st, err := Open(dir, Options{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	eng := newEngine(t)
	if _, err := st.Recover(eng); err != nil {
		t.Fatal(err)
	}
	eng.SetJournal(st)
	for _, b := range batches {
		if err := eng.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("need ≥2 segments, have %v", segs)
	}
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Recover(newEngine(t)); err == nil {
		t.Fatal("recovery accepted corruption in a sealed segment")
	}
}

// TestInvalidCheckpointFallsBack: a checkpoint whose state file is
// damaged is skipped in favor of the previous one, and the WAL tail
// still brings the engine to the reference state.
func TestInvalidCheckpointFallsBack(t *testing.T) {
	batches := testBatches(30)
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := newEngine(t)
	if _, err := st.Recover(eng); err != nil {
		t.Fatal(err)
	}
	eng.SetJournal(st)
	var ckpts []int64
	for i, b := range batches {
		if err := eng.Apply(b); err != nil {
			t.Fatal(err)
		}
		if i == 10 || i == 20 {
			seq, err := st.Checkpoint(eng)
			if err != nil {
				t.Fatal(err)
			}
			ckpts = append(ckpts, seq)
		}
	}
	// Damage the newest checkpoint's state file.
	state := filepath.Join(dir, fmt.Sprintf("checkpoint-%016x", ckpts[1]), "state.bin")
	raw, err := os.ReadFile(state)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0x55
	if err := os.WriteFile(state, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	rec, info := recoverDir(t, dir)
	if info.CheckpointSeq != ckpts[0] {
		t.Errorf("recovered from checkpoint %d, want fallback to %d", info.CheckpointSeq, ckpts[0])
	}
	if snapJSON(t, rec) != snapJSON(t, eng) {
		t.Error("fallback recovery diverges")
	}
}

// TestRecoveryIdempotent: recovering twice from the same directory (crash
// during replay, then boot again) yields the same state — replay never
// appends to the journal or mutates surviving records.
func TestRecoveryIdempotent(t *testing.T) {
	batches := testBatches(25)
	dir := t.TempDir()
	runWithStore(t, dir, batches, 12)

	a, _ := recoverDir(t, dir)
	b, _ := recoverDir(t, dir)
	if snapJSON(t, a) != snapJSON(t, b) {
		t.Error("back-to-back recoveries diverge")
	}
}

func countGlob(t *testing.T, dir, pattern string) int {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		t.Fatal(err)
	}
	return len(m)
}

// TestRecordRoundTrip pins the frame codec: encode, decode, compare.
func TestRecordRoundTrip(t *testing.T) {
	payload := []byte(`{"type":"advance","time":"2012-07-02T00:00:00Z"}` + "\n")
	frame := appendRecord(nil, 42, 1, payload)
	seq, count, got, err := readRecord(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 || count != 1 || !bytes.Equal(got, payload) {
		t.Errorf("round trip mangled record: seq=%d count=%d", seq, count)
	}
	if !reflect.DeepEqual(frame, appendRecord(nil, 42, 1, payload)) {
		t.Error("encoding is not deterministic")
	}
}
