package textmine

import "testing"

func testKeywordClassifier() *KeywordClassifier {
	return &KeywordClassifier{
		Default: 0,
		Rules: []KeywordRule{
			{Label: 1, Keywords: []string{"disk", "psu", "raid"}},
			{Label: 2, Keywords: []string{"switch", "vlan", "nic"}},
		},
	}
}

func TestKeywordPredict(t *testing.T) {
	k := testKeywordClassifier()
	if got := k.Predict("replaced faulty disk and raid battery"); got != 1 {
		t.Errorf("hardware text labeled %d", got)
	}
	if got := k.Predict("switch port flapping, vlan wrong"); got != 2 {
		t.Errorf("network text labeled %d", got)
	}
	if got := k.Predict("password reset for user"); got != 0 {
		t.Errorf("background text labeled %d", got)
	}
}

func TestKeywordTieGoesToFirstBest(t *testing.T) {
	k := testKeywordClassifier()
	// One hit each: the first rule reaching the max wins deterministically.
	if got := k.Predict("disk near the switch"); got != 1 {
		t.Errorf("tie resolved to %d", got)
	}
}

func TestKeywordEvaluate(t *testing.T) {
	k := testKeywordClassifier()
	cm, err := k.Evaluate(
		[]string{"disk failed", "vlan broken", "hello world"},
		[]int{1, 2, 0},
	)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Accuracy() != 1.0 {
		t.Errorf("accuracy %v", cm.Accuracy())
	}
	if _, err := k.Evaluate([]string{"x"}, []int{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}
