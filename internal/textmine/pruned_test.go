package textmine

import (
	"strings"
	"testing"

	"failscope/internal/obs"
	"failscope/internal/xrand"
)

// TestKMeansPrunedMatchesExact is the guard on the Hamerly-style bound
// pruning: the production path (pruning on) must reproduce the exhaustive
// scan bit for bit — assignments, centroids, inertia, iteration count and
// the RNG draw sequence (checked implicitly through reseeds) — while
// actually skipping a meaningful share of distance evaluations.
func TestKMeansPrunedMatchesExact(t *testing.T) {
	docs := clusterCorpus(1100)
	vocab := BuildVocabulary(docs, 1)
	vectors := make([]SparseVector, len(docs))
	for i, d := range docs {
		vectors[i] = vocab.Vectorize(d)
	}

	for _, workers := range []int{1, 2, 0} {
		exact, err := kmeansRun(vectors, vocab.Size(), 16, 40, xrand.New(5), workers, nil, false)
		if err != nil {
			t.Fatal(err)
		}
		pruned, err := kmeansRun(vectors, vocab.Size(), 16, 40, xrand.New(5), workers, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		if pruned.Iterations != exact.Iterations {
			t.Fatalf("workers=%d: %d iterations pruned, %d exact", workers, pruned.Iterations, exact.Iterations)
		}
		if pruned.Inertia != exact.Inertia {
			t.Fatalf("workers=%d: inertia %v pruned, %v exact", workers, pruned.Inertia, exact.Inertia)
		}
		for i := range exact.Assignments {
			if pruned.Assignments[i] != exact.Assignments[i] {
				t.Fatalf("workers=%d: assignment[%d] = %d pruned, %d exact",
					workers, i, pruned.Assignments[i], exact.Assignments[i])
			}
		}
		for c := range exact.Centroids {
			for j := range exact.Centroids[c] {
				if pruned.Centroids[c][j] != exact.Centroids[c][j] {
					t.Fatalf("workers=%d: centroid[%d][%d] differs", workers, c, j)
				}
			}
		}
	}
}

// TestKMeansPruningActuallyPrunes checks the published counters: on a
// clustered corpus the bound must eliminate a meaningful share of distance
// evaluations (a converging run spends most of its sweeps on points whose
// assignment is stable, exactly where the bound bites).
func TestKMeansPruningActuallyPrunes(t *testing.T) {
	docs := clusterCorpus(1100)
	vocab := BuildVocabulary(docs, 1)
	vectors := make([]SparseVector, len(docs))
	for i, d := range docs {
		vectors[i] = vocab.Vectorize(d)
	}
	// Count via the metrics the kernel publishes on its observer.
	o := obs.NewObserver("pruning-test")
	if _, err := kmeansRun(vectors, vocab.Size(), 16, 40, xrand.New(5), 1, o, true); err != nil {
		t.Fatal(err)
	}
	snap := o.Metrics().Snapshot()
	dist := int64(snap["textmine.kmeans_distances"])
	prunedN := int64(snap["textmine.kmeans_distances_pruned"])
	if prunedN == 0 {
		t.Fatal("pruning never skipped a distance evaluation")
	}
	if frac := float64(prunedN) / float64(dist+prunedN); frac < 0.05 {
		t.Fatalf("pruned only %.1f%% of %d evaluations — bound not biting", 100*frac, dist+prunedN)
	}
	t.Logf("pruned %d of %d evaluations (%.1f%%)", prunedN, dist+prunedN, 100*float64(prunedN)/float64(dist+prunedN))
}

// TestPredictPrunedMatchesExact holds the triangle-inequality Predict
// against a classifier stripped of its inter-centroid cache (which
// disables pruning) on every training document.
func TestPredictPrunedMatchesExact(t *testing.T) {
	docs := clusterCorpus(600)
	texts := make([]string, len(docs))
	labels := make([]int, len(docs))
	for i, d := range docs {
		texts[i] = strings.Join(d, " ")
		labels[i] = i % 4
	}
	opts := DefaultTrainOptions()
	opts.Clusters = 12
	opts.Parallelism = 1
	c, err := Train(texts, labels, opts, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if c.ccDist == nil {
		t.Fatal("trained classifier has no inter-centroid distance cache")
	}
	exact := &Classifier{vocab: c.vocab, centroids: c.centroids, norms: c.norms, labels: c.labels}
	var scratch PredictScratch
	for i, text := range texts {
		if got, want := c.PredictWith(&scratch, text), exact.Predict(text); got != want {
			t.Fatalf("doc %d: pruned predict %d, exact %d", i, got, want)
		}
	}
	if scratch.Pruned == 0 {
		t.Fatal("predict pruning never skipped a centroid")
	}
}

// TestAppendTokensMatchesTokenize pins the single-pass ASCII scanner (and
// its non-ASCII fallback) to the reference field-splitting semantics.
func TestAppendTokensMatchesTokenize(t *testing.T) {
	cases := []string{
		"",
		"a",
		"Disk DISK disk",
		"RAID-5 controller failed; replaced the array at 03:15!",
		"the a an and of is",        // all stopwords
		"x1 Y2 zz ... __ 42 a1b2c3", // short tokens and digits
		"  leading and trailing   whitespace  ",
		"CPU%util=97.5,mem@host-42",
		"über café naïve — non-ASCII résumé",  // slow path
		"mixed ascii und später Ümlaute DISK", // slow path with upper ASCII
		"ticket Please TEAM issue per",        // stopwords in upper case
		strings.Repeat("kernel panic deadlock ", 50),
	}
	for _, text := range cases {
		want := appendTokensSlow(nil, text)
		got := Tokenize(text)
		if len(got) != len(want) {
			t.Fatalf("%q: %d tokens, want %d (%v vs %v)", text, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%q: token %d = %q, want %q", text, i, got[i], want[i])
			}
		}
		// Buffer-reuse path appends identically.
		buf := make([]string, 0, 8)
		buf = append(buf, "sentinel")
		buf = AppendTokens(buf, text)
		if buf[0] != "sentinel" || len(buf)-1 != len(want) {
			t.Fatalf("%q: AppendTokens mangled the destination buffer", text)
		}
	}
}
