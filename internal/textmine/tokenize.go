// Package textmine implements the ticket-text mining of §III.A: a
// tokenizer and TF-IDF vectorizer over ticket description/resolution text,
// k-means++ clustering (Lloyd's algorithm), and a cluster-to-label
// classifier whose accuracy is scored against ground truth exactly the way
// the paper reports its 87% classification accuracy.
package textmine

import (
	"sort"
	"strings"
	"unicode"
)

// stopwords are high-frequency English and ticket-boilerplate terms that
// carry no class signal.
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "by": true, "for": true, "from": true, "has": true,
	"in": true, "is": true, "it": true, "its": true, "of": true, "on": true,
	"or": true, "that": true, "the": true, "this": true, "to": true,
	"was": true, "were": true, "will": true, "with": true, "after": true,
	"before": true, "per": true, "ticket": true, "issue": true,
	"please": true, "team": true,
}

// Tokenize lower-cases text, splits on non-alphanumeric runes and drops
// stopwords and single-character tokens.
func Tokenize(text string) []string {
	fields := strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
	out := fields[:0]
	for _, f := range fields {
		if len(f) < 2 || stopwords[f] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// Vocabulary maps tokens to dense feature indices with document
// frequencies, enabling TF-IDF weighting.
type Vocabulary struct {
	Index   map[string]int
	Tokens  []string
	DocFreq []int
	Docs    int
}

// BuildVocabulary scans tokenized documents and returns a vocabulary of
// tokens that appear in at least minDocs documents (noise filtering).
func BuildVocabulary(docs [][]string, minDocs int) *Vocabulary {
	if minDocs < 1 {
		minDocs = 1
	}
	df := make(map[string]int)
	for _, doc := range docs {
		seen := make(map[string]bool, len(doc))
		for _, tok := range doc {
			if !seen[tok] {
				seen[tok] = true
				df[tok]++
			}
		}
	}
	tokens := make([]string, 0, len(df))
	for tok, n := range df {
		if n >= minDocs {
			tokens = append(tokens, tok)
		}
	}
	sort.Strings(tokens)
	v := &Vocabulary{
		Index:   make(map[string]int, len(tokens)),
		Tokens:  tokens,
		DocFreq: make([]int, len(tokens)),
		Docs:    len(docs),
	}
	for i, tok := range tokens {
		v.Index[tok] = i
		v.DocFreq[i] = df[tok]
	}
	return v
}

// Size returns the number of features.
func (v *Vocabulary) Size() int { return len(v.Tokens) }
