// Package textmine implements the ticket-text mining of §III.A: a
// tokenizer and TF-IDF vectorizer over ticket description/resolution text,
// k-means++ clustering (Lloyd's algorithm), and a cluster-to-label
// classifier whose accuracy is scored against ground truth exactly the way
// the paper reports its 87% classification accuracy.
package textmine

import (
	"math"
	"sort"
	"strings"
	"unicode"
)

// stopwords are high-frequency English and ticket-boilerplate terms that
// carry no class signal.
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "by": true, "for": true, "from": true, "has": true,
	"in": true, "is": true, "it": true, "its": true, "of": true, "on": true,
	"or": true, "that": true, "the": true, "this": true, "to": true,
	"was": true, "were": true, "will": true, "with": true, "after": true,
	"before": true, "per": true, "ticket": true, "issue": true,
	"please": true, "team": true,
}

// Tokenize lower-cases text, splits on non-alphanumeric runes and drops
// stopwords and single-character tokens.
func Tokenize(text string) []string {
	return AppendTokens(nil, text)
}

// AppendTokens is Tokenize appending into a caller-owned buffer, for hot
// paths that tokenize in a loop. ASCII text — the overwhelming case for
// ticket descriptions — is scanned in a single byte pass: tokens are
// substrings of the input (zero-copy), and only a token containing an
// upper-case letter allocates for its lowered form. Any non-ASCII byte
// falls back to the rune-correct path with identical output.
func AppendTokens(dst []string, text string) []string {
	for i := 0; i < len(text); i++ {
		if text[i] >= 0x80 {
			return appendTokensSlow(dst, text)
		}
	}
	for i := 0; i < len(text); {
		if !isASCIIAlnum(text[i]) {
			i++
			continue
		}
		j := i
		hasUpper := false
		for j < len(text) && isASCIIAlnum(text[j]) {
			if text[j] >= 'A' && text[j] <= 'Z' {
				hasUpper = true
			}
			j++
		}
		if j-i >= 2 {
			tok := text[i:j]
			if hasUpper {
				tok = strings.ToLower(tok)
			}
			if !stopwords[tok] {
				dst = append(dst, tok)
			}
		}
		i = j
	}
	return dst
}

func isASCIIAlnum(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

// appendTokensSlow handles text with non-ASCII runes: the original
// lower-then-split-by-rune-class implementation.
func appendTokensSlow(dst []string, text string) []string {
	fields := strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
	for _, f := range fields {
		if len(f) < 2 || stopwords[f] {
			continue
		}
		dst = append(dst, f)
	}
	return dst
}

// Vocabulary maps tokens to dense feature indices with document
// frequencies, enabling TF-IDF weighting.
type Vocabulary struct {
	Index   map[string]int
	Tokens  []string
	DocFreq []int
	Docs    int

	// idf[i] is the smoothed inverse document frequency of Tokens[i],
	// precomputed once at build time: vectorization is the hot loop of both
	// training and prediction, and a math.Log per distinct term per document
	// dominates it. The vocabulary is immutable after BuildVocabulary, so
	// the cached value is exactly the float64 the inline expression yields.
	idf []float64
}

// BuildVocabulary scans tokenized documents and returns a vocabulary of
// tokens that appear in at least minDocs documents (noise filtering).
func BuildVocabulary(docs [][]string, minDocs int) *Vocabulary {
	if minDocs < 1 {
		minDocs = 1
	}
	df := make(map[string]int)
	for _, doc := range docs {
		seen := make(map[string]bool, len(doc))
		for _, tok := range doc {
			if !seen[tok] {
				seen[tok] = true
				df[tok]++
			}
		}
	}
	tokens := make([]string, 0, len(df))
	for tok, n := range df {
		if n >= minDocs {
			tokens = append(tokens, tok)
		}
	}
	sort.Strings(tokens)
	v := &Vocabulary{
		Index:   make(map[string]int, len(tokens)),
		Tokens:  tokens,
		DocFreq: make([]int, len(tokens)),
		Docs:    len(docs),
	}
	for i, tok := range tokens {
		v.Index[tok] = i
		v.DocFreq[i] = df[tok]
	}
	v.idf = make([]float64, len(tokens))
	for i := range v.idf {
		v.idf[i] = math.Log(float64(v.Docs+1)/float64(v.DocFreq[i]+1)) + 1
	}
	return v
}

// Size returns the number of features.
func (v *Vocabulary) Size() int { return len(v.Tokens) }
