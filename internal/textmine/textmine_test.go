package textmine

import (
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"failscope/internal/xrand"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Server web-01 DOWN, hardware fault on THE disk!")
	want := []string{"server", "web", "01", "down", "hardware", "fault", "disk"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTokenizeDropsStopwordsAndShort(t *testing.T) {
	got := Tokenize("a to the ticket issue x y z ok")
	for _, tok := range got {
		if stopwords[tok] || len(tok) < 2 {
			t.Errorf("kept %q", tok)
		}
	}
}

func TestBuildVocabulary(t *testing.T) {
	docs := [][]string{
		{"disk", "failed", "disk"},
		{"disk", "replaced"},
		{"network", "down"},
	}
	v := BuildVocabulary(docs, 2)
	if v.Size() != 1 || v.Tokens[0] != "disk" {
		t.Fatalf("vocabulary: %v", v.Tokens)
	}
	if v.DocFreq[0] != 2 {
		t.Errorf("docfreq = %d (token counted once per doc)", v.DocFreq[0])
	}
	if v.Docs != 3 {
		t.Errorf("Docs = %d", v.Docs)
	}
	all := BuildVocabulary(docs, 1)
	if all.Size() != 5 {
		t.Errorf("minDocs=1 vocabulary size %d", all.Size())
	}
}

func TestVectorizeUnitNorm(t *testing.T) {
	docs := [][]string{{"aa", "bb"}, {"aa", "cc"}, {"bb", "cc", "dd"}}
	v := BuildVocabulary(docs, 1)
	for _, d := range docs {
		vec := v.Vectorize(d)
		if math.Abs(vec.Norm()-1) > 1e-12 {
			t.Errorf("vector norm %v for %v", vec.Norm(), d)
		}
	}
	empty := v.Vectorize([]string{"zz"})
	if len(empty.Idx) != 0 {
		t.Error("unknown tokens should vectorize to empty")
	}
}

func TestSparseVectorOps(t *testing.T) {
	s := SparseVector{Idx: []int{0, 2}, Val: []float64{3, 4}}
	if s.Norm() != 5 {
		t.Errorf("Norm = %v", s.Norm())
	}
	dense := []float64{1, 10, 2}
	if got := s.Dot(dense); got != 11 {
		t.Errorf("Dot = %v", got)
	}
	acc := make([]float64, 3)
	s.AddTo(acc)
	if acc[0] != 3 || acc[1] != 0 || acc[2] != 4 {
		t.Errorf("AddTo = %v", acc)
	}
}

// syntheticCorpus builds well-separated documents in nClasses vocabularies.
func syntheticCorpus(nClasses, perClass int, r *xrand.RNG) (texts []string, labels []int) {
	words := make([][]string, nClasses)
	for c := range words {
		for w := 0; w < 8; w++ {
			words[c] = append(words[c], fmt.Sprintf("class%dword%d", c, w))
		}
	}
	for c := 0; c < nClasses; c++ {
		for i := 0; i < perClass; i++ {
			doc := ""
			for w := 0; w < 6; w++ {
				doc += words[c][r.Intn(len(words[c]))] + " "
			}
			texts = append(texts, doc)
			labels = append(labels, c+1)
		}
	}
	return texts, labels
}

func TestKMeansInvariants(t *testing.T) {
	r := xrand.New(1)
	texts, _ := syntheticCorpus(4, 40, r)
	docs := make([][]string, len(texts))
	for i, s := range texts {
		docs[i] = Tokenize(s)
	}
	vocab := BuildVocabulary(docs, 1)
	vectors := make([]SparseVector, len(docs))
	for i, d := range docs {
		vectors[i] = vocab.Vectorize(d)
	}
	res, err := KMeans(vectors, vocab.Size(), 4, 50, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != len(vectors) {
		t.Fatalf("assignments %d", len(res.Assignments))
	}
	if len(res.Centroids) != 4 {
		t.Fatalf("centroids %d", len(res.Centroids))
	}
	// Every document must sit closest to its assigned centroid.
	for i, vec := range vectors {
		best, bestDist := -1, math.Inf(1)
		for c, centroid := range res.Centroids {
			var n2 float64
			for _, v := range centroid {
				n2 += v * v
			}
			d := 1 + n2 - 2*vec.Dot(centroid)
			if d < bestDist {
				best, bestDist = c, d
			}
		}
		if best != res.Assignments[i] {
			t.Fatalf("doc %d assigned to %d but closest is %d", i, res.Assignments[i], best)
		}
	}
	if res.Inertia < 0 {
		t.Errorf("negative inertia %v", res.Inertia)
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, 3, 2, 10, xrand.New(1)); err == nil {
		t.Error("empty input accepted")
	}
	vecs := []SparseVector{{Idx: []int{0}, Val: []float64{1}}}
	if _, err := KMeans(vecs, 1, 0, 10, xrand.New(1)); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMeans(vecs, 1, 2, 10, xrand.New(1)); err == nil {
		t.Error("k>n accepted")
	}
}

func TestKMeansInertiaNonIncreasingWithK(t *testing.T) {
	r := xrand.New(3)
	texts, _ := syntheticCorpus(4, 30, r)
	docs := make([][]string, len(texts))
	for i, s := range texts {
		docs[i] = Tokenize(s)
	}
	vocab := BuildVocabulary(docs, 1)
	vectors := make([]SparseVector, len(docs))
	for i, d := range docs {
		vectors[i] = vocab.Vectorize(d)
	}
	var prev float64 = math.Inf(1)
	for _, k := range []int{1, 2, 4, 8} {
		res, err := KMeans(vectors, vocab.Size(), k, 60, xrand.New(7))
		if err != nil {
			t.Fatal(err)
		}
		if res.Inertia > prev*1.05 { // tolerance: k-means is a heuristic
			t.Errorf("inertia grew markedly from k: %v -> %v at k=%d", prev, res.Inertia, k)
		}
		prev = res.Inertia
	}
}

func TestClassifierSeparableCorpus(t *testing.T) {
	r := xrand.New(11)
	texts, labels := syntheticCorpus(5, 60, r)
	clf, err := Train(texts, labels, DefaultTrainOptions(), r)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := clf.Evaluate(texts, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc := cm.Accuracy(); acc < 0.95 {
		t.Fatalf("accuracy on separable corpus %.3f", acc)
	}
}

func TestClassifierErrors(t *testing.T) {
	r := xrand.New(1)
	if _, err := Train([]string{"a"}, []int{1, 2}, DefaultTrainOptions(), r); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := Train(nil, nil, DefaultTrainOptions(), r); err == nil {
		t.Error("empty corpus accepted")
	}
	clf, err := Train([]string{"disk failed", "network down", "disk failed again"}, []int{1, 2, 1}, DefaultTrainOptions(), r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clf.Evaluate([]string{"x"}, []int{1, 2}); err == nil {
		t.Error("evaluate length mismatch accepted")
	}
}

func TestConfusionMatrixMetrics(t *testing.T) {
	cm := &ConfusionMatrix{Counts: map[[2]int]int{
		{1, 1}: 8, {1, 2}: 2, // class 1: 8 right, 2 wrong
		{2, 2}: 5, {2, 1}: 5, // class 2: half right
	}, Total: 20, Hits: 13, Labels: []int{1, 2}}
	if got := cm.Accuracy(); got != 0.65 {
		t.Errorf("accuracy %v", got)
	}
	if got := cm.Recall(1); got != 0.8 {
		t.Errorf("recall(1) = %v", got)
	}
	if got := cm.Precision(1); math.Abs(got-8.0/13) > 1e-12 {
		t.Errorf("precision(1) = %v", got)
	}
	if !math.IsNaN(cm.Recall(9)) || !math.IsNaN(cm.Precision(9)) {
		t.Error("metrics for absent label should be NaN")
	}
	empty := &ConfusionMatrix{Counts: map[[2]int]int{}}
	if !math.IsNaN(empty.Accuracy()) {
		t.Error("accuracy of empty matrix should be NaN")
	}
}

func TestSortIntsProperty(t *testing.T) {
	f := func(raw []int) bool {
		a := append([]int(nil), raw...)
		sortInts(a)
		for i := 1; i < len(a); i++ {
			if a[i] < a[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestConfusionMatrixJSONRoundTrip: the Counts map is keyed by [2]int,
// which encoding/json cannot represent directly — the custom codec must
// round-trip the matrix losslessly (it rides along in API snapshots).
func TestConfusionMatrixJSONRoundTrip(t *testing.T) {
	cm := &ConfusionMatrix{
		Labels: []int{0, 1, 3},
		Counts: map[[2]int]int{
			{0, 0}: 10, {0, 1}: 2,
			{1, 1}: 7, {1, 3}: 1,
			{3, 3}: 4,
		},
		Total: 24,
		Hits:  21,
	}
	data, err := json.Marshal(cm)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back ConfusionMatrix
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(cm, &back) {
		t.Fatalf("round trip: got %+v, want %+v", &back, cm)
	}
	// An empty matrix (no predictions scored yet) must still serialize.
	if _, err := json.Marshal(&ConfusionMatrix{Counts: map[[2]int]int{}}); err != nil {
		t.Fatalf("marshal empty: %v", err)
	}
}
