package textmine

import (
	"errors"
	"math"

	"failscope/internal/obs"
	"failscope/internal/par"
	"failscope/internal/xrand"
)

// ErrNoData is returned when clustering is attempted on an empty corpus.
var ErrNoData = errors.New("textmine: no documents to cluster")

// KMeansResult is the outcome of one clustering run.
type KMeansResult struct {
	Assignments []int       // cluster index per document
	Centroids   [][]float64 // dense centroids, unit space
	Inertia     float64     // sum of squared distances to assigned centroid
	Iterations  int
}

// KMeans clusters unit-normalized sparse vectors into k clusters using
// k-means++ seeding and Lloyd iterations. Because the vectors are unit
// length, squared Euclidean distance is 2 − 2·cosine, so this is spherical
// k-means in effect — the standard choice for TF-IDF ticket text.
//
// KMeans is the sequential reference; KMeansParallel produces the same
// result bit for bit at any worker count.
func KMeans(vectors []SparseVector, dim, k, maxIter int, r *xrand.RNG) (*KMeansResult, error) {
	return KMeansParallel(vectors, dim, k, maxIter, r, 1)
}

// KMeansParallel is KMeans with the assignment step (the O(n·k·nnz) bulk of
// the work) and the k-means++ D² update fanned out over parallelism workers.
// Documents are partitioned into fixed par.BlockSize blocks regardless of
// worker count and the per-block inertia partials are merged in block
// order, so the float arithmetic — and therefore every assignment, centroid
// and the RNG draw sequence — is identical to the sequential path.
func KMeansParallel(vectors []SparseVector, dim, k, maxIter int, r *xrand.RNG, parallelism int) (*KMeansResult, error) {
	return KMeansObserved(vectors, dim, k, maxIter, r, parallelism, nil)
}

// boundEps is the absolute safety margin the distance-bound pruning keeps
// between a bound and the exact distance it compares against. Distances on
// the unit sphere lie in [0, 2] (squared in [0, 4]) and their float64
// rounding error is below 1e-12, so a 1e-6 margin makes every pruning
// decision unambiguous: a centroid is only skipped when it is provably
// farther than the incumbent by more than any possible rounding noise, and
// genuine near-ties fall through to the exact scan. This is what keeps the
// pruned kernels bit-identical to the exhaustive ones.
const boundEps = 1e-6

// KMeansObserved is KMeansParallel with stage observability: the k-means++
// seeding and the Lloyd sweeps record spans (pool busy time, iteration
// counts) and convergence metrics on o. Observation reads the clock only —
// never the RNG — so the clustering is bit-identical to KMeansParallel.
func KMeansObserved(vectors []SparseVector, dim, k, maxIter int, r *xrand.RNG, parallelism int, o *obs.Observer) (*KMeansResult, error) {
	return kmeansRun(vectors, dim, k, maxIter, r, parallelism, o, true)
}

// kmeansRun is the shared Lloyd implementation. With prune set, assignment
// sweeps use Hamerly-style bounds (see below) to skip full centroid scans;
// the pruned path computes the exact same float expressions whenever a
// distance is actually evaluated, so the result is bit-identical either
// way (TestKMeansPrunedMatchesExact holds the two paths together).
func kmeansRun(vectors []SparseVector, dim, k, maxIter int, r *xrand.RNG, parallelism int, o *obs.Observer, prune bool) (*KMeansResult, error) {
	n := len(vectors)
	if n == 0 {
		return nil, ErrNoData
	}
	if k <= 0 || k > n {
		return nil, errors.New("textmine: k out of range")
	}

	seedSpan := o.Start("kmeans-seed")
	centroids := seedPlusPlus(vectors, dim, k, r, parallelism, seedSpan)
	seedSpan.End()
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}

	// Buffers reused across iterations; blockInertia/blockChanged are
	// written once per block per sweep, so workers never share an element.
	cNorm2 := make([]float64, k)
	counts := make([]int, k)
	nb := par.Blocks(n)
	blockInertia := make([]float64, nb)
	blockChanged := make([]bool, nb)
	blockDist := make([]int64, nb)
	blockPruned := make([]int64, nb)

	// Hamerly-style pruning state. lb[i] lower-bounds the Euclidean
	// distance from document i to every centroid other than its assigned
	// one: it is the second-best distance recorded at i's last full scan,
	// decayed by the maximum centroid drift of every centroid update since.
	// A sweep first computes the exact distance to the assigned centroid
	// (the same expression the full scan would produce for it); when that
	// distance stays below lb[i] by more than boundEps, no other centroid
	// can be closer — or even tie — so the remaining k-1 evaluations are
	// skipped and the assignment and inertia contribution are unchanged
	// bit for bit. lb[i] is only touched by the block that owns i.
	lb := make([]float64, n)
	// lastD caches the exact squared distance from document i to its
	// assigned centroid, valid while that centroid has not moved since the
	// distance was last evaluated (and the assignment is unchanged). In a
	// converging run most centroids stop moving sweeps before the run ends,
	// so the cache removes even the single dot product the bound test costs
	// — a stable document is assigned at zero distance evaluations. Reuse is
	// bit-safe: an unmoved centroid means every input to the distance
	// expression is numerically unchanged, so recomputing it would produce
	// the same float64.
	// dirty tracks which centroids gained or lost a member in the last
	// sweep (per block during the sweep, merged after). A clean centroid's
	// member set is unchanged, so its sum, count, mean and squared norm
	// would all recompute to the same bits — the pruned path skips them and
	// rebuilds only dirty centroids, turning the O(n·nnz + k·dim) recompute
	// into work proportional to how much actually changed. Empty centroids
	// stay dirty every iteration because the reference path redraws their
	// reseed from the RNG each time.
	// cT is the centroid matrix transposed (feature-major, cT[j*k+c] =
	// centroids[c][j]). A full scan then walks the document's features once
	// and accumulates all k dot products from k-contiguous slabs, instead
	// of striding k separate dim-length rows per document. Each per-
	// centroid sum still accumulates in feature order — the exact order
	// SparseVector.Dot uses — so every distance comes out bit-identical.
	// blockAcc gives each block its own k accumulators.
	var (
		prev       []float64 // previous centroids, for drift; k*dim
		lastD      []float64
		lastDValid []bool
		cMoved     []bool
		dirty      []bool
		blockDirty []bool // nb*k, block b owns blockDirty[b*k : (b+1)*k]
		cT         []float64
		blockAcc   []float64 // nb*k, block b owns blockAcc[b*k : (b+1)*k]
	)
	if prune {
		prev = make([]float64, k*dim)
		lastD = make([]float64, n)
		lastDValid = make([]bool, n)
		cMoved = make([]bool, k)
		dirty = make([]bool, k)
		blockDirty = make([]bool, nb*k)
		cT = make([]float64, dim*k)
		for j := 0; j < dim; j++ {
			col := cT[j*k : j*k+k]
			for c := range centroids {
				col[c] = centroids[c][j]
			}
		}
		blockAcc = make([]float64, nb*k)
	}

	// One closure for every sweep (instead of one per iteration) keeps the
	// iteration loop allocation-free.
	sweep := func(b, lo, hi int) {
		partial := 0.0
		changed := false
		nDist, nPruned := int64(0), int64(0)
		for i := lo; i < hi; i++ {
			vec := vectors[i]
			if prune {
				if a := assign[i]; a >= 0 {
					var dA float64
					if lastDValid[i] {
						dA = lastD[i]
						nPruned++
					} else {
						// ||x - c||^2 = ||x||^2 + ||c||^2 - 2 x·c, ||x|| = 1.
						dA = 1 + cNorm2[a] - 2*vec.Dot(centroids[a])
						nDist++
						lastD[i] = dA
						lastDValid[i] = true
					}
					if math.Sqrt(math.Max(dA, 0))+boundEps < lb[i] {
						nPruned += int64(k - 1)
						partial += dA
						continue
					}
				}
			}
			best, bestDist, secondDist := -1, math.Inf(1), math.Inf(1)
			if prune {
				acc := blockAcc[b*k : (b+1)*k]
				for c := range acc {
					acc[c] = 0
				}
				for fi, idx := range vec.Idx {
					v := vec.Val[fi]
					col := cT[idx*k : idx*k+k]
					for c := range col {
						acc[c] += v * col[c]
					}
				}
				for c := range acc {
					d := 1 + cNorm2[c] - 2*acc[c]
					if d < bestDist {
						secondDist = bestDist
						best, bestDist = c, d
					} else if d < secondDist {
						secondDist = d
					}
				}
			} else {
				for c := range centroids {
					d := 1 + cNorm2[c] - 2*vec.Dot(centroids[c])
					if d < bestDist {
						secondDist = bestDist
						best, bestDist = c, d
					} else if d < secondDist {
						secondDist = d
					}
				}
			}
			nDist += int64(k)
			lb[i] = math.Sqrt(math.Max(secondDist, 0))
			if prune {
				lastD[i] = bestDist
				lastDValid[i] = true
			}
			if assign[i] != best {
				if prune {
					if a := assign[i]; a >= 0 {
						blockDirty[b*k+a] = true
					}
					blockDirty[b*k+best] = true
				}
				assign[i] = best
				changed = true
			}
			partial += bestDist
		}
		blockInertia[b] = partial
		blockChanged[b] = changed
		blockDist[b] = nDist
		blockPruned[b] = nPruned
	}

	lloydSpan := o.Start("kmeans-lloyd")
	var inertia float64
	var totalDist, totalPruned int64
	iter := 0
	for ; iter < maxIter; iter++ {
		for c := range centroids {
			if prune && iter > 0 && !dirty[c] {
				continue // unchanged centroid: same bits, same norm
			}
			cNorm2[c] = 0
			for _, v := range centroids[c] {
				cNorm2[c] += v * v
			}
		}
		lloydSpan.AddPool(par.ForEachBlock(parallelism, n, sweep))
		inertia = 0
		changed := false
		for b := 0; b < nb; b++ {
			inertia += blockInertia[b]
			changed = changed || blockChanged[b]
			totalDist += blockDist[b]
			totalPruned += blockPruned[b]
		}
		if !changed {
			break
		}
		// Recompute centroids. Sequential: a factor k cheaper than the
		// assignment sweep and trivially deterministic this way. The pruned
		// path rebuilds only dirty centroids — the member sums accumulate in
		// document index order either way, so a rebuilt centroid gets the
		// same bits the full pass would give it, and a skipped one keeps
		// them. Empty clusters always rebuild because the reference path
		// redraws their reseed each iteration (same RNG sequence).
		if prune {
			for c := range dirty {
				dirty[c] = counts[c] == 0
			}
			for b := 0; b < nb; b++ {
				row := blockDirty[b*k : (b+1)*k]
				for c, d := range row {
					if d {
						dirty[c] = true
						row[c] = false
					}
				}
			}
			for c := range centroids {
				if !dirty[c] {
					continue
				}
				copy(prev[c*dim:(c+1)*dim], centroids[c])
				counts[c] = 0
				for j := range centroids[c] {
					centroids[c][j] = 0
				}
			}
			for i, vec := range vectors {
				if a := assign[i]; dirty[a] {
					vec.AddTo(centroids[a])
					counts[a]++
				}
			}
			for c := range centroids {
				if !dirty[c] {
					continue
				}
				if counts[c] == 0 {
					// Re-seed an empty cluster at a random document.
					copyInto(centroids[c], vectors[r.Intn(n)])
					continue
				}
				inv := 1 / float64(counts[c])
				for j := range centroids[c] {
					centroids[c][j] *= inv
				}
			}
			// Refresh the transposed matrix feature-major: the writes land
			// in each feature's k-slab and the reads stream one row per
			// dirty centroid, instead of a stride-k write per coordinate.
			for j := 0; j < dim; j++ {
				col := cT[j*k : j*k+k]
				for c := range centroids {
					if dirty[c] {
						col[c] = centroids[c][j]
					}
				}
			}
		} else {
			for c := range counts {
				counts[c] = 0
			}
			for c := range centroids {
				for j := range centroids[c] {
					centroids[c][j] = 0
				}
			}
			for i, vec := range vectors {
				vec.AddTo(centroids[assign[i]])
				counts[assign[i]]++
			}
			for c := range centroids {
				if counts[c] == 0 {
					// Re-seed an empty cluster at a random document.
					copyInto(centroids[c], vectors[r.Intn(n)])
					continue
				}
				inv := 1 / float64(counts[c])
				for j := range centroids[c] {
					centroids[c][j] *= inv
				}
			}
		}
		if prune {
			// Every lower bound loses at most the largest distance any
			// centroid just moved; an empty-cluster reseed simply shows up
			// as a large drift and disables pruning until bounds tighten.
			// The same pass flags which centroids moved at all, which is
			// what invalidates the cached assigned-centroid distances.
			maxDrift := 0.0
			anyMoved := false
			for c := range centroids {
				if !dirty[c] {
					cMoved[c] = false // skipped rebuild: identical bits
					continue
				}
				ss := 0.0
				moved := false
				old := prev[c*dim : (c+1)*dim]
				for j, v := range centroids[c] {
					dv := v - old[j]
					if dv != 0 {
						moved = true
					}
					ss += dv * dv
				}
				cMoved[c] = moved
				if moved {
					anyMoved = true
				}
				if d := math.Sqrt(ss); d > maxDrift {
					maxDrift = d
				}
			}
			if maxDrift > 0 {
				for i := range lb {
					lb[i] -= maxDrift
				}
			}
			if anyMoved {
				for i, a := range assign {
					if cMoved[a] {
						lastDValid[i] = false
					}
				}
			}
		}
	}
	lloydSpan.End()
	m := o.Metrics()
	m.Add("textmine.kmeans_iterations", int64(iter))
	m.Add("textmine.kmeans_distances", totalDist)
	m.Add("textmine.kmeans_distances_pruned", totalPruned)
	if iter < maxIter {
		m.Add("textmine.kmeans_converged", 1)
	} else {
		m.Add("textmine.kmeans_iteration_capped", 1)
	}
	return &KMeansResult{Assignments: assign, Centroids: centroids, Inertia: inertia, Iterations: iter}, nil
}

func copyInto(dst []float64, src SparseVector) {
	for i := range dst {
		dst[i] = 0
	}
	src.AddTo(dst)
}

// seedPlusPlus picks k initial centroids with the k-means++ D² weighting.
// All k centroids share one contiguous allocation, and the D² refresh after
// each pick runs across parallelism workers with per-block totals merged in
// block order — same bits as the sequential loop. Pool accounting for the
// D² refreshes lands on sp.
func seedPlusPlus(vectors []SparseVector, dim, k int, r *xrand.RNG, parallelism int, sp *obs.Span) [][]float64 {
	n := len(vectors)
	backing := make([]float64, k*dim)
	centroids := make([][]float64, 0, k)
	next := func() []float64 {
		lo := len(centroids) * dim
		return backing[lo : lo+dim : lo+dim]
	}

	first := next()
	copyInto(first, vectors[r.Intn(n)])
	centroids = append(centroids, first)

	dist2 := make([]float64, n)
	for i := range dist2 {
		dist2[i] = math.Inf(1)
	}
	nb := par.Blocks(n)
	blockTotal := make([]float64, nb)
	var last []float64
	var lastNorm2 float64
	update := func(b, lo, hi int) {
		partial := 0.0
		for i := lo; i < hi; i++ {
			d := 1 + lastNorm2 - 2*vectors[i].Dot(last)
			if d < 0 {
				d = 0
			}
			if d < dist2[i] {
				dist2[i] = d
			}
			partial += dist2[i]
		}
		blockTotal[b] = partial
	}
	for len(centroids) < k {
		last = centroids[len(centroids)-1]
		lastNorm2 = 0
		for _, v := range last {
			lastNorm2 += v * v
		}
		sp.AddPool(par.ForEachBlock(parallelism, n, update))
		total := 0.0
		for b := 0; b < nb; b++ {
			total += blockTotal[b]
		}
		var pick int
		if total <= 0 {
			pick = r.Intn(n)
		} else {
			target := r.Float64() * total
			acc := 0.0
			pick = n - 1
			for i, d := range dist2 {
				acc += d
				if target < acc {
					pick = i
					break
				}
			}
		}
		c := next()
		copyInto(c, vectors[pick])
		centroids = append(centroids, c)
	}
	return centroids
}
