package textmine

import (
	"errors"
	"math"

	"failscope/internal/xrand"
)

// ErrNoData is returned when clustering is attempted on an empty corpus.
var ErrNoData = errors.New("textmine: no documents to cluster")

// KMeansResult is the outcome of one clustering run.
type KMeansResult struct {
	Assignments []int       // cluster index per document
	Centroids   [][]float64 // dense centroids, unit space
	Inertia     float64     // sum of squared distances to assigned centroid
	Iterations  int
}

// KMeans clusters unit-normalized sparse vectors into k clusters using
// k-means++ seeding and Lloyd iterations. Because the vectors are unit
// length, squared Euclidean distance is 2 − 2·cosine, so this is spherical
// k-means in effect — the standard choice for TF-IDF ticket text.
func KMeans(vectors []SparseVector, dim, k, maxIter int, r *xrand.RNG) (*KMeansResult, error) {
	n := len(vectors)
	if n == 0 {
		return nil, ErrNoData
	}
	if k <= 0 || k > n {
		return nil, errors.New("textmine: k out of range")
	}

	centroids := seedPlusPlus(vectors, dim, k, r)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}

	var inertia float64
	iter := 0
	for ; iter < maxIter; iter++ {
		changed := false
		inertia = 0
		cNorm2 := make([]float64, k)
		for c := range centroids {
			for _, v := range centroids[c] {
				cNorm2[c] += v * v
			}
		}
		for i, vec := range vectors {
			best, bestDist := -1, math.Inf(1)
			for c := range centroids {
				// ||x - c||^2 = ||x||^2 + ||c||^2 - 2 x·c, with ||x|| = 1.
				d := 1 + cNorm2[c] - 2*vec.Dot(centroids[c])
				if d < bestDist {
					best, bestDist = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
			inertia += bestDist
		}
		if !changed {
			break
		}
		// Recompute centroids.
		counts := make([]int, k)
		for c := range centroids {
			for j := range centroids[c] {
				centroids[c][j] = 0
			}
		}
		for i, vec := range vectors {
			vec.AddTo(centroids[assign[i]])
			counts[assign[i]]++
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random document.
				copyInto(centroids[c], vectors[r.Intn(n)], dim)
				continue
			}
			inv := 1 / float64(counts[c])
			for j := range centroids[c] {
				centroids[c][j] *= inv
			}
		}
	}
	return &KMeansResult{Assignments: assign, Centroids: centroids, Inertia: inertia, Iterations: iter}, nil
}

func copyInto(dst []float64, src SparseVector, dim int) {
	for i := range dst {
		dst[i] = 0
	}
	src.AddTo(dst)
}

// seedPlusPlus picks k initial centroids with the k-means++ D² weighting.
func seedPlusPlus(vectors []SparseVector, dim, k int, r *xrand.RNG) [][]float64 {
	n := len(vectors)
	centroids := make([][]float64, 0, k)
	first := make([]float64, dim)
	copyInto(first, vectors[r.Intn(n)], dim)
	centroids = append(centroids, first)

	dist2 := make([]float64, n)
	for i := range dist2 {
		dist2[i] = math.Inf(1)
	}
	for len(centroids) < k {
		last := centroids[len(centroids)-1]
		var lastNorm2 float64
		for _, v := range last {
			lastNorm2 += v * v
		}
		total := 0.0
		for i, vec := range vectors {
			d := 1 + lastNorm2 - 2*vec.Dot(last)
			if d < 0 {
				d = 0
			}
			if d < dist2[i] {
				dist2[i] = d
			}
			total += dist2[i]
		}
		var pick int
		if total <= 0 {
			pick = r.Intn(n)
		} else {
			target := r.Float64() * total
			acc := 0.0
			pick = n - 1
			for i, d := range dist2 {
				acc += d
				if target < acc {
					pick = i
					break
				}
			}
		}
		c := make([]float64, dim)
		copyInto(c, vectors[pick], dim)
		centroids = append(centroids, c)
	}
	return centroids
}
