package textmine

import (
	"errors"
	"math"

	"failscope/internal/obs"
	"failscope/internal/par"
	"failscope/internal/xrand"
)

// ErrNoData is returned when clustering is attempted on an empty corpus.
var ErrNoData = errors.New("textmine: no documents to cluster")

// KMeansResult is the outcome of one clustering run.
type KMeansResult struct {
	Assignments []int       // cluster index per document
	Centroids   [][]float64 // dense centroids, unit space
	Inertia     float64     // sum of squared distances to assigned centroid
	Iterations  int
}

// KMeans clusters unit-normalized sparse vectors into k clusters using
// k-means++ seeding and Lloyd iterations. Because the vectors are unit
// length, squared Euclidean distance is 2 − 2·cosine, so this is spherical
// k-means in effect — the standard choice for TF-IDF ticket text.
//
// KMeans is the sequential reference; KMeansParallel produces the same
// result bit for bit at any worker count.
func KMeans(vectors []SparseVector, dim, k, maxIter int, r *xrand.RNG) (*KMeansResult, error) {
	return KMeansParallel(vectors, dim, k, maxIter, r, 1)
}

// KMeansParallel is KMeans with the assignment step (the O(n·k·nnz) bulk of
// the work) and the k-means++ D² update fanned out over parallelism workers.
// Documents are partitioned into fixed par.BlockSize blocks regardless of
// worker count and the per-block inertia partials are merged in block
// order, so the float arithmetic — and therefore every assignment, centroid
// and the RNG draw sequence — is identical to the sequential path.
func KMeansParallel(vectors []SparseVector, dim, k, maxIter int, r *xrand.RNG, parallelism int) (*KMeansResult, error) {
	return KMeansObserved(vectors, dim, k, maxIter, r, parallelism, nil)
}

// KMeansObserved is KMeansParallel with stage observability: the k-means++
// seeding and the Lloyd sweeps record spans (pool busy time, iteration
// counts) and convergence metrics on o. Observation reads the clock only —
// never the RNG — so the clustering is bit-identical to KMeansParallel.
func KMeansObserved(vectors []SparseVector, dim, k, maxIter int, r *xrand.RNG, parallelism int, o *obs.Observer) (*KMeansResult, error) {
	n := len(vectors)
	if n == 0 {
		return nil, ErrNoData
	}
	if k <= 0 || k > n {
		return nil, errors.New("textmine: k out of range")
	}

	seedSpan := o.Start("kmeans-seed")
	centroids := seedPlusPlus(vectors, dim, k, r, parallelism, seedSpan)
	seedSpan.End()
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}

	// Buffers reused across iterations; blockInertia/blockChanged are
	// written once per block per sweep, so workers never share an element.
	cNorm2 := make([]float64, k)
	counts := make([]int, k)
	nb := par.Blocks(n)
	blockInertia := make([]float64, nb)
	blockChanged := make([]bool, nb)

	// One closure for every sweep (instead of one per iteration) keeps the
	// iteration loop allocation-free.
	sweep := func(b, lo, hi int) {
		partial := 0.0
		changed := false
		for i := lo; i < hi; i++ {
			vec := vectors[i]
			best, bestDist := -1, math.Inf(1)
			for c := range centroids {
				// ||x - c||^2 = ||x||^2 + ||c||^2 - 2 x·c, with ||x|| = 1.
				d := 1 + cNorm2[c] - 2*vec.Dot(centroids[c])
				if d < bestDist {
					best, bestDist = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
			partial += bestDist
		}
		blockInertia[b] = partial
		blockChanged[b] = changed
	}

	lloydSpan := o.Start("kmeans-lloyd")
	var inertia float64
	iter := 0
	for ; iter < maxIter; iter++ {
		for c := range centroids {
			cNorm2[c] = 0
			for _, v := range centroids[c] {
				cNorm2[c] += v * v
			}
		}
		lloydSpan.AddPool(par.ForEachBlock(parallelism, n, sweep))
		inertia = 0
		changed := false
		for b := 0; b < nb; b++ {
			inertia += blockInertia[b]
			changed = changed || blockChanged[b]
		}
		if !changed {
			break
		}
		// Recompute centroids. Sequential: a factor k cheaper than the
		// assignment sweep and trivially deterministic this way.
		for c := range counts {
			counts[c] = 0
		}
		for c := range centroids {
			for j := range centroids[c] {
				centroids[c][j] = 0
			}
		}
		for i, vec := range vectors {
			vec.AddTo(centroids[assign[i]])
			counts[assign[i]]++
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random document.
				copyInto(centroids[c], vectors[r.Intn(n)])
				continue
			}
			inv := 1 / float64(counts[c])
			for j := range centroids[c] {
				centroids[c][j] *= inv
			}
		}
	}
	lloydSpan.End()
	m := o.Metrics()
	m.Add("textmine.kmeans_iterations", int64(iter))
	if iter < maxIter {
		m.Add("textmine.kmeans_converged", 1)
	} else {
		m.Add("textmine.kmeans_iteration_capped", 1)
	}
	return &KMeansResult{Assignments: assign, Centroids: centroids, Inertia: inertia, Iterations: iter}, nil
}

func copyInto(dst []float64, src SparseVector) {
	for i := range dst {
		dst[i] = 0
	}
	src.AddTo(dst)
}

// seedPlusPlus picks k initial centroids with the k-means++ D² weighting.
// All k centroids share one contiguous allocation, and the D² refresh after
// each pick runs across parallelism workers with per-block totals merged in
// block order — same bits as the sequential loop. Pool accounting for the
// D² refreshes lands on sp.
func seedPlusPlus(vectors []SparseVector, dim, k int, r *xrand.RNG, parallelism int, sp *obs.Span) [][]float64 {
	n := len(vectors)
	backing := make([]float64, k*dim)
	centroids := make([][]float64, 0, k)
	next := func() []float64 {
		lo := len(centroids) * dim
		return backing[lo : lo+dim : lo+dim]
	}

	first := next()
	copyInto(first, vectors[r.Intn(n)])
	centroids = append(centroids, first)

	dist2 := make([]float64, n)
	for i := range dist2 {
		dist2[i] = math.Inf(1)
	}
	nb := par.Blocks(n)
	blockTotal := make([]float64, nb)
	var last []float64
	var lastNorm2 float64
	update := func(b, lo, hi int) {
		partial := 0.0
		for i := lo; i < hi; i++ {
			d := 1 + lastNorm2 - 2*vectors[i].Dot(last)
			if d < 0 {
				d = 0
			}
			if d < dist2[i] {
				dist2[i] = d
			}
			partial += dist2[i]
		}
		blockTotal[b] = partial
	}
	for len(centroids) < k {
		last = centroids[len(centroids)-1]
		lastNorm2 = 0
		for _, v := range last {
			lastNorm2 += v * v
		}
		sp.AddPool(par.ForEachBlock(parallelism, n, update))
		total := 0.0
		for b := 0; b < nb; b++ {
			total += blockTotal[b]
		}
		var pick int
		if total <= 0 {
			pick = r.Intn(n)
		} else {
			target := r.Float64() * total
			acc := 0.0
			pick = n - 1
			for i, d := range dist2 {
				acc += d
				if target < acc {
					pick = i
					break
				}
			}
		}
		c := next()
		copyInto(c, vectors[pick])
		centroids = append(centroids, c)
	}
	return centroids
}
