package textmine

// KeywordRule scores a document for one label by counting keyword hits.
type KeywordRule struct {
	Label    int
	Keywords []string
}

// KeywordClassifier is the rule-based baseline the k-means pipeline is
// ablated against: label by the rule with the most keyword hits, falling
// back to Default when nothing matches. It represents the "grep the ticket
// text" approach an operator would hand-write.
type KeywordClassifier struct {
	Rules   []KeywordRule
	Default int
}

// Predict labels one document.
func (k *KeywordClassifier) Predict(text string) int {
	tokens := Tokenize(text)
	set := make(map[string]bool, len(tokens))
	for _, tok := range tokens {
		set[tok] = true
	}
	best, bestHits := k.Default, 0
	for _, rule := range k.Rules {
		hits := 0
		for _, kw := range rule.Keywords {
			if set[kw] {
				hits++
			}
		}
		if hits > bestHits {
			best, bestHits = rule.Label, hits
		}
	}
	return best
}

// Evaluate scores the classifier on a labeled set.
func (k *KeywordClassifier) Evaluate(texts []string, truth []int) (*ConfusionMatrix, error) {
	if len(texts) != len(truth) {
		return nil, ErrNoData
	}
	cm := &ConfusionMatrix{Counts: make(map[[2]int]int)}
	seen := make(map[int]bool)
	for i, t := range texts {
		pred := k.Predict(t)
		cm.Counts[[2]int{truth[i], pred}]++
		cm.Total++
		if pred == truth[i] {
			cm.Hits++
		}
		for _, l := range []int{truth[i], pred} {
			if !seen[l] {
				seen[l] = true
				cm.Labels = append(cm.Labels, l)
			}
		}
	}
	sortInts(cm.Labels)
	return cm, nil
}
