package textmine

import (
	"encoding/json"
	"fmt"
	"math"

	"failscope/internal/obs"
	"failscope/internal/par"
	"failscope/internal/xrand"
)

// Classifier assigns integer labels to documents by nearest k-means
// centroid, with each cluster labeled by the majority ground-truth label of
// a (possibly small) manually labeled subset — the "manual labeling and
// k-means clustering ... in a best-effort manner" procedure of §III.A.
type Classifier struct {
	vocab     *Vocabulary
	centroids [][]float64
	norms     []float64 // squared norms of centroids, cached for Predict
	labels    []int     // label per centroid
	purity    float64   // training-set cluster purity, see Purity
}

// TrainOptions controls classifier training.
type TrainOptions struct {
	Clusters int // number of k-means clusters; ≥ number of distinct labels
	MaxIter  int // Lloyd iteration cap
	MinDocs  int // vocabulary document-frequency floor
	// LabeledFraction is the fraction of training documents whose ground
	// truth is consulted when labeling clusters, simulating the limited
	// manual labeling effort. 1.0 uses every label.
	LabeledFraction float64
	// BalancedVotes weights cluster-labeling votes by inverse class
	// frequency so that rare classes (hardware, network) can claim the
	// clusters they dominate relatively, instead of being outvoted by the
	// bulk classes everywhere.
	BalancedVotes bool
	// Parallelism is the worker count for tokenization, vectorization and
	// the k-means sweeps: 0 means GOMAXPROCS, 1 the sequential reference.
	// The trained classifier is identical at every setting.
	Parallelism int

	// Observer, when non-nil, records training sub-stage spans (tokenize,
	// vectorize, kmeans seeding and Lloyd sweeps, cluster labeling) and
	// textmine metrics. It never touches the RNG: the trained classifier
	// is identical with and without it.
	Observer *obs.Observer
}

// DefaultTrainOptions mirrors the paper's setup: more clusters than
// classes so heterogeneous phrasing can split, full manual check.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{Clusters: 64, MaxIter: 60, MinDocs: 2, LabeledFraction: 1.0, BalancedVotes: true}
}

// Train builds a classifier from documents and their ground-truth labels.
func Train(texts []string, labels []int, opts TrainOptions, r *xrand.RNG) (*Classifier, error) {
	if len(texts) != len(labels) {
		return nil, fmt.Errorf("textmine: %d texts but %d labels", len(texts), len(labels))
	}
	if len(texts) == 0 {
		return nil, ErrNoData
	}
	o := opts.Observer
	tokSpan := o.Start("tokenize")
	docs := make([][]string, len(texts))
	tokSpan.AddPool(par.ForEach(opts.Parallelism, len(texts), func(i int) {
		docs[i] = Tokenize(texts[i])
	}))
	tokSpan.End()

	vecSpan := o.Start("vectorize")
	vocab := BuildVocabulary(docs, opts.MinDocs)
	vectors := make([]SparseVector, len(docs))
	vecSpan.AddPool(par.ForEach(opts.Parallelism, len(docs), func(i int) {
		vectors[i] = vocab.Vectorize(docs[i])
	}))
	vecSpan.End()
	o.Metrics().Gauge("textmine.vocab_size").Set(float64(vocab.Size()))

	k := opts.Clusters
	if k > len(vectors) {
		k = len(vectors)
	}
	res, err := KMeansObserved(vectors, vocab.Size(), k, opts.MaxIter, r, opts.Parallelism, o)
	if err != nil {
		return nil, err
	}

	// Majority-vote label per cluster over the manually labeled subset.
	lblSpan := o.Start("label-clusters")
	defer lblSpan.End()
	frac := opts.LabeledFraction
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	votes := make([]map[int]float64, k)
	raw := make([]map[int]int, k) // unweighted counts, for the purity score
	for c := range votes {
		votes[c] = make(map[int]float64)
		raw[c] = make(map[int]int)
	}
	classFreq := make(map[int]int)
	for _, l := range labels {
		classFreq[l]++
	}
	weight := func(lbl int) float64 {
		if !opts.BalancedVotes || classFreq[lbl] == 0 {
			return 1
		}
		return 1 / math.Sqrt(float64(classFreq[lbl]))
	}
	for i, c := range res.Assignments {
		if frac < 1 && r.Float64() >= frac {
			continue
		}
		votes[c][labels[i]] += weight(labels[i])
		raw[c][labels[i]]++
	}
	clusterLabels := make([]int, k)
	globalMajority := majorityLabel(labels)
	for c := range votes {
		best, bestN := globalMajority, -1.0
		for lbl, n := range votes[c] {
			if n > bestN || (n == bestN && lbl < best) {
				best, bestN = lbl, n
			}
		}
		clusterLabels[c] = best
	}
	// Cluster purity: the fraction of labeled training documents that sit
	// in a cluster dominated by their own label. Low purity means the text
	// clusters do not align with the resolution classes, so the cluster
	// labeling — and everything downstream — rests on mixed evidence.
	var pureDocs, labeledDocs int
	for c := range raw {
		total, max := 0, 0
		for _, n := range raw[c] {
			total += n
			if n > max {
				max = n
			}
		}
		pureDocs += max
		labeledDocs += total
	}
	purity := 0.0
	if labeledDocs > 0 {
		purity = float64(pureDocs) / float64(labeledDocs)
	}
	o.Metrics().Gauge("textmine.cluster_purity").Set(purity)
	if purity < 0.5 {
		o.Log().Warn("low k-means cluster purity", "purity", purity, "clusters", k, "labeled_docs", labeledDocs)
	}

	norms := make([]float64, len(res.Centroids))
	for i, c := range res.Centroids {
		for _, v := range c {
			norms[i] += v * v
		}
	}
	return &Classifier{vocab: vocab, centroids: res.Centroids, norms: norms, labels: clusterLabels, purity: purity}, nil
}

func majorityLabel(labels []int) int {
	counts := make(map[int]int)
	for _, l := range labels {
		counts[l]++
	}
	best, bestN := 0, -1
	for lbl, n := range counts {
		if n > bestN || (n == bestN && lbl < best) {
			best, bestN = lbl, n
		}
	}
	return best
}

// Purity returns the training-set cluster purity: the fraction of labeled
// training documents whose cluster is dominated by their own label (1.0 =
// every cluster is single-class). Computed over the manually labeled
// subset the cluster labeling consulted.
func (c *Classifier) Purity() float64 { return c.purity }

// Predict returns the label of the nearest centroid. It only reads the
// classifier, so callers may predict from concurrent workers.
func (c *Classifier) Predict(text string) int {
	vec := c.vocab.Vectorize(Tokenize(text))
	best, bestDist := 0, math.Inf(1)
	for i, centroid := range c.centroids {
		d := 1 + c.norms[i] - 2*vec.Dot(centroid)
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return c.labels[best]
}

// ConfusionMatrix tabulates predictions against ground truth.
type ConfusionMatrix struct {
	Labels []int
	Counts map[[2]int]int // [truth, predicted] -> count
	Total  int
	Hits   int
}

// Evaluate scores the classifier on a labeled test set.
func (c *Classifier) Evaluate(texts []string, truth []int) (*ConfusionMatrix, error) {
	if len(texts) != len(truth) {
		return nil, fmt.Errorf("textmine: %d texts but %d labels", len(texts), len(truth))
	}
	cm := &ConfusionMatrix{Counts: make(map[[2]int]int)}
	seen := make(map[int]bool)
	for i, t := range texts {
		pred := c.Predict(t)
		cm.Counts[[2]int{truth[i], pred}]++
		cm.Total++
		if pred == truth[i] {
			cm.Hits++
		}
		if !seen[truth[i]] {
			seen[truth[i]] = true
			cm.Labels = append(cm.Labels, truth[i])
		}
		if !seen[pred] {
			seen[pred] = true
			cm.Labels = append(cm.Labels, pred)
		}
	}
	sortInts(cm.Labels)
	return cm, nil
}

// confusionJSON is the wire form of a ConfusionMatrix: the Counts map is
// keyed by [2]int, which encoding/json cannot represent, so it travels as
// a dense matrix in Labels order (rows = truth, cols = predicted).
type confusionJSON struct {
	Labels []int   `json:"labels"`
	Counts [][]int `json:"counts"`
	Total  int     `json:"total"`
	Hits   int     `json:"hits"`
}

// MarshalJSON implements json.Marshaler.
func (cm *ConfusionMatrix) MarshalJSON() ([]byte, error) {
	cj := confusionJSON{Labels: cm.Labels, Total: cm.Total, Hits: cm.Hits}
	if cj.Labels == nil {
		cj.Labels = []int{}
	}
	cj.Counts = make([][]int, len(cm.Labels))
	for i, truth := range cm.Labels {
		cj.Counts[i] = make([]int, len(cm.Labels))
		for j, pred := range cm.Labels {
			cj.Counts[i][j] = cm.Counts[[2]int{truth, pred}]
		}
	}
	return json.Marshal(cj)
}

// UnmarshalJSON implements json.Unmarshaler.
func (cm *ConfusionMatrix) UnmarshalJSON(data []byte) error {
	var cj confusionJSON
	if err := json.Unmarshal(data, &cj); err != nil {
		return err
	}
	if len(cj.Counts) != len(cj.Labels) {
		return fmt.Errorf("textmine: confusion matrix has %d rows for %d labels", len(cj.Counts), len(cj.Labels))
	}
	cm.Labels = cj.Labels
	cm.Total = cj.Total
	cm.Hits = cj.Hits
	cm.Counts = make(map[[2]int]int)
	for i, row := range cj.Counts {
		if len(row) != len(cj.Labels) {
			return fmt.Errorf("textmine: confusion matrix row %d has %d columns for %d labels", i, len(row), len(cj.Labels))
		}
		for j, n := range row {
			if n != 0 {
				cm.Counts[[2]int{cj.Labels[i], cj.Labels[j]}] = n
			}
		}
	}
	return nil
}

// Accuracy returns the fraction of correct predictions.
func (cm *ConfusionMatrix) Accuracy() float64 {
	if cm.Total == 0 {
		return math.NaN()
	}
	return float64(cm.Hits) / float64(cm.Total)
}

// Recall returns the per-label recall; NaN when the label never occurs.
func (cm *ConfusionMatrix) Recall(label int) float64 {
	total, hit := 0, 0
	for key, n := range cm.Counts {
		if key[0] == label {
			total += n
			if key[1] == label {
				hit += n
			}
		}
	}
	if total == 0 {
		return math.NaN()
	}
	return float64(hit) / float64(total)
}

// Precision returns the per-label precision; NaN when never predicted.
func (cm *ConfusionMatrix) Precision(label int) float64 {
	total, hit := 0, 0
	for key, n := range cm.Counts {
		if key[1] == label {
			total += n
			if key[0] == label {
				hit += n
			}
		}
	}
	if total == 0 {
		return math.NaN()
	}
	return float64(hit) / float64(total)
}
