package textmine

import (
	"encoding/json"
	"fmt"
	"math"

	"failscope/internal/obs"
	"failscope/internal/par"
	"failscope/internal/xrand"
)

// Classifier assigns integer labels to documents by nearest k-means
// centroid, with each cluster labeled by the majority ground-truth label of
// a (possibly small) manually labeled subset — the "manual labeling and
// k-means clustering ... in a best-effort manner" procedure of §III.A.
type Classifier struct {
	vocab     *Vocabulary
	centroids [][]float64
	norms     []float64 // squared norms of centroids, cached for Predict
	// ccDist[i][j] is the Euclidean distance between centroids i and j,
	// cached at training time so Predict can skip centroids by the
	// triangle inequality (nil disables pruning).
	ccDist [][]float64
	labels []int   // label per centroid
	purity float64 // training-set cluster purity, see Purity
}

// TrainOptions controls classifier training.
type TrainOptions struct {
	Clusters int // number of k-means clusters; ≥ number of distinct labels
	MaxIter  int // Lloyd iteration cap
	MinDocs  int // vocabulary document-frequency floor
	// LabeledFraction is the fraction of training documents whose ground
	// truth is consulted when labeling clusters, simulating the limited
	// manual labeling effort. 1.0 uses every label.
	LabeledFraction float64
	// BalancedVotes weights cluster-labeling votes by inverse class
	// frequency so that rare classes (hardware, network) can claim the
	// clusters they dominate relatively, instead of being outvoted by the
	// bulk classes everywhere.
	BalancedVotes bool
	// Parallelism is the worker count for tokenization, vectorization and
	// the k-means sweeps: 0 means GOMAXPROCS, 1 the sequential reference.
	// The trained classifier is identical at every setting.
	Parallelism int

	// Observer, when non-nil, records training sub-stage spans (tokenize,
	// vectorize, kmeans seeding and Lloyd sweeps, cluster labeling) and
	// textmine metrics. It never touches the RNG: the trained classifier
	// is identical with and without it.
	Observer *obs.Observer
}

// DefaultTrainOptions mirrors the paper's setup: more clusters than
// classes so heterogeneous phrasing can split, full manual check.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{Clusters: 64, MaxIter: 60, MinDocs: 2, LabeledFraction: 1.0, BalancedVotes: true}
}

// Train builds a classifier from documents and their ground-truth labels.
func Train(texts []string, labels []int, opts TrainOptions, r *xrand.RNG) (*Classifier, error) {
	if len(texts) != len(labels) {
		return nil, fmt.Errorf("textmine: %d texts but %d labels", len(texts), len(labels))
	}
	if len(texts) == 0 {
		return nil, ErrNoData
	}
	o := opts.Observer
	tokSpan := o.Start("tokenize")
	docs := make([][]string, len(texts))
	tokSpan.AddPool(par.ForEach(opts.Parallelism, len(texts), func(i int) {
		docs[i] = Tokenize(texts[i])
	}))
	tokSpan.End()

	vecSpan := o.Start("vectorize")
	vocab := BuildVocabulary(docs, opts.MinDocs)
	vectors := make([]SparseVector, len(docs))
	vecSpan.AddPool(par.ForEach(opts.Parallelism, len(docs), func(i int) {
		vectors[i] = vocab.Vectorize(docs[i])
	}))
	vecSpan.End()
	o.Metrics().Gauge("textmine.vocab_size").Set(float64(vocab.Size()))

	k := opts.Clusters
	if k > len(vectors) {
		k = len(vectors)
	}
	res, err := KMeansObserved(vectors, vocab.Size(), k, opts.MaxIter, r, opts.Parallelism, o)
	if err != nil {
		return nil, err
	}

	// Majority-vote label per cluster over the manually labeled subset.
	lblSpan := o.Start("label-clusters")
	defer lblSpan.End()
	frac := opts.LabeledFraction
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	votes := make([]map[int]float64, k)
	raw := make([]map[int]int, k) // unweighted counts, for the purity score
	for c := range votes {
		votes[c] = make(map[int]float64)
		raw[c] = make(map[int]int)
	}
	classFreq := make(map[int]int)
	for _, l := range labels {
		classFreq[l]++
	}
	weight := func(lbl int) float64 {
		if !opts.BalancedVotes || classFreq[lbl] == 0 {
			return 1
		}
		return 1 / math.Sqrt(float64(classFreq[lbl]))
	}
	for i, c := range res.Assignments {
		if frac < 1 && r.Float64() >= frac {
			continue
		}
		votes[c][labels[i]] += weight(labels[i])
		raw[c][labels[i]]++
	}
	clusterLabels := make([]int, k)
	globalMajority := majorityLabel(labels)
	for c := range votes {
		best, bestN := globalMajority, -1.0
		for lbl, n := range votes[c] {
			if n > bestN || (n == bestN && lbl < best) {
				best, bestN = lbl, n
			}
		}
		clusterLabels[c] = best
	}
	// Cluster purity: the fraction of labeled training documents that sit
	// in a cluster dominated by their own label. Low purity means the text
	// clusters do not align with the resolution classes, so the cluster
	// labeling — and everything downstream — rests on mixed evidence.
	var pureDocs, labeledDocs int
	for c := range raw {
		total, max := 0, 0
		for _, n := range raw[c] {
			total += n
			if n > max {
				max = n
			}
		}
		pureDocs += max
		labeledDocs += total
	}
	purity := 0.0
	if labeledDocs > 0 {
		purity = float64(pureDocs) / float64(labeledDocs)
	}
	o.Metrics().Gauge("textmine.cluster_purity").Set(purity)
	if purity < 0.5 {
		o.Log().Warn("low k-means cluster purity", "purity", purity, "clusters", k, "labeled_docs", labeledDocs)
	}

	norms := make([]float64, len(res.Centroids))
	for i, c := range res.Centroids {
		for _, v := range c {
			norms[i] += v * v
		}
	}
	return &Classifier{
		vocab:     vocab,
		centroids: res.Centroids,
		norms:     norms,
		ccDist:    centroidDistances(res.Centroids, opts.Parallelism),
		labels:    clusterLabels,
		purity:    purity,
	}, nil
}

// centroidDistances returns the k×k Euclidean inter-centroid distance
// matrix, the cache Predict's triangle-inequality pruning reads. Rows fan
// out over parallelism workers; row i owns every (i, j>i) pair, so the two
// symmetric cells are written by exactly one worker.
func centroidDistances(centroids [][]float64, parallelism int) [][]float64 {
	k := len(centroids)
	backing := make([]float64, k*k)
	dist := make([][]float64, k)
	for i := range dist {
		dist[i] = backing[i*k : (i+1)*k : (i+1)*k]
	}
	par.ForEach(parallelism, k, func(i int) {
		ci := centroids[i]
		for j := i + 1; j < k; j++ {
			ss := 0.0
			for m, v := range ci {
				dv := v - centroids[j][m]
				ss += dv * dv
			}
			d := math.Sqrt(ss)
			dist[i][j] = d
			dist[j][i] = d
		}
	})
	return dist
}

func majorityLabel(labels []int) int {
	counts := make(map[int]int)
	for _, l := range labels {
		counts[l]++
	}
	best, bestN := 0, -1
	for lbl, n := range counts {
		if n > bestN || (n == bestN && lbl < best) {
			best, bestN = lbl, n
		}
	}
	return best
}

// Purity returns the training-set cluster purity: the fraction of labeled
// training documents whose cluster is dominated by their own label (1.0 =
// every cluster is single-class). Computed over the manually labeled
// subset the cluster labeling consulted.
func (c *Classifier) Purity() float64 { return c.purity }

// PredictScratch carries the reusable buffers and pruning counters of a
// prediction loop. A scratch may be reused across any number of PredictWith
// calls (and across classifiers) but not from concurrent goroutines; the
// zero value is ready to use.
type PredictScratch struct {
	tokens []string
	idxs   []int
	vals   []float64

	// Distances counts centroid distance evaluations performed and Pruned
	// the evaluations skipped by the triangle-inequality bound; callers
	// fold them into their metrics registry.
	Distances int64
	Pruned    int64
}

// Predict returns the label of the nearest centroid. It only reads the
// classifier, so callers may predict from concurrent workers. Loops that
// predict many tickets should reuse a PredictScratch via PredictWith to
// avoid the per-call buffer allocations.
func (c *Classifier) Predict(text string) int {
	var s PredictScratch
	return c.PredictWith(&s, text)
}

// PredictWith is Predict with caller-owned scratch buffers.
func (c *Classifier) PredictWith(s *PredictScratch, text string) int {
	s.tokens = AppendTokens(s.tokens[:0], text)
	return c.predictTokens(s, s.tokens)
}

// predictTokens classifies an already-tokenized document. Centroids are
// scanned in index order exactly as the exhaustive loop would, except that
// centroid i is skipped when the cached inter-centroid distance proves it
// strictly farther than the incumbent: with e = ‖x−c_best‖, the triangle
// inequality gives ‖x−c_i‖ ≥ ‖c_best−c_i‖ − e > e + boundEps, so the
// skipped evaluation could never have won (nor tied — boundEps absorbs
// rounding), leaving the chosen label bit-identical to the full scan.
func (c *Classifier) predictTokens(s *PredictScratch, tokens []string) int {
	vec := c.vocab.vectorizeInto(s.idxs, s.vals, tokens)
	s.idxs, s.vals = vec.Idx, vec.Val
	best, bestDist := 0, math.Inf(1)
	eBest := math.Inf(1)
	for i, centroid := range c.centroids {
		if c.ccDist != nil && !math.IsInf(eBest, 1) && c.ccDist[best][i] >= 2*eBest+boundEps {
			s.Pruned++
			continue
		}
		d := 1 + c.norms[i] - 2*vec.Dot(centroid)
		s.Distances++
		if d < bestDist {
			best, bestDist = i, d
			eBest = math.Sqrt(math.Max(d, 0))
		}
	}
	return c.labels[best]
}

// ConfusionMatrix tabulates predictions against ground truth.
type ConfusionMatrix struct {
	Labels []int
	Counts map[[2]int]int // [truth, predicted] -> count
	Total  int
	Hits   int
}

// Evaluate scores the classifier on a labeled test set.
func (c *Classifier) Evaluate(texts []string, truth []int) (*ConfusionMatrix, error) {
	if len(texts) != len(truth) {
		return nil, fmt.Errorf("textmine: %d texts but %d labels", len(texts), len(truth))
	}
	cm := &ConfusionMatrix{Counts: make(map[[2]int]int)}
	seen := make(map[int]bool)
	var scratch PredictScratch
	for i, t := range texts {
		pred := c.PredictWith(&scratch, t)
		cm.Counts[[2]int{truth[i], pred}]++
		cm.Total++
		if pred == truth[i] {
			cm.Hits++
		}
		if !seen[truth[i]] {
			seen[truth[i]] = true
			cm.Labels = append(cm.Labels, truth[i])
		}
		if !seen[pred] {
			seen[pred] = true
			cm.Labels = append(cm.Labels, pred)
		}
	}
	sortInts(cm.Labels)
	return cm, nil
}

// confusionJSON is the wire form of a ConfusionMatrix: the Counts map is
// keyed by [2]int, which encoding/json cannot represent, so it travels as
// a dense matrix in Labels order (rows = truth, cols = predicted).
type confusionJSON struct {
	Labels []int   `json:"labels"`
	Counts [][]int `json:"counts"`
	Total  int     `json:"total"`
	Hits   int     `json:"hits"`
}

// MarshalJSON implements json.Marshaler.
func (cm *ConfusionMatrix) MarshalJSON() ([]byte, error) {
	cj := confusionJSON{Labels: cm.Labels, Total: cm.Total, Hits: cm.Hits}
	if cj.Labels == nil {
		cj.Labels = []int{}
	}
	cj.Counts = make([][]int, len(cm.Labels))
	for i, truth := range cm.Labels {
		cj.Counts[i] = make([]int, len(cm.Labels))
		for j, pred := range cm.Labels {
			cj.Counts[i][j] = cm.Counts[[2]int{truth, pred}]
		}
	}
	return json.Marshal(cj)
}

// UnmarshalJSON implements json.Unmarshaler.
func (cm *ConfusionMatrix) UnmarshalJSON(data []byte) error {
	var cj confusionJSON
	if err := json.Unmarshal(data, &cj); err != nil {
		return err
	}
	if len(cj.Counts) != len(cj.Labels) {
		return fmt.Errorf("textmine: confusion matrix has %d rows for %d labels", len(cj.Counts), len(cj.Labels))
	}
	cm.Labels = cj.Labels
	cm.Total = cj.Total
	cm.Hits = cj.Hits
	cm.Counts = make(map[[2]int]int)
	for i, row := range cj.Counts {
		if len(row) != len(cj.Labels) {
			return fmt.Errorf("textmine: confusion matrix row %d has %d columns for %d labels", i, len(row), len(cj.Labels))
		}
		for j, n := range row {
			if n != 0 {
				cm.Counts[[2]int{cj.Labels[i], cj.Labels[j]}] = n
			}
		}
	}
	return nil
}

// Accuracy returns the fraction of correct predictions.
func (cm *ConfusionMatrix) Accuracy() float64 {
	if cm.Total == 0 {
		return math.NaN()
	}
	return float64(cm.Hits) / float64(cm.Total)
}

// Recall returns the per-label recall; NaN when the label never occurs.
func (cm *ConfusionMatrix) Recall(label int) float64 {
	total, hit := 0, 0
	for key, n := range cm.Counts {
		if key[0] == label {
			total += n
			if key[1] == label {
				hit += n
			}
		}
	}
	if total == 0 {
		return math.NaN()
	}
	return float64(hit) / float64(total)
}

// Precision returns the per-label precision; NaN when never predicted.
func (cm *ConfusionMatrix) Precision(label int) float64 {
	total, hit := 0, 0
	for key, n := range cm.Counts {
		if key[1] == label {
			total += n
			if key[0] == label {
				hit += n
			}
		}
	}
	if total == 0 {
		return math.NaN()
	}
	return float64(hit) / float64(total)
}
