package textmine

import "math"

// SparseVector is a sparse feature vector with unit-normalization support.
type SparseVector struct {
	Idx []int
	Val []float64
}

// Norm returns the Euclidean norm.
func (s SparseVector) Norm() float64 {
	ss := 0.0
	for _, v := range s.Val {
		ss += v * v
	}
	return math.Sqrt(ss)
}

// Vectorize converts a tokenized document to a unit-normalized TF-IDF
// sparse vector over the vocabulary. Unknown tokens are ignored. It is a
// pure read of the vocabulary, safe to call from concurrent workers. The
// returned vector owns its storage; transient callers (prediction) use
// vectorizeInto with reused buffers instead.
func (v *Vocabulary) Vectorize(doc []string) SparseVector {
	return v.vectorizeInto(make([]int, 0, len(doc)), make([]float64, 0, len(doc)), doc)
}

// vectorizeInto is Vectorize over caller-provided buffers (grown as
// needed). The returned vector aliases them, so it is only valid until the
// buffers' next reuse.
func (v *Vocabulary) vectorizeInto(idxs []int, vals []float64, doc []string) SparseVector {
	// Collect known-token indices with duplicates, sort, then run-length
	// count the term frequencies in place — map-free.
	idxs = idxs[:0]
	for _, tok := range doc {
		if idx, ok := v.Index[tok]; ok {
			idxs = append(idxs, idx)
		}
	}
	// Deterministic ordering keeps clustering reproducible.
	sortInts(idxs)
	vals = vals[:0]
	w := 0
	for i := 0; i < len(idxs); {
		j := i
		for j < len(idxs) && idxs[j] == idxs[i] {
			j++
		}
		idx := idxs[i]
		tf := float64(j - i)
		idf := v.idf[idx]
		idxs[w] = idx
		vals = append(vals, tf*idf)
		w++
		i = j
	}
	vec := SparseVector{Idx: idxs[:w], Val: vals}
	if n := vec.Norm(); n > 0 {
		for i := range vec.Val {
			vec.Val[i] /= n
		}
	}
	return vec
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Dot returns the dot product of a sparse vector with a dense vector.
func (s SparseVector) Dot(dense []float64) float64 {
	sum := 0.0
	for i, idx := range s.Idx {
		sum += s.Val[i] * dense[idx]
	}
	return sum
}

// AddTo accumulates the sparse vector into a dense vector.
func (s SparseVector) AddTo(dense []float64) {
	for i, idx := range s.Idx {
		dense[idx] += s.Val[i]
	}
}
