package textmine

// OnlineClassifier is the two-stage crash-ticket model packaged for
// streaming use: stage 1 separates crash tickets from the background
// population, stage 2 assigns crash tickets one of the six resolution
// classes. Both stages are frozen k-means classifiers — prediction is
// nearest-centroid on the training-time vocabulary, reads no mutable
// state, and is safe from concurrent goroutines, so one trained model can
// serve every ingest worker of a live daemon.
type OnlineClassifier struct {
	stage1 *Classifier // crash (1) vs background (0)
	stage2 *Classifier // failure class for crash tickets
}

// NewOnlineClassifier wraps trained stage-1 (binary crash identification)
// and stage-2 (failure-class assignment) classifiers.
func NewOnlineClassifier(stage1, stage2 *Classifier) *OnlineClassifier {
	return &OnlineClassifier{stage1: stage1, stage2: stage2}
}

// Predict classifies one ticket text: 0 for background, otherwise the
// predicted failure-class label. Nil-safe (returns 0).
func (c *OnlineClassifier) Predict(text string) int {
	var s PredictScratch
	return c.PredictWith(&s, text)
}

// PredictWith is Predict with caller-owned scratch buffers: the text is
// tokenized once and both stages classify the shared token slice.
func (c *OnlineClassifier) PredictWith(s *PredictScratch, text string) int {
	if c == nil || c.stage1 == nil || c.stage2 == nil {
		return 0
	}
	s.tokens = AppendTokens(s.tokens[:0], text)
	if c.stage1.predictTokens(s, s.tokens) != 1 {
		return 0
	}
	return c.stage2.predictTokens(s, s.tokens)
}

// Stage1 returns the crash-identification classifier.
func (c *OnlineClassifier) Stage1() *Classifier { return c.stage1 }

// Stage2 returns the failure-class classifier.
func (c *OnlineClassifier) Stage2() *Classifier { return c.stage2 }
