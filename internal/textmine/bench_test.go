package textmine

import (
	"sync"
	"testing"

	"failscope/internal/xrand"
)

var benchVectors struct {
	once sync.Once
	vecs []SparseVector
	dim  int
}

func benchKMeansInput(b *testing.B) ([]SparseVector, int) {
	b.Helper()
	benchVectors.once.Do(func() {
		docs := clusterCorpus(1100)
		vocab := BuildVocabulary(docs, 1)
		benchVectors.vecs = make([]SparseVector, len(docs))
		for i, d := range docs {
			benchVectors.vecs[i] = vocab.Vectorize(d)
		}
		benchVectors.dim = vocab.Size()
	})
	return benchVectors.vecs, benchVectors.dim
}

func benchKMeansRun(b *testing.B, prune bool) {
	vecs, dim := benchKMeansInput(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := kmeansRun(vecs, dim, 32, 40, xrand.New(5), 1, nil, prune)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Centroids) != 32 {
			b.Fatalf("got %d centroids", len(res.Centroids))
		}
	}
}

// BenchmarkKMeans_Exact is the exhaustive-scan baseline the pruned kernel
// is held against (same vectors, seed and sweep budget).
func BenchmarkKMeans_Exact(b *testing.B) { benchKMeansRun(b, false) }

// BenchmarkKMeans_Pruned runs the production Hamerly-style bounded kernel.
func BenchmarkKMeans_Pruned(b *testing.B) { benchKMeansRun(b, true) }
