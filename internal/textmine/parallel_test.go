package textmine

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"failscope/internal/xrand"
)

// clusterCorpus builds a corpus large enough to span several par blocks
// with a few obvious clusters and plenty of noise.
func clusterCorpus(n int) [][]string {
	themes := [][]string{
		{"disk", "raid", "controller", "replaced", "array"},
		{"switch", "vlan", "uplink", "port", "connectivity"},
		{"kernel", "panic", "hung", "middleware", "deadlock"},
		{"pdu", "breaker", "outage", "electrical", "feeds"},
	}
	r := xrand.New(11)
	docs := make([][]string, n)
	for i := range docs {
		theme := themes[i%len(themes)]
		doc := append([]string(nil), theme[:2+r.Intn(3)]...)
		doc = append(doc, fmt.Sprintf("host%d", r.Intn(40)))
		if r.Bool(0.3) {
			doc = append(doc, themes[r.Intn(len(themes))][r.Intn(5)])
		}
		docs[i] = doc
	}
	return docs
}

// TestKMeansParallelMatchesSequential is the kernel-level determinism
// check: every worker count must reproduce the sequential run bit for bit
// — assignments, centroids, inertia and the iteration count.
func TestKMeansParallelMatchesSequential(t *testing.T) {
	docs := clusterCorpus(1100) // > 4 blocks of 256
	vocab := BuildVocabulary(docs, 1)
	vectors := make([]SparseVector, len(docs))
	for i, d := range docs {
		vectors[i] = vocab.Vectorize(d)
	}

	ref, err := KMeans(vectors, vocab.Size(), 8, 40, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, runtime.GOMAXPROCS(0), 0} {
		got, err := KMeansParallel(vectors, vocab.Size(), 8, 40, xrand.New(5), workers)
		if err != nil {
			t.Fatal(err)
		}
		if got.Iterations != ref.Iterations {
			t.Fatalf("workers=%d: %d iterations, sequential %d", workers, got.Iterations, ref.Iterations)
		}
		if got.Inertia != ref.Inertia {
			t.Fatalf("workers=%d: inertia %v, sequential %v", workers, got.Inertia, ref.Inertia)
		}
		for i := range ref.Assignments {
			if got.Assignments[i] != ref.Assignments[i] {
				t.Fatalf("workers=%d: assignment[%d] = %d, sequential %d",
					workers, i, got.Assignments[i], ref.Assignments[i])
			}
		}
		for c := range ref.Centroids {
			for j := range ref.Centroids[c] {
				if got.Centroids[c][j] != ref.Centroids[c][j] {
					t.Fatalf("workers=%d: centroid[%d][%d] differs", workers, c, j)
				}
			}
		}
	}
}

// TestTrainParallelMatchesSequential checks the full classifier: training
// with any worker count must give identical predictions on every document.
func TestTrainParallelMatchesSequential(t *testing.T) {
	docs := clusterCorpus(600)
	texts := make([]string, len(docs))
	labels := make([]int, len(docs))
	for i, d := range docs {
		for _, tok := range d {
			texts[i] += tok + " "
		}
		labels[i] = i % 4
	}
	opts := DefaultTrainOptions()
	opts.Clusters = 12
	opts.Parallelism = 1
	ref, err := Train(texts, labels, opts, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 0} {
		opts.Parallelism = workers
		got, err := Train(texts, labels, opts, xrand.New(3))
		if err != nil {
			t.Fatal(err)
		}
		for i, text := range texts {
			if got.Predict(text) != ref.Predict(text) {
				t.Fatalf("workers=%d: prediction for doc %d differs", workers, i)
			}
		}
	}
}

// TestVectorizeTermFrequencies pins the run-length TF counting against a
// direct map-based computation.
func TestVectorizeTermFrequencies(t *testing.T) {
	docs := [][]string{
		{"disk", "disk", "raid", "disk", "switch"},
		{"raid", "switch"},
	}
	vocab := BuildVocabulary(docs, 1)
	vec := vocab.Vectorize(docs[0])
	if len(vec.Idx) != 3 {
		t.Fatalf("distinct terms = %d, want 3", len(vec.Idx))
	}
	// tf(disk)=3 must outweigh tf(raid)=1 at equal document frequency.
	var diskVal, raidVal float64
	for i, idx := range vec.Idx {
		switch vocab.Tokens[idx] {
		case "disk":
			diskVal = vec.Val[i]
		case "raid":
			raidVal = vec.Val[i]
		}
	}
	if !(diskVal > raidVal) {
		t.Fatalf("tf weighting lost: disk %v vs raid %v", diskVal, raidVal)
	}
	if n := vec.Norm(); math.Abs(n-1) > 1e-12 {
		t.Fatalf("norm %v", n)
	}
}
