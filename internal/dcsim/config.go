// Package dcsim simulates the five commercial datacenter subsystems of the
// study: machine inventories with realistic capacity mixes, hypervisor
// boxes hosting consolidated VMs, usage profiles, VM lifecycle (creation
// batches, on/off schedules, placements), and per-root-cause failure
// processes with temporal recurrence and spatial fan-out. Its output is the
// raw field data (ticket store + monitoring database + machine inventory)
// that the ingest pipeline mines, exactly as §III mines the production
// databases.
package dcsim

import (
	"fmt"
	"math"
	"time"

	"failscope/internal/model"
	"failscope/internal/obs"
)

// Curve is a piecewise-constant map from an attribute value to a relative
// failure-rate factor: At(x) returns the factor of the last point whose X
// is <= x. Curves encode the shape of Figs. 7–10 in the generator; the
// analysis must *recover* these shapes from the data.
type Curve []CurvePoint

// CurvePoint is one step of a Curve.
type CurvePoint struct {
	X      float64
	Factor float64
}

// At evaluates the curve at x.
func (c Curve) At(x float64) float64 {
	if len(c) == 0 {
		return 1
	}
	f := c[0].Factor
	for _, p := range c {
		if x < p.X {
			break
		}
		f = p.Factor
	}
	return f
}

// Flat reports whether the curve has no effect (used by ablations).
func Flat() Curve { return Curve{{X: 0, Factor: 1}} }

// SystemConfig calibrates one datacenter subsystem (one column of
// Table II plus its Fig. 1 class mix).
type SystemConfig struct {
	System model.System
	PMs    int
	VMs    int

	// AllTickets is the total problem-ticket volume over the observation
	// year; CrashShare is the fraction of those that are crash tickets and
	// PMCrashShare the fraction of crash tickets attributed to PMs.
	AllTickets   int
	CrashShare   float64
	PMCrashShare float64

	// ClassMix weights the six failure classes for this system's crash
	// tickets (need not be normalized).
	ClassMix map[model.FailureClass]float64
}

// crashTickets returns the expected crash-ticket count.
func (sc SystemConfig) crashTickets() float64 {
	return float64(sc.AllTickets) * sc.CrashShare
}

// RecurrenceConfig drives the temporal failure clustering of §IV.D: after
// any failure, with probability PMProb/VMProb the machine fails again after
// a Gamma(LagShape, LagMeanDays/LagShape) lag.
type RecurrenceConfig struct {
	PMProb      float64
	VMProb      float64
	LagMeanDays float64
	LagShape    float64
	// SameCauseProb is the per-class probability that a follow-up failure
	// repeats the trigger's root cause (chronic software faults recur as
	// software; a replaced disk does not fail again the same way).
	SameCauseProb map[model.FailureClass]float64
}

// SpatialConfig drives incident fan-out (§IV.E). For each class,
// TriggerProb is the chance a failure becomes a multi-server incident and
// the Pareto(1, TailAlpha) fan-out is capped at MaxServers additional
// victims drawn from the class's blast domain.
type SpatialConfig struct {
	Enabled bool
	Classes map[model.FailureClass]FanOut
	// PowerDomainSize and AppGroupSize set blast-domain sizes.
	PowerDomainSize int
	AppGroupSize    int
	// HostRebootProb is the chance an unexpected VM reboot is actually the
	// hypervisor recycling, failing co-hosted VMs too.
	HostRebootProb float64
	// MigrationProb is the monthly chance a VM moves to another box.
	MigrationProb float64
	// PMVictimSkipProb is the chance a PM escapes an infrastructure
	// (power/hardware/network) fan-out — stand-alone PMs have redundant
	// feeds, while a dying box takes all of its VMs down. This is what
	// gives VMs their stronger spatial dependency (§IV.E).
	PMVictimSkipProb float64
	// MassEventsPerYear is the expected number of rare mass incidents per
	// system per year — monitoring-visible bursts whose tickets are too
	// vague to classify (the paper's 34-server "other" incident).
	MassEventsPerYear float64
	// MassEventMaxServers caps the mass-incident fan-out.
	MassEventMaxServers int
}

// FanOut is the spatial expansion parameters of one failure class.
type FanOut struct {
	TriggerProb float64
	TailAlpha   float64
	MaxServers  int
}

// expectedExtra is the exact expected number of additional victims per
// event, used to deflate primary rates so generated totals match targets.
// The victim count is max(1, min(⌊Pareto(1,α)⌋−1, cap)) when triggered, so
// E[extra | triggered] = 1 + Σ_{j=2..cap} P(⌊P⌋−1 ≥ j) with
// P(P ≥ k) = k^(−α).
func (f FanOut) expectedExtra() float64 {
	if f.TriggerProb <= 0 {
		return 0
	}
	mean := 1.0
	for j := 2; j <= f.MaxServers; j++ {
		mean += math.Pow(float64(j+1), -f.TailAlpha)
	}
	return f.TriggerProb * mean
}

// CurveSet bundles every attribute→failure-rate factor curve (Figs. 7–10).
type CurveSet struct {
	PMCPU, VMCPU           Curve
	PMMem, VMMem           Curve // memory size in GB
	VMDiskCap, VMDiskCount Curve
	PMCPUUtil, VMCPUUtil   Curve // percent
	PMMemUtil, VMMemUtil   Curve // percent
	VMDiskUtil, VMNetKbps  Curve
	Consolidation          Curve // x = consolidation level
	OnOff                  Curve // x = on/off per month
	// AgeSlopePerYear adds the weak positive age trend of Fig. 6:
	// factor = 1 + slope * age_years.
	AgeSlopePerYear float64
}

// Config is the complete generator configuration.
type Config struct {
	Seed uint64

	// Parallelism is the worker count used for per-machine, per-event and
	// per-ticket work: 0 means GOMAXPROCS, 1 the sequential reference path.
	// The generated output is byte-identical at every setting because all
	// randomness comes from streams derived from (Seed, stage, entity).
	Parallelism int

	// Observer, when non-nil, records stage spans (topology, calibration,
	// events, tickets, monitoring, ...) and generator metrics for this run.
	// It never touches a random stream: output is byte-identical with and
	// without it.
	Observer *obs.Observer

	// Observation is the paper's one-year study window; MonitorEpoch is
	// the earlier start of the monitoring database's two-year retention.
	Observation      model.Window
	MonitorEpoch     time.Time
	MonitorRetention time.Duration
	// FineWindow is the two-month window with 15-minute data used for
	// on/off screening (March–April 2013 in the paper).
	FineWindow model.Window

	Systems []SystemConfig

	Recurrence RecurrenceConfig
	Spatial    SpatialConfig
	Curves     CurveSet

	// HeterogeneityShapePM/VM are the shapes of the unit-mean Gamma
	// multiplier applied to each machine's failure rate; small values
	// create the "lemon" machines behind the long-tailed inter-failure
	// distribution. VMs are more heterogeneous than PMs, which is what
	// separates the VM and PM random-vs-recurrent ratios in Table V.
	HeterogeneityShapePM float64
	HeterogeneityShapeVM float64

	// Repair holds the per-class repair-time models (Table IV);
	// NonCrashRepair covers background tickets.
	Repair         map[model.FailureClass]RepairModel
	NonCrashRepair RepairModel

	// VMClassBias multiplies class weights for VM failures (e.g. reboots
	// up, hardware down), producing the PM/VM repair-time gap of Fig. 4.
	VMClassBias map[model.FailureClass]float64

	// VMRepairScale scales repair times for VM failures per cause: a VM
	// hit by host hardware trouble is migrated or restarted, not held for
	// a part replacement. Missing entries default to 1.
	VMRepairScale map[model.FailureClass]float64

	// LemonSoftwareBias multiplies software/other weights on chronically
	// failing machines, shortening per-server software inter-failure times
	// (Table III, bottom).
	LemonSoftwareBias float64

	// VagueTextProb is the chance a classified crash ticket is written
	// vaguely, capping classifier accuracy near the paper's 87%.
	VagueTextProb float64

	// VMCreatedBeforeEpoch is the fraction of VMs created before the
	// monitoring epoch (~25% in the paper, excluded from age analysis).
	VMCreatedBeforeEpoch float64
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if len(c.Systems) == 0 {
		return fmt.Errorf("dcsim: no systems configured")
	}
	if !c.Observation.Start.Before(c.Observation.End) {
		return fmt.Errorf("dcsim: empty observation window")
	}
	if c.MonitorEpoch.After(c.Observation.Start) {
		return fmt.Errorf("dcsim: monitor epoch after observation start")
	}
	for _, sc := range c.Systems {
		if sc.PMs < 0 || sc.VMs < 0 || sc.AllTickets < 0 {
			return fmt.Errorf("dcsim: %v has negative population", sc.System)
		}
		if sc.CrashShare < 0 || sc.CrashShare > 1 || sc.PMCrashShare < 0 || sc.PMCrashShare > 1 {
			return fmt.Errorf("dcsim: %v has share outside [0,1]", sc.System)
		}
	}
	if c.HeterogeneityShapePM <= 0 || c.HeterogeneityShapeVM <= 0 {
		return fmt.Errorf("dcsim: heterogeneity shapes must be positive")
	}
	if c.Recurrence.LagShape <= 0 {
		return fmt.Errorf("dcsim: recurrence lag shape must be positive")
	}
	for _, class := range model.Classes() {
		m, ok := c.Repair[class]
		if !ok {
			return fmt.Errorf("dcsim: missing repair distribution for %v", class)
		}
		if err := m.Validate(); err != nil {
			return fmt.Errorf("%v: %w", class, err)
		}
	}
	if err := c.NonCrashRepair.Validate(); err != nil {
		return fmt.Errorf("non-crash repair: %w", err)
	}
	return nil
}
