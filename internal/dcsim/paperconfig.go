package dcsim

import (
	"time"

	"failscope/internal/model"
)

// repairModel builds the repair-time model from the published
// (mean, median) hour pairs of Table IV, with the default body-sigma cap
// and escalation mixture (see RepairModel).
func repairModel(meanHours, medianHours float64) RepairModel {
	return RepairModel{
		MeanHours:      meanHours,
		MedianHours:    medianHours,
		SigmaCap:       1.6,
		EscalationProb: 0.25,
		TriageHours:    0.35,
	}
}

// PaperConfig returns the generator configuration calibrated to the
// published statistics (see DESIGN.md §4 for the target list). The default
// seed gives the canonical dataset used by the benchmarks; callers may
// override Seed for replication studies.
func PaperConfig() Config {
	obsStart := time.Date(2012, 7, 1, 0, 0, 0, 0, time.UTC)
	obsEnd := time.Date(2013, 7, 1, 0, 0, 0, 0, time.UTC)
	epoch := time.Date(2011, 7, 1, 0, 0, 0, 0, time.UTC)

	return Config{
		Seed:             26,
		Observation:      model.Window{Start: obsStart, End: obsEnd},
		MonitorEpoch:     epoch,
		MonitorRetention: 2 * 365 * 24 * time.Hour,
		FineWindow: model.Window{
			Start: time.Date(2013, 3, 1, 0, 0, 0, 0, time.UTC),
			End:   time.Date(2013, 5, 1, 0, 0, 0, 0, time.UTC),
		},

		// Table II columns. Class mixes follow Fig. 1 and §III.A: "other"
		// is {35, 68, 68, 61, 29}% per system; software and reboots
		// dominate the classified remainder; hardware/network are the Sys
		// I/II signatures; Sys III has no power outages and Sys V is
		// power-heavy (29%).
		Systems: []SystemConfig{
			{
				System: model.SysI, PMs: 463, VMs: 1320,
				AllTickets: 7079, CrashShare: 0.069, PMCrashShare: 0.69,
				ClassMix: map[model.FailureClass]float64{
					model.ClassHardware: 26, model.ClassNetwork: 13,
					model.ClassSoftware: 14, model.ClassPower: 4,
					model.ClassReboot: 8, model.ClassOther: 35,
				},
			},
			{
				System: model.SysII, PMs: 2025, VMs: 52,
				AllTickets: 27577, CrashShare: 0.0085, PMCrashShare: 1.0,
				ClassMix: map[model.FailureClass]float64{
					model.ClassHardware: 1, model.ClassNetwork: 1,
					model.ClassSoftware: 23, model.ClassPower: 4,
					model.ClassReboot: 3, model.ClassOther: 68,
				},
			},
			{
				System: model.SysIII, PMs: 1114, VMs: 1971,
				AllTickets: 50157, CrashShare: 0.02, PMCrashShare: 0.59,
				ClassMix: map[model.FailureClass]float64{
					model.ClassHardware: 3, model.ClassNetwork: 2,
					model.ClassSoftware: 15, model.ClassPower: 0,
					model.ClassReboot: 12, model.ClassOther: 68,
				},
			},
			{
				System: model.SysIV, PMs: 717, VMs: 313,
				AllTickets: 8382, CrashShare: 0.013, PMCrashShare: 0.63,
				ClassMix: map[model.FailureClass]float64{
					model.ClassHardware: 4, model.ClassNetwork: 2,
					model.ClassSoftware: 20, model.ClassPower: 3,
					model.ClassReboot: 10, model.ClassOther: 61,
				},
			},
			{
				System: model.SysV, PMs: 810, VMs: 636,
				AllTickets: 25940, CrashShare: 0.033, PMCrashShare: 0.57,
				ClassMix: map[model.FailureClass]float64{
					model.ClassHardware: 2, model.ClassNetwork: 2,
					model.ClassSoftware: 12, model.ClassPower: 29,
					model.ClassReboot: 26, model.ClassOther: 29,
				},
			},
		},

		// §IV.D: weekly recurrent probabilities ≈ .22 (PM) and .16 (VM);
		// most follow-ups land within days of the trigger. The chain
		// probabilities exceed the targets because a sizable share of
		// failures are fan-out victims, which do not start chains.
		Recurrence: RecurrenceConfig{
			PMProb: 0.26, VMProb: 0.17,
			LagMeanDays: 2.5, LagShape: 0.8,
			SameCauseProb: map[model.FailureClass]float64{
				model.ClassHardware: 0.15,
				model.ClassNetwork:  0.15,
				model.ClassSoftware: 0.75,
				model.ClassPower:    0.10,
				model.ClassReboot:   0.50,
			},
		},

		// §IV.E / Tables VI–VII: power incidents fan out widest (mean 2.7,
		// max 21), software second (distributed applications), reboots
		// mostly single but occasionally the whole box, "other" has the
		// longest tail (max 34).
		Spatial: SpatialConfig{
			Enabled: true,
			Classes: map[model.FailureClass]FanOut{
				model.ClassHardware: {TriggerProb: 0.06, TailAlpha: 1.6, MaxServers: 9},
				model.ClassNetwork:  {TriggerProb: 0.25, TailAlpha: 1.5, MaxServers: 8},
				model.ClassSoftware: {TriggerProb: 0.32, TailAlpha: 1.3, MaxServers: 9},
				model.ClassPower:    {TriggerProb: 0.55, TailAlpha: 1.05, MaxServers: 20},
				model.ClassReboot:   {TriggerProb: 0.04, TailAlpha: 1.1, MaxServers: 14},
			},
			PowerDomainSize:     25,
			AppGroupSize:        6,
			HostRebootProb:      0.15,
			MigrationProb:       0.02,
			PMVictimSkipProb:    0.45,
			MassEventsPerYear:   0.4,
			MassEventMaxServers: 33,
		},

		Curves: paperCurves(),

		HeterogeneityShapePM: 0.70,
		HeterogeneityShapeVM: 0.50,

		// Table IV (mean, median) hours per class; "other" is set between
		// reboot and software. Non-crash tickets close on routine service
		// timescales.
		Repair: map[model.FailureClass]RepairModel{
			model.ClassHardware: repairModel(80.1, 8.28),
			model.ClassNetwork:  repairModel(67.6, 8.97),
			model.ClassPower:    repairModel(12.17, 0.83),
			model.ClassReboot:   repairModel(18.03, 2.27),
			model.ClassSoftware: repairModel(30.0, 22.37),
			model.ClassOther:    repairModel(24.0, 4.0),
		},
		NonCrashRepair: repairModel(26.0, 9.0),

		// §IV.C: ~35% of VM failures are unexpected reboots, and VMs see
		// almost no first-hand hardware failures — this bias is what
		// produces the 2× PM/VM repair-time gap.
		VMClassBias: map[model.FailureClass]float64{
			model.ClassHardware: 0.10,
			model.ClassNetwork:  0.30,
			model.ClassSoftware: 1.2,
			model.ClassPower:    0.9,
			model.ClassReboot:   5.0,
		},

		// Failed VMs are restarted or migrated, not repaired part-by-part.
		VMRepairScale: map[model.FailureClass]float64{
			model.ClassHardware: 0.30,
			model.ClassNetwork:  0.40,
		},

		LemonSoftwareBias: 6.0,
		VagueTextProb:     0.10,

		VMCreatedBeforeEpoch: 0.25,
	}
}

// paperCurves encodes the shapes of Figs. 7–10 as generator factors. The
// amplitudes are deliberately wider than the published measured spans:
// fan-out victims are drawn independently of their attributes, which
// dilutes every attribute signal in the measured data, so the generator
// over-drives the factor and the analysis recovers roughly the published
// span.
func paperCurves() CurveSet {
	return CurveSet{
		// Fig. 7(a): PM rate climbs ~5.5× up to 24 CPUs then drops for the
		// high-end 32/64-way systems; VM rate climbs ~2.5× over 1→8 vCPUs.
		PMCPU: Curve{{1, 0.35}, {2, 0.45}, {4, 0.70}, {8, 1.2}, {16, 2.2}, {24, 3.2}, {32, 1.0}, {64, 1.0}},
		VMCPU: Curve{{1, 0.40}, {2, 0.80}, {4, 1.8}, {8, 3.0}},

		// Fig. 7(b): bathtub in memory size for both, PM span ~5×, VM ~3×.
		PMMem: Curve{{0, 2.0}, {5, 0.50}, {48, 1.0}, {96, 2.2}, {192, 3.4}},
		VMMem: Curve{{0, 1.6}, {3, 0.35}, {12, 1.1}, {24, 2.2}},

		// Fig. 7(c): small virtual disks rarely fail; ≥32 GB flat.
		VMDiskCap: Curve{{0, 0.10}, {12, 0.45}, {32, 1.0}},
		// Fig. 7(d): ~10× from 1 to 6 virtual disks.
		VMDiskCount: Curve{{1, 0.15}, {2, 0.80}, {3, 1.5}, {4, 2.2}, {5, 2.8}, {6, 3.5}},

		// Fig. 8(a): VM rate grows ~an order of magnitude over 0–30% CPU
		// utilization; PM follows a bathtub (moderately loaded PMs win).
		VMCPUUtil: Curve{{0, 0.25}, {10, 1.2}, {20, 2.6}, {30, 3.6}, {60, 3.8}},
		PMCPUUtil: Curve{{0, 2.6}, {10, 1.1}, {20, 0.55}, {40, 0.45}, {70, 0.9}, {90, 1.8}},

		// Fig. 8(b): inverted bathtub, stronger for PMs.
		PMMemUtil: Curve{{0, 0.5}, {20, 1.7}, {40, 2.6}, {60, 1.8}, {70, 0.8}, {90, 0.4}},
		VMMemUtil: Curve{{0, 0.7}, {10, 1.5}, {30, 2.0}, {50, 0.8}, {80, 0.6}},

		// Fig. 8(c): mild increase 0.001→0.003 across disk utilization.
		VMDiskUtil: Curve{{0, 0.45}, {10, 0.8}, {40, 1.3}, {70, 1.7}},
		// Fig. 8(d): rises to a knee at 64 Kbps, then falls.
		VMNetKbps: Curve{{0, 0.25}, {8, 0.60}, {32, 1.5}, {64, 2.2}, {128, 1.5}, {512, 1.0}, {1024, 0.70}, {4096, 0.50}},

		// Fig. 9: failure rate decreases significantly with consolidation.
		Consolidation: Curve{{1, 2.6}, {2, 2.1}, {4, 1.6}, {8, 1.1}, {16, 0.70}, {32, 0.50}},

		// Fig. 10: rising to ~2 on/off per month, then no clear trend.
		OnOff: Curve{{0, 0.50}, {1, 1.1}, {2, 2.0}, {4, 1.5}, {8, 1.7}, {16, 1.4}},

		// Fig. 6: weak positive age trend.
		AgeSlopePerYear: 0.6,
	}
}

// SmallConfig returns a scaled-down configuration (~1/8 of the populations
// and ticket volumes) with the same calibration shapes; unit and
// integration tests use it to keep runtimes short.
func SmallConfig() Config {
	c := PaperConfig()
	for i := range c.Systems {
		c.Systems[i].PMs = scaleDown(c.Systems[i].PMs, 8)
		c.Systems[i].VMs = scaleDown(c.Systems[i].VMs, 8)
		c.Systems[i].AllTickets = scaleDown(c.Systems[i].AllTickets, 8)
	}
	return c
}

func scaleDown(n, by int) int {
	v := n / by
	if v < 1 && n > 0 {
		v = 1
	}
	return v
}

// FleetConfig returns the ~10⁶-machine stress configuration behind the
// BENCH_fleet baseline: the paper's five subsystems with populations
// scaled up 106× (≈998k machines) and ticket volumes 8×, over an 8-week
// observation window so the weekly monitoring volume (~33M samples) stays
// within a CI container's memory budget. The calibration shapes (class
// mixes, curves, repair models) are untouched — fleet runs exercise the
// hot paths at fleet cardinality, they are not fidelity targets.
func FleetConfig() Config {
	c := PaperConfig()
	obsStart := c.Observation.Start
	c.Observation.End = obsStart.Add(8 * 7 * 24 * time.Hour)
	// Fine-grained data covers the last two weeks, like the paper's two
	// months cover the tail of its year.
	c.FineWindow = model.Window{
		Start: c.Observation.End.Add(-2 * 7 * 24 * time.Hour),
		End:   c.Observation.End,
	}
	for i := range c.Systems {
		c.Systems[i].PMs *= 106
		c.Systems[i].VMs *= 106
		c.Systems[i].AllTickets *= 8
	}
	return c
}
