package dcsim

import (
	"testing"
	"testing/quick"

	"failscope/internal/model"
	"failscope/internal/xrand"
)

// TestGenerateRandomizedConfigs drives the generator with random small
// configurations: it must never error and must always produce a dataset
// that validates — whatever the population mix.
func TestGenerateRandomizedConfigs(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		cfg := PaperConfig()
		cfg.Seed = seed
		cfg.Spatial.MassEventsPerYear = 0
		cfg.Systems = cfg.Systems[:1+r.Intn(3)]
		for i := range cfg.Systems {
			cfg.Systems[i].PMs = r.Intn(120)
			cfg.Systems[i].VMs = r.Intn(200)
			cfg.Systems[i].AllTickets = 50 + r.Intn(2000)
			cfg.Systems[i].CrashShare = 0.01 + 0.09*r.Float64()
			cfg.Systems[i].PMCrashShare = r.Float64()
		}
		out, err := Generate(cfg)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := out.Data.Validate(); err != nil {
			t.Logf("seed %d: invalid dataset: %v", seed, err)
			return false
		}
		// Crash tickets must always reference PMs or VMs, never boxes.
		for _, tk := range out.Data.Tickets {
			m := out.Data.Machine(tk.ServerID)
			if m == nil || m.Kind == model.Box {
				t.Logf("seed %d: ticket on box or unknown machine", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestGenerateEmptySystem exercises the degenerate one-system,
// zero-machine corner.
func TestGenerateEmptySystem(t *testing.T) {
	cfg := PaperConfig()
	cfg.Systems = cfg.Systems[:1]
	cfg.Systems[0].PMs = 0
	cfg.Systems[0].VMs = 0
	cfg.Systems[0].AllTickets = 0
	out, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Data.Machines) != 0 || len(out.Data.Tickets) != 0 {
		t.Fatalf("empty system produced %d machines, %d tickets",
			len(out.Data.Machines), len(out.Data.Tickets))
	}
}

// TestGeneratePMOnlySystem checks a virtualization-free subsystem.
func TestGeneratePMOnlySystem(t *testing.T) {
	cfg := tinyConfig()
	cfg.Systems = cfg.Systems[:1]
	cfg.Systems[0].VMs = 0
	cfg.Systems[0].PMCrashShare = 1
	out, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := out.Data.CountMachines(model.VM, 0); n != 0 {
		t.Fatalf("%d VMs in a PM-only system", n)
	}
	if n := out.Data.CountMachines(model.Box, 0); n != 0 {
		t.Fatalf("%d boxes in a PM-only system", n)
	}
	if len(out.Data.CrashTickets()) == 0 {
		t.Fatal("no crash tickets generated")
	}
}
