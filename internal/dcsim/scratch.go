package dcsim

import (
	"failscope/internal/mempool"
	"failscope/internal/monitordb"
)

// genScratch is one worker's buffer set for the monitoring writers: the
// four usage-series buffers plus the placement and power-event staging
// slices. The monitordb bulk writers copy every element they accept, so
// the buffers go straight back to the pool after each machine. One scratch
// serves a whole par block (256 machines), so the pool traffic is per
// block, not per machine.
type genScratch struct {
	cpu, mem, dsk, net []monitordb.Sample
	steps              []monitordb.PlacementStep
	events             []monitordb.PowerEvent
}

func (sc *genScratch) reset() *genScratch {
	sc.cpu = sc.cpu[:0]
	sc.mem = sc.mem[:0]
	sc.dsk = sc.dsk[:0]
	sc.net = sc.net[:0]
	sc.steps = sc.steps[:0]
	sc.events = sc.events[:0]
	return sc
}

var scratchPool = mempool.New("dcsim.scratch", 32,
	func() *genScratch { return &genScratch{} },
	func(sc *genScratch) *genScratch { return sc.reset() },
)
