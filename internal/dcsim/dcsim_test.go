package dcsim

import (
	"math"
	"testing"
	"time"

	"failscope/internal/model"
	"failscope/internal/xrand"
)

func TestCurveAt(t *testing.T) {
	c := Curve{{1, 0.5}, {4, 1.0}, {16, 2.0}}
	cases := []struct{ x, want float64 }{
		{0, 0.5}, {1, 0.5}, {3, 0.5}, {4, 1.0}, {10, 1.0}, {16, 2.0}, {100, 2.0},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); got != tc.want {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if got := Curve(nil).At(5); got != 1 {
		t.Errorf("empty curve At = %v, want 1", got)
	}
	if got := Flat().At(123); got != 1 {
		t.Errorf("Flat().At = %v", got)
	}
}

func TestExpectedExtraMatchesMonteCarlo(t *testing.T) {
	fo := FanOut{TriggerProb: 1, TailAlpha: 1.05, MaxServers: 20}
	want := fo.expectedExtra()
	r := xrand.New(9)
	const n = 400000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(boundedPareto(r, fo.TailAlpha, fo.MaxServers))
	}
	got := sum / n
	if math.Abs(got-want) > 0.03*want {
		t.Fatalf("expectedExtra=%v but Monte Carlo=%v", want, got)
	}
}

func TestExpectedExtraZeroTrigger(t *testing.T) {
	fo := FanOut{TriggerProb: 0, TailAlpha: 1.5, MaxServers: 10}
	if got := fo.expectedExtra(); got != 0 {
		t.Fatalf("expectedExtra = %v", got)
	}
}

func TestPaperConfigValid(t *testing.T) {
	if err := PaperConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := SmallConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no systems", func(c *Config) { c.Systems = nil }},
		{"empty window", func(c *Config) { c.Observation.End = c.Observation.Start }},
		{"epoch after start", func(c *Config) { c.MonitorEpoch = c.Observation.Start.AddDate(0, 1, 0) }},
		{"negative population", func(c *Config) { c.Systems[0].PMs = -1 }},
		{"share out of range", func(c *Config) { c.Systems[0].CrashShare = 1.5 }},
		{"zero heterogeneity", func(c *Config) { c.HeterogeneityShapePM = 0 }},
		{"zero lag shape", func(c *Config) { c.Recurrence.LagShape = 0 }},
		{"missing repair", func(c *Config) { delete(c.Repair, model.ClassReboot) }},
	}
	for _, m := range mutations {
		cfg := PaperConfig()
		m.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", m.name)
		}
	}
}

// tinyConfig is a fast two-system configuration for generator tests.
func tinyConfig() Config {
	cfg := PaperConfig()
	cfg.Systems = []SystemConfig{
		{
			System: model.SysI, PMs: 60, VMs: 150,
			AllTickets: 900, CrashShare: 0.08, PMCrashShare: 0.6,
			ClassMix: cfg.Systems[0].ClassMix,
		},
		{
			System: model.SysII, PMs: 80, VMs: 10,
			AllTickets: 700, CrashShare: 0.02, PMCrashShare: 1.0,
			ClassMix: cfg.Systems[1].ClassMix,
		},
	}
	// Mass events are calibrated for paper-scale systems; on a tiny system
	// a single one would dominate the crash budget.
	cfg.Spatial.MassEventsPerYear = 0
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := tinyConfig()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Data.Machines) != len(b.Data.Machines) ||
		len(a.Data.Tickets) != len(b.Data.Tickets) ||
		len(a.Data.Incidents) != len(b.Data.Incidents) {
		t.Fatal("same seed produced different datasets")
	}
	for i := range a.Data.Tickets {
		ta, tb := a.Data.Tickets[i], b.Data.Tickets[i]
		if ta.ServerID != tb.ServerID || !ta.Opened.Equal(tb.Opened) || ta.Description != tb.Description {
			t.Fatalf("ticket %d differs", i)
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	cfg := tinyConfig()
	a, _ := Generate(cfg)
	cfg.Seed++
	b, _ := Generate(cfg)
	if len(a.Data.Tickets) == len(b.Data.Tickets) {
		same := true
		for i := range a.Data.Tickets {
			if !a.Data.Tickets[i].Opened.Equal(b.Data.Tickets[i].Opened) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical ticket streams")
		}
	}
}

func TestGeneratePopulations(t *testing.T) {
	cfg := tinyConfig()
	out, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range cfg.Systems {
		if got := out.Data.CountMachines(model.PM, sc.System); got != sc.PMs {
			t.Errorf("%v PMs = %d, want %d", sc.System, got, sc.PMs)
		}
		if got := out.Data.CountMachines(model.VM, sc.System); got != sc.VMs {
			t.Errorf("%v VMs = %d, want %d", sc.System, got, sc.VMs)
		}
		if got := out.Data.CountMachines(model.Box, sc.System); got == 0 && sc.VMs > 0 {
			t.Errorf("%v has VMs but no boxes", sc.System)
		}
	}
}

func TestGenerateTicketVolumes(t *testing.T) {
	cfg := tinyConfig()
	out, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perSystem := make(map[model.System]int)
	crashes := make(map[model.System]int)
	for _, tk := range out.Data.Tickets {
		perSystem[tk.System]++
		if tk.IsCrash {
			crashes[tk.System]++
		}
	}
	for _, sc := range cfg.Systems {
		got := float64(perSystem[sc.System])
		want := float64(sc.AllTickets)
		if math.Abs(got-want) > 0.15*want {
			t.Errorf("%v ticket volume %v, want ≈%v", sc.System, got, want)
		}
		gotCrash := float64(crashes[sc.System])
		wantCrash := sc.crashTickets()
		if math.Abs(gotCrash-wantCrash) > 0.45*wantCrash+10 {
			t.Errorf("%v crash volume %v, want ≈%v", sc.System, gotCrash, wantCrash)
		}
	}
}

func TestGenerateDatasetValidates(t *testing.T) {
	out, err := Generate(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Data.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSysIIVMsNeverFail(t *testing.T) {
	cfg := tinyConfig() // Sys II PMCrashShare = 1.0: no VM crash budget
	out, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range out.Data.Tickets {
		if !tk.IsCrash {
			continue
		}
		m := out.Data.Machine(tk.ServerID)
		if m != nil && m.Kind == model.VM && m.System == model.SysII {
			t.Fatalf("Sys II VM %s has a crash ticket", m.ID)
		}
	}
}

func TestVMsReferenceBoxes(t *testing.T) {
	out, err := Generate(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range out.Data.MachinesOf(model.VM, 0) {
		if m.HostID == "" {
			t.Fatalf("VM %s has no host", m.ID)
		}
		host := out.Data.Machine(m.HostID)
		if host == nil || host.Kind != model.Box {
			t.Fatalf("VM %s host %q is not a box", m.ID, m.HostID)
		}
		if host.System != m.System {
			t.Fatalf("VM %s hosted in a different system", m.ID)
		}
	}
}

func TestMonitorCoverage(t *testing.T) {
	cfg := tinyConfig()
	out, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	missing := 0
	for _, m := range out.Data.Machines {
		if m.Kind == model.Box {
			continue
		}
		if _, ok := out.Monitor.FirstSeen(m.ID); !ok {
			missing++
		}
	}
	if missing > 0 {
		t.Fatalf("%d machines missing from the monitoring DB", missing)
	}
}

func TestVMCreationSplit(t *testing.T) {
	cfg := tinyConfig()
	out, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before, after := 0, 0
	for _, m := range out.Data.MachinesOf(model.VM, 0) {
		if m.Created.Before(cfg.MonitorEpoch) {
			before++
		} else {
			after++
		}
	}
	total := before + after
	frac := float64(before) / float64(total)
	if frac < 0.10 || frac > 0.45 {
		t.Errorf("pre-epoch VM fraction %.2f, want ≈%.2f", frac, cfg.VMCreatedBeforeEpoch)
	}
}

func TestIncidentsShareClassAndTime(t *testing.T) {
	out, err := Generate(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	byIncident := make(map[string][]model.Ticket)
	for _, tk := range out.Data.Tickets {
		if tk.IsCrash && tk.IncidentID != "" {
			byIncident[tk.IncidentID] = append(byIncident[tk.IncidentID], tk)
		}
	}
	for id, tickets := range byIncident {
		for _, tk := range tickets {
			if tk.Class != tickets[0].Class {
				t.Fatalf("incident %s mixes classes", id)
			}
			if d := tk.Opened.Sub(tickets[0].Opened); d < -time.Hour || d > time.Hour {
				t.Fatalf("incident %s spans %v", id, d)
			}
		}
	}
}

func TestSpatialDisabledMeansSingletonIncidents(t *testing.T) {
	cfg := tinyConfig()
	cfg.Spatial.Enabled = false
	out, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, inc := range out.Data.Incidents {
		if len(inc.Servers) != 1 {
			t.Fatalf("spatial disabled but incident %s involves %d servers", inc.ID, len(inc.Servers))
		}
	}
}

func TestRepairTimesPositive(t *testing.T) {
	out, err := Generate(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range out.Data.Tickets {
		if !tk.Closed.After(tk.Opened) {
			t.Fatalf("ticket %s has non-positive repair time", tk.ID)
		}
	}
}

func TestScaleDown(t *testing.T) {
	if got := scaleDown(16, 8); got != 2 {
		t.Errorf("scaleDown(16,8) = %d", got)
	}
	if got := scaleDown(3, 8); got != 1 {
		t.Errorf("scaleDown(3,8) = %d (floor is 1)", got)
	}
	if got := scaleDown(0, 8); got != 0 {
		t.Errorf("scaleDown(0,8) = %d", got)
	}
}

func TestExposureWeeks(t *testing.T) {
	cfg := tinyConfig()
	full := &machineState{m: &model.Machine{Created: cfg.MonitorEpoch}}
	if got := exposureWeeks(cfg, full); math.Abs(got-cfg.Observation.Weeks()) > 1e-9 {
		t.Errorf("full exposure %v", got)
	}
	mid := cfg.Observation.Start.Add(cfg.Observation.Duration() / 2)
	half := &machineState{m: &model.Machine{Created: mid}}
	if got := exposureWeeks(cfg, half); math.Abs(got-cfg.Observation.Weeks()/2) > 1e-9 {
		t.Errorf("half exposure %v", got)
	}
	future := &machineState{m: &model.Machine{Created: cfg.Observation.End.AddDate(0, 1, 0)}}
	if got := exposureWeeks(cfg, future); got != 0 {
		t.Errorf("future machine exposure %v", got)
	}
}
