package dcsim

import (
	"fmt"
	"time"

	"failscope/internal/model"
	"failscope/internal/obs"
	"failscope/internal/par"
	"failscope/internal/xrand"
)

// machineState is the generator's hidden per-machine state: the drawn
// capacity, usage profile, lifecycle and the resulting failure rate.
type machineState struct {
	m *model.Machine

	// usage profile: long-run weekly-average targets.
	cpuUtil, memUtil, diskUtil float64
	netKbps                    float64

	// lifecycle.
	onOffPerMonth float64
	boxIdx        int // index into the system's boxes; -1 for non-VMs
	powerDomain   int
	appGroup      int

	// failure process.
	lemon      float64 // unit-mean Gamma heterogeneity multiplier
	consFactor float64 // consolidation-level factor (1 for non-VMs)
	weeklyRate float64 // calibrated primary event rate
}

// box is one hypervisor host.
type box struct {
	m    *model.Machine
	vms  []*machineState
	size int // target consolidation level
}

// systemState holds the generated topology of one subsystem.
type systemState struct {
	cfg      SystemConfig
	pms      []*machineState
	vms      []*machineState
	boxes    []*box
	nDomains int
	nGroups  int
}

// consolidationLevels is the target distribution of VM consolidation
// (§VI.A: VM population grows with the level — 0.6% at 1, ~30% at 16,
// ~32% at 32).
var consolidationLevels = []struct {
	level  int
	weight float64
}{
	{1, 0.006}, {2, 0.024}, {4, 0.10}, {8, 0.25}, {16, 0.30}, {32, 0.32},
}

// capacity mixes; weights reflect the population skews the paper notes
// (72% of PMs with at most 4 processors, most VMs with 1–2 vCPUs and
// 1–2 GB memory, 83% of VM failures on machines with ≤2 disks).
var (
	pmCPUChoices = []int{1, 2, 4, 8, 16, 24, 32, 64}
	pmCPUWeights = []float64{0.10, 0.22, 0.40, 0.12, 0.08, 0.04, 0.03, 0.01}

	vmCPUChoices = []int{1, 2, 4, 8}
	vmCPUWeights = []float64{0.35, 0.40, 0.18, 0.07}

	pmMemChoices = []float64{2, 4, 8, 16, 32, 64, 128, 256}
	pmMemWeights = []float64{0.06, 0.10, 0.18, 0.22, 0.20, 0.14, 0.07, 0.03}

	vmMemChoices = []float64{0.25, 0.5, 1, 2, 4, 8, 16, 32}
	vmMemWeights = []float64{0.04, 0.08, 0.28, 0.30, 0.16, 0.08, 0.04, 0.02}

	vmDiskCapChoices = []float64{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
	vmDiskCapWeights = []float64{0.05, 0.10, 0.15, 0.15, 0.15, 0.13, 0.12, 0.08, 0.05, 0.02}

	vmDiskCountChoices = []int{1, 2, 3, 4, 5, 6}
	vmDiskCountWeights = []float64{0.38, 0.40, 0.10, 0.06, 0.04, 0.02}

	// monthly on/off frequency mix (§VI.B: 60% at most once per month,
	// ~14% at eight or more).
	onOffChoices = []float64{0, 1, 2, 4, 8, 16}
	onOffWeights = []float64{0.35, 0.25, 0.15, 0.11, 0.08, 0.06}

	// network demand bands (§V.B: 45% in 2–64 Kbps, 34% in 128–512,
	// 21% in 1024–8192).
	netBands = []struct {
		lo, hi float64
		weight float64
	}{
		{2, 64, 0.45}, {128, 512, 0.34}, {1024, 8192, 0.21},
	}
)

// buildTopology constructs the machine inventory and hidden state for all
// systems. Per-machine draws come from streams keyed by the machine's ID
// and run on cfg.Parallelism workers; the result is identical at every
// worker count. Pool accounting for the per-machine sweeps lands on sp.
func buildTopology(cfg Config, sp *obs.Span) []*systemState {
	systems := make([]*systemState, 0, len(cfg.Systems))
	for _, sc := range cfg.Systems {
		systems = append(systems, buildSystem(cfg, sc, sp))
	}
	return systems
}

func buildSystem(cfg Config, sc SystemConfig, sp *obs.Span) *systemState {
	ss := &systemState{cfg: sc}

	// PMs: long-lived physical servers, in place well before the epoch.
	ss.pms = make([]*machineState, sc.PMs)
	sp.AddPool(par.ForEach(cfg.Parallelism, sc.PMs, func(i int) {
		id := model.MachineID(fmt.Sprintf("pm-%d-%04d", sc.System, i))
		rng := machineRNG(cfg, streamTopoMachine, id)
		m := &model.Machine{
			ID:     id,
			Kind:   model.PM,
			System: sc.System,
			Capacity: model.Capacity{
				CPUs:     pmCPUChoices[rng.Categorical(pmCPUWeights)],
				MemoryGB: pmMemChoices[rng.Categorical(pmMemWeights)],
			},
			Created: cfg.MonitorEpoch.Add(-time.Duration(1+rng.Intn(4*365*24)) * time.Hour),
		}
		st := &machineState{m: m, boxIdx: -1, consFactor: 1}
		drawUsage(st, rng)
		ss.pms[i] = st
	}))

	// Boxes sized by the consolidation-level mix, then VMs placed on them.
	// The configured weights are per-VM population shares; a box of level L
	// holds L VMs, so box draws use weight share/L. The level sequence
	// decides how many boxes exist, so this walk is inherently sequential;
	// it draws from the system's own stream and is cheap (one box per ~10
	// VMs).
	boxRNG := systemRNG(cfg, streamTopoBoxes, sc.System)
	levelWeights := make([]float64, len(consolidationLevels))
	for i, cl := range consolidationLevels {
		levelWeights[i] = cl.weight / float64(cl.level)
	}
	remaining := sc.VMs
	for remaining > 0 {
		level := consolidationLevels[boxRNG.Categorical(levelWeights)].level
		if level > remaining {
			level = remaining
		}
		b := &box{
			m: &model.Machine{
				ID:     model.MachineID(fmt.Sprintf("box-%d-%04d", sc.System, len(ss.boxes))),
				Kind:   model.Box,
				System: sc.System,
				Capacity: model.Capacity{
					CPUs:     pmCPUChoices[boxRNG.Categorical(pmCPUWeights)],
					MemoryGB: pmMemChoices[boxRNG.Categorical(pmMemWeights)],
				},
				Created: cfg.MonitorEpoch.Add(-time.Duration(1+boxRNG.Intn(3*365*24)) * time.Hour),
			},
			size: level,
		}
		ss.boxes = append(ss.boxes, b)
		remaining -= level
	}

	// VMs: which box a VM lands on is a pure function of the box sizes, so
	// the per-VM draws (creation date, capacity, on/off class, usage) can
	// run in parallel on per-machine streams. Creation dates split between
	// "before the epoch" (first record clamps to the epoch, so the ingest
	// age filter drops them) and a batched spread across the two-year
	// monitoring window.
	vmBox := make([]int, 0, sc.VMs)
	for bi, b := range ss.boxes {
		for v := 0; v < b.size; v++ {
			vmBox = append(vmBox, bi)
		}
	}
	ss.vms = make([]*machineState, len(vmBox))
	sp.AddPool(par.ForEach(cfg.Parallelism, len(vmBox), func(i int) {
		b := ss.boxes[vmBox[i]]
		id := model.MachineID(fmt.Sprintf("vm-%d-%05d", sc.System, i))
		rng := machineRNG(cfg, streamTopoMachine, id)
		created := drawVMCreation(cfg, rng)
		m := &model.Machine{
			ID:     id,
			Kind:   model.VM,
			System: sc.System,
			Capacity: model.Capacity{
				CPUs:     vmCPUChoices[rng.Categorical(vmCPUWeights)],
				MemoryGB: vmMemChoices[rng.Categorical(vmMemWeights)],
				DiskGB:   vmDiskCapChoices[rng.Categorical(vmDiskCapWeights)],
				Disks:    vmDiskCountChoices[rng.Categorical(vmDiskCountWeights)],
			},
			HostID:  b.m.ID,
			Created: created,
		}
		st := &machineState{
			m:             m,
			boxIdx:        vmBox[i],
			consFactor:    cfg.Curves.Consolidation.At(float64(b.size)),
			onOffPerMonth: onOffChoices[rng.Categorical(onOffWeights)],
		}
		drawUsage(st, rng)
		ss.vms[i] = st
	}))
	for i, st := range ss.vms {
		ss.boxes[vmBox[i]].vms = append(ss.boxes[vmBox[i]].vms, st)
	}

	// Blast domains: power domains span PMs, boxes and their VMs within
	// the system; application groups mix PMs and VMs.
	assignDomains(cfg, ss, systemRNG(cfg, streamTopoDomains, sc.System))
	return ss
}

// drawVMCreation samples a VM creation date: a fraction predates the
// monitoring epoch; the rest arrive in monthly batches across the window
// (the paper notes VMs are created in batches).
func drawVMCreation(cfg Config, rng *xrand.RNG) time.Time {
	if rng.Bool(cfg.VMCreatedBeforeEpoch) {
		return cfg.MonitorEpoch.Add(-time.Duration(1+rng.Intn(365*24)) * time.Hour)
	}
	// Batch months between the epoch and three months before observation
	// end, weighted toward earlier months so most VMs exist for most of
	// the observation year.
	span := cfg.Observation.End.Add(-90 * 24 * time.Hour).Sub(cfg.MonitorEpoch)
	months := int(span.Hours()/(30*24)) + 1
	weights := make([]float64, months)
	for i := range weights {
		weights[i] = 2.5 - 2*float64(i)/float64(months)
	}
	month := rng.Categorical(weights)
	jitter := time.Duration(rng.Intn(30*24)) * time.Hour
	return cfg.MonitorEpoch.Add(time.Duration(month)*30*24*time.Hour + jitter)
}

// drawUsage fills the long-run usage profile of a machine.
func drawUsage(st *machineState, rng *xrand.RNG) {
	isPM := st.m.Kind == model.PM

	// CPU utilization: more than half the population at or below 10%.
	st.cpuUtil = clamp(rng.LogNormal(1.9, 1.0), 0.5, 98) // median ≈ 6.7%

	if isPM {
		// PM memory utilization population grows with utilization.
		st.memUtil = clamp(100-rng.LogNormal(3.2, 0.8), 1, 99)
	} else {
		st.memUtil = clamp(rng.LogNormal(1.8, 1.0), 0.5, 95)
	}

	st.diskUtil = clamp(rng.LogNormal(3.1, 0.8), 1, 99)

	band := netBands[rng.Categorical([]float64{netBands[0].weight, netBands[1].weight, netBands[2].weight})]
	st.netKbps = band.lo + rng.Float64()*(band.hi-band.lo)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// assignDomains partitions the system's machines into power domains and
// application groups.
func assignDomains(cfg Config, ss *systemState, rng *xrand.RNG) {
	all := make([]*machineState, 0, len(ss.pms)+len(ss.vms))
	all = append(all, ss.pms...)
	all = append(all, ss.vms...)
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })

	domainSize := cfg.Spatial.PowerDomainSize
	if domainSize < 2 {
		domainSize = 25
	}
	ss.nDomains = (len(all) + domainSize - 1) / domainSize
	for i, st := range all {
		st.powerDomain = i / domainSize
	}

	// Application groups are kind-homogeneous: multi-tier applications
	// deploy their modules across VMs (or across PMs), which is what gives
	// VM failures their stronger spatial dependency (§IV.E).
	groupSize := cfg.Spatial.AppGroupSize
	if groupSize < 1 {
		groupSize = 6
	}
	g := 0
	for _, pop := range [][]*machineState{ss.pms, ss.vms} {
		shuffled := append([]*machineState(nil), pop...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		for i := 0; i < len(shuffled); {
			n := 1 + rng.Intn(2*groupSize-1) // mean ≈ groupSize
			for j := i; j < i+n && j < len(shuffled); j++ {
				shuffled[j].appGroup = g
			}
			g++
			i += n
		}
	}
	ss.nGroups = g
}
