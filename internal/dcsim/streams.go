package dcsim

import (
	"failscope/internal/model"
	"failscope/internal/xrand"
)

// Stream labels for xrand.Derive. Every random draw in the generator comes
// from a stream that is a pure function of (cfg.Seed, stage, entity), so
// machines, events and tickets can be processed on any number of workers in
// any order and still reproduce the exact sequential output. Adding draws
// to one entity's stream never perturbs another's.
//
// The labels are part of the generator's determinism contract: renumbering
// them changes every generated dataset, so new stages must be appended.
const (
	streamTopoMachine uint64 = iota + 1 // per-machine capacity/lifecycle/usage draws
	streamTopoBoxes                     // per-system box structure (level mix)
	streamTopoDomains                   // per-system blast-domain shuffles
	streamLemon                         // per-machine heterogeneity multiplier
	streamEvents                        // per-machine failure-event process
	streamMass                          // per-system mass incidents
	streamTicket                        // per-event crash-ticket rendering
	streamBackground                    // per-ticket background traffic
	streamUsage                         // per-machine monitoring usage series
	streamPlacement                     // per-VM placement/migration schedule
	streamPower                         // per-VM power-event log
)

// machineRNG derives the stream for one (stage, machine) pair. Keying by
// the machine's stable ID rather than a slice position keeps streams
// invariant under any future reordering of the inventory.
func machineRNG(cfg Config, stage uint64, id model.MachineID) *xrand.RNG {
	return xrand.Derive(cfg.Seed, stage, xrand.HashString(string(id)))
}

// systemRNG derives the stream for one (stage, system) pair; used for the
// few draws that are inherently sequential within a system (box structure,
// domain shuffles, mass events).
func systemRNG(cfg Config, stage uint64, sys model.System) *xrand.RNG {
	return xrand.Derive(cfg.Seed, stage, uint64(sys))
}
