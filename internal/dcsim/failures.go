package dcsim

import (
	"math"
	"sort"
	"time"

	"failscope/internal/model"
	"failscope/internal/par"
	"failscope/internal/xrand"
)

// event is one server-failure occurrence before it is rendered to a
// ticket. cause is the true physical root cause (one of the five named
// classes), which drives repair time and spatial fan-out; label is what
// the ticket resolution text will reveal — equal to cause, or ClassOther
// when the ticket is written too vaguely to classify (the paper's 53%
// "other" share is a property of ticket quality, not a physical failure
// mode).
type event struct {
	st       *machineState
	t        time.Time
	cause    model.FailureClass
	label    model.FailureClass
	incident int
}

// calibrateRates assigns each machine its lemon multiplier and primary
// weekly failure rate so that the system-level expected crash-ticket counts
// match the Table II targets after recurrence cascades and spatial fan-out
// inflate the primary events.
func calibrateRates(cfg Config, ss *systemState) {
	// Expected total crash tickets for this system, split by kind.
	crash := ss.cfg.crashTickets()
	pmTarget := crash * ss.cfg.PMCrashShare
	vmTarget := crash * (1 - ss.cfg.PMCrashShare)

	// Inflation corrections shared by both kinds.
	cascadePM := 1 / (1 - cfg.Recurrence.PMProb)
	cascadeVM := 1 / (1 - cfg.Recurrence.VMProb)
	fanout := 1.0
	if cfg.Spatial.Enabled {
		// Realization corrections: PM victims dodge infrastructure
		// fan-outs with PMVictimSkipProb, and software fan-outs are
		// capped by the (small) application-group size.
		pmFrac := 0.0
		if ss.cfg.PMs+ss.cfg.VMs > 0 {
			pmFrac = float64(ss.cfg.PMs) / float64(ss.cfg.PMs+ss.cfg.VMs)
		}
		infraScale := 1 - cfg.Spatial.PMVictimSkipProb*pmFrac
		// Software fan-outs draw from application groups whose sizes are
		// uniform on 1..2·AppGroupSize−1; small groups truncate the draw.
		// 0.85 is the measured realization for the default group size.
		const groupScale = 0.85
		mixTotal := 0.0
		extra := 0.0
		for _, class := range model.ClassifiedClasses() {
			w := ss.cfg.ClassMix[class]
			mixTotal += w
			e := cfg.Spatial.Classes[class].expectedExtra()
			if infrastructureCause(class) {
				e *= infraScale
			}
			if class == model.ClassSoftware {
				e *= groupScale
			}
			extra += w * e
		}
		if mixTotal > 0 {
			fanout = 1 + extra/mixTotal
		}
	}

	calibrateKind(cfg, ss.pms, pmTarget/(cascadePM*fanout), cfg.Observation.Weeks())
	calibrateKind(cfg, ss.vms, vmTarget/(cascadeVM*fanout), cfg.Observation.Weeks())
}

// calibrateKind distributes a total primary-event budget over machines in
// proportion to their attribute factors and lemon multipliers. Lemon draws
// come from per-machine streams and the normalizing sum folds per-machine
// contributions in inventory order, so the calibration is bit-identical at
// every parallelism level.
func calibrateKind(cfg Config, machines []*machineState, targetEvents, weeks float64) {
	if len(machines) == 0 {
		return
	}
	if targetEvents <= 0 {
		for _, st := range machines {
			st.lemon = 1
			st.weeklyRate = 0
		}
		return
	}
	shape := cfg.HeterogeneityShapePM
	if machines[0].m.Kind == model.VM {
		shape = cfg.HeterogeneityShapeVM
	}
	contrib := make([]float64, len(machines))
	par.ForEach(cfg.Parallelism, len(machines), func(i int) {
		st := machines[i]
		st.lemon = machineRNG(cfg, streamLemon, st.m.ID).Gamma(shape, 1/shape)
		contrib[i] = cfg.rateFactor(st) * st.lemon * exposureWeeks(cfg, st) / weeks
	})
	sum := 0.0
	for _, c := range contrib {
		sum += c
	}
	if sum <= 0 {
		return
	}
	base := targetEvents / weeks / sum
	for _, st := range machines {
		st.weeklyRate = base * cfg.rateFactor(st) * st.lemon
	}
}

// exposureWeeks is the number of observation weeks the machine exists.
func exposureWeeks(cfg Config, st *machineState) float64 {
	start := cfg.Observation.Start
	if st.m.Created.After(start) {
		start = st.m.Created
	}
	if !start.Before(cfg.Observation.End) {
		return 0
	}
	return cfg.Observation.End.Sub(start).Hours() / (24 * 7)
}

// rateFactor evaluates the combined attribute factor of Figs. 7–10 for a
// machine. The paper's analysis recovers these shapes from the generated
// data; the normalization in calibrateKind keeps system totals invariant.
func (c Config) rateFactor(st *machineState) float64 {
	cv := c.Curves
	res := st.m.Capacity
	f := 1.0
	switch st.m.Kind {
	case model.PM:
		f *= cv.PMCPU.At(float64(res.CPUs))
		f *= cv.PMMem.At(res.MemoryGB)
		f *= cv.PMCPUUtil.At(st.cpuUtil)
		f *= cv.PMMemUtil.At(st.memUtil)
	case model.VM:
		f *= st.consFactor
		f *= cv.VMCPU.At(float64(res.CPUs))
		f *= cv.VMMem.At(res.MemoryGB)
		f *= cv.VMDiskCap.At(res.DiskGB)
		f *= cv.VMDiskCount.At(float64(res.Disks))
		f *= cv.VMCPUUtil.At(st.cpuUtil)
		f *= cv.VMMemUtil.At(st.memUtil)
		f *= cv.VMDiskUtil.At(st.diskUtil)
		f *= cv.VMNetKbps.At(st.netKbps)
		f *= cv.OnOff.At(st.onOffPerMonth)
		// Age factor at mid-observation; the weak positive trend of Fig. 6.
		mid := c.Observation.Start.Add(c.Observation.Duration() / 2)
		ageYears := mid.Sub(st.m.Created).Hours() / (24 * 365)
		if ageYears > 0 {
			f *= 1 + c.Curves.AgeSlopePerYear*math.Min(ageYears, 3)
		}
	}
	return f
}

// eventGroup is one incident's events: the trigger first, its fan-out
// victims after. Groups are generated with incident 0 on any number of
// workers; incident IDs are assigned afterwards in inventory order, which
// keeps the numbering identical at every parallelism level.
type eventGroup []event

// generateEvents produces the full failure-event log of one system. Each
// machine's failure process draws from its own stream, so machines shard
// freely across workers.
func generateEvents(cfg Config, ss *systemState, nextIncident *int) []event {
	machines := allMachines(ss)
	perMachine := make([][]eventGroup, len(machines))
	par.ForEach(cfg.Parallelism, len(machines), func(i int) {
		perMachine[i] = machineEventGroups(cfg, ss, machines[i])
	})

	groups := make([]eventGroup, 0, len(machines))
	for _, gs := range perMachine {
		groups = append(groups, gs...)
	}
	groups = append(groups, massEvents(cfg, ss, systemRNG(cfg, streamMass, ss.cfg.System))...)

	var events []event
	for _, g := range groups {
		id := *nextIncident
		*nextIncident++
		for _, ev := range g {
			ev.incident = id
			events = append(events, ev)
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if !events[i].t.Equal(events[j].t) {
			return events[i].t.Before(events[j].t)
		}
		if events[i].incident != events[j].incident {
			return events[i].incident < events[j].incident
		}
		return events[i].st.m.ID < events[j].st.m.ID
	})
	return events
}

// machineEventGroups runs one machine's failure process: primary events at
// the calibrated rate, each with its spatial fan-out, plus the temporal
// recurrence cascade (§IV.D) — a geometric chain of follow-up failures at
// short Gamma-distributed lags. A follow-up repeats the trigger's cause
// with a per-class probability (chronic software recurs as software) and is
// otherwise a fresh draw.
func machineEventGroups(cfg Config, ss *systemState, st *machineState) []eventGroup {
	rate := st.weeklyRate
	weeks := exposureWeeks(cfg, st)
	if rate <= 0 || weeks <= 0 {
		return nil
	}
	obs := cfg.Observation
	rng := machineRNG(cfg, streamEvents, st.m.ID)
	n := rng.Poisson(rate * weeks)
	start := obs.Start
	if st.m.Created.After(start) {
		start = st.m.Created
	}
	span := obs.End.Sub(start)
	recurProb := cfg.Recurrence.PMProb
	if st.m.Kind == model.VM {
		recurProb = cfg.Recurrence.VMProb
	}
	var groups []eventGroup
	for i := 0; i < n; i++ {
		t := start.Add(time.Duration(rng.Float64() * float64(span)))
		cause := drawCause(cfg, ss.cfg, st, rng)
		primary := event{st: st, t: t, cause: cause, label: labelFor(cause, ss.cfg, rng)}
		groups = append(groups, append(eventGroup{primary}, fanOut(cfg, ss, primary, rng)...))

		cur := t
		prev := cause
		for rng.Bool(recurProb) {
			lagDays := rng.Gamma(cfg.Recurrence.LagShape, cfg.Recurrence.LagMeanDays/cfg.Recurrence.LagShape)
			cur = cur.Add(time.Duration(lagDays * 24 * float64(time.Hour)))
			if !cur.Before(obs.End) {
				break
			}
			fc := prev
			if !rng.Bool(cfg.Recurrence.SameCauseProb[prev]) {
				fc = drawCause(cfg, ss.cfg, st, rng)
			}
			follow := event{st: st, t: cur, cause: fc, label: labelFor(fc, ss.cfg, rng)}
			groups = append(groups, append(eventGroup{follow}, fanOut(cfg, ss, follow, rng)...))
			prev = fc
		}
	}
	return groups
}

// drawCause samples the true root cause of a failure on st from the five
// named classes.
func drawCause(cfg Config, sc SystemConfig, st *machineState, rng *xrand.RNG) model.FailureClass {
	classes := model.ClassifiedClasses()
	weights := make([]float64, len(classes))
	total := 0.0
	for i, class := range classes {
		w := sc.ClassMix[class]
		if st.m.Kind == model.VM {
			w *= cfg.VMClassBias[class]
		}
		// Chronically failing machines skew software (§IV.B: the shortest
		// per-server inter-failure times are software's).
		if st.lemon > 1.3 && class == model.ClassSoftware {
			w *= cfg.LemonSoftwareBias
		}
		weights[i] = w
		total += w
	}
	if total <= 0 {
		return model.ClassSoftware
	}
	return classes[rng.Categorical(weights)]
}

// labelFor degrades the true cause to ClassOther with the system's vague-
// ticket share.
func labelFor(cause model.FailureClass, sc SystemConfig, rng *xrand.RNG) model.FailureClass {
	mixTotal := 0.0
	for _, w := range sc.ClassMix {
		mixTotal += w
	}
	if mixTotal <= 0 {
		return cause
	}
	if rng.Bool(sc.ClassMix[model.ClassOther] / mixTotal) {
		return model.ClassOther
	}
	return cause
}

// fanOut expands a failure into a multi-server incident per §IV.E. The
// physical cause selects the blast domain; victims inherit the trigger's
// incident, cause and label (one support group writes all the tickets of
// one incident).
func fanOut(cfg Config, ss *systemState, ev event, rng *xrand.RNG) []event {
	if !cfg.Spatial.Enabled {
		return nil
	}
	fo := cfg.Spatial.Classes[ev.cause]

	// Host reboot: an unexpected VM reboot may actually be the hypervisor
	// recycling, which takes the co-hosted VMs with it.
	if ev.cause == model.ClassReboot && ev.st.m.Kind == model.VM && ev.st.boxIdx >= 0 &&
		rng.Bool(cfg.Spatial.HostRebootProb) {
		return victimEvents(cfg, ev, coHosted(ss, ev.st), boundedPareto(rng, 1.1, fo.MaxServers), rng)
	}
	if fo.TriggerProb <= 0 || !rng.Bool(fo.TriggerProb) {
		return nil
	}
	extra := boundedPareto(rng, fo.TailAlpha, fo.MaxServers)
	var pool []*machineState
	switch ev.cause {
	case model.ClassPower, model.ClassHardware, model.ClassNetwork:
		// Shared electrical or network infrastructure: co-located servers.
		pool = sameDomain(ss, ev.st)
	case model.ClassSoftware:
		pool = sameAppGroup(ss, ev.st)
	default: // reboot (non-host): anywhere in the system
		pool = allMachines(ss)
	}
	return victimEvents(cfg, ev, pool, extra, rng)
}

// massEvents injects the rare, large, unclassifiable incidents (§IV.E: the
// 34-server maximum is attributed to the "other" class). They are few per
// system, so the walk stays sequential on the system's own stream.
func massEvents(cfg Config, ss *systemState, rng *xrand.RNG) []eventGroup {
	if !cfg.Spatial.Enabled || cfg.Spatial.MassEventsPerYear <= 0 {
		return nil
	}
	years := cfg.Observation.Duration().Hours() / (24 * 365)
	n := rng.Poisson(cfg.Spatial.MassEventsPerYear * years)
	pool := allMachines(ss)
	if len(pool) == 0 {
		return nil
	}
	var out []eventGroup
	for i := 0; i < n; i++ {
		trigger := pool[rng.Intn(len(pool))]
		if trigger.weeklyRate <= 0 {
			continue
		}
		t := cfg.Observation.Start.Add(time.Duration(rng.Float64() * float64(cfg.Observation.Duration())))
		cause := drawCause(cfg, ss.cfg, trigger, rng)
		ev := event{st: trigger, t: t, cause: cause, label: model.ClassOther}
		maxServers := cfg.Spatial.MassEventMaxServers
		extra := maxServers/2 + rng.Intn(maxServers/2+1)
		out = append(out, append(eventGroup{ev}, victimEvents(cfg, ev, pool, extra, rng)...))
	}
	return out
}

// boundedPareto draws the number of additional victims: Pareto(1, alpha)
// minus the trigger itself, capped.
func boundedPareto(rng *xrand.RNG, alpha float64, maxExtra int) int {
	n := int(rng.Pareto(1, alpha)) // >= 1
	n--                            // the trigger server is not an "extra"
	if n < 1 {
		n = 1
	}
	if n > maxExtra {
		n = maxExtra
	}
	return n
}

func infrastructureCause(c model.FailureClass) bool {
	return c == model.ClassPower || c == model.ClassHardware || c == model.ClassNetwork
}

func coHosted(ss *systemState, st *machineState) []*machineState {
	if st.boxIdx < 0 {
		return nil
	}
	var out []*machineState
	for _, v := range ss.boxes[st.boxIdx].vms {
		if v != st {
			out = append(out, v)
		}
	}
	return out
}

func sameDomain(ss *systemState, st *machineState) []*machineState {
	var out []*machineState
	for _, m := range allMachines(ss) {
		if m != st && m.powerDomain == st.powerDomain {
			out = append(out, m)
		}
	}
	return out
}

func sameAppGroup(ss *systemState, st *machineState) []*machineState {
	var out []*machineState
	for _, m := range allMachines(ss) {
		if m != st && m.appGroup == st.appGroup {
			out = append(out, m)
		}
	}
	return out
}

func allMachines(ss *systemState) []*machineState {
	out := make([]*machineState, 0, len(ss.pms)+len(ss.vms))
	out = append(out, ss.pms...)
	out = append(out, ss.vms...)
	return out
}

// victimEvents turns up to n machines from pool into co-failing victims of
// the trigger event. Machines that do not exist yet, or whose kind has a
// zero target rate in this system (e.g. Sys II VMs, which produced no
// crash tickets at all), are skipped.
func victimEvents(cfg Config, trigger event, pool []*machineState, n int, rng *xrand.RNG) []event {
	if n <= 0 || len(pool) == 0 {
		return nil
	}
	idx := rng.Perm(len(pool))
	var out []event
	for _, i := range idx {
		if len(out) >= n {
			break
		}
		v := pool[i]
		if v.m.Created.After(trigger.t) || v.weeklyRate <= 0 {
			continue
		}
		if v.m.Kind == model.PM && infrastructureCause(trigger.cause) &&
			rng.Bool(cfg.Spatial.PMVictimSkipProb) {
			continue
		}
		jitter := time.Duration(rng.Intn(10)) * time.Minute
		t := trigger.t.Add(jitter)
		if !t.Before(cfg.Observation.End) {
			t = trigger.t
		}
		out = append(out, event{st: v, t: t, cause: trigger.cause, label: trigger.label, incident: trigger.incident})
	}
	return out
}
