package dcsim

import (
	"fmt"
	"strconv"
	"time"

	"failscope/internal/model"
	"failscope/internal/monitordb"
	"failscope/internal/obs"
	"failscope/internal/par"
	"failscope/internal/ticketdb"
	"failscope/internal/xrand"
)

// Output is the generated field data: the raw databases the collection
// pipeline mines (ticket store + monitoring DB) and the assembled dataset
// with ground truth.
type Output struct {
	Data    *model.Dataset
	Tickets *ticketdb.Store
	Monitor *monitordb.DB
}

// Generate runs the simulator and returns the field data. It is
// deterministic in cfg.Seed: every random draw comes from a stream derived
// from (Seed, stage, entity), so the output is byte-identical at every
// cfg.Parallelism setting — machines, events and tickets merely shard
// across more workers.
func Generate(cfg Config) (*Output, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	o := cfg.Observer

	topoSpan := o.Start("topology")
	systems := buildTopology(cfg, topoSpan)
	topoSpan.End()

	monitor := monitordb.New(cfg.MonitorEpoch, cfg.MonitorRetention)
	monitor.Instrument(o.Metrics())
	monitor.SetLogger(o.Log())
	store := ticketdb.NewStore()
	renderer := ticketdb.NewRenderer(xrand.Derive(cfg.Seed, streamTicket), cfg.VagueTextProb)

	// Calibrate failure rates, then generate the event log.
	calSpan := o.Start("calibration")
	for _, ss := range systems {
		calibrateRates(cfg, ss)
	}
	calSpan.End()

	evSpan := o.Start("events")
	nextIncident := 1
	var allEvents []event
	for _, ss := range systems {
		allEvents = append(allEvents, generateEvents(cfg, ss, &nextIncident)...)
	}
	evSpan.AddItems(len(allEvents))
	evSpan.End()

	// Render crash tickets. Each event's repair draw and ticket text come
	// from a stream keyed by the event's position in the (deterministic)
	// event log, so rendering shards freely across workers.
	tickSpan := o.Start("tickets")
	tickets := make([]model.Ticket, len(allEvents))
	tickSpan.AddPool(par.ForEach(cfg.Parallelism, len(allEvents), func(i int) {
		ev := allEvents[i]
		rng := xrand.Derive(cfg.Seed, streamTicket, uint64(i))
		// Repair effort follows the physical cause; the ticket label (and
		// its text quality) follows what the writer revealed.
		repair := cfg.Repair[ev.cause].Sample(rng)
		if ev.st.m.Kind == model.VM {
			if scale, ok := cfg.VMRepairScale[ev.cause]; ok && scale > 0 {
				repair *= scale
			}
		}
		desc, res := renderer.CrashWith(rng, ev.label, ev.st.m.ID)
		tickets[i] = model.Ticket{
			ServerID:    ev.st.m.ID,
			IncidentID:  "I" + strconv.Itoa(ev.incident),
			System:      ev.st.m.System,
			Opened:      ev.t,
			Closed:      ev.t.Add(time.Duration(repair * float64(time.Hour))),
			Description: desc,
			Resolution:  res,
			IsCrash:     true,
			Class:       ev.label,
		}
	}))
	tickSpan.End()

	// Incident log, folded sequentially in event order.
	incSpan := o.Start("incidents")
	incidents := make(map[int]*model.Incident)
	for _, ev := range allEvents {
		inc := incidents[ev.incident]
		if inc == nil {
			inc = &model.Incident{
				ID:    "I" + strconv.Itoa(ev.incident),
				Class: ev.label,
				Time:  ev.t,
			}
			incidents[ev.incident] = inc
			o.Metrics().Add("dcsim.incidents."+ev.label.String(), 1)
		}
		inc.Servers = append(inc.Servers, ev.st.m.ID)
	}
	incSpan.AddItems(len(incidents))
	incSpan.End()

	// Background (non-crash) ticket traffic.
	bgSpan := o.Start("background")
	nCrash := len(allEvents)
	for _, ss := range systems {
		tickets = append(tickets, backgroundTickets(cfg, ss, renderer, bgSpan)...)
	}
	bgSpan.AddItems(len(tickets) - nCrash)
	bgSpan.End()

	// Monitoring database: usage series, placements, power events.
	monSpan := o.Start("monitoring")
	for _, ss := range systems {
		writeMonitoring(cfg, ss, monitor, monSpan)
	}
	monSpan.End()
	monitor.RecordFootprint()

	// Assemble and validate the dataset.
	asmSpan := o.Start("assemble")
	var machines []*model.Machine
	for _, ss := range systems {
		for _, st := range ss.pms {
			machines = append(machines, st.m)
		}
		for _, b := range ss.boxes {
			machines = append(machines, b.m)
		}
		for _, st := range ss.vms {
			machines = append(machines, st.m)
		}
	}
	store.Reserve(len(tickets))
	for i := range tickets {
		stored := store.Append(tickets[i])
		tickets[i].ID = stored.ID
	}
	var incidentList []model.Incident
	for i := 1; i < nextIncident; i++ {
		if inc := incidents[i]; inc != nil {
			incidentList = append(incidentList, *inc)
		}
	}
	data := model.NewDataset(cfg.Observation, machines, tickets, incidentList)
	if err := data.Validate(); err != nil {
		return nil, fmt.Errorf("dcsim: generated dataset invalid: %w", err)
	}
	asmSpan.End()

	m := o.Metrics()
	m.Add("dcsim.machines", int64(len(machines)))
	m.Add("dcsim.tickets", int64(len(tickets)))
	m.Add("dcsim.crash_tickets", int64(nCrash))
	m.Add("dcsim.incidents", int64(len(incidentList)))
	o.Log().Info("field data generated",
		"machines", len(machines), "tickets", len(tickets),
		"crash_tickets", nCrash, "incidents", len(incidentList))
	return &Output{Data: data, Tickets: store, Monitor: monitor}, nil
}

// backgroundTickets generates the >94% of problem tickets that are not
// server failures. Every ticket draws from its own (system, index) stream.
func backgroundTickets(cfg Config, ss *systemState, renderer *ticketdb.Renderer, sp *obs.Span) []model.Ticket {
	n := int(float64(ss.cfg.AllTickets) * (1 - ss.cfg.CrashShare))
	machines := allMachines(ss)
	if len(machines) == 0 || n <= 0 {
		return nil
	}
	span := cfg.Observation.Duration()
	sys := uint64(ss.cfg.System)
	out := make([]model.Ticket, n)
	sp.AddPool(par.ForEach(cfg.Parallelism, n, func(i int) {
		rng := xrand.Derive(cfg.Seed, streamBackground, sys, uint64(i))
		st := machines[rng.Intn(len(machines))]
		opened := cfg.Observation.Start.Add(time.Duration(rng.Float64() * float64(span)))
		repair := cfg.NonCrashRepair.Sample(rng)
		desc, res := renderer.NonCrashWith(rng, st.m.ID)
		out[i] = model.Ticket{
			ServerID:    st.m.ID,
			System:      ss.cfg.System,
			Opened:      opened,
			Closed:      opened.Add(time.Duration(repair * float64(time.Hour))),
			Description: desc,
			Resolution:  res,
			IsCrash:     false,
		}
	}))
	return out
}

// writeMonitoring populates the monitoring database for one system: a
// birth-marker sample at each machine's first observable moment, weekly
// usage averages across the observation year, monthly VM placements (with
// occasional migrations) and power events inside the fine window. Each
// machine's draws come from its own streams and land as batched writes, so
// machines shard across workers; the DB's content is order-independent
// (one writer per series, commutative first-seen minimum and host-load
// counts) and its encoder sorts, so the persisted bytes are identical at
// every parallelism level.
func writeMonitoring(cfg Config, ss *systemState, db *monitordb.DB, sp *obs.Span) {
	machines := allMachines(ss)
	sp.AddPool(par.ForEachBlock(cfg.Parallelism, len(machines), func(_, lo, hi int) {
		sc := scratchPool.Get()
		for i := lo; i < hi; i++ {
			writeUsage(cfg, machines[i], db, sc)
		}
		scratchPool.Put(sc)
	}))
	sp.AddPool(par.ForEachBlock(cfg.Parallelism, len(ss.vms), func(_, lo, hi int) {
		sc := scratchPool.Get()
		for i := lo; i < hi; i++ {
			st := ss.vms[i]
			writePlacements(cfg, ss, st, db, sc)
			writePowerEvents(cfg, st, db, sc)
		}
		scratchPool.Put(sc)
	}))
}

// writeUsage emits one machine's birth marker and weekly usage series,
// staging them in the worker's scratch buffers (AddSeries copies what it
// accepts, so the buffers recycle machine to machine).
func writeUsage(cfg Config, st *machineState, db *monitordb.DB, sc *genScratch) {
	rng := machineRNG(cfg, streamUsage, st.m.ID)
	first := st.m.Created
	if first.Before(cfg.MonitorEpoch) {
		first = cfg.MonitorEpoch
	}
	cpu, mem, dsk, net := sc.cpu[:0], sc.mem[:0], sc.dsk[:0], sc.net[:0]

	// Birth marker: the machine's first heartbeat in the database,
	// which is what the paper uses as the VM creation date.
	cpu = append(cpu, monitordb.Sample{Time: first, Value: noisy(rng, st.cpuUtil, 2)})

	start := cfg.Observation.Start
	if st.m.Created.After(start) {
		start = st.m.Created
	}
	for t := start; t.Before(cfg.Observation.End); t = t.Add(7 * 24 * time.Hour) {
		cpu = append(cpu, monitordb.Sample{Time: t, Value: noisy(rng, st.cpuUtil, 2)})
		mem = append(mem, monitordb.Sample{Time: t, Value: noisy(rng, st.memUtil, 2)})
		dsk = append(dsk, monitordb.Sample{Time: t, Value: noisy(rng, st.diskUtil, 1.5)})
		net = append(net, monitordb.Sample{Time: t, Value: st.netKbps * (0.85 + 0.3*rng.Float64())})
	}
	db.AddSeries(st.m.ID, monitordb.MetricCPUUtil, cpu)
	db.AddSeries(st.m.ID, monitordb.MetricMemUtil, mem)
	db.AddSeries(st.m.ID, monitordb.MetricDiskUtil, dsk)
	db.AddSeries(st.m.ID, monitordb.MetricNetKbps, net)
	sc.cpu, sc.mem, sc.dsk, sc.net = cpu, mem, dsk, net
}

// writePlacements emits one VM's monthly placements over the observation
// year, with rare migrations.
func writePlacements(cfg Config, ss *systemState, st *machineState, db *monitordb.DB, sc *genScratch) {
	rng := machineRNG(cfg, streamPlacement, st.m.ID)
	cur := ss.boxes[st.boxIdx]
	steps := sc.steps[:0]
	for t := cfg.Observation.Start; t.Before(cfg.Observation.End); t = t.AddDate(0, 1, 0) {
		if st.m.Created.After(t) {
			continue
		}
		if rng.Bool(cfg.Spatial.MigrationProb) && len(ss.boxes) > 1 {
			cur = ss.boxes[rng.Intn(len(ss.boxes))]
		}
		steps = append(steps, monitordb.PlacementStep{Host: cur.m.ID, Time: t})
	}
	db.SetPlacements(st.m.ID, steps)
	sc.steps = steps
}

// writePowerEvents emits one VM's power-state transitions inside the fine
// 15-minute window only — the paper has two months of fine-grained data.
func writePowerEvents(cfg Config, st *machineState, db *monitordb.DB, sc *genScratch) {
	if st.onOffPerMonth <= 0 {
		return
	}
	rng := machineRNG(cfg, streamPower, st.m.ID)
	fine := cfg.FineWindow
	months := fine.Duration().Hours() / (24 * 30)
	cycles := rng.Poisson(st.onOffPerMonth * months)
	events := sc.events[:0]
	for i := 0; i < cycles; i++ {
		off := fine.Start.Add(time.Duration(rng.Float64() * float64(fine.Duration())))
		downFor := time.Duration((0.5 + 6*rng.Float64()) * float64(time.Hour))
		on := off.Add(downFor)
		events = append(events, monitordb.PowerEvent{Time: off, On: false})
		if on.Before(fine.End) {
			events = append(events, monitordb.PowerEvent{Time: on, On: true})
		}
	}
	db.AddPowerEvents(st.m.ID, events)
	sc.events = events
}

func noisy(rng *xrand.RNG, v, sd float64) float64 {
	return clamp(v+sd*rng.Norm(), 0, 100)
}
