package dcsim

import (
	"fmt"
	"strconv"
	"time"

	"failscope/internal/model"
	"failscope/internal/monitordb"
	"failscope/internal/ticketdb"
	"failscope/internal/xrand"
)

// Output is the generated field data: the raw databases the collection
// pipeline mines (ticket store + monitoring DB) and the assembled dataset
// with ground truth.
type Output struct {
	Data    *model.Dataset
	Tickets *ticketdb.Store
	Monitor *monitordb.DB
}

// Generate runs the simulator and returns the field data. It is
// deterministic in cfg.Seed.
func Generate(cfg Config) (*Output, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := xrand.New(cfg.Seed)
	systems := buildTopology(cfg, root.Split(1))

	monitor := monitordb.New(cfg.MonitorEpoch, cfg.MonitorRetention)
	store := ticketdb.NewStore()
	renderer := ticketdb.NewRenderer(root.Split(2), cfg.VagueTextProb)

	// Calibrate failure rates, then generate the event log.
	rateRNG := root.Split(3)
	for _, ss := range systems {
		calibrateRates(cfg, ss, rateRNG.Split(uint64(ss.cfg.System)))
	}
	nextIncident := 1
	var allEvents []event
	eventRNG := root.Split(4)
	for _, ss := range systems {
		allEvents = append(allEvents, generateEvents(cfg, ss, eventRNG.Split(uint64(ss.cfg.System)), &nextIncident)...)
	}

	// Render crash tickets and the incident log.
	repairRNG := root.Split(5)
	incidents := make(map[int]*model.Incident)
	var tickets []model.Ticket
	for _, ev := range allEvents {
		// Repair effort follows the physical cause; the ticket label (and
		// its text quality) follows what the writer revealed.
		repair := cfg.Repair[ev.cause].Sample(repairRNG)
		if ev.st.m.Kind == model.VM {
			if scale, ok := cfg.VMRepairScale[ev.cause]; ok && scale > 0 {
				repair *= scale
			}
		}
		desc, res := renderer.Crash(ev.label, ev.st.m.ID)
		t := model.Ticket{
			ServerID:    ev.st.m.ID,
			IncidentID:  "I" + strconv.Itoa(ev.incident),
			System:      ev.st.m.System,
			Opened:      ev.t,
			Closed:      ev.t.Add(time.Duration(repair * float64(time.Hour))),
			Description: desc,
			Resolution:  res,
			IsCrash:     true,
			Class:       ev.label,
		}
		tickets = append(tickets, t)
		inc := incidents[ev.incident]
		if inc == nil {
			inc = &model.Incident{
				ID:    "I" + strconv.Itoa(ev.incident),
				Class: ev.label,
				Time:  ev.t,
			}
			incidents[ev.incident] = inc
		}
		inc.Servers = append(inc.Servers, ev.st.m.ID)
	}

	// Background (non-crash) ticket traffic.
	bgRNG := root.Split(6)
	for _, ss := range systems {
		tickets = append(tickets, backgroundTickets(cfg, ss, renderer, bgRNG.Split(uint64(ss.cfg.System)))...)
	}

	// Monitoring database: usage series, placements, power events.
	monRNG := root.Split(7)
	for _, ss := range systems {
		writeMonitoring(cfg, ss, monitor, monRNG.Split(uint64(ss.cfg.System)))
	}

	// Assemble and validate the dataset.
	var machines []*model.Machine
	for _, ss := range systems {
		for _, st := range ss.pms {
			machines = append(machines, st.m)
		}
		for _, b := range ss.boxes {
			machines = append(machines, b.m)
		}
		for _, st := range ss.vms {
			machines = append(machines, st.m)
		}
	}
	for i := range tickets {
		stored := store.Append(tickets[i])
		tickets[i].ID = stored.ID
	}
	var incidentList []model.Incident
	for i := 1; i < nextIncident; i++ {
		if inc := incidents[i]; inc != nil {
			incidentList = append(incidentList, *inc)
		}
	}
	data := model.NewDataset(cfg.Observation, machines, tickets, incidentList)
	if err := data.Validate(); err != nil {
		return nil, fmt.Errorf("dcsim: generated dataset invalid: %w", err)
	}
	return &Output{Data: data, Tickets: store, Monitor: monitor}, nil
}

// backgroundTickets generates the >94% of problem tickets that are not
// server failures.
func backgroundTickets(cfg Config, ss *systemState, renderer *ticketdb.Renderer, rng *xrand.RNG) []model.Ticket {
	n := int(float64(ss.cfg.AllTickets) * (1 - ss.cfg.CrashShare))
	machines := allMachines(ss)
	if len(machines) == 0 || n <= 0 {
		return nil
	}
	span := cfg.Observation.Duration()
	out := make([]model.Ticket, 0, n)
	for i := 0; i < n; i++ {
		st := machines[rng.Intn(len(machines))]
		opened := cfg.Observation.Start.Add(time.Duration(rng.Float64() * float64(span)))
		repair := cfg.NonCrashRepair.Sample(rng)
		desc, res := renderer.NonCrash(st.m.ID)
		out = append(out, model.Ticket{
			ServerID:    st.m.ID,
			System:      ss.cfg.System,
			Opened:      opened,
			Closed:      opened.Add(time.Duration(repair * float64(time.Hour))),
			Description: desc,
			Resolution:  res,
			IsCrash:     false,
		})
	}
	return out
}

// writeMonitoring populates the monitoring database for one system: a
// birth-marker sample at each machine's first observable moment, weekly
// usage averages across the observation year, monthly VM placements (with
// occasional migrations) and power events inside the fine window.
func writeMonitoring(cfg Config, ss *systemState, db *monitordb.DB, rng *xrand.RNG) {
	writeUsage := func(st *machineState) {
		first := st.m.Created
		if first.Before(cfg.MonitorEpoch) {
			first = cfg.MonitorEpoch
		}
		// Birth marker: the machine's first heartbeat in the database,
		// which is what the paper uses as the VM creation date.
		db.Add(st.m.ID, monitordb.MetricCPUUtil, monitordb.Sample{Time: first, Value: noisy(rng, st.cpuUtil, 2)})

		start := cfg.Observation.Start
		if st.m.Created.After(start) {
			start = st.m.Created
		}
		for t := start; t.Before(cfg.Observation.End); t = t.Add(7 * 24 * time.Hour) {
			db.Add(st.m.ID, monitordb.MetricCPUUtil, monitordb.Sample{Time: t, Value: noisy(rng, st.cpuUtil, 2)})
			db.Add(st.m.ID, monitordb.MetricMemUtil, monitordb.Sample{Time: t, Value: noisy(rng, st.memUtil, 2)})
			db.Add(st.m.ID, monitordb.MetricDiskUtil, monitordb.Sample{Time: t, Value: noisy(rng, st.diskUtil, 1.5)})
			db.Add(st.m.ID, monitordb.MetricNetKbps, monitordb.Sample{Time: t, Value: st.netKbps * (0.85 + 0.3*rng.Float64())})
		}
	}
	for _, st := range ss.pms {
		writeUsage(st)
	}
	for _, st := range ss.vms {
		writeUsage(st)
	}

	// Monthly placements over the observation year, with rare migrations.
	for _, b := range ss.boxes {
		for _, st := range b.vms {
			cur := b
			for t := cfg.Observation.Start; t.Before(cfg.Observation.End); t = t.AddDate(0, 1, 0) {
				if st.m.Created.After(t) {
					continue
				}
				if rng.Bool(cfg.Spatial.MigrationProb) && len(ss.boxes) > 1 {
					cur = ss.boxes[rng.Intn(len(ss.boxes))]
				}
				db.SetPlacement(st.m.ID, cur.m.ID, t)
			}
		}
	}

	// Power events (on/off) inside the fine 15-minute window only — the
	// paper has two months of fine-grained data.
	fine := cfg.FineWindow
	months := fine.Duration().Hours() / (24 * 30)
	for _, st := range ss.vms {
		if st.onOffPerMonth <= 0 {
			continue
		}
		cycles := rng.Poisson(st.onOffPerMonth * months)
		for i := 0; i < cycles; i++ {
			off := fine.Start.Add(time.Duration(rng.Float64() * float64(fine.Duration())))
			downFor := time.Duration((0.5 + 6*rng.Float64()) * float64(time.Hour))
			on := off.Add(downFor)
			db.AddPowerEvent(st.m.ID, monitordb.PowerEvent{Time: off, On: false})
			if on.Before(fine.End) {
				db.AddPowerEvent(st.m.ID, monitordb.PowerEvent{Time: on, On: true})
			}
		}
	}
}

func noisy(rng *xrand.RNG, v, sd float64) float64 {
	return clamp(v+sd*rng.Norm(), 0, 100)
}
