package dcsim

import (
	"math"
	"testing"

	"failscope/internal/model"
	"failscope/internal/xrand"
)

func TestRepairModelValidate(t *testing.T) {
	good := RepairModel{MeanHours: 10, MedianHours: 2, SigmaCap: 1.5, EscalationProb: 0.2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []RepairModel{
		{MeanHours: 1, MedianHours: 2},                     // mean < median
		{MeanHours: 10, MedianHours: 0},                    // zero median
		{MeanHours: 10, MedianHours: 2, EscalationProb: 1}, // prob out of range
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", m)
		}
	}
}

func TestRepairModelPreservesMean(t *testing.T) {
	m := repairModel(80.1, 8.28) // the Table IV hardware calibration
	if math.Abs(m.Mean()-80.1) > 0.01*80.1 {
		t.Fatalf("theoretical mean %v, want 80.1", m.Mean())
	}
	r := xrand.New(11)
	const n = 400000
	var sum float64
	var below float64
	for i := 0; i < n; i++ {
		v := m.Sample(r)
		sum += v
		if v < m.MedianHours+m.TriageHours {
			below++
		}
	}
	mean := sum / n
	// The triage latency adds ~TriageHours on top of the calibrated mean.
	want := 80.1 + 0.4 // triage 0.35 with e^{0.125} jitter mean
	if math.Abs(mean-want) > 0.08*want {
		t.Errorf("sample mean %.1f, want ≈%.1f", mean, want)
	}
	// Median should sit near the calibrated median (plus triage).
	if frac := below / n; frac < 0.40 || frac > 0.65 {
		t.Errorf("fraction below calibrated median+triage = %.3f, want ≈0.5", frac)
	}
}

func TestRepairModelUncappedIsPlainLogNormal(t *testing.T) {
	m := RepairModel{MeanHours: 30, MedianHours: 22.37} // software: sigma below any cap
	mu, sigma, escalation := m.params()
	if escalation != 1 {
		t.Fatalf("escalation %v for uncapped model", escalation)
	}
	if math.Abs(mu-math.Log(22.37)) > 1e-12 {
		t.Errorf("mu %v", mu)
	}
	wantSigma := math.Sqrt(2 * math.Log(30/22.37))
	if math.Abs(sigma-wantSigma) > 1e-12 {
		t.Errorf("sigma %v, want %v", sigma, wantSigma)
	}
}

func TestBoundedParetoBounds(t *testing.T) {
	r := xrand.New(3)
	for i := 0; i < 20000; i++ {
		n := boundedPareto(r, 1.05, 20)
		if n < 1 || n > 20 {
			t.Fatalf("boundedPareto out of [1,20]: %d", n)
		}
	}
}

func TestDrawCauseRespectsMix(t *testing.T) {
	cfg := PaperConfig()
	sc := cfg.Systems[4] // Sys V: power-heavy
	st := &machineState{m: &model.Machine{Kind: model.PM}, lemon: 1}
	r := xrand.New(5)
	counts := make(map[model.FailureClass]int)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[drawCause(cfg, sc, st, r)]++
	}
	if counts[model.ClassOther] != 0 {
		t.Fatalf("drawCause returned ClassOther %d times", counts[model.ClassOther])
	}
	// Sys V named mix: HW 2, Net 2, SW 12, Power 29, Reboot 26 (sum 71).
	wantPower := 29.0 / 71
	gotPower := float64(counts[model.ClassPower]) / n
	if math.Abs(gotPower-wantPower) > 0.02 {
		t.Errorf("power share %.3f, want %.3f", gotPower, wantPower)
	}
}

func TestDrawCauseVMBias(t *testing.T) {
	cfg := PaperConfig()
	sc := cfg.Systems[2] // Sys III
	r := xrand.New(6)
	rebootShare := func(kind model.MachineKind) float64 {
		st := &machineState{m: &model.Machine{Kind: kind}, lemon: 1}
		count := 0
		const n = 30000
		for i := 0; i < n; i++ {
			if drawCause(cfg, sc, st, r) == model.ClassReboot {
				count++
			}
		}
		return float64(count) / n
	}
	pm, vm := rebootShare(model.PM), rebootShare(model.VM)
	if vm < 2*pm {
		t.Fatalf("VM reboot share %.3f not well above PM %.3f", vm, pm)
	}
}

func TestDrawCauseLemonBias(t *testing.T) {
	cfg := PaperConfig()
	sc := cfg.Systems[0]
	r := xrand.New(7)
	swShare := func(lemon float64) float64 {
		st := &machineState{m: &model.Machine{Kind: model.PM}, lemon: lemon}
		count := 0
		const n = 30000
		for i := 0; i < n; i++ {
			if drawCause(cfg, sc, st, r) == model.ClassSoftware {
				count++
			}
		}
		return float64(count) / n
	}
	if chronic, healthy := swShare(3.0), swShare(0.5); chronic < 1.5*healthy {
		t.Fatalf("chronic machines' software share %.3f not above healthy %.3f", chronic, healthy)
	}
}

func TestLabelForShare(t *testing.T) {
	cfg := PaperConfig()
	sc := cfg.Systems[2] // Sys III: other = 68%
	r := xrand.New(8)
	other := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if labelFor(model.ClassSoftware, sc, r) == model.ClassOther {
			other++
		}
	}
	got := float64(other) / n
	if math.Abs(got-0.68) > 0.02 {
		t.Fatalf("other-label share %.3f, want 0.68", got)
	}
}

func TestInfrastructureCause(t *testing.T) {
	want := map[model.FailureClass]bool{
		model.ClassPower:    true,
		model.ClassHardware: true,
		model.ClassNetwork:  true,
		model.ClassSoftware: false,
		model.ClassReboot:   false,
		model.ClassOther:    false,
	}
	for class, expect := range want {
		if infrastructureCause(class) != expect {
			t.Errorf("infrastructureCause(%v) != %v", class, expect)
		}
	}
}

func TestConsolidationLevelMix(t *testing.T) {
	cfg := tinyConfig()
	cfg.Systems[0].VMs = 2000
	out, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Count VMs per box; the share of VMs on big boxes (>=16) should
	// dominate, per the §VI.A mix.
	perBox := make(map[model.MachineID]int)
	for _, m := range out.Data.MachinesOf(model.VM, model.SysI) {
		perBox[m.HostID]++
	}
	big := 0
	total := 0
	for _, n := range perBox {
		total += n
		if n >= 12 {
			big += n
		}
	}
	share := float64(big) / float64(total)
	if share < 0.40 {
		t.Fatalf("share of VMs on dense boxes %.2f, want ≳0.6", share)
	}
}

func TestUsageProfilesInRange(t *testing.T) {
	cfg := tinyConfig()
	systems := buildTopology(cfg, nil)
	for _, ss := range systems {
		for _, st := range append(append([]*machineState{}, ss.pms...), ss.vms...) {
			if st.cpuUtil <= 0 || st.cpuUtil > 100 {
				t.Fatalf("cpuUtil %v", st.cpuUtil)
			}
			if st.memUtil <= 0 || st.memUtil > 100 {
				t.Fatalf("memUtil %v", st.memUtil)
			}
			if st.netKbps < 2 || st.netKbps > 8192 {
				t.Fatalf("netKbps %v", st.netKbps)
			}
		}
	}
}

func TestPMMemUtilSkewsHigh(t *testing.T) {
	// §V.B: the number of PMs increases with memory utilization; the
	// number of VMs decreases.
	cfg := tinyConfig()
	systems := buildTopology(cfg, nil)
	var pmHigh, pmN, vmLow, vmN int
	for _, ss := range systems {
		for _, st := range ss.pms {
			pmN++
			if st.memUtil > 50 {
				pmHigh++
			}
		}
		for _, st := range ss.vms {
			vmN++
			if st.memUtil <= 20 {
				vmLow++
			}
		}
	}
	if frac := float64(pmHigh) / float64(pmN); frac < 0.5 {
		t.Errorf("PM memory utilization >50%% share %.2f, want majority", frac)
	}
	if frac := float64(vmLow) / float64(vmN); frac < 0.5 {
		t.Errorf("VM memory utilization <=20%% share %.2f, want majority", frac)
	}
}

func TestAppGroupsKindHomogeneous(t *testing.T) {
	cfg := tinyConfig()
	systems := buildTopology(cfg, nil)
	for _, ss := range systems {
		kinds := make(map[int]model.MachineKind)
		for _, st := range append(append([]*machineState{}, ss.pms...), ss.vms...) {
			if k, ok := kinds[st.appGroup]; ok && k != st.m.Kind {
				t.Fatalf("app group %d mixes %v and %v", st.appGroup, k, st.m.Kind)
			}
			kinds[st.appGroup] = st.m.Kind
		}
	}
}

func TestVictimEventsFilters(t *testing.T) {
	cfg := tinyConfig()
	cfg.Spatial.PMVictimSkipProb = 1.0 // PMs always escape infrastructure blasts
	rng := xrand.New(11)

	obsStart := cfg.Observation.Start
	mkState := func(id string, kind model.MachineKind, rate float64) *machineState {
		return &machineState{
			m:          &model.Machine{ID: model.MachineID(id), Kind: kind, Created: obsStart.AddDate(-1, 0, 0)},
			weeklyRate: rate,
		}
	}
	trigger := event{
		st:    mkState("trigger", model.VM, 1),
		t:     obsStart.AddDate(0, 6, 0),
		cause: model.ClassPower,
		label: model.ClassPower,
	}
	pool := []*machineState{
		mkState("pm", model.PM, 1),       // skipped: PM + infrastructure + skip prob 1
		mkState("deadrate", model.VM, 0), // skipped: zero rate
		mkState("vm-ok", model.VM, 1),    // eligible
		mkState("unborn", model.VM, 1),   // skipped: created after the trigger
	}
	pool[3].m.Created = trigger.t.AddDate(0, 1, 0)

	victims := victimEvents(cfg, trigger, pool, 10, rng)
	if len(victims) != 1 || victims[0].st.m.ID != "vm-ok" {
		ids := make([]model.MachineID, 0, len(victims))
		for _, v := range victims {
			ids = append(ids, v.st.m.ID)
		}
		t.Fatalf("victims = %v, want [vm-ok]", ids)
	}
	if victims[0].cause != trigger.cause || victims[0].label != trigger.label {
		t.Fatal("victim did not inherit the trigger's cause/label")
	}
}

func TestMassEventsDisabled(t *testing.T) {
	cfg := tinyConfig() // MassEventsPerYear = 0
	rng := xrand.New(12)
	systems := buildTopology(cfg, nil)
	calibrateRates(cfg, systems[0])
	if got := massEvents(cfg, systems[0], rng); got != nil {
		t.Fatalf("mass events generated despite zero rate: %d", len(got))
	}
}

func TestCalibrationHitsKindTargets(t *testing.T) {
	// With spatial coupling and recurrence disabled, the generated event
	// counts should match the configured targets closely.
	cfg := tinyConfig()
	cfg.Spatial.Enabled = false
	cfg.Recurrence.PMProb = 0
	cfg.Recurrence.VMProb = 0
	sums := map[model.MachineKind]float64{}
	const rounds = 5
	for seed := uint64(0); seed < rounds; seed++ {
		cfg.Seed = 100 + seed
		out, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, tk := range out.Data.Tickets {
			if !tk.IsCrash || tk.System != model.SysI {
				continue
			}
			if m := out.Data.Machine(tk.ServerID); m != nil {
				sums[m.Kind]++
			}
		}
	}
	sc := cfg.Systems[0]
	wantPM := sc.crashTickets() * sc.PMCrashShare
	wantVM := sc.crashTickets() * (1 - sc.PMCrashShare)
	gotPM := sums[model.PM] / rounds
	gotVM := sums[model.VM] / rounds
	if math.Abs(gotPM-wantPM) > 0.2*wantPM {
		t.Errorf("PM crashes %.1f, want ≈%.1f", gotPM, wantPM)
	}
	if math.Abs(gotVM-wantVM) > 0.25*wantVM {
		t.Errorf("VM crashes %.1f, want ≈%.1f", gotVM, wantVM)
	}
}
