package dcsim

import (
	"fmt"
	"math"

	"failscope/internal/xrand"
)

// RepairModel generates ticket repair durations calibrated to a published
// (mean, median) pair. A raw LogNormal through such a pair can need
// sigma > 2, which puts implausible mass at sub-minute repairs (no human
// closes a power ticket in 40 seconds) and drags the aggregate away from
// the lognormal shape the paper reports. The model therefore caps the
// body's sigma and recovers the published mean with an occasional
// escalated repair (vendor dispatch, part on order) instead:
//
//	base        ~ LogNormal(ln median, min(sigma_implied, SigmaCap))
//	escalation  : with probability EscalationProb, multiply by the factor
//	              that restores the target mean (itself log-jittered).
type RepairModel struct {
	MeanHours   float64
	MedianHours float64
	// SigmaCap bounds the body's log-space standard deviation; 0 means
	// uncapped (pure LogNormal through mean/median).
	SigmaCap float64
	// EscalationProb is the chance a repair escalates; only used when the
	// cap binds.
	EscalationProb float64
	// TriageHours is the median of a small additive triage/queueing
	// latency (every ticket takes a human a few minutes to acknowledge
	// and close); 0 disables it.
	TriageHours float64
}

// Validate checks the calibration pair.
func (m RepairModel) Validate() error {
	if m.MedianHours <= 0 || m.MeanHours < m.MedianHours {
		return fmt.Errorf("dcsim: repair model needs mean >= median > 0, got %v/%v", m.MeanHours, m.MedianHours)
	}
	if m.EscalationProb < 0 || m.EscalationProb >= 1 {
		return fmt.Errorf("dcsim: escalation probability %v outside [0,1)", m.EscalationProb)
	}
	return nil
}

// params returns the body's lognormal parameters and the escalation factor.
func (m RepairModel) params() (mu, sigma, escalation float64) {
	mu = math.Log(m.MedianHours)
	sigmaImplied := 0.0
	if m.MeanHours > m.MedianHours {
		sigmaImplied = math.Sqrt(2 * math.Log(m.MeanHours/m.MedianHours))
	}
	sigma = sigmaImplied
	if m.SigmaCap > 0 && sigma > m.SigmaCap {
		sigma = m.SigmaCap
	}
	escalation = 1
	if sigma < sigmaImplied && m.EscalationProb > 0 {
		meanBase := m.MedianHours * math.Exp(sigma*sigma/2)
		e := (m.MeanHours/meanBase - (1 - m.EscalationProb)) / m.EscalationProb
		if e > 1 {
			escalation = e
		}
	}
	return mu, sigma, escalation
}

// Mean returns the model's theoretical mean repair time in hours.
func (m RepairModel) Mean() float64 {
	mu, sigma, escalation := m.params()
	meanBase := math.Exp(mu + sigma*sigma/2)
	if escalation == 1 {
		return meanBase
	}
	return meanBase * ((1 - m.EscalationProb) + m.EscalationProb*escalation)
}

// Sample draws one repair duration in hours.
func (m RepairModel) Sample(r *xrand.RNG) float64 {
	mu, sigma, escalation := m.params()
	v := r.LogNormal(mu, sigma)
	if escalation > 1 && r.Bool(m.EscalationProb) {
		// Log-jitter the escalation factor, keeping its mean: the jitter
		// term e^{N(-s²/2, s)} has unit mean.
		const s = 0.4
		v *= escalation * math.Exp(-s*s/2+s*r.Norm())
	}
	if m.TriageHours > 0 {
		v += m.TriageHours * math.Exp(0.5*r.Norm())
	}
	return v
}
