// Package ingest implements the data-collection process of §III.A: mining
// crash tickets out of the full problem-ticket population with k-means
// text clustering, classifying them into the six resolution classes,
// extracting the affected server ids and joining them against the
// monitoring database for the measurements of interest.
package ingest

import (
	"fmt"
	"sort"
	"time"

	"failscope/internal/model"
	"failscope/internal/monitordb"
	"failscope/internal/obs"
	"failscope/internal/par"
	"failscope/internal/textmine"
	"failscope/internal/ticketdb"
	"failscope/internal/xrand"
)

// Options configures the pipeline.
type Options struct {
	Seed uint64

	// Observation restricts analysis to this window; FineWindow is where
	// 15-minute data exists for on/off screening.
	Observation model.Window
	FineWindow  model.Window

	// TrainFraction of tickets (capped at MaxTrainDocs) provides the
	// manually labeled examples the cluster labeling consults.
	TrainFraction float64
	MaxTrainDocs  int

	// Classifier tuning; zero values take textmine defaults.
	Clusters int
	MaxIter  int

	// SkipClassification skips the k-means step (for fast analyses that
	// only need the joined dataset).
	SkipClassification bool

	// UsePredictedLabels replaces every ticket's ground-truth crash flag
	// and class with the classifier's prediction before the analysis —
	// the end-to-end robustness experiment: does the ~10% classification
	// error change the study's findings? The paper instead manually
	// verified all tickets (the default here too).
	UsePredictedLabels bool

	// Parallelism is the worker count for classifier training, test-set
	// prediction and the monitoring join: 0 means GOMAXPROCS, 1 the
	// sequential reference. The collection is identical at every setting.
	Parallelism int

	// Observer, when non-nil, records pipeline spans (window filter, the
	// two classifier training stages, prediction, the monitoring join) and
	// ingest metrics (train/test sizes, join hit rate). It never touches
	// the RNG: the collection is identical with and without it.
	Observer *obs.Observer
}

// DefaultOptions returns the pipeline defaults.
func DefaultOptions(win, fine model.Window) Options {
	return Options{
		Seed:          1,
		Observation:   win,
		FineWindow:    fine,
		TrainFraction: 0.30,
		MaxTrainDocs:  12000,
	}
}

// ClassifierReport is the §III.A classification outcome.
type ClassifierReport struct {
	TrainDocs int
	TestDocs  int
	// Accuracy is over all test tickets (background + crash).
	Accuracy float64
	// CrashClassAccuracy is the fraction of true crash tickets assigned
	// their correct failure class — the metric comparable to the paper's
	// 87% ("after manually checking the classification of all tickets").
	CrashClassAccuracy float64
	// CrashRecall/CrashPrecision score the binary crash-vs-background
	// decision that gates the whole study.
	CrashRecall    float64
	CrashPrecision float64
	Confusion      *textmine.ConfusionMatrix
	// Stage1Purity/Stage2Purity are the k-means cluster purities of the
	// crash-identification and class-assignment stages — how cleanly the
	// text clusters align with the ground-truth labels before any
	// prediction happens.
	Stage1Purity float64
	Stage2Purity float64
}

// Collection is the assembled analysis input: the dataset restricted to
// the observation window plus per-machine attributes and the
// classification report.
type Collection struct {
	Data       *model.Dataset
	Attrs      map[model.MachineID]model.Attributes
	Classifier *ClassifierReport
}

// labelOf maps a ticket to its classification label: 0 for background
// (non-crash) tickets, otherwise the failure class.
func labelOf(t model.Ticket) int {
	if !t.IsCrash {
		return 0
	}
	return int(t.Class)
}

// Collect runs the full pipeline over the raw field databases.
func Collect(data *model.Dataset, tickets *ticketdb.Store, monitor *monitordb.DB, opts Options) (*Collection, error) {
	o := opts.Observer
	if opts.Observation.Duration() <= 0 {
		opts.Observation = data.Observation
	}
	winSpan := o.Start("window-filter")
	inWindow := tickets.InWindow(opts.Observation)
	winSpan.AddItems(len(inWindow))
	winSpan.End()
	o.Metrics().Add("ingest.tickets_in_window", int64(len(inWindow)))
	if dropped := tickets.Len() - len(inWindow); dropped > 0 {
		o.Metrics().Add("ingest.tickets_window_dropped", int64(dropped))
		o.Log().Info("window filter dropped tickets outside the observation window",
			"kept", len(inWindow), "dropped", dropped)
	}

	col := &Collection{
		Data: model.NewDataset(opts.Observation, data.Machines, inWindow, data.Incidents),
	}

	if !opts.SkipClassification {
		clsSpan := o.Start("classify")
		report, preds, err := classify(inWindow, opts, o.Under(clsSpan))
		clsSpan.End()
		if err != nil {
			return nil, fmt.Errorf("ingest: classify tickets: %w", err)
		}
		col.Classifier = report
		if opts.UsePredictedLabels {
			relabeled := make([]model.Ticket, len(inWindow))
			copy(relabeled, inWindow)
			for i := range relabeled {
				if preds[i] == 0 {
					relabeled[i].IsCrash = false
					relabeled[i].Class = 0
				} else {
					relabeled[i].IsCrash = true
					relabeled[i].Class = model.FailureClass(preds[i])
				}
			}
			col.Data = model.NewDataset(opts.Observation, data.Machines, relabeled, data.Incidents)
		}
	}

	col.Attrs = joinAttributes(data, monitor, opts)
	return col, nil
}

// split is the outcome of the stratified train/test partition: the
// training documents both stages learned from, the held-out test set, and
// the per-input-ticket prediction slots (training tickets pre-filled with
// their ground truth).
type split struct {
	trainTexts, testTexts   []string
	trainLabels, testLabels []int
	testIdx                 []int
	preds                   []int
}

// trainStages runs the stratified split and both k-means training stages.
// This is the single place the classification RNG is consumed — classify
// (the batch path) and TrainOnlineClassifier (the streaming path) both
// call it, so the draw sequence, and therefore every canonical seed's
// output, is identical between them.
func trainStages(tickets []model.Ticket, opts Options, o *obs.Observer) (stage1, stage2 *textmine.Classifier, sp *split, err error) {
	if len(tickets) == 0 {
		return nil, nil, nil, fmt.Errorf("no tickets to classify")
	}
	rng := xrand.New(opts.Seed)

	frac := opts.TrainFraction
	if frac <= 0 || frac >= 1 {
		frac = 0.3
	}
	maxTrain := opts.MaxTrainDocs
	if maxTrain <= 0 {
		maxTrain = 12000
	}

	// Stratified labeling: crash tickets are ~2% of the stream, so a
	// uniform manual-labeling sample would teach the clusters nothing
	// about failures. The support staff labeling incident tickets
	// naturally over-samples them, so the training set takes crash
	// tickets at full rate and background tickets at frac, capped so
	// background cannot crowd out the crash examples.
	var trainTexts, testTexts []string
	var trainLabels, testLabels []int
	var testIdx []int
	preds := make([]int, len(tickets))
	crashBudget := maxTrain / 2
	bgBudget := maxTrain - crashBudget
	crashTaken, bgTaken := 0, 0
	for ti, t := range tickets {
		text := t.Description + " " + t.Resolution
		take := false
		if t.IsCrash {
			if crashTaken < crashBudget && rng.Bool(0.9) {
				take = true
				crashTaken++
			}
		} else if rng.Bool(frac) && bgTaken < bgBudget {
			take = true
			bgTaken++
		}
		if take {
			trainTexts = append(trainTexts, text)
			trainLabels = append(trainLabels, labelOf(t))
			preds[ti] = labelOf(t) // hand-labeled tickets keep their truth
		} else {
			testTexts = append(testTexts, text)
			testLabels = append(testLabels, labelOf(t))
			testIdx = append(testIdx, ti)
		}
	}
	if len(trainTexts) == 0 || len(testTexts) == 0 {
		return nil, nil, nil, fmt.Errorf("degenerate train/test split (%d/%d)", len(trainTexts), len(testTexts))
	}

	// Two-stage classification mirroring §III.A: first identify crash
	// tickets among all tickets, then classify the crash tickets into the
	// six finer-grained classes based on their resolutions.
	topts := textmine.DefaultTrainOptions()
	topts.Parallelism = opts.Parallelism
	if opts.Clusters > 0 {
		topts.Clusters = opts.Clusters
	}
	if opts.MaxIter > 0 {
		topts.MaxIter = opts.MaxIter
	}
	binLabels := make([]int, len(trainLabels))
	var crashTexts []string
	var crashLabels []int
	for i, l := range trainLabels {
		if l > 0 {
			binLabels[i] = 1
			crashTexts = append(crashTexts, trainTexts[i])
			crashLabels = append(crashLabels, l)
		}
	}
	m := o.Metrics()
	m.Add("ingest.train_docs", int64(len(trainTexts)))
	m.Add("ingest.test_docs", int64(len(testTexts)))

	s1Span := o.Start("train-stage1")
	topts.Observer = o.Under(s1Span)
	stage1, err = textmine.Train(trainTexts, binLabels, topts, rng)
	s1Span.AddItems(len(trainTexts))
	s1Span.End()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("stage 1 (crash identification): %w", err)
	}
	fineOpts := topts
	fineOpts.Clusters = 24
	s2Span := o.Start("train-stage2")
	fineOpts.Observer = o.Under(s2Span)
	stage2, err = textmine.Train(crashTexts, crashLabels, fineOpts, rng)
	s2Span.AddItems(len(crashTexts))
	s2Span.End()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("stage 2 (crash classification): %w", err)
	}
	return stage1, stage2, &split{
		trainTexts: trainTexts, testTexts: testTexts,
		trainLabels: trainLabels, testLabels: testLabels,
		testIdx: testIdx, preds: preds,
	}, nil
}

// TrainOnlineClassifier trains the two-stage model on a labeled ticket
// population and packages it as a frozen textmine.OnlineClassifier for
// streaming prediction. The training procedure — stratified split, RNG
// draws, both k-means stages — is byte-for-byte the batch classify path,
// so the same seed yields the same model the batch study scored.
func TrainOnlineClassifier(tickets []model.Ticket, opts Options) (*textmine.OnlineClassifier, error) {
	stage1, stage2, _, err := trainStages(tickets, opts, opts.Observer)
	if err != nil {
		return nil, fmt.Errorf("ingest: train online classifier: %w", err)
	}
	return textmine.NewOnlineClassifier(stage1, stage2), nil
}

// classify reproduces the k-means classification step and scores it
// against ground truth (the paper's "manual checking of all tickets").
// It returns the report and the predicted label for every input ticket
// (training tickets keep their manually assigned ground truth, exactly as
// the paper's hand-labeled subset would).
func classify(tickets []model.Ticket, opts Options, o *obs.Observer) (*ClassifierReport, []int, error) {
	stage1, stage2, sp, err := trainStages(tickets, opts, o)
	if err != nil {
		return nil, nil, err
	}
	trainTexts, testTexts := sp.trainTexts, sp.testTexts
	testLabels, testIdx, preds := sp.testLabels, sp.testIdx, sp.preds

	// Predicting the test set is embarrassingly parallel: both stages only
	// read their classifier. Each block reuses one scratch (token and
	// vector buffers) across its tickets instead of reallocating per call.
	// The confusion matrix is tabulated afterwards in test order so its
	// contents don't depend on worker scheduling.
	predSpan := o.Start("predict")
	testPreds := make([]int, len(testTexts))
	online := textmine.NewOnlineClassifier(stage1, stage2)
	nb := par.Blocks(len(testTexts))
	blockDist := make([]int64, nb)
	blockPruned := make([]int64, nb)
	predSpan.AddPool(par.ForEachBlock(opts.Parallelism, len(testTexts), func(b, lo, hi int) {
		var scratch textmine.PredictScratch
		for i := lo; i < hi; i++ {
			testPreds[i] = online.PredictWith(&scratch, testTexts[i])
		}
		blockDist[b] = scratch.Distances
		blockPruned[b] = scratch.Pruned
	}))
	var nDist, nPruned int64
	for b := 0; b < nb; b++ {
		nDist += blockDist[b]
		nPruned += blockPruned[b]
	}
	m := o.Metrics()
	m.Add("textmine.predict_distances", nDist)
	m.Add("textmine.predict_distances_pruned", nPruned)
	predSpan.End()

	cm := &textmine.ConfusionMatrix{Counts: make(map[[2]int]int)}
	seen := make(map[int]bool)
	for i := range testTexts {
		pred := testPreds[i]
		preds[testIdx[i]] = pred
		truth := testLabels[i]
		cm.Counts[[2]int{truth, pred}]++
		cm.Total++
		if pred == truth {
			cm.Hits++
		}
		for _, l := range []int{truth, pred} {
			if !seen[l] {
				seen[l] = true
				cm.Labels = append(cm.Labels, l)
			}
		}
	}
	sort.Ints(cm.Labels)

	// Binary crash-vs-background scoring: collapse labels to crash?=label>0.
	var crashTotal, crashHit, predCrash, predCrashHit, crashClassHit int
	for key, n := range cm.Counts {
		truthCrash := key[0] > 0
		predIsCrash := key[1] > 0
		if truthCrash {
			crashTotal += n
			if predIsCrash {
				crashHit += n
			}
			if key[0] == key[1] {
				crashClassHit += n
			}
		}
		if predIsCrash {
			predCrash += n
			if truthCrash {
				predCrashHit += n
			}
		}
	}
	report := &ClassifierReport{
		TrainDocs:    len(trainTexts),
		TestDocs:     len(testTexts),
		Accuracy:     cm.Accuracy(),
		Confusion:    cm,
		Stage1Purity: stage1.Purity(),
		Stage2Purity: stage2.Purity(),
	}
	if crashTotal > 0 {
		report.CrashRecall = float64(crashHit) / float64(crashTotal)
		report.CrashClassAccuracy = float64(crashClassHit) / float64(crashTotal)
	}
	if predCrash > 0 {
		report.CrashPrecision = float64(predCrashHit) / float64(predCrash)
	}
	o.Log().Info("ticket classification scored against ground truth",
		"accuracy", report.Accuracy, "crash_class_accuracy", report.CrashClassAccuracy,
		"crash_recall", report.CrashRecall, "crash_precision", report.CrashPrecision,
		"stage1_purity", report.Stage1Purity, "stage2_purity", report.Stage2Purity)
	return report, preds, nil
}

// joinAttributes pulls the measurements of interest for every machine from
// the monitoring database. Machines are joined by independent workers into
// an index-addressed slice (all monitordb reads take the read lock), and
// the map is assembled afterwards, so the result is worker-count
// independent.
func joinAttributes(data *model.Dataset, monitor *monitordb.DB, opts Options) map[model.MachineID]model.Attributes {
	o := opts.Observer
	win := opts.Observation
	fineMonths := opts.FineWindow.Duration().Hours() / (24 * 30)
	joined := make([]model.Attributes, len(data.Machines))
	hits := o.Metrics().Counter("ingest.join_hits")
	misses := o.Metrics().Counter("ingest.join_misses")
	joinSpan := o.Start("monitoring-join")
	joinSpan.AddPool(par.ForEach(opts.Parallelism, len(data.Machines), func(i int) {
		m := data.Machines[i]
		var a model.Attributes

		cpu, okCPU := monitor.Average(m.ID, monitordb.MetricCPUUtil, win)
		mem, okMem := monitor.Average(m.ID, monitordb.MetricMemUtil, win)
		dsk, _ := monitor.Average(m.ID, monitordb.MetricDiskUtil, win)
		net, _ := monitor.Average(m.ID, monitordb.MetricNetKbps, win)
		if okCPU && okMem {
			a.CPUUtil, a.MemUtil, a.DiskUtil, a.NetKbps = cpu, mem, dsk, net
			a.HasUsage = true
			hits.Inc()
		} else {
			misses.Inc()
		}

		if m.Kind == model.VM {
			if lvl, ok := monitor.AvgConsolidation(m.ID, win); ok {
				a.AvgConsolidation = lvl
				a.HasConsolidation = true
			}
			if fineMonths > 0 {
				a.OnOffPerMonth = float64(monitor.OnOffCount(m.ID, opts.FineWindow)) / fineMonths
				a.HasOnOff = true
			}
		}

		if first, ok := monitor.FirstSeen(m.ID); ok {
			a.Created = first
			// The paper filters out VMs whose creation date coincides with
			// the earliest observable data — they may predate the records.
			a.AgeKnown = first.After(monitor.Epoch().Add(24 * time.Hour))
		}
		joined[i] = a
	}))
	joinSpan.End()
	if total := hits.Value() + misses.Value(); total > 0 {
		o.Log().Info("monitoring join finished",
			"machines", total, "hits", hits.Value(), "misses", misses.Value(),
			"coverage", float64(hits.Value())/float64(total))
	}
	attrs := make(map[model.MachineID]model.Attributes, len(data.Machines))
	for i, m := range data.Machines {
		attrs[m.ID] = joined[i]
	}
	return attrs
}
