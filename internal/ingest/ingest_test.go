package ingest

import (
	"testing"
	"time"

	"failscope/internal/dcsim"
	"failscope/internal/model"
	"failscope/internal/monitordb"
	"failscope/internal/ticketdb"
)

// genField generates a small field dataset once per test binary.
func genField(t *testing.T) (*dcsim.Output, dcsim.Config) {
	t.Helper()
	cfg := dcsim.SmallConfig()
	out, err := dcsim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return out, cfg
}

func TestCollectJoinsAttributes(t *testing.T) {
	out, cfg := genField(t)
	opts := DefaultOptions(cfg.Observation, cfg.FineWindow)
	opts.SkipClassification = true
	col, err := Collect(out.Data, out.Tickets, out.Monitor, opts)
	if err != nil {
		t.Fatal(err)
	}
	if col.Classifier != nil {
		t.Fatal("classifier report present despite SkipClassification")
	}
	var usage, consol, onoff, ageKnown int
	for _, m := range col.Data.Machines {
		a := col.Attrs[m.ID]
		if m.Kind == model.Box {
			continue
		}
		if a.HasUsage {
			usage++
			if a.CPUUtil <= 0 || a.CPUUtil > 100 || a.MemUtil <= 0 || a.MemUtil > 100 {
				t.Fatalf("machine %s has out-of-range usage: %+v", m.ID, a)
			}
		}
		if m.Kind == model.VM {
			if a.HasConsolidation {
				consol++
				if a.AvgConsolidation < 1 {
					t.Fatalf("VM %s consolidation %v < 1", m.ID, a.AvgConsolidation)
				}
			}
			if a.HasOnOff {
				onoff++
			}
			if a.AgeKnown {
				ageKnown++
			}
		}
	}
	pmvm := col.Data.CountMachines(model.PM, 0) + col.Data.CountMachines(model.VM, 0)
	if usage < pmvm*9/10 {
		t.Errorf("usage coverage %d of %d machines", usage, pmvm)
	}
	vms := col.Data.CountMachines(model.VM, 0)
	if consol < vms*8/10 {
		t.Errorf("consolidation coverage %d of %d VMs", consol, vms)
	}
	if onoff != vms {
		t.Errorf("on/off coverage %d of %d VMs", onoff, vms)
	}
	// Roughly 75% of VMs should pass the age filter (§III.B).
	frac := float64(ageKnown) / float64(vms)
	if frac < 0.5 || frac > 0.95 {
		t.Errorf("age-known fraction %.2f, want ≈0.75", frac)
	}
}

func TestCollectRestrictsToWindow(t *testing.T) {
	out, cfg := genField(t)
	opts := DefaultOptions(cfg.Observation, cfg.FineWindow)
	opts.SkipClassification = true
	// Narrow window: only the first quarter.
	opts.Observation = model.Window{
		Start: cfg.Observation.Start,
		End:   cfg.Observation.Start.Add(90 * 24 * time.Hour),
	}
	col, err := Collect(out.Data, out.Tickets, out.Monitor, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range col.Data.Tickets {
		if !opts.Observation.Contains(tk.Opened) {
			t.Fatalf("ticket %s outside the requested window", tk.ID)
		}
	}
	if len(col.Data.Tickets) >= len(out.Data.Tickets) {
		t.Fatal("window restriction did not reduce the ticket count")
	}
}

func TestClassificationQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("classification is expensive")
	}
	out, cfg := genField(t)
	opts := DefaultOptions(cfg.Observation, cfg.FineWindow)
	col, err := Collect(out.Data, out.Tickets, out.Monitor, opts)
	if err != nil {
		t.Fatal(err)
	}
	c := col.Classifier
	if c == nil {
		t.Fatal("no classifier report")
	}
	if c.Accuracy < 0.9 {
		t.Errorf("overall accuracy %.3f", c.Accuracy)
	}
	// The paper reports 87%; the synthetic corpus should land in a broad
	// band around that.
	if c.CrashClassAccuracy < 0.70 {
		t.Errorf("crash-class accuracy %.3f", c.CrashClassAccuracy)
	}
	if c.CrashRecall < 0.9 || c.CrashPrecision < 0.9 {
		t.Errorf("crash recall/precision %.3f/%.3f", c.CrashRecall, c.CrashPrecision)
	}
	if c.TrainDocs == 0 || c.TestDocs == 0 {
		t.Errorf("degenerate split %d/%d", c.TrainDocs, c.TestDocs)
	}
}

func TestClassifyErrorsOnEmpty(t *testing.T) {
	store := ticketdb.NewStore()
	mon := monitordb.New(time.Date(2011, 7, 1, 0, 0, 0, 0, time.UTC), 2*365*24*time.Hour)
	obs := model.Window{
		Start: time.Date(2012, 7, 1, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2013, 7, 1, 0, 0, 0, 0, time.UTC),
	}
	data := model.NewDataset(obs, nil, nil, nil)
	opts := DefaultOptions(obs, obs)
	if _, err := Collect(data, store, mon, opts); err == nil {
		t.Fatal("empty ticket population accepted with classification on")
	}
	opts.SkipClassification = true
	if _, err := Collect(data, store, mon, opts); err != nil {
		t.Fatalf("empty dataset should be fine without classification: %v", err)
	}
}

func TestLabelOf(t *testing.T) {
	if got := labelOf(model.Ticket{IsCrash: false}); got != 0 {
		t.Errorf("background label %d", got)
	}
	if got := labelOf(model.Ticket{IsCrash: true, Class: model.ClassPower}); got != int(model.ClassPower) {
		t.Errorf("crash label %d", got)
	}
}

func TestUsePredictedLabels(t *testing.T) {
	if testing.Short() {
		t.Skip("classification is expensive")
	}
	out, cfg := genField(t)
	opts := DefaultOptions(cfg.Observation, cfg.FineWindow)
	opts.UsePredictedLabels = true
	col, err := Collect(out.Data, out.Tickets, out.Monitor, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Tickets must now carry predicted labels; the crash-ticket count
	// should be close to (but not necessarily equal to) the truth.
	truth := len(out.Tickets.Crashes())
	got := len(col.Data.CrashTickets())
	if got == 0 {
		t.Fatal("predicted labels produced no crash tickets")
	}
	ratio := float64(got) / float64(truth)
	if ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("predicted crash count %d vs truth %d (ratio %.2f)", got, truth, ratio)
	}
	// And the relabeled dataset still validates.
	if err := col.Data.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestOnlineClassifierMatchesBatch verifies the streaming classifier is
// the batch model frozen: two independent trainings from the same options
// agree on every held-out ticket, and OnlineClassifier.Predict implements
// exactly the batch two-stage cascade.
func TestOnlineClassifierMatchesBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("classifier training is expensive")
	}
	out, cfg := genField(t)
	opts := DefaultOptions(cfg.Observation, cfg.FineWindow)
	opts.Clusters = 32
	opts.MaxIter = 20
	tickets := out.Tickets.InWindow(cfg.Observation)

	oc, err := TrainOnlineClassifier(tickets, opts)
	if err != nil {
		t.Fatal(err)
	}
	stage1, stage2, sp, err := trainStages(tickets, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	mismatches, hits := 0, 0
	for i, text := range sp.testTexts {
		want := 0
		if stage1.Predict(text) == 1 {
			want = stage2.Predict(text)
		}
		if got := oc.Predict(text); got != want {
			mismatches++
		} else if got == sp.testLabels[i] {
			hits++
		}
	}
	if mismatches != 0 {
		t.Fatalf("%d of %d test predictions differ between online and batch models",
			mismatches, len(sp.testTexts))
	}
	if acc := float64(hits) / float64(len(sp.testTexts)); acc < 0.85 {
		t.Errorf("online classifier test accuracy %.3f, want ≥0.85", acc)
	}
}
