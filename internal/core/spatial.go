package core

import (
	"failscope/internal/model"
)

// SpatialResult is the spatial-dependency analysis of §IV.E: how many
// servers are affected by a single failure incident.
type SpatialResult struct {
	Incidents int

	// Share*, PMOnly*, VMOnly* are the rows of Table VI: fractions of
	// incidents that involve zero, exactly one, or two-plus servers of
	// the given view.
	ShareOne, ShareTwoPlus   float64
	PMZero, PMOne, PMTwoPlus float64
	VMZero, VMOne, VMTwoPlus float64
	DependentPMShare         float64 // PMTwoPlus / (PMOne + PMTwoPlus)
	DependentVMShare         float64
	MaxServers               int
	MaxServersClass          model.FailureClass
	MeanServers              float64
}

// Spatial reproduces Table VI and the headline §IV.E statistics.
func Spatial(in Input) SpatialResult {
	res := SpatialResult{}
	var one, twoPlus int
	var pm [3]int // zero, one, twoPlus
	var vm [3]int
	totalServers := 0
	for _, inc := range in.Data.Incidents {
		res.Incidents++
		n := len(inc.Servers)
		totalServers += n
		if n == 1 {
			one++
		} else if n >= 2 {
			twoPlus++
		}
		if n > res.MaxServers {
			res.MaxServers = n
			res.MaxServersClass = inc.Class
		}
		pms, vms := 0, 0
		for _, id := range inc.Servers {
			if m := in.Data.Machine(id); m != nil {
				switch m.Kind {
				case model.PM:
					pms++
				case model.VM:
					vms++
				}
			}
		}
		pm[bucket(pms)]++
		vm[bucket(vms)]++
	}
	if res.Incidents == 0 {
		return res
	}
	total := float64(res.Incidents)
	res.ShareOne = float64(one) / total
	res.ShareTwoPlus = float64(twoPlus) / total
	res.PMZero, res.PMOne, res.PMTwoPlus = float64(pm[0])/total, float64(pm[1])/total, float64(pm[2])/total
	res.VMZero, res.VMOne, res.VMTwoPlus = float64(vm[0])/total, float64(vm[1])/total, float64(vm[2])/total
	if pm[1]+pm[2] > 0 {
		res.DependentPMShare = float64(pm[2]) / float64(pm[1]+pm[2])
	}
	if vm[1]+vm[2] > 0 {
		res.DependentVMShare = float64(vm[2]) / float64(vm[1]+vm[2])
	}
	res.MeanServers = float64(totalServers) / total
	return res
}

func bucket(n int) int {
	switch {
	case n == 0:
		return 0
	case n == 1:
		return 1
	default:
		return 2
	}
}

// ClassSpatialStats is one column of Table VII: the mean and maximum
// number of servers involved in incidents of one class.
type ClassSpatialStats struct {
	Class     model.FailureClass
	Incidents int
	Mean      float64
	Max       int
}

// ServersPerIncidentByClass reproduces Table VII, including "other".
func ServersPerIncidentByClass(in Input) []ClassSpatialStats {
	agg := make(map[model.FailureClass]*ClassSpatialStats)
	totals := make(map[model.FailureClass]int)
	for _, inc := range in.Data.Incidents {
		st := agg[inc.Class]
		if st == nil {
			st = &ClassSpatialStats{Class: inc.Class}
			agg[inc.Class] = st
		}
		st.Incidents++
		totals[inc.Class] += len(inc.Servers)
		if len(inc.Servers) > st.Max {
			st.Max = len(inc.Servers)
		}
	}
	var out []ClassSpatialStats
	for _, class := range model.Classes() {
		st := agg[class]
		if st == nil {
			out = append(out, ClassSpatialStats{Class: class})
			continue
		}
		st.Mean = float64(totals[class]) / float64(st.Incidents)
		out = append(out, *st)
	}
	return out
}
