// Package core is the paper's primary contribution as a reusable library:
// the failure-analysis methodology of §IV–§VI. Every metric reported in
// the paper's tables and figures — failure rates, random and recurrent
// failure probabilities, inter-failure and repair time distributions with
// model selection, spatial dependency, age effects, and the correlation of
// failure rates with resource capacity, usage and VM management — is
// computed here from an assembled dataset plus per-machine attributes.
package core

import (
	"sort"
	"time"

	"failscope/internal/model"
	"failscope/internal/obs"
)

// Input is the analysis input: the dataset (machines + tickets +
// incidents, restricted to the observation window) and the per-machine
// measurements of interest joined by the collection pipeline.
type Input struct {
	Data  *model.Dataset
	Attrs map[model.MachineID]model.Attributes

	// Observer, when non-nil, records a span per table/figure analysis and
	// the headline study metrics. The analyses are pure functions of the
	// input, so the report is identical with and without it.
	Observer *obs.Observer
}

// attrsOf returns the machine's attributes (zero value if absent).
func (in Input) attrsOf(id model.MachineID) model.Attributes {
	if in.Attrs == nil {
		return model.Attributes{}
	}
	return in.Attrs[id]
}

// crashBy returns crash tickets grouped per server, each group time-sorted.
func crashBy(data *model.Dataset) map[model.MachineID][]model.Ticket {
	by := make(map[model.MachineID][]model.Ticket)
	for _, t := range data.Tickets {
		if t.IsCrash {
			by[t.ServerID] = append(by[t.ServerID], t)
		}
	}
	for id := range by {
		ts := by[id]
		sort.Slice(ts, func(i, j int) bool { return ts[i].Opened.Before(ts[j].Opened) })
		by[id] = ts
	}
	return by
}

// crashOf returns the crash tickets on machines of the given kind
// (system <= 0 means all systems), time-sorted.
func crashOf(data *model.Dataset, kind model.MachineKind, system model.System) []model.Ticket {
	var out []model.Ticket
	for _, t := range data.Tickets {
		if !t.IsCrash {
			continue
		}
		m := data.Machine(t.ServerID)
		if m == nil || m.Kind != kind {
			continue
		}
		if system > 0 && m.System != system {
			continue
		}
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Opened.Before(out[j].Opened) })
	return out
}

// weeklyCounts buckets ticket open times into the observation window's
// week bins.
func weeklyCounts(w model.Window, tickets []model.Ticket) []int {
	counts := make([]int, w.NumWeeks())
	for _, t := range tickets {
		if idx := w.WeekIndex(t.Opened); idx >= 0 {
			counts[idx]++
		}
	}
	return counts
}

// days converts a duration to fractional days.
func days(d time.Duration) float64 { return d.Hours() / 24 }

// hours converts a duration to fractional hours.
func hours(d time.Duration) float64 { return d.Hours() }
