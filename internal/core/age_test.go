package core

import (
	"math"
	"testing"
	"time"

	"failscope/internal/model"
)

func TestAgeAnalysisFiltersUnknownCreation(t *testing.T) {
	b := newBuilder().
		machine("vmKnown", model.VM, model.SysI, model.Capacity{}).
		machine("vmUnknown", model.VM, model.SysI, model.Capacity{})
	created := t0.AddDate(0, -6, 0)
	b.attr("vmKnown", model.Attributes{Created: created, AgeKnown: true})
	b.attr("vmUnknown", model.Attributes{Created: t0.AddDate(-1, 0, 0), AgeKnown: false})
	b.crash("vmKnown", model.SysI, 30, model.ClassSoftware, 1)
	b.crash("vmUnknown", model.SysI, 40, model.ClassSoftware, 1)
	in := b.input()

	res := AgeAnalysis(in, 12)
	if res.TotalVMs != 2 || res.EligibleVMs != 1 {
		t.Fatalf("eligibility: %+v", res)
	}
	if len(res.AgesDays) != 1 {
		t.Fatalf("ages = %v", res.AgesDays)
	}
	wantAge := t0.Add(30*24*time.Hour).Sub(created).Hours() / 24
	if math.Abs(res.AgesDays[0]-wantAge) > 1e-9 {
		t.Fatalf("age %v, want %v", res.AgesDays[0], wantAge)
	}
}

func TestAgeAnalysisEmpty(t *testing.T) {
	in := newBuilder().machine("pm", model.PM, model.SysI, model.Capacity{}).input()
	res := AgeAnalysis(in, 10)
	if len(res.AgesDays) != 0 || res.ECDF != nil || res.Histogram != nil {
		t.Fatalf("empty age analysis: %+v", res)
	}
}

func TestAgeAnalysisUniformAges(t *testing.T) {
	b := newBuilder()
	created := t0 // ages then span [0, ~1 year], matching the KS reference
	b.machine("vm", model.VM, model.SysI, model.Capacity{})
	b.attr("vm", model.Attributes{Created: created, AgeKnown: true})
	// Failures spread evenly across the year: CDF close to the diagonal.
	for day := 5; day < 360; day += 10 {
		b.crash("vm", model.SysI, day, model.ClassSoftware, 1)
	}
	in := b.input()
	res := AgeAnalysis(in, 12)
	if res.KSUniform > 0.1 {
		t.Fatalf("uniform ages yielded KS %v", res.KSUniform)
	}
	if math.Abs(res.TrendSlope) > 0.01 {
		t.Fatalf("uniform ages yielded trend %v", res.TrendSlope)
	}
}

func TestSlope(t *testing.T) {
	if got := slope([]float64{1, 2, 3, 4}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("slope = %v, want 1", got)
	}
	if got := slope([]float64{5, 5, 5}); math.Abs(got) > 1e-12 {
		t.Fatalf("flat slope = %v", got)
	}
	if !math.IsNaN(slope([]float64{1})) {
		t.Fatal("slope of single point should be NaN")
	}
}

func TestBathtubScore(t *testing.T) {
	// A clear bathtub: heavy edges, light middle.
	tub := []float64{4, 3, 1, 1, 1, 1, 3, 4}
	if got := bathtub(tub); got < 2 {
		t.Fatalf("bathtub score %v for a bathtub shape", got)
	}
	flat := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	if got := bathtub(flat); math.Abs(got-1) > 1e-12 {
		t.Fatalf("flat score %v, want 1", got)
	}
	if !math.IsNaN(bathtub([]float64{1, 2})) {
		t.Fatal("too-few bins should score NaN")
	}
}

func TestAnalyzeRunsOnTinyDataset(t *testing.T) {
	b := newBuilder().
		machine("pm", model.PM, model.SysI, model.Capacity{CPUs: 4, MemoryGB: 8}).
		machine("vm", model.VM, model.SysI, model.Capacity{CPUs: 2, MemoryGB: 2, DiskGB: 64, Disks: 1})
	b.attr("vm", model.Attributes{
		CPUUtil: 10, MemUtil: 20, DiskUtil: 30, NetKbps: 64, HasUsage: true,
		AvgConsolidation: 8, HasConsolidation: true,
		OnOffPerMonth: 1, HasOnOff: true,
		Created: t0.AddDate(0, -3, 0), AgeKnown: true,
	})
	b.crash("pm", model.SysI, 1, model.ClassHardware, 12)
	b.crash("vm", model.SysI, 2, model.ClassReboot, 2)
	b.incident("i1", model.ClassReboot, "vm")
	in := b.input()

	rep, err := Analyze(in)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DatasetStats[len(rep.DatasetStats)-1].CrashTickets != 2 {
		t.Fatalf("total crash tickets: %+v", rep.DatasetStats)
	}
	if rep.Spatial.Incidents != 1 {
		t.Fatalf("incidents: %+v", rep.Spatial)
	}
	if len(rep.Capacity) != 6 || len(rep.Usage) != 6 {
		t.Fatalf("panels: %d capacity, %d usage", len(rep.Capacity), len(rep.Usage))
	}
}

func TestAnalyzeNilDataset(t *testing.T) {
	if _, err := Analyze(Input{}); err == nil {
		t.Fatal("nil dataset accepted")
	}
}

func TestAgeHazardExposureNormalization(t *testing.T) {
	// Two VMs: one created at window start (observable ages 0..12mo), one
	// created 1 year earlier (observable ages 12..24mo). One failure each
	// at a mid-window moment. With equal exposure per covered bucket, the
	// hazard must be flat across both age regions, not declining.
	b := newBuilder().
		machine("young", model.VM, model.SysI, model.Capacity{}).
		machine("old", model.VM, model.SysI, model.Capacity{})
	b.attr("young", model.Attributes{Created: t0, AgeKnown: true})
	b.attr("old", model.Attributes{Created: t0.AddDate(-1, 0, 0), AgeKnown: true})
	b.crash("young", model.SysI, 100, model.ClassSoftware, 1) // age ~100 d
	b.crash("old", model.SysI, 100, model.ClassSoftware, 1)   // age ~465 d
	in := b.input()

	res := AgeHazard(in, 365, 730)
	if len(res.Bins) != 2 {
		t.Fatalf("bins = %d", len(res.Bins))
	}
	if res.EligibleVMs != 2 {
		t.Fatalf("eligible = %d", res.EligibleVMs)
	}
	// Each VM contributes ~1 year of exposure to exactly one bucket, and
	// one failure lands in each bucket: equal rates.
	if res.Bins[0].Failures != 1 || res.Bins[1].Failures != 1 {
		t.Fatalf("failures: %+v", res.Bins)
	}
	if math.Abs(res.Bins[0].Rate-res.Bins[1].Rate) > 0.05*res.Bins[0].Rate {
		t.Fatalf("hazard not exposure-normalized: %v vs %v", res.Bins[0].Rate, res.Bins[1].Rate)
	}
}

func TestAgeHazardOnGeneratedData(t *testing.T) {
	in := generatedInput(t)
	res := AgeHazard(in, 60, 730)
	if res.EligibleVMs == 0 {
		t.Fatal("no eligible VMs")
	}
	totalFailures := 0
	totalExposure := 0.0
	for _, bin := range res.Bins {
		if bin.Rate < 0 || bin.ExposureYears < 0 {
			t.Fatalf("negative bin: %+v", bin)
		}
		totalFailures += bin.Failures
		totalExposure += bin.ExposureYears
	}
	if totalFailures == 0 || totalExposure <= 0 {
		t.Fatalf("degenerate hazard: %d failures, %.1f exposure-years", totalFailures, totalExposure)
	}
	// The overall hazard should be in the ballpark of the VM yearly
	// failure rate (weekly ≈ 0.004 → ≈ 0.2/yr).
	overall := float64(totalFailures) / totalExposure
	if overall < 0.02 || overall > 2 {
		t.Errorf("overall hazard %.3f failures/VM-year implausible", overall)
	}
}

func TestAgeHazardDefaults(t *testing.T) {
	in := newBuilder().machine("vm", model.VM, model.SysI, model.Capacity{}).input()
	res := AgeHazard(in, 0, 0)
	if len(res.Bins) != 24 { // 730/30 rounded down
		t.Fatalf("default bins = %d", len(res.Bins))
	}
}
