package core

import (
	"failscope/internal/model"
)

// SystemStats is one column of Table II.
type SystemStats struct {
	System       model.System
	PMs, VMs     int
	AllTickets   int
	CrashTickets int
	CrashShare   float64 // crash tickets / all tickets
	PMShare      float64 // of crash tickets, fraction on PMs
	VMShare      float64
}

// DatasetStats reproduces Table II: population and ticket statistics per
// subsystem plus the overall totals (System = 0 row).
func DatasetStats(in Input) []SystemStats {
	out := make([]SystemStats, 0, model.NumSystems+1)
	var total SystemStats
	var totalPMCrash, totalVMCrash int
	for _, sys := range model.Systems() {
		s := SystemStats{
			System: sys,
			PMs:    in.Data.CountMachines(model.PM, sys),
			VMs:    in.Data.CountMachines(model.VM, sys),
		}
		var pmCrash, vmCrash int
		for _, t := range in.Data.Tickets {
			if t.System != sys {
				continue
			}
			s.AllTickets++
			if !t.IsCrash {
				continue
			}
			s.CrashTickets++
			if m := in.Data.Machine(t.ServerID); m != nil {
				switch m.Kind {
				case model.PM:
					pmCrash++
				case model.VM:
					vmCrash++
				}
			}
		}
		if s.AllTickets > 0 {
			s.CrashShare = float64(s.CrashTickets) / float64(s.AllTickets)
		}
		if s.CrashTickets > 0 {
			s.PMShare = float64(pmCrash) / float64(s.CrashTickets)
			s.VMShare = float64(vmCrash) / float64(s.CrashTickets)
		}
		total.PMs += s.PMs
		total.VMs += s.VMs
		total.AllTickets += s.AllTickets
		total.CrashTickets += s.CrashTickets
		totalPMCrash += pmCrash
		totalVMCrash += vmCrash
		out = append(out, s)
	}
	if total.AllTickets > 0 {
		total.CrashShare = float64(total.CrashTickets) / float64(total.AllTickets)
	}
	if total.CrashTickets > 0 {
		total.PMShare = float64(totalPMCrash) / float64(total.CrashTickets)
		total.VMShare = float64(totalVMCrash) / float64(total.CrashTickets)
	}
	out = append(out, total)
	return out
}

// ClassShare is the share of one failure class within a system's crash
// tickets.
type ClassShare struct {
	System model.System // 0 = all systems
	Class  model.FailureClass
	Count  int
	Share  float64 // of all crash tickets in the system
}

// ClassDistribution reproduces Fig. 1 (the per-system distribution across
// the five named classes) together with the "other" shares quoted in
// §III.A. Shares are fractions of all crash tickets including "other".
func ClassDistribution(in Input) []ClassShare {
	counts := make(map[model.System]map[model.FailureClass]int)
	totals := make(map[model.System]int)
	for _, t := range in.Data.Tickets {
		if !t.IsCrash {
			continue
		}
		if counts[t.System] == nil {
			counts[t.System] = make(map[model.FailureClass]int)
		}
		counts[t.System][t.Class]++
		totals[t.System]++
		if counts[0] == nil {
			counts[0] = make(map[model.FailureClass]int)
		}
		counts[0][t.Class]++
		totals[0]++
	}
	var out []ClassShare
	systems := append([]model.System{0}, model.Systems()...)
	for _, sys := range systems {
		for _, class := range model.Classes() {
			n := counts[sys][class]
			share := 0.0
			if totals[sys] > 0 {
				share = float64(n) / float64(totals[sys])
			}
			out = append(out, ClassShare{System: sys, Class: class, Count: n, Share: share})
		}
	}
	return out
}
