package core

import (
	"math"
	"testing"

	"failscope/internal/model"
)

// Edge cases: analyses must degrade gracefully on empty or degenerate
// populations (a machine with no failures, a class with no tickets, a
// kind with no machines).

func TestInterFailureEmptyPopulation(t *testing.T) {
	in := newBuilder().machine("pm", model.PM, model.SysI, model.Capacity{}).input()
	res := InterFailure(in, model.VM)
	if res.FailingServers != 0 || len(res.GapsDays) != 0 {
		t.Fatalf("empty population: %+v", res)
	}
	if res.ECDF != nil {
		t.Fatal("ECDF built from nothing")
	}
	if _, ok := res.Fits.Best(); ok {
		t.Fatal("fit reported on empty sample")
	}
	if res.KS.N != 0 {
		t.Fatal("KS populated on empty sample")
	}
}

func TestRepairTimesEmptyPopulation(t *testing.T) {
	in := newBuilder().machine("pm", model.PM, model.SysI, model.Capacity{}).input()
	res := RepairTimes(in, model.VM)
	if res.Summary.N != 0 || res.RebootShare != 0 {
		t.Fatalf("empty repair analysis: %+v", res.Summary)
	}
}

func TestRecurrenceNoFailures(t *testing.T) {
	in := newBuilder().machine("pm", model.PM, model.SysI, model.Capacity{}).input()
	res := Recurrence(in, model.PM, 0)
	if res.Failures != 0 || res.WithinWeek != 0 {
		t.Fatalf("no-failure recurrence: %+v", res)
	}
}

func TestRecurrencePerSystemFilter(t *testing.T) {
	b := newBuilder().
		machine("pm1", model.PM, model.SysI, model.Capacity{}).
		machine("pm2", model.PM, model.SysII, model.Capacity{})
	b.crash("pm1", model.SysI, 0, model.ClassSoftware, 1)
	b.crash("pm1", model.SysI, 2, model.ClassSoftware, 1)
	b.crash("pm2", model.SysII, 0, model.ClassSoftware, 1)
	in := b.input()

	sysI := Recurrence(in, model.PM, model.SysI)
	if sysI.Failures != 2 {
		t.Fatalf("Sys I failures = %d", sysI.Failures)
	}
	sysII := Recurrence(in, model.PM, model.SysII)
	if sysII.Failures != 1 || sysII.WithinWeek != 0 {
		t.Fatalf("Sys II recurrence: %+v", sysII)
	}
}

func TestDatasetStatsNoTickets(t *testing.T) {
	in := newBuilder().machine("pm", model.PM, model.SysI, model.Capacity{}).input()
	rows := DatasetStats(in)
	if rows[0].CrashShare != 0 || rows[0].PMShare != 0 {
		t.Fatalf("empty shares: %+v", rows[0])
	}
}

func TestClassDistributionNoCrashes(t *testing.T) {
	in := newBuilder().machine("pm", model.PM, model.SysI, model.Capacity{}).input()
	rows := ClassDistribution(in)
	for _, r := range rows {
		if r.Share != 0 || r.Count != 0 {
			t.Fatalf("non-zero share without crashes: %+v", r)
		}
	}
}

func TestRepairByClassSkipsZeroDurations(t *testing.T) {
	b := newBuilder().machine("pm", model.PM, model.SysI, model.Capacity{})
	b.crash("pm", model.SysI, 0, model.ClassPower, 0) // zero repair: excluded
	b.crash("pm", model.SysI, 1, model.ClassPower, 4)
	in := b.input()
	for _, r := range RepairByClass(in) {
		if r.Class == model.ClassPower {
			if r.N != 1 || r.Mean != 4 {
				t.Fatalf("power row: %+v", r)
			}
		}
	}
}

func TestInterFailureIgnoresSimultaneousTickets(t *testing.T) {
	// Two tickets at the identical instant (one incident hitting the same
	// server twice would be a data bug; zero gaps must not poison fits).
	b := newBuilder().machine("pm", model.PM, model.SysI, model.Capacity{})
	b.crash("pm", model.SysI, 5, model.ClassSoftware, 1)
	b.crash("pm", model.SysI, 5, model.ClassSoftware, 1)
	b.crash("pm", model.SysI, 10, model.ClassSoftware, 1)
	in := b.input()
	res := InterFailure(in, model.PM)
	for _, g := range res.GapsDays {
		if g <= 0 {
			t.Fatalf("non-positive gap %v", g)
		}
	}
	if len(res.GapsDays) != 1 {
		t.Fatalf("gaps: %v", res.GapsDays)
	}
}

func TestRandomVsRecurrentUndefinedRatio(t *testing.T) {
	// Sys II-like case: a kind with zero failures has ratio 0 (undefined),
	// mirroring the paper's "N.A." cell.
	in := newBuilder().
		machine("vm", model.VM, model.SysII, model.Capacity{}).
		machine("pm", model.PM, model.SysI, model.Capacity{}).
		input()
	for _, r := range RandomVsRecurrentTable(in) {
		if r.Kind == model.VM && r.System == model.SysII {
			if r.Ratio != 0 || !math.IsNaN(r.Ratio) && r.Ratio != 0 {
				t.Fatalf("Sys II VM ratio: %+v", r)
			}
		}
	}
}

func TestAttrsOfNilMap(t *testing.T) {
	in := Input{Data: newBuilder().machine("m", model.PM, model.SysI, model.Capacity{}).input().Data}
	if a := in.attrsOf("m"); a.HasUsage {
		t.Fatal("nil attrs map should yield zero attributes")
	}
}
