package core

import (
	"math"
	"testing"

	"failscope/internal/model"
	"failscope/internal/stats"
)

func TestRateByAttributeBinsServersAndFailures(t *testing.T) {
	b := newBuilder().
		machine("small1", model.VM, model.SysI, model.Capacity{CPUs: 1}).
		machine("small2", model.VM, model.SysI, model.Capacity{CPUs: 2}).
		machine("big1", model.VM, model.SysI, model.Capacity{CPUs: 8})
	b.crash("small1", model.SysI, 0, model.ClassSoftware, 1)
	b.crash("big1", model.SysI, 1, model.ClassSoftware, 1)
	b.crash("big1", model.SysI, 9, model.ClassSoftware, 1)
	in := b.input()

	br, err := RateByAttribute(in, model.VM, "cpu",
		func(m *model.Machine, _ model.Attributes) (float64, bool) { return float64(m.Capacity.CPUs), true },
		[]float64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Bins) != 2 {
		t.Fatalf("bins = %d", len(br.Bins))
	}
	lo, hi := br.Bins[0], br.Bins[1]
	if lo.Servers != 2 || lo.Failures != 1 {
		t.Fatalf("low bin: %+v", lo)
	}
	if hi.Servers != 1 || hi.Failures != 2 {
		t.Fatalf("high bin: %+v", hi)
	}
	weeks := float64(obsWin.NumWeeks())
	wantLo := (1.0 / 2) / weeks
	if math.Abs(lo.Rate.Mean-wantLo) > 1e-12 {
		t.Fatalf("low rate %v, want %v", lo.Rate.Mean, wantLo)
	}
	wantHi := 2.0 / weeks
	if math.Abs(hi.Rate.Mean-wantHi) > 1e-12 {
		t.Fatalf("high rate %v, want %v", hi.Rate.Mean, wantHi)
	}
}

func TestRateByAttributeExcludesMissing(t *testing.T) {
	b := newBuilder().
		machine("withUsage", model.VM, model.SysI, model.Capacity{}).
		machine("noUsage", model.VM, model.SysI, model.Capacity{})
	b.attr("withUsage", model.Attributes{CPUUtil: 50, HasUsage: true})
	in := b.input()
	br, err := RateByAttribute(in, model.VM, "cpuutil",
		func(_ *model.Machine, a model.Attributes) (float64, bool) { return a.CPUUtil, a.HasUsage },
		UtilEdges)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, bin := range br.Bins {
		total += bin.Servers
	}
	if total != 1 {
		t.Fatalf("machines without usage leaked into the panel: %d", total)
	}
}

func TestRateByAttributeNeedsEdges(t *testing.T) {
	in := newBuilder().machine("m", model.VM, model.SysI, model.Capacity{}).input()
	if _, err := RateByAttribute(in, model.VM, "x", nil, []float64{1}); err == nil {
		t.Fatal("single edge accepted")
	}
}

func summaryWithMean(m float64) stats.Summary {
	return stats.Summary{Mean: m, N: 1}
}

func TestIncrementFactorIgnoresThinBins(t *testing.T) {
	bins := []AttrBin{
		{Servers: 100, Rate: summaryWithMean(0.002)},
		{Servers: 2, Rate: summaryWithMean(10)}, // thin bin must be ignored
		{Servers: 100, Rate: summaryWithMean(0.004)},
	}
	if got := incrementFactor(bins); math.Abs(got-2) > 1e-12 {
		t.Fatalf("increment factor %v, want 2", got)
	}
	if got := incrementFactor(nil); !math.IsNaN(got) {
		t.Fatalf("empty increment factor %v", got)
	}
}

func TestBinTrendMonotone(t *testing.T) {
	bins := []AttrBin{
		{Lo: 0, Hi: 1, Servers: 50, Rate: summaryWithMean(0.001)},
		{Lo: 1, Hi: 2, Servers: 50, Rate: summaryWithMean(0.002)},
		{Lo: 2, Hi: 3, Servers: 50, Rate: summaryWithMean(0.003)},
	}
	if got := binTrend(bins); math.Abs(got-1) > 1e-12 {
		t.Fatalf("trend %v, want +1", got)
	}
}

func TestCapacityStudyPanels(t *testing.T) {
	b := newBuilder().
		machine("pm", model.PM, model.SysI, model.Capacity{CPUs: 4, MemoryGB: 16}).
		machine("vm", model.VM, model.SysI, model.Capacity{CPUs: 2, MemoryGB: 2, DiskGB: 64, Disks: 2})
	in := b.input()
	panels, err := CapacityStudy(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"pm_cpu", "vm_cpu", "pm_mem", "vm_mem", "vm_diskcap", "vm_diskcount"} {
		if _, ok := panels[key]; !ok {
			t.Errorf("missing panel %q", key)
		}
	}
	// The PM must appear in exactly one pm_cpu bin.
	total := 0
	for _, bin := range panels["pm_cpu"].Bins {
		total += bin.Servers
	}
	if total != 1 {
		t.Errorf("pm_cpu panel holds %d servers", total)
	}
	// PMs have no disk data: the vm_diskcap panel must only count the VM.
	total = 0
	for _, bin := range panels["vm_diskcap"].Bins {
		total += bin.Servers
	}
	if total != 1 {
		t.Errorf("vm_diskcap panel holds %d servers", total)
	}
}

func TestUsageStudyPanels(t *testing.T) {
	b := newBuilder().
		machine("pm", model.PM, model.SysI, model.Capacity{}).
		machine("vm", model.VM, model.SysI, model.Capacity{})
	b.attr("pm", model.Attributes{CPUUtil: 20, MemUtil: 60, HasUsage: true})
	b.attr("vm", model.Attributes{CPUUtil: 5, MemUtil: 10, DiskUtil: 50, NetKbps: 100, HasUsage: true})
	in := b.input()
	panels, err := UsageStudy(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"pm_cpuutil", "vm_cpuutil", "pm_memutil", "vm_memutil", "vm_diskutil", "vm_net"} {
		if _, ok := panels[key]; !ok {
			t.Errorf("missing panel %q", key)
		}
	}
}

func TestConsolidationAndOnOffPanels(t *testing.T) {
	b := newBuilder().
		machine("vm1", model.VM, model.SysI, model.Capacity{}).
		machine("vm2", model.VM, model.SysI, model.Capacity{})
	b.attr("vm1", model.Attributes{AvgConsolidation: 4, HasConsolidation: true, OnOffPerMonth: 2, HasOnOff: true})
	// vm2 lacks both measurements and must be excluded from the panels.
	in := b.input()

	consol, err := Consolidation(in)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, bin := range consol.Bins {
		total += bin.Servers
	}
	if total != 1 {
		t.Fatalf("consolidation panel servers = %d", total)
	}

	onoff, err := OnOff(in)
	if err != nil {
		t.Fatal(err)
	}
	total = 0
	for _, bin := range onoff.Bins {
		total += bin.Servers
	}
	if total != 1 {
		t.Fatalf("on/off panel servers = %d", total)
	}
}
