package core

import (
	"math"

	"failscope/internal/model"
	"failscope/internal/stats"
)

// WeeklySeries is the fleet-level weekly failure-count series with its
// burstiness statistics. §IV.D establishes per-server temporal dependence;
// this view shows the same clustering at the whole-fleet level: the
// variance-to-mean ratio (index of dispersion) of a memoryless fleet is 1,
// and positive lag-autocorrelation means bad weeks follow bad weeks.
type WeeklySeries struct {
	Kind   model.MachineKind // 0 = all kinds
	Counts []int
	// IndexOfDispersion is Var/Mean of the weekly counts (Poisson = 1).
	IndexOfDispersion float64
	// Autocorrelation holds lag-1..lag-4 autocorrelations of the counts.
	Autocorrelation []float64
}

// WeeklyFailureSeries computes the weekly crash-count series for one
// machine kind (0 = all).
func WeeklyFailureSeries(in Input, kind model.MachineKind) WeeklySeries {
	res := WeeklySeries{Kind: kind}
	var tickets []model.Ticket
	if kind == 0 {
		tickets = in.Data.CrashTickets()
	} else {
		tickets = crashOf(in.Data, kind, 0)
	}
	res.Counts = weeklyCounts(in.Data.Observation, tickets)

	series := make([]float64, len(res.Counts))
	for i, c := range res.Counts {
		series[i] = float64(c)
	}
	mean := stats.Mean(series)
	if mean > 0 {
		// Population variance (the dispersion test statistic).
		var ss float64
		for _, v := range series {
			d := v - mean
			ss += d * d
		}
		res.IndexOfDispersion = ss / float64(len(series)) / mean
	}
	for lag := 1; lag <= 4 && lag < len(series); lag++ {
		res.Autocorrelation = append(res.Autocorrelation, autocorr(series, lag))
	}
	return res
}

// autocorr returns the lag-k autocorrelation of a series.
func autocorr(series []float64, lag int) float64 {
	n := len(series)
	if lag <= 0 || lag >= n {
		return math.NaN()
	}
	mean := stats.Mean(series)
	var num, den float64
	for i := 0; i < n; i++ {
		d := series[i] - mean
		den += d * d
	}
	if den == 0 {
		return math.NaN()
	}
	for i := 0; i < n-lag; i++ {
		num += (series[i] - mean) * (series[i+lag] - mean)
	}
	return num / den
}

// ClassRecurrence reports, for one failure class, the probability that a
// server which just failed with that class fails again (any class, and
// same class) within a week — the per-class view of §IV.D that Table III's
// per-server rows gesture at.
type ClassRecurrence struct {
	Class model.FailureClass
	// Triggers is the number of uncensored trigger failures considered.
	Triggers int
	// AnyWithinWeek is P(another failure of any class within 7 days).
	AnyWithinWeek float64
	// SameWithinWeek is P(another failure of the same class within 7 days).
	SameWithinWeek float64
}

// RecurrenceByClass computes per-class recurrence over all machines of the
// given kind (0 = both).
func RecurrenceByClass(in Input, kind model.MachineKind) []ClassRecurrence {
	byClass := make(map[model.FailureClass]*ClassRecurrence)
	for _, class := range model.Classes() {
		byClass[class] = &ClassRecurrence{Class: class}
	}
	end := in.Data.Observation.End
	var anyHits, sameHits map[model.FailureClass]int
	anyHits = make(map[model.FailureClass]int)
	sameHits = make(map[model.FailureClass]int)

	for id, tickets := range crashBy(in.Data) {
		m := in.Data.Machine(id)
		if m == nil || (kind != 0 && m.Kind != kind) {
			continue
		}
		for i, t := range tickets {
			if t.Opened.Add(week).After(end) {
				continue // censored
			}
			cr := byClass[t.Class]
			if cr == nil {
				continue
			}
			cr.Triggers++
			any, same := false, false
			for j := i + 1; j < len(tickets); j++ {
				if tickets[j].Opened.Sub(t.Opened) > week {
					break
				}
				any = true
				if tickets[j].Class == t.Class {
					same = true
				}
			}
			if any {
				anyHits[t.Class]++
			}
			if same {
				sameHits[t.Class]++
			}
		}
	}

	out := make([]ClassRecurrence, 0, len(model.Classes()))
	for _, class := range model.Classes() {
		cr := *byClass[class]
		if cr.Triggers > 0 {
			cr.AnyWithinWeek = float64(anyHits[class]) / float64(cr.Triggers)
			cr.SameWithinWeek = float64(sameHits[class]) / float64(cr.Triggers)
		}
		out = append(out, cr)
	}
	return out
}
