package core

import (
	"time"

	"failscope/internal/model"
)

// HazardBin is one age bucket of the exposure-normalized failure hazard.
type HazardBin struct {
	LoDays, HiDays float64
	Failures       int
	// ExposureYears is the total VM-time spent inside this age bucket
	// during the observation window.
	ExposureYears float64
	// Rate is failures per VM-year of exposure at this age.
	Rate float64
}

// HazardResult is the empirical age-specific failure hazard of VMs: the
// failure rate per VM-year of *exposure* at each age. Fig. 6 plots raw
// failure counts over age, which confounds the age effect with the
// population's creation-date distribution (only early-created VMs can be
// observed old); normalizing by exposure removes that bias, so the hazard
// curve is the clean answer to the paper's bathtub question.
type HazardResult struct {
	Bins []HazardBin
	// TrendSlope is the least-squares slope of the bin rates (per bin);
	// positive = the hazard genuinely increases with age.
	TrendSlope float64
	// BathtubScore compares edge-bin hazards to the middle, as in Fig. 6.
	BathtubScore float64
	// EligibleVMs is the age-known population used.
	EligibleVMs int
}

// AgeHazard computes the VM age hazard over bins of binDays, up to maxDays
// of age.
func AgeHazard(in Input, binDays, maxDays float64) HazardResult {
	if binDays <= 0 {
		binDays = 30
	}
	if maxDays <= 0 {
		maxDays = 730
	}
	nBins := int(maxDays / binDays)
	if nBins < 1 {
		nBins = 1
	}
	res := HazardResult{Bins: make([]HazardBin, nBins)}
	for i := range res.Bins {
		res.Bins[i].LoDays = float64(i) * binDays
		res.Bins[i].HiDays = float64(i+1) * binDays
	}

	obs := in.Data.Observation
	eligible := make(map[model.MachineID]bool)
	for _, m := range in.Data.Machines {
		if m.Kind != model.VM || !in.attrsOf(m.ID).AgeKnown {
			continue
		}
		eligible[m.ID] = true
		res.EligibleVMs++

		// Exposure: the VM occupies age bucket i during calendar interval
		// [created + lo, created + hi), clipped to the observation window.
		created := in.attrsOf(m.ID).Created
		for i := range res.Bins {
			start := created.Add(dur(res.Bins[i].LoDays))
			end := created.Add(dur(res.Bins[i].HiDays))
			if start.Before(obs.Start) {
				start = obs.Start
			}
			if end.After(obs.End) {
				end = obs.End
			}
			if end.After(start) {
				res.Bins[i].ExposureYears += end.Sub(start).Hours() / (24 * 365)
			}
		}
	}

	for _, t := range in.Data.Tickets {
		if !t.IsCrash || !eligible[t.ServerID] {
			continue
		}
		age := days(t.Opened.Sub(in.attrsOf(t.ServerID).Created))
		if age < 0 {
			continue
		}
		idx := int(age / binDays)
		if idx >= nBins {
			idx = nBins - 1
		}
		res.Bins[idx].Failures++
	}

	rates := make([]float64, 0, nBins)
	for i := range res.Bins {
		if res.Bins[i].ExposureYears > 0 {
			res.Bins[i].Rate = float64(res.Bins[i].Failures) / res.Bins[i].ExposureYears
		}
		// Only well-populated bins participate in the trend statistics.
		if res.Bins[i].ExposureYears > 1 {
			rates = append(rates, res.Bins[i].Rate)
		}
	}
	res.TrendSlope = slope(rates)
	res.BathtubScore = bathtub(rates)
	return res
}

// dur converts fractional days to a time.Duration.
func dur(d float64) time.Duration { return time.Duration(d * 24 * float64(time.Hour)) }
