package core

import (
	"math"

	"failscope/internal/model"
	"failscope/internal/stats"
)

// AgeResult is the VM-age analysis of §IV.F (Fig. 6): the distribution of
// failure counts over VM age at failure, restricted to VMs whose creation
// date is observable (§III.B).
type AgeResult struct {
	// AgesDays is the VM age in days at each failure.
	AgesDays []float64
	ECDF     *stats.ECDF
	// Histogram is the failure-count PDF over age bins.
	Histogram *stats.Histogram
	// KSUniform is the Kolmogorov–Smirnov distance between the age CDF
	// and the uniform distribution on [0, MaxAgeDays]; small values mean
	// "CDF close to the diagonal".
	KSUniform  float64
	MaxAgeDays float64
	// TrendSlope is the least-squares slope of bin density over age
	// (per bin); positive = failures increase with age.
	TrendSlope float64
	// EligibleVMs / TotalVMs tracks the population covered by the age
	// filter (the paper keeps ~75%).
	EligibleVMs int
	TotalVMs    int
	// BathtubScore compares edge-bin density to middle-bin density; a
	// bathtub curve scores well above 1, a uniform/weakly increasing
	// profile near 1.
	BathtubScore float64
}

// AgeAnalysis reproduces Fig. 6.
func AgeAnalysis(in Input, bins int) AgeResult {
	if bins <= 0 {
		bins = 24
	}
	res := AgeResult{}
	eligible := make(map[model.MachineID]bool)
	for _, m := range in.Data.Machines {
		if m.Kind != model.VM {
			continue
		}
		res.TotalVMs++
		if in.attrsOf(m.ID).AgeKnown {
			eligible[m.ID] = true
			res.EligibleVMs++
		}
	}
	for _, t := range in.Data.Tickets {
		if !t.IsCrash || !eligible[t.ServerID] {
			continue
		}
		created := in.attrsOf(t.ServerID).Created
		age := days(t.Opened.Sub(created))
		if age >= 0 {
			res.AgesDays = append(res.AgesDays, age)
		}
	}
	if len(res.AgesDays) == 0 {
		return res
	}
	for _, a := range res.AgesDays {
		if a > res.MaxAgeDays {
			res.MaxAgeDays = a
		}
	}
	if ecdf, err := stats.NewECDF(res.AgesDays); err == nil {
		res.ECDF = ecdf
		maxAge := res.MaxAgeDays
		res.KSUniform = ecdf.KSDistance(func(x float64) float64 {
			if x <= 0 {
				return 0
			}
			if x >= maxAge {
				return 1
			}
			return x / maxAge
		})
	}
	edges := stats.LinearEdges(0, res.MaxAgeDays+1e-9, bins)
	if h, err := stats.NewHistogram(res.AgesDays, edges); err == nil {
		res.Histogram = h
		dens := h.Densities()
		res.TrendSlope = slope(dens)
		res.BathtubScore = bathtub(dens)
	}
	return res
}

// slope returns the least-squares slope of y over index.
func slope(y []float64) float64 {
	n := float64(len(y))
	if n < 2 {
		return math.NaN()
	}
	var sx, sy, sxy, sxx float64
	for i, v := range y {
		x := float64(i)
		sx += x
		sy += v
		sxy += x * v
		sxx += x * x
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}

// bathtub compares the mean density of the outer quarter bins to the
// middle half.
func bathtub(dens []float64) float64 {
	n := len(dens)
	if n < 4 {
		return math.NaN()
	}
	q := n / 4
	var edge, mid float64
	var ne, nm int
	for i, v := range dens {
		if i < q || i >= n-q {
			edge += v
			ne++
		} else {
			mid += v
			nm++
		}
	}
	if nm == 0 || ne == 0 || mid == 0 {
		return math.NaN()
	}
	return (edge / float64(ne)) / (mid / float64(nm))
}
