package core

import (
	"math"
	"testing"

	"failscope/internal/model"
)

func TestAutocorr(t *testing.T) {
	// A strictly alternating series has lag-1 autocorrelation ≈ -1.
	alt := []float64{1, -1, 1, -1, 1, -1, 1, -1, 1, -1}
	if got := autocorr(alt, 1); got > -0.8 {
		t.Errorf("alternating lag-1 autocorr %v, want ≈-1", got)
	}
	// ... and lag-2 ≈ +1 (up to edge effects).
	if got := autocorr(alt, 2); got < 0.6 {
		t.Errorf("alternating lag-2 autocorr %v, want strongly positive", got)
	}
	if !math.IsNaN(autocorr([]float64{1, 2}, 5)) {
		t.Error("lag beyond series should be NaN")
	}
	if !math.IsNaN(autocorr([]float64{3, 3, 3}, 1)) {
		t.Error("constant series should be NaN")
	}
}

func TestWeeklyFailureSeriesCounts(t *testing.T) {
	b := newBuilder().machine("pm", model.PM, model.SysI, model.Capacity{})
	b.crash("pm", model.SysI, 0, model.ClassSoftware, 1)
	b.crash("pm", model.SysI, 1, model.ClassSoftware, 1)
	b.crash("pm", model.SysI, 8, model.ClassSoftware, 1)
	in := b.input()

	res := WeeklyFailureSeries(in, model.PM)
	if len(res.Counts) != in.Data.Observation.NumWeeks() {
		t.Fatalf("weeks = %d", len(res.Counts))
	}
	if res.Counts[0] != 2 || res.Counts[1] != 1 {
		t.Fatalf("counts: %v", res.Counts[:3])
	}
	if len(res.Autocorrelation) != 4 {
		t.Fatalf("autocorrelation lags = %d", len(res.Autocorrelation))
	}
	// All kinds includes the same tickets here.
	all := WeeklyFailureSeries(in, 0)
	if all.Counts[0] != 2 {
		t.Fatalf("all-kinds counts: %v", all.Counts[:2])
	}
}

func TestWeeklySeriesOverdispersedOnGeneratedData(t *testing.T) {
	in := generatedInput(t)
	res := WeeklyFailureSeries(in, 0)
	// Recurrence and fan-out make the fleet series overdispersed
	// relative to Poisson.
	if res.IndexOfDispersion < 1.0 {
		t.Errorf("index of dispersion %.2f — fleet failures look memoryless", res.IndexOfDispersion)
	}
}

func TestRecurrenceByClass(t *testing.T) {
	b := newBuilder().machine("pm", model.PM, model.SysI, model.Capacity{})
	// SW on day 0, SW again on day 2 (same-class recurrence), HW day 40,
	// net day 100 with no follow-up.
	b.crash("pm", model.SysI, 0, model.ClassSoftware, 1)
	b.crash("pm", model.SysI, 2, model.ClassSoftware, 1)
	b.crash("pm", model.SysI, 40, model.ClassHardware, 1)
	b.crash("pm", model.SysI, 100, model.ClassNetwork, 1)
	in := b.input()

	rows := RecurrenceByClass(in, model.PM)
	byClass := make(map[model.FailureClass]ClassRecurrence)
	for _, r := range rows {
		byClass[r.Class] = r
	}
	sw := byClass[model.ClassSoftware]
	if sw.Triggers != 2 {
		t.Fatalf("SW triggers = %d", sw.Triggers)
	}
	if sw.AnyWithinWeek != 0.5 || sw.SameWithinWeek != 0.5 {
		t.Fatalf("SW recurrence: %+v", sw)
	}
	hw := byClass[model.ClassHardware]
	if hw.Triggers != 1 || hw.AnyWithinWeek != 0 {
		t.Fatalf("HW recurrence: %+v", hw)
	}
}

func TestRecurrenceByClassMixedFollowUp(t *testing.T) {
	b := newBuilder().machine("pm", model.PM, model.SysI, model.Capacity{})
	// HW trigger followed within a week by SW then HW: both any and same
	// must count.
	b.crash("pm", model.SysI, 10, model.ClassHardware, 1)
	b.crash("pm", model.SysI, 12, model.ClassSoftware, 1)
	b.crash("pm", model.SysI, 14, model.ClassHardware, 1)
	in := b.input()
	rows := RecurrenceByClass(in, model.PM)
	for _, r := range rows {
		if r.Class == model.ClassHardware {
			// Two HW triggers: the day-10 one has both any- and same-class
			// follow-ups; the day-14 one has none.
			if r.Triggers != 2 || r.AnyWithinWeek != 0.5 || r.SameWithinWeek != 0.5 {
				t.Fatalf("HW: %+v", r)
			}
		}
	}
}
