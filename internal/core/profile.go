package core

import (
	"failscope/internal/model"
	"failscope/internal/stats"
)

// SystemProfile is the per-subsystem one-pager an operator would ask for:
// populations, rates by kind, class mix, repair picture and recurrence —
// the "statistics relative to each system" the paper computes throughout
// but never assembles in one place.
type SystemProfile struct {
	System model.System

	PMs, VMs     int
	AllTickets   int
	CrashTickets int

	// Weekly failure-rate summaries per kind.
	PMRate stats.Summary
	VMRate stats.Summary

	// ClassShares is each class's share of the system's crash tickets.
	ClassShares map[model.FailureClass]float64
	// DominantClass is the largest *named* class (excluding "other").
	DominantClass model.FailureClass

	// Repair summaries per kind (hours).
	PMRepair stats.Summary
	VMRepair stats.Summary

	// Weekly recurrence per kind.
	PMRecurrence float64
	VMRecurrence float64

	// TopFailingServers lists the system's most failure-prone machines.
	TopFailingServers []ServerFailures
}

// ServerFailures is one row of a profile's worst-offender list.
type ServerFailures struct {
	ID       model.MachineID
	Kind     model.MachineKind
	Failures int
}

// Profile assembles the per-system deep dive. topN bounds the
// worst-offender list (default 5).
func Profile(in Input, sys model.System, topN int) SystemProfile {
	if topN <= 0 {
		topN = 5
	}
	p := SystemProfile{
		System:      sys,
		PMs:         in.Data.CountMachines(model.PM, sys),
		VMs:         in.Data.CountMachines(model.VM, sys),
		ClassShares: make(map[model.FailureClass]float64),
	}

	classCounts := make(map[model.FailureClass]int)
	perServer := make(map[model.MachineID]int)
	var pmRepairs, vmRepairs []float64
	for _, t := range in.Data.Tickets {
		if t.System != sys {
			continue
		}
		p.AllTickets++
		if !t.IsCrash {
			continue
		}
		p.CrashTickets++
		classCounts[t.Class]++
		perServer[t.ServerID]++
		m := in.Data.Machine(t.ServerID)
		if m == nil {
			continue
		}
		if h := hours(t.RepairTime()); h > 0 {
			switch m.Kind {
			case model.PM:
				pmRepairs = append(pmRepairs, h)
			case model.VM:
				vmRepairs = append(vmRepairs, h)
			}
		}
	}
	if p.CrashTickets > 0 {
		best := 0
		for class, n := range classCounts {
			p.ClassShares[class] = float64(n) / float64(p.CrashTickets)
			if class != model.ClassOther && n > best {
				best = n
				p.DominantClass = class
			}
		}
	}

	p.PMRate = rateSummary(in, model.PM, sys).Summary
	p.VMRate = rateSummary(in, model.VM, sys).Summary
	p.PMRepair = stats.Summarize(pmRepairs)
	p.VMRepair = stats.Summarize(vmRepairs)
	p.PMRecurrence = Recurrence(in, model.PM, sys).WithinWeek
	p.VMRecurrence = Recurrence(in, model.VM, sys).WithinWeek

	p.TopFailingServers = topServers(in, perServer, topN)
	return p
}

// topServers selects the topN servers by failure count, breaking ties by
// ID for determinism.
func topServers(in Input, perServer map[model.MachineID]int, topN int) []ServerFailures {
	rows := make([]ServerFailures, 0, len(perServer))
	for id, n := range perServer {
		kind := model.MachineKind(0)
		if m := in.Data.Machine(id); m != nil {
			kind = m.Kind
		}
		rows = append(rows, ServerFailures{ID: id, Kind: kind, Failures: n})
	}
	// Selection sort of the top N keeps this dependency-free and O(n·topN).
	for i := 0; i < topN && i < len(rows); i++ {
		best := i
		for j := i + 1; j < len(rows); j++ {
			if rows[j].Failures > rows[best].Failures ||
				(rows[j].Failures == rows[best].Failures && rows[j].ID < rows[best].ID) {
				best = j
			}
		}
		rows[i], rows[best] = rows[best], rows[i]
	}
	if len(rows) > topN {
		rows = rows[:topN]
	}
	return rows
}
