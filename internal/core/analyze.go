package core

import (
	"fmt"

	"failscope/internal/model"
)

// Report bundles every analysis of the paper, one field per table/figure.
type Report struct {
	DatasetStats      []SystemStats       // Table II
	ClassDistribution []ClassShare        // Fig. 1
	WeeklyRates       []RateSummary       // Fig. 2
	InterFailurePM    InterFailureResult  // Fig. 3
	InterFailureVM    InterFailureResult  // Fig. 3
	InterFailureClass []ClassGapStats     // Table III
	RepairPM          RepairResult        // Fig. 4
	RepairVM          RepairResult        // Fig. 4
	RepairClass       []ClassRepairStats  // Table IV
	RecurrencePM      RecurrenceResult    // Fig. 5
	RecurrenceVM      RecurrenceResult    // Fig. 5
	RandomRecurrent   []RandomVsRecurrent // Table V
	Spatial           SpatialResult       // Table VI
	SpatialClass      []ClassSpatialStats // Table VII
	Age               AgeResult           // Fig. 6
	AgeHazard         HazardResult        // Fig. 6 extension: exposure-normalized
	FleetSeries       WeeklySeries        // extension: fleet-level burstiness
	ClassRecurrences  []ClassRecurrence   // extension: per-class recurrence
	Capacity          map[string]BinnedRates
	Usage             map[string]BinnedRates
	ConsolidationFig  BinnedRates // Fig. 9
	OnOffFig          BinnedRates // Fig. 10
}

// Analyze runs the complete study. Each per-table analysis runs under its
// own span when in.Observer is set; all analyses are pure functions of the
// input, so the report is identical with and without observation.
func Analyze(in Input) (*Report, error) {
	if in.Data == nil {
		return nil, fmt.Errorf("core: nil dataset")
	}
	o := in.Observer
	step := func(name string, fn func()) {
		sp := o.Start(name)
		fn()
		sp.End()
	}
	crashes := 0
	for _, t := range in.Data.Tickets {
		if t.IsCrash {
			crashes++
		}
	}
	m := o.Metrics()
	m.Add("core.machines", int64(len(in.Data.Machines)))
	m.Add("core.crash_tickets", int64(crashes))

	r := &Report{}
	step("dataset-stats", func() { r.DatasetStats = DatasetStats(in) })
	step("class-distribution", func() { r.ClassDistribution = ClassDistribution(in) })
	step("weekly-rates", func() { r.WeeklyRates = WeeklyFailureRates(in) })
	step("inter-failure", func() {
		r.InterFailurePM = InterFailure(in, model.PM)
		r.InterFailureVM = InterFailure(in, model.VM)
		r.InterFailureClass = InterFailureByClass(in)
	})
	step("repair-times", func() {
		r.RepairPM = RepairTimes(in, model.PM)
		r.RepairVM = RepairTimes(in, model.VM)
		r.RepairClass = RepairByClass(in)
	})
	step("recurrence", func() {
		r.RecurrencePM = Recurrence(in, model.PM, 0)
		r.RecurrenceVM = Recurrence(in, model.VM, 0)
		r.RandomRecurrent = RandomVsRecurrentTable(in)
		r.ClassRecurrences = RecurrenceByClass(in, 0)
	})
	step("spatial", func() {
		r.Spatial = Spatial(in)
		r.SpatialClass = ServersPerIncidentByClass(in)
	})
	step("age", func() {
		r.Age = AgeAnalysis(in, 24)
		r.AgeHazard = AgeHazard(in, 60, 730)
	})
	step("fleet-series", func() { r.FleetSeries = WeeklyFailureSeries(in, 0) })
	var err error
	step("capacity", func() { r.Capacity, err = CapacityStudy(in) })
	if err != nil {
		return nil, err
	}
	step("usage", func() { r.Usage, err = UsageStudy(in) })
	if err != nil {
		return nil, err
	}
	step("consolidation", func() { r.ConsolidationFig, err = Consolidation(in) })
	if err != nil {
		return nil, err
	}
	step("onoff", func() { r.OnOffFig, err = OnOff(in) })
	if err != nil {
		return nil, err
	}
	return r, nil
}
