package core

import (
	"fmt"

	"failscope/internal/model"
)

// Report bundles every analysis of the paper, one field per table/figure.
type Report struct {
	DatasetStats      []SystemStats       // Table II
	ClassDistribution []ClassShare        // Fig. 1
	WeeklyRates       []RateSummary       // Fig. 2
	InterFailurePM    InterFailureResult  // Fig. 3
	InterFailureVM    InterFailureResult  // Fig. 3
	InterFailureClass []ClassGapStats     // Table III
	RepairPM          RepairResult        // Fig. 4
	RepairVM          RepairResult        // Fig. 4
	RepairClass       []ClassRepairStats  // Table IV
	RecurrencePM      RecurrenceResult    // Fig. 5
	RecurrenceVM      RecurrenceResult    // Fig. 5
	RandomRecurrent   []RandomVsRecurrent // Table V
	Spatial           SpatialResult       // Table VI
	SpatialClass      []ClassSpatialStats // Table VII
	Age               AgeResult           // Fig. 6
	AgeHazard         HazardResult        // Fig. 6 extension: exposure-normalized
	FleetSeries       WeeklySeries        // extension: fleet-level burstiness
	ClassRecurrences  []ClassRecurrence   // extension: per-class recurrence
	Capacity          map[string]BinnedRates
	Usage             map[string]BinnedRates
	ConsolidationFig  BinnedRates // Fig. 9
	OnOffFig          BinnedRates // Fig. 10
}

// Analyze runs the complete study.
func Analyze(in Input) (*Report, error) {
	if in.Data == nil {
		return nil, fmt.Errorf("core: nil dataset")
	}
	r := &Report{
		DatasetStats:      DatasetStats(in),
		ClassDistribution: ClassDistribution(in),
		WeeklyRates:       WeeklyFailureRates(in),
		InterFailurePM:    InterFailure(in, model.PM),
		InterFailureVM:    InterFailure(in, model.VM),
		InterFailureClass: InterFailureByClass(in),
		RepairPM:          RepairTimes(in, model.PM),
		RepairVM:          RepairTimes(in, model.VM),
		RepairClass:       RepairByClass(in),
		RecurrencePM:      Recurrence(in, model.PM, 0),
		RecurrenceVM:      Recurrence(in, model.VM, 0),
		RandomRecurrent:   RandomVsRecurrentTable(in),
		Spatial:           Spatial(in),
		SpatialClass:      ServersPerIncidentByClass(in),
		Age:               AgeAnalysis(in, 24),
		AgeHazard:         AgeHazard(in, 60, 730),
		FleetSeries:       WeeklyFailureSeries(in, 0),
		ClassRecurrences:  RecurrenceByClass(in, 0),
	}
	var err error
	if r.Capacity, err = CapacityStudy(in); err != nil {
		return nil, err
	}
	if r.Usage, err = UsageStudy(in); err != nil {
		return nil, err
	}
	if r.ConsolidationFig, err = Consolidation(in); err != nil {
		return nil, err
	}
	if r.OnOffFig, err = OnOff(in); err != nil {
		return nil, err
	}
	return r, nil
}
