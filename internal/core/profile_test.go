package core

import (
	"math"
	"testing"

	"failscope/internal/model"
)

func TestProfile(t *testing.T) {
	b := newBuilder().
		machine("pm1", model.PM, model.SysI, model.Capacity{}).
		machine("vm1", model.VM, model.SysI, model.Capacity{}).
		machine("other", model.PM, model.SysII, model.Capacity{})
	b.crash("pm1", model.SysI, 0, model.ClassHardware, 10)
	b.crash("vm1", model.SysI, 1, model.ClassReboot, 2)
	b.crash("vm1", model.SysI, 2, model.ClassReboot, 3)
	b.crash("other", model.SysII, 3, model.ClassSoftware, 1)
	in := b.input()

	p := Profile(in, model.SysI, 3)
	if p.PMs != 1 || p.VMs != 1 {
		t.Fatalf("populations: %+v", p)
	}
	if p.CrashTickets != 3 || p.AllTickets != 3 {
		t.Fatalf("tickets: %+v", p)
	}
	if math.Abs(p.ClassShares[model.ClassReboot]-2.0/3) > 1e-12 {
		t.Fatalf("reboot share: %v", p.ClassShares[model.ClassReboot])
	}
	if p.DominantClass != model.ClassReboot {
		t.Fatalf("dominant class: %v", p.DominantClass)
	}
	if p.PMRepair.N != 1 || p.PMRepair.Mean != 10 {
		t.Fatalf("PM repair: %+v", p.PMRepair)
	}
	if p.VMRepair.N != 2 || p.VMRepair.Mean != 2.5 {
		t.Fatalf("VM repair: %+v", p.VMRepair)
	}
	if len(p.TopFailingServers) != 2 {
		t.Fatalf("top servers: %+v", p.TopFailingServers)
	}
	if p.TopFailingServers[0].ID != "vm1" || p.TopFailingServers[0].Failures != 2 {
		t.Fatalf("worst offender: %+v", p.TopFailingServers[0])
	}
	if p.TopFailingServers[0].Kind != model.VM {
		t.Fatalf("worst offender kind: %v", p.TopFailingServers[0].Kind)
	}
}

func TestProfileEmptySystem(t *testing.T) {
	in := newBuilder().machine("pm1", model.PM, model.SysI, model.Capacity{}).input()
	p := Profile(in, model.SysV, 0)
	if p.CrashTickets != 0 || len(p.TopFailingServers) != 0 {
		t.Fatalf("empty profile: %+v", p)
	}
	if p.DominantClass != 0 {
		t.Fatalf("dominant class of empty system: %v", p.DominantClass)
	}
}

func TestProfileOnGeneratedData(t *testing.T) {
	in := generatedInput(t)
	for _, sys := range model.Systems() {
		p := Profile(in, sys, 5)
		if p.PMs == 0 {
			t.Fatalf("%v has no PMs", sys)
		}
		total := 0.0
		for _, share := range p.ClassShares {
			total += share
		}
		if p.CrashTickets > 0 && math.Abs(total-1) > 1e-9 {
			t.Fatalf("%v class shares sum to %v", sys, total)
		}
		if len(p.TopFailingServers) > 5 {
			t.Fatalf("%v top list too long", sys)
		}
		for i := 1; i < len(p.TopFailingServers); i++ {
			if p.TopFailingServers[i].Failures > p.TopFailingServers[i-1].Failures {
				t.Fatalf("%v top list not sorted", sys)
			}
		}
	}
}
