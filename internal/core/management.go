package core

import (
	"failscope/internal/model"
)

// Consolidation reproduces Fig. 9: VM weekly failure rate versus the
// average monthly consolidation level.
func Consolidation(in Input) (BinnedRates, error) {
	return RateByAttribute(in, model.VM, "vm_consolidation",
		func(_ *model.Machine, a model.Attributes) (float64, bool) {
			return a.AvgConsolidation, a.HasConsolidation
		}, ConsolEdges)
}

// OnOff reproduces Fig. 10: VM weekly failure rate versus the monthly
// on/off frequency screened from the fine-grained window.
func OnOff(in Input) (BinnedRates, error) {
	return RateByAttribute(in, model.VM, "vm_onoff",
		func(_ *model.Machine, a model.Attributes) (float64, bool) {
			return a.OnOffPerMonth, a.HasOnOff
		}, OnOffEdges)
}
