package core

import (
	"failscope/internal/dist"
	"failscope/internal/model"
	"failscope/internal/stats"
)

// RepairResult is the repair-time analysis of §IV.C (Fig. 4) for one
// machine kind: repair hours (ticket open → close, including queueing),
// their distribution and the fitted-model ranking.
type RepairResult struct {
	Kind    model.MachineKind
	Hours   []float64
	Summary stats.Summary
	ECDF    *stats.ECDF
	Fits    dist.Selection
	// KS tests the repair hours against the best-fitting family.
	KS dist.KolmogorovSmirnov
	// RebootShare is the fraction of this kind's failures that are
	// unexpected reboots — the paper's explanation for the PM/VM gap.
	RebootShare float64
}

// RepairTimes computes the repair-time analysis for one machine kind.
func RepairTimes(in Input, kind model.MachineKind) RepairResult {
	res := RepairResult{Kind: kind}
	reboots, total := 0, 0
	for _, t := range in.Data.Tickets {
		if !t.IsCrash {
			continue
		}
		m := in.Data.Machine(t.ServerID)
		if m == nil || m.Kind != kind {
			continue
		}
		total++
		if t.Class == model.ClassReboot {
			reboots++
		}
		if h := hours(t.RepairTime()); h > 0 {
			res.Hours = append(res.Hours, h)
		}
	}
	if total > 0 {
		res.RebootShare = float64(reboots) / float64(total)
	}
	res.Summary = stats.Summarize(res.Hours)
	if ecdf, err := stats.NewECDF(res.Hours); err == nil {
		res.ECDF = ecdf
	}
	res.Fits = dist.FitAll(res.Hours)
	if best, ok := res.Fits.Best(); ok {
		res.KS = dist.KSTest(best.Dist, res.Hours)
	}
	return res
}

// ClassRepairStats is one column of Table IV: repair-time statistics for
// one failure class, across both machine kinds.
type ClassRepairStats struct {
	Class                  model.FailureClass
	Mean, Median           float64
	CoefficientOfVariation float64
	N                      int
}

// RepairByClass reproduces Table IV (the five named classes; pass
// model.Classes() output through and "other" is included at the end).
func RepairByClass(in Input) []ClassRepairStats {
	byClass := make(map[model.FailureClass][]float64)
	for _, t := range in.Data.Tickets {
		if !t.IsCrash {
			continue
		}
		if h := hours(t.RepairTime()); h > 0 {
			byClass[t.Class] = append(byClass[t.Class], h)
		}
	}
	var out []ClassRepairStats
	for _, class := range model.Classes() {
		hs := byClass[class]
		out = append(out, ClassRepairStats{
			Class:                  class,
			Mean:                   stats.Mean(hs),
			Median:                 stats.Median(hs),
			CoefficientOfVariation: stats.CoefficientOfVariation(hs),
			N:                      len(hs),
		})
	}
	return out
}
