package core

import (
	"math"
	"testing"
	"time"

	"failscope/internal/model"
)

var (
	t0     = time.Date(2012, 7, 1, 0, 0, 0, 0, time.UTC)
	obsWin = model.Window{Start: t0, End: t0.AddDate(1, 0, 0)} // 52+ weeks
)

// builder assembles small, exactly verifiable datasets.
type builder struct {
	machines  []*model.Machine
	tickets   []model.Ticket
	incidents []model.Incident
	attrs     map[model.MachineID]model.Attributes
	nextID    int
}

func newBuilder() *builder {
	return &builder{attrs: make(map[model.MachineID]model.Attributes)}
}

func (b *builder) machine(id model.MachineID, kind model.MachineKind, sys model.System, res model.Capacity) *builder {
	b.machines = append(b.machines, &model.Machine{
		ID: id, Kind: kind, System: sys, Capacity: res, Created: t0.AddDate(-1, 0, 0),
	})
	return b
}

func (b *builder) attr(id model.MachineID, a model.Attributes) *builder {
	b.attrs[id] = a
	return b
}

func (b *builder) crash(server model.MachineID, sys model.System, day int, class model.FailureClass, repairHours float64) *builder {
	b.nextID++
	at := t0.Add(time.Duration(day) * 24 * time.Hour)
	b.tickets = append(b.tickets, model.Ticket{
		ID:       "T" + string(rune('0'+b.nextID%10)) + string(rune('a'+b.nextID/10)),
		ServerID: server, System: sys, Opened: at,
		Closed:  at.Add(time.Duration(repairHours * float64(time.Hour))),
		IsCrash: true, Class: class,
	})
	return b
}

func (b *builder) incident(id string, class model.FailureClass, servers ...model.MachineID) *builder {
	b.incidents = append(b.incidents, model.Incident{
		ID: id, Class: class, Time: t0.Add(24 * time.Hour), Servers: servers,
	})
	return b
}

func (b *builder) input() Input {
	return Input{
		Data:  model.NewDataset(obsWin, b.machines, b.tickets, b.incidents),
		Attrs: b.attrs,
	}
}

func TestDatasetStats(t *testing.T) {
	in := newBuilder().
		machine("pm1", model.PM, model.SysI, model.Capacity{}).
		machine("vm1", model.VM, model.SysI, model.Capacity{}).
		crash("pm1", model.SysI, 1, model.ClassHardware, 1).
		crash("vm1", model.SysI, 2, model.ClassReboot, 1).
		crash("vm1", model.SysI, 3, model.ClassReboot, 1).
		input()
	rows := DatasetStats(in)
	if len(rows) != model.NumSystems+1 {
		t.Fatalf("rows = %d", len(rows))
	}
	sysI := rows[0]
	if sysI.PMs != 1 || sysI.VMs != 1 || sysI.CrashTickets != 3 {
		t.Fatalf("SysI row: %+v", sysI)
	}
	if math.Abs(sysI.PMShare-1.0/3) > 1e-12 || math.Abs(sysI.VMShare-2.0/3) > 1e-12 {
		t.Fatalf("shares: %+v", sysI)
	}
	total := rows[len(rows)-1]
	if total.CrashTickets != 3 || total.CrashShare != 1.0 {
		t.Fatalf("total row: %+v", total)
	}
	if math.Abs(total.PMShare-1.0/3) > 1e-12 {
		t.Fatalf("total PM share: %v", total.PMShare)
	}
}

func TestClassDistribution(t *testing.T) {
	in := newBuilder().
		machine("m", model.PM, model.SysI, model.Capacity{}).
		crash("m", model.SysI, 1, model.ClassSoftware, 1).
		crash("m", model.SysI, 2, model.ClassSoftware, 1).
		crash("m", model.SysI, 3, model.ClassOther, 1).
		crash("m", model.SysI, 4, model.ClassPower, 1).
		input()
	rows := ClassDistribution(in)
	shares := make(map[model.FailureClass]float64)
	for _, r := range rows {
		if r.System == 0 {
			shares[r.Class] = r.Share
		}
	}
	if shares[model.ClassSoftware] != 0.5 || shares[model.ClassOther] != 0.25 ||
		shares[model.ClassPower] != 0.25 || shares[model.ClassHardware] != 0 {
		t.Fatalf("shares: %v", shares)
	}
}

func TestWeeklyFailureRates(t *testing.T) {
	b := newBuilder().
		machine("pm1", model.PM, model.SysI, model.Capacity{}).
		machine("pm2", model.PM, model.SysI, model.Capacity{})
	// Two failures in week 0, one in week 1, none later.
	b.crash("pm1", model.SysI, 0, model.ClassSoftware, 1)
	b.crash("pm2", model.SysI, 1, model.ClassSoftware, 1)
	b.crash("pm1", model.SysI, 8, model.ClassSoftware, 1)
	in := b.input()

	rs := rateSummary(in, model.PM, model.SysI)
	if rs.Servers != 2 {
		t.Fatalf("servers = %d", rs.Servers)
	}
	weeks := float64(obsWin.NumWeeks())
	wantMean := (2.0/2 + 1.0/2) / weeks // weekly rates: 1.0, 0.5, 0, 0, ...
	if math.Abs(rs.Summary.Mean-wantMean) > 1e-12 {
		t.Fatalf("mean = %v, want %v", rs.Summary.Mean, wantMean)
	}
	if empty := rateSummary(in, model.VM, model.SysI); empty.Servers != 0 || empty.Summary.N != 0 {
		t.Fatalf("empty population summary: %+v", empty)
	}
}

func TestMonthlyFailureRate(t *testing.T) {
	in := newBuilder().
		machine("pm1", model.PM, model.SysI, model.Capacity{}).
		crash("pm1", model.SysI, 5, model.ClassSoftware, 1).
		crash("pm1", model.SysI, 6, model.ClassSoftware, 1).
		input()
	s := MonthlyFailureRate(in, model.PM, model.SysI)
	if s.N != 12 {
		t.Fatalf("months = %d", s.N)
	}
	if s.Max != 2 { // both failures in month 0, one server
		t.Fatalf("max monthly rate = %v", s.Max)
	}
	if zero := MonthlyFailureRate(in, model.VM, 0); zero.N != 0 {
		t.Fatalf("empty population: %+v", zero)
	}
}

func TestInterFailureGaps(t *testing.T) {
	in := newBuilder().
		machine("pm1", model.PM, model.SysI, model.Capacity{}).
		machine("pm2", model.PM, model.SysI, model.Capacity{}).
		machine("pm3", model.PM, model.SysI, model.Capacity{}).
		crash("pm1", model.SysI, 0, model.ClassSoftware, 1).
		crash("pm1", model.SysI, 10, model.ClassSoftware, 1).
		crash("pm1", model.SysI, 40, model.ClassSoftware, 1).
		crash("pm2", model.SysI, 5, model.ClassSoftware, 1). // single failure
		input()
	res := InterFailure(in, model.PM)
	if len(res.GapsDays) != 2 {
		t.Fatalf("gaps = %v", res.GapsDays)
	}
	if res.GapsDays[0] != 10 && res.GapsDays[1] != 10 {
		t.Fatalf("missing 10-day gap: %v", res.GapsDays)
	}
	if res.FailingServers != 2 || res.SingleFailureServers != 1 {
		t.Fatalf("server counts: %+v", res)
	}
	if math.Abs(res.Summary.Mean-20) > 1e-12 {
		t.Fatalf("mean gap %v, want 20", res.Summary.Mean)
	}
}

func TestInterFailureByClass(t *testing.T) {
	in := newBuilder().
		machine("a", model.PM, model.SysI, model.Capacity{}).
		machine("b", model.PM, model.SysI, model.Capacity{}).
		// Operator view SW: failures on days 0 (a), 4 (b), 10 (a): gaps 4, 6.
		crash("a", model.SysI, 0, model.ClassSoftware, 1).
		crash("b", model.SysI, 4, model.ClassSoftware, 1).
		crash("a", model.SysI, 10, model.ClassSoftware, 1).
		input()
	rows := InterFailureByClass(in)
	var sw ClassGapStats
	for _, r := range rows {
		if r.Class == model.ClassSoftware {
			sw = r
		}
	}
	if math.Abs(sw.OperatorMean-5) > 1e-12 {
		t.Fatalf("operator mean %v, want 5", sw.OperatorMean)
	}
	// Server view: only server a repeats, gap 10.
	if math.Abs(sw.ServerMean-10) > 1e-12 {
		t.Fatalf("server mean %v, want 10", sw.ServerMean)
	}
	// A class with no tickets yields NaNs, not zeros.
	for _, r := range rows {
		if r.Class == model.ClassPower && !math.IsNaN(r.OperatorMean) {
			t.Fatalf("power operator mean = %v, want NaN", r.OperatorMean)
		}
	}
}

func TestRepairTimes(t *testing.T) {
	in := newBuilder().
		machine("pm1", model.PM, model.SysI, model.Capacity{}).
		machine("vm1", model.VM, model.SysI, model.Capacity{}).
		crash("pm1", model.SysI, 0, model.ClassHardware, 10).
		crash("pm1", model.SysI, 1, model.ClassSoftware, 30).
		crash("vm1", model.SysI, 2, model.ClassReboot, 2).
		input()
	pm := RepairTimes(in, model.PM)
	if pm.Summary.N != 2 || math.Abs(pm.Summary.Mean-20) > 1e-12 {
		t.Fatalf("PM repair: %+v", pm.Summary)
	}
	if pm.RebootShare != 0 {
		t.Fatalf("PM reboot share %v", pm.RebootShare)
	}
	vm := RepairTimes(in, model.VM)
	if vm.RebootShare != 1 {
		t.Fatalf("VM reboot share %v", vm.RebootShare)
	}
}

func TestRepairByClass(t *testing.T) {
	in := newBuilder().
		machine("m", model.PM, model.SysI, model.Capacity{}).
		crash("m", model.SysI, 0, model.ClassPower, 1).
		crash("m", model.SysI, 1, model.ClassPower, 3).
		input()
	rows := RepairByClass(in)
	var power ClassRepairStats
	for _, r := range rows {
		if r.Class == model.ClassPower {
			power = r
		}
	}
	if power.N != 2 || power.Mean != 2 || power.Median != 2 {
		t.Fatalf("power repair: %+v", power)
	}
}

func TestRecurrenceCountsAndCensoring(t *testing.T) {
	b := newBuilder().machine("pm1", model.PM, model.SysI, model.Capacity{})
	// Failures on day 0 and day 3: the first recurs within a week.
	b.crash("pm1", model.SysI, 0, model.ClassSoftware, 1)
	b.crash("pm1", model.SysI, 3, model.ClassSoftware, 1)
	// A failure 2 days before the window end: censored for week/month.
	b.crash("pm1", model.SysI, 363, model.ClassSoftware, 1)
	in := b.input()
	res := Recurrence(in, model.PM, 0)
	if res.Failures != 3 {
		t.Fatalf("failures = %d", res.Failures)
	}
	// Uncensored for week: day-0 and day-3 failures (day-363 is censored).
	if res.UncensoredForWeek != 2 {
		t.Fatalf("uncensored for week = %d", res.UncensoredForWeek)
	}
	if math.Abs(res.WithinWeek-0.5) > 1e-12 { // only day-0 recurs within 7d
		t.Fatalf("within week = %v, want 0.5", res.WithinWeek)
	}
	if math.Abs(res.WithinDay-0) > 1e-12 {
		t.Fatalf("within day = %v, want 0", res.WithinDay)
	}
}

func TestRandomWeeklyProbability(t *testing.T) {
	b := newBuilder().
		machine("pm1", model.PM, model.SysI, model.Capacity{}).
		machine("pm2", model.PM, model.SysI, model.Capacity{})
	// Both servers fail in week 0; pm1 fails twice (distinct count once).
	b.crash("pm1", model.SysI, 0, model.ClassSoftware, 1)
	b.crash("pm1", model.SysI, 1, model.ClassSoftware, 1)
	b.crash("pm2", model.SysI, 2, model.ClassSoftware, 1)
	in := b.input()
	got := RandomWeeklyProbability(in, model.PM, model.SysI)
	want := 1.0 / float64(obsWin.NumWeeks()) // week 0: 2/2 servers; others 0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("random weekly = %v, want %v", got, want)
	}
	if zero := RandomWeeklyProbability(in, model.VM, 0); zero != 0 {
		t.Fatalf("empty population random = %v", zero)
	}
}

func TestRandomVsRecurrentTable(t *testing.T) {
	in := newBuilder().
		machine("pm1", model.PM, model.SysI, model.Capacity{}).
		crash("pm1", model.SysI, 0, model.ClassSoftware, 1).
		crash("pm1", model.SysI, 2, model.ClassSoftware, 1).
		input()
	rows := RandomVsRecurrentTable(in)
	if len(rows) != 2*(model.NumSystems+1) {
		t.Fatalf("rows = %d", len(rows))
	}
	all := rows[0]
	if all.Kind != model.PM || all.System != 0 {
		t.Fatalf("first row: %+v", all)
	}
	if all.Ratio <= 0 {
		t.Fatalf("ratio = %v", all.Ratio)
	}
}

func TestSpatial(t *testing.T) {
	in := newBuilder().
		machine("pm1", model.PM, model.SysI, model.Capacity{}).
		machine("pm2", model.PM, model.SysI, model.Capacity{}).
		machine("vm1", model.VM, model.SysI, model.Capacity{}).
		machine("vm2", model.VM, model.SysI, model.Capacity{}).
		incident("i1", model.ClassPower, "pm1", "pm2", "vm1").
		incident("i2", model.ClassReboot, "vm1").
		incident("i3", model.ClassSoftware, "vm1", "vm2").
		input()
	res := Spatial(in)
	if res.Incidents != 3 {
		t.Fatalf("incidents = %d", res.Incidents)
	}
	if math.Abs(res.ShareOne-1.0/3) > 1e-12 || math.Abs(res.ShareTwoPlus-2.0/3) > 1e-12 {
		t.Fatalf("shares: %+v", res)
	}
	// PM view: i1 has 2 PMs, i2 zero, i3 zero.
	if math.Abs(res.PMZero-2.0/3) > 1e-12 || math.Abs(res.PMTwoPlus-1.0/3) > 1e-12 {
		t.Fatalf("PM buckets: %+v", res)
	}
	// VM view: i1 one, i2 one, i3 two.
	if math.Abs(res.VMOne-2.0/3) > 1e-12 || math.Abs(res.VMTwoPlus-1.0/3) > 1e-12 {
		t.Fatalf("VM buckets: %+v", res)
	}
	if res.MaxServers != 3 || res.MaxServersClass != model.ClassPower {
		t.Fatalf("max: %+v", res)
	}
	if math.Abs(res.DependentVMShare-1.0/3) > 1e-12 {
		t.Fatalf("dependent VM share: %v", res.DependentVMShare)
	}
}

func TestSpatialEmpty(t *testing.T) {
	in := newBuilder().machine("m", model.PM, model.SysI, model.Capacity{}).input()
	if res := Spatial(in); res.Incidents != 0 || res.ShareOne != 0 {
		t.Fatalf("empty spatial: %+v", res)
	}
}

func TestServersPerIncidentByClass(t *testing.T) {
	in := newBuilder().
		machine("a", model.PM, model.SysI, model.Capacity{}).
		machine("b", model.PM, model.SysI, model.Capacity{}).
		incident("i1", model.ClassPower, "a", "b").
		incident("i2", model.ClassPower, "a").
		incident("i3", model.ClassReboot, "b").
		input()
	rows := ServersPerIncidentByClass(in)
	byClass := make(map[model.FailureClass]ClassSpatialStats)
	for _, r := range rows {
		byClass[r.Class] = r
	}
	if p := byClass[model.ClassPower]; p.Incidents != 2 || p.Mean != 1.5 || p.Max != 2 {
		t.Fatalf("power: %+v", p)
	}
	if r := byClass[model.ClassReboot]; r.Incidents != 1 || r.Mean != 1 {
		t.Fatalf("reboot: %+v", r)
	}
	if hw := byClass[model.ClassHardware]; hw.Incidents != 0 {
		t.Fatalf("hardware: %+v", hw)
	}
}
