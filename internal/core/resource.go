package core

import (
	"fmt"
	"math"

	"failscope/internal/model"
	"failscope/internal/stats"
)

// AttrBin is one bar of a Fig. 7/8/9/10 panel: the weekly failure rate of
// the servers whose attribute falls in [Lo, Hi).
type AttrBin struct {
	Label    string
	Lo, Hi   float64
	Servers  int
	Failures int
	Rate     stats.Summary // weekly failure rates across observation weeks
}

// BinnedRates is one full panel: weekly failure rate versus one attribute.
type BinnedRates struct {
	Kind      model.MachineKind
	Attribute string
	Bins      []AttrBin
	// IncrementFactor is max/min of the mean rates over bins with enough
	// servers — the paper's "factor of 5.5X" style headline.
	IncrementFactor float64
	// Spearman is the rank correlation between bin midpoint and mean rate
	// (monotone-trend check; bathtubs score near zero).
	Spearman float64
}

// minServersPerBin guards the increment factor against noise bins.
const minServersPerBin = 5

// Extractor pulls one attribute value from a machine and its joined
// attributes; ok=false excludes the machine from the panel (mirroring the
// paper's per-analysis population restrictions).
type Extractor func(m *model.Machine, a model.Attributes) (value float64, ok bool)

// RateByAttribute computes a full panel: machines of the given kind are
// bucketed by the extracted attribute over the given edges, and each
// bucket's weekly failure rate is summarized across the observation weeks.
func RateByAttribute(in Input, kind model.MachineKind, attribute string, extract Extractor, edges []float64) (BinnedRates, error) {
	if len(edges) < 2 {
		return BinnedRates{}, fmt.Errorf("core: need at least 2 edges for %s", attribute)
	}
	res := BinnedRates{Kind: kind, Attribute: attribute}
	nBins := len(edges) - 1

	binOf := func(v float64) int {
		idx := 0
		for i := 1; i < len(edges)-1; i++ {
			if v >= edges[i] {
				idx = i
			}
		}
		return idx
	}

	members := make([]map[model.MachineID]bool, nBins)
	for i := range members {
		members[i] = make(map[model.MachineID]bool)
	}
	for _, m := range in.Data.Machines {
		if m.Kind != kind {
			continue
		}
		v, ok := extract(m, in.attrsOf(m.ID))
		if !ok {
			continue
		}
		members[binOf(v)][m.ID] = true
	}

	weeks := in.Data.Observation.NumWeeks()
	counts := make([][]int, nBins)
	failTotals := make([]int, nBins)
	for i := range counts {
		counts[i] = make([]int, weeks)
	}
	for _, t := range in.Data.Tickets {
		if !t.IsCrash {
			continue
		}
		wi := in.Data.Observation.WeekIndex(t.Opened)
		if wi < 0 {
			continue
		}
		for b := range members {
			if members[b][t.ServerID] {
				counts[b][wi]++
				failTotals[b]++
				break
			}
		}
	}

	for b := 0; b < nBins; b++ {
		bin := AttrBin{
			Label:    fmt.Sprintf("[%g,%g)", edges[b], edges[b+1]),
			Lo:       edges[b],
			Hi:       edges[b+1],
			Servers:  len(members[b]),
			Failures: failTotals[b],
		}
		if bin.Servers > 0 {
			rates := make([]float64, weeks)
			for w := 0; w < weeks; w++ {
				rates[w] = float64(counts[b][w]) / float64(bin.Servers)
			}
			bin.Rate = stats.Summarize(rates)
		}
		res.Bins = append(res.Bins, bin)
	}

	res.IncrementFactor = incrementFactor(res.Bins)
	res.Spearman = binTrend(res.Bins)
	return res, nil
}

func incrementFactor(bins []AttrBin) float64 {
	lo, hi := math.Inf(1), 0.0
	for _, b := range bins {
		if b.Servers < minServersPerBin || b.Rate.N == 0 {
			continue
		}
		m := b.Rate.Mean
		if m <= 0 {
			continue
		}
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	if math.IsInf(lo, 1) || lo == 0 {
		return math.NaN()
	}
	return hi / lo
}

func binTrend(bins []AttrBin) float64 {
	var xs, ys []float64
	for _, b := range bins {
		if b.Servers < minServersPerBin || b.Rate.N == 0 {
			continue
		}
		xs = append(xs, (b.Lo+b.Hi)/2)
		ys = append(ys, b.Rate.Mean)
	}
	return stats.Spearman(xs, ys)
}

// Canonical bin edges for every panel in Figs. 7–10.
var (
	PMCPUEdges       = []float64{1, 2, 4, 8, 16, 24, 32, 65}
	VMCPUEdges       = []float64{1, 2, 4, 8, 9}
	PMMemEdges       = []float64{0, 4, 8, 16, 32, 64, 128, 512}
	VMMemEdges       = []float64{0, 0.5, 1, 2, 4, 8, 16, 64}
	VMDiskCapEdges   = []float64{0, 16, 32, 64, 128, 256, 512, 1024, 8192}
	VMDiskCountEdges = []float64{1, 2, 3, 4, 5, 6, 7}
	UtilEdges        = []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	NetKbpsEdges     = []float64{0, 4, 16, 64, 256, 1024, 8192}
	ConsolEdges      = []float64{1, 2, 3, 6, 12, 24, 48}
	OnOffEdges       = []float64{0, 0.5, 1.5, 3, 6, 12, 24}
)

// CapacityStudy reproduces Fig. 7: weekly failure rate versus CPU count,
// memory size, and (VM only) disk capacity and disk count.
func CapacityStudy(in Input) (map[string]BinnedRates, error) {
	out := make(map[string]BinnedRates)
	panels := []struct {
		key     string
		kind    model.MachineKind
		extract Extractor
		edges   []float64
	}{
		{"pm_cpu", model.PM, func(m *model.Machine, _ model.Attributes) (float64, bool) { return float64(m.Capacity.CPUs), true }, PMCPUEdges},
		{"vm_cpu", model.VM, func(m *model.Machine, _ model.Attributes) (float64, bool) { return float64(m.Capacity.CPUs), true }, VMCPUEdges},
		{"pm_mem", model.PM, func(m *model.Machine, _ model.Attributes) (float64, bool) { return m.Capacity.MemoryGB, true }, PMMemEdges},
		{"vm_mem", model.VM, func(m *model.Machine, _ model.Attributes) (float64, bool) { return m.Capacity.MemoryGB, true }, VMMemEdges},
		{"vm_diskcap", model.VM, func(m *model.Machine, _ model.Attributes) (float64, bool) {
			return m.Capacity.DiskGB, m.Capacity.DiskGB > 0
		}, VMDiskCapEdges},
		{"vm_diskcount", model.VM, func(m *model.Machine, _ model.Attributes) (float64, bool) {
			return float64(m.Capacity.Disks), m.Capacity.Disks > 0
		}, VMDiskCountEdges},
	}
	for _, p := range panels {
		br, err := RateByAttribute(in, p.kind, p.key, p.extract, p.edges)
		if err != nil {
			return nil, err
		}
		out[p.key] = br
	}
	return out, nil
}

// UsageStudy reproduces Fig. 8: weekly failure rate versus CPU, memory,
// disk and network usage.
func UsageStudy(in Input) (map[string]BinnedRates, error) {
	out := make(map[string]BinnedRates)
	panels := []struct {
		key     string
		kind    model.MachineKind
		extract Extractor
		edges   []float64
	}{
		{"pm_cpuutil", model.PM, func(_ *model.Machine, a model.Attributes) (float64, bool) { return a.CPUUtil, a.HasUsage }, UtilEdges},
		{"vm_cpuutil", model.VM, func(_ *model.Machine, a model.Attributes) (float64, bool) { return a.CPUUtil, a.HasUsage }, UtilEdges},
		{"pm_memutil", model.PM, func(_ *model.Machine, a model.Attributes) (float64, bool) { return a.MemUtil, a.HasUsage }, UtilEdges},
		{"vm_memutil", model.VM, func(_ *model.Machine, a model.Attributes) (float64, bool) { return a.MemUtil, a.HasUsage }, UtilEdges},
		{"vm_diskutil", model.VM, func(_ *model.Machine, a model.Attributes) (float64, bool) { return a.DiskUtil, a.HasUsage }, UtilEdges},
		{"vm_net", model.VM, func(_ *model.Machine, a model.Attributes) (float64, bool) { return a.NetKbps, a.HasUsage }, NetKbpsEdges},
	}
	for _, p := range panels {
		br, err := RateByAttribute(in, p.kind, p.key, p.extract, p.edges)
		if err != nil {
			return nil, err
		}
		out[p.key] = br
	}
	return out, nil
}
