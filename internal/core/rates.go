package core

import (
	"failscope/internal/model"
	"failscope/internal/stats"
)

// RateSummary is one bar of Fig. 2: the weekly failure rate of a machine
// population, summarized over the observation weeks (mean, 25th and 75th
// percentile).
type RateSummary struct {
	Kind    model.MachineKind
	System  model.System // 0 = entire population ("All")
	Servers int
	Summary stats.Summary
}

// WeeklyFailureRates reproduces Fig. 2: per-kind weekly failure rates for
// the whole population and each subsystem. The weekly rate of a population
// is the number of its failures in that week divided by its server count.
func WeeklyFailureRates(in Input) []RateSummary {
	var out []RateSummary
	systems := append([]model.System{0}, model.Systems()...)
	for _, kind := range []model.MachineKind{model.PM, model.VM} {
		for _, sys := range systems {
			out = append(out, rateSummary(in, kind, sys))
		}
	}
	return out
}

func rateSummary(in Input, kind model.MachineKind, sys model.System) RateSummary {
	servers := in.Data.CountMachines(kind, sys)
	rs := RateSummary{Kind: kind, System: sys, Servers: servers}
	if servers == 0 {
		return rs
	}
	counts := weeklyCounts(in.Data.Observation, crashOf(in.Data, kind, sys))
	rates := make([]float64, len(counts))
	for i, c := range counts {
		rates[i] = float64(c) / float64(servers)
	}
	rs.Summary = stats.Summarize(rates)
	return rs
}

// MonthlyFailureRate returns the population's failure rate per 30-day
// month, the coarser granularity mentioned in §III.B.
func MonthlyFailureRate(in Input, kind model.MachineKind, sys model.System) stats.Summary {
	servers := in.Data.CountMachines(kind, sys)
	if servers == 0 {
		return stats.Summary{}
	}
	w := in.Data.Observation
	months := int(w.Months())
	if months < 1 {
		months = 1
	}
	counts := make([]int, months)
	for _, t := range crashOf(in.Data, kind, sys) {
		idx := int(t.Opened.Sub(w.Start).Hours() / (24 * 30))
		if idx >= 0 && idx < months {
			counts[idx]++
		}
	}
	rates := make([]float64, months)
	for i, c := range counts {
		rates[i] = float64(c) / float64(servers)
	}
	return stats.Summarize(rates)
}
