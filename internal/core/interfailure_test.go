package core

import (
	"sync"
	"testing"

	"failscope/internal/dcsim"
	"failscope/internal/ingest"
	"failscope/internal/model"
)

// generatedInput produces a small generated dataset once per test binary
// for analyses that need realistic volume.
var (
	genOnce sync.Once
	genIn   Input
	genErr  error
)

func generatedInput(t *testing.T) Input {
	t.Helper()
	genOnce.Do(func() {
		cfg := dcsim.SmallConfig()
		out, err := dcsim.Generate(cfg)
		if err != nil {
			genErr = err
			return
		}
		opts := ingest.DefaultOptions(cfg.Observation, cfg.FineWindow)
		opts.SkipClassification = true
		col, err := ingest.Collect(out.Data, out.Tickets, out.Monitor, opts)
		if err != nil {
			genErr = err
			return
		}
		genIn = Input{Data: col.Data, Attrs: col.Attrs}
	})
	if genErr != nil {
		t.Fatal(genErr)
	}
	return genIn
}

func TestInterFailureCensoredSample(t *testing.T) {
	in := newBuilder().
		machine("a", model.PM, model.SysI, model.Capacity{}).
		machine("b", model.PM, model.SysI, model.Capacity{}).
		crash("a", model.SysI, 0, model.ClassSoftware, 1).
		crash("a", model.SysI, 30, model.ClassSoftware, 1).
		crash("b", model.SysI, 100, model.ClassSoftware, 1).
		input()
	sample, _ := InterFailureCensored(in, model.PM)
	// Observed: the 30-day gap on server a.
	if len(sample.Observed) != 1 || sample.Observed[0] != 30 {
		t.Fatalf("observed = %v", sample.Observed)
	}
	// Censored: from each server's last failure to the window end.
	if len(sample.Censored) != 2 {
		t.Fatalf("censored = %v", sample.Censored)
	}
	wantA := obsWin.Days() - 30
	wantB := obsWin.Days() - 100
	got := map[float64]bool{sample.Censored[0]: true, sample.Censored[1]: true}
	if !got[wantA] || !got[wantB] {
		t.Fatalf("censored = %v, want {%v, %v}", sample.Censored, wantA, wantB)
	}
}

func TestInterFailureCensoredRaisesMean(t *testing.T) {
	// On generated data the censored fit should estimate a mean at least
	// as large as the naive fit (the window bias is downward).
	if testing.Short() {
		t.Skip("profile-likelihood search is slow")
	}
	in := generatedInput(t)
	naive := InterFailure(in, model.VM)
	naiveBest, ok := naive.Fits.Best()
	if !ok {
		t.Fatal("no naive fit")
	}
	_, sel := InterFailureCensored(in, model.VM)
	best, ok := sel.Best()
	if !ok {
		t.Fatal("no censored fit")
	}
	if best.Dist.Mean() < 0.9*naiveBest.Dist.Mean() {
		t.Errorf("censored mean %.1f d below naive %.1f d — censoring should raise the estimate",
			best.Dist.Mean(), naiveBest.Dist.Mean())
	}
}

func TestInterFailureKSPopulated(t *testing.T) {
	in := generatedInput(t)
	res := InterFailure(in, model.PM)
	if res.KS.N == 0 || res.KS.Statistic <= 0 {
		t.Fatalf("KS not populated: %+v", res.KS)
	}
}
