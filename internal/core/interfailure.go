package core

import (
	"failscope/internal/dist"
	"failscope/internal/model"
	"failscope/internal/stats"
)

// InterFailureResult is the single-server inter-failure analysis of §IV.B
// (Fig. 3) for one machine kind: the empirical gap distribution in days
// and the fitted-model ranking.
type InterFailureResult struct {
	Kind model.MachineKind
	// GapsDays are the times between consecutive failures of each server;
	// servers failing once contribute nothing (§IV.B).
	GapsDays []float64
	Summary  stats.Summary
	ECDF     *stats.ECDF
	// Fits ranks Gamma/Weibull/Lognormal/Exponential by log-likelihood.
	Fits dist.Selection
	// KS is the one-sample Kolmogorov–Smirnov goodness-of-fit test of the
	// gaps against the best-fitting family.
	KS dist.KolmogorovSmirnov
	// SingleFailureServers counts servers with exactly one failure; the
	// paper notes ~60% of failing VMs fail only once.
	SingleFailureServers int
	FailingServers       int
}

// InterFailure computes the per-server inter-failure time analysis for one
// machine kind.
func InterFailure(in Input, kind model.MachineKind) InterFailureResult {
	res := InterFailureResult{Kind: kind}
	for id, tickets := range crashBy(in.Data) {
		m := in.Data.Machine(id)
		if m == nil || m.Kind != kind {
			continue
		}
		res.FailingServers++
		if len(tickets) == 1 {
			res.SingleFailureServers++
			continue
		}
		for i := 1; i < len(tickets); i++ {
			gap := days(tickets[i].Opened.Sub(tickets[i-1].Opened))
			if gap > 0 {
				res.GapsDays = append(res.GapsDays, gap)
			}
		}
	}
	res.Summary = stats.Summarize(res.GapsDays)
	if ecdf, err := stats.NewECDF(res.GapsDays); err == nil {
		res.ECDF = ecdf
	}
	res.Fits = dist.FitAll(res.GapsDays)
	if best, ok := res.Fits.Best(); ok {
		res.KS = dist.KSTest(best.Dist, res.GapsDays)
	}
	return res
}

// InterFailureCensored computes the right-censored inter-failure analysis:
// in addition to the observed gaps, every failing server contributes a
// censored gap from its last failure to the end of the observation window.
// This corrects the downward bias a finite study window puts on the naive
// fit — the methodological refinement §IV.B's finite one-year window calls
// for. It is not part of Analyze because the censored profile-likelihood
// search is two orders of magnitude slower than the closed-form fits.
func InterFailureCensored(in Input, kind model.MachineKind) (dist.CensoredSample, dist.Selection) {
	var sample dist.CensoredSample
	end := in.Data.Observation.End
	for id, tickets := range crashBy(in.Data) {
		m := in.Data.Machine(id)
		if m == nil || m.Kind != kind {
			continue
		}
		for i := 1; i < len(tickets); i++ {
			if gap := days(tickets[i].Opened.Sub(tickets[i-1].Opened)); gap > 0 {
				sample.Observed = append(sample.Observed, gap)
			}
		}
		if tail := days(end.Sub(tickets[len(tickets)-1].Opened)); tail > 0 {
			sample.Censored = append(sample.Censored, tail)
		}
	}
	return sample, dist.FitAllCensored(sample)
}

// ClassGapStats is one column of Table III: mean and median inter-failure
// times (days) of one failure class, from the operator's view (gaps
// between consecutive failures of that class anywhere in the datacenter)
// and from the single-server view (gaps between a server's consecutive
// failures of that class).
type ClassGapStats struct {
	Class          model.FailureClass
	OperatorMean   float64
	OperatorMedian float64
	ServerMean     float64
	ServerMedian   float64
}

// InterFailureByClass reproduces Table III over all failure classes,
// including "other".
func InterFailureByClass(in Input) []ClassGapStats {
	byClassAll := make(map[model.FailureClass][]model.Ticket)
	for _, t := range in.Data.CrashTickets() { // already time-sorted
		byClassAll[t.Class] = append(byClassAll[t.Class], t)
	}

	serverGaps := make(map[model.FailureClass][]float64)
	for _, tickets := range crashBy(in.Data) {
		byClass := make(map[model.FailureClass][]model.Ticket)
		for _, t := range tickets {
			byClass[t.Class] = append(byClass[t.Class], t)
		}
		for class, ts := range byClass {
			for i := 1; i < len(ts); i++ {
				if gap := days(ts[i].Opened.Sub(ts[i-1].Opened)); gap > 0 {
					serverGaps[class] = append(serverGaps[class], gap)
				}
			}
		}
	}

	var out []ClassGapStats
	for _, class := range model.Classes() {
		cg := ClassGapStats{Class: class}
		all := byClassAll[class]
		var opGaps []float64
		for i := 1; i < len(all); i++ {
			if gap := days(all[i].Opened.Sub(all[i-1].Opened)); gap > 0 {
				opGaps = append(opGaps, gap)
			}
		}
		cg.OperatorMean = stats.Mean(opGaps)
		cg.OperatorMedian = stats.Median(opGaps)
		cg.ServerMean = stats.Mean(serverGaps[class])
		cg.ServerMedian = stats.Median(serverGaps[class])
		out = append(out, cg)
	}
	return out
}
