package core

import (
	"time"

	"failscope/internal/model"
)

// RecurrenceResult holds the recurrent-failure probabilities of §IV.D
// (Fig. 5) for one machine kind: given a server fails, the probability it
// fails again within a day, a week and a month.
type RecurrenceResult struct {
	Kind               model.MachineKind
	WithinDay          float64
	WithinWeek         float64
	WithinMonth        float64
	Failures           int // trigger failures considered
	UncensoredForDay   int
	UncensoredForWeek  int
	UncensoredForMonth int
}

// windowDurations for day/week/month.
var (
	day   = 24 * time.Hour
	week  = 7 * day
	month = 30 * day
)

// Recurrence computes the recurrent failure probabilities for one kind
// over one system (0 = all). A trigger failure only enters a window's
// denominator when the full window fits inside the observation period, so
// censoring at the end of the study does not bias the probability down.
func Recurrence(in Input, kind model.MachineKind, sys model.System) RecurrenceResult {
	res := RecurrenceResult{Kind: kind}
	end := in.Data.Observation.End
	for id, tickets := range crashBy(in.Data) {
		m := in.Data.Machine(id)
		if m == nil || m.Kind != kind {
			continue
		}
		if sys > 0 && m.System != sys {
			continue
		}
		for i, t := range tickets {
			res.Failures++
			next := time.Time{}
			if i+1 < len(tickets) {
				next = tickets[i+1].Opened
			}
			count := func(win time.Duration, uncensored *int, hit *float64) {
				if t.Opened.Add(win).After(end) {
					return
				}
				*uncensored++
				if !next.IsZero() && next.Sub(t.Opened) <= win {
					*hit++
				}
			}
			count(day, &res.UncensoredForDay, &res.WithinDay)
			count(week, &res.UncensoredForWeek, &res.WithinWeek)
			count(month, &res.UncensoredForMonth, &res.WithinMonth)
		}
	}
	if res.UncensoredForDay > 0 {
		res.WithinDay /= float64(res.UncensoredForDay)
	}
	if res.UncensoredForWeek > 0 {
		res.WithinWeek /= float64(res.UncensoredForWeek)
	}
	if res.UncensoredForMonth > 0 {
		res.WithinMonth /= float64(res.UncensoredForMonth)
	}
	return res
}

// RandomVsRecurrent is one column of Table V: the weekly random failure
// probability (any server fails at least once in a week), the recurrent
// probability within a week, and their ratio.
type RandomVsRecurrent struct {
	Kind      model.MachineKind
	System    model.System // 0 = all
	Random    float64
	Recurrent float64
	Ratio     float64 // Recurrent / Random; 0 when undefined
}

// RandomWeeklyProbability returns the probability that a server of the
// given kind/system fails at least once within a week, averaged over the
// observation weeks.
func RandomWeeklyProbability(in Input, kind model.MachineKind, sys model.System) float64 {
	servers := in.Data.CountMachines(kind, sys)
	if servers == 0 {
		return 0
	}
	w := in.Data.Observation
	weeks := w.NumWeeks()
	// distinct failing servers per week
	failing := make([]map[model.MachineID]bool, weeks)
	for _, t := range crashOf(in.Data, kind, sys) {
		idx := w.WeekIndex(t.Opened)
		if idx < 0 {
			continue
		}
		if failing[idx] == nil {
			failing[idx] = make(map[model.MachineID]bool)
		}
		failing[idx][t.ServerID] = true
	}
	sum := 0.0
	for _, f := range failing {
		sum += float64(len(f)) / float64(servers)
	}
	return sum / float64(weeks)
}

// RandomVsRecurrentTable reproduces Table V for both kinds across all
// systems (System = 0 first, then Sys I–V).
func RandomVsRecurrentTable(in Input) []RandomVsRecurrent {
	var out []RandomVsRecurrent
	systems := append([]model.System{0}, model.Systems()...)
	for _, kind := range []model.MachineKind{model.PM, model.VM} {
		for _, sys := range systems {
			row := RandomVsRecurrent{
				Kind:      kind,
				System:    sys,
				Random:    RandomWeeklyProbability(in, kind, sys),
				Recurrent: Recurrence(in, kind, sys).WithinWeek,
			}
			if row.Random > 0 {
				row.Ratio = row.Recurrent / row.Random
			}
			out = append(out, row)
		}
	}
	return out
}
