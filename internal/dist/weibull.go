package dist

import (
	"fmt"
	"math"

	"failscope/internal/xrand"
)

// Weibull is the two-parameter Weibull distribution with shape k and scale
// λ. Shape < 1 yields the decreasing hazard rate characteristic of failure
// clustering; shape = 1 reduces to the exponential.
type Weibull struct {
	Shape float64
	Scale float64
}

// Name implements Distribution.
func (Weibull) Name() string { return "weibull" }

// NumParams implements Distribution.
func (Weibull) NumParams() int { return 2 }

// PDF implements Distribution.
func (w Weibull) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x / w.Scale
	return (w.Shape / w.Scale) * math.Pow(z, w.Shape-1) * math.Exp(-math.Pow(z, w.Shape))
}

// CDF implements Distribution.
func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-math.Pow(x/w.Scale, w.Shape))
}

// Quantile implements Distribution.
func (w Weibull) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return w.Scale * math.Pow(-math.Log(1-p), 1/w.Shape)
}

// Mean implements Distribution.
func (w Weibull) Mean() float64 {
	lg, _ := math.Lgamma(1 + 1/w.Shape)
	return w.Scale * math.Exp(lg)
}

// Variance implements Distribution.
func (w Weibull) Variance() float64 {
	lg2, _ := math.Lgamma(1 + 2/w.Shape)
	m := w.Mean()
	return w.Scale*w.Scale*math.Exp(lg2) - m*m
}

// Sample implements Distribution.
func (w Weibull) Sample(r *xrand.RNG) float64 { return r.Weibull(w.Shape, w.Scale) }

func (w Weibull) String() string {
	return fmt.Sprintf("Weibull(shape=%.4g, scale=%.4g)", w.Shape, w.Scale)
}

// FitWeibull returns the maximum-likelihood Weibull for a strictly positive
// sample, solving the profile-likelihood shape equation
//
//	Σ x^k ln x / Σ x^k − 1/k = mean(ln x)
//
// by Newton iteration with a bisection safeguard.
func FitWeibull(data []float64) (Weibull, error) {
	_, meanLog, err := meanAndMeanLog(data)
	if err != nil {
		return Weibull{}, err
	}
	n := float64(len(data))

	// g(k) = weighted-mean(ln x; weights x^k) − 1/k − mean(ln x).
	g := func(k float64) (val, deriv float64) {
		var sw, swl, swll float64 // Σx^k, Σx^k lnx, Σx^k (lnx)^2
		for _, x := range data {
			lx := math.Log(x)
			w := math.Pow(x, k)
			sw += w
			swl += w * lx
			swll += w * lx * lx
		}
		r := swl / sw
		val = r - 1/k - meanLog
		deriv = (swll/sw - r*r) + 1/(k*k)
		return val, deriv
	}

	// g is increasing in k; bracket the root.
	lo, hi := 1e-3, 1.0
	for v, _ := g(hi); v < 0; v, _ = g(hi) {
		hi *= 2
		if hi > 1e6 {
			return Weibull{}, ErrInsufficientData
		}
	}
	k := math.Min(hi, 1.0)
	for i := 0; i < 100; i++ {
		val, deriv := g(k)
		if val > 0 {
			hi = k
		} else {
			lo = k
		}
		next := k - val/deriv
		if deriv <= 0 || next <= lo || next >= hi || math.IsNaN(next) {
			next = 0.5 * (lo + hi)
		}
		if math.Abs(next-k) < 1e-12*math.Max(1, k) {
			k = next
			break
		}
		k = next
	}
	var sw float64
	for _, x := range data {
		sw += math.Pow(x, k)
	}
	scale := math.Pow(sw/n, 1/k)
	if k <= 0 || scale <= 0 || math.IsNaN(k) || math.IsNaN(scale) {
		return Weibull{}, ErrInsufficientData
	}
	return Weibull{Shape: k, Scale: scale}, nil
}
